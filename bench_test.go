package repro

// One testing.B series per experiment in DESIGN.md's index (C1..C10; the
// figure and worked examples are exact reproductions run by cmd/gsbench).
// Benchmarks measure the same quantities as `gsbench -all` but under the
// standard Go benchmark harness: run with
//
//	go test -bench=. -benchmem
//
// EXPERIMENTS.md records representative numbers and the expected shapes.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/gemstone"
	"repro/internal/algebra"
	"repro/internal/calculus"
	"repro/internal/core"
	"repro/internal/loom"
	"repro/internal/object"
	"repro/internal/oop"
	"repro/internal/relational"
	"repro/internal/store"
	"repro/internal/txn"
)

func openBenchDB(b *testing.B) (*gemstone.DB, *gemstone.Session) {
	b.Helper()
	db, err := gemstone.Open(b.TempDir(), gemstone.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	s, err := db.Login(gemstone.SystemUser, "swordfish")
	if err != nil {
		b.Fatal(err)
	}
	return db, s
}

const paperQuery = `{Emp: e, Mgr: m} where
 (e in X!Employees) and
 (d in X!Departments) [(m in d!Managers) and
 (d!Name in e!Depts) and (e!Salary > 0.10 * d!Budget)]`

// buildAcme populates the §5.1 database with extra employees and managers.
// Every tenth-and-one extra (i%10==1) is a well-paid Sales employee whose
// salary clears the 10%-of-budget bar, so the paper query has a result set
// that grows with the database — B/op per result row is measurable.
func buildAcme(b *testing.B, s *gemstone.Session, extra int) {
	b.Helper()
	s.MustRun(`| x depts d |
		x := Dictionary new. World at: #X put: x.
		depts := Dictionary new. x at: 'Departments' put: depts.
		x at: 'Employees' put: Dictionary new.
		d := Dictionary new. d at: 'Name' put: 'Sales'.
		d at: 'Managers' put: (Set new add: 'Nathen'; add: 'Roberts'; yourself).
		d at: 'Budget' put: 142000. depts at: 'A12' put: d.
		d := Dictionary new. d at: 'Name' put: 'Research'.
		d at: 'Managers' put: (Set new add: 'Carter'; yourself).
		d at: 'Budget' put: 256500. depts at: 'A16' put: d`)
	for i := 0; i < extra; i++ {
		dept := "Sales"
		if i%2 == 0 {
			dept = "Research"
		}
		salary := 1000 + i%50
		if i%10 == 1 {
			salary = 20000 // Sales (i odd), above 10% of the 142000 budget
		}
		s.MustRun(fmt.Sprintf(`| e | e := Dictionary new.
			e at: 'Salary' put: %d.
			e at: 'Depts' put: (Set new add: '%s'; yourself).
			X!Employees at: 'F%d' put: e`, salary, dept, i))
	}
	for i := 0; i < extra/4; i++ {
		s.MustRun(fmt.Sprintf(`X!Departments!A12!Managers add: 'M%d'`, i))
	}
	if _, err := s.Commit(); err != nil {
		b.Fatal(err)
	}
}

// --- C1: calculus translation, naive vs optimized ---

// BenchmarkC1_QueryPlans is the plan-shape family: the paper query run
// through every plan the optimizer ablation produces. rows/op makes B/op
// per result row computable from the ledger (the query_gate section of
// BENCH_2.json records the streaming-executor allocation budget).
func BenchmarkC1_QueryPlans(b *testing.B) {
	for _, extra := range []int{20, 80} {
		_, s := openBenchDB(b)
		buildAcme(b, s, extra)
		q, err := calculus.Parse(paperQuery)
		if err != nil {
			b.Fatal(err)
		}
		naive, err := algebra.Translate(q)
		if err != nil {
			b.Fatal(err)
		}
		push, err := algebra.OptimizePushdownOnly(q, s.Core())
		if err != nil {
			b.Fatal(err)
		}
		opt, err := algebra.Optimize(q, s.Core())
		if err != nil {
			b.Fatal(err)
		}
		runPlan := func(name string, exec func() ([]algebra.Tuple, algebra.Stats, error)) {
			b.Run(fmt.Sprintf("%s/employees=%d", name, extra+5), func(b *testing.B) {
				rows := 0
				for i := 0; i < b.N; i++ {
					ts, _, err := exec()
					if err != nil {
						b.Fatal(err)
					}
					rows = len(ts)
				}
				b.ReportMetric(float64(rows), "rows/op")
			})
		}
		runPlan("naive", func() ([]algebra.Tuple, algebra.Stats, error) { return naive.Exec(s.Core()) })
		runPlan("pushdown", func() ([]algebra.Tuple, algebra.Stats, error) { return push.Exec(s.Core()) })
		runPlan("optimized", func() ([]algebra.Tuple, algebra.Stats, error) { return opt.Exec(s.Core()) })
		runPlan("parallel", func() ([]algebra.Tuple, algebra.Stats, error) { return opt.ExecParallel(s.Core(), 4) })
	}
}

// --- C2: directory vs scan ---

func BenchmarkC2_AssociativeAccess(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		_, s := openBenchDB(b)
		cs := s.Core()
		k := cs.DB().Kernel()
		s.MustRun("World at: #emps put: Set new")
		emps, err := s.Path("World!emps", nil)
		if err != nil {
			b.Fatal(err)
		}
		salSym := cs.Symbol("salary")
		for i := 0; i < n; i++ {
			e, _ := cs.NewObject(k.Object)
			_ = cs.Store(e, salSym, oop.MustInt(int64(i)))
			if _, err := cs.AddToSet(emps, e); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := s.Commit(); err != nil {
			b.Fatal(err)
		}
		query := fmt.Sprintf("{E: e} where (e in World!emps) and e!salary = %d", n/2)
		b.Run(fmt.Sprintf("scan/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := algebra.RunNaive(cs, query); err != nil {
					b.Fatal(err)
				}
			}
		})
		if err := cs.CreateIndex(emps, []string{"salary"}); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("index/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := algebra.Run(cs, query); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- C3: optimistic concurrency ---

func BenchmarkC3_OptimisticCommits(b *testing.B) {
	for _, workers := range []int{1, 4} {
		for _, mode := range []string{"disjoint", "hot1"} {
			b.Run(fmt.Sprintf("%s/workers=%d", mode, workers), func(b *testing.B) {
				db, s := openBenchDB(b)
				for i := 0; i < workers; i++ {
					s.MustRun(fmt.Sprintf("World at: #obj%d put: (Object new at: #v put: 0; yourself)", i))
				}
				if _, err := s.Commit(); err != nil {
					b.Fatal(err)
				}
				var aborts atomic.Int64
				b.ResetTimer()
				var wg sync.WaitGroup
				per := b.N/workers + 1
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						sess, err := db.Core().NewSession(gemstone.SystemUser, "swordfish")
						if err != nil {
							return
						}
						target := fmt.Sprintf("obj%d", w)
						if mode == "hot1" {
							target = "obj0"
						}
						vSym := sess.Symbol("v")
						for i := 0; i < per; i++ {
							o, ok := sess.Global(target)
							if !ok {
								return
							}
							_ = sess.Store(o, vSym, oop.MustInt(int64(i)))
							if _, err := sess.Commit(); err != nil {
								if errors.Is(err, txn.ErrConflict) {
									aborts.Add(1)
									continue
								}
								return
							}
						}
					}(w)
				}
				wg.Wait()
				b.ReportMetric(float64(aborts.Load())/float64(b.N), "aborts/op")
			})
		}
	}
}

// benchCounter reads one obs counter out of a stats snapshot (0 if absent).
func benchCounter(db *gemstone.DB, name string) uint64 {
	for _, c := range db.Stats().Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// BenchmarkCommitAllocs is the commit hot path's memory ledger: the
// tightest possible write-commit loop, run uncontended (workers=1, where
// the idle-pipeline fast path must engage) and contended (workers=4,
// where it must stay off and group commit must gather). B/op here is the
// number the memory-diet work gates on in CI — it is machine-independent,
// unlike ns/op on shared runners. The reported fastpath/op and
// slabreuse/op metrics prove the two mechanisms engage: workers=1 wants
// fastpath/op ~= 1, workers=4 wants ~0.
func BenchmarkCommitAllocs(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			db, s := openBenchDB(b)
			for i := 0; i < workers; i++ {
				s.MustRun(fmt.Sprintf("World at: #obj%d put: (Object new at: #v put: 0; yourself)", i))
			}
			if _, err := s.Commit(); err != nil {
				b.Fatal(err)
			}
			// Sessions are created before the clock starts and all workers
			// drain one shared work counter, so the run has no straggler
			// tail: a worker finishing early would leave the pipeline
			// genuinely idle, and the fast path (correctly) engaging there
			// would pollute the contended measurement.
			sessions := make([]*core.Session, workers)
			for w := range sessions {
				sess, err := db.Core().NewSession(gemstone.SystemUser, "swordfish")
				if err != nil {
					b.Fatal(err)
				}
				sessions[w] = sess
			}
			fast0 := benchCounter(db, "txn.fastpath.commits")
			reuse0 := benchCounter(db, "store.slab.reuses")
			var left atomic.Int64
			left.Store(int64(b.N))
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					sess := sessions[w]
					vSym := sess.Symbol("v")
					for i := 0; left.Add(-1) >= 0; i++ {
						o, ok := sess.Global(fmt.Sprintf("obj%d", w))
						if !ok {
							return
						}
						_ = sess.Store(o, vSym, oop.MustInt(int64(i)))
						if _, err := sess.Commit(); err != nil {
							return
						}
					}
				}(w)
			}
			wg.Wait()
			b.StopTimer()
			ops := float64(b.N)
			b.ReportMetric(float64(benchCounter(db, "txn.fastpath.commits")-fast0)/ops, "fastpath/op")
			b.ReportMetric(float64(benchCounter(db, "store.slab.reuses")-reuse0)/ops, "slabreuse/op")
		})
	}
}

// --- C4: temporal fetch vs history length ---

func BenchmarkC4_TemporalFetch(b *testing.B) {
	for _, hist := range []int{16, 256, 2048} {
		_, s := openBenchDB(b)
		cs := s.Core()
		s.MustRun("World at: #emp put: (Object new at: #salary put: 0; yourself)")
		if _, err := s.Commit(); err != nil {
			b.Fatal(err)
		}
		emp, _ := s.Path("World!emp", nil)
		salSym := cs.Symbol("salary")
		for i := 0; i < hist; i++ {
			_ = cs.Store(emp, salSym, oop.MustInt(int64(i)))
			if _, err := cs.Commit(); err != nil {
				b.Fatal(err)
			}
		}
		mid := oop.Time(uint64(hist) / 2)
		b.Run(fmt.Sprintf("gemstone/hist=%d", hist), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := cs.FetchAt(emp, salSym, mid); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("loom/hist=%d", hist), func(b *testing.B) {
			mem := loom.New(1)
			for serial := uint64(1); serial <= 2; serial++ {
				ob := object.New(oop.FromSerial(serial), oop.FromSerial(1), 0, object.FormatNamed)
				for i := 1; i <= hist; i++ {
					_ = ob.Store(salSym, oop.Time(i), oop.MustInt(int64(i)))
				}
				if err := mem.Store(ob); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Alternate so the 1-slot cache always faults.
				if _, _, err := mem.FetchAt(oop.FromSerial(uint64(i%2)+1), salSym, mid); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- C5: commit latency stays flat as history accumulates ---

func BenchmarkC5_CommitLatency(b *testing.B) {
	_, s := openBenchDB(b)
	cs := s.Core()
	s.MustRun("World at: #counter put: (Object new at: #v put: 0; yourself)")
	if _, err := s.Commit(); err != nil {
		b.Fatal(err)
	}
	ctr, _ := s.Path("World!counter", nil)
	vSym := cs.Symbol("v")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cs.Store(ctr, vSym, oop.MustInt(int64(i)))
		if _, err := cs.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- C6: group commit by track size ---

func BenchmarkC6_GroupCommit(b *testing.B) {
	for _, ts := range []int{1024, 8192, 32768} {
		b.Run(fmt.Sprintf("track=%d", ts), func(b *testing.B) {
			st, err := store.Open(b.TempDir(), store.Options{TrackSize: ts})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				objs := make([]*object.Object, 200)
				for j := range objs {
					ob := object.New(oop.FromSerial(uint64(j)+1), oop.FromSerial(1), 0, object.FormatNamed)
					_ = ob.Store(oop.FromSerial(100), oop.Time(i+1), oop.MustInt(int64(j)))
					objs[j] = ob
				}
				if err := st.Apply(store.Commit{Objects: objs, NextSerial: 201, Time: oop.Time(i + 1)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- C7: replication overhead ---

func BenchmarkC7_ReplicatedCommit(b *testing.B) {
	for _, reps := range []int{1, 3} {
		b.Run(fmt.Sprintf("replicas=%d", reps), func(b *testing.B) {
			st, err := store.Open(b.TempDir(), store.Options{TrackSize: 4096, Replicas: reps})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ob := object.New(oop.FromSerial(1), oop.FromSerial(1), 0, object.FormatNamed)
				_ = ob.Store(oop.FromSerial(100), oop.Time(i+1), oop.MustInt(int64(i)))
				if err := st.Apply(store.Commit{Objects: []*object.Object{ob}, NextSerial: 2, Time: oop.Time(i + 1)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- C9: entity identity vs key propagation ---

func BenchmarkC9_SharedRename(b *testing.B) {
	const n = 1000
	b.Run("gsdm", func(b *testing.B) {
		_, s := openBenchDB(b)
		cs := s.Core()
		k := cs.DB().Kernel()
		world, _ := s.Path("World", nil)
		dept, _ := cs.NewObject(k.Dictionary)
		_ = cs.Store(world, cs.Symbol("dept"), dept)
		emps, _ := cs.NewObject(k.Set)
		_ = cs.Store(world, cs.Symbol("emps"), emps)
		for i := 0; i < n; i++ {
			e, _ := cs.NewObject(k.Object)
			_ = cs.Store(e, cs.Symbol("dept"), dept)
			_, _ = cs.AddToSet(emps, e)
		}
		if _, err := cs.Commit(); err != nil {
			b.Fatal(err)
		}
		nameSym := cs.Symbol("name")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = cs.Store(dept, nameSym, oop.MustInt(int64(i))) // one store, any fan-out
			if _, err := cs.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("relational", func(b *testing.B) {
		emp := relational.New("Employees", "EmpId", "Dept")
		for i := 0; i < n; i++ {
			_ = emp.Insert(int64(i), 0)
		}
		deptRel := relational.New("Departments", "Dept", "Budget")
		_ = deptRel.Insert(0, int64(142000))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := emp.UpdateWhere("Dept", i, "Dept", i+1); err != nil {
				b.Fatal(err)
			}
			if _, err := deptRel.UpdateWhere("Dept", i, "Dept", i+1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("read-path/gsdm", func(b *testing.B) {
		_, s := openBenchDB(b)
		cs := s.Core()
		k := cs.DB().Kernel()
		world, _ := s.Path("World", nil)
		dept, _ := cs.NewObject(k.Dictionary)
		_ = cs.Store(dept, cs.Symbol("budget"), oop.MustInt(142000))
		e0, _ := cs.NewObject(k.Object)
		_ = cs.Store(e0, cs.Symbol("dept"), dept)
		_ = cs.Store(world, cs.Symbol("e0"), e0)
		if _, err := cs.Commit(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d, _, _ := cs.Fetch(e0, cs.Symbol("dept"))
			if _, _, err := cs.Fetch(d, cs.Symbol("budget")); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("read-join/relational", func(b *testing.B) {
		emp := relational.New("Employees", "EmpId", "Dept")
		for i := 0; i < n; i++ {
			_ = emp.Insert(int64(i), "Sales")
		}
		deptRel := relational.New("Departments", "Dept", "Budget")
		_ = deptRel.Insert("Sales", int64(142000))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := emp.Join(deptRel, "Dept", "Dept"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- C10: working set vs LOOM cache ---

func BenchmarkC10_WorkingSet(b *testing.B) {
	const workingSet = 64
	for _, hist := range []int{8, 256} {
		b.Run(fmt.Sprintf("gemstone/hist=%d", hist), func(b *testing.B) {
			_, s := openBenchDB(b)
			cs := s.Core()
			k := cs.DB().Kernel()
			world, _ := s.Path("World", nil)
			vSym := cs.Symbol("v")
			oops := make([]oop.OOP, workingSet)
			for i := range oops {
				o, _ := cs.NewObject(k.Object)
				oops[i] = o
				_ = cs.Store(world, cs.Symbol(fmt.Sprintf("o%d", i)), o)
			}
			for h := 0; h < hist; h++ {
				for _, o := range oops {
					_ = cs.Store(o, vSym, oop.MustInt(int64(h)))
				}
				if _, err := cs.Commit(); err != nil {
					b.Fatal(err)
				}
			}
			idx := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx = (idx*5 + 3) % workingSet
				if _, _, err := cs.Fetch(oops[idx], vSym); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("loom/hist=%d", hist), func(b *testing.B) {
			mem := loom.New(16)
			vSym := oop.FromSerial(900)
			for i := 0; i < workingSet; i++ {
				ob := object.New(oop.FromSerial(uint64(i)+1), oop.FromSerial(1), 0, object.FormatNamed)
				for h := 1; h <= hist; h++ {
					_ = ob.Store(vSym, oop.Time(h), oop.MustInt(int64(h)))
				}
				if err := mem.Store(ob); err != nil {
					b.Fatal(err)
				}
			}
			idx := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx = (idx*5 + 3) % workingSet
				if _, _, err := mem.Fetch(oop.FromSerial(uint64(idx)+1), vSym); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- OPAL end-to-end benches (send dispatch, block iteration, queries) ---

func BenchmarkOPAL(b *testing.B) {
	_, s := openBenchDB(b)
	s.MustRun(`Object subclass: 'Counter' instVarNames: #('n')`)
	s.MustRun(`Counter compile: 'init n := 0'`)
	s.MustRun(`Counter compile: 'bump n := n + 1. ^n'`)
	s.MustRun(`World at: #ctr put: (Counter new init; yourself)`)
	cases := map[string]string{
		"arith":      "1 + 2 * 3 - 4",
		"send":       "ctr bump",
		"block-iter": "(1 to: 1 do: [:i | i]) isNil",
		"collect":    "#(1 2 3 4 5) collect: [:x | x * x]",
		"path":       "World!ctr!n",
	}
	for name, src := range cases {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.Execute(src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
