// Quickstart: open a database, define a class in OPAL, create and commit
// objects, navigate with path expressions, and run a declarative query.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/gemstone"
)

func main() {
	dir, err := os.MkdirTemp("", "gs-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := gemstone.Open(dir, gemstone.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	s, err := db.Login(gemstone.SystemUser, "swordfish")
	if err != nil {
		log.Fatal(err)
	}

	// Define a class with instance variables and methods — schema and
	// behaviour in one language (no impedance mismatch, paper §2.F).
	s.MustRun(`Object subclass: 'Employee' instVarNames: #('name' 'salary' 'dept')`)
	s.MustRun(`Employee compile: 'name: aName salary: aSalary name := aName. salary := aSalary'`)
	s.MustRun(`Employee compile: 'raise: amount salary := salary + amount. ^salary'`)

	// Create employees and anchor them at World so they persist.
	s.MustRun(`| emps e |
		emps := Set new.
		World at: #Employees put: emps.
		e := Employee new. e name: 'Ellen Burns' salary: 24650. emps add: e.
		e := Employee new. e name: 'Robert Peters' salary: 24000. emps add: e.
		e := Employee new. e name: 'Grace Hopper' salary: 31000. emps add: e`)
	t, err := s.Commit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committed at transaction time %v\n", t)

	// Navigate with a path expression.
	out := s.MustRun(`(Employees detect: [:e | e!name = 'Ellen Burns']) ! salary`)
	fmt.Println("Ellen's salary:", out)

	// Send a message that changes state, and commit the change.
	s.MustRun(`(Employees detect: [:e | e!name = 'Ellen Burns']) raise: 1000`)
	if _, err := s.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("after raise:   ", s.MustRun(`(Employees detect: [:e | e!name = 'Ellen Burns']) ! salary`))

	// Declarative set-calculus query with an index.
	if err := s.CreateIndex("World!Employees", []string{"salary"}); err != nil {
		log.Fatal(err)
	}
	rows, err := s.Query(`{E: e} where (e in World!Employees) and e!salary >= 25000`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d employees earn >= 25000:\n", len(rows))
	for _, r := range rows {
		name, _ := s.Path("e!name", map[string]gemstone.Value{"e": r["E"]})
		p, _ := s.Print(name)
		fmt.Println("  -", p)
	}

	// The same query as an OPAL expression — declarative statements embedded
	// in the procedural language, capturing the local variable floor.
	fmt.Println("embedded calculus:  ",
		s.MustRun(`| floor | floor := 25000.
			({ {E: e} where (e in World!Employees) and e!salary >= floor }
				collect: [:r | (r at: #E) ! name]) printString`))

	// Time travel: the salary before the raise is still there.
	if err := s.SetTimeDial(t); err != nil {
		log.Fatal(err)
	}
	fmt.Println("at time", t, "Ellen earned", s.MustRun(`(Employees detect: [:e | e!name = 'Ellen Burns']) ! salary`))
}
