// Multiuser: the full host ↔ GemStone stack (paper §6) — a server holding
// the database, two remote users over the TCP link, authorization between
// them, and an optimistic write conflict resolved by retry.
package main

import (
	"fmt"
	"log"
	"net"
	"os"

	"repro/gemstone"
	"repro/internal/executor"
	"repro/internal/wire"
)

func main() {
	dir, err := os.MkdirTemp("", "gs-multiuser-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	db, err := gemstone.Open(dir, gemstone.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateUser("alice", "apw"); err != nil {
		log.Fatal(err)
	}
	if err := db.CreateUser("bob", "bpw"); err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := wire.Serve(ln, executor.New(db))
	defer srv.Close()
	fmt.Println("server listening on", srv.Addr())

	dial := func(user, pw string) *wire.RemoteSession {
		c, err := wire.Dial(ln.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		rs, err := c.Login(user, pw)
		if err != nil {
			log.Fatal(err)
		}
		return rs
	}
	alice := dial("alice", "apw")
	bob := dial("bob", "bpw")

	// Alice publishes a shared counter at World. System newShared: creates
	// it in the published (world-writable) segment so bob can update it too.
	mustExec(alice, "World at: #counter put: ((System newShared: Object) at: #n put: 0; yourself)")
	if _, err := alice.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("alice published World!counter")

	// Alice also keeps private data: bob can see the reference but not read
	// the object (it lives in alice's segment).
	mustExec(alice, "World at: #diary put: (Object new at: #entry put: 'private'; yourself)")
	if _, err := alice.Commit(); err != nil {
		log.Fatal(err)
	}
	// Bob refreshes his snapshot to see alice's commits, then tries the
	// diary: the reference is visible, the object is not readable.
	if err := bob.Abort(); err != nil {
		log.Fatal(err)
	}
	if _, _, err := bob.Execute("World!diary!entry"); err != nil {
		fmt.Println("bob reading alice's diary:", err)
	}

	// Both sessions increment the shared counter concurrently: the second
	// committer conflicts and retries — the optimistic protocol end to end.
	mustExec(alice, "World!counter at: #n put: (World!counter!n) + 1")
	mustExec(bob, "World!counter at: #n put: (World!counter!n) + 1")
	if _, err := alice.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("alice committed her increment")
	if _, err := bob.Commit(); err != nil {
		fmt.Println("bob's commit conflicted:", err)
		// Retry on a fresh snapshot.
		mustExec(bob, "World!counter at: #n put: (World!counter!n) + 1")
		if _, err := bob.Commit(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("bob retried and committed")
	}
	result, _, err := alice.Execute("System abortTransaction. World!counter!n")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("final counter (no lost updates):", result)

	// History of the shared counter, straight over the wire.
	result, _, err = alice.Execute("(World!counter historyOf: #n) printString")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("counter history:", result)
}

func mustExec(rs *wire.RemoteSession, src string) {
	if _, _, err := rs.Execute(src); err != nil {
		log.Fatalf("%s: %v", src, err)
	}
}
