// Views: §5.4 — "Support for views drops out almost for free. We can
// construct an object that provides a view, and that object can employ
// other objects, procedural statements and calculus expressions to define
// the extension of the view. Furthermore, since the view object can retain
// connections to the objects that contributed to the view ... view updates
// are more manageable than in other data models."
package main

import (
	"fmt"
	"log"
	"os"

	"repro/gemstone"
)

func main() {
	dir, err := os.MkdirTemp("", "gs-views-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	db, err := gemstone.Open(dir, gemstone.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	s, err := db.Login(gemstone.SystemUser, "swordfish")
	if err != nil {
		log.Fatal(err)
	}

	// Base data: employees with salaries and departments.
	s.MustRun(`| emps mk |
		emps := Set new. World at: #Employees put: emps.
		mk := [:n :sal :d | | e | e := Dictionary new.
			e at: #name put: n. e at: #salary put: sal. e at: #dept put: d.
			emps add: e].
		mk value: 'Burns' value: 24650 value: 'Marketing'.
		mk value: 'Peters' value: 24000 value: 'Sales'.
		mk value: 'Hopper' value: 31000 value: 'Sales'.
		mk value: 'Kay' value: 30000 value: 'Research'`)
	if _, err := s.Commit(); err != nil {
		log.Fatal(err)
	}

	// The view: a View subclass whose extension is computed from the base
	// set (here procedurally; it could equally use a calculus query). It
	// retains the connection to the base objects, so updates through the
	// view hit the base data.
	s.MustRun(`View subclass: 'HighEarners' instVarNames: #('base' 'threshold')`)
	s.MustRun(`HighEarners compile: 'on: aSet over: t base := aSet. threshold := t'`)
	s.MustRun(`HighEarners compile: 'extension ^base select: [:e | e!salary >= threshold]'`)
	s.MustRun(`HighEarners compile: 'names ^self extension collect: [:e | e!name]'`)
	s.MustRun(`HighEarners compile: 'giveRaise: amount self extension do: [:e | e at: #salary put: e!salary + amount]'`)
	s.MustRun(`| v | v := HighEarners new. v on: (World at: #Employees) over: 30000. World at: #highEarners put: v`)
	if _, err := s.Commit(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("view extension (salary >= 30000):", s.MustRun("highEarners names"))

	// The view tracks base updates automatically: its extension is defined,
	// not materialized.
	s.MustRun(`(World at: #Employees) do: [:e | e!name = 'Peters' ifTrue: [e at: #salary put: 32000]]`)
	if _, err := s.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("after Peters' raise:             ", s.MustRun("highEarners names"))

	// View UPDATE: a message to the view updates the underlying base
	// objects — "view updates are more manageable than in other models".
	s.MustRun("highEarners giveRaise: 500")
	if _, err := s.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("after view-level raise of 500:")
	fmt.Println("  Hopper (through base):", s.MustRun("((World at: #Employees) detect: [:e | e!name = 'Hopper']) ! salary"))
	fmt.Println("  Kay    (through base):", s.MustRun("((World at: #Employees) detect: [:e | e!name = 'Kay']) ! salary"))

	// And the view is an object like any other: its definition is
	// committed, versioned, and visible at past times.
	fmt.Println("view object:", s.MustRun("highEarners printString"), "— threshold", s.MustRun("highEarners!threshold"))
}
