// Circuits: the paper's identity-vs-equivalence example (§4.2) — "we can
// distinguish, say, two gates in a circuit that have all the same
// characteristics, but are not physically the same gate" — and the shared-
// component rule: "if two objects share a component, updates to that
// component through one object are visible in the other object."
package main

import (
	"fmt"
	"log"
	"os"

	"repro/gemstone"
)

func main() {
	dir, err := os.MkdirTemp("", "gs-circuits-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	db, err := gemstone.Open(dir, gemstone.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	s, err := db.Login(gemstone.SystemUser, "swordfish")
	if err != nil {
		log.Fatal(err)
	}

	s.MustRun(`Object subclass: 'Gate' instVarNames: #('kind' 'delay' 'powerRail')`)
	s.MustRun(`Gate compile: 'kind: k delay: d kind := k. delay := d'`)
	s.MustRun(`Gate compile: 'sameCharacteristicsAs: other ^(kind = other!kind) and: [delay = other!delay]'`)

	// Two NAND gates with identical characteristics, one shared power rail.
	s.MustRun(`| circuit rail g1 g2 |
		circuit := Dictionary new.
		World at: #circuit put: circuit.
		rail := Dictionary new. rail at: #voltage put: 5.
		circuit at: #rail put: rail.
		g1 := Gate new. g1 kind: 'NAND' delay: 3. g1 at: #powerRail put: rail.
		g2 := Gate new. g2 kind: 'NAND' delay: 3. g2 at: #powerRail put: rail.
		circuit at: #g1 put: g1.
		circuit at: #g2 put: g2`)
	if _, err := s.Commit(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("structural equivalence vs entity identity (§4.2):")
	fmt.Println("  same characteristics? ", s.MustRun("circuit!g1 sameCharacteristicsAs: circuit!g2"))
	fmt.Println("  equal (=)?            ", s.MustRun("circuit!g1 = circuit!g2"))
	fmt.Println("  identical (==)?       ", s.MustRun("circuit!g1 == circuit!g2"))
	fmt.Println("  g1 == g1?             ", s.MustRun("circuit!g1 == circuit!g1"))
	fmt.Println()

	// The shared component: both gates reference the SAME rail entity.
	fmt.Println("shared component update visibility:")
	fmt.Println("  rails identical?      ", s.MustRun("circuit!g1!powerRail == circuit!g2!powerRail"))
	fmt.Println("  g2's rail voltage:    ", s.MustRun("circuit!g2!powerRail!voltage"))
	s.MustRun("circuit!g1!powerRail!voltage := 3")
	if _, err := s.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  after setting it to 3 THROUGH g1:")
	fmt.Println("  g2's rail voltage:    ", s.MustRun("circuit!g2!powerRail!voltage"))
	fmt.Println()

	// History: identity "spans time" (§5.4) — the rail is the same entity
	// in every state, with different values.
	fmt.Println("the rail's identity spans time:")
	fmt.Println("  voltage@1:            ", s.MustRun("circuit!g1!powerRail!voltage@1"))
	fmt.Println("  voltage now:          ", s.MustRun("circuit!g1!powerRail!voltage"))
}
