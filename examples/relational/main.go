// Relational: the §5.2 encodings side by side. The same information —
// relations, arrays, and an entity with a set-valued attribute — modeled
// directly as STDM labeled sets, and flattened into the relational baseline
// with the redundancy and reassembly cost the paper describes.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/gemstone"
	"repro/internal/relational"
)

func main() {
	dir, err := os.MkdirTemp("", "gs-rel-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	db, err := gemstone.Open(dir, gemstone.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	s, err := db.Login(gemstone.SystemUser, "swordfish")
	if err != nil {
		log.Fatal(err)
	}

	// 1. A relation is a set of tuples; each tuple a labeled set (§5.2).
	fmt.Println("1. the A-B-C relation as labeled sets:")
	s.MustRun(`| r t |
		r := Dictionary new. World at: #R put: r.
		t := Dictionary new. t at: #A put: 1. t at: #B put: 3. t at: #C put: 4. r at: 'T1' put: t.
		t := Dictionary new. t at: #A put: 1. t at: #B put: 5. t at: #C put: 4. r at: 'T2' put: t`)
	if _, err := s.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("   R!T1 =", s.MustRun("R!T1"))
	fmt.Println("   R!T2!B =", s.MustRun("R!T2!B"))

	// 2. Arrays as sets with numbers as element names.
	fmt.Println("\n2. the array as a set with numeric element names:")
	s.MustRun(`| a | a := Dictionary new. World at: #Rounds put: a.
		a at: 1 put: (Set new add: 'Anders'; add: 'Roberts'; yourself).
		a at: 2 put: (Set new add: 'Roberts'; add: 'Ching'; yourself).
		a at: 3 put: (Set new add: 'Albrecht'; add: 'Ching'; yourself)`)
	fmt.Println("   Rounds!2 =", s.MustRun("Rounds!2"))

	// 3. The set-valued attribute: STDM keeps the set as ONE entity...
	fmt.Println("\n3. Robert Peters' children:")
	s.MustRun(`| p n |
		p := Dictionary new. World at: #peters put: p.
		n := Dictionary new. n at: 'First' put: 'Robert'. n at: 'Last' put: 'Peters'.
		p at: 'Name' put: n.
		p at: 'Children' put: (Set new add: 'Olivia'; add: 'Dale'; add: 'Paul'; yourself)`)
	if _, err := s.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("   STDM: peters!Children =", s.MustRun("peters!Children"))
	fmt.Println("   one object, one insertion point, set operations apply directly:")
	fmt.Println("   includes 'Dale'?", s.MustRun("peters!Children includes: 'Dale'"))

	// ...while the relational model must flatten it into repeated tuples.
	rel := relational.New("Children", "FirstName", "LastName", "Child")
	if err := relational.FlattenSetValued(rel,
		[]relational.Value{"Robert", "Peters"},
		[]relational.Value{"Olivia", "Dale", "Paul"}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n   relational flattening (the paper's table):")
	fmt.Println(indent(rel.String(), "   "))
	fmt.Println("   the set exists nowhere as a single object; the parent name")
	fmt.Printf("   is stored %d times; reassembly scans/joins: %v\n",
		rel.Len(), relational.CollectSetValued(rel, []relational.Value{"Robert", "Peters"}))

	// 4. And the subset test the paper calls out: trivial on sets, two
	// quantifiers in relational calculus.
	fmt.Println("\n4. subset test (one message vs two quantifiers):")
	s.MustRun(`World at: #older put: (Set new add: 'Olivia'; add: 'Dale'; yourself)`)
	fmt.Println("   older allSatisfy: [in Children] ->",
		s.MustRun("older allSatisfy: [:c | peters!Children includes: c]"))
}

func indent(s, pre string) string {
	out := pre
	for _, r := range s {
		out += string(r)
		if r == '\n' {
			out += pre
		}
	}
	return out
}
