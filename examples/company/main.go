// Company: the paper's Figure 1 walkthrough — the Acme Corp database with
// history. Builds the exact timeline from §5.3.2 (presidents, employees,
// cities) and replays the paper's temporal path expressions, then shows the
// time dial and SafeTime.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/gemstone"
)

func main() {
	dir, err := os.MkdirTemp("", "gs-company-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	db, err := gemstone.Open(dir, gemstone.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	s, err := db.Login(gemstone.SystemUser, "swordfish")
	if err != nil {
		log.Fatal(err)
	}

	// t=1: the company and a clock object for driving transaction times.
	s.MustRun(`| acme |
		acme := Dictionary new.
		World at: 'Acme Corp' put: acme.
		acme at: 'employees' put: Dictionary new.
		World at: 'clock' put: Object new`)
	mustCommitAt(s, 1)
	pad := func(until uint64) {
		for uint64(db.Core().TxnManager().LastCommitted()) < until-1 {
			tick, err := db.Login(gemstone.SystemUser, "swordfish")
			if err != nil {
				log.Fatal(err)
			}
			tick.MustRun(`(World at: 'clock') at: #t put: 0`)
			if _, err := tick.Commit(); err != nil {
				log.Fatal(err)
			}
		}
	}

	// t=2: Ayn Rand joins as employee 1821; Milton works in Seattle.
	pad(2)
	s.MustRun(`| emps ayn milton |
		emps := World!'Acme Corp'!employees.
		ayn := Dictionary new. ayn at: 'name' put: 'Ayn Rand'. ayn at: 'city' put: 'Seattle'.
		milton := Dictionary new. milton at: 'name' put: 'Milton Friedman'. milton at: 'city' put: 'Seattle'.
		emps at: '1821' put: ayn. emps at: '4810' put: milton`)
	mustCommitAt(s, 2)
	fmt.Println("t=2  Ayn Rand hired as employee 1821")

	// t=5: Ayn becomes president.
	pad(5)
	s.MustRun(`(World at: 'Acme Corp') at: 'president' put: (World!'Acme Corp'!employees at: '1821')`)
	mustCommitAt(s, 5)
	fmt.Println("t=5  Ayn Rand becomes president")

	// t=8: Milton becomes president (moving to Portland); Ayn leaves.
	pad(8)
	s.MustRun(`| emps milton |
		emps := World!'Acme Corp'!employees.
		milton := emps at: '4810'.
		(World at: 'Acme Corp') at: 'president' put: milton.
		milton at: 'city' put: 'Portland'.
		emps removeElement: '1821' asSymbol`)
	mustCommitAt(s, 8)
	fmt.Println("t=8  Milton Friedman becomes president; Ayn leaves the company")

	// t=11: Ayn moves to San Diego.
	pad(11)
	s.MustRun(`(World!'Acme Corp'!president@7) at: 'city' put: 'San Diego'`)
	mustCommitAt(s, 11)
	fmt.Println("t=11 Ayn moves to San Diego")
	fmt.Println()

	// The paper's queries (§5.3.2).
	show := func(label, expr string) {
		out, err := s.Run(expr)
		if err != nil {
			log.Fatalf("%s: %v", expr, err)
		}
		fmt.Printf("  %-48s -> %s\n", label, out)
	}
	fmt.Println("path expressions with temporal subscripts:")
	show("World!'Acme Corp'!president!name", "World!'Acme Corp'!president!name")
	show("World!'Acme Corp'!president@10!name", "World!'Acme Corp'!president@10!name")
	show("World!'Acme Corp'!president@7!name", "World!'Acme Corp'!president@7!name")
	show("World!'Acme Corp'!president@7!city", "World!'Acme Corp'!president@7!city")
	fmt.Println()

	// The time dial: an entire past state at once (§5.4).
	fmt.Println("the time dial (System timeDial: 7):")
	s.MustRun("System timeDial: 7")
	show("president (dialed)", "World!'Acme Corp'!president!name")
	show("employee 1821 (dialed)", "(World!'Acme Corp'!employees at: '1821') at: 'name'")
	s.MustRun("System timeDialNow")
	fmt.Println()
	fmt.Println("SafeTime:", s.MustRun("System safeTime"), "— a read-only session dialed here sees a stable state")
}

func mustCommitAt(s *gemstone.Session, want uint64) {
	t, err := s.Commit()
	if err != nil {
		log.Fatal(err)
	}
	if uint64(t) != want {
		log.Fatalf("committed at %v, want t%d", t, want)
	}
}
