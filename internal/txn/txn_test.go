package txn

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/oop"
)

func set(oops ...uint64) map[oop.OOP]struct{} {
	m := make(map[oop.OOP]struct{}, len(oops))
	for _, s := range oops {
		m[oop.FromSerial(s)] = struct{}{}
	}
	return m
}

func TestCommitAssignsIncreasingTimes(t *testing.T) {
	m := NewManager(5, nil)
	for want := oop.Time(6); want <= 10; want++ {
		tx := m.Begin()
		got, err := m.Commit(tx, set(1), set(1), nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("commit time = %v, want %v", got, want)
		}
	}
	if m.LastCommitted() != 10 {
		t.Errorf("LastCommitted = %v", m.LastCommitted())
	}
}

func TestReadWriteConflict(t *testing.T) {
	m := NewManager(0, nil)
	t1 := m.Begin()
	t2 := m.Begin()
	if _, err := m.Commit(t1, set(1), set(1), nil); err != nil {
		t.Fatal(err)
	}
	// t2 read object 1, which t1 wrote after t2's snapshot.
	if _, err := m.Commit(t2, set(1), set(2), nil); !errors.Is(err, ErrConflict) {
		t.Errorf("expected conflict, got %v", err)
	}
	st := m.Stats()
	if st.Conflicts != 1 || st.Committed != 1 || st.Begun != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestWriteWriteConflict(t *testing.T) {
	m := NewManager(0, nil)
	t1 := m.Begin()
	t2 := m.Begin()
	if _, err := m.Commit(t1, nil, set(7), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Commit(t2, nil, set(7), nil); !errors.Is(err, ErrConflict) {
		t.Errorf("expected write-write conflict, got %v", err)
	}
}

// TestConflictErrorUnchanged pins the conflict chosen by the recent-writer
// index to the one the original newest-first, serial-ascending log scan
// reported: the newest clashing commit wins, the lowest serial breaks
// ties, and a read clash outranks a write clash on the same OOP.
func TestConflictErrorUnchanged(t *testing.T) {
	history := func() (*Manager, Txn) {
		m := NewManager(0, nil)
		victim := m.Begin()
		t1 := m.Begin()
		if _, err := m.Commit(t1, nil, set(5), nil); err != nil {
			t.Fatal(err)
		}
		t2 := m.Begin()
		if _, err := m.Commit(t2, nil, set(3, 7), nil); err != nil {
			t.Fatal(err)
		}
		return m, victim
	}

	// Newest clashing commit (time 2), lowest serial (3), write-write.
	m, victim := history()
	_, err := m.Commit(victim, set(7), set(3, 5), nil)
	want := fmt.Errorf("%w: write-write on %v at %v after snapshot %v",
		ErrConflict, oop.FromSerial(3), oop.Time(2), oop.Time(0))
	if err == nil || err.Error() != want.Error() {
		t.Errorf("err = %v, want %v", err, want)
	}

	// Same OOP read and written: the read clash is reported.
	m, victim = history()
	_, err = m.Commit(victim, set(7), set(7, 9), nil)
	want = fmt.Errorf("%w: %v written at %v after snapshot %v",
		ErrConflict, oop.FromSerial(7), oop.Time(2), oop.Time(0))
	if err == nil || err.Error() != want.Error() {
		t.Errorf("err = %v, want %v", err, want)
	}

	// Older clashing commit only (time 1): it is still found.
	m, victim = history()
	_, err = m.Commit(victim, set(5), nil, nil)
	want = fmt.Errorf("%w: %v written at %v after snapshot %v",
		ErrConflict, oop.FromSerial(5), oop.Time(1), oop.Time(0))
	if err == nil || err.Error() != want.Error() {
		t.Errorf("err = %v, want %v", err, want)
	}
}

func TestDisjointTransactionsBothCommit(t *testing.T) {
	m := NewManager(0, nil)
	t1 := m.Begin()
	t2 := m.Begin()
	if _, err := m.Commit(t1, set(1), set(1), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Commit(t2, set(2), set(2), nil); err != nil {
		t.Errorf("disjoint commit failed: %v", err)
	}
}

func TestSerialTransactionsNeverConflict(t *testing.T) {
	m := NewManager(0, nil)
	for i := 0; i < 10; i++ {
		tx := m.Begin()
		if _, err := m.Commit(tx, set(1, 2, 3), set(1, 2, 3), nil); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
}

func TestReadOnlyCommitNoTime(t *testing.T) {
	m := NewManager(3, nil)
	tx := m.Begin()
	got, err := m.Commit(tx, set(1), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("read-only commit returned %v, want snapshot 3", got)
	}
	if m.LastCommitted() != 3 {
		t.Error("read-only commit consumed a transaction time")
	}
}

func TestReadOnlyStillValidated(t *testing.T) {
	m := NewManager(0, nil)
	reader := m.Begin()
	writer := m.Begin()
	if _, err := m.Commit(writer, nil, set(1), nil); err != nil {
		t.Fatal(err)
	}
	// The reader saw object 1 before writer's commit; its reads are stale.
	if _, err := m.Commit(reader, set(1), nil, nil); !errors.Is(err, ErrConflict) {
		t.Errorf("stale read-only commit should conflict, got %v", err)
	}
}

func TestApplyFailureDoesNotConsumeTime(t *testing.T) {
	boom := errors.New("disk full")
	fail := true
	m := NewManager(0, func(group []*Pending) error {
		if fail {
			return boom
		}
		return nil
	})
	tx := m.Begin()
	if _, err := m.Commit(tx, nil, set(1), nil); !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
	if m.LastCommitted() != 0 {
		t.Error("failed apply consumed a transaction time")
	}
	// The failed write set must not poison later validation, and the
	// rolled-back time is reused.
	fail = false
	t2 := m.Begin()
	got, err := m.Commit(t2, set(1), set(1), nil)
	if err != nil {
		t.Errorf("commit after failed apply: %v", err)
	}
	if got != 1 {
		t.Errorf("commit time after rollback = %v, want 1", got)
	}
}

// TestGroupCommitBatches forces commits to queue behind a slow applier and
// checks they are flushed as one group by a single applier call.
func TestGroupCommitBatches(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var groupsMu sync.Mutex
	var groups [][]oop.Time
	first := true
	m := NewManager(0, nil)
	m.applier = func(group []*Pending) error {
		if first {
			first = false
			entered <- struct{}{}
			<-release
		}
		times := make([]oop.Time, len(group))
		for i, p := range group {
			times[i] = p.Time
		}
		groupsMu.Lock()
		groups = append(groups, times)
		groupsMu.Unlock()
		return nil
	}

	var wg sync.WaitGroup
	commit := func(serial uint64) {
		defer wg.Done()
		tx := m.Begin()
		if _, err := m.Commit(tx, nil, set(serial), nil); err != nil {
			t.Error(err)
		}
	}
	wg.Add(1)
	go commit(1)
	<-entered // the leader is inside the applier with group {1}

	// Three more commits validate while the first group is "on disk".
	wg.Add(3)
	go commit(2)
	go commit(3)
	go commit(4)
	for m.PendingCount() != 3 {
	}
	close(release)
	wg.Wait()

	groupsMu.Lock()
	defer groupsMu.Unlock()
	if len(groups) != 2 {
		t.Fatalf("applier ran %d times, want 2 (groups %v)", len(groups), groups)
	}
	if len(groups[0]) != 1 || groups[0][0] != 1 {
		t.Errorf("first group = %v, want [1]", groups[0])
	}
	if len(groups[1]) != 3 {
		t.Fatalf("second group = %v, want 3 members", groups[1])
	}
	for i, at := range groups[1] {
		if at != oop.Time(i+2) {
			t.Errorf("second group times = %v, want [2 3 4]", groups[1])
			break
		}
	}
	st := m.Stats()
	if st.Groups != 2 || st.Batched != 3 || st.Committed != 4 {
		t.Errorf("stats = %+v", st)
	}
	if m.LastCommitted() != 4 {
		t.Errorf("LastCommitted = %v", m.LastCommitted())
	}
}

// TestGroupFailureRollsBackGroup fails the applier on a multi-member group
// and checks every member errors, no time is consumed, and the times are
// reused by the next successful commits.
func TestGroupFailureRollsBackGroup(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	boom := errors.New("replica gone")
	calls := 0
	m := NewManager(0, nil)
	m.applier = func(group []*Pending) error {
		calls++
		switch calls {
		case 1:
			entered <- struct{}{}
			<-release
			return nil
		case 2:
			return boom
		}
		return nil
	}

	var wg sync.WaitGroup
	errs := make([]error, 4)
	commit := func(i int, serial uint64) {
		defer wg.Done()
		tx := m.Begin()
		_, errs[i] = m.Commit(tx, nil, set(serial), nil)
	}
	wg.Add(1)
	go commit(0, 1)
	<-entered
	wg.Add(3)
	go commit(1, 2)
	go commit(2, 3)
	go commit(3, 4)
	for m.PendingCount() != 3 {
	}
	close(release)
	wg.Wait()

	if errs[0] != nil {
		t.Errorf("first commit: %v", errs[0])
	}
	for i := 1; i < 4; i++ {
		if !errors.Is(errs[i], boom) {
			t.Errorf("member %d: %v, want %v", i, errs[i], boom)
		}
	}
	if m.LastCommitted() != 1 {
		t.Errorf("LastCommitted = %v, want 1 (failed group rolled back)", m.LastCommitted())
	}
	// The rolled-back times 2..4 are reused and the write sets no longer
	// poison validation.
	for want := oop.Time(2); want <= 4; want++ {
		tx := m.Begin()
		got, err := m.Commit(tx, nil, set(uint64(want)), nil)
		if err != nil || got != want {
			t.Fatalf("reuse commit = %v, %v (want time %v)", got, err, want)
		}
	}
}

func TestAbort(t *testing.T) {
	m := NewManager(0, nil)
	tx := m.Begin()
	m.Abort(tx)
	if m.ActiveCount() != 0 {
		t.Error("abort left transaction active")
	}
	if _, err := m.Commit(tx, nil, set(1), nil); err == nil {
		t.Error("commit after abort should fail")
	}
}

func TestLogTrimming(t *testing.T) {
	m := NewManager(0, nil)
	for i := 0; i < 100; i++ {
		tx := m.Begin()
		if _, err := m.Commit(tx, nil, set(uint64(i+1)), nil); err != nil {
			t.Fatal(err)
		}
	}
	// With no active transactions the validation log should be empty, and
	// the recent-writer index with it.
	m.mu.Lock()
	n, idx := len(m.log), len(m.recent)
	m.mu.Unlock()
	if n != 0 || idx != 0 {
		t.Errorf("log holds %d records, index %d entries, with no active transactions", n, idx)
	}
	// An old active snapshot pins the log.
	old := m.Begin()
	for i := 0; i < 5; i++ {
		tx := m.Begin()
		if _, err := m.Commit(tx, nil, set(uint64(200+i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	m.mu.Lock()
	n, idx = len(m.log), len(m.recent)
	m.mu.Unlock()
	if n != 5 || idx != 5 {
		t.Errorf("log holds %d records, index %d entries, want 5 pinned by old snapshot", n, idx)
	}
	m.Abort(old)
}

func TestSafeTime(t *testing.T) {
	m := NewManager(7, nil)
	if m.SafeTime() != 7 {
		t.Errorf("SafeTime = %v", m.SafeTime())
	}
	tx := m.Begin()
	if _, err := m.Commit(tx, nil, set(1), nil); err != nil {
		t.Fatal(err)
	}
	if m.SafeTime() != 8 {
		t.Errorf("SafeTime after commit = %v", m.SafeTime())
	}
}

// TestConcurrentCommitsSerializable hammers the manager from many
// goroutines incrementing a logical counter through the group committer;
// the number of successful commits must equal the final counter value
// (lost updates impossible).
func TestConcurrentCommitsSerializable(t *testing.T) {
	var mu sync.Mutex
	counter := 0 // the "database"
	m := NewManager(0, func(group []*Pending) error {
		for _, p := range group {
			mu.Lock()
			counter = p.Payload.(int)
			mu.Unlock()
		}
		return nil
	})
	const workers, attempts = 8, 50
	var wg sync.WaitGroup
	var committed int64
	var commitMu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for a := 0; a < attempts; a++ {
				tx := m.Begin()
				mu.Lock()
				val := counter
				mu.Unlock()
				_, err := m.Commit(tx, set(1), set(1), val+1)
				if err == nil {
					commitMu.Lock()
					committed++
					commitMu.Unlock()
				} else if !errors.Is(err, ErrConflict) {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	final := counter
	mu.Unlock()
	if int64(final) != committed {
		t.Errorf("lost updates: counter=%d committed=%d", final, committed)
	}
	st := m.Stats()
	if st.Committed+st.Conflicts != workers*attempts {
		t.Errorf("outcomes don't sum: %+v", st)
	}
}

func BenchmarkCommitDisjoint(b *testing.B) {
	m := NewManager(0, nil)
	b.RunParallel(func(pb *testing.PB) {
		i := uint64(0)
		for pb.Next() {
			i++
			tx := m.Begin()
			if _, err := m.Commit(tx, nil, set(i), nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkValidationLongLog measures validation cost with many recent
// writers: the recent-writer index keeps it O(|reads|+|writes|) regardless
// of how many commits sit after the snapshot.
func BenchmarkValidationLongLog(b *testing.B) {
	m := NewManager(0, nil)
	pin := m.Begin() // pins the log so it cannot be trimmed
	for i := 0; i < 4096; i++ {
		tx := m.Begin()
		if _, err := m.Commit(tx, nil, set(uint64(i+10)), nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := m.Begin()
		if _, err := m.Commit(tx, set(1, 2, 3), set(4, 5), nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	m.Abort(pin)
}
