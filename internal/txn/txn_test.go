package txn

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/oop"
)

func set(oops ...uint64) map[oop.OOP]struct{} {
	m := make(map[oop.OOP]struct{}, len(oops))
	for _, s := range oops {
		m[oop.FromSerial(s)] = struct{}{}
	}
	return m
}

func TestCommitAssignsIncreasingTimes(t *testing.T) {
	m := NewManager(5)
	for want := oop.Time(6); want <= 10; want++ {
		tx := m.Begin()
		got, err := m.Commit(tx, set(1), set(1), nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("commit time = %v, want %v", got, want)
		}
	}
	if m.LastCommitted() != 10 {
		t.Errorf("LastCommitted = %v", m.LastCommitted())
	}
}

func TestReadWriteConflict(t *testing.T) {
	m := NewManager(0)
	t1 := m.Begin()
	t2 := m.Begin()
	if _, err := m.Commit(t1, set(1), set(1), nil); err != nil {
		t.Fatal(err)
	}
	// t2 read object 1, which t1 wrote after t2's snapshot.
	if _, err := m.Commit(t2, set(1), set(2), nil); !errors.Is(err, ErrConflict) {
		t.Errorf("expected conflict, got %v", err)
	}
	st := m.Stats()
	if st.Conflicts != 1 || st.Committed != 1 || st.Begun != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestWriteWriteConflict(t *testing.T) {
	m := NewManager(0)
	t1 := m.Begin()
	t2 := m.Begin()
	if _, err := m.Commit(t1, nil, set(7), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Commit(t2, nil, set(7), nil); !errors.Is(err, ErrConflict) {
		t.Errorf("expected write-write conflict, got %v", err)
	}
}

func TestDisjointTransactionsBothCommit(t *testing.T) {
	m := NewManager(0)
	t1 := m.Begin()
	t2 := m.Begin()
	if _, err := m.Commit(t1, set(1), set(1), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Commit(t2, set(2), set(2), nil); err != nil {
		t.Errorf("disjoint commit failed: %v", err)
	}
}

func TestSerialTransactionsNeverConflict(t *testing.T) {
	m := NewManager(0)
	for i := 0; i < 10; i++ {
		tx := m.Begin()
		if _, err := m.Commit(tx, set(1, 2, 3), set(1, 2, 3), nil); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
}

func TestReadOnlyCommitNoTime(t *testing.T) {
	m := NewManager(3)
	tx := m.Begin()
	got, err := m.Commit(tx, set(1), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("read-only commit returned %v, want snapshot 3", got)
	}
	if m.LastCommitted() != 3 {
		t.Error("read-only commit consumed a transaction time")
	}
}

func TestReadOnlyStillValidated(t *testing.T) {
	m := NewManager(0)
	reader := m.Begin()
	writer := m.Begin()
	if _, err := m.Commit(writer, nil, set(1), nil); err != nil {
		t.Fatal(err)
	}
	// The reader saw object 1 before writer's commit; its reads are stale.
	if _, err := m.Commit(reader, set(1), nil, nil); !errors.Is(err, ErrConflict) {
		t.Errorf("stale read-only commit should conflict, got %v", err)
	}
}

func TestApplyFailureDoesNotConsumeTime(t *testing.T) {
	m := NewManager(0)
	tx := m.Begin()
	boom := errors.New("disk full")
	if _, err := m.Commit(tx, nil, set(1), func(oop.Time) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
	if m.LastCommitted() != 0 {
		t.Error("failed apply consumed a transaction time")
	}
	// The failed write set must not poison later validation.
	t2 := m.Begin()
	if _, err := m.Commit(t2, set(1), set(1), nil); err != nil {
		t.Errorf("commit after failed apply: %v", err)
	}
}

func TestAbort(t *testing.T) {
	m := NewManager(0)
	tx := m.Begin()
	m.Abort(tx)
	if m.ActiveCount() != 0 {
		t.Error("abort left transaction active")
	}
	if _, err := m.Commit(tx, nil, set(1), nil); err == nil {
		t.Error("commit after abort should fail")
	}
}

func TestLogTrimming(t *testing.T) {
	m := NewManager(0)
	for i := 0; i < 100; i++ {
		tx := m.Begin()
		if _, err := m.Commit(tx, nil, set(uint64(i+1)), nil); err != nil {
			t.Fatal(err)
		}
	}
	// With no active transactions the validation log should be empty.
	m.mu.Lock()
	n := len(m.log)
	m.mu.Unlock()
	if n != 0 {
		t.Errorf("log holds %d records with no active transactions", n)
	}
	// An old active snapshot pins the log.
	old := m.Begin()
	for i := 0; i < 5; i++ {
		tx := m.Begin()
		if _, err := m.Commit(tx, nil, set(uint64(200+i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	m.mu.Lock()
	n = len(m.log)
	m.mu.Unlock()
	if n != 5 {
		t.Errorf("log holds %d records, want 5 pinned by old snapshot", n)
	}
	m.Abort(old)
}

func TestSafeTime(t *testing.T) {
	m := NewManager(7)
	if m.SafeTime() != 7 {
		t.Errorf("SafeTime = %v", m.SafeTime())
	}
	tx := m.Begin()
	if _, err := m.Commit(tx, nil, set(1), nil); err != nil {
		t.Fatal(err)
	}
	if m.SafeTime() != 8 {
		t.Errorf("SafeTime after commit = %v", m.SafeTime())
	}
}

// TestConcurrentCommitsSerializable hammers the manager from many
// goroutines incrementing a logical counter; the number of successful
// commits must equal the final counter value (lost updates impossible).
func TestConcurrentCommitsSerializable(t *testing.T) {
	m := NewManager(0)
	var mu sync.Mutex
	counter := 0         // the "database"
	version := uint64(0) // which commit wrote it
	_ = version
	const workers, attempts = 8, 50
	var wg sync.WaitGroup
	var committed int64
	var commitMu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for a := 0; a < attempts; a++ {
				tx := m.Begin()
				mu.Lock()
				val := counter
				mu.Unlock()
				_, err := m.Commit(tx, set(1), set(1), func(oop.Time) error {
					mu.Lock()
					counter = val + 1
					mu.Unlock()
					return nil
				})
				if err == nil {
					commitMu.Lock()
					committed++
					commitMu.Unlock()
				} else if !errors.Is(err, ErrConflict) {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	final := counter
	mu.Unlock()
	if int64(final) != committed {
		t.Errorf("lost updates: counter=%d committed=%d", final, committed)
	}
	st := m.Stats()
	if st.Committed+st.Conflicts != workers*attempts {
		t.Errorf("outcomes don't sum: %+v", st)
	}
}

func BenchmarkCommitDisjoint(b *testing.B) {
	m := NewManager(0)
	b.RunParallel(func(pb *testing.PB) {
		i := uint64(0)
		for pb.Next() {
			i++
			tx := m.Begin()
			if _, err := m.Commit(tx, nil, set(i), nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}
