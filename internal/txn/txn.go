// Package txn implements the Transaction Manager (paper §6): it "handles
// concurrent use of the permanent database in an optimistic manner. It
// records accesses to the database for each session, and validates them for
// consistency when a transaction commits."
//
// Sessions run against a snapshot (their begin time), record the OOPs they
// read and write, and validate backwards at commit: a transaction commits
// only if no transaction that committed after its snapshot wrote an object
// it read or wrote (first committer wins). Validation and transaction-time
// assignment run under one short commit lock, so commit order equals time
// order — but durability is pipelined: validated write sets queue for a
// group committer, and whichever waiter acquires the flush token leads the
// whole queue through a single safe-write. Sessions that validate while a
// group is on its way to disk share the next group's one superblock flip
// and one sync per replica, the paper's "safe writing" of a track group
// amortized across every concurrently committing session.
package txn

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/oop"
)

// ErrConflict reports a failed validation; the session must abort and
// refresh its view.
var ErrConflict = errors.New("txn: commit conflict")

// ErrGroupAborted reports a commit that had validated behind a durability
// group whose apply failed: the whole unpublished tail rolls back together
// (times stay gap-free), and the session must retry from a fresh snapshot.
var ErrGroupAborted = errors.New("txn: commit group aborted")

// ID identifies an active transaction.
type ID uint64

// Txn is a handle for one active transaction.
type Txn struct {
	ID       ID
	Snapshot oop.Time // the committed state this transaction reads
}

type commitRecord struct {
	time   oop.Time
	writes []oop.OOP // ascending; deterministic validation order
}

// Stats counts transaction outcomes.
type Stats struct {
	Begun     uint64
	Committed uint64
	Conflicts uint64
	Groups    uint64 // durability groups flushed by the committer
	Batched   uint64 // write commits that shared their group with others
}

// Pending is one validated write transaction awaiting durability as a
// member of a commit group. The manager owns the synchronization; the
// applier reads Time and Payload and may record a per-member error.
type Pending struct {
	Time    oop.Time // the assigned transaction time
	Payload any      // the session's write set, opaque to the manager

	err  error
	done chan struct{} // closed when the member's group resolves
}

// Fail records a post-durability error for this member (for example a
// directory-maintenance failure). The group stays durable and published;
// only this member's Commit call reports the error.
func (p *Pending) Fail(err error) { p.err = err }

// Applier makes a whole commit group durable in one pass. Members arrive
// in ascending transaction-time order with pairwise-disjoint write sets
// (validation guarantees it: any overlap would have been a write-write
// conflict). Exactly one applier call runs at a time, never under the
// manager's lock. Returning an error means nothing in the group became
// durable; the manager rolls the group back as a unit.
type Applier func(group []*Pending) error

// Manager coordinates transactions across sessions.
type Manager struct {
	mu            sync.Mutex // guards lastAssigned, lastPublished, nextID, active, log, recent, pending, lastGroup, stats
	lastAssigned  oop.Time   // validation / time-assignment high water (includes unpublished)
	lastPublished oop.Time   // durable, cache-visible high water
	nextID        ID
	active        map[ID]oop.Time      // id -> snapshot
	snapCount     map[oop.Time]int     // active transactions per snapshot time
	log           []commitRecord       // validated write sets, ascending time
	recent        map[oop.OOP]oop.Time // newest logged write per OOP (mirrors log)
	pending       []*Pending           // validated, awaiting the next group flush
	lastGroup     int                  // size of the last flushed group (gathering heuristic)
	stats         Stats

	applier   Applier
	flushTok  chan struct{} // capacity 1: holding the token = leading a flush
	soloGroup [1]*Pending   // reusable group-of-one; owned by the flush-token holder
	met       metrics
}

// metrics are the manager's obs instruments. All fields are nil (no-op)
// until Instrument attaches a registry; every instrument is safe for
// concurrent use, so none of this is guarded by mu.
type metrics struct {
	begun          *obs.Counter
	commits        *obs.Counter
	aborts         *obs.Counter // explicit session aborts
	conflictsRead  *obs.Counter // read-write conflicts at validation
	conflictsWrite *obs.Counter // write-write conflicts at validation
	groupAborts    *obs.Counter // commits rolled back with a failed group
	deadlineAborts *obs.Counter // commits abandoned pre-admission on an expired deadline
	groups         *obs.Counter // durability groups flushed
	fastpath       *obs.Counter // commits applied solo via the idle-pipeline fast path
	groupSize      *obs.Histogram
	gatherSpins    *obs.Histogram // yields spent gathering each group
	validateNS     *obs.Histogram // admission: commit-lock wait + validation
}

// Instrument attaches the manager's counters to a registry. Call before
// the manager serves concurrent sessions; a nil registry leaves
// instrumentation disabled.
func (m *Manager) Instrument(reg *obs.Registry) {
	m.met = metrics{
		begun:          reg.Counter("txn.begun"),
		commits:        reg.Counter("txn.commits"),
		aborts:         reg.Counter("txn.aborts"),
		conflictsRead:  reg.Counter("txn.conflicts.read"),
		conflictsWrite: reg.Counter("txn.conflicts.write"),
		groupAborts:    reg.Counter("txn.group.aborts"),
		deadlineAborts: reg.Counter("txn.deadline.aborts"),
		groups:         reg.Counter("txn.groups"),
		fastpath:       reg.Counter("txn.fastpath.commits"),
		groupSize:      reg.Histogram("txn.group.size", obs.SizeBounds),
		gatherSpins:    reg.Histogram("txn.gather.spins", obs.SizeBounds),
		validateNS:     reg.Histogram("txn.validate.ns", obs.LatencyBounds),
	}
}

// NewManager creates a Manager whose next transaction time follows
// lastCommitted (recovered from the store's superblock). applier is the
// group committer; a nil applier publishes commits immediately (unit
// tests and tools with no durable store).
func NewManager(lastCommitted oop.Time, applier Applier) *Manager {
	return &Manager{
		lastAssigned:  lastCommitted,
		lastPublished: lastCommitted,
		nextID:        1,
		active:        make(map[ID]oop.Time),
		snapCount:     make(map[oop.Time]int),
		recent:        make(map[oop.OOP]oop.Time),
		applier:       applier,
		flushTok:      make(chan struct{}, 1),
	}
}

// Begin starts a transaction reading the current committed state. The
// snapshot never includes unpublished commits: a session must not read
// cache state the group committer has not yet made durable.
func (m *Manager) Begin() Txn {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := Txn{ID: m.nextID, Snapshot: m.lastPublished}
	m.nextID++
	m.active[t.ID] = t.Snapshot
	m.snapCount[t.Snapshot]++
	m.stats.Begun++
	m.met.begun.Inc()
	return t
}

// Commit validates the transaction and, if valid, assigns the next
// transaction time, queues payload for the group committer, and blocks
// until the commit's group is durable. If the group's apply fails no time
// is consumed. Read-only transactions (empty writes) validate but are not
// assigned a time and do not wait for any group.
func (m *Manager) Commit(t Txn, reads, writes map[oop.OOP]struct{}, payload any) (oop.Time, error) {
	return m.CommitCtx(nil, t, reads, writes, payload)
}

// CommitCtx is Commit bounded by a request context, checked once before
// admission: a commit whose deadline has already expired is aborted — the
// transaction is retired, no transaction time is consumed, and the
// cancellation error is returned wrapped. Past that point the deadline is
// ignored: admission assigns a transaction time, and a timed-out waiter
// abandoning a validated group member would leave a gap in the time
// sequence or an un-acknowledged durable commit. A nil ctx never cancels.
func (m *Manager) CommitCtx(ctx context.Context, t Txn, reads, writes map[oop.OOP]struct{}, payload any) (oop.Time, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			m.met.deadlineAborts.Inc()
			m.Abort(t)
			return 0, fmt.Errorf("txn: commit abandoned before admission: %w", err)
		}
	}
	// Idle-pipeline fast path: when the flush token is free, nothing is
	// gathering and no other transaction reads the published tip, this
	// committer leads a group of one — skipping the pending handoff, the
	// done-channel wakeup and the gather spin entirely. The token is held
	// across admission and apply, so concurrent committers queue exactly as
	// they would behind any other flush leader.
	select {
	case m.flushTok <- struct{}{}:
		commit, done, err := m.commitSolo(t, reads, writes, payload)
		<-m.flushTok
		if done {
			return commit, err
		}
	default:
	}
	sw := m.met.validateNS.Start()
	m.mu.Lock()
	commit, p, err := m.admitLocked(t, reads, writes, payload, false)
	m.mu.Unlock()
	sw.Stop()
	if err != nil || p == nil {
		return commit, err
	}
	return m.awaitGroup(p)
}

// commitSolo attempts the idle-pipeline fast path. The caller holds the
// flush token. A false second result means the pipeline was not idle —
// nothing was admitted, and the commit must take the gather path.
func (m *Manager) commitSolo(t Txn, reads, writes map[oop.OOP]struct{}, payload any) (oop.Time, bool, error) {
	sw := m.met.validateNS.Start()
	m.mu.Lock()
	idle := m.applier != nil && len(m.pending) == 0 && m.lastGroup <= 1 && !m.companyAtTipLocked(t)
	if !idle {
		m.mu.Unlock()
		sw.Stop()
		return 0, false, nil
	}
	commit, p, err := m.admitLocked(t, reads, writes, payload, true)
	m.mu.Unlock()
	sw.Stop()
	if err != nil || p == nil {
		return commit, true, err
	}
	if aerr := m.applySolo(p); aerr != nil {
		return 0, true, aerr
	}
	if p.err != nil {
		return 0, true, p.err
	}
	return commit, true, nil
}

// companyAtTipLocked reports whether any other active transaction reads
// the published tip. Such company is about to validate against the same
// state and would share a gathered group, so an idle-looking pipeline
// with company at the tip still takes the group path — this is what keeps
// the fast path off during the ramp of a contended burst, before
// lastGroup has learned the new concurrency.
func (m *Manager) companyAtTipLocked(t Txn) bool {
	n := m.snapCount[m.lastPublished]
	if snap, ok := m.active[t.ID]; ok && snap == m.lastPublished {
		n--
	}
	return n > 0
}

// applySolo leads a group of one through the applier. The caller holds
// the flush token; the reusable soloGroup array is owned by the token
// holder, so no group slice is allocated. Failure rolls back the whole
// unpublished tail exactly like a failed gathered group.
func (m *Manager) applySolo(p *Pending) error {
	m.soloGroup[0] = p
	err := m.applier(m.soloGroup[:])
	m.soloGroup[0] = nil
	m.mu.Lock()
	if err == nil {
		m.lastPublished = p.Time
		m.lastGroup = 1
		m.stats.Groups++
		m.stats.Committed++
		m.met.groups.Inc()
		m.met.commits.Inc()
		m.met.fastpath.Inc()
		m.met.groupSize.Observe(1)
		m.trimLocked()
		m.mu.Unlock()
		return nil
	}
	tail := m.pending
	m.pending = nil
	m.rollbackUnpublishedLocked()
	m.mu.Unlock()
	m.met.groupAborts.Add(uint64(1 + len(tail)))
	for _, q := range tail {
		q.err = fmt.Errorf("%w: %v", ErrGroupAborted, err)
		close(q.done)
	}
	return err
}

// admitLocked validates, assigns the transaction time and queues the write
// set for the next durability group. A nil Pending means the commit
// completed immediately (conflict, read-only, or no applier installed).
// With solo set the Pending is returned unqueued and without a done
// channel: the caller already leads its flush and resolves it inline.
func (m *Manager) admitLocked(t Txn, reads, writes map[oop.OOP]struct{}, payload any, solo bool) (oop.Time, *Pending, error) {
	snap, ok := m.active[t.ID]
	if !ok {
		return 0, nil, fmt.Errorf("txn: transaction %d not active", t.ID)
	}
	// Backward validation through the recent-writer index: one probe per
	// OOP in the read and write sets instead of a scan over every commit
	// after the snapshot. Sorting newest-commit-first then serial-ascending
	// picks exactly the conflict the old newest-first, serial-ordered log
	// scan reported, so the error is unchanged for the same history.
	var clashes []oop.OOP
	for o := range reads {
		if at, ok := m.recent[o]; ok && at > snap {
			clashes = append(clashes, o)
		}
	}
	for o := range writes {
		if at, ok := m.recent[o]; ok && at > snap {
			clashes = append(clashes, o)
		}
	}
	sort.Slice(clashes, func(i, j int) bool {
		ti, tj := m.recent[clashes[i]], m.recent[clashes[j]]
		if ti != tj {
			return ti > tj
		}
		return clashes[i].Serial() < clashes[j].Serial()
	})
	if len(clashes) > 0 {
		clash, when := clashes[0], m.recent[clashes[0]]
		m.stats.Conflicts++
		m.finishLocked(t.ID)
		if _, isRead := reads[clash]; isRead {
			m.met.conflictsRead.Inc()
			return 0, nil, fmt.Errorf("%w: %v written at %v after snapshot %v", ErrConflict, clash, when, snap)
		}
		m.met.conflictsWrite.Inc()
		return 0, nil, fmt.Errorf("%w: write-write on %v at %v after snapshot %v", ErrConflict, clash, when, snap)
	}
	if len(writes) == 0 {
		m.stats.Committed++
		m.met.commits.Inc()
		m.finishLocked(t.ID)
		return snap, nil, nil
	}
	commit := m.lastAssigned + 1
	m.lastAssigned = commit
	ws := make([]oop.OOP, 0, len(writes))
	for w := range writes {
		ws = append(ws, w)
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i].Serial() < ws[j].Serial() })
	m.log = append(m.log, commitRecord{time: commit, writes: ws})
	for _, w := range ws {
		m.recent[w] = commit
	}
	m.finishLocked(t.ID)
	if m.applier == nil {
		m.lastPublished = commit
		m.stats.Committed++
		m.met.commits.Inc()
		m.trimLocked()
		return commit, nil, nil
	}
	if solo {
		return commit, &Pending{Time: commit, Payload: payload}, nil
	}
	p := &Pending{Time: commit, Payload: payload, done: make(chan struct{})}
	m.pending = append(m.pending, p)
	return commit, p, nil
}

// awaitGroup blocks until p's durability group has resolved. Any waiter
// that acquires the flush token becomes the leader for every currently
// queued commit; the rest sleep until their member is closed out.
func (m *Manager) awaitGroup(p *Pending) (oop.Time, error) {
	for {
		select {
		case <-p.done:
			if p.err != nil {
				return 0, p.err
			}
			return p.Time, nil
		case m.flushTok <- struct{}{}:
			m.flushGroup()
			<-m.flushTok
		}
	}
}

// gatherSpins bounds the group-gathering wait at roughly 100–200µs of
// Gosched yields — on the order of one device sync, the cost the gathered
// members avoid paying individually.
const gatherSpins = 1000

// flushGroup drains the pending queue and leads it through one applier
// call. Caller holds the flush token.
//
// When the previous group was concurrent, the members it woke are probably
// preparing their next write sets right now; draining immediately would
// commit a singleton group and leave them to sync separately. So the
// leader first yields until as many commits as the last group carried have
// queued (or the window closes). Sequential workloads never gathered a
// group and never wait: the heuristic only spends time when recent history
// proves there is company worth waiting for.
func (m *Manager) flushGroup() {
	m.mu.Lock()
	want := m.lastGroup
	m.mu.Unlock()
	spins := 0
	if want > 1 {
		// Sleeping is far too coarse for a window this small (millisecond
		// timer granularity vs a ~100µs sync), so yield-spin instead.
		for ; spins < gatherSpins; spins++ {
			m.mu.Lock()
			n := len(m.pending)
			m.mu.Unlock()
			if n >= want {
				break
			}
			runtime.Gosched()
		}
	}
	m.mu.Lock()
	group := m.pending
	m.pending = nil
	m.lastGroup = len(group)
	m.mu.Unlock()
	if len(group) == 0 {
		return
	}
	m.met.gatherSpins.Observe(uint64(spins))
	m.met.groupSize.Observe(uint64(len(group)))
	err := m.applier(group)
	m.mu.Lock()
	if err == nil {
		m.lastPublished = group[len(group)-1].Time
		m.stats.Groups++
		m.stats.Committed += uint64(len(group))
		if len(group) > 1 {
			m.stats.Batched += uint64(len(group))
		}
		m.met.groups.Inc()
		m.met.commits.Add(uint64(len(group)))
		m.trimLocked()
		m.mu.Unlock()
		for _, p := range group {
			close(p.done)
		}
		return
	}
	// The group failed: nothing in it is durable. Roll back the whole
	// unpublished tail — the failed group and any commits validated behind
	// it since — so transaction times stay gap-free and the validation log
	// never vouches for state that does not exist.
	tail := m.pending
	m.pending = nil
	m.rollbackUnpublishedLocked()
	m.mu.Unlock()
	m.met.groupAborts.Add(uint64(len(group) + len(tail)))
	for _, p := range group {
		p.err = err
		close(p.done)
	}
	for _, p := range tail {
		p.err = fmt.Errorf("%w: %v", ErrGroupAborted, err)
		close(p.done)
	}
}

// rollbackUnpublishedLocked discards every log entry newer than the
// published watermark and rebuilds the recent-writer index from the
// surviving log.
func (m *Manager) rollbackUnpublishedLocked() {
	cut := len(m.log)
	for cut > 0 && m.log[cut-1].time > m.lastPublished {
		cut--
	}
	m.log = m.log[:cut]
	m.lastAssigned = m.lastPublished
	m.recent = make(map[oop.OOP]oop.Time, len(m.recent))
	for _, rec := range m.log {
		for _, w := range rec.writes {
			m.recent[w] = rec.time
		}
	}
}

// Abort discards an active transaction.
func (m *Manager) Abort(t Txn) {
	m.met.aborts.Inc()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.finishLocked(t.ID)
}

// finishLocked retires a transaction and trims the validation log.
func (m *Manager) finishLocked(id ID) {
	if snap, ok := m.active[id]; ok {
		if n := m.snapCount[snap] - 1; n > 0 {
			m.snapCount[snap] = n
		} else {
			delete(m.snapCount, snap)
		}
	}
	delete(m.active, id)
	m.trimLocked()
}

// trimLocked discards validation log entries no active snapshot can still
// conflict with, and their index entries. Unpublished entries are never
// trimmed: the group committer may still have to roll them back.
func (m *Manager) trimLocked() {
	if len(m.log) == 0 {
		return
	}
	oldest := m.lastPublished
	//lint:ignore detmap commutative min over active snapshots; order cannot be observed
	for _, snap := range m.active {
		if snap < oldest {
			oldest = snap
		}
	}
	cut := 0
	for cut < len(m.log) && m.log[cut].time <= oldest {
		cut++
	}
	if cut == 0 {
		return
	}
	for _, rec := range m.log[:cut] {
		for _, w := range rec.writes {
			if at, ok := m.recent[w]; ok && at <= oldest {
				delete(m.recent, w)
			}
		}
	}
	m.log = append([]commitRecord(nil), m.log[cut:]...)
}

// LastCommitted returns the newest published (durable) transaction time.
func (m *Manager) LastCommitted() oop.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastPublished
}

// SafeTime returns the most recent state that no currently running
// transaction can change (paper §5.4): with optimistic control and
// append-only history every committed state is immutable, so SafeTime is
// the newest published time at the moment of the call. A read-only session
// dialed to SafeTime sees a stable, fully committed state.
func (m *Manager) SafeTime() oop.Time {
	return m.LastCommitted()
}

// Stats returns a snapshot of the outcome counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// ActiveCount returns the number of in-flight transactions.
func (m *Manager) ActiveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active)
}

// PendingCount returns validated commits not yet made durable.
func (m *Manager) PendingCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pending)
}
