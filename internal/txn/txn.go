// Package txn implements the Transaction Manager (paper §6): it "handles
// concurrent use of the permanent database in an optimistic manner. It
// records accesses to the database for each session, and validates them for
// consistency when a transaction commits."
//
// Sessions run against a snapshot (their begin time), record the OOPs they
// read and write, and validate backwards at commit: a transaction commits
// only if no transaction that committed after its snapshot wrote an object
// it read or wrote (first committer wins). Validation, transaction-time
// assignment and the durable apply run under one commit lock, so commit
// order equals time order.
package txn

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/oop"
)

// ErrConflict reports a failed validation; the session must abort and
// refresh its view.
var ErrConflict = errors.New("txn: commit conflict")

// ID identifies an active transaction.
type ID uint64

// Txn is a handle for one active transaction.
type Txn struct {
	ID       ID
	Snapshot oop.Time // the committed state this transaction reads
}

type commitRecord struct {
	time   oop.Time
	writes []oop.OOP // ascending; deterministic validation order
}

// Stats counts transaction outcomes.
type Stats struct {
	Begun     uint64
	Committed uint64
	Conflicts uint64
}

// Manager coordinates transactions across sessions.
type Manager struct {
	mu            sync.Mutex // guards lastCommitted, nextID, active, log, stats
	lastCommitted oop.Time
	nextID        ID
	active        map[ID]oop.Time // id -> snapshot
	log           []commitRecord  // committed write sets, ascending time
	stats         Stats
}

// NewManager creates a Manager whose next transaction time follows
// lastCommitted (recovered from the store's superblock).
func NewManager(lastCommitted oop.Time) *Manager {
	return &Manager{
		lastCommitted: lastCommitted,
		nextID:        1,
		active:        make(map[ID]oop.Time),
	}
}

// Begin starts a transaction reading the current committed state.
func (m *Manager) Begin() Txn {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := Txn{ID: m.nextID, Snapshot: m.lastCommitted}
	m.nextID++
	m.active[t.ID] = t.Snapshot
	m.stats.Begun++
	return t
}

// Commit validates the transaction and, if valid, assigns the next
// transaction time and invokes apply to make the write set durable while
// still holding the commit lock. If apply fails the transaction is not
// recorded and its time is not consumed. Read-only transactions (empty
// writes) validate but are not assigned a time.
func (m *Manager) Commit(t Txn, reads, writes map[oop.OOP]struct{}, apply func(commit oop.Time) error) (oop.Time, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap, ok := m.active[t.ID]
	if !ok {
		return 0, fmt.Errorf("txn: transaction %d not active", t.ID)
	}
	// Backward validation against every commit after our snapshot. Write
	// sets are kept sorted, so the first conflict found — and therefore the
	// reported error — is the same for the same history.
	for i := len(m.log) - 1; i >= 0 && m.log[i].time > snap; i-- {
		when := m.log[i].time
		for _, w := range m.log[i].writes {
			if _, clash := reads[w]; clash {
				m.stats.Conflicts++
				m.finishLocked(t.ID)
				return 0, fmt.Errorf("%w: %v written at %v after snapshot %v", ErrConflict, w, when, snap)
			}
			if _, clash := writes[w]; clash {
				m.stats.Conflicts++
				m.finishLocked(t.ID)
				return 0, fmt.Errorf("%w: write-write on %v at %v after snapshot %v", ErrConflict, w, when, snap)
			}
		}
	}
	if len(writes) == 0 {
		m.stats.Committed++
		m.finishLocked(t.ID)
		return snap, nil
	}
	commit := m.lastCommitted + 1
	if apply != nil {
		if err := apply(commit); err != nil {
			m.finishLocked(t.ID)
			return 0, err
		}
	}
	m.lastCommitted = commit
	ws := make([]oop.OOP, 0, len(writes))
	for w := range writes {
		ws = append(ws, w)
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i].Serial() < ws[j].Serial() })
	m.log = append(m.log, commitRecord{time: commit, writes: ws})
	m.stats.Committed++
	m.finishLocked(t.ID)
	return commit, nil
}

// Abort discards an active transaction.
func (m *Manager) Abort(t Txn) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.finishLocked(t.ID)
}

// finishLocked retires a transaction and trims validation log entries no
// active snapshot can still conflict with.
func (m *Manager) finishLocked(id ID) {
	delete(m.active, id)
	if len(m.log) == 0 {
		return
	}
	oldest := m.lastCommitted
	//lint:ignore detmap commutative min over active snapshots; order cannot be observed
	for _, snap := range m.active {
		if snap < oldest {
			oldest = snap
		}
	}
	cut := 0
	for cut < len(m.log) && m.log[cut].time <= oldest {
		cut++
	}
	if cut > 0 {
		m.log = append([]commitRecord(nil), m.log[cut:]...)
	}
}

// LastCommitted returns the newest transaction time.
func (m *Manager) LastCommitted() oop.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastCommitted
}

// SafeTime returns the most recent state that no currently running
// transaction can change (paper §5.4): with optimistic control and
// append-only history every committed state is immutable, so SafeTime is
// the newest committed time at the moment of the call. A read-only session
// dialed to SafeTime sees a stable, fully committed state.
func (m *Manager) SafeTime() oop.Time {
	return m.LastCommitted()
}

// Stats returns a snapshot of the outcome counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// ActiveCount returns the number of in-flight transactions.
func (m *Manager) ActiveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active)
}
