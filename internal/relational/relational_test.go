package relational

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestPaperRelationExample reproduces the §5.2 A-B-C relation.
func TestPaperRelationExample(t *testing.T) {
	r := New("R", "A", "B", "C")
	if err := r.Insert(int64(1), int64(3), int64(4)); err != nil {
		t.Fatal(err)
	}
	if err := r.Insert(int64(1), int64(5), int64(4)); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 || r.Arity() != 3 {
		t.Fatal("shape wrong")
	}
	got := r.String()
	if !strings.Contains(got, "A | B | C") || !strings.Contains(got, "1 | 3 | 4") {
		t.Errorf("render:\n%s", got)
	}
}

// TestChildrenFlattening reproduces the §5.2 Robert Peters example: the
// children set flattened to three tuples, then reassembled.
func TestChildrenFlattening(t *testing.T) {
	r := New("Children", "FirstName", "LastName", "Child")
	scalars := []Value{"Robert", "Peters"}
	if err := FlattenSetValued(r, scalars, []Value{"Olivia", "Dale", "Paul"}); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 {
		t.Fatalf("rows = %d, want 3 (one per child)", r.Len())
	}
	// The redundancy the paper points out: the parent's name is repeated
	// three times.
	repeats := 0
	for _, tup := range r.Rows() {
		if tup[0] == "Robert" {
			repeats++
		}
	}
	if repeats != 3 {
		t.Errorf("name repeated %d times, want 3", repeats)
	}
	// Reassembly recovers the set.
	kids := CollectSetValued(r, scalars)
	if len(kids) != 3 {
		t.Errorf("collected %d children", len(kids))
	}
}

func TestSelectProjectJoin(t *testing.T) {
	emp := New("Employees", "EmpName", "Dept", "Salary")
	_ = emp.Insert("Burns", "Marketing", int64(24650))
	_ = emp.Insert("Peters", "Sales", int64(24000))
	_ = emp.Insert("Hopper", "Sales", int64(15000))
	dept := New("Departments", "Dept", "Budget")
	_ = dept.Insert("Sales", int64(142000))
	_ = dept.Insert("Marketing", int64(50000))

	sel := emp.Select(func(t Tuple) bool { return t[2].(int64) > 20000 })
	if sel.Len() != 2 {
		t.Errorf("select = %d rows", sel.Len())
	}
	proj, err := emp.Project("Dept")
	if err != nil {
		t.Fatal(err)
	}
	if proj.Len() != 2 { // duplicates eliminated
		t.Errorf("project = %d rows", proj.Len())
	}
	j, err := emp.Join(dept, "Dept", "Dept")
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 3 || j.Arity() != 4 {
		t.Errorf("join = %dx%d", j.Len(), j.Arity())
	}
	// The join recovers the budget for each employee.
	for _, tup := range j.Rows() {
		b, err := j.Get(tup, "Budget")
		if err != nil || b == nil {
			t.Errorf("budget missing: %v %v", b, err)
		}
	}
}

func TestUpdateAnomaly(t *testing.T) {
	// §2.D: "What happens when we want to change the department name?"
	// With logical pointers the key must be rewritten in every referring
	// tuple.
	emp := New("Employees", "EmpName", "Dept")
	for i := 0; i < 100; i++ {
		_ = emp.Insert("e", "Sales")
	}
	dept := New("Departments", "Dept", "Budget")
	_ = dept.Insert("Sales", int64(1))
	n, err := emp.UpdateWhere("Dept", "Sales", "Dept", "Selling")
	if err != nil {
		t.Fatal(err)
	}
	m, err := dept.UpdateWhere("Dept", "Sales", "Dept", "Selling")
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 || m != 1 {
		t.Errorf("touched %d + %d tuples", n, m)
	}
	if got, _ := emp.SelectEq("Dept", "Sales"); got.Len() != 0 {
		t.Error("stale department names remain")
	}
}

func TestIndexedSelect(t *testing.T) {
	r := New("R", "K", "V")
	for i := int64(0); i < 1000; i++ {
		_ = r.Insert(i, i*10)
	}
	if err := r.CreateIndex("K"); err != nil {
		t.Fatal(err)
	}
	got, err := r.SelectEq("K", int64(500))
	if err != nil || got.Len() != 1 {
		t.Fatalf("indexed select: %v (%v)", got.Len(), err)
	}
	// Inserts maintain the index.
	_ = r.Insert(int64(500), int64(9))
	got, _ = r.SelectEq("K", int64(500))
	if got.Len() != 2 {
		t.Errorf("after insert: %d", got.Len())
	}
}

func TestDelete(t *testing.T) {
	r := New("R", "K")
	for i := int64(0); i < 10; i++ {
		_ = r.Insert(i)
	}
	n := r.Delete(func(t Tuple) bool { return t[0].(int64)%2 == 0 })
	if n != 5 || r.Len() != 5 {
		t.Errorf("deleted %d, left %d", n, r.Len())
	}
}

func TestErrors(t *testing.T) {
	r := New("R", "A")
	if err := r.Insert(int64(1), int64(2)); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := r.Get(Tuple{int64(1)}, "B"); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := r.Project("B"); err == nil {
		t.Error("project unknown attr")
	}
	if _, err := r.Join(New("S", "X"), "A", "Y"); err == nil {
		t.Error("join on unknown attr")
	}
}

func TestFlattenCollectRoundTripProperty(t *testing.T) {
	f := func(kids []string, first, last string) bool {
		r := New("C", "F", "L", "Child")
		scalars := []Value{first, last}
		members := make([]Value, len(kids))
		for i, k := range kids {
			members[i] = k
		}
		if FlattenSetValued(r, scalars, members) != nil {
			return false
		}
		back := CollectSetValued(r, scalars)
		if len(back) != len(kids) {
			return false
		}
		for i := range back {
			if back[i] != members[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestJoinNameCollision(t *testing.T) {
	a := New("A", "K", "V")
	b := New("B", "K", "V")
	_ = a.Insert(int64(1), "left")
	_ = b.Insert(int64(1), "right")
	j, err := a.Join(b, "K", "K")
	if err != nil {
		t.Fatal(err)
	}
	if j.Arity() != 3 {
		t.Fatalf("arity = %d", j.Arity())
	}
	v, err := j.Get(j.Rows()[0], "B.V")
	if err != nil || v != "right" {
		t.Errorf("renamed attr = %v (%v)", v, err)
	}
}
