// Package relational is the comparison baseline: a minimal in-memory
// relational engine implementing the encodings the paper says the
// relational model forces on structured data (§5.2) — flattening set-valued
// attributes into repeated tuples, logical pointers through keys, and the
// extra joins needed to reassemble an entity. Experiments use it to measure
// the costs the paper attributes to those encodings.
package relational

import (
	"fmt"
	"sort"
	"strings"
)

// Value is a relational atomic value: int64, float64, string, bool or nil.
// The relational model has no entity identity — only values (§2.D).
type Value any

// Tuple is one row, positionally matching the relation's attributes.
type Tuple []Value

// Relation is a named set of homogeneous tuples.
type Relation struct {
	Name  string
	Attrs []string
	rows  []Tuple
	index map[string]map[Value][]int // attr -> value -> row positions
}

// New creates an empty relation.
func New(name string, attrs ...string) *Relation {
	return &Relation{Name: name, Attrs: attrs}
}

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return len(r.Attrs) }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.rows) }

// Rows exposes the tuples (read-only by convention).
//
//lint:ignore aliasret deliberate zero-copy accessor: §7 experiment drivers scan rows read-only and relations are single-goroutine
func (r *Relation) Rows() []Tuple { return r.rows }

func (r *Relation) attrIndex(name string) (int, error) {
	for i, a := range r.Attrs {
		if a == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("relational: %s has no attribute %q", r.Name, name)
}

// Insert appends a tuple.
func (r *Relation) Insert(vals ...Value) error {
	if len(vals) != len(r.Attrs) {
		return fmt.Errorf("relational: %s expects %d values, got %d", r.Name, len(r.Attrs), len(vals))
	}
	t := make(Tuple, len(vals))
	copy(t, vals)
	if r.index != nil {
		for attr, ix := range r.index {
			i, _ := r.attrIndex(attr)
			ix[t[i]] = append(ix[t[i]], len(r.rows))
		}
	}
	r.rows = append(r.rows, t)
	return nil
}

// Get returns the value of attr in tuple t (helper for predicates).
func (r *Relation) Get(t Tuple, attr string) (Value, error) {
	i, err := r.attrIndex(attr)
	if err != nil {
		return nil, err
	}
	return t[i], nil
}

// CreateIndex builds a hash index on attr (kept up to date by Insert and
// invalidated by Update/Delete for simplicity).
func (r *Relation) CreateIndex(attr string) error {
	i, err := r.attrIndex(attr)
	if err != nil {
		return err
	}
	if r.index == nil {
		r.index = map[string]map[Value][]int{}
	}
	ix := make(map[Value][]int, len(r.rows))
	for pos, t := range r.rows {
		ix[t[i]] = append(ix[t[i]], pos)
	}
	r.index[attr] = ix
	return nil
}

// Select returns the tuples satisfying pred.
func (r *Relation) Select(pred func(Tuple) bool) *Relation {
	out := New(r.Name+"'", r.Attrs...)
	for _, t := range r.rows {
		if pred(t) {
			out.rows = append(out.rows, t)
		}
	}
	return out
}

// SelectEq selects tuples with attr = v, using the index when available.
func (r *Relation) SelectEq(attr string, v Value) (*Relation, error) {
	i, err := r.attrIndex(attr)
	if err != nil {
		return nil, err
	}
	out := New(r.Name+"'", r.Attrs...)
	if ix, ok := r.index[attr]; ok {
		for _, pos := range ix[v] {
			out.rows = append(out.rows, r.rows[pos])
		}
		return out, nil
	}
	for _, t := range r.rows {
		if t[i] == v {
			out.rows = append(out.rows, t)
		}
	}
	return out, nil
}

// Project returns the relation restricted to the named attributes, with
// duplicate elimination (relations are sets).
func (r *Relation) Project(attrs ...string) (*Relation, error) {
	idx := make([]int, len(attrs))
	for j, a := range attrs {
		i, err := r.attrIndex(a)
		if err != nil {
			return nil, err
		}
		idx[j] = i
	}
	out := New(r.Name+"'", attrs...)
	seen := map[string]bool{}
	for _, t := range r.rows {
		nt := make(Tuple, len(idx))
		for j, i := range idx {
			nt[j] = t[i]
		}
		key := fmt.Sprintf("%v", nt)
		if !seen[key] {
			seen[key] = true
			out.rows = append(out.rows, nt)
		}
	}
	return out, nil
}

// Join performs an equi-join on r.attrL = other.attrR (hash join), keeping
// all attributes of both (the right join attribute is dropped).
func (r *Relation) Join(other *Relation, attrL, attrR string) (*Relation, error) {
	li, err := r.attrIndex(attrL)
	if err != nil {
		return nil, err
	}
	ri, err := other.attrIndex(attrR)
	if err != nil {
		return nil, err
	}
	attrs := append([]string{}, r.Attrs...)
	for j, a := range other.Attrs {
		if j == ri {
			continue
		}
		name := a
		for _, existing := range attrs {
			if existing == a {
				name = other.Name + "." + a
				break
			}
		}
		attrs = append(attrs, name)
	}
	out := New(r.Name+"⋈"+other.Name, attrs...)
	// Build on the smaller side.
	build := make(map[Value][]Tuple, other.Len())
	for _, t := range other.rows {
		build[t[ri]] = append(build[t[ri]], t)
	}
	for _, lt := range r.rows {
		for _, rt := range build[lt[li]] {
			nt := make(Tuple, 0, len(attrs))
			nt = append(nt, lt...)
			for j, v := range rt {
				if j != ri {
					nt = append(nt, v)
				}
			}
			out.rows = append(out.rows, nt)
		}
	}
	return out, nil
}

// UpdateWhere sets setAttr = newV on every tuple with whereAttr = whereV and
// returns the count. Indexes on the updated attribute are invalidated.
func (r *Relation) UpdateWhere(whereAttr string, whereV Value, setAttr string, newV Value) (int, error) {
	wi, err := r.attrIndex(whereAttr)
	if err != nil {
		return 0, err
	}
	si, err := r.attrIndex(setAttr)
	if err != nil {
		return 0, err
	}
	delete(r.index, setAttr)
	n := 0
	for _, t := range r.rows {
		if t[wi] == whereV {
			t[si] = newV
			n++
		}
	}
	return n, nil
}

// Delete removes tuples matching pred, returning the count. Indexes are
// invalidated.
func (r *Relation) Delete(pred func(Tuple) bool) int {
	r.index = nil
	kept := r.rows[:0]
	n := 0
	for _, t := range r.rows {
		if pred(t) {
			n++
			continue
		}
		kept = append(kept, t)
	}
	r.rows = kept
	return n
}

// String renders the relation as the paper's tables.
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Attrs, " | "))
	b.WriteByte('\n')
	rows := make([]string, 0, len(r.rows))
	for _, t := range r.rows {
		parts := make([]string, len(t))
		for i, v := range t {
			parts[i] = fmt.Sprint(v)
		}
		rows = append(rows, strings.Join(parts, " | "))
	}
	sort.Strings(rows)
	b.WriteString(strings.Join(rows, "\n"))
	return b.String()
}

// --- The paper's §5.2 encodings ---

// FlattenSetValued encodes an entity with a set-valued attribute as the
// paper's example flattens {Name: {First: 'Robert', Last: 'Peters'},
// Children: {'Olivia','Dale','Paul'}} into a three-tuple relation: one
// tuple per set member, repeating the scalar attributes.
func FlattenSetValued(rel *Relation, scalars []Value, members []Value) error {
	for _, m := range members {
		vals := append(append([]Value{}, scalars...), m)
		if err := rel.Insert(vals...); err != nil {
			return err
		}
	}
	return nil
}

// CollectSetValued is the inverse: gather the member column for the rows
// whose scalar columns equal scalars — the extra work to reassemble the
// entity ("requiring extra joins to bring the description of an employee
// together").
func CollectSetValued(rel *Relation, scalars []Value) []Value {
	var out []Value
	for _, t := range rel.rows {
		match := true
		for i, s := range scalars {
			if t[i] != s {
				match = false
				break
			}
		}
		if match {
			out = append(out, t[len(t)-1])
		}
	}
	return out
}
