package iofault

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func openTemp(t *testing.T, sched Schedule) *File {
	t.Helper()
	f, err := Open(filepath.Join(t.TempDir(), "arm.gs"), sched)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestIofaultEIOWindow(t *testing.T) {
	f := openTemp(t, Schedule{Rules: []Rule{{Op: OpWrite, Kind: EIO, From: 2, To: 3}}})
	p := []byte("payload")
	if _, err := f.WriteAt(p, 0); err != nil {
		t.Fatalf("write 1 (before window): %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := f.WriteAt(p, 0); !errors.Is(err, ErrEIO) {
			t.Fatalf("write %d (in window): %v", i+2, err)
		}
	}
	if _, err := f.WriteAt(p, 0); err != nil {
		t.Fatalf("write 4 (after window): %v", err)
	}
	if st := f.Stats(); st.EIOs != 2 || st.Writes != 4 {
		t.Errorf("stats = %+v, want 2 EIOs over 4 writes", st)
	}
}

func TestIofaultTornWriteLeavesPartialPayload(t *testing.T) {
	f := openTemp(t, Schedule{Rules: []Rule{{Op: OpWrite, Kind: Torn, From: 1, To: 1}}})
	p := bytes.Repeat([]byte{0xAB}, 64)
	n, err := f.WriteAt(p, 0)
	if !errors.Is(err, ErrTorn) {
		t.Fatalf("want ErrTorn, got %v", err)
	}
	if n != 32 {
		t.Fatalf("torn write reported %d bytes, want 32", n)
	}
	got := make([]byte, 64)
	m, _ := f.ReadAt(got, 0)
	if m != 32 || !bytes.Equal(got[:32], p[:32]) {
		t.Errorf("device holds %d bytes, want exactly the 32-byte prefix", m)
	}
}

func TestIofaultENOSPC(t *testing.T) {
	f := openTemp(t, Schedule{Rules: []Rule{{Op: OpWrite, Kind: ENOSPC}}})
	if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, ErrENOSPC) {
		t.Fatalf("want ErrENOSPC, got %v", err)
	}
}

func TestIofaultBitFlipCorruptsSilently(t *testing.T) {
	f := openTemp(t, Schedule{Seed: 7, Rules: []Rule{{Op: OpWrite, Kind: BitFlip, From: 1, To: 1}}})
	p := bytes.Repeat([]byte{0x00}, 128)
	if _, err := f.WriteAt(p, 0); err != nil {
		t.Fatalf("bit-flipped write must report success: %v", err)
	}
	got := make([]byte, 128)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range got {
		for b := 0; b < 8; b++ {
			if (got[i]^p[i])&(1<<b) != 0 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Errorf("%d bits differ, want exactly 1", diff)
	}
	// The caller's buffer must be untouched.
	if !bytes.Equal(p, bytes.Repeat([]byte{0x00}, 128)) {
		t.Error("BitFlip mutated the caller's buffer")
	}
}

func TestIofaultSyncAndReadFaults(t *testing.T) {
	f := openTemp(t, Schedule{Rules: []Rule{
		{Op: OpSync, Kind: EIO, From: 1, To: 1},
		{Op: OpRead, Kind: EIO, From: 1, To: 1},
	}})
	if err := f.Sync(); !errors.Is(err, ErrEIO) {
		t.Errorf("sync: want ErrEIO, got %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Errorf("second sync: %v", err)
	}
	if _, err := f.ReadAt(make([]byte, 4), 0); !errors.Is(err, ErrEIO) {
		t.Errorf("read: want ErrEIO, got %v", err)
	}
}

func TestIofaultLatencyDelaysButPreservesData(t *testing.T) {
	f := openTemp(t, Schedule{Rules: []Rule{{Op: OpWrite, Kind: Latency, Delay: 5 * time.Millisecond}}})
	if _, err := f.WriteAt([]byte("slow"), 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	if _, err := f.ReadAt(got, 0); err != nil || string(got) != "slow" {
		t.Errorf("data after latency injection = %q, %v", got, err)
	}
	if st := f.Stats(); st.Latencies != 1 {
		t.Errorf("latencies = %d, want 1", st.Latencies)
	}
}

// TestIofaultDeterministicReplay drives two identically seeded files
// through the same operation sequence and requires identical injected
// faults and identical device bytes: the schedule must not depend on the
// wall clock or any global randomness.
func TestIofaultDeterministicReplay(t *testing.T) {
	sched := Schedule{Seed: 42, Rules: []Rule{
		{Op: OpWrite, Kind: BitFlip, Prob: 0.3},
		{Op: OpWrite, Kind: Torn, From: 9, To: 9},
	}}
	run := func(dir string) (Stats, []byte) {
		f, err := Open(filepath.Join(dir, "arm.gs"), sched)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		for i := 0; i < 16; i++ {
			p := bytes.Repeat([]byte{byte(i)}, 32)
			_, _ = f.WriteAt(p, int64(i)*32)
		}
		raw, err := os.ReadFile(filepath.Join(dir, "arm.gs"))
		if err != nil {
			t.Fatal(err)
		}
		return f.Stats(), raw
	}
	st1, raw1 := run(t.TempDir())
	st2, raw2 := run(t.TempDir())
	if st1 != st2 {
		t.Errorf("fault stats diverged: %+v vs %+v", st1, st2)
	}
	if st1.Injected() == 0 {
		t.Error("schedule injected nothing; test is vacuous")
	}
	if !bytes.Equal(raw1, raw2) {
		t.Error("device bytes diverged between identical replays")
	}
}

func TestIofaultEveryNth(t *testing.T) {
	f := openTemp(t, Schedule{Rules: []Rule{{Op: OpWrite, Kind: EIO, From: 1, Every: 3}}})
	fails := 0
	for i := 0; i < 9; i++ {
		if _, err := f.WriteAt([]byte("x"), 0); err != nil {
			fails++
		}
	}
	if fails != 3 {
		t.Errorf("Every=3 fired %d times over 9 writes, want 3", fails)
	}
}
