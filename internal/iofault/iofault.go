// Package iofault wraps a replica file with a deterministic, seeded
// fault-injection schedule. The paper's §6 availability story ("requests
// for replication of data", safe writes of whole track groups) is only
// credible if the Track Manager's degrade–repair loop is exercised against
// real device failure modes; this package supplies them on demand: torn
// writes (a partial transfer followed by an error), silent bit-flips, EIO,
// ENOSPC, and added latency.
//
// Schedules are deterministic by construction. A Rule fires on operation
// ordinals (the Nth read/write/sync issued against this file) or with a
// probability drawn from a seeded splitmix64 stream — never from the wall
// clock, map iteration order, or global randomness — so a failing run
// replays identically. The wallclock and detmap analyzers cover this
// package; the only time dependence permitted is time.Sleep for latency
// injection, which delays an operation without changing any data.
package iofault

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"
)

// Injected error sentinels. They deliberately do not wrap syscall errnos:
// tests match on these identities, and the store must treat any write
// error — injected or real — the same way.
var (
	// ErrEIO is an injected unrecoverable I/O error.
	ErrEIO = errors.New("iofault: injected I/O error")
	// ErrENOSPC is an injected device-full error.
	ErrENOSPC = errors.New("iofault: injected no space left on device")
	// ErrTorn is returned after a torn write: part of the payload reached
	// the device, the rest did not.
	ErrTorn = errors.New("iofault: injected torn write")
)

// Op classifies the intercepted operations.
type Op uint8

// Operation classes a Rule can match.
const (
	OpRead Op = iota
	OpWrite
	OpSync
	opCount
)

// String names the operation class.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Kind is the fault a matching rule injects.
type Kind uint8

// Fault kinds.
const (
	// EIO fails the operation with ErrEIO; no bytes are transferred.
	EIO Kind = iota + 1
	// ENOSPC fails a write with ErrENOSPC; no bytes are transferred.
	ENOSPC
	// Torn transfers roughly half of a write's payload, then fails with
	// ErrTorn — the partial safe-write the commit protocol must survive.
	Torn
	// BitFlip lets the operation succeed but flips one bit of the payload
	// (silent corruption; the track checksum is what must catch it).
	BitFlip
	// Latency delays the operation by Rule.Delay, then performs it.
	Latency
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case EIO:
		return "eio"
	case ENOSPC:
		return "enospc"
	case Torn:
		return "torn"
	case BitFlip:
		return "bitflip"
	case Latency:
		return "latency"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Rule is one entry of a fault schedule. A rule matches an operation when
// the operation's class equals Op and its 1-based ordinal within that
// class lies in [From, To] (From 0 means "from the first"; To 0 means "no
// upper bound"). Among matching ordinals, Every selects each Nth (0 and 1
// both mean every one), and Prob, when positive, additionally gates the
// fault on a draw from the schedule's seeded stream. The first matching
// rule in schedule order fires; later rules are not consulted.
type Rule struct {
	Op    Op
	Kind  Kind
	From  uint64        // first matching ordinal, 1-based; 0 = first
	To    uint64        // last matching ordinal; 0 = unbounded
	Every uint64        // fire each Nth match in the window; 0/1 = all
	Prob  float64       // if > 0, fire with this probability (seeded)
	Delay time.Duration // Latency only: how long to stall
}

// Schedule is a deterministic fault plan: an ordered rule list plus the
// seed for probabilistic rules and bit positions.
type Schedule struct {
	Seed  uint64
	Rules []Rule
}

// Backend is the wrapped device. *os.File satisfies it, as does the
// store's ReplicaFile interface — the two are structurally identical, so
// a *File slots into the Track Manager without either package importing
// the other.
type Backend interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Sync() error
	Stat() (os.FileInfo, error)
	Truncate(size int64) error
	Close() error
}

// Stats counts what a File has done and injected.
type Stats struct {
	Reads, Writes, Syncs uint64 // operations intercepted
	EIOs                 uint64
	ENOSPCs              uint64
	TornWrites           uint64
	BitFlips             uint64
	Latencies            uint64
}

// Injected is the total number of faults fired.
func (s Stats) Injected() uint64 {
	return s.EIOs + s.ENOSPCs + s.TornWrites + s.BitFlips + s.Latencies
}

// File wraps a Backend with a fault schedule. Methods are safe for
// concurrent use; ordinal assignment is serialized under the mutex, so a
// schedule keyed on ordinals stays deterministic as long as the caller
// issues operations in a deterministic order (the Track Manager serializes
// all I/O per arm).
type File struct {
	b Backend

	mu    sync.Mutex // guards rules, ops, rng, stats
	rules []Rule
	ops   [opCount]uint64
	rng   uint64
	stats Stats
}

// Wrap attaches a schedule to an already-open backend.
func Wrap(b Backend, sched Schedule) *File {
	return &File{b: b, rules: append([]Rule(nil), sched.Rules...), rng: sched.Seed}
}

// Open opens (creating if needed) path and wraps it with the schedule.
func Open(path string, sched Schedule) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return Wrap(f, sched), nil
}

// Stats returns a snapshot of the operation and fault counters.
func (f *File) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// nextLocked advances the seeded splitmix64 stream.
func (f *File) nextLocked() uint64 {
	f.rng += 0x9E3779B97F4A7C15
	z := f.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// decideLocked assigns the operation its ordinal and returns the first
// rule that fires on it, if any.
func (f *File) decideLocked(op Op) (Rule, bool) {
	f.ops[op]++
	ord := f.ops[op]
	for _, r := range f.rules {
		if r.Op != op {
			continue
		}
		from := r.From
		if from == 0 {
			from = 1
		}
		if ord < from || (r.To != 0 && ord > r.To) {
			continue
		}
		if r.Every > 1 && (ord-from)%r.Every != 0 {
			continue
		}
		if r.Prob > 0 {
			// 53-bit uniform draw from the seeded stream.
			draw := float64(f.nextLocked()>>11) / float64(1<<53)
			if draw >= r.Prob {
				continue
			}
		}
		return r, true
	}
	return Rule{}, false
}

// ReadAt implements Backend. A BitFlip rule corrupts the returned buffer,
// not the device.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	//lint:ignore lockorder the Backend under a fault wrapper is always a plain *os.File (wrappers never nest), so the conservative self-dispatch edge is unreachable
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats.Reads++
	r, fire := f.decideLocked(OpRead)
	if fire {
		switch r.Kind {
		case EIO, ENOSPC:
			f.stats.EIOs++
			return 0, ErrEIO
		case Latency:
			f.stats.Latencies++
			time.Sleep(r.Delay)
		}
	}
	n, err := f.b.ReadAt(p, off)
	if fire && r.Kind == BitFlip && n > 0 {
		f.stats.BitFlips++
		i := f.nextLocked() % uint64(n)
		p[i] ^= 1 << (f.nextLocked() % 8)
	}
	return n, err
}

// WriteAt implements Backend. Torn transfers a prefix then errors;
// BitFlip writes a corrupted copy and reports success.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats.Writes++
	r, fire := f.decideLocked(OpWrite)
	if !fire {
		return f.b.WriteAt(p, off)
	}
	switch r.Kind {
	case EIO:
		f.stats.EIOs++
		return 0, ErrEIO
	case ENOSPC:
		f.stats.ENOSPCs++
		return 0, ErrENOSPC
	case Torn:
		f.stats.TornWrites++
		n := len(p) / 2
		if n > 0 {
			if m, err := f.b.WriteAt(p[:n], off); err != nil {
				return m, err
			}
		}
		return n, ErrTorn
	case BitFlip:
		f.stats.BitFlips++
		if len(p) == 0 {
			return f.b.WriteAt(p, off)
		}
		c := append([]byte(nil), p...)
		i := f.nextLocked() % uint64(len(c))
		c[i] ^= 1 << (f.nextLocked() % 8)
		return f.b.WriteAt(c, off)
	case Latency:
		f.stats.Latencies++
		time.Sleep(r.Delay)
	}
	return f.b.WriteAt(p, off)
}

// Sync implements Backend.
func (f *File) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats.Syncs++
	r, fire := f.decideLocked(OpSync)
	if fire {
		switch r.Kind {
		case EIO, ENOSPC:
			f.stats.EIOs++
			return ErrEIO
		case Latency:
			f.stats.Latencies++
			time.Sleep(r.Delay)
		}
	}
	return f.b.Sync()
}

// Stat implements Backend (pass-through; faults never target metadata).
func (f *File) Stat() (os.FileInfo, error) { return f.b.Stat() }

// Truncate implements Backend (pass-through).
func (f *File) Truncate(size int64) error { return f.b.Truncate(size) }

// Close implements Backend (pass-through).
func (f *File) Close() error { return f.b.Close() }
