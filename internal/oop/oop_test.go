package oop

import (
	"testing"
	"testing/quick"
)

func TestSpecialConstantsDistinct(t *testing.T) {
	seen := map[OOP]string{}
	for name, o := range map[string]OOP{"invalid": Invalid, "nil": Nil, "true": True, "false": False} {
		if prev, dup := seen[o]; dup {
			t.Fatalf("%s and %s share encoding %v", name, prev, o)
		}
		seen[o] = name
	}
	if Invalid.IsHeap() {
		t.Error("Invalid must not be a heap OOP")
	}
	if !Nil.IsSpecial() || !True.IsSpecial() || !False.IsSpecial() {
		t.Error("nil/true/false must be special")
	}
}

func TestFromSerialRoundTrip(t *testing.T) {
	for _, s := range []uint64{1, 2, 42, 1 << 20, 1 << 40} {
		o := FromSerial(s)
		if !o.IsHeap() {
			t.Errorf("FromSerial(%d) not heap", s)
		}
		if got := o.Serial(); got != s {
			t.Errorf("Serial() = %d, want %d", got, s)
		}
	}
	if FromSerial(0) != Invalid {
		t.Error("FromSerial(0) should be Invalid")
	}
}

func TestFromIntRoundTrip(t *testing.T) {
	cases := []int64{0, 1, -1, 42, -42, MaxSmallInt, MinSmallInt}
	for _, v := range cases {
		o, ok := FromInt(v)
		if !ok {
			t.Fatalf("FromInt(%d) overflowed unexpectedly", v)
		}
		if !o.IsSmallInt() {
			t.Errorf("FromInt(%d) not a SmallInteger", v)
		}
		if got := o.Int(); got != v {
			t.Errorf("Int() = %d, want %d", got, v)
		}
	}
}

func TestFromIntOverflow(t *testing.T) {
	if _, ok := FromInt(MaxSmallInt + 1); ok {
		t.Error("expected overflow above MaxSmallInt")
	}
	if _, ok := FromInt(MinSmallInt - 1); ok {
		t.Error("expected overflow below MinSmallInt")
	}
}

func TestFromCharRoundTrip(t *testing.T) {
	for _, r := range []rune{'a', 'Z', '0', '∈', '日', 0} {
		o := FromChar(r)
		if !o.IsCharacter() {
			t.Errorf("FromChar(%q) not a Character", r)
		}
		if got := o.Char(); got != r {
			t.Errorf("Char() = %q, want %q", got, r)
		}
	}
}

func TestBool(t *testing.T) {
	if v, ok := True.Bool(); !ok || !v {
		t.Error("True.Bool() wrong")
	}
	if v, ok := False.Bool(); !ok || v {
		t.Error("False.Bool() wrong")
	}
	if _, ok := Nil.Bool(); ok {
		t.Error("Nil.Bool() should not be ok")
	}
	if FromBool(true) != True || FromBool(false) != False {
		t.Error("FromBool wrong")
	}
}

func TestTagsArePartition(t *testing.T) {
	// Property: every OOP is exactly one of heap/smallint/char/special
	// (Invalid counts as none).
	f := func(raw uint64) bool {
		o := OOP(raw)
		n := 0
		if o.IsHeap() {
			n++
		}
		if o.IsSmallInt() {
			n++
		}
		if o.IsCharacter() {
			n++
		}
		if o.IsSpecial() {
			n++
		}
		if o == Invalid {
			return n == 0
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntRoundTripProperty(t *testing.T) {
	f := func(v int64) bool {
		o, ok := FromInt(v)
		if !ok {
			return v > MaxSmallInt || v < MinSmallInt
		}
		return o.Int() == v && o.IsSmallInt() && !o.IsHeap()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIdentityIsEquality(t *testing.T) {
	// Entity identity: two OOPs denote the same entity iff the words match.
	a, b := FromSerial(7), FromSerial(7)
	if a != b {
		t.Error("same serial must be identical")
	}
	if FromSerial(7) == FromSerial(8) {
		t.Error("different serials must differ")
	}
}

func TestTimeOrdering(t *testing.T) {
	if !(TimeZero < Time(1) && Time(1) < Time(2) && Time(2) < TimeNow) {
		t.Error("time ordering broken")
	}
	if !TimeNow.IsNow() || Time(5).IsNow() {
		t.Error("IsNow wrong")
	}
}

func TestStringForms(t *testing.T) {
	cases := map[OOP]string{
		Nil:           "nil",
		True:          "true",
		False:         "false",
		MustInt(42):   "42",
		MustInt(-1):   "-1",
		FromChar('a'): "$a",
		FromSerial(9): "oop#9",
		Invalid:       "<invalid>",
	}
	for o, want := range cases {
		if got := o.String(); got != want {
			t.Errorf("String(%v) = %q, want %q", uint64(o), got, want)
		}
	}
	if Time(3).String() != "t3" || TimeNow.String() != "now" {
		t.Error("Time.String wrong")
	}
}

func TestMustIntPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustInt should panic on overflow")
		}
	}()
	MustInt(MaxSmallInt + 1)
}
