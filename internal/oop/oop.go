// Package oop defines object-oriented pointers (OOPs), the universal value
// representation of the GemStone reproduction, and transaction time.
//
// An OOP is a 64-bit tagged word. Small immediate values — small integers,
// characters, booleans and nil — are encoded directly in the word; everything
// else is a heap object identified by a serial number. Identity of an entity
// is exactly equality of OOPs, which is what gives the data model entity
// identity: an object "lives forever with that identity" (paper §5.4).
package oop

import (
	"fmt"
	"math"
)

// OOP is a tagged object-oriented pointer. The low two bits are the tag:
//
//	tag 0 (00): heap object; serial number in the upper 62 bits (0 invalid)
//	tag 1 (01): SmallInteger; signed 62-bit payload
//	tag 2 (10): Character; Unicode code point in the upper bits
//	tag 3 (11): special constants: nil, false, true
//
// The zero OOP is invalid (tag 0, serial 0), so the Go zero value of any
// structure holding OOPs is detectably uninitialized.
type OOP uint64

const (
	tagBits = 2
	tagMask = (1 << tagBits) - 1

	tagHeap      = 0
	tagSmallInt  = 1
	tagCharacter = 2
	tagSpecial   = 3
)

// Special constants.
const (
	Invalid OOP = 0                           // the zero value; never a legal reference
	Nil     OOP = tagSpecial | (0 << tagBits) // the sole instance of UndefinedObject
	False   OOP = tagSpecial | (1 << tagBits)
	True    OOP = tagSpecial | (2 << tagBits)
)

// SmallInteger payload bounds (signed 62-bit).
const (
	MaxSmallInt = math.MaxInt64 >> tagBits
	MinSmallInt = math.MinInt64 >> tagBits
)

// FromSerial builds a heap OOP from an object serial number. Serial numbers
// start at 1; FromSerial(0) returns Invalid.
func FromSerial(serial uint64) OOP { return OOP(serial << tagBits) }

// FromInt builds a SmallInteger OOP. The second result is false if v is
// outside the signed 62-bit payload range.
func FromInt(v int64) (OOP, bool) {
	if v < MinSmallInt || v > MaxSmallInt {
		return Invalid, false
	}
	return OOP(uint64(v)<<tagBits) | tagSmallInt, true
}

// MustInt builds a SmallInteger OOP and panics on overflow. Use only for
// values known to be small (literals, counters).
func MustInt(v int64) OOP {
	o, ok := FromInt(v)
	if !ok {
		panic(fmt.Sprintf("oop: integer %d exceeds SmallInteger range", v))
	}
	return o
}

// FromChar builds a Character OOP from a code point.
func FromChar(r rune) OOP { return OOP(uint64(uint32(r))<<tagBits) | tagCharacter }

// FromBool returns True or False.
func FromBool(b bool) OOP {
	if b {
		return True
	}
	return False
}

// IsHeap reports whether o refers to a heap object (and is not Invalid).
func (o OOP) IsHeap() bool { return o&tagMask == tagHeap && o != Invalid }

// IsSmallInt reports whether o is an immediate SmallInteger.
func (o OOP) IsSmallInt() bool { return o&tagMask == tagSmallInt }

// IsCharacter reports whether o is an immediate Character.
func (o OOP) IsCharacter() bool { return o&tagMask == tagCharacter }

// IsSpecial reports whether o is nil, true or false.
func (o OOP) IsSpecial() bool { return o&tagMask == tagSpecial }

// IsImmediate reports whether o carries its value in the pointer itself.
func (o OOP) IsImmediate() bool { return o != Invalid && !o.IsHeap() }

// Serial returns the heap serial number, or 0 if o is not a heap OOP.
func (o OOP) Serial() uint64 {
	if !o.IsHeap() {
		return 0
	}
	return uint64(o) >> tagBits
}

// Int returns the SmallInteger payload. It panics if o is not a SmallInteger.
func (o OOP) Int() int64 {
	if !o.IsSmallInt() {
		panic(fmt.Sprintf("oop: Int on non-SmallInteger %v", o))
	}
	return int64(o) >> tagBits
}

// Char returns the Character payload. It panics if o is not a Character.
func (o OOP) Char() rune {
	if !o.IsCharacter() {
		panic(fmt.Sprintf("oop: Char on non-Character %v", o))
	}
	return rune(uint64(o) >> tagBits)
}

// Bool converts True/False to a Go bool. The second result is false for any
// other OOP.
func (o OOP) Bool() (value, ok bool) {
	switch o {
	case True:
		return true, true
	case False:
		return false, true
	}
	return false, false
}

// String renders the OOP for diagnostics (not user-level printString).
func (o OOP) String() string {
	switch {
	case o == Invalid:
		return "<invalid>"
	case o == Nil:
		return "nil"
	case o == True:
		return "true"
	case o == False:
		return "false"
	case o.IsSmallInt():
		return fmt.Sprintf("%d", o.Int())
	case o.IsCharacter():
		return fmt.Sprintf("$%c", o.Char())
	default:
		return fmt.Sprintf("oop#%d", o.Serial())
	}
}
