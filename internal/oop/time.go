package oop

import "fmt"

// Time is a transaction time: the logical timestamp assigned when a
// transaction commits (paper §5.3.1 chooses transaction time over event
// time). Times are totally ordered and assigned by the Transaction Manager
// in strictly increasing order, starting at 1.
type Time uint64

const (
	// TimeZero precedes every transaction; nothing is visible at TimeZero.
	TimeZero Time = 0
	// TimeNow is a sentinel meaning "the current state" when used as a time
	// dial setting; every committed time compares below it.
	TimeNow Time = ^Time(0)
)

// IsNow reports whether t is the current-state sentinel.
func (t Time) IsNow() bool { return t == TimeNow }

func (t Time) String() string {
	if t.IsNow() {
		return "now"
	}
	return fmt.Sprintf("t%d", uint64(t))
}
