package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/iofault"
	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/oop"
)

// faultOpener wraps the arms named in scheds with iofault schedules; other
// arms open as plain files.
func faultOpener(scheds map[int]iofault.Schedule) OpenReplicaFunc {
	return func(path string, replica int) (ReplicaFile, error) {
		sched, ok := scheds[replica]
		if !ok {
			return osOpenReplica(path, replica)
		}
		f, err := iofault.Open(path, sched)
		if err != nil {
			return nil, err
		}
		return f, nil
	}
}

func armStates(s *Store) []string {
	out := []string{}
	for _, h := range s.Health() {
		out = append(out, h.State)
	}
	return out
}

func readArmFile(t *testing.T, dir string, replica int) []byte {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(dir, "replica"+string(rune('0'+replica))+".gs"))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestDegradedCommitSurvivesArmFailure: with three arms and write quorum 1,
// an arm whose device fails mid-workload is degraded and skipped; every
// commit still succeeds, and the failure is visible in Health and the obs
// instruments.
func TestDegradedCommitSurvivesArmFailure(t *testing.T) {
	reg := obs.NewRegistry()
	dir := t.TempDir()
	s, err := Open(dir, Options{
		TrackSize: 1024, Replicas: 3, Obs: reg,
		OpenReplica: faultOpener(map[int]iofault.Schedule{
			2: {Rules: []iofault.Rule{{Op: iofault.OpWrite, Kind: iofault.Torn, From: 4, To: 4},
				{Op: iofault.OpWrite, Kind: iofault.EIO, From: 5}}},
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := uint64(1); i <= 6; i++ {
		ob := namedObj(i, 3)
		if err := s.Apply(Commit{Objects: []*object.Object{ob}, NextSerial: i + 1, Time: oop.Time(i)}); err != nil {
			t.Fatalf("commit %d with one failing arm: %v", i, err)
		}
	}
	h := s.Health()
	if h[0].State != "healthy" || h[1].State != "healthy" || h[2].State != "degraded" {
		t.Fatalf("states = %v, want [healthy healthy degraded]", armStates(s))
	}
	if h[2].LastError == "" {
		t.Error("degraded arm carries no error")
	}
	snap := reg.Snapshot()
	if got := snap.Gauge("store.replica.state.r2"); got != int64(ArmDegraded) {
		t.Errorf("state gauge r2 = %d, want %d", got, ArmDegraded)
	}
	if snap.Counter("store.commits.degraded") == 0 {
		t.Error("degraded commits not counted")
	}
	// All committed data must be readable without the degraded arm.
	for i := uint64(1); i <= 6; i++ {
		if _, err := s.Load(oop.FromSerial(i)); err != nil {
			t.Errorf("load %d after degradation: %v", i, err)
		}
	}
}

// TestWriteQuorumLostFailsCommit: with quorum 2 of 2, losing an arm must
// fail the commit rather than silently running on one copy.
func TestWriteQuorumLostFailsCommit(t *testing.T) {
	s, err := Open(t.TempDir(), Options{
		TrackSize: 1024, Replicas: 2, WriteQuorum: 2,
		OpenReplica: faultOpener(map[int]iofault.Schedule{
			1: {Rules: []iofault.Rule{{Op: iofault.OpWrite, Kind: iofault.EIO, From: 3}}},
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var sawErr bool
	for i := uint64(1); i <= 4; i++ {
		ob := namedObj(i, 2)
		if err := s.Apply(Commit{Objects: []*object.Object{ob}, NextSerial: i + 1, Time: oop.Time(i)}); err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("quorum 2 with a dead arm: expected a commit to fail")
	}
}

// TestScrubRepairsBitFlip: a single-track corruption on one arm is found
// by the scrubber, rewritten from a healthy arm, and counted in the obs
// instruments. A second pass comes back clean.
func TestScrubRepairsBitFlip(t *testing.T) {
	reg := obs.NewRegistry()
	s, _ := func() (*Store, string) {
		dir := t.TempDir()
		s, err := Open(dir, Options{TrackSize: 1024, Replicas: 3, Obs: reg})
		if err != nil {
			t.Fatal(err)
		}
		return s, dir
	}()
	defer s.Close()
	for i := uint64(1); i <= 3; i++ {
		ob := namedObj(i, 3)
		if err := s.Apply(Commit{Objects: []*object.Object{ob}, NextSerial: i + 1, Time: oop.Time(i)}); err != nil {
			t.Fatal(err)
		}
	}
	tm := s.TrackManager()
	const victim = 2 // first data track
	if err := tm.DamageTrack(1, victim); err != nil {
		t.Fatal(err)
	}
	if _, err := tm.ReadTrackReplica(1, victim); err == nil {
		t.Fatal("damage did not take")
	}
	res := s.Scrub()
	if res.Repaired == 0 {
		t.Fatalf("scrub repaired nothing: %+v", res)
	}
	if res.Lost != 0 {
		t.Errorf("scrub lost %d tracks with two healthy arms", res.Lost)
	}
	if _, err := tm.ReadTrackReplica(1, victim); err != nil {
		t.Errorf("track still damaged after scrub: %v", err)
	}
	snap := reg.Snapshot()
	if snap.Counter("store.scrub.passes") != 1 {
		t.Errorf("scrub passes = %d, want 1", snap.Counter("store.scrub.passes"))
	}
	if snap.Counter("store.scrub.repaired") == 0 || snap.Counter("store.repair.tracks") == 0 {
		t.Error("scrub repairs not counted in obs")
	}
	if res2 := s.Scrub(); res2.Repaired != 0 || res2.Lost != 0 {
		t.Errorf("second pass not clean: %+v", res2)
	}
	for _, h := range s.Health() {
		if h.State != "healthy" {
			t.Errorf("replica %d %s after clean scrub", h.Replica, h.State)
		}
	}
}

// TestScrubPromotesSuspectArm: an arm marked suspect by a salvaged read is
// promoted back to healthy by a scrub pass that finds (after repair) no
// remaining damage.
func TestScrubPromotesSuspectArm(t *testing.T) {
	s, _ := openTemp(t, Options{TrackSize: 1024, Replicas: 2})
	defer s.Close()
	ob := namedObj(1, 3)
	if err := s.Apply(Commit{Objects: []*object.Object{ob}, NextSerial: 2, Time: 1}); err != nil {
		t.Fatal(err)
	}
	tm := s.TrackManager()
	if err := tm.DamageTrack(0, 2); err != nil {
		t.Fatal(err)
	}
	tm.DropCache()
	if _, err := s.Load(ob.OOP); err != nil { // salvaged from arm 1, repairs arm 0
		t.Fatal(err)
	}
	if got := s.Health()[0].State; got != "suspect" {
		t.Fatalf("arm 0 %s after salvaged read, want suspect", got)
	}
	s.Scrub()
	if got := s.Health()[0].State; got != "healthy" {
		t.Errorf("arm 0 %s after clean scrub, want healthy", got)
	}
}

// TestRebuildReinstatesBitIdentical: an arm degraded mid-workload is
// reconstructed by Rebuild and afterwards all replica files are
// bit-for-bit identical.
func TestRebuildReinstatesBitIdentical(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{
		TrackSize: 1024, Replicas: 3,
		OpenReplica: faultOpener(map[int]iofault.Schedule{
			// One torn write degrades the arm; after that the arm sees no
			// more traffic (its ordinals freeze), so the device has
			// "recovered" by the time Rebuild writes to it.
			1: {Rules: []iofault.Rule{{Op: iofault.OpWrite, Kind: iofault.Torn, From: 6, To: 6}}},
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := uint64(1); i <= 8; i++ {
		ob := namedObj(i, 4)
		if err := s.Apply(Commit{Objects: []*object.Object{ob}, NextSerial: i + 1, Time: oop.Time(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Health()[1].State; got != "degraded" {
		t.Fatalf("arm 1 %s, want degraded", got)
	}
	s.Scrub()
	if err := s.Rebuild(1); err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	for _, h := range s.Health() {
		if h.State != "healthy" {
			t.Errorf("replica %d %s after rebuild", h.Replica, h.State)
		}
	}
	// Rebuild must also leave the data correct and the files identical.
	for i := uint64(1); i <= 8; i++ {
		if _, err := s.Load(oop.FromSerial(i)); err != nil {
			t.Errorf("load %d after rebuild: %v", i, err)
		}
	}
	if err := s.TrackManager().Sync(); err != nil {
		t.Fatal(err)
	}
	r0, r1, r2 := readArmFile(t, dir, 0), readArmFile(t, dir, 1), readArmFile(t, dir, 2)
	if !bytes.Equal(r0, r2) {
		t.Errorf("healthy arms differ: %d vs %d bytes", len(r0), len(r2))
	}
	if !bytes.Equal(r0, r1) {
		t.Errorf("rebuilt arm differs from healthy arms: %d vs %d bytes", len(r0), len(r1))
	}
	// And the rebuilt arm keeps receiving writes.
	ob := namedObj(9, 2)
	if err := s.Apply(Commit{Objects: []*object.Object{ob}, NextSerial: 10, Time: 9}); err != nil {
		t.Fatal(err)
	}
	if err := s.TrackManager().Sync(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(readArmFile(t, dir, 0), readArmFile(t, dir, 1)) {
		t.Error("arms diverge again after rebuild")
	}
}

// TestStaleArmDegradedOnReopen: an arm that missed safe-writes holds a
// stale superblock whose tracks still pass their checksums. Recovery must
// take the highest epoch across ALL arms — never let the stale arm answer
// first — and degrade the lagging arm so reads cannot see old state.
func TestStaleArmDegradedOnReopen(t *testing.T) {
	dir := t.TempDir()
	scheds := map[int]iofault.Schedule{
		// Arm 0 — the one recovery consults first — goes dead mid-run.
		0: {Rules: []iofault.Rule{{Op: iofault.OpWrite, Kind: iofault.EIO, From: 8}}},
	}
	s, err := Open(dir, Options{TrackSize: 1024, Replicas: 3, OpenReplica: faultOpener(scheds)})
	if err != nil {
		t.Fatal(err)
	}
	var lastVal int64
	for i := uint64(1); i <= 6; i++ {
		ob := object.New(oop.FromSerial(1), oop.FromSerial(1), 1, object.FormatNamed)
		lastVal = int64(i * 100)
		if err := ob.Store(sym(1), oop.Time(i), oop.MustInt(lastVal)); err != nil {
			t.Fatal(err)
		}
		if err := s.Apply(Commit{Objects: []*object.Object{ob}, NextSerial: 2, Time: oop.Time(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Health()[0].State; got != "degraded" {
		t.Fatalf("arm 0 %s before close, want degraded", got)
	}
	wantEpoch := s.Meta().Epoch
	s.Close()

	// Reopen with plain files: the stale arm is indistinguishable from a
	// healthy one except by its superblock epoch.
	s2, err := Open(dir, Options{TrackSize: 1024, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Meta().Epoch; got != wantEpoch {
		t.Fatalf("recovered epoch %d, want %d: stale arm won the superblock race", got, wantEpoch)
	}
	if got := s2.Health()[0].State; got != "degraded" {
		t.Fatalf("stale arm 0 %s after reopen, want degraded", got)
	}
	ob, err := s2.Load(oop.FromSerial(1))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := ob.Fetch(sym(1)); !ok || v != oop.MustInt(lastVal) {
		t.Errorf("recovered value %v, want %d: read served from stale arm", v, lastVal)
	}
	if err := s2.Rebuild(0); err != nil {
		t.Fatalf("rebuild stale arm: %v", err)
	}
	if err := s2.TrackManager().Sync(); err != nil {
		t.Fatal(err)
	}
	r0, r1 := readArmFile(t, dir, 0), readArmFile(t, dir, 1)
	if !bytes.Equal(r0, r1) {
		t.Errorf("rebuilt arm differs: %d vs %d bytes", len(r0), len(r1))
	}
}

// TestCrashMidScrubAtEveryFailpoint: a scrubber running concurrently with
// a commit that crashes at each protocol step must neither corrupt the
// recoverable state nor block recovery; after reopen a scrub pass comes
// back clean and commits resume.
func TestCrashMidScrubAtEveryFailpoint(t *testing.T) {
	steps := []string{"before-data", "after-data", "after-table", "after-directory", "before-superblock"}
	for _, step := range steps {
		t.Run(step, func(t *testing.T) {
			dir := t.TempDir()
			var armed, fired atomic.Bool
			s, err := Open(dir, Options{TrackSize: 1024, Replicas: 3, FailPoint: func(at string) error {
				if at == step && armed.Load() && !fired.Swap(true) {
					return errors.New("injected crash")
				}
				return nil
			}})
			if err != nil {
				t.Fatal(err)
			}
			base := namedObj(1, 3)
			if err := s.Apply(Commit{Objects: []*object.Object{base}, NextSerial: 2, Time: 1}); err != nil {
				t.Fatal(err)
			}
			// Give the scrubber live damage to chew on while commits run.
			if err := s.TrackManager().DamageTrack(1, 2); err != nil {
				t.Fatal(err)
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
						s.Scrub()
					}
				}
			}()
			armed.Store(true)
			err = s.Apply(Commit{Objects: []*object.Object{namedObj(2, 3)}, NextSerial: 3, Time: 2})
			close(stop)
			wg.Wait()
			if !errors.Is(err, ErrCrashed) {
				t.Fatalf("crash at %q not surfaced: %v", step, err)
			}
			s.Close()

			s2, err := Open(dir, Options{TrackSize: 1024, Replicas: 3})
			if err != nil {
				t.Fatalf("recovery after crash at %q: %v", step, err)
			}
			defer s2.Close()
			if s2.Exists(oop.FromSerial(2)) {
				t.Error("crashed commit visible after recovery")
			}
			got, err := s2.Load(oop.FromSerial(1))
			if err != nil {
				t.Fatal(err)
			}
			if !got.EquivalentAt(base, oop.TimeNow) {
				t.Error("recovered object corrupted")
			}
			res := s2.Scrub()
			if res.Lost != 0 {
				t.Errorf("scrub after recovery lost %d tracks", res.Lost)
			}
			if err := s2.Apply(Commit{Objects: []*object.Object{namedObj(2, 2)}, NextSerial: 3, Time: 3}); err != nil {
				t.Fatalf("commit after recovery: %v", err)
			}
			for _, h := range s2.Health() {
				if h.State == "degraded" {
					t.Errorf("replica %d degraded after crash recovery: %s", h.Replica, h.LastError)
				}
			}
		})
	}
}

// TestReadTrackReturnsPrivateCopy: mutating a payload returned by
// ReadTrack — from the device path or the cache path — must not corrupt
// later reads.
func TestReadTrackReturnsPrivateCopy(t *testing.T) {
	tm, err := NewTrackManager(t.TempDir(), 1024, 1, 8, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tm.Close()
	tm.Allocate(1)
	want := bytes.Repeat([]byte{0x5A}, 64)
	if err := tm.WriteTrack(0, want); err != nil {
		t.Fatal(err)
	}
	tm.DropCache()
	p1, err := tm.ReadTrack(0) // device read, fills cache
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		p1[i] = 0xFF
	}
	p2, err := tm.ReadTrack(0) // cache hit
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p2[:64], want) {
		t.Fatal("mutating a device-read payload corrupted the cache")
	}
	for i := range p2 {
		p2[i] = 0x00
	}
	p3, err := tm.ReadTrack(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p3[:64], want) {
		t.Fatal("mutating a cache-hit payload corrupted the cache")
	}
}

// syncToggleFile wraps a ReplicaFile so Sync can be made to fail on
// demand, letting a test target the scrub-time Sync specifically without
// counting operation ordinals.
type syncToggleFile struct {
	ReplicaFile
	fail *atomic.Bool
}

func (f *syncToggleFile) Sync() error {
	if f.fail.Load() {
		return errors.New("injected sync failure")
	}
	return f.ReplicaFile.Sync()
}

// TestScrubSurfacesSyncFailure: a scrub pass whose closing Sync loses the
// write quorum must say so in SyncErr — repairs that never reached the
// platter are not a successful pass. (Regression: the error used to be
// discarded, caught by gslint's errflow analyzer.)
func TestScrubSurfacesSyncFailure(t *testing.T) {
	var failSync atomic.Bool
	s, err := Open(t.TempDir(), Options{
		TrackSize: 1024, Replicas: 2, WriteQuorum: 2,
		OpenReplica: func(path string, replica int) (ReplicaFile, error) {
			f, err := osOpenReplica(path, replica)
			if err != nil || replica != 1 {
				return f, err
			}
			return &syncToggleFile{ReplicaFile: f, fail: &failSync}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := uint64(1); i <= 3; i++ {
		ob := namedObj(i, 2)
		if err := s.Apply(Commit{Objects: []*object.Object{ob}, NextSerial: i + 1, Time: oop.Time(i)}); err != nil {
			t.Fatal(err)
		}
	}
	res := s.Scrub()
	if res.SyncErr != nil {
		t.Fatalf("healthy scrub reported SyncErr = %v", res.SyncErr)
	}
	failSync.Store(true)
	res = s.Scrub()
	if res.SyncErr == nil {
		t.Fatal("scrub over a sync-failing arm with quorum 2/2: want non-nil SyncErr")
	}
	if res.Scanned == 0 || res.Lost != 0 {
		t.Fatalf("scan results lost alongside the sync failure: scanned=%d lost=%d", res.Scanned, res.Lost)
	}
	if h := s.Health(); h[1].State != "degraded" {
		t.Fatalf("sync-failing arm state = %q, want degraded", h[1].State)
	}
}
