package store

import (
	"encoding/binary"
	"fmt"

	"repro/internal/object"
	"repro/internal/oop"
)

// Object record wire format (little-endian):
//
//	magic   uint32  'GSOB'
//	oop     uint64
//	class   uint64
//	seg     uint32
//	format  uint8
//	payload:
//	  FormatBytes:  nVersions uint32 { time uint64; len uint32; bytes }
//	  otherwise:    nElems    uint32 { name uint64; nAssocs uint32 { time uint64; value uint64 } }
//
// Records are self-delimiting; the object table stores their lengths.
const recordMagic = 0x424F5347 // "GSOB"

// EncodeObject serializes ob, appending to dst.
func EncodeObject(dst []byte, ob *object.Object) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, recordMagic)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(ob.OOP))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(ob.Class))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(ob.Seg))
	dst = append(dst, byte(ob.Format))
	if ob.Format == object.FormatBytes {
		vs := ob.ByteVersions()
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(vs)))
		for _, v := range vs {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v.T))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(v.Bytes)))
			dst = append(dst, v.Bytes...)
		}
		return dst
	}
	elems := ob.Elements()
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(elems)))
	for i := range elems {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(elems[i].Name))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(elems[i].Hist)))
		for _, a := range elems[i].Hist {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(a.T))
			dst = binary.LittleEndian.AppendUint64(dst, uint64(a.Value))
		}
	}
	return dst
}

// EncodedSize returns the exact number of bytes EncodeObject will append
// for ob — the boxer's sizing pre-pass, so one slab allocation (or reuse)
// covers a whole commit batch. Must mirror EncodeObject field for field.
func EncodedSize(ob *object.Object) int {
	n := 4 + 8 + 8 + 4 + 1 // magic, oop, class, seg, format
	if ob.Format == object.FormatBytes {
		n += 4
		for _, v := range ob.ByteVersions() {
			n += 8 + 4 + len(v.Bytes)
		}
		return n
	}
	elems := ob.Elements()
	n += 4
	for i := range elems {
		n += 8 + 4 + 16*len(elems[i].Hist)
	}
	return n
}

type decoder struct {
	b   []byte
	off int
}

func (d *decoder) need(n int) error {
	if d.off+n > len(d.b) {
		return fmt.Errorf("store: truncated object record at offset %d (need %d of %d)", d.off, n, len(d.b))
	}
	return nil
}

func (d *decoder) u8() (byte, error) {
	if err := d.need(1); err != nil {
		return 0, err
	}
	v := d.b[d.off]
	d.off++
	return v, nil
}

func (d *decoder) u32() (uint32, error) {
	if err := d.need(4); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v, nil
}

func (d *decoder) u64() (uint64, error) {
	if err := d.need(8); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v, nil
}

func (d *decoder) bytes(n int) ([]byte, error) {
	if err := d.need(n); err != nil {
		return nil, err
	}
	v := d.b[d.off : d.off+n : d.off+n]
	d.off += n
	return v, nil
}

// DecodeObject parses one object record from b.
func DecodeObject(b []byte) (*object.Object, error) {
	d := &decoder{b: b}
	magic, err := d.u32()
	if err != nil {
		return nil, err
	}
	if magic != recordMagic {
		return nil, fmt.Errorf("store: bad object record magic %#x", magic)
	}
	o, err := d.u64()
	if err != nil {
		return nil, err
	}
	class, err := d.u64()
	if err != nil {
		return nil, err
	}
	seg, err := d.u32()
	if err != nil {
		return nil, err
	}
	format, err := d.u8()
	if err != nil {
		return nil, err
	}
	ob := object.New(oop.OOP(o), oop.OOP(class), object.SegmentID(seg), object.Format(format))
	if object.Format(format) == object.FormatBytes {
		n, err := d.u32()
		if err != nil {
			return nil, err
		}
		for i := uint32(0); i < n; i++ {
			t, err := d.u64()
			if err != nil {
				return nil, err
			}
			ln, err := d.u32()
			if err != nil {
				return nil, err
			}
			payload, err := d.bytes(int(ln))
			if err != nil {
				return nil, err
			}
			if err := ob.SetBytes(oop.Time(t), append([]byte(nil), payload...)); err != nil {
				return nil, err
			}
		}
		return ob, nil
	}
	nElems, err := d.u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nElems; i++ {
		name, err := d.u64()
		if err != nil {
			return nil, err
		}
		nAssoc, err := d.u32()
		if err != nil {
			return nil, err
		}
		el := ob.EnsureElement(oop.OOP(name))
		for j := uint32(0); j < nAssoc; j++ {
			t, err := d.u64()
			if err != nil {
				return nil, err
			}
			v, err := d.u64()
			if err != nil {
				return nil, err
			}
			if err := el.Record(oop.Time(t), oop.OOP(v)); err != nil {
				return nil, err
			}
		}
	}
	return ob, nil
}
