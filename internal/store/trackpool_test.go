package store

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/obs"
)

// TestTrackPoolReadersNeverSeeRecycledBytes is the dynamic proof behind
// the track-buffer slab: ReadTrack and ReadRange pop miss buffers from
// the recycle pool and return them to it before handing the caller a
// private copy, so a slice held by one reader must stay bit-stable while
// other goroutines churn the pool with misses, evictions and writes. A
// tight cache (2 tracks, 8 live) keeps every read on the miss/evict path
// where recycling is constant. Run under -race this also catches any
// write to a backing array a reader still holds, even one too quick for
// the byte comparison to observe.
func TestTrackPoolReadersNeverSeeRecycledBytes(t *testing.T) {
	const nTracks = 8
	tm, err := NewTrackManager(t.TempDir(), 1024, 1, 2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tm.Close()
	reg := obs.NewRegistry()
	tm.instrument(reg)
	tm.Allocate(nTracks)

	pattern := func(n uint32) []byte {
		return bytes.Repeat([]byte{byte(n) + 1}, 64)
	}
	for n := uint32(0); n < nTracks; n++ {
		if err := tm.WriteTrack(n, pattern(n)); err != nil {
			t.Fatal(err)
		}
	}
	tm.DropCache()

	const (
		readers  = 4
		rounds   = 200
		holdSpan = 3 // extra reads issued while a payload is held
	)
	var wg sync.WaitGroup
	errc := make(chan error, readers+1)

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed uint32) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				n := (seed + uint32(i)) % nTracks
				got, err := tm.ReadTrack(n)
				if err != nil {
					errc <- err
					return
				}
				want := pattern(n)
				if !bytes.Equal(got[:len(want)], want) {
					errc <- fmt.Errorf("track %d: read returned wrong bytes", n)
					return
				}
				snap := append([]byte(nil), got...)
				// Churn the pool while the payload is held: every miss
				// pops and recycles a buffer, every eviction recycles the
				// displaced cache entry.
				for j := 1; j <= holdSpan; j++ {
					if _, err := tm.ReadRange((n+uint32(j))%nTracks, 0, 32); err != nil {
						errc <- err
						return
					}
				}
				if !bytes.Equal(got, snap) {
					errc <- fmt.Errorf("track %d: held payload mutated by pool churn", n)
					return
				}
			}
		}(uint32(r * 3))
	}

	// One writer rewriting the same patterns through the batch path keeps
	// the write slab and cache-insert recycling busy without changing the
	// bytes readers expect.
	wg.Add(1)
	go func() {
		defer wg.Done()
		batch := make([]TrackWrite, 0, nTracks)
		for i := 0; i < rounds/4; i++ {
			batch = batch[:0]
			for n := uint32(0); n < nTracks; n++ {
				batch = append(batch, TrackWrite{Track: n, Payload: pattern(n)})
			}
			if err := tm.WriteRun(batch); err != nil {
				errc <- err
				return
			}
		}
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	if reg.Counter("store.slab.reuses").Value() == 0 {
		t.Error("pool churn produced zero slab reuses; the recycle path did not engage")
	}
}
