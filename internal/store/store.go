// Package store is the secondary-storage half of the Object Manager
// (paper §6): the Track Manager (whole-track replicated I/O), the Boxer
// (fitting serialized objects into tracks), the Commit Manager (atomic
// "safe writing" of track groups via alternating superblocks), and the
// global object table mapping OOP serials to track locations.
//
// Commits are shadow-paged: data tracks, object-table pages and the table
// directory are always written to freshly allocated tracks, and the commit
// becomes visible only when the alternate superblock — carrying the new
// epoch, table directory location, root, transaction time and serial
// high-water — is written. A crash at any earlier point leaves the previous
// superblock, and therefore the previous database state, fully intact:
// "all the tracks in the group get written, or none get written" (§6).
package store

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"

	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/oop"
)

// Options configures a Store.
type Options struct {
	TrackSize   int // bytes per track; default 8192
	Replicas    int // replica files; default 1
	CacheTracks int // in-memory track cache capacity; default 256

	// WriteQuorum is the minimum number of replica arms a write (and sync)
	// must reach for a commit to succeed; arms that fail are degraded and
	// skipped rather than poisoning the commit. Default 1; clamped to
	// [1, Replicas].
	WriteQuorum int

	// OpenReplica, when non-nil, supplies each replica arm's device in
	// place of the plain os.File opener — the hook the fault-injection
	// tests and availability experiments use to wrap arms with
	// internal/iofault schedules.
	OpenReplica OpenReplicaFunc

	// Obs, when non-nil, receives the store's instruments (track I/O,
	// cache hits, replica fallbacks, Apply latency). Nil disables
	// instrumentation at zero cost.
	Obs *obs.Registry

	// FailPoint, when non-nil, is consulted at each named step of the
	// commit protocol. Returning an error simulates a crash at that step:
	// the commit stops immediately with partial writes on disk. Used by the
	// recovery experiments (C6).
	FailPoint func(step string) error
}

func (o Options) withDefaults() Options {
	if o.TrackSize == 0 {
		o.TrackSize = 8192
	}
	if o.Replicas == 0 {
		o.Replicas = 1
	}
	if o.CacheTracks == 0 {
		o.CacheTracks = 256
	}
	return o
}

// Meta is the durable database metadata carried by the superblock.
type Meta struct {
	Epoch      uint64   // commit counter; highest valid superblock wins
	LastTime   oop.Time // latest committed transaction time
	NextSerial uint64   // OOP serial high-water mark
	Root       oop.OOP  // the distinguished root object ("World")
}

// Locator is an object-table entry: where an object record lives.
type Locator struct {
	Track  uint32
	Offset uint32
	Length uint32
	Flags  uint32
}

const (
	locatorLen   = 16
	flagArchived = 1 // moved to offline media by an administrator (§6)
)

// ErrNotFound reports a serial with no object-table entry.
var ErrNotFound = errors.New("store: object not found")

// ErrArchived reports an object moved to offline media.
var ErrArchived = errors.New("store: object archived to offline media")

// ErrCrashed is wrapped by commit errors produced by an injected FailPoint.
var ErrCrashed = errors.New("store: simulated crash")

// Store is the persistent object repository.
type Store struct {
	mu    sync.Mutex // guards meta, super, pageTracks, pageCache, archive, dirTrackPending
	tm    *TrackManager
	opts  Options
	meta  Meta
	super uint32 // track number of the *next* superblock slot to write (0 or 1)

	pageTracks      []uint32          // table directory: page index -> track
	pageCache       map[int][]Locator // parsed object-table pages
	archive         map[uint64][]byte // offline media simulation: serial -> record
	dirTrackPending uint32            // directory chain head for the superblock being written
	entriesPerPage  int

	scratch  applyScratch // commit-path slabs, reused across Applies under mu
	pagePool [][]Locator  // recycled object-table pages (COW scratch)

	met storeMetrics
}

// applyScratch holds the commit hot path's reusable buffers. Everything
// here is owned by Apply and only valid under s.mu; no buffer may escape
// except by the documented handoffs — committed COW pages move into
// pageCache (and the pages they replace come back to the pool), and the
// superseded table directory becomes the next commit's directory scratch.
// See DESIGN.md "Commit pipeline" for the ownership rules aliasret
// enforces.
type applyScratch struct {
	buf        []byte       // boxer encode slab, presized by EncodedSize
	places     []placed     // where each record landed in buf
	order      []int        // places indexes in ascending-serial order
	writes     []TrackWrite // write batch handed to WriteRun
	pageTracks []uint32     // next table directory, double-buffered with s.pageTracks
	pageOrder  []int        // dirtyPages indexes in ascending-page order
	dirtyPages []cowPage    // COW'd table pages, in creation order
	dirtyAt    map[int]int  // page index -> position in dirtyPages
	img        []byte       // encode slab for table pages + directory chain
	superBuf   []byte       // superblock encode buffer
}

// placed records where one serialized object landed in the encode slab.
type placed struct {
	serial uint64
	off    int
	length int
}

// cowPage is one copy-on-write object-table page awaiting publication.
type cowPage struct {
	idx  int
	page []Locator
}

// pagePoolCap bounds the recycled-page pool; beyond it pages are dropped
// to the collector rather than pinned.
const pagePoolCap = 64

// takePage pops a recycled page of length n from the pool or allocates a
// fresh one. The second result reports whether the pool served it. Free
// function, same reasoning as popTrack: the loan discipline lives at the
// call sites aliasret watches.
func takePage(pool *[][]Locator, n int) ([]Locator, bool) {
	for len(*pool) > 0 {
		last := len(*pool) - 1
		p := (*pool)[last]
		(*pool)[last] = nil
		*pool = (*pool)[:last]
		if len(p) == n {
			return p, true
		}
	}
	return make([]Locator, n), false
}

// putPage returns a page to the pool, dropping it when the pool is full.
func putPage(pool *[][]Locator, page []Locator) {
	if page == nil || len(*pool) >= pagePoolCap {
		return
	}
	*pool = append(*pool, page)
}

// storeMetrics holds the commit-path instruments. Atomic instruments, not
// guarded state: recording never needs s.mu.
type storeMetrics struct {
	applies    *obs.Counter   // Apply calls that reached the superblock flip
	degraded   *obs.Counter   // successful applies while an arm was degraded
	applyNS    *obs.Histogram // whole Apply latency, boxer through flip
	slabReuses *obs.Counter   // commit-path slabs served by reuse (shared with TrackManager)
	slabGrows  *obs.Counter   // commit-path slabs that had to (re)allocate
}

// Commit is one atomic batch of changes.
type Commit struct {
	Objects    []*object.Object // full current state of every written object
	Root       oop.OOP          // new root, or Invalid to keep current
	NextSerial uint64           // serial high-water after this commit
	Time       oop.Time         // the assigned transaction time

	// ArchiveSerials marks these serials as moved to offline media without
	// rewriting their records (administrative archival, §6).
	ArchiveSerials []uint64
}

// Open opens or creates a database under dir.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	tm, err := NewTrackManager(dir, opts.TrackSize, opts.Replicas, opts.CacheTracks, opts.WriteQuorum, opts.OpenReplica)
	if err != nil {
		return nil, err
	}
	s := &Store{
		tm:        tm,
		opts:      opts,
		pageCache: make(map[int][]Locator),
		archive:   make(map[uint64][]byte),
	}
	s.entriesPerPage = tm.PayloadSize() / locatorLen
	s.met = storeMetrics{
		applies:    opts.Obs.Counter("store.applies"),
		degraded:   opts.Obs.Counter("store.commits.degraded"),
		applyNS:    opts.Obs.Histogram("store.apply.ns", obs.LatencyBounds),
		slabReuses: opts.Obs.Counter("store.slab.reuses"),
		slabGrows:  opts.Obs.Counter("store.slab.grows"),
	}
	tm.instrument(opts.Obs)
	// No other goroutine can reach a store that Open has not returned, but
	// the helpers below touch guarded state, so take the lock anyway and
	// keep the locking discipline uniform.
	s.mu.Lock()
	defer s.mu.Unlock()
	if tm.Tracks() == 0 {
		if err := s.initializeLocked(); err != nil {
			tm.Close()
			return nil, err
		}
		return s, nil
	}
	if err := s.recoverLocked(); err != nil {
		tm.Close()
		return nil, err
	}
	return s, nil
}

// initialize lays out a fresh database: two superblock tracks and an empty
// table.
func (s *Store) initializeLocked() error {
	s.tm.Allocate(2) // tracks 0 and 1: the alternating superblock slots
	s.meta = Meta{Epoch: 1, LastTime: 0, NextSerial: 1, Root: oop.Invalid}
	s.super = 1 // epoch 1 goes to slot 0; writeSuper flips from s.super
	if err := s.writeSuperblockLocked(); err != nil {
		return err
	}
	return s.tm.Sync()
}

// Superblock payload layout:
//
//	crcLen-prefixed region:
//	magic u32 | epoch u64 | lastTime u64 | nextSerial u64 | root u64 |
//	nTracks u32 | nPages u32 | dirTrack u32 (first directory track; 0 none)
//	| crc u32 at fixed tail of region
const superMagic = 0x50555347                          // "GSUP"
const superLen = 4 + 8 + 8 + 8 + 8 + 4 + 4 + 4 + 4 + 4 // ... + trackSize + crc

func (s *Store) encodeSuperblockLocked() []byte {
	// The returned buffer is the reusable superblock slab: WriteTrack copies
	// it into the track-image scratch before any I/O, so handing it out is
	// a loan that ends when writeSuperblockLocked returns.
	if cap(s.scratch.superBuf) < superLen {
		s.scratch.superBuf = make([]byte, superLen)
	}
	b := s.scratch.superBuf[:superLen]
	putU32(b[0:], superMagic)
	putU64(b[4:], s.meta.Epoch)
	putU64(b[12:], uint64(s.meta.LastTime))
	putU64(b[20:], s.meta.NextSerial)
	putU64(b[28:], uint64(s.meta.Root))
	putU32(b[36:], s.tm.Tracks())
	putU32(b[40:], uint32(len(s.pageTracks)))
	dirTrack := uint32(0)
	if len(s.pageTracks) > 0 {
		dirTrack = s.dirTrackPending
	}
	putU32(b[44:], dirTrack)
	putU32(b[48:], uint32(s.opts.TrackSize))
	putU32(b[52:], crc32.ChecksumIEEE(b[:52]))
	return b
}

func (s *Store) writeSuperblockLocked() error {
	slot := 1 - s.super // alternate
	if err := s.tm.WriteTrack(slot, s.encodeSuperblockLocked()); err != nil {
		return err
	}
	if err := s.tm.Sync(); err != nil {
		return err
	}
	s.super = slot
	return nil
}

type superblock struct {
	meta     Meta
	nTracks  uint32
	nPages   uint32
	dirTrack uint32
	slot     uint32
}

func parseSuperblock(b []byte, slot uint32) (superblock, bool) {
	if len(b) < superLen || getU32(b[0:]) != superMagic {
		return superblock{}, false
	}
	if crc32.ChecksumIEEE(b[:52]) != getU32(b[52:]) {
		return superblock{}, false
	}
	return superblock{
		meta: Meta{
			Epoch:      getU64(b[4:]),
			LastTime:   oop.Time(getU64(b[12:])),
			NextSerial: getU64(b[20:]),
			Root:       oop.OOP(getU64(b[28:])),
		},
		nTracks:  getU32(b[36:]),
		nPages:   getU32(b[40:]),
		dirTrack: getU32(b[44:]),
		slot:     slot,
	}, true
}

// recover selects the newest valid superblock and rebuilds the table
// directory from it. This is the entire crash-recovery procedure: shadow
// paging means there is no log to replay.
//
// Both slots of EVERY arm are consulted, not just the first arm that
// parses: an arm that sat degraded while commits continued holds a stale
// superblock whose tracks still carry valid checksums, so letting arm 0
// answer first could silently roll the database back. The highest epoch
// anywhere wins, and any arm whose own best superblock lags it is
// degraded on the spot — its checksums cannot be trusted to mean
// "current", only Rebuild reinstates it.
func (s *Store) recoverLocked() error {
	nArms := s.tm.Replicas()
	var best superblock
	found := false
	armEpoch := make([]uint64, nArms)
	armValid := make([]bool, nArms)
	for ri := 0; ri < nArms; ri++ {
		for slot := uint32(0); slot < 2; slot++ {
			payload, err := s.tm.ReadTrackReplica(ri, slot)
			if err != nil {
				continue
			}
			sb, ok := parseSuperblock(payload, slot)
			if !ok {
				continue
			}
			if !armValid[ri] || sb.meta.Epoch > armEpoch[ri] {
				armEpoch[ri] = sb.meta.Epoch
				armValid[ri] = true
			}
			if !found || sb.meta.Epoch > best.meta.Epoch {
				best, found = sb, true
			}
		}
	}
	if !found {
		// A common cause is opening with a different track size than the
		// database was created with: the superblock sits at a fixed offset,
		// so read it raw to produce an actionable error.
		if stored, ok := s.probeStoredTrackSize(); ok && stored != uint32(s.opts.TrackSize) {
			return fmt.Errorf("store: database was created with track size %d, opened with %d", stored, s.opts.TrackSize)
		}
		return errors.New("store: no valid superblock; database unrecoverable")
	}
	s.meta = best.meta
	s.super = best.slot
	for ri := 0; ri < nArms; ri++ {
		if !armValid[ri] || armEpoch[ri] < best.meta.Epoch {
			_ = s.tm.DegradeReplica(ri, fmt.Sprintf("store: superblock epoch %d behind committed %d; arm missed safe-writes", armEpoch[ri], best.meta.Epoch))
		}
	}
	// Trust the committed high-water mark, not the file size: tracks past it
	// are debris from an interrupted commit and may be overwritten.
	s.tm.mu.Lock()
	s.tm.nTracks = best.nTracks
	s.tm.mu.Unlock()
	s.pageTracks = nil
	s.pageCache = make(map[int][]Locator)
	if best.nPages > 0 {
		tracks, err := s.readDirectoryChain(best.dirTrack, int(best.nPages))
		if err != nil {
			return err
		}
		s.pageTracks = tracks
	}
	return nil
}

// Directory chain track layout: count u32 | next u32 | count page-track u32s.
func (s *Store) readDirectoryChain(first uint32, nPages int) ([]uint32, error) {
	tracks := make([]uint32, 0, nPages)
	cur := first
	for cur != 0 && len(tracks) < nPages {
		p, err := s.tm.ReadTrack(cur)
		if err != nil {
			return nil, fmt.Errorf("store: table directory unreadable: %w", err)
		}
		count := int(getU32(p[0:]))
		next := getU32(p[4:])
		for i := 0; i < count; i++ {
			tracks = append(tracks, getU32(p[8+4*i:]))
		}
		cur = next
	}
	if len(tracks) != nPages {
		return nil, fmt.Errorf("store: table directory truncated: %d of %d pages", len(tracks), nPages)
	}
	return tracks, nil
}

// probeStoredTrackSize reads the raw head of the primary replica and pulls
// the track size recorded in superblock slot 0, bypassing checksums.
func (s *Store) probeStoredTrackSize() (uint32, bool) {
	s.tm.mu.Lock()
	defer s.tm.mu.Unlock()
	if len(s.tm.arms) == 0 {
		return 0, false
	}
	buf := make([]byte, trackHeaderLen+superLen)
	if _, err := s.tm.arms[0].f.ReadAt(buf, 0); err != nil {
		return 0, false
	}
	if getU32(buf[trackHeaderLen:]) != superMagic {
		return 0, false
	}
	return getU32(buf[trackHeaderLen+48:]), true
}

// Meta returns the durable metadata of the last committed state.
func (s *Store) Meta() Meta {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.meta
}

// TrackManager exposes the underlying device for statistics and damage
// injection in experiments.
func (s *Store) TrackManager() *TrackManager { return s.tm }

// Health reports the state of every replica arm.
func (s *Store) Health() []ArmHealth { return s.tm.Health() }

// Scrub runs one online scrub pass over every allocated track, repairing
// damaged copies from a valid arm. Commits proceed concurrently.
func (s *Store) Scrub() ScrubResult { return s.tm.Scrub() }

// Rebuild reconstructs the given replica arm from the surviving arms and
// reinstates it to healthy.
func (s *Store) Rebuild(replica int) error { return s.tm.Rebuild(replica) }

// Close releases the store.
func (s *Store) Close() error { return s.tm.Close() }

func (s *Store) failpoint(step string) error {
	if s.opts.FailPoint == nil {
		return nil
	}
	if err := s.opts.FailPoint(step); err != nil {
		return fmt.Errorf("%w at %q: %v", ErrCrashed, step, err)
	}
	return nil
}

// loadPage returns the parsed object-table page with the given index,
// using the cache.
func (s *Store) loadPageLocked(idx int) ([]Locator, error) {
	if p, ok := s.pageCache[idx]; ok {
		//lint:ignore aliasret cached pages are copy-on-write: Apply clones via ensureDirty before mutating, readers never write through the returned slice
		return p, nil
	}
	if idx >= len(s.pageTracks) {
		return nil, ErrNotFound
	}
	raw, err := s.tm.ReadTrack(s.pageTracks[idx])
	if err != nil {
		return nil, err
	}
	page := make([]Locator, s.entriesPerPage)
	for i := 0; i < s.entriesPerPage; i++ {
		off := i * locatorLen
		page[i] = Locator{
			Track:  getU32(raw[off:]),
			Offset: getU32(raw[off+4:]),
			Length: getU32(raw[off+8:]),
			Flags:  getU32(raw[off+12:]),
		}
	}
	s.pageCache[idx] = page
	return page, nil
}

// locate returns the Locator for a serial.
func (s *Store) locateLocked(serial uint64) (Locator, error) {
	if serial == 0 {
		return Locator{}, ErrNotFound
	}
	idx := int((serial - 1) / uint64(s.entriesPerPage))
	page, err := s.loadPageLocked(idx)
	if err != nil {
		return Locator{}, err
	}
	loc := page[(serial-1)%uint64(s.entriesPerPage)]
	if loc.Length == 0 {
		return Locator{}, ErrNotFound
	}
	return loc, nil
}

// Load reads, decodes and returns the object with the given OOP from the
// committed state.
func (s *Store) Load(o oop.OOP) (*object.Object, error) {
	if !o.IsHeap() {
		return nil, fmt.Errorf("store: cannot load immediate %v", o)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	loc, err := s.locateLocked(o.Serial())
	if err != nil {
		return nil, fmt.Errorf("%w: %v", err, o)
	}
	if loc.Flags&flagArchived != 0 {
		raw, ok := s.archive[o.Serial()]
		if !ok {
			return nil, fmt.Errorf("%w: %v", ErrArchived, o)
		}
		return DecodeObject(raw)
	}
	raw, err := s.tm.ReadRange(loc.Track, int(loc.Offset), int(loc.Length))
	if err != nil {
		return nil, err
	}
	ob, err := DecodeObject(raw)
	if err != nil {
		return nil, err
	}
	if ob.OOP != o {
		return nil, fmt.Errorf("store: object table corruption: wanted %v, record holds %v", o, ob.OOP)
	}
	return ob, nil
}

// Exists reports whether the committed state holds an object for o.
func (s *Store) Exists(o oop.OOP) bool {
	if !o.IsHeap() {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.locateLocked(o.Serial())
	return err == nil
}

// Apply runs the commit protocol for one batch. On success the batch is
// durable and visible; on any error (including injected crashes) the
// previous state remains the recoverable one.
func (s *Store) Apply(c Commit) error {
	sw := s.met.applyNS.Start()
	s.mu.Lock()
	defer s.mu.Unlock()
	defer sw.Stop()

	// --- Boxer: pack serialized records contiguously into fresh tracks ---
	// A sizing pre-pass presizes the encode slab exactly, so a steady-state
	// commit appends into recycled memory instead of growing a fresh buffer.
	payload := s.tm.PayloadSize()
	need := 0
	for _, ob := range c.Objects {
		need += EncodedSize(ob)
	}
	if cap(s.scratch.buf) < need {
		s.scratch.buf = make([]byte, 0, need)
		s.met.slabGrows.Inc()
	} else {
		s.met.slabReuses.Inc()
	}
	buf := s.scratch.buf[:0]
	places := s.scratch.places[:0]
	for _, ob := range c.Objects {
		start := len(buf)
		buf = EncodeObject(buf, ob)
		places = append(places, placed{ob.OOP.Serial(), start, len(buf) - start})
	}
	s.scratch.buf, s.scratch.places = buf, places
	nData := (len(buf) + payload - 1) / payload
	firstData := s.tm.Allocate(nData)
	writes := s.scratch.writes[:0]
	for i := 0; i < nData; i++ {
		lo := i * payload
		hi := lo + payload
		if hi > len(buf) {
			hi = len(buf)
		}
		writes = append(writes, TrackWrite{Track: firstData + uint32(i), Payload: buf[lo:hi]})
	}
	s.scratch.writes = writes
	if err := s.failpoint("before-data"); err != nil {
		return err
	}
	if err := s.tm.WriteRun(writes); err != nil {
		return err
	}
	if err := s.failpoint("after-data"); err != nil {
		return err
	}

	// --- Object table: copy-on-write the affected pages ---
	maxSerial := s.meta.NextSerial
	if c.NextSerial > maxSerial {
		maxSerial = c.NextSerial
	}
	neededPages := int((maxSerial - 1 + uint64(s.entriesPerPage) - 1) / uint64(s.entriesPerPage))
	if maxSerial <= 1 {
		neededPages = 0
	}
	// The next directory is double-buffered with the live one: on success
	// the superseded directory becomes the scratch for the commit after.
	npt := append(s.scratch.pageTracks[:0], s.pageTracks...)
	for len(npt) < neededPages {
		npt = append(npt, 0) // fresh empty page
	}
	s.scratch.pageTracks = npt
	dirtyPages := s.scratch.dirtyPages[:0]
	if s.scratch.dirtyAt == nil {
		s.scratch.dirtyAt = make(map[int]int)
	}
	dirtyAt := s.scratch.dirtyAt
	clear(dirtyAt)
	committed := false
	defer func() {
		// A failed Apply owes every COW page back to the pool; a committed
		// one has already published them into the page cache (recycling the
		// pages they replaced instead).
		if !committed {
			for i := range dirtyPages {
				putPage(&s.pagePool, dirtyPages[i].page)
			}
		}
		s.scratch.dirtyPages = dirtyPages[:0]
	}()
	pageOf := func(serial uint64) (int, int) {
		return int((serial - 1) / uint64(s.entriesPerPage)), int((serial - 1) % uint64(s.entriesPerPage))
	}
	ensureDirty := func(idx int) ([]Locator, error) {
		if pi, ok := dirtyAt[idx]; ok {
			return dirtyPages[pi].page, nil
		}
		page, reused := takePage(&s.pagePool, s.entriesPerPage)
		if reused {
			s.met.slabReuses.Inc()
		} else {
			s.met.slabGrows.Inc()
		}
		if idx < len(s.pageTracks) && npt[idx] != 0 {
			orig, err := s.loadPageLocked(idx)
			if err != nil {
				putPage(&s.pagePool, page)
				return nil, err
			}
			copy(page, orig)
		} else {
			clear(page) // recycled pages carry stale locators; fresh pages are empty
		}
		dirtyAt[idx] = len(dirtyPages)
		dirtyPages = append(dirtyPages, cowPage{idx: idx, page: page})
		//lint:ignore bufown ownership transfers to Apply: the deferred cleanup recycles the page on failure and the page cache takes it on commit
		return page, nil
	}
	// Ascending serial order keeps page materialization deterministic for
	// identical commits (detmap invariant); a stable index tie-break keeps
	// last-wins semantics for duplicate serials in one batch.
	order := s.scratch.order[:0]
	for i := range places {
		order = append(order, i)
	}
	s.scratch.order = order
	sort.SliceStable(order, func(a, b int) bool { return places[order[a]].serial < places[order[b]].serial })
	for _, pi := range order {
		p := places[pi]
		idx, slot := pageOf(p.serial)
		page, err := ensureDirty(idx)
		if err != nil {
			return err
		}
		page[slot] = Locator{
			Track:  firstData + uint32(p.off/payload),
			Offset: uint32(p.off % payload),
			Length: uint32(p.length),
		}
	}
	for _, serial := range c.ArchiveSerials {
		idx, slot := pageOf(serial)
		page, err := ensureDirty(idx)
		if err != nil {
			return err
		}
		page[slot].Flags |= flagArchived
	}
	// Fresh pages beyond the old table that received no locator still need
	// allocation (all-empty pages), so every page index has a track.
	for idx := range npt {
		if npt[idx] == 0 {
			if _, err := ensureDirty(idx); err != nil {
				return err
			}
		}
	}
	// Ascending page order keeps the page-index -> track assignment (and so
	// the whole shadow-paged image) identical for identical commits.
	pageOrder := s.scratch.pageOrder[:0]
	for i := range dirtyPages {
		pageOrder = append(pageOrder, i)
	}
	s.scratch.pageOrder = pageOrder
	sort.Slice(pageOrder, func(a, b int) bool { return dirtyPages[pageOrder[a]].idx < dirtyPages[pageOrder[b]].idx })
	// One image slab carries the encoded table pages and the directory
	// chain; WriteRun copies into its own scratch, so slices of img are
	// loans that end at each WriteRun return.
	rawLen := s.entriesPerPage * locatorLen
	perDir := (payload - 8) / 4
	nDir := 0
	if len(npt) > 0 {
		nDir = (len(npt) + perDir - 1) / perDir
	}
	imgNeed := len(dirtyPages)*rawLen + nDir*8 + len(npt)*4
	if cap(s.scratch.img) < imgNeed {
		s.scratch.img = make([]byte, imgNeed)
		s.met.slabGrows.Inc()
	} else {
		s.met.slabReuses.Inc()
	}
	img := s.scratch.img[:cap(s.scratch.img)]
	imgOff := 0
	firstPage := s.tm.Allocate(len(dirtyPages))
	writes = writes[:0]
	for pi, di := range pageOrder {
		d := dirtyPages[di]
		tr := firstPage + uint32(pi)
		npt[d.idx] = tr
		raw := img[imgOff : imgOff+rawLen]
		imgOff += rawLen
		for i, loc := range d.page {
			off := i * locatorLen
			putU32(raw[off:], loc.Track)
			putU32(raw[off+4:], loc.Offset)
			putU32(raw[off+8:], loc.Length)
			putU32(raw[off+12:], loc.Flags)
		}
		writes = append(writes, TrackWrite{Track: tr, Payload: raw})
	}
	s.scratch.writes = writes
	if err := s.tm.WriteRun(writes); err != nil {
		return err
	}
	if err := s.failpoint("after-table"); err != nil {
		return err
	}

	// --- Table directory chain ---
	var dirHead uint32
	if len(npt) > 0 {
		firstDir := s.tm.Allocate(nDir)
		writes = writes[:0]
		for i := 0; i < nDir; i++ {
			lo := i * perDir
			hi := lo + perDir
			if hi > len(npt) {
				hi = len(npt)
			}
			raw := img[imgOff : imgOff+8+4*(hi-lo)]
			imgOff += len(raw)
			putU32(raw[0:], uint32(hi-lo))
			next := uint32(0)
			if i+1 < nDir {
				next = firstDir + uint32(i) + 1
			}
			putU32(raw[4:], next)
			for j := lo; j < hi; j++ {
				putU32(raw[8+4*(j-lo):], npt[j])
			}
			writes = append(writes, TrackWrite{Track: firstDir + uint32(i), Payload: raw})
		}
		s.scratch.writes = writes
		if err := s.tm.WriteRun(writes); err != nil {
			return err
		}
		dirHead = firstDir
	}
	if err := s.failpoint("after-directory"); err != nil {
		return err
	}
	if err := s.tm.Sync(); err != nil {
		return err
	}

	// --- Commit point: flip the superblock ---
	newMeta := s.meta
	newMeta.Epoch++
	if c.Time > newMeta.LastTime {
		newMeta.LastTime = c.Time // never regress on out-of-band system commits
	}
	newMeta.NextSerial = maxSerial
	if c.Root != oop.Invalid {
		newMeta.Root = c.Root
	}
	oldMeta, oldPages := s.meta, s.pageTracks
	s.meta = newMeta
	s.pageTracks = npt
	s.dirTrackPending = dirHead
	if err := s.failpoint("before-superblock"); err != nil {
		s.meta, s.pageTracks = oldMeta, oldPages
		return err
	}
	if err := s.writeSuperblockLocked(); err != nil {
		s.meta, s.pageTracks = oldMeta, oldPages
		return err
	}
	// Commit point passed: the new pages supersede cached copies, which
	// come back to the pool, and the superseded directory becomes the next
	// commit's scratch.
	committed = true
	for i := range dirtyPages {
		if old, ok := s.pageCache[dirtyPages[i].idx]; ok {
			putPage(&s.pagePool, old)
		}
		s.pageCache[dirtyPages[i].idx] = dirtyPages[i].page
	}
	s.scratch.pageTracks = oldPages[:0]
	s.met.applies.Inc()
	if s.tm.DegradedArms() > 0 {
		s.met.degraded.Inc()
	}
	return nil
}

// Archive moves the objects with the given OOPs to the simulated offline
// medium ("A database administrator can explicitly move objects to other
// media", §6). The records are copied to the archive and the object-table
// entries are flagged through the normal commit protocol; subsequent Loads
// consult the archive. "Hence, while conceptually the entire history of the
// database exists, some objects in it may become temporarily or permanently
// inaccessible" — detaching the archive (DetachArchive) makes Load return
// ErrArchived.
func (s *Store) Archive(t oop.Time, oops []oop.OOP) error {
	s.mu.Lock()
	serials := make([]uint64, 0, len(oops))
	for _, o := range oops {
		loc, err := s.locateLocked(o.Serial())
		if err != nil {
			s.mu.Unlock()
			return err
		}
		raw, err := s.tm.ReadRange(loc.Track, int(loc.Offset), int(loc.Length))
		if err != nil {
			s.mu.Unlock()
			return err
		}
		s.archive[o.Serial()] = raw
		serials = append(serials, o.Serial())
	}
	next := s.meta.NextSerial
	s.mu.Unlock()
	return s.Apply(Commit{Time: t, NextSerial: next, ArchiveSerials: serials})
}

// DetachArchive simulates dismounting the offline medium.
func (s *Store) DetachArchive() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.archive = make(map[uint64][]byte)
}

func putU64(b []byte, v uint64) {
	putU32(b, uint32(v))
	putU32(b[4:], uint32(v>>32))
}

func getU64(b []byte) uint64 {
	return uint64(getU32(b)) | uint64(getU32(b[4:]))<<32
}
