package store

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/obs"
)

// TrackManager performs whole-track I/O against a set of replica files,
// reproducing the paper's device model: "Disk access will always be by
// entire tracks, as a track is the natural unit of physical access"
// (§6). Writes go to every replica; reads validate a per-track checksum and
// fall back to the next replica on damage, which is the paper's "requests
// for replication of data".
//
// Write scheduling sorts each group by ascending track number — the
// elevator pass a real controller would make — and the manager keeps seek
// statistics so benchmarks can report scheduling effects.
type TrackManager struct {
	trackSize int
	payload   int // trackSize minus checksum header

	mu       sync.Mutex // guards replicas, nTracks, lastPos, cache, stats, scratch
	replicas []*os.File
	paths    []string
	nTracks  uint32 // allocation high-water mark
	lastPos  uint32 // last track touched, for seek accounting
	cache    map[uint32][]byte
	cacheCap int
	scratch  []byte // reusable whole-group track-image encode buffer

	stats TrackStats
	met   trackMetrics
}

// trackMetrics mirrors TrackStats into the obs registry so live counters
// are visible without polling Stats(). Atomic instruments, not guarded
// state. The per-replica fallback counters give the §6 availability story a
// per-device view: which mirror is serving reads the primary lost.
type trackMetrics struct {
	reads        *obs.Counter // device track reads (cache misses)
	writes       *obs.Counter // per-replica track writes
	bytesRead    *obs.Counter
	bytesWritten *obs.Counter
	cacheHits    *obs.Counter
	syncs        *obs.Counter
	fallbacks    []*obs.Counter // indexed by the replica that salvaged the read
}

// TrackStats counts physical I/O for benchmark reporting.
type TrackStats struct {
	Reads            uint64 // track reads that went to a device
	Writes           uint64 // per-replica track writes
	CacheHits        uint64
	ReplicaFallbacks uint64 // reads salvaged from a later replica
	SeekDistance     uint64 // cumulative |Δtrack| across device accesses
}

const trackHeaderLen = 8      // crc32 (4) + magic (4)
const trackMagic = 0x4B525447 // "GTRK"

// NewTrackManager opens (creating if needed) nReplicas files under dir.
func NewTrackManager(dir string, trackSize, nReplicas, cacheTracks int) (*TrackManager, error) {
	if trackSize < 512 {
		return nil, fmt.Errorf("store: track size %d too small", trackSize)
	}
	if nReplicas < 1 {
		nReplicas = 1
	}
	tm := &TrackManager{
		trackSize: trackSize,
		payload:   trackSize - trackHeaderLen,
		cache:     make(map[uint32][]byte),
		cacheCap:  cacheTracks,
	}
	for i := 0; i < nReplicas; i++ {
		p := filepath.Join(dir, fmt.Sprintf("replica%d.gs", i))
		f, err := os.OpenFile(p, os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			tm.Close()
			return nil, fmt.Errorf("store: open replica: %w", err)
		}
		tm.replicas = append(tm.replicas, f)
		tm.paths = append(tm.paths, p)
	}
	// Recover the high-water mark from the primary's size.
	st, err := tm.replicas[0].Stat()
	if err != nil {
		tm.Close()
		return nil, err
	}
	tm.nTracks = uint32(st.Size() / int64(trackSize))
	return tm, nil
}

// PayloadSize returns usable bytes per track.
func (tm *TrackManager) PayloadSize() int { return tm.payload }

// Tracks returns the allocation high-water mark.
func (tm *TrackManager) Tracks() uint32 {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	return tm.nTracks
}

// Allocate reserves n fresh tracks and returns the first track number.
// Allocation is append-only: committed tracks are never overwritten, the
// write-once style the paper anticipates for optical media ([Cp], §5.3.1
// footnote on storage cost trends). Reclamation is an administrative
// archival action, not reuse.
func (tm *TrackManager) Allocate(n int) uint32 {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	first := tm.nTracks
	tm.nTracks += uint32(n)
	return first
}

// instrument attaches the obs registry's counters. A nil registry hands
// out nil (no-op) instruments, so this is unconditional in Open.
func (tm *TrackManager) instrument(reg *obs.Registry) {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	tm.met = trackMetrics{
		reads:        reg.Counter("store.track.reads"),
		writes:       reg.Counter("store.track.writes"),
		bytesRead:    reg.Counter("store.track.bytes.read"),
		bytesWritten: reg.Counter("store.track.bytes.written"),
		cacheHits:    reg.Counter("store.cache.hits"),
		syncs:        reg.Counter("store.syncs"),
	}
	for i := range tm.replicas {
		tm.met.fallbacks = append(tm.met.fallbacks, reg.Counter(fmt.Sprintf("store.replica.fallbacks.r%d", i)))
	}
}

// Stats returns a snapshot of the I/O counters.
func (tm *TrackManager) Stats() TrackStats {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	return tm.stats
}

// ResetStats zeroes the I/O counters (between benchmark phases).
func (tm *TrackManager) ResetStats() {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	tm.stats = TrackStats{}
}

func (tm *TrackManager) seekToLocked(track uint32) {
	d := int64(track) - int64(tm.lastPos)
	if d < 0 {
		d = -d
	}
	tm.stats.SeekDistance += uint64(d)
	tm.lastPos = track
}

// WriteGroup writes a set of tracks to every replica, sorted ascending
// (elevator order). The track images are encoded once into a reusable
// scratch buffer, then fanned out to all replicas concurrently — mirrored
// controllers seek in parallel, so a replicated safe-write costs one
// device pass, not Replicas sequential passes. Payloads shorter than the
// track payload are zero-padded; longer payloads are an error.
func (tm *TrackManager) WriteGroup(group map[uint32][]byte) error {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	nums := make([]uint32, 0, len(group))
	for n := range group {
		nums = append(nums, n)
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	need := len(nums) * tm.trackSize
	if cap(tm.scratch) < need {
		tm.scratch = make([]byte, need)
	}
	slab := tm.scratch[:need]
	for i, n := range nums {
		p := group[n]
		if len(p) > tm.payload {
			return fmt.Errorf("store: track payload %d exceeds %d", len(p), tm.payload)
		}
		buf := slab[i*tm.trackSize : (i+1)*tm.trackSize]
		copy(buf[trackHeaderLen:], p)
		for j := trackHeaderLen + len(p); j < len(buf); j++ {
			buf[j] = 0
		}
		sum := crc32.ChecksumIEEE(buf[trackHeaderLen:])
		putU32(buf[0:], sum)
		putU32(buf[4:], trackMagic)
		tm.seekToLocked(n)
		tm.stats.Writes += uint64(len(tm.replicas))
	}
	tm.met.writes.Add(uint64(len(nums) * len(tm.replicas)))
	tm.met.bytesWritten.Add(uint64(need * len(tm.replicas)))
	if err := tm.fanoutLocked(slab, nums); err != nil {
		return err
	}
	for i, n := range nums {
		tm.cacheInsertLocked(n, append([]byte(nil), slab[i*tm.trackSize+trackHeaderLen:(i+1)*tm.trackSize]...))
	}
	return nil
}

// fanoutLocked pushes the encoded track images to every replica: inline
// for a single file, one goroutine per replica otherwise. WriteAt is safe
// for concurrent use, and each goroutine touches only its own file and
// error slot.
func (tm *TrackManager) fanoutLocked(slab []byte, nums []uint32) error {
	ts := tm.trackSize
	writeAll := func(f *os.File) error {
		for i, n := range nums {
			if _, err := f.WriteAt(slab[i*ts:(i+1)*ts], int64(n)*int64(ts)); err != nil {
				return fmt.Errorf("store: write track %d: %w", n, err)
			}
		}
		return nil
	}
	if len(tm.replicas) == 1 {
		return writeAll(tm.replicas[0])
	}
	errs := make([]error, len(tm.replicas))
	var wg sync.WaitGroup
	for ri, f := range tm.replicas {
		wg.Add(1)
		go func(ri int, f *os.File) {
			defer wg.Done()
			errs[ri] = writeAll(f)
		}(ri, f)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteTrack writes a single track.
func (tm *TrackManager) WriteTrack(n uint32, payload []byte) error {
	return tm.WriteGroup(map[uint32][]byte{n: payload})
}

// ReadTrack returns the payload of track n, trying replicas in order until
// one passes its checksum.
func (tm *TrackManager) ReadTrack(n uint32) ([]byte, error) {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	if p, ok := tm.cache[n]; ok {
		tm.stats.CacheHits++
		tm.met.cacheHits.Inc()
		return p, nil
	}
	buf := make([]byte, tm.trackSize)
	var lastErr error
	for i, f := range tm.replicas {
		tm.seekToLocked(n)
		if _, err := f.ReadAt(buf, int64(n)*int64(tm.trackSize)); err != nil {
			lastErr = err
			continue
		}
		tm.stats.Reads++
		tm.met.reads.Inc()
		tm.met.bytesRead.Add(uint64(tm.trackSize))
		if getU32(buf[4:]) != trackMagic || crc32.ChecksumIEEE(buf[trackHeaderLen:]) != getU32(buf[0:]) {
			lastErr = fmt.Errorf("store: checksum failure on track %d replica %d", n, i)
			continue
		}
		if i > 0 {
			tm.stats.ReplicaFallbacks++
			if i < len(tm.met.fallbacks) {
				tm.met.fallbacks[i].Inc()
			}
		}
		p := append([]byte(nil), buf[trackHeaderLen:]...)
		tm.cacheInsertLocked(n, p)
		return p, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("store: track %d unreadable", n)
	}
	return nil, lastErr
}

// ReadRange reads length bytes starting at (track, offset), crossing track
// boundaries as needed. The Boxer lays objects contiguously, so a spanning
// object is a consecutive run of tracks.
func (tm *TrackManager) ReadRange(track uint32, offset, length int) ([]byte, error) {
	out := make([]byte, 0, length)
	for length > 0 {
		p, err := tm.ReadTrack(track)
		if err != nil {
			return nil, err
		}
		if offset >= len(p) {
			return nil, fmt.Errorf("store: offset %d beyond track payload", offset)
		}
		n := len(p) - offset
		if n > length {
			n = length
		}
		out = append(out, p[offset:offset+n]...)
		length -= n
		offset = 0
		track++
	}
	return out, nil
}

// Sync flushes every replica to stable storage, concurrently when
// replicated: the group's durability point is the slowest device, not the
// sum of all devices.
func (tm *TrackManager) Sync() error {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	tm.met.syncs.Inc()
	if len(tm.replicas) <= 1 {
		for _, f := range tm.replicas {
			if err := f.Sync(); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(tm.replicas))
	var wg sync.WaitGroup
	for ri, f := range tm.replicas {
		wg.Add(1)
		go func(ri int, f *os.File) {
			defer wg.Done()
			errs[ri] = f.Sync()
		}(ri, f)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Close releases the replica files.
func (tm *TrackManager) Close() error {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	var first error
	for _, f := range tm.replicas {
		if f == nil {
			continue
		}
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	tm.replicas = nil
	return first
}

// DamageTrack corrupts track n on one replica (for availability testing —
// experiment C7). It flips bytes in the stored payload so the checksum
// fails, and evicts the cache entry so the next read hits the device.
func (tm *TrackManager) DamageTrack(replica int, n uint32) error {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	if replica < 0 || replica >= len(tm.replicas) {
		return fmt.Errorf("store: no replica %d", replica)
	}
	delete(tm.cache, n)
	garbage := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0xDE, 0xAD, 0xBE, 0xEF}
	_, err := tm.replicas[replica].WriteAt(garbage, int64(n)*int64(tm.trackSize)+trackHeaderLen)
	return err
}

// DropCache clears the in-memory track cache (benchmarks that want cold
// reads).
func (tm *TrackManager) DropCache() {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	tm.cache = make(map[uint32][]byte)
}

func (tm *TrackManager) cacheInsertLocked(n uint32, p []byte) {
	if tm.cacheCap <= 0 {
		return
	}
	if len(tm.cache) >= tm.cacheCap {
		// Evict an arbitrary entry; the cache is a small working-set buffer,
		// not a scored LRU, matching a simple controller buffer.
		//lint:ignore detmap in-memory cache eviction only; never reaches a track image
		for k := range tm.cache {
			delete(tm.cache, k)
			break
		}
	}
	tm.cache[n] = p
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
