package store

import (
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/obs"
)

// TrackManager performs whole-track I/O against a set of replica arms,
// reproducing the paper's device model: "Disk access will always be by
// entire tracks, as a track is the natural unit of physical access"
// (§6). Writes fan out to every active arm; reads validate a per-track
// checksum and fall back to the next arm on damage, which is the paper's
// "requests for replication of data".
//
// Each arm carries a health state (see replica.go): a write or sync
// failure degrades the arm and excludes it from further I/O instead of
// poisoning every commit, as long as a write quorum of arms stays
// durable. Salvaged reads heal the arms they bypassed (read-repair), the
// scrubber sweeps for silent rot, and Rebuild reconstructs a degraded arm
// bit-for-bit.
//
// Write scheduling sorts each group by ascending track number — the
// elevator pass a real controller would make — and the manager keeps
// per-arm head positions so seek statistics model each mirrored
// controller's own arm.
type TrackManager struct {
	trackSize int
	payload   int // trackSize minus checksum header
	quorum    int // minimum durable arms for a write/sync to succeed

	mu       sync.Mutex // guards arms, nTracks, cache, stats, scratch, free, wbatch
	arms     []*arm
	nTracks  uint32 // allocation high-water mark
	cache    map[uint32][]byte
	cacheCap int
	scratch  []byte       // reusable whole-group track-image encode buffer
	free     [][]byte     // recycled track buffers (cache images, read staging)
	wbatch   []TrackWrite // reusable write batch for the map-keyed entry points

	stats TrackStats
	met   trackMetrics
}

// TrackWrite names one track image in a write run. Payloads are copied
// into the encode slab before any I/O, so callers may reuse both the
// batch slice and the payload bytes as soon as WriteRun returns.
type TrackWrite struct {
	Track   uint32
	Payload []byte
}

// trackMetrics mirrors TrackStats into the obs registry so live counters
// are visible without polling Stats(). Atomic instruments, not guarded
// state. The per-replica fallback counters give the §6 availability story a
// per-device view: which mirror is serving reads the primary lost.
type trackMetrics struct {
	reads         *obs.Counter // device track reads (cache misses)
	writes        *obs.Counter // per-replica track writes
	bytesRead     *obs.Counter
	bytesWritten  *obs.Counter
	cacheHits     *obs.Counter
	syncs         *obs.Counter
	slabReuses    *obs.Counter   // buffers served from a reuse pool (shared with Store)
	slabGrows     *obs.Counter   // buffers the pools had to allocate fresh (shared with Store)
	fallbacks     []*obs.Counter // indexed by the replica that salvaged the read
	states        []*obs.Gauge   // per-replica ArmState (0 healthy, 1 suspect, 2 degraded)
	repairs       *obs.Counter   // track copies rewritten from a valid arm (all paths)
	readRepairs   *obs.Counter   // repairs triggered by a salvaged read
	scrubPasses   *obs.Counter
	scrubScanned  *obs.Counter
	scrubRepaired *obs.Counter
	scrubLost     *obs.Counter
	rebuilds      *obs.Counter // arms reconstructed and reinstated
}

// TrackStats counts physical I/O for benchmark reporting.
type TrackStats struct {
	Reads            uint64 // track reads that went to a device
	Writes           uint64 // per-replica track writes
	CacheHits        uint64
	ReplicaFallbacks uint64 // reads salvaged from a later replica
	ReadRepairs      uint64 // damaged copies healed after a salvaged read
	SeekDistance     uint64 // cumulative |Δtrack| across device accesses
}

const trackHeaderLen = 8      // crc32 (4) + magic (4)
const trackMagic = 0x4B525447 // "GTRK"

// NewTrackManager opens (creating if needed) nReplicas arm files under
// dir. quorum is the minimum number of arms a write must reach (clamped
// to [1, nReplicas]); open supplies each arm's device and defaults to the
// plain os.File opener.
func NewTrackManager(dir string, trackSize, nReplicas, cacheTracks, quorum int, open OpenReplicaFunc) (*TrackManager, error) {
	if trackSize < 512 {
		return nil, fmt.Errorf("store: track size %d too small", trackSize)
	}
	if nReplicas < 1 {
		nReplicas = 1
	}
	if quorum < 1 {
		quorum = 1
	}
	if quorum > nReplicas {
		quorum = nReplicas
	}
	if open == nil {
		open = osOpenReplica
	}
	tm := &TrackManager{
		trackSize: trackSize,
		payload:   trackSize - trackHeaderLen,
		quorum:    quorum,
		cache:     make(map[uint32][]byte),
		cacheCap:  cacheTracks,
	}
	for i := 0; i < nReplicas; i++ {
		p := filepath.Join(dir, fmt.Sprintf("replica%d.gs", i))
		f, err := open(p, i)
		if err != nil {
			tm.Close()
			return nil, fmt.Errorf("store: open replica: %w", err)
		}
		tm.arms = append(tm.arms, &arm{f: f, path: p})
	}
	// Recover the high-water mark from the primary's size.
	st, err := tm.arms[0].f.Stat()
	if err != nil {
		tm.Close()
		return nil, err
	}
	tm.nTracks = uint32(st.Size() / int64(trackSize))
	return tm, nil
}

// PayloadSize returns usable bytes per track.
func (tm *TrackManager) PayloadSize() int { return tm.payload }

// Tracks returns the allocation high-water mark.
func (tm *TrackManager) Tracks() uint32 {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	return tm.nTracks
}

// Replicas returns the number of configured arms (any state).
func (tm *TrackManager) Replicas() int {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	return len(tm.arms)
}

// DegradedArms returns how many arms are currently excluded from I/O.
func (tm *TrackManager) DegradedArms() int {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	n := 0
	for _, a := range tm.arms {
		if a.state == ArmDegraded {
			n++
		}
	}
	return n
}

// Allocate reserves n fresh tracks and returns the first track number.
// Allocation is append-only: committed tracks are never overwritten, the
// write-once style the paper anticipates for optical media ([Cp], §5.3.1
// footnote on storage cost trends). Reclamation is an administrative
// archival action, not reuse.
func (tm *TrackManager) Allocate(n int) uint32 {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	first := tm.nTracks
	tm.nTracks += uint32(n)
	return first
}

// instrument attaches the obs registry's counters. A nil registry hands
// out nil (no-op) instruments, so this is unconditional in Open.
func (tm *TrackManager) instrument(reg *obs.Registry) {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	tm.met = trackMetrics{
		reads:         reg.Counter("store.track.reads"),
		writes:        reg.Counter("store.track.writes"),
		bytesRead:     reg.Counter("store.track.bytes.read"),
		bytesWritten:  reg.Counter("store.track.bytes.written"),
		cacheHits:     reg.Counter("store.cache.hits"),
		syncs:         reg.Counter("store.syncs"),
		repairs:       reg.Counter("store.repair.tracks"),
		readRepairs:   reg.Counter("store.readrepair.tracks"),
		scrubPasses:   reg.Counter("store.scrub.passes"),
		scrubScanned:  reg.Counter("store.scrub.scanned"),
		scrubRepaired: reg.Counter("store.scrub.repaired"),
		scrubLost:     reg.Counter("store.scrub.lost"),
		rebuilds:      reg.Counter("store.rebuilds"),
		slabReuses:    reg.Counter("store.slab.reuses"),
		slabGrows:     reg.Counter("store.slab.grows"),
	}
	for i, a := range tm.arms {
		tm.met.fallbacks = append(tm.met.fallbacks, reg.Counter(fmt.Sprintf("store.replica.fallbacks.r%d", i)))
		g := reg.Gauge(fmt.Sprintf("store.replica.state.r%d", i))
		g.Set(int64(a.state))
		tm.met.states = append(tm.met.states, g)
	}
}

// Stats returns a snapshot of the I/O counters.
func (tm *TrackManager) Stats() TrackStats {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	return tm.stats
}

// ResetStats zeroes the I/O counters (between benchmark phases).
func (tm *TrackManager) ResetStats() {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	tm.stats = TrackStats{}
}

// WriteGroup writes a set of tracks to every active arm. Map-keyed
// convenience wrapper over WriteRun; the hot commit path builds
// []TrackWrite batches directly and never pays for the map.
func (tm *TrackManager) WriteGroup(group map[uint32][]byte) error {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	batch := tm.wbatch[:0]
	for n, p := range group {
		batch = append(batch, TrackWrite{Track: n, Payload: p})
	}
	sort.Slice(batch, func(i, j int) bool { return batch[i].Track < batch[j].Track })
	tm.wbatch = batch
	return tm.writeRunLocked(batch)
}

// WriteRun writes a batch of tracks to every active arm, sorted ascending
// (elevator order; the batch is sorted in place). The track images are
// encoded once into a reusable scratch buffer, then fanned out
// concurrently — mirrored controllers seek in parallel, so a replicated
// safe-write costs one device pass, not Replicas sequential passes.
// Payloads shorter than the track payload are zero-padded; longer
// payloads are an error. Arms whose writes fail are degraded; the run
// succeeds while at least the write quorum of arms holds it durably.
func (tm *TrackManager) WriteRun(writes []TrackWrite) error {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	return tm.writeRunLocked(writes)
}

func (tm *TrackManager) writeRunLocked(writes []TrackWrite) error {
	sort.Slice(writes, func(i, j int) bool { return writes[i].Track < writes[j].Track })
	active := tm.activeLocked()
	if len(active) < tm.quorum {
		return fmt.Errorf("store: %d of %d replica arms active, need write quorum %d", len(active), len(tm.arms), tm.quorum)
	}
	need := len(writes) * tm.trackSize
	if cap(tm.scratch) < need {
		tm.scratch = make([]byte, need)
		tm.met.slabGrows.Inc()
	} else {
		tm.met.slabReuses.Inc()
	}
	slab := tm.scratch[:need]
	for i, w := range writes {
		if len(w.Payload) > tm.payload {
			return fmt.Errorf("store: track payload %d exceeds %d", len(w.Payload), tm.payload)
		}
		buf := slab[i*tm.trackSize : (i+1)*tm.trackSize]
		copy(buf[trackHeaderLen:], w.Payload)
		for j := trackHeaderLen + len(w.Payload); j < len(buf); j++ {
			buf[j] = 0
		}
		sum := crc32.ChecksumIEEE(buf[trackHeaderLen:])
		putU32(buf[0:], sum)
		putU32(buf[4:], trackMagic)
		for _, ri := range active {
			tm.seekLocked(tm.arms[ri], w.Track)
		}
		tm.stats.Writes += uint64(len(active))
	}
	tm.met.writes.Add(uint64(len(writes) * len(active)))
	tm.met.bytesWritten.Add(uint64(need * len(active)))
	if err := tm.fanoutLocked(slab, writes, active); err != nil {
		return err
	}
	for i, w := range writes {
		tm.cacheInsertLocked(w.Track, slab[i*tm.trackSize+trackHeaderLen:(i+1)*tm.trackSize])
	}
	return nil
}

// fanoutLocked pushes the encoded track images to the active arms: inline
// for a single arm, one goroutine per arm otherwise. WriteAt is safe for
// concurrent use, and each goroutine touches only its own file and error
// slot. Failed arms are marked degraded; the fan-out succeeds while the
// write quorum survives.
func (tm *TrackManager) fanoutLocked(slab []byte, writes []TrackWrite, active []int) error {
	ts := tm.trackSize
	writeAll := func(f ReplicaFile) error {
		for i := range writes {
			n := writes[i].Track
			if _, err := f.WriteAt(slab[i*ts:(i+1)*ts], int64(n)*int64(ts)); err != nil {
				return fmt.Errorf("store: write track %d: %w", n, err)
			}
		}
		return nil
	}
	errs := make([]error, len(active))
	if len(active) == 1 {
		errs[0] = writeAll(tm.arms[active[0]].f)
	} else {
		var wg sync.WaitGroup
		for i, ri := range active {
			wg.Add(1)
			go func(i int, f ReplicaFile) {
				defer wg.Done()
				errs[i] = writeAll(f)
			}(i, tm.arms[ri].f)
		}
		wg.Wait()
	}
	surviving := 0
	var firstErr error
	for i, ri := range active {
		if errs[i] != nil {
			tm.degradeLocked(ri, errs[i])
			if firstErr == nil {
				firstErr = errs[i]
			}
			continue
		}
		surviving++
	}
	if surviving < tm.quorum {
		return fmt.Errorf("store: write quorum lost: %d of %d arms durable, need %d: %w", surviving, len(tm.arms), tm.quorum, firstErr)
	}
	return nil
}

// WriteTrack writes a single track.
func (tm *TrackManager) WriteTrack(n uint32, payload []byte) error {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	tm.wbatch = append(tm.wbatch[:0], TrackWrite{Track: n, Payload: payload})
	return tm.writeRunLocked(tm.wbatch)
}

// ReadTrack returns the payload of track n, trying active arms in order
// until one passes its checksum. Arms whose copy is damaged are marked
// suspect and, once a later arm salvages the read, healed in place with
// the good image (read-repair). The returned slice is always private to
// the caller: cache hits and device reads both hand out a copy.
func (tm *TrackManager) ReadTrack(n uint32) ([]byte, error) {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	return tm.appendTrackLocked(nil, n, 0, tm.payload)
}

// appendTrackLocked appends up to length bytes of track n's payload,
// starting at offset, onto dst (clamped at the payload end). Cache hits
// copy straight out of the cached image; misses stage the device read in
// a pooled track buffer, try active arms in order until one passes its
// checksum, read-repair the arms that were bypassed, install a private
// copy in the cache, and recycle the staging buffer before returning.
// Nothing handed to the caller ever aliases the pool or the cache.
func (tm *TrackManager) appendTrackLocked(dst []byte, n uint32, offset, length int) ([]byte, error) {
	if p, ok := tm.cache[n]; ok {
		tm.stats.CacheHits++
		tm.met.cacheHits.Inc()
		return appendClamped(dst, p, offset, length)
	}
	buf, reused := popTrack(&tm.free, tm.trackSize, tm.trackSize)
	tm.countPop(reused)
	var lastErr error
	var failed []int // earlier arms whose copy was damaged
	for ri, a := range tm.arms {
		if a.state == ArmDegraded {
			continue
		}
		if err := tm.readRawLocked(ri, n, buf); err != nil {
			lastErr = err
			tm.suspectLocked(ri, err)
			failed = append(failed, ri)
			continue
		}
		if len(failed) > 0 {
			tm.stats.ReplicaFallbacks++
			a.fallbacks++
			if ri < len(tm.met.fallbacks) {
				tm.met.fallbacks[ri].Inc()
			}
			tm.readRepairLocked(n, buf, failed)
		}
		tm.cacheInsertLocked(n, buf[trackHeaderLen:])
		out, err := appendClamped(dst, buf[trackHeaderLen:], offset, length)
		tm.recycleLocked(buf)
		return out, err
	}
	tm.recycleLocked(buf)
	if lastErr == nil {
		lastErr = fmt.Errorf("store: track %d unreadable", n)
	}
	return nil, lastErr
}

// appendClamped appends p[offset:offset+length], clamped to len(p), onto
// dst. offset at or past the payload end is an error (a locator pointing
// into padding).
func appendClamped(dst, p []byte, offset, length int) ([]byte, error) {
	if offset >= len(p) {
		return nil, fmt.Errorf("store: offset %d beyond track payload", offset)
	}
	end := offset + length
	if end > len(p) {
		end = len(p)
	}
	return append(dst, p[offset:end]...), nil
}

// readRepairLocked writes a validated raw track image back onto the arms
// whose copy was damaged — the paper's replication request loop closing
// itself: a salvaged read heals the arm it bypassed. A failing repair
// write degrades the arm; repaired arms stay suspect until a scrub pass
// clears them.
func (tm *TrackManager) readRepairLocked(n uint32, img []byte, failed []int) {
	for _, ri := range failed {
		a := tm.arms[ri]
		if a.state == ArmDegraded {
			continue
		}
		tm.seekLocked(a, n)
		if _, err := a.f.WriteAt(img, int64(n)*int64(tm.trackSize)); err != nil {
			tm.degradeLocked(ri, fmt.Errorf("store: read-repair of track %d failed: %w", n, err))
			continue
		}
		a.repairs++
		tm.stats.ReadRepairs++
		tm.stats.Writes++
		tm.met.readRepairs.Inc()
		tm.met.repairs.Inc()
		tm.met.writes.Inc()
		tm.met.bytesWritten.Add(uint64(tm.trackSize))
	}
}

// ReadRange reads length bytes starting at (track, offset), crossing track
// boundaries as needed. The Boxer lays objects contiguously, so a spanning
// object is a consecutive run of tracks.
func (tm *TrackManager) ReadRange(track uint32, offset, length int) ([]byte, error) {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	out := make([]byte, 0, length)
	for length > 0 {
		before := len(out)
		var err error
		out, err = tm.appendTrackLocked(out, track, offset, length)
		if err != nil {
			return nil, err
		}
		length -= len(out) - before
		offset = 0
		track++
	}
	return out, nil
}

// Sync flushes every active arm to stable storage, concurrently when
// replicated: the group's durability point is the slowest device, not the
// sum of all devices. Arms that fail to sync are degraded — their data
// may not be durable — and the sync succeeds while the write quorum of
// arms confirmed.
func (tm *TrackManager) Sync() error {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	tm.met.syncs.Inc()
	active := tm.activeLocked()
	if len(active) < tm.quorum {
		return fmt.Errorf("store: %d of %d replica arms active, need write quorum %d", len(active), len(tm.arms), tm.quorum)
	}
	errs := make([]error, len(active))
	if len(active) == 1 {
		errs[0] = tm.arms[active[0]].f.Sync()
	} else {
		var wg sync.WaitGroup
		for i, ri := range active {
			wg.Add(1)
			go func(i int, f ReplicaFile) {
				defer wg.Done()
				errs[i] = f.Sync()
			}(i, tm.arms[ri].f)
		}
		wg.Wait()
	}
	surviving := 0
	var firstErr error
	for i, ri := range active {
		if errs[i] != nil {
			tm.degradeLocked(ri, errs[i])
			if firstErr == nil {
				firstErr = errs[i]
			}
			continue
		}
		surviving++
	}
	if surviving < tm.quorum {
		return fmt.Errorf("store: sync quorum lost: %d of %d arms durable, need %d: %w", surviving, len(tm.arms), tm.quorum, firstErr)
	}
	return nil
}

// Close releases the replica files.
func (tm *TrackManager) Close() error {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	var first error
	for _, a := range tm.arms {
		if a == nil || a.f == nil {
			continue
		}
		if err := a.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	tm.arms = nil
	return first
}

// DamageTrack corrupts track n on one replica (for availability testing —
// experiment C7). It flips bytes in the stored payload so the checksum
// fails, and evicts the cache entry so the next read hits the device.
func (tm *TrackManager) DamageTrack(replica int, n uint32) error {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	if replica < 0 || replica >= len(tm.arms) {
		return fmt.Errorf("store: no replica %d", replica)
	}
	delete(tm.cache, n)
	garbage := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0xDE, 0xAD, 0xBE, 0xEF}
	_, err := tm.arms[replica].f.WriteAt(garbage, int64(n)*int64(tm.trackSize)+trackHeaderLen)
	return err
}

// DropCache clears the in-memory track cache (benchmarks that want cold
// reads).
func (tm *TrackManager) DropCache() {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	tm.cache = make(map[uint32][]byte)
}

// cacheInsertLocked stores a private copy of p, so callers may pass
// transient buffers (the scratch slab, pooled staging buffers) and cached
// payloads are never aliased by anything handed out. The copy lives in a
// pooled buffer; the entry it replaces or evicts is recycled, so a warm
// cache inserts without allocating.
func (tm *TrackManager) cacheInsertLocked(n uint32, p []byte) {
	if tm.cacheCap <= 0 {
		return
	}
	if old, ok := tm.cache[n]; ok {
		tm.recycleLocked(old)
	} else if len(tm.cache) >= tm.cacheCap {
		// Evict an arbitrary entry; the cache is a small working-set buffer,
		// not a scored LRU, matching a simple controller buffer.
		//lint:ignore detmap in-memory cache eviction only; never reaches a track image
		for k := range tm.cache {
			tm.recycleLocked(tm.cache[k])
			delete(tm.cache, k)
			break
		}
	}
	b, reused := popTrack(&tm.free, len(p), tm.trackSize)
	tm.countPop(reused)
	copy(b, p)
	//lint:ignore bufown ownership transfers to the cache: pool and cache never alias, and replaced or evicted entries are recycled
	tm.cache[n] = b
}

// popTrack takes a recycled buffer from the pool, resliced to size, or
// allocates a fresh one with the given full capacity. The second result
// reports whether the pool served it. A free function on purpose: pool
// buffers are transient loans, and keeping the pop out of method form
// keeps aliasret focused on the paths that can actually leak a loan.
func popTrack(pool *[][]byte, size, full int) ([]byte, bool) {
	if n := len(*pool); n > 0 {
		b := (*pool)[n-1]
		(*pool)[n-1] = nil
		*pool = (*pool)[:n-1]
		return b[:size], true
	}
	return make([]byte, full)[:size], false
}

// recycleLocked returns a buffer to the pool for reuse. Only full-capacity
// track buffers are kept — reslicing on pop depends on it — and the pool
// is bounded so a cold burst cannot pin memory forever.
func (tm *TrackManager) recycleLocked(buf []byte) {
	if cap(buf) < tm.trackSize || len(tm.free) >= tm.cacheCap+16 {
		return
	}
	tm.free = append(tm.free, buf[:tm.trackSize])
}

// countPop records a pool pop against the shared slab instruments.
func (tm *TrackManager) countPop(reused bool) {
	if reused {
		tm.met.slabReuses.Inc()
	} else {
		tm.met.slabGrows.Inc()
	}
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
