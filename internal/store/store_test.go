package store

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/object"
	"repro/internal/oop"
)

func sym(i uint64) oop.OOP { return oop.FromSerial(1000 + i) }

func namedObj(serial uint64, writes int) *object.Object {
	ob := object.New(oop.FromSerial(serial), oop.FromSerial(1), 3, object.FormatNamed)
	for i := 1; i <= writes; i++ {
		if err := ob.Store(sym(uint64(i%4)), oop.Time(i), oop.MustInt(int64(i*10))); err != nil {
			panic(err)
		}
	}
	return ob
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ob := namedObj(7, 9)
	raw := EncodeObject(nil, ob)
	back, err := DecodeObject(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.OOP != ob.OOP || back.Class != ob.Class || back.Seg != ob.Seg || back.Format != ob.Format {
		t.Error("header mismatch")
	}
	if !back.EquivalentAt(ob, oop.TimeNow) {
		t.Error("current state mismatch")
	}
	for tm := oop.Time(1); tm <= 9; tm++ {
		if !back.EquivalentAt(ob, tm) {
			t.Errorf("state at %v mismatch", tm)
		}
	}
}

func TestEncodeDecodeBytes(t *testing.T) {
	ob := object.New(oop.FromSerial(8), oop.FromSerial(2), 0, object.FormatBytes)
	_ = ob.SetBytes(1, []byte("first version"))
	_ = ob.SetBytes(4, bytes.Repeat([]byte("x"), 10000))
	raw := EncodeObject(nil, ob)
	back, err := DecodeObject(raw)
	if err != nil {
		t.Fatal(err)
	}
	if b, ok := back.BytesAt(2); !ok || string(b) != "first version" {
		t.Error("old byte version lost")
	}
	if back.ByteLen() != 10000 {
		t.Error("current byte version lost")
	}
}

func TestDecodeTruncated(t *testing.T) {
	raw := EncodeObject(nil, namedObj(7, 5))
	for cut := 0; cut < len(raw); cut += 3 {
		if _, err := DecodeObject(raw[:cut]); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
	bad := append([]byte(nil), raw...)
	bad[0] ^= 0xFF
	if _, err := DecodeObject(bad); err == nil {
		t.Error("bad magic not detected")
	}
}

func TestDecodeProperty(t *testing.T) {
	// Random byte strings must never panic the decoder.
	f := func(b []byte) bool {
		_, _ = DecodeObject(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func openTemp(t *testing.T, opts Options) (*Store, string) {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s, dir
}

func TestCommitLoad(t *testing.T) {
	s, _ := openTemp(t, Options{TrackSize: 1024})
	defer s.Close()
	ob := namedObj(1, 3)
	root := ob.OOP
	if err := s.Apply(Commit{Objects: []*object.Object{ob}, Root: root, NextSerial: 2, Time: 3}); err != nil {
		t.Fatal(err)
	}
	m := s.Meta()
	if m.Root != root || m.LastTime != 3 || m.NextSerial != 2 {
		t.Errorf("meta = %+v", m)
	}
	got, err := s.Load(root)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EquivalentAt(ob, oop.TimeNow) {
		t.Error("loaded object differs")
	}
	if _, err := s.Load(oop.FromSerial(99)); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing object: %v", err)
	}
	if !s.Exists(root) || s.Exists(oop.FromSerial(99)) {
		t.Error("Exists wrong")
	}
}

func TestReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{TrackSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	var obs []*object.Object
	for i := uint64(1); i <= 50; i++ {
		obs = append(obs, namedObj(i, int(i%7)+1))
	}
	if err := s.Apply(Commit{Objects: obs, Root: obs[0].OOP, NextSerial: 51, Time: 9}); err != nil {
		t.Fatal(err)
	}
	// Second commit updates a few.
	upd := []*object.Object{namedObj(3, 12), namedObj(17, 12)}
	if err := s.Apply(Commit{Objects: upd, NextSerial: 51, Time: 10}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(dir, Options{TrackSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	m := s2.Meta()
	if m.LastTime != 10 || m.NextSerial != 51 || m.Root != obs[0].OOP {
		t.Errorf("recovered meta = %+v", m)
	}
	for i := uint64(1); i <= 50; i++ {
		got, err := s2.Load(oop.FromSerial(i))
		if err != nil {
			t.Fatalf("load %d: %v", i, err)
		}
		want := obs[i-1]
		if i == 3 || i == 17 {
			want = namedObj(i, 12)
		}
		if !got.EquivalentAt(want, oop.TimeNow) {
			t.Errorf("object %d state differs after reopen", i)
		}
	}
}

func TestLargeObjectSpansTracks(t *testing.T) {
	// Past the ST80 64KB limit (experiment C8): a multi-track byte object.
	s, _ := openTemp(t, Options{TrackSize: 1024})
	defer s.Close()
	big := object.New(oop.FromSerial(1), oop.FromSerial(2), 0, object.FormatBytes)
	payload := bytes.Repeat([]byte("GemStone "), 40000) // 360 KB
	_ = big.SetBytes(1, payload)
	if err := s.Apply(Commit{Objects: []*object.Object{big}, NextSerial: 2, Time: 1}); err != nil {
		t.Fatal(err)
	}
	s.TrackManager().DropCache()
	got, err := s.Load(big.OOP)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), payload) {
		t.Error("spanning object corrupted")
	}
}

func TestCrashAtEveryStepIsAtomic(t *testing.T) {
	steps := []string{"before-data", "after-data", "after-table", "after-directory", "before-superblock"}
	for _, step := range steps {
		step := step
		t.Run(step, func(t *testing.T) {
			dir := t.TempDir()
			crash := ""
			opts := Options{TrackSize: 1024, FailPoint: func(s string) error {
				if s == crash {
					return errors.New("injected")
				}
				return nil
			}}
			s, err := Open(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			base := namedObj(1, 2)
			if err := s.Apply(Commit{Objects: []*object.Object{base}, Root: base.OOP, NextSerial: 2, Time: 1}); err != nil {
				t.Fatal(err)
			}
			// Now crash during the second commit.
			crash = step
			upd := namedObj(1, 6)
			newObj := namedObj(2, 4)
			err = s.Apply(Commit{Objects: []*object.Object{upd, newObj}, NextSerial: 3, Time: 2})
			if !errors.Is(err, ErrCrashed) {
				t.Fatalf("expected injected crash, got %v", err)
			}
			s.Close()

			// Reopen: the first commit's state must be fully intact, the
			// second invisible.
			s2, err := Open(dir, Options{TrackSize: 1024})
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			m := s2.Meta()
			if m.LastTime != 1 || m.NextSerial != 2 {
				t.Errorf("crashed commit leaked into meta: %+v", m)
			}
			got, err := s2.Load(oop.FromSerial(1))
			if err != nil {
				t.Fatal(err)
			}
			if !got.EquivalentAt(base, oop.TimeNow) {
				t.Error("crashed commit corrupted object 1")
			}
			if s2.Exists(oop.FromSerial(2)) {
				t.Error("object from crashed commit visible")
			}
			// And the store must accept new commits after recovery.
			if err := s2.Apply(Commit{Objects: []*object.Object{namedObj(1, 8)}, NextSerial: 2, Time: 2}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestReplicaFallback(t *testing.T) {
	s, _ := openTemp(t, Options{TrackSize: 1024, Replicas: 3})
	defer s.Close()
	ob := namedObj(1, 3)
	if err := s.Apply(Commit{Objects: []*object.Object{ob}, NextSerial: 2, Time: 1}); err != nil {
		t.Fatal(err)
	}
	tm := s.TrackManager()
	// Damage the object's data track on the primary AND second replica.
	for n := uint32(2); n < tm.Tracks(); n++ {
		if err := tm.DamageTrack(0, n); err != nil {
			t.Fatal(err)
		}
		if err := tm.DamageTrack(1, n); err != nil {
			t.Fatal(err)
		}
	}
	tm.DropCache()
	got, err := s.Load(ob.OOP)
	if err != nil {
		t.Fatalf("load with two damaged replicas: %v", err)
	}
	if !got.EquivalentAt(ob, oop.TimeNow) {
		t.Error("fallback returned wrong data")
	}
	if tm.Stats().ReplicaFallbacks == 0 {
		t.Error("expected replica fallbacks to be counted")
	}
	// The salvaged read must have healed the damaged arms in place
	// (read-repair), so a load served by the primary alone succeeds even
	// with the last replica gone too.
	if tm.Stats().ReadRepairs == 0 {
		t.Error("expected read-repair to heal the damaged arms")
	}
	for n := uint32(2); n < tm.Tracks(); n++ {
		_ = tm.DamageTrack(2, n)
	}
	tm.DropCache()
	if _, err := s.Load(ob.OOP); err != nil {
		t.Errorf("load after read-repair with replica 2 damaged: %v", err)
	}
	// Damaging every replica at once must surface an error, not bad data.
	for n := uint32(2); n < tm.Tracks(); n++ {
		for ri := 0; ri < 3; ri++ {
			_ = tm.DamageTrack(ri, n)
		}
	}
	tm.DropCache()
	if _, err := s.Load(ob.OOP); err == nil {
		t.Error("all replicas damaged: expected error")
	}
}

func TestArchive(t *testing.T) {
	s, _ := openTemp(t, Options{TrackSize: 1024})
	defer s.Close()
	ob := namedObj(1, 3)
	keep := namedObj(2, 3)
	if err := s.Apply(Commit{Objects: []*object.Object{ob, keep}, NextSerial: 3, Time: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Archive(2, []oop.OOP{ob.OOP}); err != nil {
		t.Fatal(err)
	}
	// Still loadable while the archive is attached.
	if _, err := s.Load(ob.OOP); err != nil {
		t.Fatalf("archived object with medium attached: %v", err)
	}
	s.DetachArchive()
	if _, err := s.Load(ob.OOP); !errors.Is(err, ErrArchived) {
		t.Errorf("detached archive: %v", err)
	}
	if _, err := s.Load(keep.OOP); err != nil {
		t.Errorf("unarchived object affected: %v", err)
	}
}

func TestManyObjectsPastST80Limit(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale test")
	}
	// 100,000 objects: past ST80's 32K-object ceiling (experiment C8).
	s, _ := openTemp(t, Options{TrackSize: 8192})
	defer s.Close()
	const n = 100_000
	batch := make([]*object.Object, 0, 10_000)
	for i := uint64(1); i <= n; i++ {
		ob := object.New(oop.FromSerial(i), oop.FromSerial(1), 0, object.FormatNamed)
		_ = ob.Store(sym(1), 1, oop.MustInt(int64(i)))
		batch = append(batch, ob)
		if len(batch) == cap(batch) {
			if err := s.Apply(Commit{Objects: batch, NextSerial: i + 1, Time: oop.Time(i/uint64(cap(batch)) + 1)}); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	for _, i := range []uint64{1, 32768, 65536, 99999, 100000} {
		got, err := s.Load(oop.FromSerial(i))
		if err != nil {
			t.Fatalf("load %d: %v", i, err)
		}
		if v, _ := got.Fetch(sym(1)); v != oop.MustInt(int64(i)) {
			t.Errorf("object %d corrupted", i)
		}
	}
}

func TestWriteGroupElevatorOrder(t *testing.T) {
	s, _ := openTemp(t, Options{TrackSize: 1024})
	defer s.Close()
	tm := s.TrackManager()
	first := tm.Allocate(10)
	group := map[uint32][]byte{}
	for i := 9; i >= 0; i-- { // presented in reverse
		group[first+uint32(i)] = []byte{byte(i)}
	}
	tm.ResetStats()
	if err := tm.WriteGroup(group); err != nil {
		t.Fatal(err)
	}
	st := tm.Stats()
	// Sorted ascending, the total seek distance within the group is 9 plus
	// the initial seek; unsorted it could be up to 81.
	if st.SeekDistance > uint64(first)+9 {
		t.Errorf("seek distance %d suggests unsorted writes", st.SeekDistance)
	}
}

func TestTrackPayloadTooLarge(t *testing.T) {
	s, _ := openTemp(t, Options{TrackSize: 1024})
	defer s.Close()
	tm := s.TrackManager()
	n := tm.Allocate(1)
	if err := tm.WriteTrack(n, make([]byte, tm.PayloadSize()+1)); err == nil {
		t.Error("oversized payload accepted")
	}
}

func TestOpenBadTrackSize(t *testing.T) {
	if _, err := Open(t.TempDir(), Options{TrackSize: 64}); err == nil {
		t.Error("tiny track size accepted")
	}
}

func TestStoreSweepProperty(t *testing.T) {
	// Property: after any sequence of commits, every object reads back as
	// its latest committed version.
	f := func(seed []uint8) bool {
		dir := t.TempDir()
		s, err := Open(dir, Options{TrackSize: 1024})
		if err != nil {
			return false
		}
		defer s.Close()
		latest := map[uint64]*object.Object{}
		tm := oop.Time(0)
		for _, r := range seed {
			serial := uint64(r%10) + 1
			tm++
			ob := namedObj(serial, int(r%5)+1)
			latest[serial] = ob
			if err := s.Apply(Commit{Objects: []*object.Object{ob}, NextSerial: 11, Time: tm}); err != nil {
				return false
			}
		}
		for serial, want := range latest {
			got, err := s.Load(oop.FromSerial(serial))
			if err != nil || !got.EquivalentAt(want, oop.TimeNow) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCommitByBatchSize(b *testing.B) {
	for _, batch := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			dir := b.TempDir()
			s, err := Open(dir, Options{TrackSize: 8192})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				objs := make([]*object.Object, batch)
				for j := range objs {
					objs[j] = namedObj(uint64(j)+1, 3)
				}
				if err := s.Apply(Commit{Objects: objs, NextSerial: uint64(batch) + 1, Time: oop.Time(i + 1)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func TestTrackSizeMismatchDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{TrackSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Apply(Commit{Objects: []*object.Object{namedObj(1, 1)}, NextSerial: 2, Time: 1})
	s.Close()
	_, err = Open(dir, Options{TrackSize: 4096})
	if err == nil {
		t.Fatal("mismatched track size accepted")
	}
	if !strings.Contains(err.Error(), "track size 1024") {
		t.Errorf("unhelpful error: %v", err)
	}
	// The correct size still opens.
	s2, err := Open(dir, Options{TrackSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	s2.Close()
}

// Property: arbitrary monotone object states round-trip through the full
// encode → track store → decode pipeline with all history intact.
func TestSerializeStoreRoundTripProperty(t *testing.T) {
	f := func(elems []uint8, writes []uint8) bool {
		ob := object.New(oop.FromSerial(1), oop.FromSerial(2), 1, object.FormatNamed)
		tm := oop.Time(0)
		for i, w := range writes {
			tm++
			name := sym(0)
			if len(elems) > 0 {
				name = sym(uint64(elems[i%len(elems)]) % 7)
			}
			if ob.Store(name, tm, oop.MustInt(int64(w))) != nil {
				return false
			}
		}
		raw := EncodeObject(nil, ob)
		back, err := DecodeObject(raw)
		if err != nil {
			return false
		}
		for q := oop.Time(0); q <= tm+1; q++ {
			if !back.EquivalentAt(ob, q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
