package store

import (
	"fmt"
	"hash/crc32"
	"os"
)

// ReplicaFile is the device interface one replica arm is driven through.
// Production arms are *os.File; tests and the availability experiments
// substitute an internal/iofault wrapper (structurally identical, so
// neither package imports the other) to inject torn writes, bit-flips,
// EIO, ENOSPC and latency on a deterministic schedule.
type ReplicaFile interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Sync() error
	Stat() (os.FileInfo, error)
	Truncate(size int64) error
	Close() error
}

// OpenReplicaFunc opens the backing file of one replica arm. The store
// calls it once per arm at Open; replica is the arm index.
type OpenReplicaFunc func(path string, replica int) (ReplicaFile, error)

func osOpenReplica(path string, replica int) (ReplicaFile, error) {
	return os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
}

// ArmState is the health of one replica arm. The state machine implements
// the paper's §6 detect–degrade–repair loop:
//
//	healthy ──(read error / checksum damage)──▶ suspect
//	healthy/suspect ──(write or sync failure; stale epoch at open)──▶ degraded
//	suspect ──(scrub pass finds no unrepaired damage)──▶ healthy
//	degraded ──(Rebuild reconstructs the arm bit-for-bit)──▶ healthy
//
// A suspect arm still participates in writes and is healed opportunistically
// (read-repair) and by the scrubber. A degraded arm is excluded from both
// reads and writes — its contents may be arbitrarily stale — until Rebuild
// reinstates it.
type ArmState uint8

// Arm states, ordered by severity.
const (
	ArmHealthy ArmState = iota
	ArmSuspect
	ArmDegraded
)

// String names the state.
func (s ArmState) String() string {
	switch s {
	case ArmHealthy:
		return "healthy"
	case ArmSuspect:
		return "suspect"
	case ArmDegraded:
		return "degraded"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// arm is one replica device: its file, health, and per-arm head position
// (seek accounting models each mirrored controller's own head).
type arm struct {
	f         ReplicaFile
	path      string
	state     ArmState
	lastPos   uint32 // last track this arm's head touched
	lastErr   string // most recent error that changed the arm's state
	fallbacks uint64 // reads this arm salvaged after an earlier arm failed
	repairs   uint64 // tracks repaired onto this arm (read-repair + scrub)
}

// ArmHealth is the externally visible health of one replica arm,
// surfaced through Store.Health, gemstone.DB.Health and the OpHealth
// wire operation.
type ArmHealth struct {
	Replica   int
	Path      string
	State     string
	LastError string
	Fallbacks uint64 // reads salvaged by this arm
	Repairs   uint64 // tracks repaired onto this arm
}

// Health returns a point-in-time snapshot of every arm, in replica order.
func (tm *TrackManager) Health() []ArmHealth {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	out := make([]ArmHealth, len(tm.arms))
	for i, a := range tm.arms {
		out[i] = ArmHealth{
			Replica:   i,
			Path:      a.path,
			State:     a.state.String(),
			LastError: a.lastErr,
			Fallbacks: a.fallbacks,
			Repairs:   a.repairs,
		}
	}
	return out
}

// setStateLocked transitions an arm and mirrors the state into the obs
// gauge. cause may be nil (promotions).
func (tm *TrackManager) setStateLocked(ri int, st ArmState, cause error) {
	a := tm.arms[ri]
	a.state = st
	if cause != nil {
		a.lastErr = cause.Error()
	} else if st == ArmHealthy {
		a.lastErr = ""
	}
	if ri < len(tm.met.states) {
		tm.met.states[ri].Set(int64(st))
	}
}

// suspectLocked marks a healthy arm suspect (media damage seen on a read
// path). Degraded arms are never upgraded here.
func (tm *TrackManager) suspectLocked(ri int, cause error) {
	if tm.arms[ri].state == ArmHealthy {
		tm.setStateLocked(ri, ArmSuspect, cause)
	} else if cause != nil {
		tm.arms[ri].lastErr = cause.Error()
	}
}

// degradeLocked excludes an arm from further I/O until Rebuild.
func (tm *TrackManager) degradeLocked(ri int, cause error) {
	if tm.arms[ri].state != ArmDegraded {
		tm.setStateLocked(ri, ArmDegraded, cause)
	}
}

// DegradeReplica marks an arm degraded from outside the I/O paths; the
// store uses it at recovery when an arm's superblock epoch lags the
// committed one (the arm missed safe-writes while degraded in a previous
// run, so its valid-checksum tracks may still be stale).
func (tm *TrackManager) DegradeReplica(ri int, reason string) error {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	if ri < 0 || ri >= len(tm.arms) {
		return fmt.Errorf("store: no replica %d", ri)
	}
	tm.degradeLocked(ri, fmt.Errorf("%s", reason))
	return nil
}

// activeLocked returns the indexes of arms participating in I/O.
func (tm *TrackManager) activeLocked() []int {
	out := make([]int, 0, len(tm.arms))
	for ri, a := range tm.arms {
		if a.state != ArmDegraded {
			out = append(out, ri)
		}
	}
	return out
}

// seekLocked charges one head movement to an arm.
func (tm *TrackManager) seekLocked(a *arm, track uint32) {
	d := int64(track) - int64(a.lastPos)
	if d < 0 {
		d = -d
	}
	tm.stats.SeekDistance += uint64(d)
	a.lastPos = track
}

// readRawLocked reads the full raw track image (header + payload) of
// track n from arm ri into buf and validates magic and checksum.
func (tm *TrackManager) readRawLocked(ri int, n uint32, buf []byte) error {
	a := tm.arms[ri]
	tm.seekLocked(a, n)
	if _, err := a.f.ReadAt(buf, int64(n)*int64(tm.trackSize)); err != nil {
		return fmt.Errorf("store: replica %d track %d: %w", ri, n, err)
	}
	tm.stats.Reads++
	tm.met.reads.Inc()
	tm.met.bytesRead.Add(uint64(tm.trackSize))
	if getU32(buf[4:]) != trackMagic || crc32.ChecksumIEEE(buf[trackHeaderLen:]) != getU32(buf[0:]) {
		return fmt.Errorf("store: checksum failure on track %d replica %d", n, ri)
	}
	return nil
}

// ReadTrackReplica reads and validates track n from one specific arm,
// bypassing the cache and the fallback chain. Recovery uses it to compare
// superblocks across arms; tests use it to observe a single device.
func (tm *TrackManager) ReadTrackReplica(ri int, n uint32) ([]byte, error) {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	if ri < 0 || ri >= len(tm.arms) {
		return nil, fmt.Errorf("store: no replica %d", ri)
	}
	buf := make([]byte, tm.trackSize)
	if err := tm.readRawLocked(ri, n, buf); err != nil {
		return nil, err
	}
	return buf[trackHeaderLen:], nil
}

// ScrubResult summarizes one scrub pass.
type ScrubResult struct {
	Scanned  uint64 // tracks examined
	Repaired uint64 // damaged copies rewritten from a valid arm
	Lost     uint64 // tracks with no valid copy on any active arm
	// SyncErr is non-nil when the post-pass Sync lost the write quorum:
	// the repairs were written but may not be durable, so the pass must
	// not be read as unqualified success.
	SyncErr error
}

// Scrub sweeps every allocated track once, validating each active arm's
// copy and rewriting damaged copies from a valid one (§6: "requests for
// replication of data" as a background loop, the ARIES-style media
// recovery pass). The lock is taken per track, so commits interleave with
// the sweep — the scrubber is online. Suspect arms whose every damaged
// track was repaired are promoted back to healthy at the end of the pass,
// and the pass finishes with a Sync so repairs are durable; if that Sync
// loses the write quorum the result carries it in SyncErr.
//
// A Lost track had no valid copy anywhere; the alternate superblock slot
// of a young database and allocation debris from a crashed commit are
// benign examples, damage on every arm is not. Lost tracks are counted,
// never invented.
func (tm *TrackManager) Scrub() ScrubResult {
	var res ScrubResult
	tm.mu.Lock()
	nArms := len(tm.arms)
	limit := tm.nTracks
	tm.mu.Unlock()
	// dirty[ri] counts invalid copies on arm ri that were NOT repaired.
	dirty := make([]uint64, nArms)
	for n := uint32(0); n < limit; n++ {
		tm.mu.Lock()
		repaired, lost, bad := tm.scrubTrackLocked(n)
		tm.mu.Unlock()
		res.Scanned++
		res.Repaired += repaired
		if lost {
			res.Lost++
		}
		for _, ri := range bad {
			dirty[ri]++
		}
	}
	tm.mu.Lock()
	for ri, a := range tm.arms {
		if ri < len(dirty) && dirty[ri] == 0 && a.state == ArmSuspect {
			tm.setStateLocked(ri, ArmHealthy, nil)
		}
	}
	tm.met.scrubPasses.Inc()
	tm.met.scrubScanned.Add(res.Scanned)
	tm.met.scrubRepaired.Add(res.Repaired)
	tm.met.scrubLost.Add(res.Lost)
	tm.mu.Unlock()
	// Failures inside Sync degrade the offending arm; the pass still
	// reports what it repaired, and a lost write quorum is surfaced in
	// SyncErr so callers never mistake an undurable pass for success.
	res.SyncErr = tm.Sync()
	return res
}

// scrubTrackLocked validates track n on every active arm, repairing
// damaged copies from the first valid one. It returns the number of
// repaired copies, whether the track is lost (no valid copy), and the
// arms left with unrepaired damage.
func (tm *TrackManager) scrubTrackLocked(n uint32) (repaired uint64, lost bool, bad []int) {
	active := tm.activeLocked()
	if len(active) == 0 {
		return 0, true, nil
	}
	golden := -1
	goldenBuf := make([]byte, tm.trackSize)
	buf := make([]byte, tm.trackSize)
	var invalid []int
	for _, ri := range active {
		dst := buf
		if golden < 0 {
			dst = goldenBuf
		}
		if err := tm.readRawLocked(ri, n, dst); err != nil {
			invalid = append(invalid, ri)
			continue
		}
		if golden < 0 {
			golden = ri
		}
	}
	if golden < 0 {
		return 0, true, invalid
	}
	for _, ri := range invalid {
		a := tm.arms[ri]
		if a.state == ArmDegraded { // degraded mid-pass by an earlier track
			continue
		}
		tm.seekLocked(a, n)
		if _, err := a.f.WriteAt(goldenBuf, int64(n)*int64(tm.trackSize)); err != nil {
			tm.degradeLocked(ri, fmt.Errorf("store: scrub repair of track %d failed: %w", n, err))
			bad = append(bad, ri)
			continue
		}
		a.repairs++
		repaired++
		tm.met.repairs.Inc()
		tm.met.writes.Inc()
		tm.met.bytesWritten.Add(uint64(tm.trackSize))
	}
	return repaired, false, bad
}

// Rebuild reconstructs one arm bit-for-bit from the surviving arms and
// reinstates it to healthy. The arm is made writable again first (state
// suspect), so commits running during the rebuild fan out to it; the copy
// loop then fills in history track by track under per-track locking, and
// the file is truncated to the allocation high-water mark so debris from
// torn writes cannot outlive the rebuild. On any copy failure the arm
// returns to degraded.
func (tm *TrackManager) Rebuild(ri int) error {
	tm.mu.Lock()
	if ri < 0 || ri >= len(tm.arms) {
		tm.mu.Unlock()
		return fmt.Errorf("store: no replica %d", ri)
	}
	if len(tm.activeLocked()) == 0 ||
		(len(tm.activeLocked()) == 1 && tm.activeLocked()[0] == ri && tm.arms[ri].state != ArmDegraded) {
		// Nothing valid to copy from would make this a destructive no-op.
		tm.mu.Unlock()
		return fmt.Errorf("store: rebuild replica %d: no healthy source arm", ri)
	}
	tm.setStateLocked(ri, ArmSuspect, nil)
	tm.arms[ri].lastErr = ""
	tm.mu.Unlock()

	for n := uint32(0); ; n++ {
		tm.mu.Lock()
		if n >= tm.nTracks {
			tm.mu.Unlock()
			break
		}
		err := tm.rebuildTrackLocked(ri, n)
		tm.mu.Unlock()
		if err != nil {
			return err
		}
	}

	tm.mu.Lock()
	defer tm.mu.Unlock()
	a := tm.arms[ri]
	if a.state == ArmDegraded { // a concurrent write failed mid-rebuild
		return fmt.Errorf("store: rebuild replica %d: arm failed during rebuild: %s", ri, a.lastErr)
	}
	if err := a.f.Truncate(int64(tm.nTracks) * int64(tm.trackSize)); err != nil {
		tm.degradeLocked(ri, err)
		return fmt.Errorf("store: rebuild replica %d: truncate: %w", ri, err)
	}
	if err := a.f.Sync(); err != nil {
		tm.degradeLocked(ri, err)
		return fmt.Errorf("store: rebuild replica %d: sync: %w", ri, err)
	}
	tm.setStateLocked(ri, ArmHealthy, nil)
	tm.met.rebuilds.Inc()
	return nil
}

// rebuildTrackLocked copies one track onto the rebuilding arm: from the
// first checksum-valid source arm, or — when no copy is valid (allocation
// debris, never-written alternate superblock slot) — verbatim from the
// first source arm holding bytes there, preserving bit-identity of the
// replica set. A track no source arm can read is skipped.
func (tm *TrackManager) rebuildTrackLocked(target int, n uint32) error {
	buf := make([]byte, tm.trackSize)
	src := -1
	for ri, a := range tm.arms {
		if ri == target || a.state == ArmDegraded {
			continue
		}
		if err := tm.readRawLocked(ri, n, buf); err == nil {
			src = ri
			break
		}
	}
	if src < 0 {
		// No valid copy: fall back to a verbatim (possibly damaged) image.
		for ri, a := range tm.arms {
			if ri == target || a.state == ArmDegraded {
				continue
			}
			if _, err := a.f.ReadAt(buf, int64(n)*int64(tm.trackSize)); err == nil {
				src = ri
				break
			}
		}
	}
	if src < 0 {
		return nil // nothing anywhere; the slot stays a hole
	}
	a := tm.arms[target]
	tm.seekLocked(a, n)
	if _, err := a.f.WriteAt(buf, int64(n)*int64(tm.trackSize)); err != nil {
		tm.degradeLocked(target, err)
		return fmt.Errorf("store: rebuild replica %d: write track %d: %w", target, n, err)
	}
	a.repairs++
	tm.met.repairs.Inc()
	tm.met.writes.Inc()
	tm.met.bytesWritten.Add(uint64(tm.trackSize))
	return nil
}
