// Package loom is a comparison baseline modeled on LOOM, the "Large
// Object-Oriented Memory for Smalltalk-80 systems" the paper discusses in
// §7. LOOM keeps "a two-level object space in main memory and on disk.
// Objects are moved to main memory from disk as needed."
//
// The paper rejects LOOM for GemStone because (a) it is single-user, (b) it
// retains ST80's 64KB maximum object size, (c) it uses the standard whole-
// object representation, so "for objects with a large history, we may want
// to bring only a fragment of the object into memory" is impossible, and
// (d) it leaves clustering and indexing unsolved. This package reproduces
// exactly that architecture: a bounded in-memory cache over serialized
// whole objects, faulting an entire object (its complete history included)
// on every miss — the behaviour experiments C4 and C10 measure against
// GemStone's association-table representation.
package loom

import (
	"errors"
	"fmt"

	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/oop"
	"repro/internal/store"
)

// MaxObjectBytes mirrors ST80's 64KB object ceiling, which LOOM retains.
const MaxObjectBytes = 64 * 1024

// ErrTooLarge reports an object exceeding the ST80/LOOM size ceiling.
var ErrTooLarge = errors.New("loom: object exceeds the 64KB ST80 limit")

// ErrNotFound reports an unknown OOP.
var ErrNotFound = errors.New("loom: object not resident on disk")

// Stats counts memory behaviour.
type Stats struct {
	Faults    uint64 // whole-object loads from the disk level
	Evictions uint64
	Hits      uint64
	DiskBytes uint64 // cumulative bytes decoded from disk
}

// Memory is a two-level LOOM-style object memory.
type Memory struct {
	disk     map[uint64][]byte // serialized whole objects
	cache    map[uint64]*object.Object
	order    []uint64 // FIFO residency order (LOOM used a clock-ish scheme)
	capacity int
	stats    Stats
	met      loomMetrics
}

// loomMetrics mirrors Stats into an obs registry so the C10 comparison can
// cite live fault/eviction counts next to the engine's own numbers.
type loomMetrics struct {
	hits      *obs.Counter
	faults    *obs.Counter
	evictions *obs.Counter
	diskBytes *obs.Counter
}

// Instrument attaches obs counters. A nil registry is a no-op.
func (m *Memory) Instrument(reg *obs.Registry) {
	m.met = loomMetrics{
		hits:      reg.Counter("loom.hits"),
		faults:    reg.Counter("loom.faults"),
		evictions: reg.Counter("loom.evictions"),
		diskBytes: reg.Counter("loom.disk.bytes"),
	}
}

// New creates a memory with room for capacity resident objects.
func New(capacity int) *Memory {
	if capacity < 1 {
		capacity = 1
	}
	return &Memory{
		disk:     make(map[uint64][]byte),
		cache:    make(map[uint64]*object.Object),
		capacity: capacity,
	}
}

// Stats returns the counters.
func (m *Memory) Stats() Stats { return m.stats }

// ResetStats zeroes the counters.
func (m *Memory) ResetStats() { m.stats = Stats{} }

// Store writes an object to the disk level (evicting any cached copy), the
// way LOOM flushes dirty objects. Objects beyond the 64KB ceiling are
// rejected, as they were in ST80.
func (m *Memory) Store(ob *object.Object) error {
	raw := store.EncodeObject(nil, ob)
	if len(raw) > MaxObjectBytes {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(raw))
	}
	serial := ob.OOP.Serial()
	m.disk[serial] = raw
	if _, resident := m.cache[serial]; resident {
		delete(m.cache, serial)
		// Keep the FIFO order consistent with the cache: a stale entry
		// here would make a later eviction pop the wrong victim and leave
		// the cache over capacity.
		for i, s := range m.order {
			if s == serial {
				m.order = append(m.order[:i], m.order[i+1:]...)
				break
			}
		}
	}
	return nil
}

// fault loads a whole object from disk into the cache.
func (m *Memory) fault(serial uint64) (*object.Object, error) {
	raw, ok := m.disk[serial]
	if !ok {
		return nil, fmt.Errorf("%w: #%d", ErrNotFound, serial)
	}
	m.stats.Faults++
	m.stats.DiskBytes += uint64(len(raw))
	m.met.faults.Inc()
	m.met.diskBytes.Add(uint64(len(raw)))
	ob, err := store.DecodeObject(raw)
	if err != nil {
		return nil, err
	}
	if len(m.cache) >= m.capacity {
		// Evict the oldest resident.
		victim := m.order[0]
		m.order = m.order[1:]
		delete(m.cache, victim)
		m.stats.Evictions++
		m.met.evictions.Inc()
	}
	m.cache[serial] = ob
	m.order = append(m.order, serial)
	return ob, nil
}

// Object returns the resident object, faulting as needed.
func (m *Memory) Object(o oop.OOP) (*object.Object, error) {
	if ob, ok := m.cache[o.Serial()]; ok {
		m.stats.Hits++
		m.met.hits.Inc()
		return ob, nil
	}
	return m.fault(o.Serial())
}

// Fetch reads an element's current value, faulting the whole object in
// (history and all) on a miss.
func (m *Memory) Fetch(o oop.OOP, name oop.OOP) (oop.OOP, bool, error) {
	ob, err := m.Object(o)
	if err != nil {
		return oop.Invalid, false, err
	}
	v, ok := ob.Fetch(name)
	return v, ok, nil
}

// FetchAt reads an element's value in a past state.
func (m *Memory) FetchAt(o oop.OOP, name oop.OOP, t oop.Time) (oop.OOP, bool, error) {
	ob, err := m.Object(o)
	if err != nil {
		return oop.Invalid, false, err
	}
	v, ok := ob.FetchAt(name, t)
	return v, ok, nil
}

// Resident returns the number of cached objects.
func (m *Memory) Resident() int { return len(m.cache) }

// DiskObjects returns the number of objects on the disk level.
func (m *Memory) DiskObjects() int { return len(m.disk) }
