package loom

import (
	"errors"
	"testing"

	"repro/internal/object"
	"repro/internal/oop"
)

func obj(serial uint64, writes int) *object.Object {
	ob := object.New(oop.FromSerial(serial), oop.FromSerial(1), 0, object.FormatNamed)
	for i := 1; i <= writes; i++ {
		_ = ob.Store(oop.FromSerial(500), oop.Time(i), oop.MustInt(int64(i)))
	}
	return ob
}

func TestStoreFetch(t *testing.T) {
	m := New(4)
	if err := m.Store(obj(1, 3)); err != nil {
		t.Fatal(err)
	}
	v, ok, err := m.Fetch(oop.FromSerial(1), oop.FromSerial(500))
	if err != nil || !ok || v != oop.MustInt(3) {
		t.Errorf("fetch = %v %v %v", v, ok, err)
	}
	if m.Stats().Faults != 1 {
		t.Errorf("faults = %d", m.Stats().Faults)
	}
	// Second access is a hit.
	_, _, _ = m.Fetch(oop.FromSerial(1), oop.FromSerial(500))
	if m.Stats().Hits != 1 {
		t.Errorf("hits = %d", m.Stats().Hits)
	}
}

func TestHistoryFaultsWhole(t *testing.T) {
	// The §7 criticism: a large history is faulted in wholesale even to
	// read one element.
	m := New(2)
	const hist = 1000
	if err := m.Store(obj(1, hist)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Fetch(oop.FromSerial(1), oop.FromSerial(500)); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.DiskBytes < uint64(hist*16) {
		t.Errorf("whole-object fault should decode the full history (%d bytes)", st.DiskBytes)
	}
	// Past states still answerable after the fault.
	v, ok, err := m.FetchAt(oop.FromSerial(1), oop.FromSerial(500), 5)
	if err != nil || !ok || v != oop.MustInt(5) {
		t.Errorf("FetchAt = %v %v %v", v, ok, err)
	}
}

func TestEviction(t *testing.T) {
	m := New(2)
	for i := uint64(1); i <= 3; i++ {
		if err := m.Store(obj(i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= 3; i++ {
		if _, _, err := m.Fetch(oop.FromSerial(i), oop.FromSerial(500)); err != nil {
			t.Fatal(err)
		}
	}
	if m.Resident() != 2 {
		t.Errorf("resident = %d, want capacity 2", m.Resident())
	}
	if m.Stats().Evictions != 1 {
		t.Errorf("evictions = %d", m.Stats().Evictions)
	}
	// Re-touching the evicted object faults again (thrash).
	before := m.Stats().Faults
	if _, _, err := m.Fetch(oop.FromSerial(1), oop.FromSerial(500)); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Faults != before+1 {
		t.Error("expected a re-fault after eviction")
	}
}

// TestStoreKeepsOrderConsistent is the regression test for the FIFO
// bookkeeping bug: Store evicted the cached copy but left its serial in
// the order queue, so a later eviction could pop a stale victim (already
// gone) and leave the cache over capacity with duplicate order entries.
func TestStoreKeepsOrderConsistent(t *testing.T) {
	const capacity = 2
	m := New(capacity)
	for i := uint64(1); i <= 4; i++ {
		if err := m.Store(obj(i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	fetch := func(serial uint64) {
		t.Helper()
		if _, _, err := m.Fetch(oop.FromSerial(serial), oop.FromSerial(500)); err != nil {
			t.Fatal(err)
		}
		if m.Resident() > capacity {
			t.Fatalf("resident = %d exceeds capacity %d", m.Resident(), capacity)
		}
		if len(m.order) != m.Resident() {
			t.Fatalf("order holds %d entries for %d residents", len(m.order), m.Resident())
		}
	}
	// The exact failing interleaving: with order [1 2], re-storing the
	// resident object 1 and faulting 3 then 4 made the old code evict the
	// stale victim 1 instead of 2, ending at three residents.
	fetch(1)
	fetch(2)
	if err := m.Store(obj(1, 2)); err != nil {
		t.Fatal(err)
	}
	fetch(3)
	fetch(4)
	// And a churn loop over every serial to shake out other interleavings.
	for step := 0; step < 60; step++ {
		serial := uint64(step%4) + 1
		if step%3 == 0 {
			if err := m.Store(obj(serial, step+1)); err != nil {
				t.Fatal(err)
			}
			if len(m.order) != m.Resident() {
				t.Fatalf("step %d: order holds %d entries for %d residents", step, len(m.order), m.Resident())
			}
		} else {
			fetch(serial)
		}
	}
}

func Test64KBLimit(t *testing.T) {
	// LOOM "retains the same maximum size for objects" — exceed it.
	big := object.New(oop.FromSerial(1), oop.FromSerial(2), 0, object.FormatBytes)
	_ = big.SetBytes(1, make([]byte, MaxObjectBytes+1))
	m := New(2)
	if err := m.Store(big); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized object: %v", err)
	}
	// An object with a long enough history also crosses the ceiling.
	huge := obj(1, 5000)
	if err := m.Store(huge); !errors.Is(err, ErrTooLarge) {
		t.Errorf("long-history object should exceed the 64KB ceiling: %v", err)
	}
}

func TestMissingObject(t *testing.T) {
	m := New(1)
	if _, _, err := m.Fetch(oop.FromSerial(9), oop.FromSerial(500)); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing: %v", err)
	}
}

func TestStatsReset(t *testing.T) {
	m := New(1)
	_ = m.Store(obj(1, 1))
	_, _, _ = m.Fetch(oop.FromSerial(1), oop.FromSerial(500))
	m.ResetStats()
	if m.Stats() != (Stats{}) {
		t.Error("stats not reset")
	}
	if m.DiskObjects() != 1 {
		t.Error("disk objects wrong")
	}
}
