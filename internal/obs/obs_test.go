package obs

import (
	"sort"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d", c.Value())
	}
	if r.Counter("a.count") != c {
		t.Error("counter not reused by name")
	}
	g := r.Gauge("a.level")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Errorf("gauge = %d", g.Value())
	}
}

func TestNilRegistryAndInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", SizeBounds)
	l := r.SlowLog()
	c.Inc()
	c.Add(3)
	g.Set(9)
	g.Add(1)
	h.Observe(5)
	sw := h.Start()
	if sw.Stop() > 1e12 {
		t.Error("nil-histogram stopwatch still measures real time")
	}
	l.Record(1, "src")
	if c.Value() != 0 || g.Value() != 0 {
		t.Error("nil instruments recorded something")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms)+len(snap.Slow) != 0 {
		t.Error("nil registry snapshot not empty")
	}
	if snap.Counter("x") != 0 {
		t.Error("absent counter lookup")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []uint64{10, 100})
	for _, v := range []uint64{1, 10, 11, 100, 101, 5000} {
		h.Observe(v)
	}
	hv, ok := r.Snapshot().Histogram("h")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	want := []uint64{2, 2, 2} // ≤10, ≤100, +Inf
	for i, n := range want {
		if hv.Buckets[i] != n {
			t.Errorf("bucket %d = %d, want %d", i, hv.Buckets[i], n)
		}
	}
	if hv.Count != 6 || hv.Sum != 1+10+11+100+101+5000 {
		t.Errorf("count=%d sum=%d", hv.Count, hv.Sum)
	}
	if m := hv.Mean(); m < 800 || m > 900 {
		t.Errorf("mean = %f", m)
	}
}

func TestSlowLogBoundedRing(t *testing.T) {
	l := &SlowLog{cap: 3}
	for i := 0; i < 10; i++ {
		l.Record(uint64(i), "q")
	}
	es := l.entries()
	if len(es) != 3 {
		t.Fatalf("len = %d", len(es))
	}
	if es[0].Seq != 8 || es[2].Seq != 10 {
		t.Errorf("ring = %+v", es)
	}
}

// wellFormed checks the snapshot invariants the wire and the ledger rely
// on: names strictly ascending within each section, and every histogram's
// Count equal to the sum of its buckets (no torn histograms).
func wellFormed(t *testing.T, s *Snapshot) {
	t.Helper()
	if !sort.SliceIsSorted(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name }) {
		t.Error("counters not sorted")
	}
	if !sort.SliceIsSorted(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name }) {
		t.Error("gauges not sorted")
	}
	if !sort.SliceIsSorted(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name }) {
		t.Error("histograms not sorted")
	}
	for _, h := range s.Histograms {
		if len(h.Buckets) != len(h.Bounds)+1 {
			t.Errorf("%s: %d buckets for %d bounds", h.Name, len(h.Buckets), len(h.Bounds))
		}
		var total uint64
		for _, n := range h.Buckets {
			total += n
		}
		if total != h.Count {
			t.Errorf("%s: torn histogram: count=%d Σbuckets=%d", h.Name, h.Count, total)
		}
	}
}

// TestSnapshotDeterminismUnderConcurrentIncrements takes snapshots while
// writers hammer every instrument kind: each snapshot must be well-formed
// (sorted keys, untorn histograms), and a quiesced registry must render
// byte-identically on repeated snapshots.
func TestSnapshotDeterminismUnderConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("w.count")
			g := r.Gauge("w.level")
			h := r.Histogram("w.lat", SizeBounds)
			for i := uint64(0); i < 20000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(i % 2048)
				// Instrument creation races with snapshots too.
				r.Counter("w.count").Inc()
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		wellFormed(t, r.Snapshot())
	}
	wg.Wait()
	a, b := r.Snapshot(), r.Snapshot()
	wellFormed(t, a)
	if a.String() != b.String() {
		t.Error("quiesced registry renders differently across snapshots")
	}
	if a.Counter("w.count") == 0 {
		t.Error("no increments recorded")
	}
}

func TestSnapshotLookupHelpers(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	r.Gauge("g").Set(-3)
	s := r.Snapshot()
	if s.Counter("a") != 1 || s.Counter("b") != 2 || s.Counter("zz") != 0 {
		t.Errorf("counter lookups: %+v", s.Counters)
	}
	if s.Gauge("g") != -3 {
		t.Errorf("gauge lookup: %+v", s.Gauges)
	}
	if _, ok := s.Histogram("none"); ok {
		t.Error("phantom histogram")
	}
}
