// Package obs is the engine's observability layer: a dependency-free
// metrics registry of counters, gauges and bounded-bucket histograms, plus
// a small slow-query log. The paper's Object Manager is a multi-user
// server whose behaviour — optimistic aborts (§6 Transaction Manager),
// group safe-writes (§6 Commit Manager), index vs scan crossovers (§4.3) —
// is only credible if it can be watched under load; this package is the
// window. Every subsystem (txn, store, loom, directory maintenance,
// executor, wire) registers its instruments here, and snapshots surface
// through gemstone.DB.Stats(), the OpStats wire operation, and the
// cmd/gemstone -statsevery periodic dump.
//
// Design constraints:
//
//   - Lock-cheap on the hot path: instruments are single atomic words (or
//     arrays of them); recording never takes the registry lock. The
//     registry lock is touched only at instrument creation and snapshot
//     time.
//   - Nil-safe: every instrument method is a no-op on a nil receiver, and
//     a nil *Registry hands out nil instruments. Subsystems can therefore
//     instrument unconditionally; standalone uses (unit tests, tools) that
//     never attach a registry pay nothing.
//   - Deterministic snapshots: Snapshot returns name-sorted slices, never
//     maps, so rendering, gob encoding over the wire, and ledger output
//     are byte-stable for the same counter state (the detmap invariant
//     gslint enforces over this package).
//   - Untorn histograms: a histogram's total count is derived from its
//     bucket counts at snapshot time, so Count == Σ Buckets holds in every
//     snapshot no matter how many observations race with it.
//
// The wallclock analyzer forbids time.Now in the kernel packages
// (transaction time must come from the commit clock); obs is deliberately
// outside that scope and owns the only stopwatch. Kernel code measures a
// duration by calling (*Histogram).Start / Stopwatch.Stop, which never
// feeds wall-clock time into committed state — it only buckets it.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. No-op on a nil counter.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous level (live sessions, open connections).
type Gauge struct {
	v atomic.Int64
}

// Set stores the level. No-op on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the level by d. No-op on a nil gauge.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current level (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram buckets observed values against a fixed ascending list of
// inclusive upper bounds, with an implicit +Inf bucket at the end. The
// bounds are fixed at creation, so recording is a binary search plus one
// atomic add — no allocation, no lock.
type Histogram struct {
	bounds  []uint64 // ascending inclusive upper bounds
	buckets []atomic.Uint64
	sum     atomic.Uint64
}

func newHistogram(bounds []uint64) *Histogram {
	b := append([]uint64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value. No-op on a nil histogram.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.sum.Add(v)
}

// Stopwatch measures one interval for a histogram of nanosecond values.
type Stopwatch struct {
	h     *Histogram
	start time.Time
}

// Start begins timing an interval destined for this histogram. Safe on a
// nil histogram: the returned stopwatch still measures (so Stop's return
// value is usable) but records nowhere.
func (h *Histogram) Start() Stopwatch {
	return Stopwatch{h: h, start: time.Now()}
}

// Stop observes and returns the elapsed nanoseconds.
func (sw Stopwatch) Stop() uint64 {
	d := uint64(time.Since(sw.start))
	sw.h.Observe(d)
	return d
}

// LatencyBounds is the standard nanosecond bucket ladder for latency
// histograms: 1µs to ~4s, quadrupling.
var LatencyBounds = []uint64{
	1_000, 4_000, 16_000, 64_000, 256_000,
	1_000_000, 4_000_000, 16_000_000, 64_000_000, 256_000_000,
	1_000_000_000, 4_000_000_000,
}

// SizeBounds is the standard bucket ladder for small cardinalities (group
// sizes, spin counts): powers of two up to 1024.
var SizeBounds = []uint64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// SlowEntry is one record of the slow-query log.
type SlowEntry struct {
	Seq    uint64 // monotonically increasing record number
	DurNS  uint64
	Source string // the OPAL source block (possibly truncated)
}

// slowSourceLimit bounds the stored source text per entry.
const slowSourceLimit = 512

// SlowLog is a bounded ring of the most recent slow operations.
type SlowLog struct {
	mu   sync.Mutex // guards seq, ring
	cap  int
	seq  uint64
	ring []SlowEntry
}

// Record appends an entry, evicting the oldest past capacity. No-op on a
// nil log.
func (l *SlowLog) Record(durNS uint64, source string) {
	if l == nil {
		return
	}
	if len(source) > slowSourceLimit {
		source = source[:slowSourceLimit] + "…"
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	l.ring = append(l.ring, SlowEntry{Seq: l.seq, DurNS: durNS, Source: source})
	if len(l.ring) > l.cap {
		l.ring = l.ring[len(l.ring)-l.cap:]
	}
}

// entries returns a copy, oldest first.
func (l *SlowLog) entries() []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]SlowEntry(nil), l.ring...)
}

// slowLogCap is the retained slow-query window.
const slowLogCap = 32

// Registry holds every instrument by name. The zero registry must not be
// used; a nil *Registry is valid everywhere and disables instrumentation.
type Registry struct {
	mu       sync.Mutex // guards counters, gauges, hists
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	slow     *SlowLog
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		slow:     &SlowLog{cap: slowLogCap},
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil registry
// returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (later calls reuse the existing instrument and
// ignore bounds). A nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// SlowLog returns the registry's slow-operation log (nil for a nil
// registry).
func (r *Registry) SlowLog() *SlowLog {
	if r == nil {
		return nil
	}
	return r.slow
}

// CounterValue is one counter in a snapshot.
type CounterValue struct {
	Name  string
	Value uint64
}

// GaugeValue is one gauge in a snapshot.
type GaugeValue struct {
	Name  string
	Value int64
}

// HistogramValue is one histogram in a snapshot. Count is derived from
// Buckets at snapshot time, so Count == Σ Buckets always holds.
type HistogramValue struct {
	Name    string
	Count   uint64
	Sum     uint64
	Bounds  []uint64 // ascending inclusive upper bounds
	Buckets []uint64 // len(Bounds)+1; last is the +Inf bucket
}

// Mean returns the average observed value (0 when empty).
func (h HistogramValue) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Snapshot is a point-in-time, name-sorted copy of every instrument.
// Slices, not maps, so gob encoding and rendering are deterministic.
type Snapshot struct {
	Counters   []CounterValue
	Gauges     []GaugeValue
	Histograms []HistogramValue
	Slow       []SlowEntry // oldest first
}

// Snapshot captures the current state of every instrument. Safe under
// concurrent recording; a nil registry yields an empty snapshot.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{}
	if r == nil {
		return s
	}
	r.mu.Lock()
	cnames := make([]string, 0, len(r.counters))
	for name := range r.counters {
		cnames = append(cnames, name)
	}
	gnames := make([]string, 0, len(r.gauges))
	for name := range r.gauges {
		gnames = append(gnames, name)
	}
	hnames := make([]string, 0, len(r.hists))
	for name := range r.hists {
		hnames = append(hnames, name)
	}
	sort.Strings(cnames)
	sort.Strings(gnames)
	sort.Strings(hnames)
	counters := make([]*Counter, len(cnames))
	for i, name := range cnames {
		counters[i] = r.counters[name]
	}
	gauges := make([]*Gauge, len(gnames))
	for i, name := range gnames {
		gauges[i] = r.gauges[name]
	}
	hists := make([]*Histogram, len(hnames))
	for i, name := range hnames {
		hists[i] = r.hists[name]
	}
	r.mu.Unlock()

	s.Counters = make([]CounterValue, len(cnames))
	for i, name := range cnames {
		s.Counters[i] = CounterValue{Name: name, Value: counters[i].Value()}
	}
	s.Gauges = make([]GaugeValue, len(gnames))
	for i, name := range gnames {
		s.Gauges[i] = GaugeValue{Name: name, Value: gauges[i].Value()}
	}
	s.Histograms = make([]HistogramValue, len(hnames))
	for i, name := range hnames {
		h := hists[i]
		hv := HistogramValue{
			Name:    name,
			Sum:     h.sum.Load(),
			Bounds:  append([]uint64(nil), h.bounds...),
			Buckets: make([]uint64, len(h.buckets)),
		}
		for j := range h.buckets {
			n := h.buckets[j].Load()
			hv.Buckets[j] = n
			hv.Count += n
		}
		s.Histograms[i] = hv
	}
	s.Slow = r.slow.entries()
	return s
}

// Counter returns the value of the named counter (0 if absent).
func (s *Snapshot) Counter(name string) uint64 {
	i := sort.Search(len(s.Counters), func(i int) bool { return s.Counters[i].Name >= name })
	if i < len(s.Counters) && s.Counters[i].Name == name {
		return s.Counters[i].Value
	}
	return 0
}

// Gauge returns the value of the named gauge (0 if absent).
func (s *Snapshot) Gauge(name string) int64 {
	i := sort.Search(len(s.Gauges), func(i int) bool { return s.Gauges[i].Name >= name })
	if i < len(s.Gauges) && s.Gauges[i].Name == name {
		return s.Gauges[i].Value
	}
	return 0
}

// Histogram returns the named histogram value.
func (s *Snapshot) Histogram(name string) (HistogramValue, bool) {
	i := sort.Search(len(s.Histograms), func(i int) bool { return s.Histograms[i].Name >= name })
	if i < len(s.Histograms) && s.Histograms[i].Name == name {
		return s.Histograms[i], true
	}
	return HistogramValue{}, false
}

// String renders the snapshot as an aligned text table (the /stats and
// -statsevery output format).
func (s *Snapshot) String() string {
	var b strings.Builder
	if len(s.Counters) > 0 {
		b.WriteString("counters:\n")
		for _, c := range s.Counters {
			fmt.Fprintf(&b, "  %-34s %d\n", c.Name, c.Value)
		}
	}
	if len(s.Gauges) > 0 {
		b.WriteString("gauges:\n")
		for _, g := range s.Gauges {
			fmt.Fprintf(&b, "  %-34s %d\n", g.Name, g.Value)
		}
	}
	if len(s.Histograms) > 0 {
		b.WriteString("histograms:\n")
		for _, h := range s.Histograms {
			fmt.Fprintf(&b, "  %-34s count=%d mean=%.0f", h.Name, h.Count, h.Mean())
			for i, n := range h.Buckets {
				if n == 0 {
					continue
				}
				if i < len(h.Bounds) {
					fmt.Fprintf(&b, " ≤%d:%d", h.Bounds[i], n)
				} else {
					fmt.Fprintf(&b, " inf:%d", n)
				}
			}
			b.WriteString("\n")
		}
	}
	if len(s.Slow) > 0 {
		b.WriteString("slow queries:\n")
		for _, e := range s.Slow {
			src := e.Source
			if i := strings.IndexByte(src, '\n'); i >= 0 {
				src = src[:i] + "…"
			}
			fmt.Fprintf(&b, "  [%d] %.1fms  %s\n", e.Seq, float64(e.DurNS)/1e6, src)
		}
	}
	if b.Len() == 0 {
		return "(no instruments)\n"
	}
	return b.String()
}
