package experiments

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/gemstone"
	"repro/internal/iofault"
	"repro/internal/store"
)

// C11 — availability under replica faults (§6: "Tracks are replicated ...
// to improve availability and reliability"). The paper replicates every
// track so the database survives device failures; this experiment drives
// a commit workload over three arms while a seeded fault schedule flips
// bits on one arm's writes and tears a write on another (degrading it),
// then checks the failures never reach a client, health reporting sees
// them, and a scrub plus rebuild converges all three arms bit-for-bit.
func C11(w io.Writer) error {
	fmt.Fprintln(w, "C11: availability — seeded device faults vs client-visible errors")
	c := &checker{w: w}
	dir, err := os.MkdirTemp("", "gs-c11-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Bootstrap fault-free so the fault ordinals land mid-workload.
	db, err := gemstone.Open(dir, gemstone.Options{Replicas: 3})
	if err != nil {
		return err
	}
	if err := db.Close(); err != nil {
		return err
	}
	db, err = gemstone.Open(dir, gemstone.Options{
		Replicas: 3,
		OpenReplica: func(path string, replica int) (store.ReplicaFile, error) {
			var sched iofault.Schedule
			switch replica {
			case 0:
				// Silent corruption: one write lands bit-flipped. The CRC
				// catches it on the next read or scrub of that track.
				sched = iofault.Schedule{Seed: 11, Rules: []iofault.Rule{
					{Op: iofault.OpWrite, Kind: iofault.BitFlip, From: 9, To: 9},
				}}
			case 1:
				// A torn write degrades the arm mid-workload; its ordinals
				// freeze there, so the later Rebuild writes run clear.
				sched = iofault.Schedule{Rules: []iofault.Rule{
					{Op: iofault.OpWrite, Kind: iofault.Torn, From: 14, To: 14},
				}}
			default:
				return os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
			}
			return iofault.Open(path, sched)
		},
	})
	if err != nil {
		return err
	}
	defer db.Close()

	s, err := db.Login(gemstone.SystemUser, "swordfish")
	if err != nil {
		return err
	}
	const commits = 12
	failures := 0
	for i := 0; i < commits; i++ {
		if _, err := s.Run(fmt.Sprintf("World at: #avail%d put: %d", i, i)); err != nil {
			failures++
			continue
		}
		if _, err := s.Commit(); err != nil {
			failures++
		}
	}
	c.check(fmt.Sprintf("%d commits over a faulting replica set, zero client errors", commits),
		failures == 0, fmt.Sprintf("failures=%d", failures))

	health := db.Health()
	c.check("health reports the torn arm degraded",
		health[1].State == store.ArmDegraded.String(), health[1].LastError)
	snap := db.Stats()
	c.check("degraded-mode commits are counted",
		snap.Counter("store.commits.degraded") > 0,
		fmt.Sprintf("store.commits.degraded=%d", snap.Counter("store.commits.degraded")))

	res := db.Scrub()
	c.check("scrub detects and repairs the bit-flipped track",
		res.Repaired > 0 && res.Lost == 0 && res.SyncErr == nil,
		fmt.Sprintf("scanned=%d repaired=%d lost=%d syncErr=%v", res.Scanned, res.Repaired, res.Lost, res.SyncErr))
	if err := db.Rebuild(1); err != nil {
		return err
	}
	healthy := true
	for _, h := range db.Health() {
		healthy = healthy && h.State == store.ArmHealthy.String()
	}
	snap = db.Stats()
	c.check("all arms healthy after scrub + rebuild", healthy,
		fmt.Sprintf("store.scrub.repaired=%d store.rebuilds=%d",
			snap.Counter("store.scrub.repaired"), snap.Counter("store.rebuilds")))

	// More commits on the reinstated set, then byte-compare the arms.
	for i := 0; i < 4; i++ {
		if _, err := s.Run(fmt.Sprintf("World at: #post%d put: %d", i, i)); err != nil {
			return err
		}
		if _, err := s.Commit(); err != nil {
			return err
		}
	}
	if err := db.Close(); err != nil {
		return err
	}
	var arms [3][]byte
	for r := range arms {
		arms[r], err = os.ReadFile(filepath.Join(dir, fmt.Sprintf("replica%d.gs", r)))
		if err != nil {
			return err
		}
	}
	c.check("all three replica files bit-identical after repair",
		bytes.Equal(arms[0], arms[1]) && bytes.Equal(arms[0], arms[2]),
		fmt.Sprintf("%d/%d/%d bytes", len(arms[0]), len(arms[1]), len(arms[2])))
	return c.result("c11")
}
