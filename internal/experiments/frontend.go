package experiments

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/gemstone"
	"repro/internal/executor"
	"repro/internal/wire"
)

// This file is the front-end overload harness behind claim C12: the wire
// layer's bounded admission, request deadlines, and graceful drain keep
// the server live and honest when offered load exceeds capacity. It is
// both a gsbench mode (`gsbench -openloop`, recorded as the "frontend"
// ledger section) and the C12 experiment.

// frontendSource is the per-request workload: a small OPAL spin loop so a
// request costs real interpreter time (~a millisecond) rather than pure
// wire overhead. Capacity is then executor-bound, which is the regime the
// admission controller is designed for.
const frontendSource = "1 to: 4000 do: [:i | i]. 'ok'"

// frontendConfig is the server posture under test: bounded pipelining,
// a small execution-slot pool, a finite admission queue, and a short
// queue-wait budget so overload turns into fast retryable sheds.
func frontendConfig() wire.Config {
	return wire.Config{
		MaxInFlight:   8,
		MaxConcurrent: 4,
		QueueDepth:    64,
		QueueWait:     50 * time.Millisecond,
	}
}

// serveFrontend starts a wire server over db on a loopback port.
func serveFrontend(db *gemstone.DB, cfg wire.Config) (*wire.Server, string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	return wire.ServeConfig(ln, executor.New(db), cfg), ln.Addr().String(), nil
}

// fleet is a pool of logged-in connections, one session per connection,
// like a population of independent host programs (§6).
type fleet struct {
	clients  []*wire.Client
	sessions []*wire.RemoteSession
}

// dialFleet opens conns connections and logs each in, dialing in parallel
// so a 1000-connection fleet comes up in seconds. Every client carries a
// call timeout (bounds the local wait) and a request deadline (bounds the
// server-side execution), so no request can hang the harness.
func dialFleet(addr string, conns int) (*fleet, error) {
	f := &fleet{
		clients:  make([]*wire.Client, conns),
		sessions: make([]*wire.RemoteSession, conns),
	}
	var wg sync.WaitGroup
	var firstErr atomic.Value
	sem := make(chan struct{}, 32)
	for i := 0; i < conns; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			c, err := wire.DialRetry(addr, 2*time.Second, 5)
			if err != nil {
				firstErr.CompareAndSwap(nil, err)
				return
			}
			c.SetCallTimeout(5 * time.Second)
			c.SetRequestDeadline(500 * time.Millisecond)
			rs, err := c.Login(gemstone.SystemUser, "swordfish")
			if err != nil {
				c.Close()
				firstErr.CompareAndSwap(nil, err)
				return
			}
			f.clients[i] = c
			f.sessions[i] = rs
		}(i)
	}
	wg.Wait()
	if err := firstErr.Load(); err != nil {
		f.close()
		return nil, err.(error)
	}
	return f, nil
}

func (f *fleet) close() {
	for _, c := range f.clients {
		if c != nil {
			c.Close()
		}
	}
}

// retryableErr reports whether err is one of the front end's clean
// backpressure signals — the errors a well-behaved client retries —
// as opposed to a hard failure.
func retryableErr(err error) bool {
	return errors.Is(err, wire.ErrOverloaded) ||
		errors.Is(err, wire.ErrShuttingDown) ||
		errors.Is(err, wire.ErrDeadlineExceeded) ||
		errors.Is(err, wire.ErrCallTimeout)
}

// FrontendResult aggregates one open-loop run.
type FrontendResult struct {
	Conns         int
	Offered       float64 // requests/s the schedule tried to send
	Sent          int64
	OK            int64
	Shed          int64 // retryable backpressure (overload/deadline/timeout)
	Failed        int64 // non-retryable errors — zero on a healthy front end
	FirstFailure  string
	P50, P95, P99 time.Duration // over successful requests, from scheduled send time
	Goodput       float64       // successful replies per second of wall clock
}

// openLoad offers rate requests/s across the fleet on a fixed schedule,
// open-loop: a slow reply does not slow the arrival process, so queueing
// delay shows up as latency (measured from the scheduled send instant)
// instead of being hidden by a stalled load generator.
func openLoad(f *fleet, source string, rate float64, d time.Duration) FrontendResult {
	conns := len(f.sessions)
	interval := time.Duration(float64(conns) / rate * float64(time.Second))
	start := time.Now()
	stop := start.Add(d)
	var mu sync.Mutex
	lats := make([]time.Duration, 0, int(rate*d.Seconds())+conns)
	var sent, shed, failed int64
	var firstFailure atomic.Value
	var wg sync.WaitGroup
	for i := range f.sessions {
		wg.Add(1)
		go func(i int, rs *wire.RemoteSession) {
			defer wg.Done()
			var reqWG sync.WaitGroup
			defer reqWG.Wait()
			// Stagger connection i by i/rate so the fleet's schedules
			// interleave into a smooth arrival process.
			next := start.Add(time.Duration(float64(i) / rate * float64(time.Second)))
			for next.Before(stop) {
				if wait := time.Until(next); wait > 0 {
					time.Sleep(wait)
				}
				sched := next
				atomic.AddInt64(&sent, 1)
				reqWG.Add(1)
				go func() {
					defer reqWG.Done()
					_, _, err := rs.Execute(source)
					lat := time.Since(sched)
					if err != nil {
						if retryableErr(err) {
							atomic.AddInt64(&shed, 1)
						} else {
							atomic.AddInt64(&failed, 1)
							firstFailure.CompareAndSwap(nil, err.Error())
						}
						return
					}
					mu.Lock()
					lats = append(lats, lat)
					mu.Unlock()
				}()
				next = next.Add(interval)
			}
		}(i, f.sessions[i])
	}
	wg.Wait()
	elapsed := time.Since(start)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	res := FrontendResult{
		Conns:   conns,
		Offered: rate,
		Sent:    sent,
		OK:      int64(len(lats)),
		Shed:    shed,
		Failed:  failed,
		P50:     pctl(lats, 0.50),
		P95:     pctl(lats, 0.95),
		P99:     pctl(lats, 0.99),
		Goodput: float64(len(lats)) / elapsed.Seconds(),
	}
	if msg, ok := firstFailure.Load().(string); ok {
		res.FirstFailure = msg
	}
	return res
}

// pctl reads the p-quantile from an ascending-sorted latency slice.
func pctl(lats []time.Duration, p float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	i := int(p*float64(len(lats)-1) + 0.5)
	return lats[i]
}

// closedLoad measures sustainable capacity the classic way: workers
// issuing back-to-back requests, each waiting for its reply. The rate it
// settles at is the peak the open-loop runs are scaled against.
func closedLoad(f *fleet, source string, workers int, d time.Duration) float64 {
	if workers > len(f.sessions) {
		workers = len(f.sessions)
	}
	var ok int64
	stop := time.Now().Add(d)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(rs *wire.RemoteSession) {
			defer wg.Done()
			for time.Now().Before(stop) {
				if _, _, err := rs.Execute(source); err == nil {
					atomic.AddInt64(&ok, 1)
				}
			}
		}(f.sessions[i])
	}
	wg.Wait()
	return float64(ok) / d.Seconds()
}

// row flattens a result into ledger metrics.
func (r FrontendResult) row() map[string]float64 {
	shedRate := 0.0
	if r.Sent > 0 {
		shedRate = float64(r.Shed) / float64(r.Sent)
	}
	return map[string]float64{
		"conns":             float64(r.Conns),
		"offered_req_per_s": r.Offered,
		"sent":              float64(r.Sent),
		"ok":                float64(r.OK),
		"shed":              float64(r.Shed),
		"failed":            float64(r.Failed),
		"shed_rate":         shedRate,
		"goodput_req_per_s": r.Goodput,
		"p50_ms":            float64(r.P50) / 1e6,
		"p95_ms":            float64(r.P95) / 1e6,
		"p99_ms":            float64(r.P99) / 1e6,
	}
}

func (r FrontendResult) String() string {
	return fmt.Sprintf("offered %6.0f/s  sent %5d  ok %5d  shed %5d  failed %d  goodput %6.0f/s  p50 %6.2fms  p95 %6.2fms  p99 %6.2fms",
		r.Offered, r.Sent, r.OK, r.Shed, r.Failed, r.Goodput,
		float64(r.P50)/1e6, float64(r.P95)/1e6, float64(r.P99)/1e6)
}

// Frontend is the `gsbench -openloop` workload: it brings up a server
// with admission control, dials a fleet of conns connections, measures
// closed-loop peak capacity, then offers open-loop load at 0.5x, 1x, and
// 2x peak (or a single explicit rate) for d each, and returns the
// "frontend" ledger section.
func Frontend(w io.Writer, conns int, rate float64, d time.Duration) (map[string]map[string]float64, error) {
	db, cleanup, err := tempDB(gemstone.Options{})
	if err != nil {
		return nil, err
	}
	defer cleanup()
	srv, addr, err := serveFrontend(db, frontendConfig())
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	f, err := dialFleet(addr, conns)
	if err != nil {
		return nil, err
	}
	defer f.close()

	peak := closedLoad(f, frontendSource, 8, 1500*time.Millisecond)
	fmt.Fprintf(w, "closed-loop peak over %d conns (8 workers): %.0f req/s\n", conns, peak)

	loads := map[string]float64{}
	if rate > 0 {
		loads["offered"] = rate
	} else {
		loads["load=0.5x"] = 0.5 * peak
		loads["load=1.0x"] = peak
		loads["load=2.0x"] = 2 * peak
	}
	section := map[string]map[string]float64{
		"peak": {"closedloop_req_per_s": peak, "conns": float64(conns)},
	}
	for _, name := range sortedKeys(loads) {
		res := openLoad(f, frontendSource, loads[name], d)
		fmt.Fprintf(w, "%-10s %s\n", name, res)
		if res.Failed > 0 {
			fmt.Fprintf(w, "  first non-retryable failure: %s\n", res.FirstFailure)
		}
		section[name] = res.row()
	}
	return section, nil
}

// C12 is the overload experiment: at 2x the sustainable open-loop load
// the server must stay up, shed the excess with clean retryable errors,
// and keep goodput within 20% of peak; at 0.5x load tail latency stays
// within the request budget. Then a graceful drain under a commit storm:
// after Shutdown, the durable database must contain exactly the commits
// that were acknowledged — no lost acks, no committed-but-unacknowledged
// transactions — proven by reopening the store.
func C12(w io.Writer) error {
	fmt.Fprintln(w, "bounded admission under 2x overload, then graceful drain under a commit storm")
	c := &checker{w: w}

	// --- Part 1: overload behavior ---------------------------------------
	db, cleanup, err := tempDB(gemstone.Options{})
	if err != nil {
		return err
	}
	defer cleanup()
	srv, addr, err := serveFrontend(db, frontendConfig())
	if err != nil {
		return err
	}
	defer srv.Close()
	const conns = 128
	f, err := dialFleet(addr, conns)
	if err != nil {
		return err
	}
	defer f.close()

	peak := closedLoad(f, frontendSource, 8, 1500*time.Millisecond)
	fmt.Fprintf(w, "  closed-loop peak over %d conns: %.0f req/s\n", conns, peak)
	low := openLoad(f, frontendSource, 0.5*peak, 2*time.Second)
	fmt.Fprintf(w, "  0.5x  %s\n", low)
	over := openLoad(f, frontendSource, 2*peak, 2*time.Second)
	fmt.Fprintf(w, "  2.0x  %s\n", over)

	result, _, err := f.sessions[0].Execute("40 + 2")
	c.check("server alive after 2x overload", err == nil && result == "42",
		fmt.Sprintf("probe = %q, err = %v", result, err))
	c.check("overload shed cleanly: zero non-retryable errors", over.Failed == 0,
		fmt.Sprintf("failed=%d %s", over.Failed, over.FirstFailure))
	c.check("goodput under 2x overload within 20% of peak", over.Goodput >= 0.8*peak,
		fmt.Sprintf("%.0f/s vs peak %.0f/s", over.Goodput, peak))
	c.check("0.5x load: sheds below 2% of offered", low.Failed == 0 && float64(low.Shed) <= 0.02*float64(low.Sent),
		fmt.Sprintf("shed=%d failed=%d of %d", low.Shed, low.Failed, low.Sent))
	c.check("0.5x load: p99 within the 500ms request budget", low.P99 > 0 && low.P99 <= 500*time.Millisecond,
		fmt.Sprintf("p99 = %v", low.P99))

	// --- Part 2: graceful drain under a commit storm ----------------------
	fmt.Fprintln(w, "  drain under commit storm:")
	dir, err := os.MkdirTemp("", "gsbench-c12-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	db2, err := gemstone.Open(dir, gemstone.Options{})
	if err != nil {
		return err
	}
	srv2, addr2, err := serveFrontend(db2, frontendConfig())
	if err != nil {
		db2.Close()
		return err
	}
	const workers = 4
	storm, err := dialFleet(addr2, workers)
	if err != nil {
		srv2.Close()
		db2.Close()
		return err
	}
	acked := make([]int, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int, rs *wire.RemoteSession) {
			defer wg.Done()
			for seq := 1; ; seq++ {
				src := fmt.Sprintf("World at: #storm%d put: %d", wk, seq)
				for {
					if _, _, err := rs.Execute(src); err != nil {
						return
					}
					_, err := rs.Commit()
					if err == nil {
						acked[wk] = seq
						break
					}
					// All workers write the shared World root, so commits
					// conflict under first-committer-wins; the standard
					// optimistic loop retries on a refreshed snapshot.
					if !strings.Contains(err.Error(), "conflict") {
						return
					}
				}
			}
		}(wk, storm.sessions[wk])
	}
	time.Sleep(300 * time.Millisecond)
	shutErr := srv2.Shutdown(10 * time.Second)
	wg.Wait()
	storm.close()
	db2.Close()

	// Reopen and compare durable state against the acknowledgment log.
	db3, err := gemstone.Open(dir, gemstone.Options{})
	if err != nil {
		return err
	}
	s, err := db3.Login(gemstone.SystemUser, "swordfish")
	if err != nil {
		db3.Close()
		return err
	}
	total, mismatch := 0, ""
	for wk := 0; wk < workers; wk++ {
		got, err := s.Run(fmt.Sprintf("World at: #storm%d", wk))
		if acked[wk] == 0 {
			// Never acknowledged: the durable store must not contain it
			// (a missing World key reads as nil, not an error).
			if err == nil && got != "nil" {
				mismatch = fmt.Sprintf("worker %d: acked nothing but durable value %q", wk, got)
			}
		} else if err != nil || got != strconv.Itoa(acked[wk]) {
			mismatch = fmt.Sprintf("worker %d: acked %d but durable value %q (err %v)", wk, acked[wk], got, err)
		}
		total += acked[wk]
		fmt.Fprintf(w, "    worker %d: last acked seq %d, durable %q\n", wk, acked[wk], got)
	}
	db3.Close()
	c.check("drain completed within budget", shutErr == nil, fmt.Sprintf("%v", shutErr))
	c.check("commit storm made progress before drain", total > 0,
		fmt.Sprintf("%d acknowledged commits", total))
	c.check("after restart, durable state equals acknowledged commits exactly", mismatch == "", mismatch)
	return c.result("c12")
}
