package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Ledger is the BENCH_*.json document: section -> benchmark (or metric
// group) name -> metric -> value. Sections let one file carry a pre-change
// baseline, the current numbers, and the engine-counter section side by
// side; writers replace only their own section.
type Ledger map[string]map[string]map[string]float64

// ReadLedger loads a ledger file; a missing file yields an empty ledger.
func ReadLedger(path string) (Ledger, error) {
	l := Ledger{}
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return l, nil
		}
		return nil, err
	}
	if err := json.Unmarshal(raw, &l); err != nil {
		return nil, fmt.Errorf("ledger %s: %w", path, err)
	}
	return l, nil
}

// MarshalLedger renders the document with sorted keys and stable
// indentation so the ledger diffs cleanly in version control.
func MarshalLedger(doc Ledger) []byte {
	var b strings.Builder
	b.WriteString("{\n")
	sections := sortedKeys(doc)
	for i, sec := range sections {
		fmt.Fprintf(&b, "  %s: {\n", quoteJSON(sec))
		names := sortedKeys(doc[sec])
		for j, name := range names {
			fmt.Fprintf(&b, "    %s: {", quoteJSON(name))
			units := sortedKeys(doc[sec][name])
			for k, u := range units {
				if k > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "%s: %s", quoteJSON(u), strconv.FormatFloat(doc[sec][name][u], 'f', -1, 64))
			}
			b.WriteString("}")
			if j < len(names)-1 {
				b.WriteString(",")
			}
			b.WriteString("\n")
		}
		b.WriteString("  }")
		if i < len(sections)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	return []byte(b.String())
}

// WriteLedger writes the ledger to path.
func WriteLedger(path string, doc Ledger) error {
	return os.WriteFile(path, MarshalLedger(doc), 0o644)
}

func quoteJSON(s string) string {
	enc, _ := json.Marshal(s)
	return string(enc)
}
