// Package experiments regenerates every figure and worked example in the
// paper and one benchmark series per performance claim (see DESIGN.md's
// experiment index and EXPERIMENTS.md for recorded results). Each
// experiment builds its own database in a temporary directory, prints the
// same rows/series the paper reports, and self-checks against the paper's
// stated answers where the paper states them.
package experiments

import (
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/gemstone"
)

// Experiment is one runnable reproduction target.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer) error
}

// All lists every experiment in DESIGN.md order.
func All() []Experiment {
	return []Experiment{
		{"fig1", "Figure 1: a database with history", Fig1},
		{"stdm", "§5.1 STDM database fragment and path expressions", ExSTDM},
		{"calc", "§5.1 set-calculus query (employees vs managers)", ExCalc},
		{"rel", "§5.2 relational encodings (relation/array/children)", ExRel},
		{"c1", "C1: declarative optimization vs naive calculus order", C1},
		{"c2", "C2: directory (index) vs sequential scan", C2},
		{"c3", "C3: optimistic concurrency under contention", C3},
		{"c4", "C4: temporal fetch cost vs history length", C4},
		{"c5", "C5: append-only history vs update-in-place + GC", C5},
		{"c6", "C6: commit-manager safe writes and crash recovery", C6},
		{"c7", "C7: replication and damaged-track fallback", C7},
		{"c8", "C8: beyond the ST80 limits (objects and sizes)", C8},
		{"c9", "C9: entity identity vs relational logical pointers", C9},
		{"c10", "C10: GemStone representation vs LOOM whole-object faulting", C10},
		{"c11", "C11: availability under injected replica faults", C11},
		{"c12", "C12: overload shedding, request deadlines, and graceful drain", C12},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// tempDB opens a throwaway database.
func tempDB(opts gemstone.Options) (*gemstone.DB, func(), error) {
	dir, err := os.MkdirTemp("", "gsbench-*")
	if err != nil {
		return nil, nil, err
	}
	db, err := gemstone.Open(dir, opts)
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, err
	}
	return db, func() {
		db.Close()
		os.RemoveAll(dir)
	}, nil
}

// check prints a PASS/FAIL row and records failures.
type checker struct {
	w      io.Writer
	failed int
}

func (c *checker) check(what string, ok bool, detail string) {
	status := "PASS"
	if !ok {
		status = "FAIL"
		c.failed++
	}
	if detail != "" {
		fmt.Fprintf(c.w, "  [%s] %-58s %s\n", status, what, detail)
	} else {
		fmt.Fprintf(c.w, "  [%s] %s\n", status, what)
	}
}

func (c *checker) result(id string) error {
	if c.failed > 0 {
		return fmt.Errorf("%s: %d checks failed", id, c.failed)
	}
	fmt.Fprintf(c.w, "  all checks passed\n")
	return nil
}

// timeIt measures fn over iters runs and returns ns/op.
func timeIt(iters int, fn func() error) (float64, error) {
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := fn(); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters), nil
}

// padClock drives the transaction counter to a target time using commits on
// a disjoint clock object.
func padClock(db *gemstone.DB, clockExpr string, until uint64) error {
	for uint64(db.Core().TxnManager().LastCommitted()) < until-1 {
		s, err := db.Login(gemstone.SystemUser, "swordfish")
		if err != nil {
			return err
		}
		if _, err := s.Run(clockExpr + " at: #tick put: " + fmt.Sprint(uint64(db.Core().TxnManager().LastCommitted()))); err != nil {
			return err
		}
		if _, err := s.Commit(); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
