package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/store"
)

// The exact-reproduction experiments are fast and fully self-checked; run
// them under `go test` so regressions in any layer surface here.
func TestExactReproductions(t *testing.T) {
	for _, id := range []string{"fig1", "stdm", "calc", "rel"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, ok := Find(id)
			if !ok {
				t.Fatalf("experiment %s missing", id)
			}
			var buf bytes.Buffer
			if err := e.Run(&buf); err != nil {
				t.Fatalf("%v\n%s", err, buf.String())
			}
			if strings.Contains(buf.String(), "FAIL") {
				t.Errorf("output contains FAIL:\n%s", buf.String())
			}
		})
	}
}

// The fast claim experiments (those that finish in a few seconds at test
// sizes) also run as tests; the heavyweight sweeps stay in gsbench.
func TestFastClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("claim experiments are not short")
	}
	for _, id := range []string{"c6", "c7"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, _ := Find(id)
			var buf bytes.Buffer
			if err := e.Run(&buf); err != nil {
				t.Fatalf("%v\n%s", err, buf.String())
			}
			if strings.Contains(buf.String(), "FAIL") {
				t.Errorf("output contains FAIL:\n%s", buf.String())
			}
		})
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 16 {
		t.Errorf("experiments = %d, want 16", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find(nope) succeeded")
	}
}

// The availability experiment's damage injection must surface failures:
// a DamageTrack that silently no-ops would make C7's claims vacuous.
func TestDamageTracksSurfacesErrors(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{TrackSize: 1024, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	tm := st.TrackManager()
	if err := damageTracks(tm, []int{0}, 0); err != nil {
		t.Fatalf("damaging a real arm: %v", err)
	}
	if err := damageTracks(tm, []int{7}, 0); err == nil {
		t.Fatal("damaging a nonexistent replica arm: want an error, got nil")
	}
}
