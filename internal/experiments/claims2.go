package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/gemstone"
	"repro/internal/loom"
	"repro/internal/object"
	"repro/internal/oop"
	"repro/internal/relational"
	"repro/internal/store"
)

// C6 — the Commit Manager "provides safe writing for groups of tracks ...
// all the tracks in the group get written, or none get written, and ...
// replace their old versions atomically" (§6). Part (a) injects a crash at
// every step of the commit protocol and verifies the reopened database
// shows exactly the pre-commit state; part (b) measures group-commit
// throughput across track sizes.
func C6(w io.Writer) error {
	fmt.Fprintln(w, "C6a: crash injection at every commit step — atomicity")
	c := &checker{w: w}
	steps := []string{"before-data", "after-data", "after-table", "after-directory", "before-superblock"}
	for _, step := range steps {
		dir, err := os.MkdirTemp("", "gs-c6-*")
		if err != nil {
			return err
		}
		crash := ""
		st, err := store.Open(dir, store.Options{TrackSize: 1024, FailPoint: func(s string) error {
			if s == crash {
				return errors.New("injected crash")
			}
			return nil
		}})
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		base := object.New(oop.FromSerial(1), oop.FromSerial(1), 0, object.FormatNamed)
		_ = base.Store(oop.FromSerial(100), 1, oop.MustInt(42))
		if err := st.Apply(store.Commit{Objects: []*object.Object{base}, Root: base.OOP, NextSerial: 2, Time: 1}); err != nil {
			st.Close()
			os.RemoveAll(dir)
			return err
		}
		crash = step
		upd := object.New(oop.FromSerial(1), oop.FromSerial(1), 0, object.FormatNamed)
		_ = upd.Store(oop.FromSerial(100), 1, oop.MustInt(42))
		_ = upd.Store(oop.FromSerial(100), 2, oop.MustInt(99))
		err = st.Apply(store.Commit{Objects: []*object.Object{upd}, NextSerial: 2, Time: 2})
		crashed := errors.Is(err, store.ErrCrashed)
		st.Close()

		st2, err := store.Open(dir, store.Options{TrackSize: 1024})
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		meta := st2.Meta()
		ob, err := st2.Load(oop.FromSerial(1))
		intact := err == nil && meta.LastTime == 1
		if intact {
			v, _ := ob.Fetch(oop.FromSerial(100))
			intact = v == oop.MustInt(42)
		}
		st2.Close()
		os.RemoveAll(dir)
		c.check(fmt.Sprintf("crash at %-18s -> old state intact, new invisible", step), crashed && intact, "")
	}
	if err := c.result("c6a"); err != nil {
		return err
	}

	fmt.Fprintln(w, "C6b: group-commit cost by track size (1000 objects per commit)")
	fmt.Fprintf(w, "  %-10s %16s %14s\n", "track B", "commit ns/op", "writes/commit")
	for _, ts := range []int{1024, 8192, 32768} {
		dir, err := os.MkdirTemp("", "gs-c6b-*")
		if err != nil {
			return err
		}
		st, err := store.Open(dir, store.Options{TrackSize: ts})
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		commitNo := oop.Time(0)
		before := st.TrackManager().Stats().Writes
		ns, err := timeIt(20, func() error {
			commitNo++
			objs := make([]*object.Object, 1000)
			for j := range objs {
				ob := object.New(oop.FromSerial(uint64(j)+1), oop.FromSerial(1), 0, object.FormatNamed)
				_ = ob.Store(oop.FromSerial(100), commitNo, oop.MustInt(int64(j)))
				objs[j] = ob
			}
			return st.Apply(store.Commit{Objects: objs, NextSerial: 1001, Time: commitNo})
		})
		if err != nil {
			st.Close()
			os.RemoveAll(dir)
			return err
		}
		writes := st.TrackManager().Stats().Writes - before
		fmt.Fprintf(w, "  %-10d %16.0f %14.1f\n", ts, ns, float64(writes)/20)
		st.Close()
		os.RemoveAll(dir)
	}
	fmt.Fprintln(w, "  shape: bigger tracks -> fewer physical writes per commit, until tracks")
	fmt.Fprintln(w, "         exceed the batch and padding dominates (whole-track I/O tradeoff)")
	return nil
}

// C7 — "requests for replication of data" (§6). Reads survive damaged
// replicas via checksum fallback; replication multiplies write cost.
func C7(w io.Writer) error {
	fmt.Fprintln(w, "C7: replication — write overhead and damaged-replica fallback")
	fmt.Fprintf(w, "  %-10s %16s\n", "replicas", "commit ns/op")
	for _, reps := range []int{1, 2, 3} {
		dir, err := os.MkdirTemp("", "gs-c7-*")
		if err != nil {
			return err
		}
		st, err := store.Open(dir, store.Options{TrackSize: 4096, Replicas: reps})
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		commitNo := oop.Time(0)
		ns, err := timeIt(20, func() error {
			commitNo++
			ob := object.New(oop.FromSerial(1), oop.FromSerial(1), 0, object.FormatNamed)
			_ = ob.Store(oop.FromSerial(100), commitNo, oop.MustInt(int64(commitNo)))
			return st.Apply(store.Commit{Objects: []*object.Object{ob}, NextSerial: 2, Time: commitNo})
		})
		if err != nil {
			st.Close()
			os.RemoveAll(dir)
			return err
		}
		fmt.Fprintf(w, "  %-10d %16.0f\n", reps, ns)
		st.Close()
		os.RemoveAll(dir)
	}

	// Availability: damage all but the last replica and read back.
	c := &checker{w: w}
	dir, err := os.MkdirTemp("", "gs-c7b-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir, store.Options{TrackSize: 1024, Replicas: 3})
	if err != nil {
		return err
	}
	defer st.Close()
	ob := object.New(oop.FromSerial(1), oop.FromSerial(1), 0, object.FormatNamed)
	_ = ob.Store(oop.FromSerial(100), 1, oop.MustInt(7))
	if err := st.Apply(store.Commit{Objects: []*object.Object{ob}, NextSerial: 2, Time: 1}); err != nil {
		return err
	}
	tm := st.TrackManager()
	if err := damageTracks(tm, []int{0, 1}, 2); err != nil {
		return err
	}
	tm.DropCache()
	got, err := st.Load(oop.FromSerial(1))
	ok := err == nil
	if ok {
		v, _ := got.Fetch(oop.FromSerial(100))
		ok = v == oop.MustInt(7)
	}
	c.check("read with 2 of 3 replicas damaged", ok, fmt.Sprintf("fallbacks=%d", tm.Stats().ReplicaFallbacks))
	// The salvaged read healed the damaged arms in place (read-repair), so
	// the track must survive the loss of the salvaging replica.
	c.check("salvaged read healed the damaged arms", tm.Stats().ReadRepairs > 0,
		fmt.Sprintf("read-repairs=%d", tm.Stats().ReadRepairs))
	if err := damageTracks(tm, []int{2}, 2); err != nil {
		return err
	}
	tm.DropCache()
	_, err = st.Load(oop.FromSerial(1))
	c.check("read after repair survives losing the salvaging replica", err == nil, "")
	// Damage every copy at once: now the error must surface.
	if err := damageTracks(tm, []int{0, 1, 2}, 2); err != nil {
		return err
	}
	tm.DropCache()
	_, err = st.Load(oop.FromSerial(1))
	c.check("read with all replicas damaged reports the error", err != nil, "")
	return c.result("c7")
}

// damageTracks corrupts tracks [from, tm.Tracks()) on each named replica
// arm. A failed injection is an error, not a shrug: if the damage pass
// silently did nothing, every availability claim built on it would be
// vacuous. (Regression: the errors used to be dropped with _, caught by
// gslint's errflow analyzer.)
func damageTracks(tm *store.TrackManager, replicas []int, from uint32) error {
	for n := from; n < tm.Tracks(); n++ {
		for _, ri := range replicas {
			if err := tm.DamageTrack(ri, n); err != nil {
				return fmt.Errorf("damage injection on replica %d track %d: %w", ri, n, err)
			}
		}
	}
	return nil
}

// C8 — §4.3: "Only 32K objects are allowed in most implementations, and the
// maximum size for an object is 64K bytes. We need to handle more and
// larger data items ... such as long documents and graphical images."
func C8(w io.Writer) error {
	fmt.Fprintln(w, "C8: beyond the ST80 limits — 100,000 objects and a 1MB document")
	c := &checker{w: w}
	db, done, err := tempDB(gemstone.Options{})
	if err != nil {
		return err
	}
	defer done()
	s, err := db.Login(gemstone.SystemUser, "swordfish")
	if err != nil {
		return err
	}
	core := s.Core()
	k := db.Core().Kernel()
	s.MustRun("World at: #lots put: Dictionary new")
	lots, err := s.Path("World!lots", nil)
	if err != nil {
		return err
	}
	vSym := core.Symbol("v")
	const n = 100_000
	for i := 0; i < n; i++ {
		e, err := core.NewObject(k.Object)
		if err != nil {
			return err
		}
		if err := core.Store(e, vSym, oop.MustInt(int64(i))); err != nil {
			return err
		}
		if err := core.Store(lots, oop.MustInt(int64(i+1)), e); err != nil {
			return err
		}
		if (i+1)%20_000 == 0 {
			if _, err := core.Commit(); err != nil {
				return err
			}
		}
	}
	if _, err := core.Commit(); err != nil {
		return err
	}
	okAll := true
	for _, probe := range []int64{1, 32768, 65536, 100000} {
		e, _, err := core.Fetch(lots, oop.MustInt(probe))
		if err != nil {
			return err
		}
		v, _, err := core.Fetch(e, vSym)
		if err != nil || v != oop.MustInt(probe-1) {
			okAll = false
		}
	}
	c.check("100,000 objects committed and readable (>> ST80's 32K)", okAll, "")

	// A "long document": a 1MB byte object (>> the 64KB ceiling).
	doc := bytes.Repeat([]byte("GemStone makes Smalltalk a database system. "), 24_000)
	docObj, err := core.NewObject(k.String)
	if err != nil {
		return err
	}
	if err := core.SetBytes(docObj, doc); err != nil {
		return err
	}
	world, _ := s.Path("World", nil)
	if err := core.Store(world, core.Symbol("document"), docObj); err != nil {
		return err
	}
	if _, err := core.Commit(); err != nil {
		return err
	}
	db.Core().Store().TrackManager().DropCache()
	back, err := core.BytesOf(docObj)
	if err != nil {
		return err
	}
	c.check(fmt.Sprintf("%.1fMB document round-trips (>> ST80's 64KB)", float64(len(doc))/1e6),
		bytes.Equal(back, doc), "")

	// The same document is impossible under the LOOM/ST80 representation.
	big := object.New(oop.FromSerial(1), oop.FromSerial(2), 0, object.FormatBytes)
	_ = big.SetBytes(1, doc)
	mem := loom.New(4)
	err = mem.Store(big)
	c.check("LOOM baseline rejects it (64KB ceiling retained)", errors.Is(err, loom.ErrTooLarge), "")
	return c.result("c8")
}

// C9 — entity identity vs logical pointers (§2.D): renaming a shared
// department is one store in GSDM; the relational encoding must rewrite the
// key in every referring tuple and pay a join to reassemble employees with
// their budgets.
func C9(w io.Writer) error {
	fmt.Fprintln(w, "C9: shared-department rename — GSDM identity vs relational key propagation")
	fmt.Fprintf(w, "  %-10s %18s %14s %20s %14s\n", "employees", "gsdm stores", "gsdm ns", "relational tuples", "relational ns")
	for _, n := range []int{100, 1000, 10000} {
		// GSDM: employees share the department OBJECT; renaming it is one
		// element store, regardless of fan-out.
		db, done, err := tempDB(gemstone.Options{})
		if err != nil {
			return err
		}
		s, err := db.Login(gemstone.SystemUser, "swordfish")
		if err != nil {
			done()
			return err
		}
		core := s.Core()
		k := db.Core().Kernel()
		world, _ := s.Path("World", nil)
		dept, _ := core.NewObject(k.Dictionary)
		nameStr, _ := core.NewString("Sales")
		_ = core.Store(dept, core.Symbol("name"), nameStr)
		_ = core.Store(world, core.Symbol("dept"), dept)
		emps, _ := core.NewObject(k.Set)
		_ = core.Store(world, core.Symbol("emps"), emps)
		for i := 0; i < n; i++ {
			e, _ := core.NewObject(k.Object)
			_ = core.Store(e, core.Symbol("dept"), dept) // shared identity
			_, _ = core.AddToSet(emps, e)
		}
		if _, err := core.Commit(); err != nil {
			done()
			return err
		}
		newName, _ := core.NewString("Selling")
		gsdmNS, err := timeIt(1, func() error {
			if err := core.Store(dept, core.Symbol("name"), newName); err != nil {
				return err
			}
			_, err := core.Commit()
			return err
		})
		if err != nil {
			done()
			return err
		}
		// Every employee sees the rename through the shared object.
		probe, err := core.Members(emps)
		if err != nil {
			done()
			return err
		}
		d0, _, _ := core.Fetch(probe[0], core.Symbol("dept"))
		nm, _, _ := core.Fetch(d0, core.Symbol("name"))
		b, _ := core.BytesOf(nm)
		if string(b) != "Selling" {
			done()
			return fmt.Errorf("c9: rename not visible through shared reference")
		}
		done()

		// Relational: department name is the logical pointer; the rename
		// rewrites every employee tuple plus the department tuple.
		emp := relational.New("Employees", "EmpId", "Dept")
		for i := 0; i < n; i++ {
			_ = emp.Insert(int64(i), "Sales")
		}
		deptRel := relational.New("Departments", "Dept", "Budget")
		_ = deptRel.Insert("Sales", int64(142000))
		var touched int
		relNS, err := timeIt(1, func() error {
			a, err := emp.UpdateWhere("Dept", "Sales", "Dept", "Selling")
			if err != nil {
				return err
			}
			b, err := deptRel.UpdateWhere("Dept", "Sales", "Dept", "Selling")
			if err != nil {
				return err
			}
			touched = a + b
			return nil
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-10d %18d %14.0f %20d %14.0f\n", n, 1, gsdmNS, touched, relNS)
	}
	fmt.Fprintln(w, "  note: gsdm ns includes a durable commit; the relational side is pure memory —")
	fmt.Fprintln(w, "        the paper's point is the touched-tuple count (1 vs N+1) and key churn")
	fmt.Fprintln(w, "  shape: GSDM touches 1 object regardless of fan-out; relational touches N+1 tuples")

	// Read side: bringing "the description of an employee together" costs a
	// join under the relational encoding vs a single path traversal in GSDM.
	fmt.Fprintf(w, "  %-10s %20s %20s\n", "employees", "gsdm path ns/op", "relational join ns")
	for _, n := range []int{1000, 10000} {
		db, done, err := tempDB(gemstone.Options{})
		if err != nil {
			return err
		}
		s, err := db.Login(gemstone.SystemUser, "swordfish")
		if err != nil {
			done()
			return err
		}
		core := s.Core()
		k := db.Core().Kernel()
		world, _ := s.Path("World", nil)
		dept, _ := core.NewObject(k.Dictionary)
		_ = core.Store(dept, core.Symbol("budget"), oop.MustInt(142000))
		_ = core.Store(world, core.Symbol("dept"), dept)
		e0, _ := core.NewObject(k.Object)
		_ = core.Store(e0, core.Symbol("dept"), dept)
		_ = core.Store(world, core.Symbol("e0"), e0)
		if _, err := core.Commit(); err != nil {
			done()
			return err
		}
		pathNS, err := timeIt(2000, func() error {
			d, _, err := core.Fetch(e0, core.Symbol("dept"))
			if err != nil {
				return err
			}
			_, _, err = core.Fetch(d, core.Symbol("budget"))
			return err
		})
		done()
		if err != nil {
			return err
		}
		emp := relational.New("Employees", "EmpId", "Dept")
		for i := 0; i < n; i++ {
			_ = emp.Insert(int64(i), "Sales")
		}
		deptRel := relational.New("Departments", "Dept", "Budget")
		_ = deptRel.Insert("Sales", int64(142000))
		joinNS, err := timeIt(10, func() error {
			j, err := emp.Join(deptRel, "Dept", "Dept")
			if err != nil {
				return err
			}
			if j.Len() != n {
				return fmt.Errorf("join produced %d rows", j.Len())
			}
			return nil
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-10d %20.0f %20.0f\n", n, pathNS, joinNS)
	}
	fmt.Fprintln(w, "  shape: path access is O(1); the reassembly join is O(N)")
	return nil
}

// C10 — §7: LOOM "uses the standard Smalltalk representation ... For
// objects with a large history, we may want to bring only a fragment of the
// object into memory". Random small reads over a working set larger than
// the resident cache.
func C10(w io.Writer) error {
	fmt.Fprintln(w, "C10: random element reads, 64-object working set, 16-object LOOM cache")
	fmt.Fprintf(w, "  %-8s %18s %18s %12s %16s\n", "history", "gemstone ns/op", "loom ns/op", "loom faults", "loom MB decoded")
	for _, hist := range []int{8, 64, 512} {
		// GemStone: committed objects served from the shared cache with
		// binary-searched histories.
		db, done, err := tempDB(gemstone.Options{})
		if err != nil {
			return err
		}
		s, err := db.Login(gemstone.SystemUser, "swordfish")
		if err != nil {
			done()
			return err
		}
		core := s.Core()
		k := db.Core().Kernel()
		world, _ := s.Path("World", nil)
		vSym := core.Symbol("v")
		const workingSet = 64
		oops := make([]oop.OOP, workingSet)
		for i := range oops {
			o, _ := core.NewObject(k.Object)
			oops[i] = o
			_ = core.Store(world, core.Symbol(fmt.Sprintf("o%d", i)), o)
		}
		for h := 0; h < hist; h++ {
			for _, o := range oops {
				_ = core.Store(o, vSym, oop.MustInt(int64(h)))
			}
			if _, err := core.Commit(); err != nil {
				done()
				return err
			}
		}
		idx := 0
		gemNS, err := timeIt(5000, func() error {
			idx = (idx*5 + 3) % workingSet
			_, _, err := core.Fetch(oops[idx], vSym)
			return err
		})
		if err != nil {
			done()
			return err
		}
		done()

		// LOOM: same objects, 16-resident cache, whole-object faults.
		mem := loom.New(16)
		for i := 0; i < workingSet; i++ {
			ob := object.New(oop.FromSerial(uint64(i)+1), oop.FromSerial(1), 0, object.FormatNamed)
			for h := 1; h <= hist; h++ {
				_ = ob.Store(vSym, oop.Time(h), oop.MustInt(int64(h)))
			}
			if err := mem.Store(ob); err != nil {
				return err
			}
		}
		mem.ResetStats()
		idx = 0
		iters := 5000
		loomNS, err := timeIt(iters, func() error {
			idx = (idx*5 + 3) % workingSet
			_, _, err := mem.Fetch(oop.FromSerial(uint64(idx)+1), vSym)
			return err
		})
		if err != nil {
			return err
		}
		st := mem.Stats()
		fmt.Fprintf(w, "  %-8d %18.0f %18.0f %12d %16.2f\n",
			hist, gemNS, loomNS, st.Faults, float64(st.DiskBytes)/1e6)
	}
	fmt.Fprintln(w, "  shape: loom cost grows with history (whole-object faults); gemstone stays flat")
	return nil
}
