package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/gemstone"
	"repro/internal/relational"
)

// Fig1 reproduces Figure 1 ("A Database with History") and the §5.3.2
// narrative exactly: the president change at time 8, Ayn's employment from
// 2 to 8 (ended by a nil value), Milton's move from Seattle to Portland at
// 8, and Ayn's move to San Diego at 11 — then evaluates the paper's four
// path expressions and checks each against the stated answer.
func Fig1(w io.Writer) error {
	db, done, err := tempDB(gemstone.Options{})
	if err != nil {
		return err
	}
	defer done()
	s, err := db.Login(gemstone.SystemUser, "swordfish")
	if err != nil {
		return err
	}

	// Setup commit (t=1): the object graph and a disjoint clock.
	s.MustRun(`| acme emps clock |
		acme := Dictionary new.
		World at: 'Acme Corp' put: acme.
		emps := Dictionary new.
		acme at: 'employees' put: emps.
		World at: '__fig1clock' put: Object new`)
	if _, err := s.Commit(); err != nil {
		return err
	}
	pad := func(until uint64) error { return padClock(db, "(World at: '__fig1clock')", until) }

	// t=2: Ayn joins as employee 1821; both live in Seattle.
	if err := pad(2); err != nil {
		return err
	}
	s.MustRun(`| ayn milton emps |
		ayn := Dictionary new. ayn at: 'name' put: 'Ayn Rand'. ayn at: 'city' put: 'Seattle'.
		milton := Dictionary new. milton at: 'name' put: 'Milton Friedman'. milton at: 'city' put: 'Seattle'.
		emps := World!'Acme Corp'!employees.
		emps at: '1821' put: ayn.
		emps at: '4810' put: milton`)
	if t, err := s.Commit(); err != nil || uint64(t) != 2 {
		return fmt.Errorf("fig1: employee commit at %v (%v), want t2", t, err)
	}

	// t=5: Ayn becomes president.
	if err := pad(5); err != nil {
		return err
	}
	s.MustRun(`(World at: 'Acme Corp') at: 'president' put: (World!'Acme Corp'!employees at: '1821')`)
	if t, err := s.Commit(); err != nil || uint64(t) != 5 {
		return fmt.Errorf("fig1: president commit at %v (%v), want t5", t, err)
	}

	// t=8: Milton becomes president and moves to Portland; Ayn leaves
	// (recorded as a nil value — the model's replacement for deletion).
	if err := pad(8); err != nil {
		return err
	}
	s.MustRun(`| emps milton |
		emps := World!'Acme Corp'!employees.
		milton := emps at: '4810'.
		(World at: 'Acme Corp') at: 'president' put: milton.
		milton at: 'city' put: 'Portland'.
		emps removeElement: '1821' asSymbol`)
	if t, err := s.Commit(); err != nil || uint64(t) != 8 {
		return fmt.Errorf("fig1: change commit at %v (%v), want t8", t, err)
	}

	// t=11: Ayn moves to San Diego (she kept the company car until then).
	if err := pad(11); err != nil {
		return err
	}
	s.MustRun(`(World!'Acme Corp'!president@7) at: 'city' put: 'San Diego'`)
	if t, err := s.Commit(); err != nil || uint64(t) != 11 {
		return fmt.Errorf("fig1: move commit at %v (%v), want t11", t, err)
	}

	fmt.Fprintln(w, "Figure 1: A Database with History — paper's path expressions")
	c := &checker{w: w}
	eval := func(expr string) string {
		out, err := s.Run(expr)
		if err != nil {
			return "ERROR: " + err.Error()
		}
		return out
	}
	// The paper's four queries and their stated answers.
	got := eval("World!'Acme Corp'!president!name")
	c.check("World!'Acme Corp'!president  (current)", got == "'Milton Friedman'", got)
	got = eval("World!'Acme Corp'!president@10!name")
	c.check("World!'Acme Corp'!president@10  (the new president)", got == "'Milton Friedman'", got)
	got = eval("World!'Acme Corp'!president@7!name")
	c.check("World!'Acme Corp'!president@7  (the previous president)", got == "'Ayn Rand'", got)
	got = eval("World!'Acme Corp'!president@7!city")
	c.check("World!'Acme Corp'!president@7!city  (her CURRENT city)", got == "'San Diego'", got)

	// The employment history encoded by the nil-removal.
	got = eval("(World!'Acme Corp'!employees at: '1821' asSymbol atTime: 5) at: 'name'")
	c.check("employees!1821@5 is Ayn (employee from 2 to 8)", got == "'Ayn Rand'", got)
	got = eval("(World!'Acme Corp'!employees) at: '1821' asSymbol atTime: 9")
	c.check("employees!1821@9 is nil (left at 8)", got == "nil", got)
	// Milton's city history.
	got = eval("World!'Acme Corp'!president!city@7")
	c.check("Milton's city@7 was Seattle", got == "'Seattle'", got)
	got = eval("World!'Acme Corp'!president!city")
	c.check("Milton's city now is Portland", got == "'Portland'", got)

	// Time dial equivalence (§5.4): dialing to 7 equals @7 everywhere.
	s.MustRun("System timeDial: 7")
	got = eval("World!'Acme Corp'!president!name")
	c.check("time dial at 7: president is Ayn", got == "'Ayn Rand'", got)
	s.MustRun("System timeDialNow")
	return c.result("fig1")
}

// ExSTDM reproduces the §5.1 STDM database fragment and its two sample path
// expressions: X!Departments!A16!Managers and X!Employees!E62!Name.
func ExSTDM(w io.Writer) error {
	db, done, err := tempDB(gemstone.Options{})
	if err != nil {
		return err
	}
	defer done()
	s, err := db.Login(gemstone.SystemUser, "swordfish")
	if err != nil {
		return err
	}
	s.MustRun(`| x depts emps d e n |
		x := Dictionary new. World at: #X put: x.
		depts := Dictionary new. x at: 'Departments' put: depts.
		emps := Dictionary new. x at: 'Employees' put: emps.
		d := Dictionary new.
		d at: 'Name' put: 'Sales'.
		d at: 'Managers' put: (Set new add: 'Nathen'; add: 'Roberts'; yourself).
		d at: 'Budget' put: 142000.
		depts at: 'A12' put: d.
		d := Dictionary new.
		d at: 'Name' put: 'Research'.
		d at: 'Managers' put: (Set new add: 'Carter'; yourself).
		d at: 'Budget' put: 256500.
		depts at: 'A16' put: d.
		e := Dictionary new.
		n := Dictionary new. n at: 'First' put: 'Ellen'. n at: 'Last' put: 'Burns'.
		e at: 'Name' put: n. e at: 'Salary' put: 24650.
		e at: 'Depts' put: (Set new add: 'Marketing'; yourself).
		emps at: 'E62' put: e.
		e := Dictionary new.
		n := Dictionary new. n at: 'First' put: 'Robert'. n at: 'Last' put: 'Peters'.
		e at: 'Name' put: n. e at: 'Salary' put: 24000.
		e at: 'Depts' put: (Set new add: 'Sales'; add: 'Planning'; yourself).
		e at: 'Phones' put: (Set new add: 3949; add: 3862; yourself).
		emps at: 'E83' put: e`)
	if _, err := s.Commit(); err != nil {
		return err
	}
	fmt.Fprintln(w, "§5.1 STDM database fragment — sample path expressions")
	c := &checker{w: w}
	got, err := s.Run("X!Departments!A16!Managers")
	if err != nil {
		return err
	}
	c.check("X!Departments!A16!Managers", strings.Contains(got, "'Carter'"), got)
	got, err = s.Run("X!Employees!E62!Name")
	if err != nil {
		return err
	}
	c.check("X!Employees!E62!Name", strings.Contains(got, "'Ellen'") && strings.Contains(got, "'Burns'"), got)
	got, _ = s.Run("X!Employees!E62!Name!First")
	c.check("X!Employees!E62!Name!First", got == "'Ellen'", got)
	got, _ = s.Run("X!Departments!A12!Budget")
	c.check("X!Departments!A12!Budget", got == "142000", got)
	// The array representation from §5.2: sets with numbers as names.
	s.MustRun(`| a | a := Dictionary new. World at: #A put: a.
		a at: 1 put: (Set new add: 'Anders'; add: 'Roberts'; yourself).
		a at: 2 put: (Set new add: 'Roberts'; add: 'Ching'; yourself).
		a at: 3 put: (Set new add: 'Albrecht'; add: 'Ching'; yourself)`)
	got, _ = s.Run("A!2")
	c.check("§5.2 array-as-set: A!2", strings.Contains(got, "'Ching'"), got)
	return c.result("stdm")
}

// paperQuery is the §5.1 set-calculus example in ASCII syntax.
const paperQuery = `{Emp: e, Mgr: m} where
 (e in X!Employees) and
 (d in X!Departments) [(m in d!Managers) and
 (d!Name in e!Depts) and (e!Salary > 0.10 * d!Budget)]`

// buildCalcDB loads the §5.1 fragment plus enough employees for the query
// to select a verifiable answer. Returns the expected (employee, manager)
// pairs.
func buildCalcDB(s *gemstone.Session, extraEmployees int) (map[string]bool, error) {
	s.MustRun(`| x depts d |
		x := Dictionary new. World at: #X put: x.
		depts := Dictionary new. x at: 'Departments' put: depts.
		x at: 'Employees' put: Dictionary new.
		d := Dictionary new. d at: 'Name' put: 'Sales'.
		d at: 'Managers' put: (Set new add: 'Nathen'; add: 'Roberts'; yourself).
		d at: 'Budget' put: 142000. depts at: 'A12' put: d.
		d := Dictionary new. d at: 'Name' put: 'Research'.
		d at: 'Managers' put: (Set new add: 'Carter'; yourself).
		d at: 'Budget' put: 256500. depts at: 'A16' put: d`)
	mkEmp := func(label, last string, salary int, dept string) {
		s.MustRun(fmt.Sprintf(`| e n |
			e := Dictionary new.
			n := Dictionary new. n at: 'Last' put: '%s'. e at: 'Name' put: n.
			e at: 'Salary' put: %d.
			e at: 'Depts' put: (Set new add: '%s'; yourself).
			X!Employees at: '%s' put: e`, last, salary, dept, label))
	}
	mkEmp("E62", "Burns", 24650, "Marketing")
	mkEmp("E83", "Peters", 24000, "Sales")
	mkEmp("E90", "Hopper", 15000, "Sales")
	mkEmp("E91", "Kay", 30000, "Research")
	mkEmp("E92", "Lovelace", 25000, "Research")
	for i := 0; i < extraEmployees; i++ {
		// Low-salary filler spread across both departments.
		dept := "Sales"
		if i%2 == 0 {
			dept = "Research"
		}
		mkEmp(fmt.Sprintf("F%d", i), fmt.Sprintf("Filler%d", i), 1000+i%50, dept)
	}
	// Management grows with the company: the naive plan pays the manager
	// fan-out on every (employee, department) pair, the optimized plan only
	// on qualifying ones.
	for i := 0; i < extraEmployees/4; i++ {
		s.MustRun(fmt.Sprintf(`X!Departments!A12!Managers add: 'M%d'`, i))
	}
	if _, err := s.Commit(); err != nil {
		return nil, err
	}
	// Qualifiers: E83 (24000 > 14200, Sales), E90 (15000 > 14200, Sales),
	// E91 (30000 > 25650, Research).
	return map[string]bool{
		"Peters/Nathen": true, "Peters/Roberts": true,
		"Hopper/Nathen": true, "Hopper/Roberts": true,
		"Kay/Carter": true,
	}, nil
}

func pairsOf(s *gemstone.Session, rows []gemstone.Row) (map[string]bool, error) {
	got := map[string]bool{}
	for _, r := range rows {
		last, err := s.Path("e!Name!Last", map[string]gemstone.Value{"e": r["Emp"]})
		if err != nil {
			return nil, err
		}
		lastStr, err := s.Print(last)
		if err != nil {
			return nil, err
		}
		mgrStr, err := s.Print(r["Mgr"])
		if err != nil {
			return nil, err
		}
		got[strings.Trim(lastStr, "'")+"/"+strings.Trim(mgrStr, "'")] = true
	}
	return got, nil
}

// ExCalc runs the paper's §5.1 calculus query through parser → translator →
// algebra, both naive and optimized, and checks the answer.
func ExCalc(w io.Writer) error {
	db, done, err := tempDB(gemstone.Options{})
	if err != nil {
		return err
	}
	defer done()
	s, err := db.Login(gemstone.SystemUser, "swordfish")
	if err != nil {
		return err
	}
	want, err := buildCalcDB(s, 0)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "§5.1 set-calculus query — employees earning >10% of a department budget, with its managers")
	fmt.Fprintln(w, "  "+strings.ReplaceAll(paperQuery, "\n", "\n  "))
	c := &checker{w: w}

	naive, err := s.QueryNaive(paperQuery)
	if err != nil {
		return err
	}
	opt, err := s.Query(paperQuery)
	if err != nil {
		return err
	}
	gotN, err := pairsOf(s, naive)
	if err != nil {
		return err
	}
	gotO, err := pairsOf(s, opt)
	if err != nil {
		return err
	}
	for _, pairs := range []struct {
		name string
		got  map[string]bool
	}{{"naive plan", gotN}, {"optimized plan", gotO}} {
		ok := len(pairs.got) == len(want)
		for k := range want {
			if !pairs.got[k] {
				ok = false
			}
		}
		c.check(fmt.Sprintf("%s answer {Emp,Mgr}", pairs.name), ok, fmt.Sprintf("%v", sortedKeys(pairs.got)))
	}
	plan, err := s.Explain(paperQuery)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "  optimized plan:")
	for _, line := range strings.Split(plan, "\n") {
		fmt.Fprintln(w, "    "+line)
	}
	return c.result("calc")
}

// ExRel reproduces the §5.2 encodings: the A-B-C relation as a labeled set,
// and the Robert Peters children set flattened into the paper's exact
// three-tuple relation.
func ExRel(w io.Writer) error {
	db, done, err := tempDB(gemstone.Options{})
	if err != nil {
		return err
	}
	defer done()
	s, err := db.Login(gemstone.SystemUser, "swordfish")
	if err != nil {
		return err
	}
	c := &checker{w: w}
	fmt.Fprintln(w, "§5.2 encodings — relation as set, children-set flattening")

	// The relation {T1: {A:1,B:3,C:4}, T2: {A:1,B:5,C:4}} as labeled sets.
	s.MustRun(`| r t |
		r := Dictionary new. World at: #R put: r.
		t := Dictionary new. t at: #A put: 1. t at: #B put: 3. t at: #C put: 4. r at: 'T1' put: t.
		t := Dictionary new. t at: #A put: 1. t at: #B put: 5. t at: #C put: 4. r at: 'T2' put: t`)
	got, _ := s.Run("R!T1!B")
	c.check("relation-as-set: R!T1!B = 3", got == "3", got)
	got, _ = s.Run("R!T2!B")
	c.check("relation-as-set: R!T2!B = 5", got == "5", got)

	// The STDM side of the children example: one entity holding the set.
	s.MustRun(`| p n |
		p := Dictionary new. World at: #peters put: p.
		n := Dictionary new. n at: 'First' put: 'Robert'. n at: 'Last' put: 'Peters'.
		p at: 'Name' put: n.
		p at: 'Children' put: (Set new add: 'Olivia'; add: 'Dale'; add: 'Paul'; yourself)`)
	got, _ = s.Run("peters!Children size")
	c.check("STDM: children exist as ONE object (size 3)", got == "3", got)

	// The relational encoding: the paper's exact three-tuple relation.
	rel := relational.New("Children", "FirstName", "LastName", "Child")
	if err := relational.FlattenSetValued(rel, []relational.Value{"Robert", "Peters"}, []relational.Value{"Olivia", "Dale", "Paul"}); err != nil {
		return err
	}
	fmt.Fprintln(w, "  flattened relation (paper's table):")
	for _, line := range strings.Split(rel.String(), "\n") {
		fmt.Fprintln(w, "    "+line)
	}
	c.check("flattening produces 3 tuples", rel.Len() == 3, fmt.Sprint(rel.Len()))
	// Unavoidable redundancy: the parent name repeated in every tuple.
	repeats := 0
	for _, t := range rel.Rows() {
		if t[0] == "Robert" && t[1] == "Peters" {
			repeats++
		}
	}
	c.check("parent name repeated 3 times (the paper's redundancy)", repeats == 3, fmt.Sprint(repeats))
	back := relational.CollectSetValued(rel, []relational.Value{"Robert", "Peters"})
	c.check("reassembly recovers the set", len(back) == 3, fmt.Sprint(back))
	return c.result("rel")
}
