package experiments

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/gemstone"
	"repro/internal/algebra"
	"repro/internal/auth"
	"repro/internal/calculus"
	"repro/internal/core"
	"repro/internal/loom"
	"repro/internal/object"
	"repro/internal/oop"
	"repro/internal/txn"
)

// C1 — "a declarative semantics allows more flexibility in evaluating
// queries, and that flexibility is needed to support reasonable
// optimization" (§4.3, §5.2). Runs the paper's §5.1 query naive
// (calculus-order scans, predicate on the full product) vs optimized
// (selection pushdown + range reordering), sweeping database size. The
// optimizer must win by a factor that grows with the data.
func C1(w io.Writer) error {
	fmt.Fprintln(w, "C1: declarative optimization — paper query: naive / pushdown-only / full / parallel plan")
	fmt.Fprintf(w, "  %-10s %14s %14s %14s %14s %9s %13s %13s\n",
		"employees", "naive ns/op", "pushdown ns", "full ns/op", "parallel ns", "speedup", "naive preds", "full preds")
	prevSpeedup := 0.0
	for _, extra := range []int{20, 80, 320} {
		db, done, err := tempDB(gemstone.Options{})
		if err != nil {
			return err
		}
		s, err := db.Login(gemstone.SystemUser, "swordfish")
		if err != nil {
			done()
			return err
		}
		if _, err := buildCalcDB(s, extra); err != nil {
			done()
			return err
		}
		q, err := calculus.Parse(paperQuery)
		if err != nil {
			done()
			return err
		}
		naivePlan, err := algebra.Translate(q)
		if err != nil {
			done()
			return err
		}
		pushPlan, err := algebra.OptimizePushdownOnly(q, s.Core())
		if err != nil {
			done()
			return err
		}
		optPlan, err := algebra.Optimize(q, s.Core())
		if err != nil {
			done()
			return err
		}
		var nStats algebra.Stats
		nNS, err := timeIt(3, func() error {
			_, st, err := naivePlan.Exec(s.Core())
			nStats = st
			return err
		})
		if err != nil {
			done()
			return err
		}
		pNS, err := timeIt(3, func() error {
			_, _, err := pushPlan.Exec(s.Core())
			return err
		})
		if err != nil {
			done()
			return err
		}
		var oStats algebra.Stats
		oNS, err := timeIt(3, func() error {
			_, st, err := optPlan.Exec(s.Core())
			oStats = st
			return err
		})
		if err != nil {
			done()
			return err
		}
		// Parallel mode must agree with the serial plan row for row.
		serialRows, _, err := optPlan.Exec(s.Core())
		if err != nil {
			done()
			return err
		}
		parNS, err := timeIt(3, func() error {
			rows, st, err := optPlan.ExecParallel(s.Core(), 4)
			if err != nil {
				return err
			}
			if len(rows) != len(serialRows) || st != oStats {
				return fmt.Errorf("c1: parallel diverged: %d rows (serial %d), stats %+v vs %+v",
					len(rows), len(serialRows), st, oStats)
			}
			return nil
		})
		if err != nil {
			done()
			return err
		}
		speedup := nNS / oNS
		fmt.Fprintf(w, "  %-10d %14.0f %14.0f %14.0f %14.0f %8.1fx %13d %13d\n",
			extra+5, nNS, pNS, oNS, parNS, speedup, nStats.PredEvals, oStats.PredEvals)
		if speedup < 1 {
			done()
			return fmt.Errorf("c1: optimizer slower than naive at %d employees", extra+5)
		}
		prevSpeedup = speedup
		done()
	}
	fmt.Fprintf(w, "  shape: each optimizer stage helps; the full-plan factor grows with data size (last %.1fx)\n", prevSpeedup)
	return nil
}

// C2 — "associative access to subparts of an object is a necessary aid"
// (§4.3); the Directory Manager provides it (§6). Equality selection via a
// maintained directory vs a sequential scan, sweeping set cardinality.
func C2(w io.Writer) error {
	fmt.Fprintln(w, "C2: directory (history-aware B-tree) vs sequential scan — salary = K")
	fmt.Fprintf(w, "  %-8s %14s %14s %9s\n", "members", "scan ns/op", "index ns/op", "speedup")
	for _, n := range []int{100, 1000, 10000} {
		db, done, err := tempDB(gemstone.Options{})
		if err != nil {
			return err
		}
		s, err := db.Login(gemstone.SystemUser, "swordfish")
		if err != nil {
			done()
			return err
		}
		s.MustRun(`World at: #emps put: Set new`)
		core := s.Core()
		emps, err := s.Path("World!emps", nil)
		if err != nil {
			done()
			return err
		}
		k := db.Core().Kernel()
		salSym := core.Symbol("salary")
		for i := 0; i < n; i++ {
			e, err := core.NewObject(k.Object)
			if err != nil {
				done()
				return err
			}
			if err := core.Store(e, salSym, oop.MustInt(int64(i))); err != nil {
				done()
				return err
			}
			if _, err := core.AddToSet(emps, e); err != nil {
				done()
				return err
			}
		}
		if _, err := s.Commit(); err != nil {
			done()
			return err
		}
		query := fmt.Sprintf("{E: e} where (e in World!emps) and e!salary = %d", n/2)
		scanNS, err := timeIt(3, func() error {
			rows, _, err := algebra.RunNaive(core, query)
			if err == nil && len(rows) != 1 {
				return fmt.Errorf("scan found %d rows", len(rows))
			}
			return err
		})
		if err != nil {
			done()
			return err
		}
		if err := core.CreateIndex(emps, []string{"salary"}); err != nil {
			done()
			return err
		}
		ixNS, err := timeIt(50, func() error {
			rows, _, err := algebra.Run(core, query)
			if err == nil && len(rows) != 1 {
				return fmt.Errorf("index found %d rows", len(rows))
			}
			return err
		})
		if err != nil {
			done()
			return err
		}
		fmt.Fprintf(w, "  %-8d %14.0f %14.0f %8.1fx\n", n, scanNS, ixNS, scanNS/ixNS)
		done()
	}
	fmt.Fprintln(w, "  shape: index cost ~flat, scan cost ~linear; crossover below the smallest N")
	return nil
}

// C3 — the Transaction Manager "handles concurrent use of the permanent
// database in an optimistic manner" (§6). Multi-session commit throughput
// and abort rate as contention rises: with disjoint writes aborts are rare;
// when all sessions fight over one object, aborts dominate — the optimistic
// shape.
func C3(w io.Writer) error {
	fmt.Fprintln(w, "C3: optimistic concurrency — 4 sessions x 50 txns, varying shared hot set")
	fmt.Fprintf(w, "  %-12s %12s %12s %12s\n", "hot objects", "committed", "aborted", "abort rate")
	const workers, attempts = 4, 50
	for _, hot := range []int{0, 64, 8, 1} { // 0 = fully disjoint
		db, done, err := tempDB(gemstone.Options{})
		if err != nil {
			return err
		}
		setup, err := db.Login(gemstone.SystemUser, "swordfish")
		if err != nil {
			done()
			return err
		}
		nTargets := hot
		if hot == 0 {
			nTargets = workers
		}
		for i := 0; i < nTargets; i++ {
			setup.MustRun(fmt.Sprintf("World at: #obj%d put: (Object new at: #v put: 0; yourself)", i))
		}
		if _, err := setup.Commit(); err != nil {
			done()
			return err
		}
		var committed, aborted atomic.Int64
		var wg sync.WaitGroup
		for wk := 0; wk < workers; wk++ {
			wg.Add(1)
			go func(wk int) {
				defer wg.Done()
				sess, err := db.Core().NewSession(auth.SystemUser, "swordfish")
				if err != nil {
					return
				}
				defer sess.Close()
				vSym := sess.Symbol("v")
				for a := 0; a < attempts; a++ {
					var target oop.OOP
					if hot == 0 {
						target, _ = gemSessionGlobal(sess, fmt.Sprintf("obj%d", wk))
					} else {
						target, _ = gemSessionGlobal(sess, fmt.Sprintf("obj%d", (wk*attempts+a)%hot))
					}
					v, _, err := sess.Fetch(target, vSym)
					if err != nil {
						return
					}
					next := int64(0)
					if v.IsSmallInt() {
						next = v.Int() + 1
					}
					if err := sess.Store(target, vSym, oop.MustInt(next)); err != nil {
						return
					}
					if _, err := sess.Commit(); err != nil {
						if errors.Is(err, txn.ErrConflict) {
							aborted.Add(1)
							continue
						}
						return
					}
					committed.Add(1)
				}
			}(wk)
		}
		wg.Wait()
		total := committed.Load() + aborted.Load()
		rate := float64(aborted.Load()) / float64(total)
		label := fmt.Sprint(hot)
		if hot == 0 {
			label = "disjoint"
		}
		fmt.Fprintf(w, "  %-12s %12d %12d %11.1f%%\n", label, committed.Load(), aborted.Load(), rate*100)
		done()
	}
	fmt.Fprintln(w, "  shape: disjoint ≈ 0% aborts; aborts climb as the hot set shrinks")
	return nil
}

func gemSessionGlobal(s *core.Session, name string) (oop.OOP, error) {
	world, ok := s.Global("World")
	if !ok {
		return oop.Invalid, fmt.Errorf("no World")
	}
	v, _, err := s.Fetch(world, s.Symbol(name))
	return v, err
}

// C4 — objects "grow with time" and the association-table representation
// keeps temporal fetches cheap (§6), while a LOOM-style whole-object
// representation pays for the entire history on every fault (§7). E!Salary@T
// cost vs history length.
func C4(w io.Writer) error {
	fmt.Fprintln(w, "C4: E!Salary@T cost vs history length — association table vs LOOM fault")
	fmt.Fprintf(w, "  %-8s %18s %18s %16s\n", "history", "gemstone ns/op", "loom ns/op", "loom bytes/op")
	for _, hist := range []int{16, 256, 2048} {
		db, done, err := tempDB(gemstone.Options{})
		if err != nil {
			return err
		}
		s, err := db.Login(gemstone.SystemUser, "swordfish")
		if err != nil {
			done()
			return err
		}
		s.MustRun("World at: #emp put: (Object new at: #salary put: 0; yourself)")
		if _, err := s.Commit(); err != nil {
			done()
			return err
		}
		core := s.Core()
		emp, err := s.Path("World!emp", nil)
		if err != nil {
			done()
			return err
		}
		salSym := core.Symbol("salary")
		for i := 0; i < hist; i++ {
			if err := core.Store(emp, salSym, oop.MustInt(int64(i))); err != nil {
				done()
				return err
			}
			if _, err := core.Commit(); err != nil {
				done()
				return err
			}
		}
		mid := oop.Time(uint64(hist) / 2)
		gemNS, err := timeIt(2000, func() error {
			_, _, err := core.FetchAt(emp, salSym, mid)
			return err
		})
		if err != nil {
			done()
			return err
		}
		// The LOOM side: same history, whole-object faults under a cache
		// that alternates between two objects (each access misses).
		mem := loom.New(1)
		obA := object.New(oop.FromSerial(1), oop.FromSerial(1), 0, object.FormatNamed)
		obB := object.New(oop.FromSerial(2), oop.FromSerial(1), 0, object.FormatNamed)
		for i := 1; i <= hist; i++ {
			_ = obA.Store(salSym, oop.Time(i), oop.MustInt(int64(i)))
			_ = obB.Store(salSym, oop.Time(i), oop.MustInt(int64(i)))
		}
		if err := mem.Store(obA); err != nil {
			done()
			return fmt.Errorf("c4: loom store: %w (history %d)", err, hist)
		}
		if err := mem.Store(obB); err != nil {
			done()
			return err
		}
		mem.ResetStats()
		iters := 2000
		loomNS, err := timeIt(iters, func() error {
			// Alternate objects so the capacity-1 cache always faults.
			if _, _, err := mem.FetchAt(oop.FromSerial(1), salSym, mid); err != nil {
				return err
			}
			_, _, err := mem.FetchAt(oop.FromSerial(2), salSym, mid)
			return err
		})
		if err != nil {
			done()
			return err
		}
		loomNS /= 2 // two fetches per iteration
		bytesPerOp := float64(mem.Stats().DiskBytes) / float64(iters*2)
		fmt.Fprintf(w, "  %-8d %18.0f %18.0f %16.0f\n", hist, gemNS, loomNS, bytesPerOp)
		done()
	}
	fmt.Fprintln(w, "  shape: gemstone ~log(history); loom ~linear (whole history decoded per fault)")
	return nil
}

// C5 — "no garbage collection need be done on database objects" (§6):
// history replaces deletion, so commit latency stays flat as the database
// accumulates state, while an update-in-place memory pays periodic
// mark/sweep pauses that grow with the live heap.
func C5(w io.Writer) error {
	fmt.Fprintln(w, "C5: append-only history vs update-in-place + mark/sweep GC")
	db, done, err := tempDB(gemstone.Options{})
	if err != nil {
		return err
	}
	defer done()
	s, err := db.Login(gemstone.SystemUser, "swordfish")
	if err != nil {
		return err
	}
	s.MustRun("World at: #counter put: (Object new at: #v put: 0; yourself)")
	if _, err := s.Commit(); err != nil {
		return err
	}
	core := s.Core()
	ctr, err := s.Path("World!counter", nil)
	if err != nil {
		return err
	}
	vSym := core.Symbol("v")
	fmt.Fprintf(w, "  %-24s %14s\n", "commits so far", "commit ns/op")
	var first, last float64
	for _, phase := range []int{0, 400, 800} {
		ns, err := timeIt(100, func() error {
			if err := core.Store(ctr, vSym, oop.MustInt(int64(phase))); err != nil {
				return err
			}
			_, err := core.Commit()
			return err
		})
		if err != nil {
			return err
		}
		// Drive additional history between measurement points.
		for i := 0; i < 300; i++ {
			_ = core.Store(ctr, vSym, oop.MustInt(int64(i)))
			if _, err := core.Commit(); err != nil {
				return err
			}
		}
		if first == 0 {
			first = ns
		}
		last = ns
		fmt.Fprintf(w, "  %-24d %14.0f\n", phase+100, ns)
	}
	growth := last / first
	fmt.Fprintf(w, "  gemstone commit latency growth across 1200 history-accumulating commits: %.2fx\n", growth)

	// The GC'd alternative: update in place, mark/sweep over the live heap
	// every K updates. Pause grows linearly with heap size.
	fmt.Fprintf(w, "  %-24s %14s\n", "live heap (objects)", "GC pause ns")
	type gcObj struct {
		vals map[int]int64
		refs []int
	}
	for _, heap := range []int{10000, 40000, 160000} {
		objs := make([]*gcObj, heap)
		for i := range objs {
			objs[i] = &gcObj{vals: map[int]int64{0: int64(i)}, refs: []int{(i + 1) % heap}}
		}
		start := time.Now()
		// Mark.
		marked := make([]bool, heap)
		stack := []int{0}
		for len(stack) > 0 {
			i := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if marked[i] {
				continue
			}
			marked[i] = true
			stack = append(stack, objs[i].refs...)
		}
		// Sweep.
		live := 0
		for i := range objs {
			if marked[i] {
				live++
			}
		}
		pause := time.Since(start).Nanoseconds()
		fmt.Fprintf(w, "  %-24d %14d\n", heap, pause)
		_ = live
	}
	fmt.Fprintln(w, "  shape: append-only commit latency ~flat; GC pause grows ~linearly with heap")
	return nil
}
