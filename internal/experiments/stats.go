package experiments

import (
	"fmt"
	"io"
	"net"
	"time"

	"repro/gemstone"
	"repro/internal/executor"
	"repro/internal/obs"
	"repro/internal/wire"
)

// EngineStats drives a scripted multi-client workload over TCP — disjoint
// commits plus a deliberately conflicting pair — and returns the engine's
// own counters as a ledger section, fetched through the OpStats wire
// operation. This is what `gsbench -stats` appends to the BENCH ledger, so
// the EXPERIMENTS claims (C2 index-vs-scan, C3 abort rates, C6 group
// sizes) can cite engine counters, not just ns/op.
func EngineStats(w io.Writer, workers, rounds int) (map[string]map[string]float64, error) {
	db, cleanup, err := tempDB(gemstone.Options{})
	if err != nil {
		return nil, err
	}
	defer cleanup()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := wire.Serve(ln, executor.New(db))
	defer srv.Close()
	addr := ln.Addr().String()

	// Disjoint writers: every commit should succeed.
	type client struct {
		c  *wire.Client
		rs *wire.RemoteSession
	}
	clients := make([]client, workers)
	for i := range clients {
		c, err := wire.DialRetry(addr, 2*time.Second, 5)
		if err != nil {
			return nil, err
		}
		defer c.Close()
		rs, err := c.Login("SystemUser", "swordfish")
		if err != nil {
			return nil, err
		}
		clients[i] = client{c, rs}
	}
	for j := 0; j < rounds; j++ {
		for i, cl := range clients {
			src := fmt.Sprintf("World at: #w%dr%d put: %d", i, j, j)
			// Distinct keys still share the World dictionary, so commits
			// can conflict on World itself; retry, the standard optimistic
			// loop (a failed commit refreshes the snapshot).
			var lastErr error
			for try := 0; try < 8; try++ {
				if _, _, err := cl.rs.Execute(src); err != nil {
					return nil, err
				}
				if _, lastErr = cl.rs.Commit(); lastErr == nil {
					break
				}
			}
			if lastErr != nil {
				return nil, lastErr
			}
		}
	}
	// A contending pair on one key: the second committer must abort
	// (first-committer-wins), populating the conflict counters.
	for j := 0; j < rounds; j++ {
		for _, cl := range clients[:2] {
			if _, _, err := cl.rs.Execute("World at: #hot put: 1"); err != nil {
				return nil, err
			}
		}
		for _, cl := range clients[:2] {
			_, _ = cl.rs.Commit() // one of these conflicts by design
		}
	}
	snap, err := clients[0].rs.Stats()
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "engine counters after %d workers x %d rounds (+%d contended):\n%s",
		workers, rounds, rounds, snap)
	return engineSection(snap), nil
}

// engineSection flattens a snapshot into ledger rows: one row per
// instrument kind, so `"engine": {"counters": {...}}` reads directly.
func engineSection(s *obs.Snapshot) map[string]map[string]float64 {
	sec := map[string]map[string]float64{
		"counters":        {},
		"gauges":          {},
		"histogram.count": {},
		"histogram.mean":  {},
	}
	for _, c := range s.Counters {
		sec["counters"][c.Name] = float64(c.Value)
	}
	for _, g := range s.Gauges {
		sec["gauges"][g.Name] = float64(g.Value)
	}
	for _, h := range s.Histograms {
		sec["histogram.count"][h.Name] = float64(h.Count)
		sec["histogram.mean"][h.Name] = h.Mean()
	}
	return sec
}
