package opal

import (
	"fmt"
	"sort"

	"repro/internal/auth"
	"repro/internal/object"

	"repro/internal/oop"
)

// installBlockPrims registers block invocation.
func (in *Interp) installBlockPrims() {
	call := func(n int) primFn {
		return func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
			cl, err := in.mustBlock(r)
			if err != nil {
				return oop.Invalid, err
			}
			return in.callBlock(cl, a[:n])
		}
	}
	in.reg("Block", "value", call(0))
	in.reg("Block", "value:", call(1))
	in.reg("Block", "value:value:", call(2))
	in.reg("Block", "value:value:value:", call(3))
	in.reg("Block", "numArgs", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		cl, err := in.mustBlock(r)
		if err != nil {
			return oop.Invalid, err
		}
		return oop.MustInt(int64(cl.code.numArgs)), nil
	})
	// Fallback loop protocol for blocks held in variables (the compiler
	// inlines the literal-block forms).
	in.reg("Block", "whileTrue:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		cond, err := in.mustBlock(r)
		if err != nil {
			return oop.Invalid, err
		}
		body, err := in.mustBlock(a[0])
		if err != nil {
			return oop.Invalid, err
		}
		for {
			c, err := in.callBlock(cond, nil)
			if err != nil {
				return oop.Invalid, err
			}
			b, ok := c.Bool()
			if !ok {
				return oop.Invalid, fmt.Errorf("opal: whileTrue: condition not Boolean")
			}
			if !b {
				return oop.Nil, nil
			}
			if _, err := in.callBlock(body, nil); err != nil {
				return oop.Invalid, err
			}
		}
	})
}

// installReflectionPrims adds perform:-style reflective dispatch and the
// sorting primitive backing asSortedCollection:.
func (in *Interp) installReflectionPrims() {
	selOf := func(v oop.OOP) (string, bool) {
		if s, ok := in.s.SymbolName(v); ok {
			return s, true
		}
		if s, ok := in.stringValue(v); ok {
			return s, true
		}
		return "", false
	}
	perform := func(n int) primFn {
		return func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
			sel, ok := selOf(a[0])
			if !ok {
				return oop.Invalid, fmt.Errorf("opal: perform: needs a selector")
			}
			return in.Send(r, sel, a[1:n+1]...)
		}
	}
	in.reg("Object", "perform:", perform(0))
	in.reg("Object", "perform:with:", perform(1))
	in.reg("Object", "perform:with:with:", perform(2))

	// In-place sort of an indexed collection with a two-argument block
	// comparator ([:a :b | a <= b]).
	sortPrim := func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		cl, err := in.mustBlock(a[0])
		if err != nil {
			return oop.Invalid, err
		}
		vals, err := in.arrayValues(r)
		if err != nil {
			return oop.Invalid, err
		}
		var sortErr error
		sort.SliceStable(vals, func(i, j int) bool {
			if sortErr != nil {
				return false
			}
			res, err := in.callBlock(cl, []oop.OOP{vals[i], vals[j]})
			if err != nil {
				sortErr = err
				return false
			}
			b, _ := res.Bool()
			return b
		})
		if sortErr != nil {
			return oop.Invalid, sortErr
		}
		for i, v := range vals {
			if err := in.s.Store(r, oop.MustInt(int64(i+1)), v); err != nil {
				return oop.Invalid, err
			}
		}
		return r, nil
	}
	in.reg("OrderedCollection", "sort:", sortPrim)
	in.reg("Array", "sort:", sortPrim)

	// asArray materializes any indexed collection as a fresh Array.
	asArray := func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		vals, err := in.arrayValues(r)
		if err != nil {
			return oop.Invalid, err
		}
		return in.newArrayWith(vals)
	}
	in.reg("OrderedCollection", "asArray", asArray)
	in.reg("Array", "asArray", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		return r, nil
	})
}

// installHistoryPrims exposes object history to OPAL: the per-element
// association tables of §5.3.2/§6 as first-class data.
func (in *Interp) installHistoryPrims() {
	// obj historyOf: #salary -> OrderedCollection of (time -> value)
	// associations, oldest first, committed states only.
	in.reg("Object", "historyOf:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		name := a[0]
		if s, ok := in.stringValue(name); ok {
			name = in.s.Symbol(s)
		}
		hist, err := in.s.History(r, name)
		if err != nil {
			return oop.Invalid, err
		}
		k := in.s.DB().Kernel()
		out, err := in.s.NewObject(k.OrderedCollection)
		if err != nil {
			return oop.Invalid, err
		}
		for i, h := range hist {
			t, ok := oop.FromInt(int64(h.T))
			if !ok {
				continue
			}
			assoc, err := in.Send(t, "->", h.Value)
			if err != nil {
				return oop.Invalid, err
			}
			if err := in.s.Store(out, oop.MustInt(int64(i+1)), assoc); err != nil {
				return oop.Invalid, err
			}
		}
		if err := in.setArraySize(out, int64(len(hist))); err != nil {
			return oop.Invalid, err
		}
		return out, nil
	})
	// obj changedTimesOf: #salary -> Array of transaction times.
	in.reg("Object", "changedTimesOf:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		name := a[0]
		if s, ok := in.stringValue(name); ok {
			name = in.s.Symbol(s)
		}
		hist, err := in.s.History(r, name)
		if err != nil {
			return oop.Invalid, err
		}
		times := make([]oop.OOP, 0, len(hist))
		for _, h := range hist {
			if t, ok := oop.FromInt(int64(h.T)); ok {
				times = append(times, t)
			}
		}
		return in.newArrayWith(times)
	})
}

// installSystemPrims wires the database-system protocol: transactions, the
// time dial, queries, users and the Transcript (paper §6: "classes and
// primitive methods ... to provide transaction control, storage hints and
// requests for replication").
func (in *Interp) installSystemPrims() {
	// The System and Transcript globals are bound to singleton objects by
	// installKernelMethods; their behavior lives on their classes.
	in.reg("SystemAccess", "commitTransaction", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		if _, err := in.s.Commit(); err != nil {
			return oop.False, nil // conflict: the session has been refreshed
		}
		return oop.True, nil
	})
	in.reg("SystemAccess", "abortTransaction", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		in.s.Abort()
		return r, nil
	})
	in.reg("SystemAccess", "time", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		return oop.MustInt(int64(in.s.DB().TxnManager().LastCommitted())), nil
	})
	in.reg("SystemAccess", "safeTime", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		return oop.MustInt(int64(in.s.SafeTime())), nil
	})
	in.reg("SystemAccess", "timeDial:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		if !a[0].IsSmallInt() || a[0].Int() < 0 {
			return oop.Invalid, fmt.Errorf("opal: timeDial: needs a non-negative integer")
		}
		if err := in.s.SetTimeDial(oop.Time(a[0].Int())); err != nil {
			return oop.Invalid, err
		}
		return r, nil
	})
	in.reg("SystemAccess", "timeDialNow", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		if err := in.s.SetTimeDial(oop.TimeNow); err != nil {
			return oop.Invalid, err
		}
		return r, nil
	})
	in.reg("SystemAccess", "timeDial", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		d := in.s.TimeDial()
		if d.IsNow() {
			return oop.Nil, nil
		}
		return oop.MustInt(int64(d)), nil
	})
	in.reg("SystemAccess", "user", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		return in.s.NewString(in.s.User())
	})
	in.reg("SystemAccess", "query:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		src, ok := in.stringValue(a[0])
		if !ok {
			return oop.Invalid, fmt.Errorf("opal: query: needs a string")
		}
		return in.runQuery(src, false)
	})
	in.reg("SystemAccess", "queryNaive:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		src, ok := in.stringValue(a[0])
		if !ok {
			return oop.Invalid, fmt.Errorf("opal: queryNaive: needs a string")
		}
		return in.runQuery(src, true)
	})
	in.reg("SystemAccess", "queryParallel:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		src, ok := in.stringValue(a[0])
		if !ok {
			return oop.Invalid, fmt.Errorf("opal: queryParallel: needs a string")
		}
		return in.runQueryParallel(src)
	})
	in.reg("SystemAccess", "explain:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		src, ok := in.stringValue(a[0])
		if !ok {
			return oop.Invalid, fmt.Errorf("opal: explain: needs a string")
		}
		plan, err := in.explainQuery(src)
		if err != nil {
			return oop.Invalid, err
		}
		return in.s.NewString(plan)
	})
	in.reg("SystemAccess", "explainParallel:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		src, ok := in.stringValue(a[0])
		if !ok {
			return oop.Invalid, fmt.Errorf("opal: explainParallel: needs a string")
		}
		plan, err := in.explainParallelQuery(src)
		if err != nil {
			return oop.Invalid, err
		}
		return in.s.NewString(plan)
	})
	in.reg("SystemAccess", "createUser:password:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		name, ok1 := in.stringValue(a[0])
		pw, ok2 := in.stringValue(a[1])
		if !ok1 || !ok2 {
			return oop.Invalid, fmt.Errorf("opal: createUser:password: needs strings")
		}
		if err := in.s.CreateUser(name, pw); err != nil {
			return oop.Invalid, err
		}
		return r, nil
	})

	// System newShared: aClass — instantiate in the published (world-
	// writable) segment so other users can read and update the object.
	in.reg("SystemAccess", "newShared:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		if in.s.ClassOf(a[0]) != in.s.DB().Kernel().Class {
			return oop.Invalid, fmt.Errorf("opal: newShared: needs a class")
		}
		o, err := in.s.NewSharedObject(a[0])
		if err != nil {
			return oop.Invalid, err
		}
		// Indexed classes get their size slot like Class>>new.
		f, _, _ := in.s.Fetch(a[0], in.s.Symbol("format"))
		if f.IsSmallInt() && object.Format(f.Int()) == object.FormatIndexed {
			if err := in.setArraySize(o, 0); err != nil {
				return oop.Invalid, err
			}
		}
		return o, nil
	})
	// System grantTo: 'user' privilege: 'read'|'write'|'none' — on the
	// session user's home segment.
	in.reg("SystemAccess", "grantTo:privilege:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		user, ok1 := in.stringValue(a[0])
		priv, ok2 := in.stringValue(a[1])
		if !ok1 || !ok2 {
			return oop.Invalid, fmt.Errorf("opal: grantTo:privilege: needs strings")
		}
		var p auth.Privilege
		switch priv {
		case "none":
			p = auth.None
		case "read":
			p = auth.Read
		case "write":
			p = auth.Write
		default:
			return oop.Invalid, fmt.Errorf("opal: privilege must be none/read/write")
		}
		if err := in.s.Grant(in.s.HomeSegment(), user, p); err != nil {
			return oop.Invalid, err
		}
		return r, nil
	})

	// Transcript
	in.reg("TranscriptStream", "show:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		if s, ok := in.stringValue(a[0]); ok {
			in.out.WriteString(s)
		} else {
			in.out.WriteString(in.safePrint(a[0]))
		}
		return r, nil
	})
	in.reg("TranscriptStream", "print:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		in.out.WriteString(in.safePrint(a[0]))
		return r, nil
	})
	in.reg("TranscriptStream", "cr", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		in.out.WriteByte('\n')
		return r, nil
	})
	in.reg("TranscriptStream", "tab", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		in.out.WriteByte('\t')
		return r, nil
	})
}
