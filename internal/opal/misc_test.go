package opal

import (
	"testing"
)

func TestPrintStringForms(t *testing.T) {
	in := newInterp(t)
	evalCases(t, in, [][2]string{
		{"Object printString", "'Object'"},
		{"SmallInteger printString", "'SmallInteger'"},
		{"2.5 printString", "'2.5'"},
		{"2.0 printString", "'2.0'"}, // integral floats keep the point
		{"(3 -> 'x') printString", "'3->''x'''"},
		{"#() printString", "'an Array( )'"},
		{"(Set new) printString", "'a Set( )'"},
		{"(Dictionary new) printString", "'a Dictionary( )'"},
		{"nil printString", "'nil'"},
		{"$z printString", "'$z'"},
		{"#sym printString", "'#sym'"},
		{"[:x | x] printString", "'aBlock(1 args)'"},
		{"Transcript printString", "'a TranscriptStream'"},
	})
}

func TestSystemErrors(t *testing.T) {
	in := newInterp(t)
	for _, src := range []string{
		"System timeDial: 'soon'", // non-integer
		"System timeDial: 999",    // future
		"System query: 42",        // non-string
		"System explain: 42",      // non-string
		"System createUser: 1 password: 2",
		"System newShared: 3", // not a class
		"System grantTo: 3 privilege: 4",
	} {
		if _, err := in.Execute(src); err == nil {
			t.Errorf("%q should fail", src)
		}
	}
}

func TestClassProtocolEdges(t *testing.T) {
	in := newInterp(t)
	evalCases(t, in, [][2]string{
		{"Object subclass: 'Widget'. Widget name", "#Widget"},
		{"Widget selectors size", "0"},
		{"Widget comment: 'a widget'. Widget!comment", "'a widget'"},
		{"(Array new: 0) size", "0"},
	})
	// Redefinition keeps identity.
	if _, err := in.Execute(`Object subclass: 'Widget' instVarNames: #('a')`); err != nil {
		t.Fatal(err)
	}
	evalCases(t, in, [][2]string{
		{"Widget instVarNames size", "1"},
	})
	// Redefining a non-class global fails.
	if _, err := in.Execute("World at: #NotAClass put: 3"); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Execute("Object subclass: 'NotAClass'"); err == nil {
		t.Error("subclassing over a non-class global accepted")
	}
	// new: with a negative size fails.
	if _, err := in.Execute("Array new: -1"); err == nil {
		t.Error("negative new: accepted")
	}
	// compile: with a bad pattern fails and does not register.
	if _, err := in.Execute("Widget compile: '3 + 4'"); err == nil {
		t.Error("bad method source accepted")
	}
}

func TestDictionaryAssociationFallback(t *testing.T) {
	in := newInterp(t)
	evalCases(t, in, [][2]string{
		// Object keys round-trip through associations; removeKey: works.
		{`| d k1 k2 |
			d := Dictionary new.
			k1 := Object new. k2 := Object new.
			d at: k1 put: 'one'. d at: k2 put: 'two'.
			d removeKey: k1.
			(d includesKey: k1) printString , '/' , (d at: k2)`, "'false/two'"},
		// Re-putting an object key updates in place.
		{`| d k |
			d := Dictionary new. k := Object new.
			d at: k put: 1. d at: k put: 2.
			(d size) printString , '/' , (d at: k) printString`, "'1/2'"},
		// keys/values see both representations.
		{`| d |
			d := Dictionary new.
			d at: #sym put: 1. d at: Object new put: 2.
			(d keys size) printString , '/' , (d values size) printString`, "'2/2'"},
	})
	if _, err := in.Execute("Dictionary new removeKey: #ghost"); err == nil {
		t.Error("removeKey: of missing key accepted")
	}
}

func TestBagSemantics(t *testing.T) {
	in := newInterp(t)
	evalCases(t, in, [][2]string{
		{"| b | b := Bag new. b add: 'x'; add: 'x'; add: 'y'. b occurrencesOf: 'x'", "2"},
		{"| b | b := Bag new. b add: 1; add: 1. b remove: 1. b size", "1"},
	})
}

func TestStringEdgeCases(t *testing.T) {
	in := newInterp(t)
	evalCases(t, in, [][2]string{
		{"| s | s := 'hello' copy. s at: 1 put: $H. s", "'Hello'"},
		{"'abc' asLowercase", "'abc'"},
		{"'' size", "0"},
		{"('a' , 'b') , 'c'", "'abc'"},
		// Concatenation with a non-string prints the argument.
		{"'n=' , 42", "'n=42'"},
		{"$a < $b", "true"},
		{"$a asInteger", "97"},
		{"97 asCharacter", "$a"},
	})
}

func TestMutatingCommittedStringReKeysCleanly(t *testing.T) {
	// String at:put: on a committed string is a versioned byte update.
	in := newInterp(t)
	if _, err := in.Execute("World at: #s put: 'abc'. System commitTransaction"); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Execute("World!s at: 1 put: $X. System commitTransaction"); err != nil {
		t.Fatal(err)
	}
	out, _ := in.ExecuteToString("World!s")
	if out != "'Xbc'" {
		t.Errorf("mutated string = %s", out)
	}
	// The old version is still visible in the past.
	out, _ = in.ExecuteToString("System timeDial: 1. World!s")
	if out != "'abc'" {
		t.Errorf("dialed string = %s", out)
	}
}
