// Package opal implements the OPAL language (paper §5.4): Smalltalk-80
// syntax and semantics — objects, messages, classes, blocks — extended with
// the data-language features the paper adds: path expressions with temporal
// subscripts, assignment to paths, set-calculus queries, and transaction /
// time-dial control, all compiled to bytecodes and executed by an abstract
// stack machine against a database session ("Communication with GemStone is
// done in blocks of OPAL source code. Compilation and execution of those
// blocks is done entirely in the GemStone system", §6).
package opal

import (
	"fmt"
	"strconv"
	"strings"
)

type tokenKind uint8

const (
	tkEOF tokenKind = iota
	tkIdent
	tkKeyword // ident: (single keyword part)
	tkBinary  // binary selector: + - * / < > = ~ , % & ?
	tkInt
	tkFloat
	tkString
	tkChar
	tkSymbol    // #foo, #at:put:, #+
	tkHashParen // #(
	tkLParen
	tkRParen
	tkLBracket
	tkRBracket
	tkDot
	tkSemi
	tkCaret
	tkPipe
	tkAssign // :=
	tkColon
	tkBang     // ! path separator
	tkAt       // @ temporal subscript (reserved for time, not Point creation)
	tkCalculus // { ... } embedded set-calculus expression (raw text)
)

type token struct {
	kind tokenKind
	text string
	i    int64
	f    float64
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tkEOF:
		return "end of input"
	case tkInt:
		return fmt.Sprintf("%d", t.i)
	case tkFloat:
		return fmt.Sprintf("%g", t.f)
	case tkString:
		return fmt.Sprintf("'%s'", t.text)
	default:
		return t.text
	}
}

// binaryChars are the characters that can form binary selectors. Note that
// '!' and '@' are excluded: OPAL claims them for path expressions and
// temporal subscripts.
const binaryChars = "+-*/~<>=&|,%?\\"

func isBinaryChar(c byte) bool { return strings.IndexByte(binaryChars, c) >= 0 }

func isLetter(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentChar(c byte) bool { return isLetter(c) || isDigit(c) }

type lexErr struct {
	msg string
	pos int
}

func (e *lexErr) Error() string { return fmt.Sprintf("opal: %s at offset %d", e.msg, e.pos) }

func lexSource(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '"': // comment
			j := i + 1
			for j < len(src) && src[j] != '"' {
				j++
			}
			if j >= len(src) {
				return nil, &lexErr{"unterminated comment", i}
			}
			i = j + 1
		case isDigit(c):
			start := i
			for i < len(src) && isDigit(src[i]) {
				i++
			}
			isFloat := false
			if i+1 < len(src) && src[i] == '.' && isDigit(src[i+1]) {
				isFloat = true
				i++
				for i < len(src) && isDigit(src[i]) {
					i++
				}
			}
			// Exponent: 1e3, 2.5e-4.
			if i < len(src) && (src[i] == 'e' || src[i] == 'E') {
				j := i + 1
				if j < len(src) && (src[j] == '-' || src[j] == '+') {
					j++
				}
				if j < len(src) && isDigit(src[j]) {
					isFloat = true
					i = j
					for i < len(src) && isDigit(src[i]) {
						i++
					}
				}
			}
			text := src[start:i]
			if isFloat {
				f, err := strconv.ParseFloat(text, 64)
				if err != nil {
					return nil, &lexErr{"bad number " + text, start}
				}
				toks = append(toks, token{kind: tkFloat, f: f, text: text, pos: start})
			} else {
				n, err := strconv.ParseInt(text, 10, 64)
				if err != nil {
					return nil, &lexErr{"integer out of range " + text, start}
				}
				toks = append(toks, token{kind: tkInt, i: n, text: text, pos: start})
			}
		case isLetter(c):
			start := i
			for i < len(src) && isIdentChar(src[i]) {
				i++
			}
			if i < len(src) && src[i] == ':' && (i+1 >= len(src) || src[i+1] != '=') {
				i++
				toks = append(toks, token{kind: tkKeyword, text: src[start:i], pos: start})
			} else {
				toks = append(toks, token{kind: tkIdent, text: src[start:i], pos: start})
			}
		case c == '\'':
			start := i
			i++
			var b strings.Builder
			closed := false
			for i < len(src) {
				if src[i] == '\'' {
					if i+1 < len(src) && src[i+1] == '\'' {
						b.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				b.WriteByte(src[i])
				i++
			}
			if !closed {
				return nil, &lexErr{"unterminated string", start}
			}
			toks = append(toks, token{kind: tkString, text: b.String(), pos: start})
		case c == '$':
			if i+1 >= len(src) {
				return nil, &lexErr{"character literal at end of input", i}
			}
			toks = append(toks, token{kind: tkChar, text: string(src[i+1]), pos: i})
			i += 2
		case c == '#':
			start := i
			i++
			if i < len(src) && src[i] == '(' {
				toks = append(toks, token{kind: tkHashParen, text: "#(", pos: start})
				i++
				continue
			}
			if i < len(src) && src[i] == '\'' {
				// #'quoted symbol'
				i++
				var b strings.Builder
				closed := false
				for i < len(src) {
					if src[i] == '\'' {
						if i+1 < len(src) && src[i+1] == '\'' {
							b.WriteByte('\'')
							i += 2
							continue
						}
						i++
						closed = true
						break
					}
					b.WriteByte(src[i])
					i++
				}
				if !closed {
					return nil, &lexErr{"unterminated symbol", start}
				}
				toks = append(toks, token{kind: tkSymbol, text: b.String(), pos: start})
				continue
			}
			if i < len(src) && isLetter(src[i]) {
				s := i
				for i < len(src) && (isIdentChar(src[i]) || src[i] == ':') {
					i++
				}
				toks = append(toks, token{kind: tkSymbol, text: src[s:i], pos: start})
				continue
			}
			if i < len(src) && isBinaryChar(src[i]) {
				s := i
				for i < len(src) && isBinaryChar(src[i]) {
					i++
				}
				toks = append(toks, token{kind: tkSymbol, text: src[s:i], pos: start})
				continue
			}
			return nil, &lexErr{"bad symbol literal", start}
		case c == ':':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{kind: tkAssign, text: ":=", pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tkColon, text: ":", pos: i})
				i++
			}
		case c == '{':
			// An embedded set-calculus expression (§5.4): capture the raw
			// text to the matching close brace (braces nest: the target
			// tuple constructor is itself braced). Quoted strings inside the
			// query may contain braces.
			start := i
			depth := 0
			j := i
			inStr := false
			for j < len(src) {
				switch {
				case inStr:
					if src[j] == '\'' {
						if j+1 < len(src) && src[j+1] == '\'' {
							j++
						} else {
							inStr = false
						}
					}
				case src[j] == '\'':
					inStr = true
				case src[j] == '{':
					depth++
				case src[j] == '}':
					depth--
				}
				j++
				if depth == 0 && !inStr {
					break
				}
			}
			if depth != 0 {
				return nil, &lexErr{"unterminated calculus expression", start}
			}
			toks = append(toks, token{kind: tkCalculus, text: src[start+1 : j-1], pos: start})
			i = j
		case c == '(':
			toks = append(toks, token{kind: tkLParen, text: "(", pos: i})
			i++
		case c == ')':
			toks = append(toks, token{kind: tkRParen, text: ")", pos: i})
			i++
		case c == '[':
			toks = append(toks, token{kind: tkLBracket, text: "[", pos: i})
			i++
		case c == ']':
			toks = append(toks, token{kind: tkRBracket, text: "]", pos: i})
			i++
		case c == '.':
			toks = append(toks, token{kind: tkDot, text: ".", pos: i})
			i++
		case c == ';':
			toks = append(toks, token{kind: tkSemi, text: ";", pos: i})
			i++
		case c == '^':
			toks = append(toks, token{kind: tkCaret, text: "^", pos: i})
			i++
		case c == '!':
			toks = append(toks, token{kind: tkBang, text: "!", pos: i})
			i++
		case c == '@':
			toks = append(toks, token{kind: tkAt, text: "@", pos: i})
			i++
		case c == '|':
			// '|' may begin a binary selector (||? not in Smalltalk) but we
			// treat a solitary '|' as the temporaries/args delimiter and
			// leave binary '|' for Boolean or.
			if i+1 < len(src) && isBinaryChar(src[i+1]) && src[i+1] != '|' {
				start := i
				i++
				for i < len(src) && isBinaryChar(src[i]) {
					i++
				}
				toks = append(toks, token{kind: tkBinary, text: src[start:i], pos: start})
			} else {
				toks = append(toks, token{kind: tkPipe, text: "|", pos: i})
				i++
			}
		case isBinaryChar(c):
			start := i
			for i < len(src) && isBinaryChar(src[i]) && i-start < 2 {
				i++
			}
			toks = append(toks, token{kind: tkBinary, text: src[start:i], pos: start})
		default:
			return nil, &lexErr{fmt.Sprintf("unexpected character %q", c), i}
		}
	}
	toks = append(toks, token{kind: tkEOF, pos: len(src)})
	return toks, nil
}
