package opal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/algebra"
	"repro/internal/calculus"
	"repro/internal/core"
	"repro/internal/oop"
)

// transientBase is the first pseudo-serial used for VM-transient values
// (blocks). These never reach the store.
const transientBase = uint64(1) << 48

// closure is a runtime block: compiled code plus its home activation.
type closure struct {
	code *blockCode
	home *frame
}

// frame is one activation record.
type frame struct {
	interp  *Interp
	method  *compiledMethod
	self    oop.OOP
	selfCls oop.OOP // class the running method was found in (for super)
	temps   []oop.OOP
	stack   []oop.OOP
	isBlock bool
	home    *frame // the method activation blocks unwind to
}

// nonLocal is the panic payload for ^-returns out of blocks.
type nonLocal struct {
	home *frame
	val  oop.OOP
}

// Interp executes OPAL code against a database session. One Interp per
// session (the paper's per-user Compiler + Interpreter pair, §6).
type Interp struct {
	s   *core.Session
	out strings.Builder // Transcript output

	prims     map[primKey]primFn
	cache     map[cacheKey]*cacheEntry
	blocks    map[uint64]*closure
	nextTrans uint64
	callDepth int
	maxDepth  int
	steps     uint64 // bytecodes executed; amortizes cancellation polling
}

// cancelEvery is how many bytecodes run between request-context polls:
// often enough that a deadline interrupts a runaway loop within
// microseconds, rarely enough that the check never shows in a profile.
// Power of two so the modulus is a mask.
const cancelEvery = 1024

type primKey struct {
	class    oop.OOP
	selector string
}

type cacheKey struct {
	class    uint64
	selector string
}

type cacheEntry struct {
	srcOOP   oop.OOP // identity of the source string the compile came from
	foundIn  oop.OOP // class whose dictionary supplied the method
	compiled *compiledMethod
}

// NewInterp creates an interpreter bound to a session. It installs the
// kernel primitives and (once per database) the kernel method sources.
func NewInterp(s *core.Session) (*Interp, error) {
	in := &Interp{
		s:         s,
		prims:     make(map[primKey]primFn),
		cache:     make(map[cacheKey]*cacheEntry),
		blocks:    make(map[uint64]*closure),
		nextTrans: transientBase,
		maxDepth:  2000,
	}
	if err := in.installKernelMethods(); err != nil {
		return nil, err
	}
	in.installPrimitives()
	return in, nil
}

// Session returns the bound session.
func (in *Interp) Session() *core.Session { return in.s }

// TakeOutput drains the Transcript buffer.
func (in *Interp) TakeOutput() string {
	s := in.out.String()
	in.out.Reset()
	return s
}

// Execute compiles and runs a block of OPAL source, returning the result.
func (in *Interp) Execute(source string) (oop.OOP, error) {
	ast, err := parseDoIt(source)
	if err != nil {
		return oop.Invalid, err
	}
	m, err := compileDoIt(ast, source)
	if err != nil {
		return oop.Invalid, err
	}
	return in.run(m, oop.Nil, in.s.DB().Kernel().UndefinedObject, nil)
}

// ExecuteToString runs source and returns the result's printString.
func (in *Interp) ExecuteToString(source string) (string, error) {
	v, err := in.Execute(source)
	if err != nil {
		return "", err
	}
	return in.PrintString(v)
}

// run executes a compiled method body.
func (in *Interp) run(m *compiledMethod, self, selfCls oop.OOP, args []oop.OOP) (res oop.OOP, err error) {
	if in.callDepth >= in.maxDepth {
		return oop.Invalid, fmt.Errorf("opal: call stack depth exceeded (%d)", in.maxDepth)
	}
	in.callDepth++
	defer func() { in.callDepth-- }()
	fr := &frame{interp: in, method: m, self: self, selfCls: selfCls, temps: make([]oop.OOP, m.numTemps)}
	fr.home = fr
	for i := range fr.temps {
		fr.temps[i] = oop.Nil
	}
	copy(fr.temps, args)
	defer func() {
		if r := recover(); r != nil {
			if nl, ok := r.(nonLocal); ok && nl.home == fr {
				res, err = nl.val, nil
				return
			}
			panic(r)
		}
	}()
	return in.exec(fr, m.code, m.lits, false)
}

// callBlock invokes a closure with arguments.
func (in *Interp) callBlock(cl *closure, args []oop.OOP) (oop.OOP, error) {
	if len(args) != cl.code.numArgs {
		return oop.Invalid, fmt.Errorf("opal: block expects %d arguments, got %d", cl.code.numArgs, len(args))
	}
	if in.callDepth >= in.maxDepth {
		return oop.Invalid, fmt.Errorf("opal: call stack depth exceeded (%d)", in.maxDepth)
	}
	in.callDepth++
	defer func() { in.callDepth-- }()
	for i, slot := range cl.code.argSlots {
		cl.home.temps[slot] = args[i]
	}
	fr := &frame{interp: in, method: cl.code.method, self: cl.home.self, selfCls: cl.home.selfCls,
		temps: cl.home.temps, isBlock: true, home: cl.home}
	return in.exec(fr, cl.code.code, cl.code.method.lits, true)
}

// exec is the bytecode loop for one code unit.
func (in *Interp) exec(fr *frame, code []byte, lits []literal, isBlock bool) (oop.OOP, error) {
	push := func(v oop.OOP) { fr.stack = append(fr.stack, v) }
	pop := func() oop.OOP {
		v := fr.stack[len(fr.stack)-1]
		fr.stack = fr.stack[:len(fr.stack)-1]
		return v
	}
	pc := 0
	u16 := func() int {
		v := int(binary.LittleEndian.Uint16(code[pc:]))
		pc += 2
		return v
	}
	for pc < len(code) {
		in.steps++
		if in.steps&(cancelEvery-1) == 0 {
			if err := in.s.CancelErr(); err != nil {
				return oop.Invalid, err
			}
		}
		op := opCode(code[pc])
		pc++
		switch op {
		case opPushSelf:
			push(fr.self)
		case opPushLit:
			v, err := in.litValue(lits[u16()])
			if err != nil {
				return oop.Invalid, err
			}
			push(v)
		case opPushTemp:
			push(fr.temps[code[pc]])
			pc++
		case opStoreTemp:
			fr.temps[code[pc]] = fr.stack[len(fr.stack)-1]
			pc++
		case opPushIVar:
			name := lits[u16()].s
			v, _, err := in.s.Fetch(fr.self, in.s.Symbol(name))
			if err != nil {
				return oop.Invalid, err
			}
			push(v)
		case opStoreIVar:
			name := lits[u16()].s
			sym := in.s.Symbol(name)
			v := fr.stack[len(fr.stack)-1]
			if err := in.checkConstraint(fr.self, sym, v); err != nil {
				return oop.Invalid, err
			}
			if err := in.s.Store(fr.self, sym, v); err != nil {
				return oop.Invalid, err
			}
		case opPushGlobal:
			name := lits[u16()].s
			v, ok := in.s.Global(name)
			if !ok {
				return oop.Invalid, fmt.Errorf("opal: undefined name %q", name)
			}
			push(v)
		case opPop:
			pop()
		case opDup:
			push(fr.stack[len(fr.stack)-1])
		case opSend, opSuperSend:
			sel := lits[u16()].s
			argc := int(code[pc])
			pc++
			args := make([]oop.OOP, argc)
			for i := argc - 1; i >= 0; i-- {
				args[i] = pop()
			}
			recv := pop()
			var startClass oop.OOP
			if op == opSuperSend {
				sup, _, err := in.s.Fetch(fr.selfCls, in.wkSuper())
				if err != nil {
					return oop.Invalid, err
				}
				startClass = sup
			} else {
				startClass = in.classOf(recv)
			}
			v, err := in.sendToClass(recv, startClass, sel, args)
			if err != nil {
				return oop.Invalid, err
			}
			push(v)
		case opJump:
			off := int(int16(binary.LittleEndian.Uint16(code[pc:])))
			pc += 2 + off
		case opJumpFalse, opJumpTrue:
			off := int(int16(binary.LittleEndian.Uint16(code[pc:])))
			pc += 2
			c := pop()
			b, ok := c.Bool()
			if !ok {
				return oop.Invalid, fmt.Errorf("opal: conditional on non-Boolean %s", in.safePrint(c))
			}
			if (op == opJumpFalse && !b) || (op == opJumpTrue && b) {
				pc += off
			}
		case opPushBlock:
			bc := lits[u16()].blk
			cl := &closure{code: bc, home: fr.home}
			push(in.registerBlock(cl))
		case opRetTop:
			return pop(), nil
		case opMethodRet:
			v := pop()
			if !isBlock {
				return v, nil
			}
			panic(nonLocal{home: fr.home, val: v})
		case opFetchElem:
			key := lits[u16()].s
			obj := pop()
			v, err := in.fetchElem(obj, key, nil)
			if err != nil {
				return oop.Invalid, err
			}
			push(v)
		case opFetchAt:
			key := lits[u16()].s
			t := pop()
			obj := pop()
			v, err := in.fetchElem(obj, key, &t)
			if err != nil {
				return oop.Invalid, err
			}
			push(v)
		case opQuery:
			cl := lits[u16()].calc
			binding := calculus.Binding{}
			prebound := map[string]bool{}
			for i, name := range cl.capNames {
				binding[name] = fr.temps[cl.capSlots[i]]
				prebound[name] = true
			}
			plan, err := algebra.OptimizeWithBound(cl.query, in.s, prebound)
			if err != nil {
				return oop.Invalid, err
			}
			rows, _, err := plan.ExecWith(in.s, binding)
			if err != nil {
				return oop.Invalid, err
			}
			out, err := in.rowsToCollection(rows)
			if err != nil {
				return oop.Invalid, err
			}
			push(out)
		case opStoreElem:
			key := lits[u16()].s
			v := pop()
			obj := pop()
			if !obj.IsHeap() {
				return oop.Invalid, fmt.Errorf("opal: cannot store element into %s", in.safePrint(obj))
			}
			name := in.segName(key)
			if err := in.checkConstraint(obj, name, v); err != nil {
				return oop.Invalid, err
			}
			if err := in.s.Store(obj, name, v); err != nil {
				return oop.Invalid, err
			}
			push(v)
		}
	}
	// Falling off the end without opRetTop (shouldn't happen).
	return oop.Nil, nil
}

func (in *Interp) wkSuper() oop.OOP { return in.s.Symbol("superclass") }

// segName converts a compiled path-segment key into an element-name OOP.
func (in *Interp) segName(key string) oop.OOP {
	if strings.HasPrefix(key, "\x00") {
		n, _ := strconv.ParseInt(key[1:], 10, 64)
		return oop.MustInt(n)
	}
	return in.s.Symbol(key)
}

func (in *Interp) fetchElem(obj oop.OOP, key string, at *oop.OOP) (oop.OOP, error) {
	if !obj.IsHeap() {
		return oop.Invalid, fmt.Errorf("opal: cannot navigate %q from %s", key, in.safePrint(obj))
	}
	name := in.segName(key)
	if at == nil {
		v, _, err := in.s.Fetch(obj, name)
		return v, err
	}
	if !at.IsSmallInt() {
		return oop.Invalid, fmt.Errorf("opal: '@' time must be an integer")
	}
	v, _, err := in.s.FetchAt(obj, name, oop.Time(at.Int()))
	return v, err
}

// registerBlock gives a closure a transient pseudo-OOP.
func (in *Interp) registerBlock(cl *closure) oop.OOP {
	in.nextTrans++
	o := oop.FromSerial(in.nextTrans)
	in.blocks[in.nextTrans] = cl
	return o
}

func (in *Interp) blockFor(o oop.OOP) (*closure, bool) {
	cl, ok := in.blocks[o.Serial()]
	return cl, ok
}

// litValue materializes a literal-pool entry as a runtime value.
func (in *Interp) litValue(l literal) (oop.OOP, error) {
	switch l.kind {
	case lkInt:
		v, ok := oop.FromInt(l.i)
		if !ok {
			return oop.Invalid, fmt.Errorf("opal: integer literal out of range")
		}
		return v, nil
	case lkFloat:
		return in.s.NewFloat(l.f)
	case lkString:
		return in.s.NewString(l.s)
	case lkSymbol, lkSelector:
		return in.s.Symbol(l.s), nil
	case lkChar:
		return oop.FromChar([]rune(l.s)[0]), nil
	case lkTrue:
		return oop.True, nil
	case lkFalse:
		return oop.False, nil
	case lkNil:
		return oop.Nil, nil
	case lkArray:
		arr, err := in.s.NewObject(in.s.DB().Kernel().Array)
		if err != nil {
			return oop.Invalid, err
		}
		for i, el := range l.arr {
			v, err := in.litValue(el)
			if err != nil {
				return oop.Invalid, err
			}
			if err := in.s.Store(arr, oop.MustInt(int64(i+1)), v); err != nil {
				return oop.Invalid, err
			}
		}
		return arr, nil
	case lkBlock:
		return oop.Invalid, errors.New("opal: block literal outside execution context")
	}
	return oop.Invalid, fmt.Errorf("opal: bad literal kind %d", l.kind)
}

// Send dispatches a message from Go.
func (in *Interp) Send(recv oop.OOP, selector string, args ...oop.OOP) (oop.OOP, error) {
	return in.sendToClass(recv, in.classOf(recv), selector, args)
}

// classOf resolves the class of any value, including VM-transient blocks.
func (in *Interp) classOf(v oop.OOP) oop.OOP {
	if v.IsHeap() && v.Serial() >= transientBase {
		if _, ok := in.blocks[v.Serial()]; ok {
			return in.s.DB().Kernel().Block
		}
	}
	return in.s.ClassOf(v)
}

// sendToClass performs method lookup starting at a class and invokes the
// method (or primitive).
func (in *Interp) sendToClass(recv, class oop.OOP, selector string, args []oop.OOP) (oop.OOP, error) {
	cls := class
	for cls.IsHeap() {
		// User-defined (or kernel OPAL) method first, then primitive.
		if m, src, err := in.methodIn(cls, selector); err != nil {
			return oop.Invalid, err
		} else if m != nil {
			_ = src
			return in.run(m, recv, cls, args)
		}
		if fn, ok := in.prims[primKey{class: cls, selector: selector}]; ok {
			return fn(in, recv, args)
		}
		sup, _, err := in.s.Fetch(cls, in.wkSuper())
		if err != nil {
			return oop.Invalid, err
		}
		cls = sup
	}
	return oop.Invalid, fmt.Errorf("opal: %s doesNotUnderstand: #%s", in.classNameOf(recv), selector)
}

// methodIn returns the compiled method defined directly in class for
// selector, if any, compiling and caching as needed.
func (in *Interp) methodIn(class oop.OOP, selector string) (*compiledMethod, oop.OOP, error) {
	dictOOP, ok, err := in.s.Fetch(class, in.s.Symbol("methods"))
	if err != nil || !ok || !dictOOP.IsHeap() {
		return nil, oop.Invalid, err
	}
	srcOOP, ok, err := in.s.Fetch(dictOOP, in.s.Symbol(selector))
	if err != nil || !ok || srcOOP == oop.Nil {
		return nil, oop.Invalid, err
	}
	key := cacheKey{class: class.Serial(), selector: selector}
	if e, hit := in.cache[key]; hit && e.srcOOP == srcOOP {
		return e.compiled, srcOOP, nil
	}
	srcBytes, err := in.s.BytesOf(srcOOP)
	if err != nil {
		return nil, oop.Invalid, err
	}
	ivars, err := in.allInstVarNames(class)
	if err != nil {
		return nil, oop.Invalid, err
	}
	ast, err := parseMethod(string(srcBytes))
	if err != nil {
		return nil, oop.Invalid, fmt.Errorf("opal: in %s>>%s: %w", in.classNameOf(class), selector, err)
	}
	if ast.selector != selector {
		return nil, oop.Invalid, fmt.Errorf("opal: method stored under #%s has pattern #%s", selector, ast.selector)
	}
	m, err := compileMethod(ast, string(srcBytes), ivars)
	if err != nil {
		return nil, oop.Invalid, err
	}
	in.cache[key] = &cacheEntry{srcOOP: srcOOP, foundIn: class, compiled: m}
	return m, srcOOP, nil
}

// allInstVarNames collects declared instance variable names along the
// superclass chain (subclass first).
func (in *Interp) allInstVarNames(class oop.OOP) ([]string, error) {
	var names []string
	for c := class; c.IsHeap(); {
		arr, ok, err := in.s.Fetch(c, in.s.Symbol("instVarNames"))
		if err != nil {
			return nil, err
		}
		if ok && arr.IsHeap() {
			elems, err := in.s.ElementNames(arr)
			if err != nil {
				return nil, err
			}
			for _, nm := range elems {
				v, _, err := in.s.Fetch(arr, nm)
				if err != nil {
					return nil, err
				}
				if s, ok := in.s.SymbolName(v); ok {
					names = append(names, s)
				}
			}
		}
		sup, _, err := in.s.Fetch(c, in.wkSuper())
		if err != nil {
			return nil, err
		}
		c = sup
	}
	return names, nil
}

func (in *Interp) classNameOf(v oop.OOP) string {
	cls := in.s.ClassOf(v)
	return in.classNameOfClass(cls)
}

func (in *Interp) classNameOfClass(cls oop.OOP) string {
	nameSym, ok, err := in.s.Fetch(cls, in.s.Symbol("name"))
	if err != nil || !ok {
		return cls.String()
	}
	if s, ok := in.s.SymbolName(nameSym); ok {
		return s
	}
	return cls.String()
}

func (in *Interp) safePrint(v oop.OOP) string {
	s, err := in.PrintString(v)
	if err != nil {
		return v.String()
	}
	return s
}
