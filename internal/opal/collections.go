package opal

import (
	"fmt"

	"repro/internal/oop"
)

// installCollectionPrims registers the concrete collection primitives.
// Generic protocol (select:, collect:, inject:into:, ...) is written in
// OPAL itself (image.go) on top of these.
func (in *Interp) installCollectionPrims() {
	// --- Array / OrderedCollection (indexed) ---
	idxAt := func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		if !a[0].IsSmallInt() {
			return oop.Invalid, fmt.Errorf("opal: index must be an integer")
		}
		n, err := in.arraySize(r)
		if err != nil {
			return oop.Invalid, err
		}
		i := a[0].Int()
		if i < 1 || i > n {
			return oop.Invalid, fmt.Errorf("opal: index %d out of bounds 1..%d", i, n)
		}
		v, _, err := in.s.Fetch(r, a[0])
		return v, err
	}
	idxAtPut := func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		if !a[0].IsSmallInt() {
			return oop.Invalid, fmt.Errorf("opal: index must be an integer")
		}
		n, err := in.arraySize(r)
		if err != nil {
			return oop.Invalid, err
		}
		i := a[0].Int()
		if i < 1 || i > n {
			return oop.Invalid, fmt.Errorf("opal: index %d out of bounds 1..%d", i, n)
		}
		if err := in.s.Store(r, a[0], a[1]); err != nil {
			return oop.Invalid, err
		}
		return a[1], nil
	}
	idxSize := func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		n, err := in.arraySize(r)
		if err != nil {
			return oop.Invalid, err
		}
		return oop.MustInt(n), nil
	}
	idxDo := func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		cl, err := in.mustBlock(a[0])
		if err != nil {
			return oop.Invalid, err
		}
		n, err := in.arraySize(r)
		if err != nil {
			return oop.Invalid, err
		}
		for i := int64(1); i <= n; i++ {
			v, _, err := in.s.Fetch(r, oop.MustInt(i))
			if err != nil {
				return oop.Invalid, err
			}
			if _, err := in.callBlock(cl, []oop.OOP{v}); err != nil {
				return oop.Invalid, err
			}
		}
		return r, nil
	}
	for _, cls := range []string{"Array", "OrderedCollection"} {
		in.reg(cls, "at:", idxAt)
		in.reg(cls, "at:put:", idxAtPut)
		in.reg(cls, "size", idxSize)
		in.reg(cls, "do:", idxDo)
	}
	in.reg("OrderedCollection", "add:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		n, err := in.arraySize(r)
		if err != nil {
			return oop.Invalid, err
		}
		if err := in.s.Store(r, oop.MustInt(n+1), a[0]); err != nil {
			return oop.Invalid, err
		}
		if err := in.setArraySize(r, n+1); err != nil {
			return oop.Invalid, err
		}
		return a[0], nil
	})
	in.reg("OrderedCollection", "addLast:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		return in.Send(r, "add:", a[0])
	})
	in.reg("OrderedCollection", "removeLast", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		n, err := in.arraySize(r)
		if err != nil {
			return oop.Invalid, err
		}
		if n == 0 {
			return oop.Invalid, fmt.Errorf("opal: removeLast on empty collection")
		}
		v, _, err := in.s.Fetch(r, oop.MustInt(n))
		if err != nil {
			return oop.Invalid, err
		}
		if err := in.s.Remove(r, oop.MustInt(n)); err != nil {
			return oop.Invalid, err
		}
		if err := in.setArraySize(r, n-1); err != nil {
			return oop.Invalid, err
		}
		return v, nil
	})
	first := func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		return in.Send(r, "at:", oop.MustInt(1))
	}
	last := func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		n, err := in.arraySize(r)
		if err != nil {
			return oop.Invalid, err
		}
		return in.Send(r, "at:", oop.MustInt(n))
	}
	for _, cls := range []string{"Array", "OrderedCollection"} {
		in.reg(cls, "first", first)
		in.reg(cls, "last", last)
	}

	// --- Set (alias-labeled sets, §5.1) ---
	in.reg("Set", "add:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		// Set semantics: no structural duplicates.
		ms, _, err := in.setMembers(r)
		if err != nil {
			return oop.Invalid, err
		}
		for _, m := range ms {
			if in.equalValues(m, a[0]) {
				return a[0], nil
			}
		}
		if _, err := in.s.AddToSet(r, a[0]); err != nil {
			return oop.Invalid, err
		}
		return a[0], nil
	})
	in.reg("Bag", "add:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		if _, err := in.s.AddToSet(r, a[0]); err != nil {
			return oop.Invalid, err
		}
		return a[0], nil
	})
	setRemove := func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		ms, ns, err := in.setMembers(r)
		if err != nil {
			return oop.Invalid, err
		}
		for i, m := range ms {
			if in.equalValues(m, a[0]) {
				if err := in.s.RemoveFromSet(r, ns[i]); err != nil {
					return oop.Invalid, err
				}
				return a[0], nil
			}
		}
		return oop.Invalid, fmt.Errorf("opal: remove: value not found")
	}
	setSize := func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		ms, _, err := in.setMembers(r)
		if err != nil {
			return oop.Invalid, err
		}
		return oop.MustInt(int64(len(ms))), nil
	}
	setDo := func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		cl, err := in.mustBlock(a[0])
		if err != nil {
			return oop.Invalid, err
		}
		ms, _, err := in.setMembers(r)
		if err != nil {
			return oop.Invalid, err
		}
		for _, m := range ms {
			if _, err := in.callBlock(cl, []oop.OOP{m}); err != nil {
				return oop.Invalid, err
			}
		}
		return r, nil
	}
	setIncludes := func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		ms, _, err := in.setMembers(r)
		if err != nil {
			return oop.Invalid, err
		}
		for _, m := range ms {
			if in.equalValues(m, a[0]) {
				return oop.True, nil
			}
		}
		return oop.False, nil
	}
	for _, cls := range []string{"Set", "Bag"} {
		in.reg(cls, "remove:", setRemove)
		in.reg(cls, "size", setSize)
		in.reg(cls, "do:", setDo)
		in.reg(cls, "includes:", setIncludes)
	}
	// Directory hint (paper §6: "hints given in OPAL for structuring
	// directories"): aSet indexOn: 'salary' or indexOn: #(dept name).
	in.reg("Set", "indexOn:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		var path []string
		if s, ok := in.stringValue(a[0]); ok {
			path = []string{s}
		} else if sym, ok := in.s.SymbolName(a[0]); ok {
			path = []string{sym}
		} else {
			vals, err := in.arrayValues(a[0])
			if err != nil {
				return oop.Invalid, err
			}
			for _, v := range vals {
				if s, ok := in.stringValue(v); ok {
					path = append(path, s)
				} else if sym, ok := in.s.SymbolName(v); ok {
					path = append(path, sym)
				} else {
					return oop.Invalid, fmt.Errorf("opal: indexOn: path must be names")
				}
			}
		}
		if err := in.s.CreateIndex(r, path); err != nil {
			return oop.Invalid, err
		}
		return r, nil
	})

	// --- Dictionary ---
	// Keys that are symbols, strings or integers are stored directly as
	// element names (so path expressions see them); other keys fall back to
	// alias-labeled Associations.
	dictKeyName := func(in *Interp, key oop.OOP) (oop.OOP, bool) {
		if key.IsSmallInt() {
			return key, true
		}
		if s, ok := in.stringValue(key); ok {
			return in.s.Symbol(s), true
		}
		if _, ok := in.s.SymbolName(key); ok {
			return key, true
		}
		return oop.Invalid, false
	}
	in.reg("Dictionary", "at:put:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		if name, ok := dictKeyName(in, a[0]); ok {
			if err := in.s.Store(r, name, a[1]); err != nil {
				return oop.Invalid, err
			}
			return a[1], nil
		}
		// Object key: reuse or add an Association.
		ms, _, err := in.setMembers(r)
		if err != nil {
			return oop.Invalid, err
		}
		keySym, valSym := in.s.Symbol("key"), in.s.Symbol("value")
		for _, m := range ms {
			if in.s.ClassOf(m) == in.s.DB().Kernel().Association {
				kv, _, _ := in.s.Fetch(m, keySym)
				if in.equalValues(kv, a[0]) {
					if err := in.s.Store(m, valSym, a[1]); err != nil {
						return oop.Invalid, err
					}
					return a[1], nil
				}
			}
		}
		assoc, err := in.Send(a[0], "->", a[1])
		if err != nil {
			return oop.Invalid, err
		}
		if _, err := in.s.AddToSet(r, assoc); err != nil {
			return oop.Invalid, err
		}
		return a[1], nil
	})
	dictAt := func(in *Interp, r oop.OOP, key oop.OOP) (oop.OOP, bool, error) {
		if name, ok := dictKeyName(in, key); ok {
			v, found, err := in.s.Fetch(r, name)
			if err != nil {
				return oop.Invalid, false, err
			}
			return v, found && v != oop.Nil, nil
		}
		ms, _, err := in.setMembers(r)
		if err != nil {
			return oop.Invalid, false, err
		}
		keySym, valSym := in.s.Symbol("key"), in.s.Symbol("value")
		for _, m := range ms {
			if in.s.ClassOf(m) == in.s.DB().Kernel().Association {
				kv, _, _ := in.s.Fetch(m, keySym)
				if in.equalValues(kv, key) {
					v, _, err := in.s.Fetch(m, valSym)
					return v, true, err
				}
			}
		}
		return oop.Nil, false, nil
	}
	in.reg("Dictionary", "at:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		v, found, err := dictAt(in, r, a[0])
		if err != nil {
			return oop.Invalid, err
		}
		if !found {
			return oop.Invalid, fmt.Errorf("opal: key not found: %s", in.safePrint(a[0]))
		}
		return v, nil
	})
	in.reg("Dictionary", "at:ifAbsent:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		v, found, err := dictAt(in, r, a[0])
		if err != nil {
			return oop.Invalid, err
		}
		if found {
			return v, nil
		}
		if cl, isBlock := in.blockFor(a[1]); isBlock {
			return in.callBlock(cl, nil)
		}
		return a[1], nil
	})
	in.reg("Dictionary", "includesKey:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		_, found, err := dictAt(in, r, a[0])
		if err != nil {
			return oop.Invalid, err
		}
		return oop.FromBool(found), nil
	})
	in.reg("Dictionary", "removeKey:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		if name, ok := dictKeyName(in, a[0]); ok {
			if v, found, err := in.s.Fetch(r, name); err != nil {
				return oop.Invalid, err
			} else if !found || v == oop.Nil {
				return oop.Invalid, fmt.Errorf("opal: key not found: %s", in.safePrint(a[0]))
			}
			if err := in.s.Remove(r, name); err != nil {
				return oop.Invalid, err
			}
			return a[0], nil
		}
		ms, ns, err := in.setMembers(r)
		if err != nil {
			return oop.Invalid, err
		}
		keySym := in.s.Symbol("key")
		for i, m := range ms {
			if in.s.ClassOf(m) == in.s.DB().Kernel().Association {
				kv, _, _ := in.s.Fetch(m, keySym)
				if in.equalValues(kv, a[0]) {
					if err := in.s.Remove(r, ns[i]); err != nil {
						return oop.Invalid, err
					}
					return a[0], nil
				}
			}
		}
		return oop.Invalid, fmt.Errorf("opal: key not found")
	})
	// keysAndValuesDo: iterates both direct elements and associations.
	in.reg("Dictionary", "keysAndValuesDo:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		cl, err := in.mustBlock(a[0])
		if err != nil {
			return oop.Invalid, err
		}
		kvs, err := in.dictPairs(r)
		if err != nil {
			return oop.Invalid, err
		}
		for _, kv := range kvs {
			if _, err := in.callBlock(cl, []oop.OOP{kv[0], kv[1]}); err != nil {
				return oop.Invalid, err
			}
		}
		return r, nil
	})
	in.reg("Dictionary", "keys", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		kvs, err := in.dictPairs(r)
		if err != nil {
			return oop.Invalid, err
		}
		keys := make([]oop.OOP, len(kvs))
		for i, kv := range kvs {
			keys[i] = kv[0]
		}
		return in.newArrayWith(keys)
	})
	in.reg("Dictionary", "values", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		kvs, err := in.dictPairs(r)
		if err != nil {
			return oop.Invalid, err
		}
		vals := make([]oop.OOP, len(kvs))
		for i, kv := range kvs {
			vals[i] = kv[1]
		}
		return in.newArrayWith(vals)
	})
	in.reg("Dictionary", "size", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		kvs, err := in.dictPairs(r)
		if err != nil {
			return oop.Invalid, err
		}
		return oop.MustInt(int64(len(kvs))), nil
	})
	in.reg("Dictionary", "do:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		cl, err := in.mustBlock(a[0])
		if err != nil {
			return oop.Invalid, err
		}
		kvs, err := in.dictPairs(r)
		if err != nil {
			return oop.Invalid, err
		}
		for _, kv := range kvs {
			if _, err := in.callBlock(cl, []oop.OOP{kv[1]}); err != nil {
				return oop.Invalid, err
			}
		}
		return r, nil
	})

	// --- Association ---
	in.reg("Association", "key", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		v, _, err := in.s.Fetch(r, in.s.Symbol("key"))
		return v, err
	})
	in.reg("Association", "value", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		v, _, err := in.s.Fetch(r, in.s.Symbol("value"))
		return v, err
	})
}

// dictPairs lists a Dictionary's (key, value) pairs: direct elements first
// (key rendered as the name symbol or integer), then associations.
func (in *Interp) dictPairs(r oop.OOP) ([][2]oop.OOP, error) {
	names, err := in.s.ElementNames(r)
	if err != nil {
		return nil, err
	}
	var out [][2]oop.OOP
	keySym, valSym := in.s.Symbol("key"), in.s.Symbol("value")
	assocCls := in.s.DB().Kernel().Association
	for _, n := range names {
		if in.isHiddenName(n) {
			continue
		}
		v, ok, err := in.s.Fetch(r, n)
		if err != nil {
			return nil, err
		}
		if !ok || v == oop.Nil {
			continue
		}
		if v.IsHeap() && in.s.ClassOf(v) == assocCls && in.s.IsAlias(n) {
			k, _, _ := in.s.Fetch(v, keySym)
			val, _, _ := in.s.Fetch(v, valSym)
			out = append(out, [2]oop.OOP{k, val})
			continue
		}
		out = append(out, [2]oop.OOP{n, v})
	}
	return out, nil
}
