package opal

import (
	"encoding/binary"
	"fmt"

	"repro/internal/calculus"
)

// Bytecodes of the OPAL abstract stack machine ("The Interpreter is an
// abstract stack machine that executes compiledMethods consisting of
// sequences of bytecodes", §6).
type opCode byte

const (
	opPushSelf   opCode = iota
	opPushLit           // u16 literal index
	opPushTemp          // u8 temp slot
	opStoreTemp         // u8 (value stays on stack)
	opPushIVar          // u16 literal index of name symbol
	opStoreIVar         // u16 (value stays on stack)
	opPushGlobal        // u16 literal index of name symbol
	opPop
	opDup
	opSend      // u16 selector literal, u8 argc
	opSuperSend // u16 selector literal, u8 argc
	opJump      // i16 relative to next instruction
	opJumpFalse // i16; pops condition
	opJumpTrue  // i16; pops condition
	opPushBlock // u16 literal index of block
	opRetTop    // return TOS from the current code unit
	opMethodRet // non-local return: unwind to the home method with TOS
	opFetchElem // u16 name literal; pops object, pushes element value
	opFetchAt   // u16 name literal; pops time then object, pushes value
	opStoreElem // u16 name literal; pops value then object, pushes value
	opQuery     // u16 calculus literal; pushes the result collection
)

// literal is one literal-pool entry.
type literal struct {
	kind litKind
	i    int64
	f    float64
	s    string // string/symbol/char/selector text
	arr  []literal
	blk  *blockCode
	calc *calcLit
}

// calcLit is a compiled embedded set-calculus expression: the parsed query
// plus the enclosing-scope variables it captures (name and temp slot).
type calcLit struct {
	src      string
	query    *calculus.Query
	capNames []string
	capSlots []int
}

type litKind uint8

const (
	lkInt litKind = iota
	lkFloat
	lkString
	lkSymbol
	lkChar
	lkTrue
	lkFalse
	lkNil
	lkArray
	lkBlock
	lkSelector // selector or name symbols (interned at run time)
	lkCalculus // embedded set-calculus expression
)

// blockCode is the compiled form of a block literal. Blocks share their
// home activation's temporary vector (the classic ST-80 scheme): block
// arguments are pre-assigned slots in the method's temp vector, so blocks
// are full closures but non-reentrant.
type blockCode struct {
	numArgs  int
	argSlots []int
	code     []byte
	method   *compiledMethod
}

// compiledMethod is an executable method.
type compiledMethod struct {
	selector string
	numArgs  int
	numTemps int // size of the temp vector (args + temps + block slots)
	code     []byte
	lits     []literal
	source   string
	ivars    []string // instance variable names visible when compiled
}

// scope tracks name→slot bindings with block shadowing.
type scope struct {
	names map[string][]int // name -> stack of slots (for shadowing)
	ivars map[string]bool
	next  int
}

func (sc *scope) bind(name string) int {
	slot := sc.next
	sc.next++
	sc.names[name] = append(sc.names[name], slot)
	return slot
}

func (sc *scope) unbind(name string) {
	st := sc.names[name]
	sc.names[name] = st[:len(st)-1]
}

func (sc *scope) lookup(name string) (int, bool) {
	st := sc.names[name]
	if len(st) == 0 {
		return 0, false
	}
	return st[len(st)-1], true
}

type compiler struct {
	m    *compiledMethod
	sc   *scope
	code *[]byte // current emission target (method or block body)
}

// compileMethod compiles a parsed method for a class with the given
// instance variable names.
func compileMethod(ast *methodAST, source string, ivars []string) (*compiledMethod, error) {
	m := &compiledMethod{selector: ast.selector, numArgs: len(ast.params), source: source, ivars: ivars}
	sc := &scope{names: map[string][]int{}, ivars: map[string]bool{}}
	for _, iv := range ivars {
		sc.ivars[iv] = true
	}
	for _, p := range ast.params {
		sc.bind(p)
	}
	for _, t := range ast.temps {
		sc.bind(t)
	}
	c := &compiler{m: m, sc: sc, code: &m.code}
	if err := c.body(ast.body, true); err != nil {
		return nil, err
	}
	m.numTemps = sc.next
	return m, nil
}

// compileDoIt compiles an executable block of code; falling off the end
// returns the last expression's value.
func compileDoIt(ast *methodAST, source string) (*compiledMethod, error) {
	m := &compiledMethod{selector: "doIt", source: source}
	sc := &scope{names: map[string][]int{}, ivars: map[string]bool{}}
	for _, t := range ast.temps {
		sc.bind(t)
	}
	c := &compiler{m: m, sc: sc, code: &m.code}
	if err := c.body(ast.body, false); err != nil {
		return nil, err
	}
	m.numTemps = sc.next
	return m, nil
}

// body compiles method- or doIt-level statements. A ^-return returns its
// value; falling off the end returns self in a method and the last value in
// a doIt.
func (c *compiler) body(stmts []node, isMethod bool) error {
	for i, st := range stmts {
		if r, ok := st.(*returnNode); ok {
			if err := c.expr(r.value); err != nil {
				return err
			}
			c.emit(opRetTop)
			return nil
		}
		if err := c.expr(st); err != nil {
			return err
		}
		if i < len(stmts)-1 {
			c.emit(opPop)
		} else if isMethod {
			c.emit(opPop) // method falls off the end: return self
		}
	}
	if isMethod {
		c.emit(opPushSelf)
	} else if len(stmts) == 0 {
		c.pushLit(literal{kind: lkNil})
	}
	c.emit(opRetTop)
	return nil
}

func (c *compiler) emit(op opCode, operands ...byte) {
	*c.code = append(*c.code, byte(op))
	*c.code = append(*c.code, operands...)
}

func (c *compiler) emitU16(op opCode, v int) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], uint16(v))
	c.emit(op, b[0], b[1])
}

func (c *compiler) addLit(l literal) int {
	// Deduplicate simple literals.
	for i, e := range c.m.lits {
		if e.kind == l.kind && e.i == l.i && e.f == l.f && e.s == l.s &&
			e.arr == nil && l.arr == nil && e.blk == nil && l.blk == nil &&
			e.calc == nil && l.calc == nil {
			return i
		}
	}
	c.m.lits = append(c.m.lits, l)
	return len(c.m.lits) - 1
}

func (c *compiler) pushLit(l literal) {
	c.emitU16(opPushLit, c.addLit(l))
}

// jump emission with backpatching.
func (c *compiler) emitJump(op opCode) int {
	c.emit(op, 0, 0)
	return len(*c.code) - 2
}

func (c *compiler) patchJump(at int) {
	off := len(*c.code) - (at + 2)
	binary.LittleEndian.PutUint16((*c.code)[at:], uint16(int16(off)))
}

func (c *compiler) jumpBack(target int) {
	off := target - (len(*c.code) + 3)
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], uint16(int16(off)))
	c.emit(opJump, b[0], b[1])
}

func (c *compiler) expr(n node) error {
	switch e := n.(type) {
	case *literalNode:
		c.pushLit(litFromNode(e))
		return nil
	case *varNode:
		return c.variable(e)
	case *assignNode:
		return c.assign(e)
	case *sendNode:
		return c.send(e)
	case *cascadeNode:
		return c.cascade(e)
	case *blockNode:
		return c.blockLit(e)
	case *pathNode:
		return c.path(e)
	case *calculusNode:
		return c.calculusLit(e)
	case *returnNode:
		return fmt.Errorf("opal: ^-return not allowed here")
	}
	return fmt.Errorf("opal: cannot compile %T", n)
}

// calculusLit compiles an embedded set-calculus expression. The query is
// parsed (and so validated) at compile time; any free variable that names
// an in-scope temp is captured by slot and bound at run time — the paper's
// "procedural parts" inside declarative statements (§5.4). Remaining free
// variables resolve as globals/World roots at run time.
func (c *compiler) calculusLit(n *calculusNode) error {
	// The lexer stripped the OUTER braces; the text still contains the
	// query's own target-constructor braces: {Emp: e} where ...
	q, err := calculus.Parse(n.src)
	if err != nil {
		return fmt.Errorf("opal: embedded calculus: %w", err)
	}
	free := map[string]bool{}
	for _, r := range q.Ranges {
		r.Source.FreeVars(free)
	}
	if q.Pred != nil {
		q.Pred.FreeVars(free)
	}
	rangeBound := map[string]bool{}
	for _, r := range q.Ranges {
		rangeBound[r.Var] = true
	}
	cl := &calcLit{src: n.src, query: q}
	for name := range free {
		if rangeBound[name] {
			continue
		}
		if slot, ok := c.sc.lookup(name); ok {
			cl.capNames = append(cl.capNames, name)
			cl.capSlots = append(cl.capSlots, slot)
		}
	}
	c.emitU16(opQuery, c.addLit(literal{kind: lkCalculus, calc: cl}))
	return nil
}

func litFromNode(e *literalNode) literal {
	switch e.kind {
	case litInt:
		return literal{kind: lkInt, i: e.i}
	case litFloat:
		return literal{kind: lkFloat, f: e.f}
	case litString:
		return literal{kind: lkString, s: e.s}
	case litSymbol:
		return literal{kind: lkSymbol, s: e.s}
	case litChar:
		return literal{kind: lkChar, s: e.s}
	case litTrue:
		return literal{kind: lkTrue}
	case litFalse:
		return literal{kind: lkFalse}
	case litNil:
		return literal{kind: lkNil}
	case litArray:
		arr := make([]literal, len(e.arr))
		for i, el := range e.arr {
			arr[i] = litFromNode(el)
		}
		return literal{kind: lkArray, arr: arr}
	}
	panic("unreachable literal kind")
}

func (c *compiler) variable(v *varNode) error {
	switch v.name {
	case "self", "super":
		c.emit(opPushSelf)
		return nil
	case "thisContext":
		return fmt.Errorf("opal: thisContext is not supported")
	}
	if slot, ok := c.sc.lookup(v.name); ok {
		c.emit(opPushTemp, byte(slot))
		return nil
	}
	if c.sc.ivars[v.name] {
		c.emitU16(opPushIVar, c.addLit(literal{kind: lkSelector, s: v.name}))
		return nil
	}
	c.emitU16(opPushGlobal, c.addLit(literal{kind: lkSelector, s: v.name}))
	return nil
}

func (c *compiler) assign(a *assignNode) error {
	switch tgt := a.target.(type) {
	case *varNode:
		if tgt.name == "self" || tgt.name == "super" {
			return fmt.Errorf("opal: cannot assign to %s", tgt.name)
		}
		if err := c.expr(a.value); err != nil {
			return err
		}
		if slot, ok := c.sc.lookup(tgt.name); ok {
			c.emit(opStoreTemp, byte(slot))
			return nil
		}
		if c.sc.ivars[tgt.name] {
			c.emitU16(opStoreIVar, c.addLit(literal{kind: lkSelector, s: tgt.name}))
			return nil
		}
		return fmt.Errorf("opal: cannot assign to undeclared variable %q", tgt.name)
	case *pathNode:
		// Evaluate the prefix object, then value, then store the last seg.
		last := tgt.segs[len(tgt.segs)-1]
		if last.timeExp != nil {
			return fmt.Errorf("opal: cannot assign into a past state")
		}
		prefix := &pathNode{base: tgt.base, root: tgt.root, segs: tgt.segs[:len(tgt.segs)-1]}
		if len(prefix.segs) == 0 {
			if err := c.expr(prefix.root); err != nil {
				return err
			}
		} else if err := c.path(prefix); err != nil {
			return err
		}
		if err := c.expr(a.value); err != nil {
			return err
		}
		c.emitU16(opStoreElem, c.addLit(literal{kind: lkSelector, s: segKey(last)}))
		return nil
	}
	return fmt.Errorf("opal: bad assignment target %T", a.target)
}

// segKey encodes a path segment name; numeric indexes are prefixed so the
// VM can tell them from symbols.
func segKey(s pathSeg) string {
	if s.isIndex {
		return fmt.Sprintf("\x00%d", s.index)
	}
	return s.name
}

func (c *compiler) path(p *pathNode) error {
	if err := c.expr(p.root); err != nil {
		return err
	}
	for _, seg := range p.segs {
		idx := c.addLit(literal{kind: lkSelector, s: segKey(seg)})
		if seg.timeExp != nil {
			if err := c.expr(seg.timeExp); err != nil {
				return err
			}
			c.emitU16(opFetchAt, idx)
		} else {
			c.emitU16(opFetchElem, idx)
		}
	}
	return nil
}

func (c *compiler) cascade(cas *cascadeNode) error {
	if err := c.expr(cas.receiver); err != nil {
		return err
	}
	for i, snd := range cas.sends {
		last := i == len(cas.sends)-1
		if !last {
			c.emit(opDup)
		}
		for _, a := range snd.args {
			if err := c.expr(a); err != nil {
				return err
			}
		}
		c.emitSend(opSend, snd.selector, len(snd.args))
		if !last {
			c.emit(opPop)
		}
	}
	return nil
}

func (c *compiler) emitSend(op opCode, selector string, argc int) {
	idx := c.addLit(literal{kind: lkSelector, s: selector})
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], uint16(idx))
	c.emit(op, b[0], b[1], byte(argc))
}

// send compiles a message send, inlining the standard control-flow
// selectors when their operands are block literals.
func (c *compiler) send(s *sendNode) error {
	if !s.super && c.tryInline(s) {
		return c.inline(s)
	}
	if err := c.expr(s.receiver); err != nil {
		return err
	}
	for _, a := range s.args {
		if err := c.expr(a); err != nil {
			return err
		}
	}
	op := opSend
	if s.super {
		op = opSuperSend
	}
	c.emitSend(op, s.selector, len(s.args))
	return nil
}

func isBlockLit(n node) (*blockNode, bool) {
	b, ok := n.(*blockNode)
	return b, ok
}

func (c *compiler) tryInline(s *sendNode) bool {
	switch s.selector {
	case "ifTrue:", "ifFalse:":
		b, ok := isBlockLit(s.args[0])
		return ok && len(b.params) == 0
	case "ifTrue:ifFalse:", "ifFalse:ifTrue:":
		b1, ok1 := isBlockLit(s.args[0])
		b2, ok2 := isBlockLit(s.args[1])
		return ok1 && ok2 && len(b1.params) == 0 && len(b2.params) == 0
	case "and:", "or:":
		b, ok := isBlockLit(s.args[0])
		return ok && len(b.params) == 0
	case "whileTrue:", "whileFalse:":
		r, okr := isBlockLit(s.receiver)
		b, okb := isBlockLit(s.args[0])
		return okr && okb && len(r.params) == 0 && len(b.params) == 0
	case "whileTrue", "whileFalse":
		r, ok := isBlockLit(s.receiver)
		return ok && len(r.params) == 0
	case "to:do:":
		b, ok := isBlockLit(s.args[1])
		return ok && len(b.params) == 1
	case "timesRepeat:":
		b, ok := isBlockLit(s.args[0])
		return ok && len(b.params) == 0
	}
	return false
}

// inlineBlockBody compiles a block's statements in the current scope
// (sharing temps), leaving the block value on the stack.
func (c *compiler) inlineBlockBody(b *blockNode) error {
	for _, t := range b.temps {
		c.sc.bind(t)
	}
	defer func() {
		for _, t := range b.temps {
			c.sc.unbind(t)
		}
	}()
	if len(b.body) == 0 {
		c.pushLit(literal{kind: lkNil})
		return nil
	}
	for i, st := range b.body {
		if r, ok := st.(*returnNode); ok {
			if err := c.expr(r.value); err != nil {
				return err
			}
			c.emit(opMethodRet)
			return nil
		}
		if err := c.expr(st); err != nil {
			return err
		}
		if i < len(b.body)-1 {
			c.emit(opPop)
		}
	}
	return nil
}

func (c *compiler) inline(s *sendNode) error {
	switch s.selector {
	case "ifTrue:", "ifFalse:":
		if err := c.expr(s.receiver); err != nil {
			return err
		}
		jop := opJumpFalse
		if s.selector == "ifFalse:" {
			jop = opJumpTrue
		}
		j1 := c.emitJump(jop)
		if err := c.inlineBlockBody(s.args[0].(*blockNode)); err != nil {
			return err
		}
		j2 := c.emitJump(opJump)
		c.patchJump(j1)
		c.pushLit(literal{kind: lkNil})
		c.patchJump(j2)
		return nil
	case "ifTrue:ifFalse:", "ifFalse:ifTrue:":
		if err := c.expr(s.receiver); err != nil {
			return err
		}
		jop := opJumpFalse
		if s.selector == "ifFalse:ifTrue:" {
			jop = opJumpTrue
		}
		j1 := c.emitJump(jop)
		if err := c.inlineBlockBody(s.args[0].(*blockNode)); err != nil {
			return err
		}
		j2 := c.emitJump(opJump)
		c.patchJump(j1)
		if err := c.inlineBlockBody(s.args[1].(*blockNode)); err != nil {
			return err
		}
		c.patchJump(j2)
		return nil
	case "and:", "or:":
		if err := c.expr(s.receiver); err != nil {
			return err
		}
		c.emit(opDup)
		var j int
		if s.selector == "and:" {
			j = c.emitJump(opJumpFalse)
		} else {
			j = c.emitJump(opJumpTrue)
		}
		c.emit(opPop)
		if err := c.inlineBlockBody(s.args[0].(*blockNode)); err != nil {
			return err
		}
		c.patchJump(j)
		return nil
	case "whileTrue:", "whileFalse:":
		top := len(*c.code)
		if err := c.inlineBlockBody(s.receiver.(*blockNode)); err != nil {
			return err
		}
		var j int
		if s.selector == "whileTrue:" {
			j = c.emitJump(opJumpFalse)
		} else {
			j = c.emitJump(opJumpTrue)
		}
		if err := c.inlineBlockBody(s.args[0].(*blockNode)); err != nil {
			return err
		}
		c.emit(opPop)
		c.jumpBack(top)
		c.patchJump(j)
		c.pushLit(literal{kind: lkNil})
		return nil
	case "whileTrue", "whileFalse":
		top := len(*c.code)
		if err := c.inlineBlockBody(s.receiver.(*blockNode)); err != nil {
			return err
		}
		var j int
		if s.selector == "whileTrue" {
			j = c.emitJump(opJumpFalse)
		} else {
			j = c.emitJump(opJumpTrue)
		}
		c.jumpBack(top)
		c.patchJump(j)
		c.pushLit(literal{kind: lkNil})
		return nil
	case "to:do:":
		// i := start. [i <= stop] whileTrue: [body. i := i + 1].
		blk := s.args[1].(*blockNode)
		iSlot := c.sc.bind("(to:do: index)")
		stopSlot := c.sc.bind("(to:do: limit)")
		defer c.sc.unbind("(to:do: index)")
		defer c.sc.unbind("(to:do: limit)")
		if err := c.expr(s.receiver); err != nil {
			return err
		}
		c.emit(opStoreTemp, byte(iSlot))
		c.emit(opPop)
		if err := c.expr(s.args[0]); err != nil {
			return err
		}
		c.emit(opStoreTemp, byte(stopSlot))
		c.emit(opPop)
		top := len(*c.code)
		c.emit(opPushTemp, byte(iSlot))
		c.emit(opPushTemp, byte(stopSlot))
		c.emitSend(opSend, "<=", 1)
		j := c.emitJump(opJumpFalse)
		// Bind the block argument to the index.
		argSlot := c.sc.bind(blk.params[0])
		c.emit(opPushTemp, byte(iSlot))
		c.emit(opStoreTemp, byte(argSlot))
		c.emit(opPop)
		if err := c.inlineBlockBody(blk); err != nil {
			c.sc.unbind(blk.params[0])
			return err
		}
		c.sc.unbind(blk.params[0])
		c.emit(opPop)
		c.emit(opPushTemp, byte(iSlot))
		c.pushLit(literal{kind: lkInt, i: 1})
		c.emitSend(opSend, "+", 1)
		c.emit(opStoreTemp, byte(iSlot))
		c.emit(opPop)
		c.jumpBack(top)
		c.patchJump(j)
		c.pushLit(literal{kind: lkNil})
		return nil
	case "timesRepeat:":
		blk := s.args[0].(*blockNode)
		iSlot := c.sc.bind("(times index)")
		nSlot := c.sc.bind("(times limit)")
		defer c.sc.unbind("(times index)")
		defer c.sc.unbind("(times limit)")
		c.pushLit(literal{kind: lkInt, i: 1})
		c.emit(opStoreTemp, byte(iSlot))
		c.emit(opPop)
		if err := c.expr(s.receiver); err != nil {
			return err
		}
		c.emit(opStoreTemp, byte(nSlot))
		c.emit(opPop)
		top := len(*c.code)
		c.emit(opPushTemp, byte(iSlot))
		c.emit(opPushTemp, byte(nSlot))
		c.emitSend(opSend, "<=", 1)
		j := c.emitJump(opJumpFalse)
		if err := c.inlineBlockBody(blk); err != nil {
			return err
		}
		c.emit(opPop)
		c.emit(opPushTemp, byte(iSlot))
		c.pushLit(literal{kind: lkInt, i: 1})
		c.emitSend(opSend, "+", 1)
		c.emit(opStoreTemp, byte(iSlot))
		c.emit(opPop)
		c.jumpBack(top)
		c.patchJump(j)
		c.pushLit(literal{kind: lkNil})
		return nil
	}
	return fmt.Errorf("opal: inline of %q not implemented", s.selector)
}

// blockLit compiles a block literal into a blockCode in the literal pool.
func (c *compiler) blockLit(b *blockNode) error {
	bc := &blockCode{numArgs: len(b.params), method: c.m}
	for _, p := range b.params {
		bc.argSlots = append(bc.argSlots, c.sc.bind(p))
	}
	for _, t := range b.temps {
		c.sc.bind(t)
	}
	saved := c.code
	c.code = &bc.code
	err := c.blockBody(b.body)
	c.code = saved
	for i := len(b.temps) - 1; i >= 0; i-- {
		c.sc.unbind(b.temps[i])
	}
	for i := len(b.params) - 1; i >= 0; i-- {
		c.sc.unbind(b.params[i])
	}
	if err != nil {
		return err
	}
	c.emitU16(opPushBlock, c.addLit(literal{kind: lkBlock, blk: bc}))
	return nil
}

// blockBody compiles a block's statements as a code unit ending in opRetTop
// (the block's value) or opMethodRet (a ^-return).
func (c *compiler) blockBody(stmts []node) error {
	if len(stmts) == 0 {
		c.pushLit(literal{kind: lkNil})
		c.emit(opRetTop)
		return nil
	}
	for i, st := range stmts {
		if r, ok := st.(*returnNode); ok {
			if err := c.expr(r.value); err != nil {
				return err
			}
			c.emit(opMethodRet)
			return nil
		}
		if err := c.expr(st); err != nil {
			return err
		}
		if i < len(stmts)-1 {
			c.emit(opPop)
		}
	}
	c.emit(opRetTop)
	return nil
}
