package opal

import (
	"fmt"

	"repro/internal/oop"
)

// Typed element names — the extension the paper flags as future work in
// §5.4 ("We still feel that some typing of element names could give us big
// performance advantages ... and we are looking at this extension to OPAL,
// as are others [BI, Ha]").
//
// A class may constrain an element name to a class:
//
//	Employee constrain: #salary to: Number.
//
// Every subsequent store into that element — through instance-variable
// assignment, the at:put: protocol, or path assignment — verifies the value
// is nil or a kind of the constraint class, along the whole class chain.
// Constraints live in the class object's #constraints dictionary, so they
// are persistent, versioned and inherited like everything else.

// checkConstraint enforces any element-name typing declared for obj's
// class chain on a store of value under name.
func (in *Interp) checkConstraint(obj, name, value oop.OOP) error {
	if !obj.IsHeap() {
		return nil
	}
	consSym := in.s.Symbol("constraints")
	for c := in.classOf(obj); c.IsHeap(); {
		cons, ok, err := in.s.Fetch(c, consSym)
		if err != nil {
			return err
		}
		if ok && cons.IsHeap() {
			want, ok2, err := in.s.Fetch(cons, name)
			if err != nil {
				return err
			}
			if ok2 && want != oop.Nil && want.IsHeap() {
				if value == oop.Nil {
					return nil // nil is always storable (absent element)
				}
				if !in.valueIsKindOf(value, want) {
					nameStr, _ := in.s.SymbolName(name)
					return fmt.Errorf("opal: constraint violation: %s of %s must be a %s, not %s",
						nameStr, in.classNameOf(obj), in.classNameOfClass(want), in.safePrint(value))
				}
				return nil
			}
		}
		sup, _, err := in.s.Fetch(c, in.wkSuper())
		if err != nil {
			return err
		}
		c = sup
	}
	return nil
}

func (in *Interp) valueIsKindOf(value, class oop.OOP) bool {
	for c := in.classOf(value); c.IsHeap(); {
		if c == class {
			return true
		}
		sup, _, err := in.s.Fetch(c, in.wkSuper())
		if err != nil {
			return false
		}
		c = sup
	}
	return false
}

// installConstraintPrims registers the declaration protocol.
func (in *Interp) installConstraintPrims() {
	in.reg("Class", "constrain:to:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		name := a[0]
		if s, ok := in.stringValue(name); ok {
			name = in.s.Symbol(s)
		} else if _, ok := in.s.SymbolName(name); !ok {
			return oop.Invalid, fmt.Errorf("opal: constrain:to: needs an element name")
		}
		if in.s.ClassOf(a[1]) != in.s.DB().Kernel().Class {
			return oop.Invalid, fmt.Errorf("opal: constrain:to: needs a class")
		}
		cons, ok, err := in.s.Fetch(r, in.s.Symbol("constraints"))
		if err != nil {
			return oop.Invalid, err
		}
		if !ok || !cons.IsHeap() {
			d, err := in.s.NewObject(in.s.DB().Kernel().Dictionary)
			if err != nil {
				return oop.Invalid, err
			}
			if err := in.s.Store(r, in.s.Symbol("constraints"), d); err != nil {
				return oop.Invalid, err
			}
			cons = d
		}
		if err := in.s.Store(cons, name, a[1]); err != nil {
			return oop.Invalid, err
		}
		return r, nil
	})
	in.reg("Class", "constraintOn:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		name := a[0]
		if s, ok := in.stringValue(name); ok {
			name = in.s.Symbol(s)
		}
		for c := r; c.IsHeap(); {
			cons, ok, err := in.s.Fetch(c, in.s.Symbol("constraints"))
			if err != nil {
				return oop.Invalid, err
			}
			if ok && cons.IsHeap() {
				if want, ok2, _ := in.s.Fetch(cons, name); ok2 && want != oop.Nil {
					return want, nil
				}
			}
			sup, _, err := in.s.Fetch(c, in.wkSuper())
			if err != nil {
				return oop.Invalid, err
			}
			c = sup
		}
		return oop.Nil, nil
	})
}
