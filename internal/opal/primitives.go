package opal

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/algebra"
	"repro/internal/calculus"
	"repro/internal/object"
	"repro/internal/oop"
)

// primFn is a primitive method body.
type primFn func(in *Interp, recv oop.OOP, args []oop.OOP) (oop.OOP, error)

func (in *Interp) classByName(name string) oop.OOP {
	c, ok := in.s.Global(name)
	if !ok {
		panic(fmt.Sprintf("opal: kernel class %s missing", name))
	}
	return c
}

func (in *Interp) reg(className, selector string, fn primFn) {
	in.prims[primKey{class: in.classByName(className), selector: selector}] = fn
}

// --- number helpers ---

type num struct {
	isFloat bool
	i       int64
	f       float64
}

func (in *Interp) asNum(v oop.OOP) (num, bool) {
	if v.IsSmallInt() {
		return num{i: v.Int()}, true
	}
	if v.IsHeap() && in.s.ClassOf(v) == in.s.DB().Kernel().Float {
		f, err := in.s.FloatValue(v)
		if err == nil {
			return num{isFloat: true, f: f}, true
		}
	}
	return num{}, false
}

func (n num) float() float64 {
	if n.isFloat {
		return n.f
	}
	return float64(n.i)
}

func (in *Interp) numResult(isFloat bool, i int64, f float64) (oop.OOP, error) {
	if isFloat {
		return in.s.NewFloat(f)
	}
	v, ok := oop.FromInt(i)
	if !ok {
		return in.s.NewFloat(float64(i)) // overflow degrades to Float
	}
	return v, nil
}

func (in *Interp) numPrim(sel string, recv oop.OOP, args []oop.OOP) (oop.OOP, error) {
	a, ok := in.asNum(recv)
	if !ok {
		return oop.Invalid, fmt.Errorf("opal: %s is not a number", in.safePrint(recv))
	}
	b, ok := in.asNum(args[0])
	if !ok {
		return oop.Invalid, fmt.Errorf("opal: %s is not a number", in.safePrint(args[0]))
	}
	fl := a.isFloat || b.isFloat
	switch sel {
	case "+":
		if fl {
			return in.numResult(true, 0, a.float()+b.float())
		}
		return in.numResult(false, a.i+b.i, 0)
	case "-":
		if fl {
			return in.numResult(true, 0, a.float()-b.float())
		}
		return in.numResult(false, a.i-b.i, 0)
	case "*":
		if fl {
			return in.numResult(true, 0, a.float()*b.float())
		}
		return in.numResult(false, a.i*b.i, 0)
	case "/":
		if b.float() == 0 {
			return oop.Invalid, fmt.Errorf("opal: division by zero")
		}
		if !fl && a.i%b.i == 0 {
			return in.numResult(false, a.i/b.i, 0)
		}
		return in.numResult(true, 0, a.float()/b.float())
	case "//":
		if !fl {
			if b.i == 0 {
				return oop.Invalid, fmt.Errorf("opal: division by zero")
			}
			return in.numResult(false, floorDiv(a.i, b.i), 0)
		}
		return in.numResult(true, 0, math.Floor(a.float()/b.float()))
	case "\\\\":
		if !fl {
			if b.i == 0 {
				return oop.Invalid, fmt.Errorf("opal: division by zero")
			}
			return in.numResult(false, a.i-floorDiv(a.i, b.i)*b.i, 0)
		}
		return in.numResult(true, 0, math.Mod(a.float(), b.float()))
	case "<":
		return oop.FromBool(a.float() < b.float()), nil
	case "<=":
		return oop.FromBool(a.float() <= b.float()), nil
	case ">":
		return oop.FromBool(a.float() > b.float()), nil
	case ">=":
		return oop.FromBool(a.float() >= b.float()), nil
	case "=":
		return oop.FromBool(a.float() == b.float()), nil
	case "~=":
		return oop.FromBool(a.float() != b.float()), nil
	}
	return oop.Invalid, fmt.Errorf("opal: bad numeric selector %s", sel)
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// --- string helpers ---

func (in *Interp) stringValue(v oop.OOP) (string, bool) {
	if !v.IsHeap() {
		return "", false
	}
	cls := in.s.ClassOf(v)
	k := in.s.DB().Kernel()
	if cls != k.String && cls != k.Symbol {
		return "", false
	}
	b, err := in.s.BytesOf(v)
	if err != nil {
		return "", false
	}
	return string(b), true
}

// equalValues applies OPAL '=' semantics: numbers by value, strings and
// symbols by contents, characters by code point, everything else identity.
func (in *Interp) equalValues(a, b oop.OOP) bool {
	if a == b {
		return true
	}
	if an, ok := in.asNum(a); ok {
		if bn, ok := in.asNum(b); ok {
			return an.float() == bn.float()
		}
		return false
	}
	if as, ok := in.stringValue(a); ok {
		if bs, ok := in.stringValue(b); ok {
			return as == bs
		}
	}
	return false
}

// --- collection helpers ---

func (in *Interp) arraySize(arr oop.OOP) (int64, error) {
	v, ok, err := in.s.Fetch(arr, in.s.Symbol("__size"))
	if err != nil {
		return 0, err
	}
	if ok && v.IsSmallInt() {
		return v.Int(), nil
	}
	// Untracked indexed object (built through raw stores): max index.
	names, err := in.s.ElementNames(arr)
	if err != nil {
		return 0, err
	}
	var max int64
	for _, n := range names {
		if n.IsSmallInt() && n.Int() > max {
			max = n.Int()
		}
	}
	return max, nil
}

func (in *Interp) setArraySize(arr oop.OOP, n int64) error {
	return in.s.Store(arr, in.s.Symbol("__size"), oop.MustInt(n))
}

// newArrayWith builds a fresh Array holding vals.
func (in *Interp) newArrayWith(vals []oop.OOP) (oop.OOP, error) {
	arr, err := in.s.NewObject(in.s.DB().Kernel().Array)
	if err != nil {
		return oop.Invalid, err
	}
	for i, v := range vals {
		if err := in.s.Store(arr, oop.MustInt(int64(i+1)), v); err != nil {
			return oop.Invalid, err
		}
	}
	if err := in.setArraySize(arr, int64(len(vals))); err != nil {
		return oop.Invalid, err
	}
	return arr, nil
}

// isHiddenName filters bookkeeping element names out of user iteration.
func (in *Interp) isHiddenName(name oop.OOP) bool {
	s, ok := in.s.SymbolName(name)
	return ok && strings.HasPrefix(s, "__")
}

// setMembers lists a labeled set's member values (current view).
func (in *Interp) setMembers(set oop.OOP) ([]oop.OOP, []oop.OOP, error) {
	names, err := in.s.ElementNames(set)
	if err != nil {
		return nil, nil, err
	}
	var ms, ns []oop.OOP
	for _, n := range names {
		if in.isHiddenName(n) {
			continue
		}
		v, ok, err := in.s.Fetch(set, n)
		if err != nil {
			return nil, nil, err
		}
		if ok && v != oop.Nil {
			ms = append(ms, v)
			ns = append(ns, n)
		}
	}
	return ms, ns, nil
}

func (in *Interp) mustBlock(v oop.OOP) (*closure, error) {
	cl, ok := in.blockFor(v)
	if !ok {
		return nil, fmt.Errorf("opal: %s is not a block", in.safePrint(v))
	}
	return cl, nil
}

// --- the primitive table ---

func (in *Interp) installPrimitives() {
	k := in.s.DB().Kernel()
	_ = k

	// Object
	in.reg("Object", "==", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		return oop.FromBool(r == a[0]), nil
	})
	in.reg("Object", "~~", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		return oop.FromBool(r != a[0]), nil
	})
	in.reg("Object", "=", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		return oop.FromBool(in.equalValues(r, a[0])), nil
	})
	in.reg("Object", "~=", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		return oop.FromBool(!in.equalValues(r, a[0])), nil
	})
	in.reg("Object", "isNil", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		return oop.FromBool(r == oop.Nil), nil
	})
	in.reg("Object", "notNil", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		return oop.FromBool(r != oop.Nil), nil
	})
	in.reg("Object", "class", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		return in.classOf(r), nil
	})
	in.reg("Object", "yourself", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		return r, nil
	})
	in.reg("Object", "hash", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		return oop.MustInt(int64(uint64(r) % (1 << 30))), nil
	})
	in.reg("Object", "printString", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		s, err := in.PrintString(r)
		if err != nil {
			return oop.Invalid, err
		}
		return in.s.NewString(s)
	})
	in.reg("Object", "error:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		msg, _ := in.stringValue(a[0])
		return oop.Invalid, fmt.Errorf("opal: error: %s", msg)
	})
	in.reg("Object", "->", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		assoc, err := in.s.NewObject(in.s.DB().Kernel().Association)
		if err != nil {
			return oop.Invalid, err
		}
		if err := in.s.Store(assoc, in.s.Symbol("key"), r); err != nil {
			return oop.Invalid, err
		}
		if err := in.s.Store(assoc, in.s.Symbol("value"), a[0]); err != nil {
			return oop.Invalid, err
		}
		return assoc, nil
	})
	in.reg("Object", "isKindOf:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		for c := in.classOf(r); c.IsHeap(); {
			if c == a[0] {
				return oop.True, nil
			}
			sup, _, err := in.s.Fetch(c, in.wkSuper())
			if err != nil {
				return oop.Invalid, err
			}
			c = sup
		}
		return oop.False, nil
	})
	in.reg("Object", "isMemberOf:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		return oop.FromBool(in.classOf(r) == a[0]), nil
	})
	in.reg("Object", "respondsTo:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		sel, ok := in.s.SymbolName(a[0])
		if !ok {
			if s, ok2 := in.stringValue(a[0]); ok2 {
				sel = s
			} else {
				return oop.False, nil
			}
		}
		for c := in.classOf(r); c.IsHeap(); {
			if m, _, _ := in.methodIn(c, sel); m != nil {
				return oop.True, nil
			}
			if _, ok := in.prims[primKey{class: c, selector: sel}]; ok {
				return oop.True, nil
			}
			sup, _, err := in.s.Fetch(c, in.wkSuper())
			if err != nil {
				return oop.Invalid, err
			}
			c = sup
		}
		return oop.False, nil
	})
	// Raw labeled-set element protocol (the GSDM view of every object).
	in.reg("Object", "at:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		v, _, err := in.s.Fetch(r, a[0])
		return v, err
	})
	in.reg("Object", "at:put:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		if err := in.checkConstraint(r, a[0], a[1]); err != nil {
			return oop.Invalid, err
		}
		if err := in.s.Store(r, a[0], a[1]); err != nil {
			return oop.Invalid, err
		}
		return a[1], nil
	})
	in.reg("Object", "at:atTime:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		if !a[1].IsSmallInt() {
			return oop.Invalid, fmt.Errorf("opal: time must be an integer")
		}
		v, _, err := in.s.FetchAt(r, a[0], oop.Time(a[1].Int()))
		return v, err
	})
	in.reg("Object", "removeElement:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		if err := in.s.Remove(r, a[0]); err != nil {
			return oop.Invalid, err
		}
		return r, nil
	})
	in.reg("Object", "elementNames", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		names, err := in.s.ElementNames(r)
		if err != nil {
			return oop.Invalid, err
		}
		var visible []oop.OOP
		for _, n := range names {
			if !in.isHiddenName(n) {
				visible = append(visible, n)
			}
		}
		return in.newArrayWith(visible)
	})
	in.reg("Object", "copy", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		if !r.IsHeap() {
			return r, nil
		}
		ob, err := in.s.Object(r)
		if err != nil {
			return oop.Invalid, err
		}
		cp, err := in.s.NewObjectIn(ob.Class, ob.Seg)
		if err != nil {
			return oop.Invalid, err
		}
		if ob.Format == object.FormatBytes {
			b, err := in.s.BytesOf(r)
			if err != nil {
				return oop.Invalid, err
			}
			if err := in.s.SetBytes(cp, b); err != nil {
				return oop.Invalid, err
			}
			return cp, nil
		}
		names, err := in.s.ElementNames(r)
		if err != nil {
			return oop.Invalid, err
		}
		for _, n := range names {
			v, _, err := in.s.Fetch(r, n)
			if err != nil {
				return oop.Invalid, err
			}
			if err := in.s.Store(cp, n, v); err != nil {
				return oop.Invalid, err
			}
		}
		return cp, nil
	})

	// Boolean
	in.reg("Boolean", "not", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		b, ok := r.Bool()
		if !ok {
			return oop.Invalid, fmt.Errorf("opal: not on non-Boolean")
		}
		return oop.FromBool(!b), nil
	})
	in.reg("Boolean", "&", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		rb, ok1 := r.Bool()
		ab, ok2 := a[0].Bool()
		if !ok1 || !ok2 {
			return oop.Invalid, fmt.Errorf("opal: & on non-Boolean")
		}
		return oop.FromBool(rb && ab), nil
	})
	in.reg("Boolean", "|", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		rb, ok1 := r.Bool()
		ab, ok2 := a[0].Bool()
		if !ok1 || !ok2 {
			return oop.Invalid, fmt.Errorf("opal: | on non-Boolean")
		}
		return oop.FromBool(rb || ab), nil
	})
	// Non-inlined control flow (block arguments as values).
	boolBlock := func(sel string) primFn {
		return func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
			b, ok := r.Bool()
			if !ok {
				return oop.Invalid, fmt.Errorf("opal: %s on non-Boolean", sel)
			}
			run := func(v oop.OOP) (oop.OOP, error) {
				if cl, isBlock := in.blockFor(v); isBlock {
					return in.callBlock(cl, nil)
				}
				return v, nil
			}
			switch sel {
			case "ifTrue:":
				if b {
					return run(a[0])
				}
				return oop.Nil, nil
			case "ifFalse:":
				if !b {
					return run(a[0])
				}
				return oop.Nil, nil
			case "ifTrue:ifFalse:":
				if b {
					return run(a[0])
				}
				return run(a[1])
			case "ifFalse:ifTrue:":
				if !b {
					return run(a[0])
				}
				return run(a[1])
			case "and:":
				if !b {
					return oop.False, nil
				}
				return run(a[0])
			case "or:":
				if b {
					return oop.True, nil
				}
				return run(a[0])
			}
			return oop.Invalid, fmt.Errorf("opal: bad boolean selector")
		}
	}
	for _, sel := range []string{"ifTrue:", "ifFalse:", "ifTrue:ifFalse:", "ifFalse:ifTrue:", "and:", "or:"} {
		in.reg("Boolean", sel, boolBlock(sel))
	}

	// Numbers (registered on Number; SmallInteger and Float inherit).
	for _, sel := range []string{"+", "-", "*", "/", "//", "\\\\", "<", "<=", ">", ">=", "=", "~="} {
		sel := sel
		in.reg("Number", sel, func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
			return in.numPrim(sel, r, a)
		})
	}
	in.reg("Number", "abs", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		n, ok := in.asNum(r)
		if !ok {
			return oop.Invalid, fmt.Errorf("opal: abs on non-number")
		}
		if n.isFloat {
			return in.s.NewFloat(math.Abs(n.f))
		}
		if n.i < 0 {
			return oop.MustInt(-n.i), nil
		}
		return r, nil
	})
	in.reg("Number", "negated", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		n, _ := in.asNum(r)
		if n.isFloat {
			return in.s.NewFloat(-n.f)
		}
		return oop.MustInt(-n.i), nil
	})
	in.reg("Number", "asFloat", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		n, ok := in.asNum(r)
		if !ok {
			return oop.Invalid, fmt.Errorf("opal: asFloat on non-number")
		}
		return in.s.NewFloat(n.float())
	})
	in.reg("Number", "asInteger", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		n, ok := in.asNum(r)
		if !ok {
			return oop.Invalid, fmt.Errorf("opal: asInteger on non-number")
		}
		if !n.isFloat {
			return r, nil
		}
		return oop.MustInt(int64(n.f)), nil
	})
	in.reg("Number", "asCharacter", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		if !r.IsSmallInt() || r.Int() < 0 || r.Int() > 0x10FFFF {
			return oop.Invalid, fmt.Errorf("opal: asCharacter needs a code point")
		}
		return oop.FromChar(rune(r.Int())), nil
	})
	in.reg("Number", "sqrt", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		n, _ := in.asNum(r)
		return in.s.NewFloat(math.Sqrt(n.float()))
	})
	in.reg("Number", "even", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		n, _ := in.asNum(r)
		return oop.FromBool(!n.isFloat && n.i%2 == 0), nil
	})
	in.reg("Number", "odd", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		n, _ := in.asNum(r)
		return oop.FromBool(!n.isFloat && n.i%2 != 0), nil
	})

	// Character
	in.reg("Character", "asInteger", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		return oop.MustInt(int64(r.Char())), nil
	})
	in.reg("Character", "asString", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		return in.s.NewString(string(r.Char()))
	})
	in.reg("Character", "<", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		if !a[0].IsCharacter() {
			return oop.Invalid, fmt.Errorf("opal: comparing Character with %s", in.safePrint(a[0]))
		}
		return oop.FromBool(r.Char() < a[0].Char()), nil
	})

	// String / Symbol
	strCmp := func(sel string) primFn {
		return func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
			rs, ok1 := in.stringValue(r)
			as, ok2 := in.stringValue(a[0])
			if !ok1 || !ok2 {
				return oop.Invalid, fmt.Errorf("opal: string comparison with non-string")
			}
			switch sel {
			case "<":
				return oop.FromBool(rs < as), nil
			case "<=":
				return oop.FromBool(rs <= as), nil
			case ">":
				return oop.FromBool(rs > as), nil
			case ">=":
				return oop.FromBool(rs >= as), nil
			}
			return oop.Invalid, nil
		}
	}
	for _, sel := range []string{"<", "<=", ">", ">="} {
		in.reg("String", sel, strCmp(sel))
	}
	in.reg("String", ",", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		rs, ok1 := in.stringValue(r)
		as, ok2 := in.stringValue(a[0])
		if !ok2 {
			as = in.safePrint(a[0])
		}
		if !ok1 {
			return oop.Invalid, fmt.Errorf("opal: , on non-string")
		}
		return in.s.NewString(rs + as)
	})
	in.reg("String", "size", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		s, _ := in.stringValue(r)
		return oop.MustInt(int64(len(s))), nil
	})
	in.reg("String", "isEmpty", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		s, _ := in.stringValue(r)
		return oop.FromBool(len(s) == 0), nil
	})
	in.reg("String", "at:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		s, _ := in.stringValue(r)
		if !a[0].IsSmallInt() || a[0].Int() < 1 || a[0].Int() > int64(len(s)) {
			return oop.Invalid, fmt.Errorf("opal: string index out of bounds")
		}
		return oop.FromChar(rune(s[a[0].Int()-1])), nil
	})
	in.reg("String", "at:put:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		s, _ := in.stringValue(r)
		if !a[0].IsSmallInt() || a[0].Int() < 1 || a[0].Int() > int64(len(s)) {
			return oop.Invalid, fmt.Errorf("opal: string index out of bounds")
		}
		if !a[1].IsCharacter() {
			return oop.Invalid, fmt.Errorf("opal: string at:put: needs a Character")
		}
		b := []byte(s)
		b[a[0].Int()-1] = byte(a[1].Char())
		if err := in.s.SetBytes(r, b); err != nil {
			return oop.Invalid, err
		}
		return a[1], nil
	})
	in.reg("String", "copyFrom:to:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		s, _ := in.stringValue(r)
		if !a[0].IsSmallInt() || !a[1].IsSmallInt() {
			return oop.Invalid, fmt.Errorf("opal: copyFrom:to: needs integers")
		}
		from, to := a[0].Int(), a[1].Int()
		if from < 1 || to > int64(len(s)) || from > to+1 {
			return oop.Invalid, fmt.Errorf("opal: copyFrom:to: out of bounds")
		}
		return in.s.NewString(s[from-1 : to])
	})
	in.reg("String", "asSymbol", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		s, _ := in.stringValue(r)
		return in.s.Symbol(s), nil
	})
	in.reg("String", "asString", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		s, _ := in.stringValue(r)
		if in.s.ClassOf(r) == in.s.DB().Kernel().Symbol {
			return in.s.NewString(s)
		}
		return r, nil
	})
	in.reg("String", "asUppercase", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		s, _ := in.stringValue(r)
		return in.s.NewString(strings.ToUpper(s))
	})
	in.reg("String", "asLowercase", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		s, _ := in.stringValue(r)
		return in.s.NewString(strings.ToLower(s))
	})
	in.reg("String", "includesString:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		rs, _ := in.stringValue(r)
		as, ok := in.stringValue(a[0])
		if !ok {
			return oop.Invalid, fmt.Errorf("opal: includesString: needs a string")
		}
		return oop.FromBool(strings.Contains(rs, as)), nil
	})
	in.reg("String", "do:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		s, _ := in.stringValue(r)
		cl, err := in.mustBlock(a[0])
		if err != nil {
			return oop.Invalid, err
		}
		for _, c := range s {
			if _, err := in.callBlock(cl, []oop.OOP{oop.FromChar(c)}); err != nil {
				return oop.Invalid, err
			}
		}
		return r, nil
	})

	// Class (class-side behavior; classes are instances of Class)
	in.reg("Class", "new", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		return in.instantiate(r, 0)
	})
	in.reg("Class", "new:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		if !a[0].IsSmallInt() || a[0].Int() < 0 {
			return oop.Invalid, fmt.Errorf("opal: new: needs a non-negative integer")
		}
		return in.instantiate(r, a[0].Int())
	})
	in.reg("Class", "name", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		v, _, err := in.s.Fetch(r, in.s.Symbol("name"))
		return v, err
	})
	in.reg("Class", "superclass", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		v, _, err := in.s.Fetch(r, in.wkSuper())
		return v, err
	})
	in.reg("Class", "instVarNames", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		v, _, err := in.s.Fetch(r, in.s.Symbol("instVarNames"))
		return v, err
	})
	in.reg("Class", "comment:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		if err := in.s.Store(r, in.s.Symbol("comment"), a[0]); err != nil {
			return oop.Invalid, err
		}
		return r, nil
	})
	subclassPrim := func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		name, ok := in.stringValue(a[0])
		if !ok {
			return oop.Invalid, fmt.Errorf("opal: subclass name must be a string")
		}
		var ivars []string
		if len(a) > 1 && a[1] != oop.Nil {
			vals, err := in.arrayValues(a[1])
			if err != nil {
				return oop.Invalid, err
			}
			for _, v := range vals {
				s, ok := in.stringValue(v)
				if !ok {
					if sym, ok2 := in.s.SymbolName(v); ok2 {
						s = sym
					} else {
						return oop.Invalid, fmt.Errorf("opal: instVarNames must be strings or symbols")
					}
				}
				ivars = append(ivars, s)
			}
		}
		return in.defineClass(name, r, ivars)
	}
	in.reg("Class", "subclass:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		return subclassPrim(in, r, a[:1])
	})
	in.reg("Class", "subclass:instVarNames:", subclassPrim)
	in.reg("Class", "subclass:instVarNames:classComment:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		cls, err := subclassPrim(in, r, a[:2])
		if err != nil {
			return oop.Invalid, err
		}
		if err := in.s.Store(cls, in.s.Symbol("comment"), a[2]); err != nil {
			return oop.Invalid, err
		}
		return cls, nil
	})
	in.reg("Class", "compile:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		src, ok := in.stringValue(a[0])
		if !ok {
			return oop.Invalid, fmt.Errorf("opal: compile: needs method source")
		}
		return in.defineMethod(r, src)
	})
	in.reg("Class", "removeSelector:", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		sel, ok := in.s.SymbolName(a[0])
		if !ok {
			return oop.Invalid, fmt.Errorf("opal: removeSelector: needs a symbol")
		}
		dict, _, err := in.s.Fetch(r, in.s.Symbol("methods"))
		if err != nil {
			return oop.Invalid, err
		}
		if err := in.s.Remove(dict, in.s.Symbol(sel)); err != nil {
			return oop.Invalid, err
		}
		delete(in.cache, cacheKey{class: r.Serial(), selector: sel})
		return r, nil
	})
	in.reg("Class", "selectors", func(in *Interp, r oop.OOP, a []oop.OOP) (oop.OOP, error) {
		dict, ok, err := in.s.Fetch(r, in.s.Symbol("methods"))
		if err != nil || !ok {
			return in.newArrayWith(nil)
		}
		names, err := in.s.ElementNames(dict)
		if err != nil {
			return oop.Invalid, err
		}
		return in.newArrayWith(names)
	})

	in.installCollectionPrims()
	in.installSystemPrims()
	in.installBlockPrims()
	in.installConstraintPrims()
	in.installReflectionPrims()
	in.installHistoryPrims()
}

// arrayValues extracts the ordered values of an indexed object.
func (in *Interp) arrayValues(arr oop.OOP) ([]oop.OOP, error) {
	n, err := in.arraySize(arr)
	if err != nil {
		return nil, err
	}
	out := make([]oop.OOP, 0, n)
	for i := int64(1); i <= n; i++ {
		v, _, err := in.s.Fetch(arr, oop.MustInt(i))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// instantiate creates an instance of class with an optional indexed size.
func (in *Interp) instantiate(class oop.OOP, size int64) (oop.OOP, error) {
	o, err := in.s.NewObject(class)
	if err != nil {
		return oop.Invalid, err
	}
	f, _, _ := in.s.Fetch(class, in.s.Symbol("format"))
	if f.IsSmallInt() && object.Format(f.Int()) == object.FormatIndexed {
		if err := in.setArraySize(o, size); err != nil {
			return oop.Invalid, err
		}
		for i := int64(1); i <= size; i++ {
			if err := in.s.Store(o, oop.MustInt(i), oop.Nil); err != nil {
				return oop.Invalid, err
			}
		}
	}
	return o, nil
}

// defineClass creates a new persistent class and binds it as a global.
func (in *Interp) defineClass(name string, super oop.OOP, ivars []string) (oop.OOP, error) {
	if existing, ok := in.s.Global(name); ok {
		// Redefinition: keep identity, update superclass and ivars.
		if in.s.ClassOf(existing) != in.s.DB().Kernel().Class {
			return oop.Invalid, fmt.Errorf("opal: global %q is not a class", name)
		}
		if err := in.s.Store(existing, in.wkSuper(), super); err != nil {
			return oop.Invalid, err
		}
		arr, err := in.symbolArray(ivars)
		if err != nil {
			return oop.Invalid, err
		}
		if err := in.s.Store(existing, in.s.Symbol("instVarNames"), arr); err != nil {
			return oop.Invalid, err
		}
		in.cache = make(map[cacheKey]*cacheEntry)
		return existing, nil
	}
	k := in.s.DB().Kernel()
	cls, err := in.s.NewObject(k.Class)
	if err != nil {
		return oop.Invalid, err
	}
	if err := in.s.Store(cls, in.s.Symbol("name"), in.s.Symbol(name)); err != nil {
		return oop.Invalid, err
	}
	if err := in.s.Store(cls, in.wkSuper(), super); err != nil {
		return oop.Invalid, err
	}
	arr, err := in.symbolArray(ivars)
	if err != nil {
		return oop.Invalid, err
	}
	if err := in.s.Store(cls, in.s.Symbol("instVarNames"), arr); err != nil {
		return oop.Invalid, err
	}
	// Instances share the superclass's storage format.
	f, _, _ := in.s.Fetch(super, in.s.Symbol("format"))
	if !f.IsSmallInt() {
		f = oop.MustInt(int64(object.FormatNamed))
	}
	if err := in.s.Store(cls, in.s.Symbol("format"), f); err != nil {
		return oop.Invalid, err
	}
	dict, err := in.s.NewObject(k.Dictionary)
	if err != nil {
		return oop.Invalid, err
	}
	if err := in.s.Store(cls, in.s.Symbol("methods"), dict); err != nil {
		return oop.Invalid, err
	}
	if err := in.s.SetGlobal(name, cls); err != nil {
		return oop.Invalid, err
	}
	return cls, nil
}

func (in *Interp) symbolArray(names []string) (oop.OOP, error) {
	vals := make([]oop.OOP, len(names))
	for i, n := range names {
		vals[i] = in.s.Symbol(n)
	}
	return in.newArrayWith(vals)
}

// defineMethod parses a method source, validates it, and stores it in the
// class's method dictionary.
func (in *Interp) defineMethod(class oop.OOP, src string) (oop.OOP, error) {
	ast, err := parseMethod(src)
	if err != nil {
		return oop.Invalid, err
	}
	ivars, err := in.allInstVarNames(class)
	if err != nil {
		return oop.Invalid, err
	}
	if _, err := compileMethod(ast, src, ivars); err != nil {
		return oop.Invalid, err
	}
	dict, ok, err := in.s.Fetch(class, in.s.Symbol("methods"))
	if err != nil {
		return oop.Invalid, err
	}
	if !ok || !dict.IsHeap() {
		d, err := in.s.NewObject(in.s.DB().Kernel().Dictionary)
		if err != nil {
			return oop.Invalid, err
		}
		if err := in.s.Store(class, in.s.Symbol("methods"), d); err != nil {
			return oop.Invalid, err
		}
		dict = d
	}
	srcObj, err := in.s.NewString(src)
	if err != nil {
		return oop.Invalid, err
	}
	if err := in.s.Store(dict, in.s.Symbol(ast.selector), srcObj); err != nil {
		return oop.Invalid, err
	}
	delete(in.cache, cacheKey{class: class.Serial(), selector: ast.selector})
	return in.s.Symbol(ast.selector), nil
}

// --- Calculus query support ---

// runQuery executes a calculus query string and returns the rows as an
// OrderedCollection of Dictionaries keyed by the target labels.
func (in *Interp) runQuery(src string, naive bool) (oop.OOP, error) {
	var rows []algebra.Tuple
	var err error
	if naive {
		rows, _, err = algebra.RunNaive(in.s, src)
	} else {
		rows, _, err = algebra.Run(in.s, src)
	}
	if err != nil {
		return oop.Invalid, err
	}
	return in.rowsToCollection(rows)
}

// rowsToCollection materializes query result tuples as an
// OrderedCollection of Dictionaries keyed by the target labels.
func (in *Interp) rowsToCollection(rows []algebra.Tuple) (oop.OOP, error) {
	k := in.s.DB().Kernel()
	out, err := in.s.NewObject(k.OrderedCollection)
	if err != nil {
		return oop.Invalid, err
	}
	for i, row := range rows {
		d, err := in.s.NewObject(k.Dictionary)
		if err != nil {
			return oop.Invalid, err
		}
		for j, label := range row.Labels {
			if err := in.s.Store(d, in.s.Symbol(label), row.Values[j]); err != nil {
				return oop.Invalid, err
			}
		}
		if err := in.s.Store(out, oop.MustInt(int64(i+1)), d); err != nil {
			return oop.Invalid, err
		}
	}
	if err := in.setArraySize(out, int64(len(rows))); err != nil {
		return oop.Invalid, err
	}
	return out, nil
}

// runQueryParallel executes a calculus query with the optimized plan's
// outer scan fanned across the default worker pool. Results are identical
// to runQuery's optimized mode.
func (in *Interp) runQueryParallel(src string) (oop.OOP, error) {
	q, err := calculus.Parse(src)
	if err != nil {
		return oop.Invalid, err
	}
	p, err := algebra.Optimize(q, in.s)
	if err != nil {
		return oop.Invalid, err
	}
	rows, _, err := p.ExecParallel(in.s, 0)
	if err != nil {
		return oop.Invalid, err
	}
	return in.rowsToCollection(rows)
}

// explainQuery returns the optimized plan for a query string.
func (in *Interp) explainQuery(src string) (string, error) {
	q, err := calculus.Parse(src)
	if err != nil {
		return "", err
	}
	p, err := algebra.Optimize(q, in.s)
	if err != nil {
		return "", err
	}
	return p.Explain(), nil
}

// explainParallelQuery renders the optimized plan annotated with the
// parallel fan-out the executor would apply.
func (in *Interp) explainParallelQuery(src string) (string, error) {
	q, err := calculus.Parse(src)
	if err != nil {
		return "", err
	}
	p, err := algebra.Optimize(q, in.s)
	if err != nil {
		return "", err
	}
	return p.ExplainParallel(0), nil
}
