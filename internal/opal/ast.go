package opal

// AST node types for OPAL. The parser produces these; the compiler lowers
// them to bytecode.

type node interface{ pos() int }

type base struct{ at int }

func (b base) pos() int { return b.at }

// methodAST is a complete method: pattern, temporaries, statements.
type methodAST struct {
	base
	selector string   // canonical selector ("at:put:", "+", "size")
	params   []string // argument names
	temps    []string
	body     []node // statements; a ^-return is a returnNode
}

// literalNode is a literal value.
type literalNode struct {
	base
	kind literalKind
	i    int64
	f    float64
	s    string         // string/symbol/char text
	arr  []*literalNode // #( ... ) elements
}

type literalKind uint8

const (
	litInt literalKind = iota
	litFloat
	litString
	litSymbol
	litChar
	litTrue
	litFalse
	litNil
	litArray
)

// varNode references a name: temp, instance variable, global, self, super.
type varNode struct {
	base
	name string
}

// assignNode assigns to a variable or a path.
type assignNode struct {
	base
	target node // varNode or pathNode
	value  node
}

// returnNode is ^expr.
type returnNode struct {
	base
	value node
}

// sendNode is a message send.
type sendNode struct {
	base
	receiver node
	selector string
	args     []node
	super    bool // receiver was 'super'
}

// cascadeNode sends several messages to the same receiver.
type cascadeNode struct {
	base
	receiver node      // receiver of the first message
	sends    []casSend // each subsequent message
}

type casSend struct {
	selector string
	args     []node
}

// blockNode is a block literal.
type blockNode struct {
	base
	params []string
	temps  []string
	body   []node
}

// calculusNode is an embedded set-calculus expression: { {T: v} where ... }.
// The raw source is parsed at compile time; enclosing-method variables it
// references become runtime bindings ("it can include procedural parts",
// §5.4).
type calculusNode struct {
	base
	src string
}

// pathNode is an OPAL path expression: root '!' seg ('!' seg)*.
type pathNode struct {
	base
	root node // usually a varNode
	segs []pathSeg
}

type pathSeg struct {
	name    string // element name (symbol); empty when index
	isIndex bool
	index   int64
	timeExp node // expression after '@', or nil
}
