package opal

import (
	"fmt"
	"sort"

	"repro/internal/oop"
)

// imageVersion guards one-time installation of the OPAL kernel image:
// generic collection/number protocol written in OPAL itself, plus the
// System and Transcript singletons. Bump when kernel sources change so
// existing databases pick up the new image.
const imageVersion = 2

// kernelSources maps class name -> method sources, written in OPAL. These
// build the generic protocol on top of the Go primitives (each concrete
// collection provides do:; everything else follows).
var kernelSources = map[string][]string{
	"Object": {
		"printNl Transcript show: self printString; cr",
		"ifNil: aBlock ^self isNil ifTrue: [aBlock value] ifFalse: [self]",
		"ifNotNil: aBlock ^self isNil ifTrue: [nil] ifFalse: [aBlock value: self]",
		"asString ^self printString",
	},
	"Number": {
		"max: aNumber self > aNumber ifTrue: [^self]. ^aNumber",
		"min: aNumber self < aNumber ifTrue: [^self]. ^aNumber",
		"between: lo and: hi ^(self >= lo) and: [self <= hi]",
		"squared ^self * self",
		"isZero ^self = 0",
	},
	"Collection": {
		"select: aBlock | result | result := OrderedCollection new. self do: [:each | (aBlock value: each) ifTrue: [result add: each]]. ^result",
		"reject: aBlock ^self select: [:each | (aBlock value: each) not]",
		"collect: aBlock | result | result := OrderedCollection new. self do: [:each | result add: (aBlock value: each)]. ^result",
		"detect: aBlock ^self detect: aBlock ifNone: [self error: 'element not found']",
		"detect: aBlock ifNone: exceptionBlock self do: [:each | (aBlock value: each) ifTrue: [^each]]. ^exceptionBlock value",
		"inject: start into: aBlock | acc | acc := start. self do: [:each | acc := aBlock value: acc value: each]. ^acc",
		"includes: anObject self do: [:each | each = anObject ifTrue: [^true]]. ^false",
		"isEmpty ^self size = 0",
		"notEmpty ^self isEmpty not",
		"anySatisfy: aBlock self do: [:each | (aBlock value: each) ifTrue: [^true]]. ^false",
		"allSatisfy: aBlock self do: [:each | (aBlock value: each) ifFalse: [^false]]. ^true",
		"count: aBlock | n | n := 0. self do: [:each | (aBlock value: each) ifTrue: [n := n + 1]]. ^n",
		"addAll: aCollection aCollection do: [:each | self add: each]. ^aCollection",
		"asOrderedCollection | r | r := OrderedCollection new. self do: [:e | r add: e]. ^r",
		"sum | acc | acc := 0. self do: [:e | acc := acc + e]. ^acc",
		"maxValue | best | best := nil. self do: [:e | (best isNil or: [e > best]) ifTrue: [best := e]]. ^best",
		"minValue | best | best := nil. self do: [:e | (best isNil or: [e < best]) ifTrue: [best := e]]. ^best",
		"average ^self sum / self size",
		"do: aBlock separatedBy: sepBlock | first | first := true. self do: [:e | first ifFalse: [sepBlock value]. first := false. aBlock value: e]",
		"asSet | s | s := Set new. self do: [:e | s add: e]. ^s",
		"asBag | b | b := Bag new. self do: [:e | b add: e]. ^b",
		"asSortedCollection: aBlock ^self asOrderedCollection sort: aBlock",
		"occurrencesOf: anObject ^self count: [:e | e = anObject]",
	},
}

// installKernelMethods installs the kernel image once per database and
// re-resolves the System/Transcript singletons for this interpreter.
func (in *Interp) installKernelMethods() error {
	if v, ok := in.s.Global("OpalImageVersion"); ok && v.IsSmallInt() && v.Int() >= imageVersion {
		return nil
	}
	// First interpreter on a fresh database: build the image. This needs
	// write access to the published globals segment, which every user has.
	k := in.s.DB().Kernel()
	// SystemAccess / TranscriptStream classes and their singletons.
	sysCls, err := in.defineClass("SystemAccess", k.Object, nil)
	if err != nil {
		return fmt.Errorf("opal: install image: %w", err)
	}
	trCls, err := in.defineClass("TranscriptStream", k.Object, nil)
	if err != nil {
		return err
	}
	sys, err := in.s.NewObject(sysCls)
	if err != nil {
		return err
	}
	if err := in.s.SetGlobal("System", sys); err != nil {
		return err
	}
	tr, err := in.s.NewObject(trCls)
	if err != nil {
		return err
	}
	if err := in.s.SetGlobal("Transcript", tr); err != nil {
		return err
	}
	// Kernel method sources. Install in sorted class order: each compiled
	// method allocates OOPs, and identical bootstraps must assign identical
	// OOPs so fresh database images are byte-deterministic.
	classNames := make([]string, 0, len(kernelSources))
	for clsName := range kernelSources {
		classNames = append(classNames, clsName)
	}
	sort.Strings(classNames)
	for _, clsName := range classNames {
		cls, ok := in.s.Global(clsName)
		if !ok {
			return fmt.Errorf("opal: kernel class %s missing", clsName)
		}
		for _, src := range kernelSources[clsName] {
			if _, err := in.defineMethod(cls, src); err != nil {
				return fmt.Errorf("opal: kernel method for %s: %w", clsName, err)
			}
		}
	}
	if err := in.s.SetGlobal("OpalImageVersion", oop.MustInt(imageVersion)); err != nil {
		return err
	}
	if err := in.s.CommitKernel(); err != nil {
		return fmt.Errorf("opal: committing kernel image: %w", err)
	}
	return nil
}
