package opal

import (
	"strings"
	"testing"

	"repro/internal/auth"
	"repro/internal/core"
)

func newInterp(t testing.TB) *Interp {
	t.Helper()
	db, err := core.Open(t.TempDir(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	s, err := db.NewSession(auth.SystemUser, "swordfish")
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewInterp(s)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// evalCases runs source -> expected printString pairs.
func evalCases(t *testing.T, in *Interp, cases [][2]string) {
	t.Helper()
	for _, c := range cases {
		got, err := in.ExecuteToString(c[0])
		if err != nil {
			t.Errorf("%q: %v", c[0], err)
			continue
		}
		if got != c[1] {
			t.Errorf("%q = %q, want %q", c[0], got, c[1])
		}
	}
}

func TestLiteralsAndArithmetic(t *testing.T) {
	in := newInterp(t)
	evalCases(t, in, [][2]string{
		{"3 + 4", "7"},
		{"3 - 4", "-1"},
		{"6 * 7", "42"},
		{"7 // 2", "3"},
		{"-7 // 2", "-4"},
		{"7 \\\\ 2", "1"},
		{"10 / 2", "5"},
		{"7 / 2", "3.5"},
		{"3.5 + 1", "4.5"},
		{"2 < 3", "true"},
		{"3 <= 3", "true"},
		{"4 > 5", "false"},
		{"3 = 3", "true"},
		{"3 ~= 4", "true"},
		{"3 max: 7", "7"},
		{"3 min: 7", "3"},
		{"5 between: 1 and: 10", "true"},
		{"(-3) abs", "3"},
		{"4 squared", "16"},
		{"9 sqrt", "3.0"},
		{"4 even", "true"},
		{"3 odd", "true"},
		{"1000000 * 1000000", "1000000000000"},
		{"'abc'", "'abc'"},
		{"#foo", "#foo"},
		{"$a", "$a"},
		{"true", "true"},
		{"nil", "nil"},
		{"nil isNil", "true"},
		{"3 isNil", "false"},
		{"2 + 3 * 4", "20"}, // Smalltalk left-to-right binary precedence
	})
}

func TestStrings(t *testing.T) {
	in := newInterp(t)
	evalCases(t, in, [][2]string{
		{"'abc' , 'def'", "'abcdef'"},
		{"'hello' size", "5"},
		{"'hello' at: 1", "$h"},
		{"'abc' asSymbol", "#abc"},
		{"#abc asString", "'abc'"},
		{"'abc' asUppercase", "'ABC'"},
		{"'Hello World' includesString: 'World'", "true"},
		{"'abc' < 'abd'", "true"},
		{"'abc' = 'abc'", "true"},
		{"'it''s'", "'it''s'"},
		{"'hello' copyFrom: 2 to: 4", "'ell'"},
		{"'hello' isEmpty", "false"},
		{"'' isEmpty", "true"},
	})
}

func TestVariablesAndAssignment(t *testing.T) {
	in := newInterp(t)
	evalCases(t, in, [][2]string{
		{"| x | x := 5. x * 2", "10"},
		{"| x y | x := 3. y := x + 1. x + y", "7"},
		{"| x | x := 1. x := x + 1. x := x + 1. x", "3"},
	})
}

func TestControlFlow(t *testing.T) {
	in := newInterp(t)
	evalCases(t, in, [][2]string{
		{"3 > 2 ifTrue: ['yes'] ifFalse: ['no']", "'yes'"},
		{"3 < 2 ifTrue: ['yes'] ifFalse: ['no']", "'no'"},
		{"3 > 2 ifTrue: [99]", "99"},
		{"3 < 2 ifTrue: [99]", "nil"},
		{"(3 > 2) and: [4 > 3]", "true"},
		{"(3 > 2) and: [4 < 3]", "false"},
		{"(3 < 2) or: [4 > 3]", "true"},
		{"true & false", "false"},
		{"true | false", "true"},
		{"false not", "true"},
		{"| i | i := 0. [i < 5] whileTrue: [i := i + 1]. i", "5"},
		{"| s | s := 0. 1 to: 5 do: [:i | s := s + i]. s", "15"},
		{"| s | s := 0. 3 timesRepeat: [s := s + 10]. s", "30"},
		{"| i | i := 10. [i > 20] whileFalse: [i := i + 3]. i", "22"},
	})
}

func TestBlocks(t *testing.T) {
	in := newInterp(t)
	evalCases(t, in, [][2]string{
		{"[3 + 4] value", "7"},
		{"[:x | x * 2] value: 21", "42"},
		{"[:a :b | a + b] value: 1 value: 2", "3"},
		{"| b | b := [:x | x + 1]. b value: (b value: 5)", "7"},
		{"[:x | x] numArgs", "1"},
		// Closure over enclosing temps.
		{"| n add | n := 10. add := [:x | x + n]. n := 20. add value: 1", "21"},
		// Block held in a variable: whileTrue: via primitive.
		{"| i c | i := 0. c := [i < 3]. c whileTrue: [i := i + 1]. i", "3"},
	})
}

func TestClassDefinitionAndMethods(t *testing.T) {
	in := newInterp(t)
	src := `Object subclass: 'Employee' instVarNames: #('name' 'salary' 'depts')`
	if _, err := in.Execute(src); err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{
		"name ^name",
		"name: aString name := aString",
		"salary ^salary",
		"salary: aNumber salary := aNumber",
		"raise: amount salary := salary + amount. ^salary",
	} {
		if _, err := in.Execute("Employee compile: '" + strings.ReplaceAll(m, "'", "''") + "'"); err != nil {
			t.Fatalf("compile %q: %v", m, err)
		}
	}
	evalCases(t, in, [][2]string{
		{"| e | e := Employee new. e name: 'Ellen'. e name", "'Ellen'"},
		{"| e | e := Employee new. e salary: 100. e raise: 50. e salary", "150"},
		{"Employee new printString", "'an Employee'"},
		{"Employee name", "#Employee"},
		{"Employee superclass name", "#Object"},
		{"(Employee new) class name", "#Employee"},
		{"Employee new isKindOf: Object", "true"},
		{"3 isKindOf: Number", "true"},
		{"3 isMemberOf: Number", "false"},
		{"(Employee new respondsTo: #raise:)", "true"},
		{"(Employee new respondsTo: #fire)", "false"},
	})
}

func TestInheritanceAndSuper(t *testing.T) {
	in := newInterp(t)
	setup := []string{
		`Object subclass: 'Employee' instVarNames: #('name' 'salary')`,
		`Employee compile: 'describe ^''employee'''`,
		`Employee compile: 'title ^''worker'''`,
		// Paper §4.1: "A subclass Manager of class Employee could define
		// additional structure ... and additional messages".
		`Employee subclass: 'Manager' instVarNames: #('department')`,
		`Manager compile: 'describe ^super describe , '' (manager)'''`,
		`Manager compile: 'department: d department := d'`,
		`Manager compile: 'department ^department'`,
	}
	for _, s := range setup {
		if _, err := in.Execute(s); err != nil {
			t.Fatalf("%q: %v", s, err)
		}
	}
	evalCases(t, in, [][2]string{
		{"Manager new describe", "'employee (manager)'"},
		{"Manager new title", "'worker'"}, // inherited
		{"Manager superclass name", "#Employee"},
		{"| m | m := Manager new. m department: 'Sales'. m department", "'Sales'"},
		// Managers are employees.
		{"Manager new isKindOf: Employee", "true"},
		{"Employee new isKindOf: Manager", "false"},
	})
}

func TestNonLocalReturn(t *testing.T) {
	in := newInterp(t)
	setup := []string{
		`Object subclass: 'Finder' instVarNames: #()`,
		`Finder compile: 'firstOver: n in: aColl aColl do: [:e | e > n ifTrue: [^e]]. ^nil'`,
	}
	for _, s := range setup {
		if _, err := in.Execute(s); err != nil {
			t.Fatal(err)
		}
	}
	evalCases(t, in, [][2]string{
		{"| c | c := OrderedCollection new. c add: 1; add: 5; add: 9. Finder new firstOver: 3 in: c", "5"},
		{"| c | c := OrderedCollection new. c add: 1. Finder new firstOver: 3 in: c", "nil"},
	})
}

func TestCollections(t *testing.T) {
	in := newInterp(t)
	evalCases(t, in, [][2]string{
		{"#(1 2 3)", "an Array( 1 2 3 )"},
		{"#(1 2 3) size", "3"},
		{"#(10 20 30) at: 2", "20"},
		{"| a | a := Array new: 3. a at: 1 put: 9. a", "an Array( 9 nil nil )"},
		{"#(1 2 3) first", "1"},
		{"#(1 2 3) last", "3"},
		{"| c | c := OrderedCollection new. c add: 5. c add: 6. c size", "2"},
		{"| c | c := OrderedCollection new. c add: 5; add: 6; add: 7. c removeLast. c size", "2"},
		{"(#(1 2 3 4) select: [:x | x even])", "an OrderedCollection( 2 4 )"},
		{"(#(1 2 3) collect: [:x | x * x])", "an OrderedCollection( 1 4 9 )"},
		{"(#(1 2 3 4) reject: [:x | x even])", "an OrderedCollection( 1 3 )"},
		{"#(1 2 3 4) detect: [:x | x > 2]", "3"},
		{"#(1 2 3) detect: [:x | x > 9] ifNone: [0]", "0"},
		{"#(1 2 3 4) inject: 0 into: [:a :b | a + b]", "10"},
		{"#(1 2 3) includes: 2", "true"},
		{"#(1 2 3) includes: 9", "false"},
		{"#(1 2 3) isEmpty", "false"},
		{"#(1 2 3 4) count: [:x | x odd]", "2"},
		{"#(1 2 3) sum", "6"},
		{"#(3 9 2) maxValue", "9"},
		{"#(1 2 3) anySatisfy: [:x | x = 2]", "true"},
		{"#(1 2 3) allSatisfy: [:x | x > 0]", "true"},
		{"#(1 2 3) allSatisfy: [:x | x > 1]", "false"},
		{"#($a $b) at: 1", "$a"},
		{"#(#x 'y' 2.5)", "an Array( #x 'y' 2.5 )"},
		{"#(foo bar)", "an Array( #foo #bar )"}, // bare idents are symbols
	})
}

func TestSetsAndBags(t *testing.T) {
	in := newInterp(t)
	evalCases(t, in, [][2]string{
		{"| s | s := Set new. s add: 3. s add: 3. s size", "1"},
		{"| s | s := Bag new. s add: 3. s add: 3. s size", "2"},
		{"| s | s := Set new. s add: 1; add: 2. s includes: 2", "true"},
		{"| s | s := Set new. s add: 1; add: 2. s remove: 1. s size", "1"},
		{"| s | s := Set new. s add: 'a'; add: 'b'. (s collect: [:x | x asUppercase]) size", "2"},
		{"| s t | s := Set new. s add: 1; add: 2; add: 3. t := 0. s do: [:e | t := t + e]. t", "6"},
	})
}

func TestDictionary(t *testing.T) {
	in := newInterp(t)
	evalCases(t, in, [][2]string{
		{"| d | d := Dictionary new. d at: #x put: 5. d at: #x", "5"},
		{"| d | d := Dictionary new. d at: 'name' put: 'Ellen'. d at: 'name'", "'Ellen'"},
		{"| d | d := Dictionary new. d at: 3 put: 'three'. d at: 3", "'three'"},
		{"| d | d := Dictionary new. d at: #x put: 1. d includesKey: #x", "true"},
		{"| d | d := Dictionary new. d includesKey: #x", "false"},
		{"| d | d := Dictionary new. d at: #x ifAbsent: [42]", "42"},
		{"| d | d := Dictionary new. d at: #x put: 1. d at: #x ifAbsent: [42]", "1"},
		{"| d | d := Dictionary new. d at: #x put: 1. d removeKey: #x. d includesKey: #x", "false"},
		{"| d | d := Dictionary new. d at: #a put: 1; at: #b put: 2. d size", "2"},
		// Object keys via associations.
		{"| d k | d := Dictionary new. k := Object new. d at: k put: 'v'. d at: k", "'v'"},
		{"| d s | d := Dictionary new. d at: #a put: 1; at: #b put: 2. s := 0. d keysAndValuesDo: [:k :v | s := s + v]. s", "3"},
		{"(3 -> 4) key", "3"},
		{"(3 -> 4) value", "4"},
		{"(3 -> 4) printString", "'3->4'"},
	})
}

func TestPathExpressions(t *testing.T) {
	in := newInterp(t)
	// Build the §5.1 fragment through OPAL itself.
	setup := `| acme depts sales |
		acme := Dictionary new.
		World at: 'Acme' put: acme.
		depts := Dictionary new.
		acme at: 'Departments' put: depts.
		sales := Dictionary new.
		sales at: 'Name' put: 'Sales'.
		sales at: 'Budget' put: 142000.
		depts at: 'A12' put: sales`
	if _, err := in.Execute(setup); err != nil {
		t.Fatal(err)
	}
	evalCases(t, in, [][2]string{
		{"World!Acme!Departments!A12!Name", "'Sales'"},
		{"World!Acme!Departments!A12!Budget", "142000"},
		{"World!'Acme'!'Departments'!'A12'!'Budget'", "142000"},
		// Path assignment (§4.3: circumventing the class protocol).
		{"World!Acme!Departments!A12!Budget := 150000. World!Acme!Departments!A12!Budget", "150000"},
		// Paths from temps.
		{"| d | d := World!Acme!Departments. d!A12!Name", "'Sales'"},
		// Missing element reads as nil.
		{"World!Acme!Nonexistent", "nil"},
	})
}

func TestTemporalOPAL(t *testing.T) {
	in := newInterp(t)
	if _, err := in.Execute(`| acme | acme := Dictionary new. World at: 'Acme' put: acme. acme at: 'president' put: 'Ayn'. System commitTransaction`); err != nil {
		t.Fatal(err)
	}
	t1 := in.s.DB().TxnManager().LastCommitted()
	if _, err := in.Execute(`World!Acme!president := 'Milton'. System commitTransaction`); err != nil {
		t.Fatal(err)
	}
	evalCases(t, in, [][2]string{
		{"World!Acme!president", "'Milton'"},
		{"World!Acme!president@" + itoa(int64(t1)), "'Ayn'"},
		// Dynamic time via parenthesized expression.
		{"World!Acme!president@(" + itoa(int64(t1)) + " + 1)", "'Milton'"},
		// at:atTime: protocol form.
		{"(World at: #Acme) at: #president atTime: " + itoa(int64(t1)), "'Ayn'"},
	})
	// Time dial through System.
	evalCases(t, in, [][2]string{
		{"System timeDial: " + itoa(int64(t1)) + ". World!Acme!president", "'Ayn'"},
		{"System timeDialNow. World!Acme!president", "'Milton'"},
		{"System timeDial", "nil"},
	})
}

func itoa(v int64) string {
	return strings.TrimSpace(strings.Replace(strings.Repeat("", 0)+fmtInt(v), "\n", "", -1))
}

func fmtInt(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}

func TestTransactionsOPAL(t *testing.T) {
	in := newInterp(t)
	evalCases(t, in, [][2]string{
		{"World at: #ctr put: 1. System commitTransaction", "true"},
		{"World!ctr", "1"},
		{"World at: #ctr put: 2. System abortTransaction. World!ctr", "1"},
		{"System time > 0", "true"},
		{"System safeTime = System time", "true"},
		{"System user", "'SystemUser'"},
	})
}

func TestQueryOPAL(t *testing.T) {
	in := newInterp(t)
	setup := `| emps e |
		emps := Dictionary new.
		World at: 'Employees' put: emps.
		e := Dictionary new. e at: 'Name' put: 'Burns'. e at: 'Salary' put: 24650. emps at: 'E62' put: e.
		e := Dictionary new. e at: 'Name' put: 'Peters'. e at: 'Salary' put: 24000. emps at: 'E83' put: e.
		System commitTransaction`
	if _, err := in.Execute(setup); err != nil {
		t.Fatal(err)
	}
	out, err := in.ExecuteToString(`| rows | rows := System query: '{E: e} where (e in World!Employees) and e!Salary > 24500'. rows size`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "1" {
		t.Errorf("query rows = %s", out)
	}
	out, err = in.ExecuteToString(`((System query: '{E: e} where (e in World!Employees) and e!Salary > 24500') at: 1) at: #E`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Burns") {
		t.Errorf("query row = %s", out)
	}
	// Explain shows a plan.
	out, err = in.ExecuteToString(`System explain: '{E: e} where (e in World!Employees) and e!Salary > 24500'`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "scan") {
		t.Errorf("explain = %s", out)
	}
}

func TestTranscript(t *testing.T) {
	in := newInterp(t)
	if _, err := in.Execute("Transcript show: 'Hello'; cr; show: 'World'"); err != nil {
		t.Fatal(err)
	}
	if got := in.TakeOutput(); got != "Hello\nWorld" {
		t.Errorf("transcript = %q", got)
	}
	if _, err := in.Execute("42 printNl"); err != nil {
		t.Fatal(err)
	}
	if got := in.TakeOutput(); got != "42\n" {
		t.Errorf("printNl = %q", got)
	}
}

func TestCascades(t *testing.T) {
	in := newInterp(t)
	evalCases(t, in, [][2]string{
		{"| c | c := OrderedCollection new. c add: 1; add: 2; add: 3. c size", "3"},
		{"| c | c := OrderedCollection new. c add: 1; add: 2; yourself", "an OrderedCollection( 1 2 )"},
	})
}

func TestUserPrintString(t *testing.T) {
	in := newInterp(t)
	setup := []string{
		`Object subclass: 'Point2' instVarNames: #('x' 'y')`,
		`Point2 compile: 'x: ax y: ay x := ax. y := ay'`,
		`Point2 compile: 'printString ^x printString , ''@'' , y printString'`,
	}
	for _, s := range setup {
		if _, err := in.Execute(s); err != nil {
			t.Fatal(err)
		}
	}
	evalCases(t, in, [][2]string{
		{"| p | p := Point2 new. p x: 3 y: 4. p printString", "'3@4'"},
		// Nested in a collection, the override is used too.
		{"| p c | p := Point2 new. p x: 1 y: 2. c := OrderedCollection new. c add: p. c printString", "'an OrderedCollection( 1@2 )'"},
	})
}

func TestErrorsSurface(t *testing.T) {
	in := newInterp(t)
	for _, src := range []string{
		"3 fooBar",           // doesNotUnderstand
		"3 + 'x'",            // type error
		"1/0",                // division by zero
		"#(1 2) at: 5",       // bounds
		"| x | y := 3",       // undeclared assignment target (compile error)
		"nil foo",            // DNU on nil
		"[:x | x] value",     // wrong arity
		"'abc' at: 0",        // string bounds
		"undefinedGlobal",    // unknown name
		"Object subclass: 3", // bad class name
		"self error: 'boom'", // explicit error
	} {
		if _, err := in.Execute(src); err == nil {
			t.Errorf("%q should fail", src)
		}
	}
}

func TestDoesNotUnderstandMessage(t *testing.T) {
	in := newInterp(t)
	_, err := in.Execute("3 fooBar")
	if err == nil || !strings.Contains(err.Error(), "doesNotUnderstand") {
		t.Errorf("err = %v", err)
	}
}

func TestMethodRedefinition(t *testing.T) {
	in := newInterp(t)
	for _, s := range []string{
		`Object subclass: 'Thing' instVarNames: #()`,
		`Thing compile: 'answer ^1'`,
	} {
		if _, err := in.Execute(s); err != nil {
			t.Fatal(err)
		}
	}
	evalCases(t, in, [][2]string{{"Thing new answer", "1"}})
	if _, err := in.Execute(`Thing compile: 'answer ^2'`); err != nil {
		t.Fatal(err)
	}
	evalCases(t, in, [][2]string{{"Thing new answer", "2"}})
	if _, err := in.Execute(`Thing removeSelector: #answer`); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Execute("Thing new answer"); err == nil {
		t.Error("removed selector still dispatches")
	}
}

func TestClassesPersistAcrossSessions(t *testing.T) {
	dir := t.TempDir()
	db, err := core.Open(dir, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := db.NewSession(auth.SystemUser, "swordfish")
	in, err := NewInterp(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{
		`Object subclass: 'Gadget' instVarNames: #('serial')`,
		`Gadget compile: 'serial: s serial := s'`,
		`Gadget compile: 'serial ^serial'`,
		`| g | g := Gadget new. g serial: 77. World at: #g put: g`,
		`System commitTransaction`,
	} {
		if _, err := in.Execute(src); err != nil {
			t.Fatalf("%q: %v", src, err)
		}
	}
	db.Close()

	db2, err := core.Open(dir, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	s2, _ := db2.NewSession(auth.SystemUser, "swordfish")
	in2, err := NewInterp(s2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := in2.ExecuteToString("World!g serial")
	if err != nil {
		t.Fatal(err)
	}
	if out != "77" {
		t.Errorf("persisted method dispatch = %s", out)
	}
	// Methods compiled in the old session still work (source persisted).
	out, err = in2.ExecuteToString("Gadget new serial: 5; serial")
	if err != nil {
		t.Fatal(err)
	}
	if out != "5" {
		t.Errorf("= %s", out)
	}
}

func TestIndexOnOPAL(t *testing.T) {
	in := newInterp(t)
	setup := `| emps e |
		emps := Set new.
		World at: #emps put: emps.
		1 to: 20 do: [:i |
			e := Dictionary new.
			e at: #salary put: i * 100.
			emps add: e].
		System commitTransaction`
	if _, err := in.Execute(setup); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Execute("World!emps indexOn: 'salary'"); err != nil {
		t.Fatal(err)
	}
	out, err := in.ExecuteToString(`System explain: '{E: e} where (e in World!emps) and e!salary = 500'`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "index-scan") {
		t.Errorf("plan after indexOn: = %s", out)
	}
	out, err = in.ExecuteToString(`(System query: '{E: e} where (e in World!emps) and e!salary = 500') size`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "1" {
		t.Errorf("indexed query rows = %s", out)
	}
}

func TestIdentityVsEquality(t *testing.T) {
	in := newInterp(t)
	evalCases(t, in, [][2]string{
		// §4.2: identity vs structural equivalence.
		{"'abc' = 'abc'", "true"},   // equal contents
		{"'abc' == 'abc'", "false"}, // distinct objects
		{"#abc == #abc", "true"},    // symbols are interned
		{"3 = 3.0", "true"},
		{"| a b | a := Object new. b := Object new. a = b", "false"},
		{"| a | a := Object new. a = a", "true"},
		{"| a b | a := Object new. b := a. a == b", "true"},
	})
}

func TestObjectElementProtocol(t *testing.T) {
	in := newInterp(t)
	evalCases(t, in, [][2]string{
		// Raw labeled-set protocol on any object (GSDM view).
		{"| o | o := Object new. o at: #color put: 'red'. o at: #color", "'red'"},
		{"| o | o := Object new. o at: #a put: 1. o at: #b put: 2. o elementNames size", "2"},
		{"| o | o := Object new. o at: #a put: 1. o removeElement: #a. o at: #a", "nil"},
		// Optional instance variables (§4.3): instances differ in structure.
		{"| a b | a := Object new. b := Object new. a at: #extra put: 9. b elementNames size", "0"},
	})
}

func TestCopy(t *testing.T) {
	in := newInterp(t)
	evalCases(t, in, [][2]string{
		{"| o c | o := Object new. o at: #v put: 1. c := o copy. c at: #v put: 2. o at: #v", "1"},
		{"| o c | o := Object new. c := o copy. o == c", "false"},
		{"'abc' copy", "'abc'"},
		{"3 copy", "3"},
	})
}

func TestDeepExpressionNesting(t *testing.T) {
	in := newInterp(t)
	evalCases(t, in, [][2]string{
		{"((1 + 2) * (3 + 4)) - ((2 * 2) + 1)", "16"},
		{"#(#(1 2) #(3 4))", "an Array( an Array( 1 2 ) an Array( 3 4 ) )"},
		{"(#(1 2 3) collect: [:x | #(1 2 3) inject: x into: [:a :b | a + b]]) sum", "24"},
	})
}

func TestRecursionViaMethods(t *testing.T) {
	in := newInterp(t)
	for _, s := range []string{
		`Object subclass: 'MathHelper' instVarNames: #()`,
		`MathHelper compile: 'fact: n n <= 1 ifTrue: [^1]. ^n * (self fact: n - 1)'`,
		`MathHelper compile: 'fib: n n < 2 ifTrue: [^n]. ^(self fib: n - 1) + (self fib: n - 2)'`,
	} {
		if _, err := in.Execute(s); err != nil {
			t.Fatal(err)
		}
	}
	evalCases(t, in, [][2]string{
		{"MathHelper new fact: 10", "3628800"},
		{"MathHelper new fib: 15", "610"},
	})
	// Unbounded recursion hits the depth limit, not a Go stack overflow.
	if _, err := in.Execute(`MathHelper compile: 'loop ^self loop'`); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Execute("MathHelper new loop"); err == nil || !strings.Contains(err.Error(), "depth") {
		t.Errorf("infinite recursion: %v", err)
	}
}

func TestElementNameTyping(t *testing.T) {
	// The §5.4 future-work extension: typed element names.
	in := newInterp(t)
	for _, s := range []string{
		`Object subclass: 'TypedEmployee' instVarNames: #('name' 'salary')`,
		`TypedEmployee compile: 'salary: s salary := s'`,
		`TypedEmployee constrain: #salary to: Number`,
		`TypedEmployee constrain: #name to: String`,
	} {
		if _, err := in.Execute(s); err != nil {
			t.Fatalf("%q: %v", s, err)
		}
	}
	evalCases(t, in, [][2]string{
		// Conforming stores work through every protocol.
		{"| e | e := TypedEmployee new. e salary: 100. e!salary", "100"},
		{"| e | e := TypedEmployee new. e at: #salary put: 3.5. e!salary", "3.5"},
		{"| e | e := TypedEmployee new. e!salary := 7. e!salary", "7"},
		{"| e | e := TypedEmployee new. e at: #name put: 'Ada'. e!name", "'Ada'"},
		// nil is always storable (optional elements).
		{"| e | e := TypedEmployee new. e at: #salary put: nil. e!salary", "nil"},
		// Unconstrained elements stay heterogeneous.
		{"| e | e := TypedEmployee new. e at: #extra put: 'anything'. e!extra", "'anything'"},
		// Introspection.
		{"(TypedEmployee constraintOn: #salary) name", "#Number"},
		{"TypedEmployee constraintOn: #unconstrained", "nil"},
	})
	// Violations fail through every protocol.
	for _, src := range []string{
		"TypedEmployee new salary: 'lots'",              // method assignment
		"TypedEmployee new at: #salary put: 'x'",        // at:put:
		"| e | e := TypedEmployee new. e!salary := 'x'", // path assignment
		"TypedEmployee new at: #name put: 42",
	} {
		if _, err := in.Execute(src); err == nil || !strings.Contains(err.Error(), "constraint") {
			t.Errorf("%q: %v", src, err)
		}
	}
	// Constraints are inherited by subclasses.
	for _, s := range []string{
		`TypedEmployee subclass: 'TypedManager' instVarNames: #('dept')`,
	} {
		if _, err := in.Execute(s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := in.Execute("TypedManager new at: #salary put: 'nope'"); err == nil {
		t.Error("inherited constraint not enforced")
	}
	evalCases(t, in, [][2]string{
		{"| m | m := TypedManager new. m salary: 9. m!salary", "9"},
	})
	// Constraints persist across commits.
	if _, err := in.Execute("World at: #te put: TypedEmployee new. System commitTransaction"); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Execute("(World at: #te) at: #salary put: 'bad'"); err == nil {
		t.Error("constraint not enforced on committed object")
	}
}

func TestReflectionAndSorting(t *testing.T) {
	in := newInterp(t)
	evalCases(t, in, [][2]string{
		{"3 perform: #squared", "9"},
		{"3 perform: #+ with: 4", "7"},
		{"3 perform: 'between:and:' with: 1 with: 5", "true"},
		{"#(3 1 2) asSortedCollection: [:a :b | a <= b]", "an OrderedCollection( 1 2 3 )"},
		{"#(3 1 2) asSortedCollection: [:a :b | a >= b]", "an OrderedCollection( 3 2 1 )"},
		{"(#('pear' 'fig' 'apple') asSortedCollection: [:a :b | a <= b]) first", "'apple'"},
		{"(#(1 2 3) collect: [:x | x]) asArray", "an Array( 1 2 3 )"},
		{"#(1 2 3) asArray", "an Array( 1 2 3 )"},
		{"#(1 2 2 3 3 3) occurrencesOf: 3", "3"},
		{"#(1 2 3 4) average", "2.5"},
		{"#(4 2 9) minValue", "2"},
		{"#(1 1 2) asSet size", "2"},
		{"#(1 1 2) asBag size", "3"},
	})
	// do:separatedBy: drives the Transcript.
	if _, err := in.Execute("#(1 2 3) do: [:e | Transcript print: e] separatedBy: [Transcript show: ', ']"); err != nil {
		t.Fatal(err)
	}
	if got := in.TakeOutput(); got != "1, 2, 3" {
		t.Errorf("separatedBy = %q", got)
	}
	// perform: with a missing selector errors cleanly.
	if _, err := in.Execute("3 perform: #nonsense"); err == nil {
		t.Error("perform: of missing selector should fail")
	}
	if _, err := in.Execute("3 perform: 42"); err == nil {
		t.Error("perform: of non-selector should fail")
	}
	// Sort comparator errors propagate.
	if _, err := in.Execute("#(1 2) asSortedCollection: [:a :b | a foo]"); err == nil {
		t.Error("failing comparator should surface")
	}
}

func TestPrintWidthCap(t *testing.T) {
	in := newInterp(t)
	out, err := in.ExecuteToString("| c | c := OrderedCollection new. 1 to: 200 do: [:i | c add: i]. c")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "... 150 more") {
		t.Errorf("no elision: %.120s", out)
	}
	if len(out) > 400 {
		t.Errorf("printString too long: %d chars", len(out))
	}
}

func TestPrintDepthCap(t *testing.T) {
	in := newInterp(t)
	// A self-referential structure must not hang the printer.
	out, err := in.ExecuteToString("| d | d := Dictionary new. d at: #self put: d. d")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "...") {
		t.Errorf("no depth elision: %.120s", out)
	}
}

func TestHistoryProtocol(t *testing.T) {
	in := newInterp(t)
	for _, src := range []string{
		"World at: #emp put: (Object new at: #salary put: 100; yourself). System commitTransaction",
		"World!emp at: #salary put: 200. System commitTransaction",
		"World!emp at: #salary put: 300. System commitTransaction",
	} {
		if _, err := in.Execute(src); err != nil {
			t.Fatalf("%q: %v", src, err)
		}
	}
	out, err := in.ExecuteToString("(World!emp historyOf: #salary) size")
	if err != nil || out != "3" {
		t.Errorf("history size = %s (%v)", out, err)
	}
	out, err = in.ExecuteToString("(World!emp historyOf: #salary) first value")
	if err != nil || out != "100" {
		t.Errorf("oldest value = %s (%v)", out, err)
	}
	out, err = in.ExecuteToString("(World!emp historyOf: #salary) last value")
	if err != nil || out != "300" {
		t.Errorf("newest value = %s (%v)", out, err)
	}
	// The recorded times replay through @.
	out, err = in.ExecuteToString(`| ts | ts := World!emp changedTimesOf: #salary.
		World!emp at: #salary atTime: (ts at: 2)`)
	if err != nil || out != "200" {
		t.Errorf("value at second change = %s (%v)", out, err)
	}
	// Pending writes are not part of history.
	if _, err := in.Execute("World!emp at: #salary put: 999"); err != nil {
		t.Fatal(err)
	}
	out, _ = in.ExecuteToString("(World!emp historyOf: #salary) size")
	if out != "3" {
		t.Errorf("pending write leaked into history: %s", out)
	}
	// Missing element: empty history.
	out, _ = in.ExecuteToString("(World!emp historyOf: #bonus) size")
	if out != "0" {
		t.Errorf("missing element history = %s", out)
	}
}

func TestSharedSegmentAndGrants(t *testing.T) {
	db, err := core.Open(t.TempDir(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	sys, _ := db.NewSession(auth.SystemUser, "swordfish")
	sysIn, err := NewInterp(sys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sysIn.Execute("System createUser: 'alice' password: 'a'"); err != nil {
		t.Fatal(err)
	}
	if _, err := sysIn.Execute("System createUser: 'bob' password: 'b'"); err != nil {
		t.Fatal(err)
	}
	as, _ := db.NewSession("alice", "a")
	aIn, err := NewInterp(as)
	if err != nil {
		t.Fatal(err)
	}
	// A shared object is writable by another user; a home-segment object is
	// not even readable.
	if _, err := aIn.Execute(`World at: #shared put: ((System newShared: Object) at: #v put: 1; yourself).
		World at: #mine put: (Object new at: #v put: 2; yourself).
		System commitTransaction`); err != nil {
		t.Fatal(err)
	}
	bs, _ := db.NewSession("bob", "b")
	bIn, err := NewInterp(bs)
	if err != nil {
		t.Fatal(err)
	}
	if out, err := bIn.ExecuteToString("World!shared!v"); err != nil || out != "1" {
		t.Errorf("bob reads shared: %s (%v)", out, err)
	}
	if _, err := bIn.Execute("World!shared at: #v put: 9. System commitTransaction"); err != nil {
		t.Errorf("bob writes shared: %v", err)
	}
	if _, err := bIn.Execute("World!mine!v"); err == nil {
		t.Error("bob read alice's home object")
	}
	// Grant read, then bob can read but not write.
	if _, err := aIn.Execute("System grantTo: 'bob' privilege: 'read'"); err != nil {
		t.Fatal(err)
	}
	if out, err := bIn.ExecuteToString("World!mine!v"); err != nil || out != "2" {
		t.Errorf("bob after grant: %s (%v)", out, err)
	}
	if _, err := bIn.Execute("World!mine at: #v put: 5"); err == nil {
		t.Error("read grant allowed a write")
	}
	// Bad privilege string errors.
	if _, err := aIn.Execute("System grantTo: 'bob' privilege: 'root'"); err == nil {
		t.Error("bad privilege accepted")
	}
	// Only the owner (or admin) grants.
	if _, err := bIn.Execute("System grantTo: 'alice' privilege: 'write'"); err != nil {
		// bob granting on HIS OWN home segment is legal; verify it works.
		t.Errorf("bob granting on his own segment: %v", err)
	}
}

func TestEmbeddedCalculus(t *testing.T) {
	// §5.4: "we have been able to incorporate declarative statements in
	// OPAL without departing from Smalltalk syntax ... it can include
	// procedural parts, and can be included in procedural methods."
	in := newInterp(t)
	setup := `| emps e |
		emps := Dictionary new. World at: #Employees put: emps.
		e := Dictionary new. e at: #Name put: 'Burns'. e at: #Salary put: 24650. emps at: 'E62' put: e.
		e := Dictionary new. e at: #Name put: 'Peters'. e at: #Salary put: 24000. emps at: 'E83' put: e.
		e := Dictionary new. e at: #Name put: 'Hopper'. e at: #Salary put: 31000. emps at: 'E90' put: e.
		System commitTransaction`
	if _, err := in.Execute(setup); err != nil {
		t.Fatal(err)
	}
	// An inline declarative expression as a first-class value.
	evalCases(t, in, [][2]string{
		{"{ {E: e} where (e in World!Employees) and e!Salary > 30000 } size", "1"},
		{"({ {E: e} where (e in World!Employees) and e!Salary > 30000 } first at: #E) at: #Name", "'Hopper'"},
		// Procedural parts: a method temp inside the declarative expression.
		{"| floor | floor := 24500. { {E: e} where (e in World!Employees) and e!Salary > floor } size", "2"},
		// The result is an ordinary collection: procedural post-processing.
		{"| rows | rows := { {E: e} where (e in World!Employees) and e!Salary > 0 }. (rows collect: [:r | (r at: #E) at: #Salary]) sum", "79650"},
	})
	// Inside a method, capturing both an argument and an instance variable
	// chain through a temp.
	for _, src := range []string{
		`Object subclass: 'Payroll' instVarNames: #()`,
		`Payroll compile: 'earningOver: floor | rows | rows := { {E: e} where (e in World!Employees) and e!Salary > floor }. ^rows size'`,
	} {
		if _, err := in.Execute(src); err != nil {
			t.Fatalf("%q: %v", src, err)
		}
	}
	evalCases(t, in, [][2]string{
		{"Payroll new earningOver: 24500", "2"},
		{"Payroll new earningOver: 0", "3"},
	})
	// Compile-time validation of the embedded query.
	if _, err := in.Execute("{ {E: e} where }"); err == nil {
		t.Error("bad embedded calculus accepted")
	}
	if _, err := in.Execute("{ {E: e} where (e in World!Employees"); err == nil {
		t.Error("unterminated calculus accepted")
	}
	// Strings containing braces inside the query are handled.
	evalCases(t, in, [][2]string{
		{"{ {E: e} where (e in World!Employees) and e!Name = '{odd}' } size", "0"},
	})
}

func TestEmbeddedCalculusUsesIndexes(t *testing.T) {
	in := newInterp(t)
	if _, err := in.Execute(`| emps e |
		emps := Set new. World at: #emps put: emps.
		1 to: 100 do: [:i | e := Dictionary new. e at: #salary put: i. emps add: e].
		System commitTransaction`); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Execute("World!emps indexOn: 'salary'"); err != nil {
		t.Fatal(err)
	}
	out, err := in.ExecuteToString("{ {E: e} where (e in World!emps) and e!salary = 42 } size")
	if err != nil || out != "1" {
		t.Errorf("indexed embedded query = %s (%v)", out, err)
	}
}
