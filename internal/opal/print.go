package opal

import (
	"fmt"
	"strings"

	"repro/internal/object"
	"repro/internal/oop"
)

// PrintString renders a value the way OPAL's printString does. Collections
// show their contents; other objects print as "a ClassName"; classes print
// their name. User classes may override printString with an OPAL method,
// which takes precedence (the printer dispatches through the normal lookup
// when a user-defined method exists).
func (in *Interp) PrintString(v oop.OOP) (string, error) {
	return in.printValue(v, 0)
}

const maxPrintDepth = 6

// maxPrintWidth caps the number of members a collection prints before
// eliding with "..." — printString of a 100,000-member set must stay sane.
const maxPrintWidth = 50

func (in *Interp) printValue(v oop.OOP, depth int) (string, error) {
	if depth > maxPrintDepth {
		return "...", nil
	}
	switch {
	case v == oop.Nil || v == oop.Invalid:
		return "nil", nil
	case v == oop.True:
		return "true", nil
	case v == oop.False:
		return "false", nil
	case v.IsSmallInt():
		return fmt.Sprintf("%d", v.Int()), nil
	case v.IsCharacter():
		return fmt.Sprintf("$%c", v.Char()), nil
	}
	if cl, ok := in.blockFor(v); ok {
		return fmt.Sprintf("aBlock(%d args)", cl.code.numArgs), nil
	}
	// A user-defined printString overrides the structural printer.
	if depth > 0 {
		if s, ok, err := in.userPrintString(v); err != nil {
			return "", err
		} else if ok {
			return s, nil
		}
	} else if s, ok, err := in.userPrintString(v); err != nil {
		return "", err
	} else if ok {
		return s, nil
	}
	return in.structuralPrint(v, depth)
}

// userPrintString invokes a printString METHOD (not the primitive) if one
// is defined anywhere along the receiver's class chain.
func (in *Interp) userPrintString(v oop.OOP) (string, bool, error) {
	for c := in.classOf(v); c.IsHeap(); {
		if m, _, err := in.methodIn(c, "printString"); err != nil {
			return "", false, err
		} else if m != nil {
			res, err := in.run(m, v, c, nil)
			if err != nil {
				return "", false, err
			}
			if s, ok := in.stringValue(res); ok {
				return s, true, nil
			}
			return "", false, fmt.Errorf("opal: printString returned a non-string")
		}
		sup, _, err := in.s.Fetch(c, in.wkSuper())
		if err != nil {
			return "", false, err
		}
		c = sup
	}
	return "", false, nil
}

func (in *Interp) structuralPrint(v oop.OOP, depth int) (string, error) {
	k := in.s.DB().Kernel()
	cls := in.s.ClassOf(v)
	switch cls {
	case k.String:
		s, _ := in.stringValue(v)
		return "'" + strings.ReplaceAll(s, "'", "''") + "'", nil
	case k.Symbol:
		s, _ := in.stringValue(v)
		return "#" + s, nil
	case k.Float:
		f, err := in.s.FloatValue(v)
		if err != nil {
			return "", err
		}
		s := fmt.Sprintf("%g", f)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s, nil
	case k.Class:
		return in.classNameOfClass(v), nil
	case k.Association:
		key, _, _ := in.s.Fetch(v, in.s.Symbol("key"))
		val, _, _ := in.s.Fetch(v, in.s.Symbol("value"))
		ks, err := in.printValue(key, depth+1)
		if err != nil {
			return "", err
		}
		vs, err := in.printValue(val, depth+1)
		if err != nil {
			return "", err
		}
		return ks + "->" + vs, nil
	case k.Array, k.OrderedCollection:
		n, err := in.arraySize(v)
		if err != nil {
			return "", err
		}
		var b strings.Builder
		b.WriteString(in.article(cls))
		b.WriteString("( ")
		for i := int64(1); i <= n; i++ {
			if i > maxPrintWidth {
				fmt.Fprintf(&b, "... %d more ", n-maxPrintWidth)
				break
			}
			el, _, err := in.s.Fetch(v, oop.MustInt(i))
			if err != nil {
				return "", err
			}
			s, err := in.printValue(el, depth+1)
			if err != nil {
				return "", err
			}
			b.WriteString(s)
			b.WriteByte(' ')
		}
		b.WriteString(")")
		return b.String(), nil
	case k.Set, k.Bag:
		ms, _, err := in.setMembers(v)
		if err != nil {
			return "", err
		}
		var b strings.Builder
		b.WriteString(in.article(cls))
		b.WriteString("( ")
		for i, m := range ms {
			if i >= maxPrintWidth {
				fmt.Fprintf(&b, "... %d more ", len(ms)-maxPrintWidth)
				break
			}
			s, err := in.printValue(m, depth+1)
			if err != nil {
				return "", err
			}
			b.WriteString(s)
			b.WriteByte(' ')
		}
		b.WriteString(")")
		return b.String(), nil
	case k.Dictionary, k.SystemDictionary:
		kvs, err := in.dictPairs(v)
		if err != nil {
			return "", err
		}
		var b strings.Builder
		b.WriteString(in.article(cls))
		b.WriteString("( ")
		for i, kv := range kvs {
			if i >= maxPrintWidth {
				fmt.Fprintf(&b, "... %d more ", len(kvs)-maxPrintWidth)
				break
			}
			ks, err := in.printValue(kv[0], depth+1)
			if err != nil {
				return "", err
			}
			vs, err := in.printValue(kv[1], depth+1)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "%s->%s ", ks, vs)
		}
		b.WriteString(")")
		return b.String(), nil
	}
	// Byte objects of user-defined classes print like strings with a class
	// tag; generic named objects print as "a ClassName".
	ob, err := in.s.Object(v)
	if err != nil {
		return "", err
	}
	if ob.Format == object.FormatBytes {
		b, err := in.s.BytesOf(v)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s('%s')", in.article(cls), string(b)), nil
	}
	return in.article(cls), nil
}

// article forms "a ClassName" / "an Apple".
func (in *Interp) article(cls oop.OOP) string {
	name := in.classNameOfClass(cls)
	if name == "" {
		return "anObject"
	}
	switch name[0] {
	case 'A', 'E', 'I', 'O', 'U':
		return "an " + name
	}
	return "a " + name
}
