package opal

import (
	"strings"
	"testing"
	"testing/quick"
)

func kinds(toks []token) []tokenKind {
	out := make([]tokenKind, 0, len(toks))
	for _, t := range toks {
		out = append(out, t.kind)
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks, err := lexSource("foo at: 3 put: 'str'. #sym $a 2.5 := ^ | ; [ ] ( )")
	if err != nil {
		t.Fatal(err)
	}
	want := []tokenKind{tkIdent, tkKeyword, tkInt, tkKeyword, tkString, tkDot,
		tkSymbol, tkChar, tkFloat, tkAssign, tkCaret, tkPipe, tkSemi,
		tkLBracket, tkRBracket, tkLParen, tkRParen, tkEOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("kinds = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: kind %d, want %d (%s)", i, got[i], want[i], toks[i])
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := lexSource(`3 "a comment" + "another
multi line" 4`)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 4 { // 3, +, 4, EOF
		t.Errorf("tokens = %v", toks)
	}
	if _, err := lexSource(`"unterminated`); err == nil {
		t.Error("unterminated comment accepted")
	}
}

func TestLexNumbers(t *testing.T) {
	cases := map[string]struct {
		kind tokenKind
		i    int64
		f    float64
	}{
		"42":     {tkInt, 42, 0},
		"2.5":    {tkFloat, 0, 2.5},
		"1e3":    {tkFloat, 0, 1000},
		"2.5e-1": {tkFloat, 0, 0.25},
		"0":      {tkInt, 0, 0},
	}
	for src, want := range cases {
		toks, err := lexSource(src)
		if err != nil {
			t.Errorf("%q: %v", src, err)
			continue
		}
		if toks[0].kind != want.kind || toks[0].i != want.i || toks[0].f != want.f {
			t.Errorf("%q = %+v", src, toks[0])
		}
	}
}

func TestLexSymbols(t *testing.T) {
	cases := map[string]string{
		"#foo":        "foo",
		"#at:put:":    "at:put:",
		"#+":          "+",
		"#'odd name'": "odd name",
	}
	for src, want := range cases {
		toks, err := lexSource(src)
		if err != nil {
			t.Errorf("%q: %v", src, err)
			continue
		}
		if toks[0].kind != tkSymbol || toks[0].text != want {
			t.Errorf("%q = %+v", src, toks[0])
		}
	}
}

func TestLexStringsEscapes(t *testing.T) {
	toks, err := lexSource("'it''s'")
	if err != nil || toks[0].text != "it's" {
		t.Errorf("%v %v", toks, err)
	}
	if _, err := lexSource("'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
}

func TestLexBangAndAtAreNotBinary(t *testing.T) {
	toks, err := lexSource("a!b@3")
	if err != nil {
		t.Fatal(err)
	}
	want := []tokenKind{tkIdent, tkBang, tkIdent, tkAt, tkInt, tkEOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kinds = %v", got)
		}
	}
}

func TestLexNeverPanicsProperty(t *testing.T) {
	f := func(src string) bool {
		_, _ = lexSource(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestParseNeverPanicsProperty(t *testing.T) {
	f := func(src string) bool {
		_, _ = parseDoIt(src)
		_, _ = parseMethod(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestParseMethodPatterns(t *testing.T) {
	cases := map[string]struct {
		sel    string
		params int
	}{
		"size ^3":                {"size", 0},
		"+ other ^other":         {"+", 1},
		"at: k put: v ^v":        {"at:put:", 2},
		"from: a to: b by: c ^a": {"from:to:by:", 3},
	}
	for src, want := range cases {
		m, err := parseMethod(src)
		if err != nil {
			t.Errorf("%q: %v", src, err)
			continue
		}
		if m.selector != want.sel || len(m.params) != want.params {
			t.Errorf("%q = %s/%d", src, m.selector, len(m.params))
		}
	}
}

func TestParseErrorsHavePositions(t *testing.T) {
	for _, src := range []string{
		"3 +",          // missing operand
		"x := ",        // missing value
		"[:a b | a]",   // missing pipe
		"(3 + 4",       // unclosed paren
		"#(1 2",        // unclosed literal array
		"a at: 3 put:", // missing keyword arg
		"x!",           // dangling path bang
		"a!b@",         // dangling @
		"^1. 2",        // statements after return
		"3 . . 4",      // stray dot
	} {
		_, err := parseDoIt(src)
		if err == nil {
			t.Errorf("%q should fail", src)
			continue
		}
		if !strings.Contains(err.Error(), "offset") {
			t.Errorf("%q: error lacks position: %v", src, err)
		}
	}
}

func TestCompilerJumpPatching(t *testing.T) {
	// A long body inside an inlined conditional exercises i16 jump offsets.
	in := newInterp(t)
	var b strings.Builder
	b.WriteString("| s | s := 0. true ifTrue: [")
	for i := 0; i < 200; i++ {
		b.WriteString("s := s + 1. ")
	}
	b.WriteString("s] ifFalse: [0]")
	out, err := in.ExecuteToString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if out != "200" {
		t.Errorf("= %s", out)
	}
}

func TestVMStressBinaryTree(t *testing.T) {
	// A full user-level data structure: BST insert + in-order traversal,
	// exercising recursion, blocks, nil tests and instance variables.
	in := newInterp(t)
	for _, src := range []string{
		`Object subclass: 'TreeNode' instVarNames: #('key' 'left' 'right')`,
		`TreeNode compile: 'key: k key := k'`,
		`TreeNode compile: 'insert: k
			k < key
				ifTrue: [left isNil ifTrue: [left := TreeNode new key: k] ifFalse: [left insert: k]]
				ifFalse: [right isNil ifTrue: [right := TreeNode new key: k] ifFalse: [right insert: k]]'`,
		`TreeNode compile: 'do: aBlock
			left notNil ifTrue: [left do: aBlock].
			aBlock value: key.
			right notNil ifTrue: [right do: aBlock]'`,
	} {
		if _, err := in.Execute(src); err != nil {
			t.Fatalf("%q: %v", src, err)
		}
	}
	out, err := in.ExecuteToString(`| root vals sorted prev ok |
		root := TreeNode new key: 500.
		vals := OrderedCollection new.
		1 to: 200 do: [:i | root insert: i * 37 \\ 401].
		root do: [:k | vals add: k].
		prev := -1. ok := true.
		vals do: [:k | k < prev ifTrue: [ok := false]. prev := k].
		ok & (vals size >= 200)`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "true" {
		t.Errorf("BST traversal not sorted: %s", out)
	}
}

func TestCascadePrecedence(t *testing.T) {
	in := newInterp(t)
	evalCases(t, in, [][2]string{
		// Cascade binds to the outermost keyword send's receiver.
		{"| c | c := OrderedCollection new. c add: 1 + 1; add: 2 * 2. c", "an OrderedCollection( 2 4 )"},
		// Unary cascade parts.
		{"| c | c := OrderedCollection new. c add: 3; removeLast; yourself", "an OrderedCollection( )"},
	})
}

func TestKeywordPrecedence(t *testing.T) {
	in := newInterp(t)
	evalCases(t, in, [][2]string{
		// unary > binary > keyword.
		{"2 + 3 max: 4", "5"},
		{"2 max: 3 + 4", "7"},
		{"2 + 3 squared", "11"}, // squared binds to 3
		{"(2 + 3) squared", "25"},
	})
}
