package opal

import (
	"fmt"
	"strings"
)

type parseErr struct {
	msg string
	pos int
}

func (e *parseErr) Error() string { return fmt.Sprintf("opal: %s at offset %d", e.msg, e.pos) }

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token          { return p.toks[p.i] }
func (p *parser) next() token         { t := p.toks[p.i]; p.i++; return t }
func (p *parser) at(k tokenKind) bool { return p.cur().kind == k }

func (p *parser) errf(format string, args ...any) error {
	return &parseErr{fmt.Sprintf(format, args...), p.cur().pos}
}

func (p *parser) expect(k tokenKind, what string) (token, error) {
	if !p.at(k) {
		return token{}, p.errf("expected %s, found %s", what, p.cur())
	}
	return p.next(), nil
}

// parseMethod parses a full method definition: pattern, temps, body.
func parseMethod(src string) (*methodAST, error) {
	toks, err := lexSource(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	m := &methodAST{}
	switch t := p.cur(); t.kind {
	case tkIdent: // unary pattern
		m.selector = t.text
		p.i++
	case tkBinary, tkPipe: // binary pattern (| as binary selector for or)
		m.selector = t.text
		p.i++
		arg, err := p.expect(tkIdent, "argument name")
		if err != nil {
			return nil, err
		}
		m.params = append(m.params, arg.text)
	case tkKeyword:
		var sel strings.Builder
		for p.at(tkKeyword) {
			sel.WriteString(p.next().text)
			arg, err := p.expect(tkIdent, "argument name")
			if err != nil {
				return nil, err
			}
			m.params = append(m.params, arg.text)
		}
		m.selector = sel.String()
	default:
		return nil, p.errf("expected method pattern, found %s", t)
	}
	temps, err := p.temporaries()
	if err != nil {
		return nil, err
	}
	m.temps = temps
	body, err := p.statements(tkEOF)
	if err != nil {
		return nil, err
	}
	m.body = body
	if !p.at(tkEOF) {
		return nil, p.errf("trailing input after method body")
	}
	return m, nil
}

// parseDoIt parses an executable code block (no pattern).
func parseDoIt(src string) (*methodAST, error) {
	toks, err := lexSource(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	m := &methodAST{selector: "doIt"}
	temps, err := p.temporaries()
	if err != nil {
		return nil, err
	}
	m.temps = temps
	body, err := p.statements(tkEOF)
	if err != nil {
		return nil, err
	}
	m.body = body
	if !p.at(tkEOF) {
		return nil, p.errf("trailing input")
	}
	return m, nil
}

func (p *parser) temporaries() ([]string, error) {
	if !p.at(tkPipe) {
		return nil, nil
	}
	p.i++
	var temps []string
	for p.at(tkIdent) {
		temps = append(temps, p.next().text)
	}
	if _, err := p.expect(tkPipe, "'|' closing temporaries"); err != nil {
		return nil, err
	}
	return temps, nil
}

// statements parses statements until the given closing token (not consumed).
func (p *parser) statements(closer tokenKind) ([]node, error) {
	var out []node
	for {
		if p.at(closer) || p.at(tkEOF) {
			return out, nil
		}
		if p.at(tkCaret) {
			at := p.next().pos
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			out = append(out, &returnNode{base: base{at}, value: e})
			if p.at(tkDot) {
				p.i++
			}
			if !p.at(closer) && !p.at(tkEOF) {
				return nil, p.errf("statements after ^-return")
			}
			return out, nil
		}
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		if p.at(tkDot) {
			p.i++
			continue
		}
		if p.at(closer) || p.at(tkEOF) {
			return out, nil
		}
		return nil, p.errf("expected '.' between statements, found %s", p.cur())
	}
}

// expression := assignment | cascade
func (p *parser) expression() (node, error) {
	// Assignment lookahead: primary path/ident followed by :=.
	save := p.i
	if p.at(tkIdent) {
		tgt, err := p.pathOrVar()
		if err == nil && p.at(tkAssign) {
			at := p.next().pos
			val, err := p.expression()
			if err != nil {
				return nil, err
			}
			return &assignNode{base: base{at}, target: tgt, value: val}, nil
		}
		p.i = save
	}
	return p.cascade()
}

// pathOrVar parses ident ('!' seg)* for assignment targets.
func (p *parser) pathOrVar() (node, error) {
	t, err := p.expect(tkIdent, "variable")
	if err != nil {
		return nil, err
	}
	v := &varNode{base: base{t.pos}, name: t.text}
	if !p.at(tkBang) {
		return v, nil
	}
	return p.pathFrom(v)
}

func (p *parser) pathFrom(root node) (node, error) {
	pn := &pathNode{base: base{p.cur().pos}, root: root}
	for p.at(tkBang) {
		p.i++
		var seg pathSeg
		switch t := p.cur(); t.kind {
		case tkIdent:
			seg.name = t.text
			p.i++
		case tkString:
			seg.name = t.text
			p.i++
		case tkInt:
			seg.isIndex, seg.index = true, t.i
			p.i++
		default:
			return nil, p.errf("expected element name after '!', found %s", t)
		}
		if p.at(tkAt) {
			p.i++
			// Time subscript: integer literal, variable, or parenthesized
			// expression.
			switch t := p.cur(); t.kind {
			case tkInt:
				seg.timeExp = &literalNode{base: base{t.pos}, kind: litInt, i: t.i}
				p.i++
			case tkIdent:
				seg.timeExp = &varNode{base: base{t.pos}, name: t.text}
				p.i++
			case tkLParen:
				p.i++
				e, err := p.expression()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tkRParen, "')'"); err != nil {
					return nil, err
				}
				seg.timeExp = e
			default:
				return nil, p.errf("expected time after '@', found %s", t)
			}
		}
		pn.segs = append(pn.segs, seg)
	}
	return pn, nil
}

// cascade := keywordExpr (';' cascadeMessage)*
func (p *parser) cascade() (node, error) {
	e, err := p.keywordExpr()
	if err != nil {
		return nil, err
	}
	if !p.at(tkSemi) {
		return e, nil
	}
	// The cascade receiver is the receiver of e's OUTERMOST send.
	first, ok := e.(*sendNode)
	if !ok {
		return nil, p.errf("cascade after non-message expression")
	}
	cas := &cascadeNode{base: base{p.cur().pos}, receiver: first.receiver}
	cas.sends = append(cas.sends, casSend{selector: first.selector, args: first.args})
	for p.at(tkSemi) {
		p.i++
		sel, args, err := p.cascadeMessage()
		if err != nil {
			return nil, err
		}
		cas.sends = append(cas.sends, casSend{selector: sel, args: args})
	}
	return cas, nil
}

// cascadeMessage parses one message (unary, binary or keyword) without a
// receiver.
func (p *parser) cascadeMessage() (string, []node, error) {
	switch t := p.cur(); t.kind {
	case tkIdent:
		p.i++
		return t.text, nil, nil
	case tkBinary, tkPipe:
		p.i++
		arg, err := p.binaryOperand()
		if err != nil {
			return "", nil, err
		}
		return t.text, []node{arg}, nil
	case tkKeyword:
		var sel strings.Builder
		var args []node
		for p.at(tkKeyword) {
			sel.WriteString(p.next().text)
			a, err := p.binaryExpr()
			if err != nil {
				return "", nil, err
			}
			args = append(args, a)
		}
		return sel.String(), args, nil
	}
	return "", nil, p.errf("expected message in cascade, found %s", p.cur())
}

// keywordExpr := binaryExpr (keyword binaryExpr)*
func (p *parser) keywordExpr() (node, error) {
	recv, err := p.binaryExpr()
	if err != nil {
		return nil, err
	}
	if !p.at(tkKeyword) {
		return recv, nil
	}
	at := p.cur().pos
	var sel strings.Builder
	var args []node
	for p.at(tkKeyword) {
		sel.WriteString(p.next().text)
		a, err := p.binaryExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
	}
	sup := isSuper(recv)
	return &sendNode{base: base{at}, receiver: recv, selector: sel.String(), args: args, super: sup}, nil
}

// binaryExpr := unaryExpr (binsel unaryExpr)*
func (p *parser) binaryExpr() (node, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tkBinary) || p.at(tkPipe) {
		t := p.next()
		r, err := p.binaryOperand()
		if err != nil {
			return nil, err
		}
		l = &sendNode{base: base{t.pos}, receiver: l, selector: t.text, args: []node{r}, super: isSuper(l)}
	}
	return l, nil
}

func (p *parser) binaryOperand() (node, error) { return p.unaryExpr() }

// unaryExpr := primary unarySelector*
func (p *parser) unaryExpr() (node, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for p.at(tkIdent) {
		t := p.next()
		e = &sendNode{base: base{t.pos}, receiver: e, selector: t.text, super: isSuper(e)}
	}
	return e, nil
}

func isSuper(n node) bool {
	v, ok := n.(*varNode)
	return ok && v.name == "super"
}

// primary := literal | variable | block | (expr) | #(...) — each optionally
// followed by a path suffix (!seg...).
func (p *parser) primary() (node, error) {
	e, err := p.primaryNoPath()
	if err != nil {
		return nil, err
	}
	if p.at(tkBang) {
		return p.pathFrom(e)
	}
	return e, nil
}

func (p *parser) primaryNoPath() (node, error) {
	switch t := p.cur(); t.kind {
	case tkInt:
		p.i++
		return &literalNode{base: base{t.pos}, kind: litInt, i: t.i}, nil
	case tkFloat:
		p.i++
		return &literalNode{base: base{t.pos}, kind: litFloat, f: t.f}, nil
	case tkString:
		p.i++
		return &literalNode{base: base{t.pos}, kind: litString, s: t.text}, nil
	case tkChar:
		p.i++
		return &literalNode{base: base{t.pos}, kind: litChar, s: t.text}, nil
	case tkSymbol:
		p.i++
		return &literalNode{base: base{t.pos}, kind: litSymbol, s: t.text}, nil
	case tkBinary:
		// Negative number literal: -3.
		if t.text == "-" && p.toks[p.i+1].kind == tkInt {
			p.i += 2
			return &literalNode{base: base{t.pos}, kind: litInt, i: -p.toks[p.i-1].i}, nil
		}
		if t.text == "-" && p.toks[p.i+1].kind == tkFloat {
			p.i += 2
			return &literalNode{base: base{t.pos}, kind: litFloat, f: -p.toks[p.i-1].f}, nil
		}
		return nil, p.errf("unexpected %s", t)
	case tkIdent:
		p.i++
		switch t.text {
		case "true":
			return &literalNode{base: base{t.pos}, kind: litTrue}, nil
		case "false":
			return &literalNode{base: base{t.pos}, kind: litFalse}, nil
		case "nil":
			return &literalNode{base: base{t.pos}, kind: litNil}, nil
		}
		return &varNode{base: base{t.pos}, name: t.text}, nil
	case tkLParen:
		p.i++
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case tkLBracket:
		return p.block()
	case tkHashParen:
		return p.literalArray()
	case tkCalculus:
		p.i++
		return &calculusNode{base: base{t.pos}, src: t.text}, nil
	}
	return nil, p.errf("unexpected %s", p.cur())
}

func (p *parser) block() (node, error) {
	t, _ := p.expect(tkLBracket, "'['")
	b := &blockNode{base: base{t.pos}}
	for p.at(tkColon) {
		p.i++
		arg, err := p.expect(tkIdent, "block argument name")
		if err != nil {
			return nil, err
		}
		b.params = append(b.params, arg.text)
	}
	if len(b.params) > 0 {
		if _, err := p.expect(tkPipe, "'|' after block arguments"); err != nil {
			return nil, err
		}
	}
	temps, err := p.temporaries()
	if err != nil {
		return nil, err
	}
	b.temps = temps
	body, err := p.statements(tkRBracket)
	if err != nil {
		return nil, err
	}
	b.body = body
	if _, err := p.expect(tkRBracket, "']'"); err != nil {
		return nil, err
	}
	return b, nil
}

func (p *parser) literalArray() (node, error) {
	t, _ := p.expect(tkHashParen, "'#('")
	arr := &literalNode{base: base{t.pos}, kind: litArray}
	for !p.at(tkRParen) {
		el, err := p.literalArrayElement()
		if err != nil {
			return nil, err
		}
		arr.arr = append(arr.arr, el)
	}
	p.i++ // )
	return arr, nil
}

func (p *parser) literalArrayElement() (*literalNode, error) {
	switch t := p.cur(); t.kind {
	case tkInt:
		p.i++
		return &literalNode{base: base{t.pos}, kind: litInt, i: t.i}, nil
	case tkFloat:
		p.i++
		return &literalNode{base: base{t.pos}, kind: litFloat, f: t.f}, nil
	case tkString:
		p.i++
		return &literalNode{base: base{t.pos}, kind: litString, s: t.text}, nil
	case tkChar:
		p.i++
		return &literalNode{base: base{t.pos}, kind: litChar, s: t.text}, nil
	case tkSymbol:
		p.i++
		return &literalNode{base: base{t.pos}, kind: litSymbol, s: t.text}, nil
	case tkIdent:
		p.i++
		switch t.text {
		case "true":
			return &literalNode{base: base{t.pos}, kind: litTrue}, nil
		case "false":
			return &literalNode{base: base{t.pos}, kind: litFalse}, nil
		case "nil":
			return &literalNode{base: base{t.pos}, kind: litNil}, nil
		}
		// Bare identifiers inside #() are symbols, per ST80.
		return &literalNode{base: base{t.pos}, kind: litSymbol, s: t.text}, nil
	case tkHashParen:
		n, err := p.literalArray()
		if err != nil {
			return nil, err
		}
		return n.(*literalNode), nil
	case tkLParen:
		// Nested array in ST80 literal arrays: #( (1 2) ) — treat like #( ... ).
		p.i++
		arr := &literalNode{base: base{t.pos}, kind: litArray}
		for !p.at(tkRParen) {
			el, err := p.literalArrayElement()
			if err != nil {
				return nil, err
			}
			arr.arr = append(arr.arr, el)
		}
		p.i++
		return arr, nil
	case tkBinary:
		if t.text == "-" && p.toks[p.i+1].kind == tkInt {
			p.i += 2
			return &literalNode{base: base{t.pos}, kind: litInt, i: -p.toks[p.i-1].i}, nil
		}
	}
	return nil, p.errf("bad literal array element %s", p.cur())
}
