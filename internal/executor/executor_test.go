package executor

import (
	"errors"
	"sync"
	"testing"

	"repro/gemstone"
)

func newExec(t *testing.T) *Executor {
	t.Helper()
	db, err := gemstone.Open(t.TempDir(), gemstone.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return New(db)
}

func TestLoginExecuteLogout(t *testing.T) {
	e := newExec(t)
	id, err := e.Login(gemstone.SystemUser, "swordfish")
	if err != nil {
		t.Fatal(err)
	}
	result, output, err := e.Execute(id, "Transcript show: 'hi'. 6 * 7")
	if err != nil || result != "42" || output != "hi" {
		t.Errorf("execute = %q %q (%v)", result, output, err)
	}
	if e.ActiveSessions() != 1 {
		t.Errorf("sessions = %d", e.ActiveSessions())
	}
	if err := e.Logout(id); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Execute(id, "1"); !errors.Is(err, ErrNoSession) {
		t.Errorf("after logout: %v", err)
	}
	if err := e.Logout(id); !errors.Is(err, ErrNoSession) {
		t.Errorf("double logout: %v", err)
	}
}

func TestBadLogin(t *testing.T) {
	e := newExec(t)
	if _, err := e.Login("ghost", "x"); err == nil {
		t.Error("bad login accepted")
	}
}

func TestCommitAbort(t *testing.T) {
	e := newExec(t)
	id, _ := e.Login(gemstone.SystemUser, "swordfish")
	if _, _, err := e.Execute(id, "World at: #x put: 5"); err != nil {
		t.Fatal(err)
	}
	tm, err := e.Commit(id)
	if err != nil || tm == 0 {
		t.Fatalf("commit = %v (%v)", tm, err)
	}
	if _, _, err := e.Execute(id, "World at: #x put: 9"); err != nil {
		t.Fatal(err)
	}
	if err := e.Abort(id); err != nil {
		t.Fatal(err)
	}
	result, _, _ := e.Execute(id, "World!x")
	if result != "5" {
		t.Errorf("x = %s after abort", result)
	}
	// Commit/Abort on an unknown session.
	if _, err := e.Commit(999); !errors.Is(err, ErrNoSession) {
		t.Error("commit on missing session")
	}
	if err := e.Abort(999); !errors.Is(err, ErrNoSession) {
		t.Error("abort on missing session")
	}
}

func TestSessionsAreIsolated(t *testing.T) {
	e := newExec(t)
	a, _ := e.Login(gemstone.SystemUser, "swordfish")
	b, _ := e.Login(gemstone.SystemUser, "swordfish")
	// a's uncommitted write is invisible to b.
	if _, _, err := e.Execute(a, "World at: #y put: 1"); err != nil {
		t.Fatal(err)
	}
	result, _, _ := e.Execute(b, "World at: #y ifAbsent: [nil]")
	if result != "nil" {
		t.Errorf("b sees a's uncommitted write: %s", result)
	}
	if _, err := e.Commit(a); err != nil {
		t.Fatal(err)
	}
	// b still reads its old snapshot until it refreshes.
	if err := e.Abort(b); err != nil {
		t.Fatal(err)
	}
	result, _, _ = e.Execute(b, "World!y")
	if result != "1" {
		t.Errorf("b after refresh: %s", result)
	}
}

func TestConcurrentExecutes(t *testing.T) {
	e := newExec(t)
	const n = 4
	ids := make([]SessionID, n)
	for i := range ids {
		id, err := e.Login(gemstone.SystemUser, "swordfish")
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id SessionID) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if res, _, err := e.Execute(id, "3 + 4"); err != nil || res != "7" {
					t.Errorf("execute: %q %v", res, err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
}

func TestSessionIDsAreUnguessable(t *testing.T) {
	e := newExec(t)
	a, err := e.Login(gemstone.SystemUser, "swordfish")
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Login(gemstone.SystemUser, "swordfish")
	if err != nil {
		t.Fatal(err)
	}
	if a == 0 || b == 0 {
		t.Error("zero session id handed out")
	}
	if a == b {
		t.Error("duplicate session ids")
	}
	// Sequential IDs (the old scheme) would make b predictable from a.
	if b == a+1 || a == b+1 || a == 1 || a == 2 {
		t.Errorf("session ids look sequential: %d, %d", a, b)
	}
}

// TestLogoutExecuteRace drives Logout against in-flight Executes on the
// same session under the race detector: Logout must take the per-session
// lock before discarding the workspace, so an Execute either completes on
// the live session or fails with ErrNoSession — never touches a freed one.
func TestLogoutExecuteRace(t *testing.T) {
	e := newExec(t)
	for round := 0; round < 8; round++ {
		id, err := e.Login(gemstone.SystemUser, "swordfish")
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 5; i++ {
					_, _, err := e.Execute(id, "World at: #racy put: 1. 2 + 2")
					if err != nil && !errors.Is(err, ErrNoSession) {
						t.Errorf("execute during logout: %v", err)
						return
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := e.Logout(id); err != nil && !errors.Is(err, ErrNoSession) {
				t.Errorf("logout: %v", err)
			}
		}()
		wg.Wait()
		if _, _, err := e.Execute(id, "1"); !errors.Is(err, ErrNoSession) {
			t.Errorf("round %d: session alive after logout: %v", round, err)
		}
	}
}

// TestLogoutRetiresTransaction checks a logged-out session stops pinning
// the transaction manager: its active transaction is aborted, not leaked.
func TestLogoutRetiresTransaction(t *testing.T) {
	db, err := gemstone.Open(t.TempDir(), gemstone.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	e := New(db)
	id, err := e.Login(gemstone.SystemUser, "swordfish")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Execute(id, "World at: #pin put: 1"); err != nil {
		t.Fatal(err)
	}
	before := db.Stats().Counter("txn.aborts")
	if err := e.Logout(id); err != nil {
		t.Fatal(err)
	}
	if after := db.Stats().Counter("txn.aborts"); after != before+1 {
		t.Errorf("txn.aborts %d -> %d; logout did not retire the transaction", before, after)
	}
}
