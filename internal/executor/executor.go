// Package executor implements the GemStone Executor (paper §6): it is
// "responsible for controlling sessions in the GemStone system on behalf of
// users on host machines", handling login, receiving blocks of OPAL source,
// and returning results and error messages. It "maintains a Compiler and
// Interpreter for each active user".
package executor

import (
	"errors"
	"fmt"
	"sync"

	"repro/gemstone"
	"repro/internal/oop"
)

// SessionID names one remote session.
type SessionID uint64

// ErrNoSession reports an unknown or closed session id.
var ErrNoSession = errors.New("executor: no such session")

// Executor multiplexes user sessions over one database.
type Executor struct {
	db *gemstone.DB

	mu       sync.Mutex // guards sessions, nextID
	sessions map[SessionID]*remote
	nextID   SessionID
}

type remote struct {
	mu sync.Mutex // one command at a time per session
	se *gemstone.Session
}

// New creates an Executor over an open database.
func New(db *gemstone.DB) *Executor {
	return &Executor{db: db, sessions: make(map[SessionID]*remote), nextID: 1}
}

// Login authenticates a user and opens a session.
func (e *Executor) Login(user, password string) (SessionID, error) {
	se, err := e.db.Login(user, password)
	if err != nil {
		return 0, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	id := e.nextID
	e.nextID++
	e.sessions[id] = &remote{se: se}
	return id, nil
}

func (e *Executor) session(id SessionID) (*remote, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	r, ok := e.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoSession, id)
	}
	return r, nil
}

// Execute runs a block of OPAL source in the session, returning the
// printString of the result and any Transcript output.
func (e *Executor) Execute(id SessionID, source string) (result, output string, err error) {
	r, err := e.session(id)
	if err != nil {
		return "", "", err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	res, err := r.se.Execute(source)
	if err != nil {
		return "", res.Output, err
	}
	return res.Printed, res.Output, nil
}

// Commit commits the session's transaction, returning the transaction time.
func (e *Executor) Commit(id SessionID) (oop.Time, error) {
	r, err := e.session(id)
	if err != nil {
		return 0, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.se.Commit()
}

// Abort discards the session's pending changes.
func (e *Executor) Abort(id SessionID) error {
	r, err := e.session(id)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.se.Abort()
	return nil
}

// Logout closes a session.
func (e *Executor) Logout(id SessionID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.sessions[id]; !ok {
		return fmt.Errorf("%w: %d", ErrNoSession, id)
	}
	delete(e.sessions, id)
	return nil
}

// ActiveSessions returns the number of live sessions.
func (e *Executor) ActiveSessions() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.sessions)
}
