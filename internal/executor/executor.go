// Package executor implements the GemStone Executor (paper §6): it is
// "responsible for controlling sessions in the GemStone system on behalf of
// users on host machines", handling login, receiving blocks of OPAL source,
// and returning results and error messages. It "maintains a Compiler and
// Interpreter for each active user".
package executor

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/gemstone"
	"repro/internal/obs"
	"repro/internal/oop"
	"repro/internal/store"
)

// SessionID names one remote session. IDs are drawn from crypto/rand: a
// session ID doubles as the bearer credential on the wire, so it must not
// be guessable the way a sequential counter is.
type SessionID uint64

// ErrNoSession reports an unknown or closed session id.
var ErrNoSession = errors.New("executor: no such session")

// DefaultSlowQueryNS is the execute-latency threshold beyond which the
// OPAL source is recorded in the slow-query log.
const DefaultSlowQueryNS = 100 * 1000 * 1000 // 100ms

// Executor multiplexes user sessions over one database.
type Executor struct {
	db *gemstone.DB

	mu       sync.Mutex // guards sessions
	sessions map[SessionID]*remote

	slowNS atomic.Uint64 // slow-query threshold in nanoseconds
	met    execMetrics
}

// remote serializes one session's commands. The token channel is a
// capacity-1 semaphore rather than a mutex so a waiter can give up when
// its request deadline expires: a request queued behind a slow command on
// the same session is shed before it consumes the session, not after.
type remote struct {
	sem chan struct{} // cap 1: holding the token = running this session's command
	se  *gemstone.Session
}

func newRemote(se *gemstone.Session) *remote {
	return &remote{sem: make(chan struct{}, 1), se: se}
}

// acquire takes the session's command token; a nil ctx waits forever.
func (r *remote) acquire(ctx context.Context) error {
	if ctx == nil {
		r.sem <- struct{}{}
		return nil
	}
	select {
	case r.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("executor: waiting for session: %w", ctx.Err())
	}
}

func (r *remote) release() { <-r.sem }

// execMetrics instruments the session frontier: how many users are live,
// how fast their blocks run, and which sources ran slow.
type execMetrics struct {
	logins    *obs.Counter
	logouts   *obs.Counter
	sessions  *obs.Gauge
	executeNS *obs.Histogram
	slow      *obs.SlowLog
}

// New creates an Executor over an open database, registering its
// instruments with the database's metrics registry.
func New(db *gemstone.DB) *Executor {
	reg := db.Core().Obs()
	e := &Executor{
		db:       db,
		sessions: make(map[SessionID]*remote),
		met: execMetrics{
			logins:    reg.Counter("executor.logins"),
			logouts:   reg.Counter("executor.logouts"),
			sessions:  reg.Gauge("executor.sessions"),
			executeNS: reg.Histogram("executor.execute.ns", obs.LatencyBounds),
			slow:      reg.SlowLog(),
		},
	}
	e.slowNS.Store(DefaultSlowQueryNS)
	return e
}

// Obs returns the metrics registry of the underlying database.
func (e *Executor) Obs() *obs.Registry { return e.db.Core().Obs() }

// SetSlowQueryThreshold changes the slow-query threshold (nanoseconds).
func (e *Executor) SetSlowQueryThreshold(ns uint64) { e.slowNS.Store(ns) }

// Health reports the replica-arm health of the underlying database (the
// OpHealth wire operation).
func (e *Executor) Health() []store.ArmHealth { return e.db.Health() }

// newSessionIDLocked draws an unguessable, unused session ID. Zero is
// reserved as "no session" on the wire. Caller holds e.mu.
func (e *Executor) newSessionIDLocked() (SessionID, error) {
	var buf [8]byte
	for tries := 0; tries < 32; tries++ {
		if _, err := crand.Read(buf[:]); err != nil {
			return 0, fmt.Errorf("executor: session id: %w", err)
		}
		id := SessionID(binary.LittleEndian.Uint64(buf[:]))
		if id == 0 {
			continue
		}
		if _, taken := e.sessions[id]; !taken {
			return id, nil
		}
	}
	return 0, errors.New("executor: session id space exhausted")
}

// Login authenticates a user and opens a session.
func (e *Executor) Login(user, password string) (SessionID, error) {
	se, err := e.db.Login(user, password)
	if err != nil {
		return 0, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	id, err := e.newSessionIDLocked()
	if err != nil {
		return 0, err
	}
	e.sessions[id] = newRemote(se)
	e.met.logins.Inc()
	e.met.sessions.Set(int64(len(e.sessions)))
	return id, nil
}

func (e *Executor) session(id SessionID) (*remote, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	r, ok := e.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoSession, id)
	}
	return r, nil
}

// Execute runs a block of OPAL source in the session, returning the
// printString of the result and any Transcript output.
func (e *Executor) Execute(id SessionID, source string) (result, output string, err error) {
	return e.ExecuteCtx(nil, id, source)
}

// ExecuteCtx is Execute bounded by a request context: cancellation is
// honored while waiting for the session's command token (the request is
// shed without touching the session) and polled during execution by the
// interpreter and scan cursors. An execution interrupted mid-block rolls
// the session's transaction back — a half-applied OPAL block must not
// survive into a later commit — and the session stays usable. A nil ctx
// never cancels.
func (e *Executor) ExecuteCtx(ctx context.Context, id SessionID, source string) (result, output string, err error) {
	r, err := e.session(id)
	if err != nil {
		return "", "", err
	}
	if err := r.acquire(ctx); err != nil {
		return "", "", err
	}
	defer r.release()
	if r.se == nil {
		return "", "", fmt.Errorf("%w: %d", ErrNoSession, id)
	}
	r.se.SetContext(ctx)
	//lint:ignore ctxflow clearing the session's per-call context when the call returns, not propagating one
	defer r.se.SetContext(nil)
	sw := e.met.executeNS.Start()
	res, err := r.se.Execute(source)
	if d := sw.Stop(); d >= e.slowNS.Load() {
		e.met.slow.Record(d, source)
	}
	if err != nil {
		if ctx != nil && ctx.Err() != nil {
			r.se.Abort()
		}
		return "", res.Output, err
	}
	return res.Printed, res.Output, nil
}

// Commit commits the session's transaction, returning the transaction time.
func (e *Executor) Commit(id SessionID) (oop.Time, error) {
	return e.CommitCtx(nil, id)
}

// CommitCtx is Commit bounded by a request context: cancellation is
// honored while waiting for the session's command token and once more
// before the transaction reaches commit admission (aborting it cleanly);
// after admission the commit always runs to durability.
func (e *Executor) CommitCtx(ctx context.Context, id SessionID) (oop.Time, error) {
	r, err := e.session(id)
	if err != nil {
		return 0, err
	}
	if err := r.acquire(ctx); err != nil {
		return 0, err
	}
	defer r.release()
	if r.se == nil {
		return 0, fmt.Errorf("%w: %d", ErrNoSession, id)
	}
	return r.se.CommitCtx(ctx)
}

// Abort discards the session's pending changes.
func (e *Executor) Abort(id SessionID) error {
	r, err := e.session(id)
	if err != nil {
		return err
	}
	if err := r.acquire(nil); err != nil {
		return err
	}
	defer r.release()
	if r.se == nil {
		return fmt.Errorf("%w: %d", ErrNoSession, id)
	}
	r.se.Abort()
	return nil
}

// Logout closes a session. It takes the per-session lock before discarding
// the workspace, so a logout cannot race an in-flight Execute on the same
// session, and aborts the session's active transaction so it stops pinning
// the transaction manager's validation log.
func (e *Executor) Logout(id SessionID) error {
	e.mu.Lock()
	r, ok := e.sessions[id]
	if !ok {
		e.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrNoSession, id)
	}
	delete(e.sessions, id)
	e.met.logouts.Inc()
	e.met.sessions.Set(int64(len(e.sessions)))
	e.mu.Unlock()
	if err := r.acquire(nil); err != nil {
		return err
	}
	defer r.release()
	if r.se != nil {
		r.se.Close()
		r.se = nil
	}
	return nil
}

// ActiveSessions returns the number of live sessions.
func (e *Executor) ActiveSessions() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.sessions)
}
