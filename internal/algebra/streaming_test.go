package algebra

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/calculus"
	"repro/internal/core"
	"repro/internal/oop"
)

// --- Bugfix regressions ---

// An index scan whose directory disappears between planning and execution
// must surface the error, not silently return zero rows.
func TestIndexScanErrorPropagates(t *testing.T) {
	s, _ := buildAcmeDB(t)
	x, _ := s.Global("X")
	emps, _, _ := s.Fetch(x, s.Symbol("Employees"))
	if err := s.CreateIndex(emps, []string{"Salary"}); err != nil {
		t.Fatal(err)
	}
	q, err := calculus.Parse("{E: e} where (e in X!Employees) and e!Salary = 24000")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Optimize(q, s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Explain(), "index-scan") {
		t.Fatalf("expected an index plan:\n%s", plan.Explain())
	}
	// Sanity: the plan works while the directory exists.
	if rows, _, err := plan.Exec(s); err != nil || len(rows) != 1 {
		t.Fatalf("pre-drop exec: rows=%d err=%v", len(rows), err)
	}
	// Drop the directory out from under the compiled plan.
	if err := s.DropIndex(emps, []string{"Salary"}); err != nil {
		t.Fatal(err)
	}
	_, _, err = plan.Exec(s)
	if err == nil {
		t.Fatal("index scan with no directory returned no error")
	}
	if !errors.Is(err, core.ErrNoDirectory) {
		t.Fatalf("err = %v, want wrapped core.ErrNoDirectory", err)
	}
	// Dropping twice reports the miss too.
	if err := s.DropIndex(emps, []string{"Salary"}); !errors.Is(err, core.ErrNoDirectory) {
		t.Fatalf("second drop: err = %v", err)
	}
}

// valueToKey must cover every value kind without panicking; values with no
// key form (empty chars, unknown kinds) report ok=false.
func TestValueToKeyAllKinds(t *testing.T) {
	cases := []struct {
		name string
		v    calculus.Value
		ok   bool
	}{
		{"nil", calculus.Value{Kind: calculus.VNil}, true},
		{"bool-true", calculus.Value{Kind: calculus.VBool, B: true}, true},
		{"bool-false", calculus.Value{Kind: calculus.VBool, B: false}, true},
		{"num", calculus.Value{Kind: calculus.VNum, N: 3.5}, true},
		{"num-zero", calculus.Value{Kind: calculus.VNum}, true},
		{"str", calculus.Value{Kind: calculus.VStr, S: "Sales"}, true},
		{"str-empty", calculus.Value{Kind: calculus.VStr, S: ""}, true},
		{"char", calculus.Value{Kind: calculus.VChar, S: "x"}, true},
		{"char-multibyte", calculus.Value{Kind: calculus.VChar, S: "é"}, true},
		{"char-empty", calculus.Value{Kind: calculus.VChar, S: ""}, false}, // regression: panicked
		{"obj", calculus.Value{Kind: calculus.VObj, O: oop.FromSerial(7)}, true},
		{"obj-nil", calculus.Value{Kind: calculus.VObj, O: oop.Nil}, true},
		{"unknown-kind", calculus.Value{Kind: calculus.ValueKind(99)}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("valueToKey panicked: %v", r)
				}
			}()
			if _, ok := valueToKey(c.v); ok != c.ok {
				t.Errorf("valueToKey(%+v) ok = %v, want %v", c.v, ok, c.ok)
			}
		})
	}
}

// Planning must cost ranges from the O(1) member count, never by fetching
// member bodies: directory.scans stays flat across Optimize while
// query.member.counts moves.
func TestPlanningDoesNotScanMembers(t *testing.T) {
	s, _ := buildAcmeDB(t)
	q, err := calculus.Parse(paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	obs := s.DB().Obs()
	before := obs.Snapshot()
	if _, err := Optimize(q, s); err != nil {
		t.Fatal(err)
	}
	after := obs.Snapshot()
	if d := after.Counter("directory.scans") - before.Counter("directory.scans"); d != 0 {
		t.Errorf("planning performed %d member scans, want 0", d)
	}
	if d := after.Counter("query.cursor.opens") - before.Counter("query.cursor.opens"); d != 0 {
		t.Errorf("planning opened %d member cursors, want 0", d)
	}
	if after.Counter("query.member.counts") <= before.Counter("query.member.counts") {
		t.Error("planning should cost ranges via MemberCount")
	}
}

// --- Streaming executor invariants ---

// The parallel plan must be indistinguishable from the serial one: same
// rows, same order, same stats — and it must report its fanout.
func TestParallelMatchesSerialExactly(t *testing.T) {
	s, _ := buildAcmeDB(t)
	q, err := calculus.Parse(paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Optimize(q, s)
	if err != nil {
		t.Fatal(err)
	}
	serial, sStats, err := plan.Exec(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 8} {
		par, pStats, err := plan.ExecParallel(s, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if pStats != sStats {
			t.Errorf("workers=%d: stats %+v, serial %+v", workers, pStats, sStats)
		}
		if fmt.Sprint(par) != fmt.Sprint(serial) {
			t.Errorf("workers=%d: rows diverge from serial (order-sensitive)", workers)
		}
	}
	if ex := plan.ExplainParallel(4); !strings.Contains(ex, "parallel workers=4") {
		t.Errorf("ExplainParallel:\n%s", ex)
	}
}

// Prebound variables supplied via ExecWith stay visible through the slot
// frame exactly as the old map-clone executor layered them.
func TestExecWithPreboundBinding(t *testing.T) {
	s, objs := buildAcmeDB(t)
	q, err := calculus.Parse("{M: m} where (m in d!Managers)")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := OptimizeWithBound(q, s, map[string]bool{"d": true})
	if err != nil {
		t.Fatal(err)
	}
	rows, _, err := plan.ExecWith(s, calculus.Binding{"d": objs["A12"]})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want Sales' 2 managers", len(rows))
	}
	// Result tuples must not alias executor-internal storage: a second run
	// cannot disturb the first run's rows.
	first := fmt.Sprint(rows)
	if _, _, err := plan.ExecWith(s, calculus.Binding{"d": objs["A16"]}); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(rows) != first {
		t.Error("tuples alias reused executor storage")
	}
}

// --- Randomized plan equivalence ---

// canonical renders a result set order-insensitively for comparison.
func canonical(ts []Tuple) string {
	SortTuples(ts)
	var b strings.Builder
	for _, tp := range ts {
		for i, l := range tp.Labels {
			fmt.Fprintf(&b, "%s=%v;", l, tp.Values[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestRandomizedPlanEquivalence drives random queries over a random dataset
// through every plan family — naive translate, pushdown-only, fully
// optimized (with and without an index available), and parallel — and
// insists they all compute the same relation.
func TestRandomizedPlanEquivalence(t *testing.T) {
	s, _ := buildAcmeDB(t)
	rng := rand.New(rand.NewSource(1984)) // fixed seed: reproducible failures

	// Grow a random Staff set alongside the Acme fixture.
	x, _ := s.Global("X")
	k := s.DB().Kernel()
	staff, err := s.NewObject(k.Set)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Store(x, s.Symbol("Staff"), staff); err != nil {
		t.Fatal(err)
	}
	grades := []string{"junior", "senior", "principal"}
	for i := 0; i < 24; i++ {
		m, err := s.NewObject(k.Dictionary)
		if err != nil {
			t.Fatal(err)
		}
		g, _ := s.NewString(grades[rng.Intn(len(grades))])
		_ = s.Store(m, s.Symbol("Salary"), oop.MustInt(int64(10000+rng.Intn(30)*1000)))
		_ = s.Store(m, s.Symbol("Grade"), g)
		if _, err := s.AddToSet(staff, m); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}

	ops := []string{">", ">=", "<", "<=", "="}
	queries := []string{paperQuery}
	for i := 0; i < 12; i++ {
		op := ops[rng.Intn(len(ops))]
		threshold := 10000 + rng.Intn(31)*1000
		queries = append(queries,
			fmt.Sprintf("{E: e} where (e in X!Staff) and e!Salary %s %d", op, threshold))
	}
	queries = append(queries,
		"{E: e} where (e in X!Staff) and e!Grade = 'senior'",
		"{E: e} where (e in X!Staff) and (e!Salary > 20000 or e!Grade = 'junior')",
		"{E: e} where (e in X!Staff) and not e!Salary < 25000",
	)

	run := func(idx bool) {
		for _, src := range queries {
			q, err := calculus.Parse(src)
			if err != nil {
				t.Fatalf("parse %q: %v", src, err)
			}
			naive, err := Translate(q)
			if err != nil {
				t.Fatal(err)
			}
			push, err := OptimizePushdownOnly(q, s)
			if err != nil {
				t.Fatal(err)
			}
			opt, err := Optimize(q, s)
			if err != nil {
				t.Fatal(err)
			}
			nRows, _, err := naive.Exec(s)
			if err != nil {
				t.Fatalf("naive %q: %v", src, err)
			}
			pRows, _, err := push.Exec(s)
			if err != nil {
				t.Fatalf("pushdown %q: %v", src, err)
			}
			oRows, _, err := opt.Exec(s)
			if err != nil {
				t.Fatalf("optimized %q: %v", src, err)
			}
			parRows, _, err := opt.ExecParallel(s, 1+len(src)%4)
			if err != nil {
				t.Fatalf("parallel %q: %v", src, err)
			}
			want := canonical(nRows)
			for name, got := range map[string]string{
				"pushdown": canonical(pRows),
				"opt":      canonical(oRows),
				"parallel": canonical(parRows),
			} {
				if got != want {
					t.Errorf("index=%v %s diverges on %q:\n got %q\nwant %q", idx, name, src, got, want)
				}
			}
		}
	}

	run(false)
	if err := s.CreateIndex(staff, []string{"Salary"}); err != nil {
		t.Fatal(err)
	}
	run(true) // same queries, now index-eligible plans
}
