package algebra

import (
	"strings"
	"testing"

	"repro/internal/auth"
	"repro/internal/calculus"
	"repro/internal/core"
	"repro/internal/oop"
)

// buildAcmeDB constructs the §5.1 database fragment:
//
//	Acme: {Departments: {A12: {Name:'Sales', Managers:{'Nathen','Roberts'}, Budget:142000},
//	                     A16: {Name:'Research', Managers:{'Carter'}, Budget:256500}},
//	       Employees: {E62: {Name:{First:'Ellen',Last:'Burns'}, Salary:24650, Depts:{'Marketing'}},
//	                   E83: {Name:{First:'Robert',Last:'Peters'}, Salary:24000, Depts:{'Sales','Planning'}}, ...}}
//
// plus extra rows so the paper query has a verifiable, non-trivial answer.
func buildAcmeDB(t testing.TB) (*core.Session, map[string]oop.OOP) {
	t.Helper()
	db, err := core.Open(t.TempDir(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	s, err := db.NewSession(auth.SystemUser, "swordfish")
	if err != nil {
		t.Fatal(err)
	}
	k := db.Kernel()
	objs := map[string]oop.OOP{}

	newDict := func() oop.OOP { o, _ := s.NewObject(k.Dictionary); return o }
	newSet := func() oop.OOP { o, _ := s.NewObject(k.Set); return o }
	str := func(v string) oop.OOP { o, _ := s.NewString(v); return o }
	stringSet := func(vals ...string) oop.OOP {
		set := newSet()
		for _, v := range vals {
			if _, err := s.AddToSet(set, str(v)); err != nil {
				t.Fatal(err)
			}
		}
		return set
	}

	x := newDict()
	world, _ := s.Global("World")
	_ = s.Store(world, s.Symbol("X"), x)
	if err := s.SetGlobal("X", x); err != nil {
		t.Fatal(err)
	}

	departments := newDict()
	employees := newDict()
	_ = s.Store(x, s.Symbol("Departments"), departments)
	_ = s.Store(x, s.Symbol("Employees"), employees)

	dept := func(label, name string, budget int64, managers ...string) oop.OOP {
		d := newDict()
		_ = s.Store(d, s.Symbol("Name"), str(name))
		_ = s.Store(d, s.Symbol("Managers"), stringSet(managers...))
		_ = s.Store(d, s.Symbol("Budget"), oop.MustInt(budget))
		_ = s.Store(departments, s.Symbol(label), d)
		objs[label] = d
		return d
	}
	dept("A12", "Sales", 142000, "Nathen", "Roberts")
	dept("A16", "Research", 256500, "Carter")

	emp := func(label, first, last string, salary int64, depts ...string) oop.OOP {
		e := newDict()
		n := newDict()
		_ = s.Store(n, s.Symbol("First"), str(first))
		_ = s.Store(n, s.Symbol("Last"), str(last))
		_ = s.Store(e, s.Symbol("Name"), n)
		_ = s.Store(e, s.Symbol("Salary"), oop.MustInt(salary))
		_ = s.Store(e, s.Symbol("Depts"), stringSet(depts...))
		_ = s.Store(employees, s.Symbol(label), e)
		objs[label] = e
		return e
	}
	emp("E62", "Ellen", "Burns", 24650, "Marketing")
	emp("E83", "Robert", "Peters", 24000, "Sales", "Planning")
	// Extra employees so the paper query selects someone: salary must
	// exceed 10% of the department budget (14,200 for Sales).
	emp("E90", "Grace", "Hopper", 15000, "Sales")
	emp("E91", "Alan", "Kay", 30000, "Research")     // 30000 > 25650: selected
	emp("E92", "Ada", "Lovelace", 25000, "Research") // 25000 < 25650: not selected

	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	return s, objs
}

const paperQuery = `{Emp: e, Mgr: m} where
 (e in X!Employees) and
 (d in X!Departments) [(m in d!Managers) and
 (d!Name in e!Depts) and (e!Salary > 0.10 * d!Budget)]`

// expected result: employees whose salary exceeds 10% of a department they
// belong to, paired with each manager of that department.
// E83 (24000 > 14200, Sales): Nathen, Roberts.
// E90 (15000 > 14200, Sales): Nathen, Roberts.
// E91 (30000 > 25650, Research): Carter.
func expectedPairs(objs map[string]oop.OOP, s *core.Session) map[[2]string]bool {
	return map[[2]string]bool{
		{"E83", "Nathen"}:  true,
		{"E83", "Roberts"}: true,
		{"E90", "Nathen"}:  true,
		{"E90", "Roberts"}: true,
		{"E91", "Carter"}:  true,
	}
}

func decodePairs(t *testing.T, s *core.Session, objs map[string]oop.OOP, rows []Tuple) map[[2]string]bool {
	t.Helper()
	label := map[oop.OOP]string{}
	for k, v := range objs {
		label[v] = k
	}
	got := map[[2]string]bool{}
	for _, r := range rows {
		e, _ := r.Get("Emp")
		m, _ := r.Get("Mgr")
		mb, err := s.BytesOf(m)
		if err != nil {
			t.Fatalf("manager not a string: %v", err)
		}
		got[[2]string{label[e], string(mb)}] = true
	}
	return got
}

func TestPaperQueryNaive(t *testing.T) {
	s, objs := buildAcmeDB(t)
	rows, stats, err := RunNaive(s, paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	got := decodePairs(t, s, objs, rows)
	want := expectedPairs(objs, s)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for k := range want {
		if !got[k] {
			t.Errorf("missing pair %v", k)
		}
	}
	if stats.MembersScanned == 0 {
		t.Error("naive plan should scan")
	}
}

func TestPaperQueryOptimizedMatchesNaive(t *testing.T) {
	s, objs := buildAcmeDB(t)
	naive, nStats, err := RunNaive(s, paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	opt, oStats, err := Run(s, paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	gn := decodePairs(t, s, objs, naive)
	go_ := decodePairs(t, s, objs, opt)
	if len(gn) != len(go_) {
		t.Fatalf("plans disagree: naive %v, optimized %v", gn, go_)
	}
	for k := range gn {
		if !go_[k] {
			t.Errorf("optimized missing %v", k)
		}
	}
	// Pushdown must strictly reduce predicate evaluations: the naive plan
	// evaluates the full conjunction on the whole cross product.
	if oStats.PredEvals >= nStats.PredEvals {
		t.Errorf("pushdown did not reduce predicate evals: naive %d, opt %d", nStats.PredEvals, oStats.PredEvals)
	}
}

func TestIndexSelection(t *testing.T) {
	s, objs := buildAcmeDB(t)
	x, _ := s.Global("X")
	emps, _, _ := s.Fetch(x, s.Symbol("Employees"))
	if err := s.CreateIndex(emps, []string{"Salary"}); err != nil {
		t.Fatal(err)
	}
	src := "{E: e} where (e in X!Employees) and e!Salary = 24000"
	q, err := calculus.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Optimize(q, s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Explain(), "index-scan") {
		t.Fatalf("expected index scan in plan:\n%s", plan.Explain())
	}
	rows, stats, err := plan.Exec(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	if e, _ := rows[0].Get("E"); e != objs["E83"] {
		t.Error("wrong employee")
	}
	if stats.IndexProbes != 1 || stats.MembersScanned != 0 {
		t.Errorf("stats = %+v, want pure index access", stats)
	}
}

func TestIndexRangeComparison(t *testing.T) {
	s, objs := buildAcmeDB(t)
	x, _ := s.Global("X")
	emps, _, _ := s.Fetch(x, s.Symbol("Employees"))
	if err := s.CreateIndex(emps, []string{"Salary"}); err != nil {
		t.Fatal(err)
	}
	rows, stats, err := Run(s, "{E: e} where (e in X!Employees) and e!Salary >= 25000")
	if err != nil {
		t.Fatal(err)
	}
	// Salaries: E62=24650, E83=24000, E90=15000, E91=30000, E92=25000.
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	seen := map[oop.OOP]bool{}
	for _, r := range rows {
		e, _ := r.Get("E")
		seen[e] = true
	}
	if !seen[objs["E91"]] || !seen[objs["E92"]] {
		t.Error("wrong range result")
	}
	if stats.IndexProbes == 0 {
		t.Error("range should use the directory")
	}
	// Mirrored comparison (const <= var!path).
	rows2, _, err := Run(s, "{E: e} where (e in X!Employees) and 25000 <= e!Salary")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows2) != 2 {
		t.Errorf("mirrored rows = %d", len(rows2))
	}
}

func TestDependentRangeNoIndex(t *testing.T) {
	// d!Managers is dependent: must fall back to scans and still be right.
	s, _ := buildAcmeDB(t)
	rows, _, err := Run(s, "{M: m} where (d in X!Departments) [(m in d!Managers) and d!Name = 'Sales']")
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, r := range rows {
		m, _ := r.Get("M")
		b, _ := s.BytesOf(m)
		names[string(b)] = true
	}
	if !names["Nathen"] || !names["Roberts"] || len(names) != 2 {
		t.Errorf("managers = %v", names)
	}
}

func TestOrAndNotPredicates(t *testing.T) {
	s, objs := buildAcmeDB(t)
	rows, _, err := Run(s, "{E: e} where (e in X!Employees) and (e!Salary = 24000 or e!Salary = 15000)")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("or rows = %d", len(rows))
	}
	rows, _, err = Run(s, "{E: e} where (e in X!Employees) and not e!Salary < 25000")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // E91 30000, E92 25000
		t.Fatalf("not rows = %d", len(rows))
	}
	_ = objs
}

func TestNestedPathPredicate(t *testing.T) {
	s, objs := buildAcmeDB(t)
	rows, _, err := Run(s, "{E: e} where (e in X!Employees) and e!Name!Last = 'Peters'")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	if e, _ := rows[0].Get("E"); e != objs["E83"] {
		t.Error("wrong employee by nested path")
	}
}

func TestEmptyRangeSource(t *testing.T) {
	s, _ := buildAcmeDB(t)
	// Missing element -> nil source -> empty result, not an error.
	rows, _, err := Run(s, "{E: e} where (e in X!Contractors)")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Errorf("rows = %d", len(rows))
	}
}

func TestErrorCases(t *testing.T) {
	s, _ := buildAcmeDB(t)
	// Range over a simple value.
	if _, _, err := Run(s, "{E: e} where (e in X!Departments!A12!Budget)"); err == nil {
		t.Error("range over number should fail")
	}
	// Arithmetic on strings.
	if _, _, err := Run(s, "{E: e} where (e in X!Employees) and e!Name + 1 = 2"); err == nil {
		t.Error("arithmetic on object should fail")
	}
	// No ranges at all.
	if _, err := calculus.Parse("{E: e} where e!x = 1"); err == nil {
		t.Error("unbound target should fail at parse")
	}
}

func TestExplainShapes(t *testing.T) {
	s, _ := buildAcmeDB(t)
	q, err := calculus.Parse(paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	naive, _ := Translate(q)
	opt, _ := Optimize(q, s)
	if !strings.Contains(naive.Explain(), "select") || !strings.Contains(naive.Explain(), "scan") {
		t.Errorf("naive explain:\n%s", naive.Explain())
	}
	// The optimized plan splits the conjunction into multiple selects.
	if strings.Count(opt.Explain(), "select") < 2 {
		t.Errorf("optimized explain should show pushdown:\n%s", opt.Explain())
	}
}

func TestSortTuples(t *testing.T) {
	ts := []Tuple{
		{Labels: []string{"A"}, Values: []oop.OOP{oop.FromSerial(2)}},
		{Labels: []string{"A"}, Values: []oop.OOP{oop.FromSerial(1)}},
	}
	SortTuples(ts)
	if ts[0].Values[0] != oop.FromSerial(1) {
		t.Error("SortTuples order")
	}
	if _, ok := ts[0].Get("B"); ok {
		t.Error("Get on missing label")
	}
}

func TestTimeDialedQuery(t *testing.T) {
	// Queries respect the session dial: run the paper query against a past
	// state after changing a salary.
	s, objs := buildAcmeDB(t)
	_ = s.Store(objs["E83"], s.Symbol("Salary"), oop.MustInt(5000)) // drops below threshold
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	rows, _, err := Run(s, paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	got := decodePairs(t, s, objs, rows)
	if got[[2]string{"E83", "Nathen"}] {
		t.Error("E83 should no longer qualify")
	}
	if err := s.SetTimeDial(1); err != nil {
		t.Fatal(err)
	}
	rows, _, err = Run(s, paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	got = decodePairs(t, s, objs, rows)
	if !got[[2]string{"E83", "Nathen"}] {
		t.Error("dialed query should see E83's old salary")
	}
}

func TestPushdownOnlyMatchesOthers(t *testing.T) {
	s, objs := buildAcmeDB(t)
	q, err := calculus.Parse(paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	push, err := OptimizePushdownOnly(q, s)
	if err != nil {
		t.Fatal(err)
	}
	rows, pStats, err := push.Exec(s)
	if err != nil {
		t.Fatal(err)
	}
	got := decodePairs(t, s, objs, rows)
	want := expectedPairs(objs, s)
	if len(got) != len(want) {
		t.Fatalf("pushdown-only answer differs: %v", got)
	}
	for k := range want {
		if !got[k] {
			t.Errorf("missing %v", k)
		}
	}
	// Pushdown must beat the naive plan on predicate evaluations.
	_, nStats, err := RunNaive(s, paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	if pStats.PredEvals >= nStats.PredEvals {
		t.Errorf("pushdown evals %d >= naive %d", pStats.PredEvals, nStats.PredEvals)
	}
	// Ranges stay in written order: scan of e precedes scan of d in the
	// plan tree (d scans appear above e in the printed pipeline).
	plan := push.Explain()
	if !strings.Contains(plan, "scan") {
		t.Errorf("plan:\n%s", plan)
	}
}
