package algebra

import (
	"fmt"
	"sort"

	"repro/internal/calculus"
	"repro/internal/core"
	"repro/internal/oop"
)

// Translate converts a calculus query into the canonical (naive) algebra
// plan: scans in the order the ranges were written, every predicate
// evaluated at the top, then projection. This is the direct output of the
// calculus→algebra translation algorithm before optimization; benchmarks
// use it as the "no access planning" baseline.
func Translate(q *calculus.Query) (*Plan, error) {
	if len(q.Ranges) == 0 {
		return nil, fmt.Errorf("algebra: query has no ranges")
	}
	var cur Node
	for _, r := range q.Ranges {
		cur = &scanNode{input: cur, v: r.Var, source: r.Source}
	}
	if q.Pred != nil {
		cur = &selectNode{input: cur, pred: q.Pred}
	}
	root := &projectNode{input: cur, fields: q.Target}
	return newPlan(root, q.Target), nil
}

// Optimize converts a calculus query into an optimized plan:
//
//  1. Range reordering: ranges are scheduled greedily, respecting binding
//     dependencies, preferring index-equipped scans, then smaller
//     resolvable sets.
//  2. Selection pushdown: each conjunct runs at the earliest point where
//     all its variables are bound.
//  3. Index selection: an equality or comparison between var!path and an
//     expression independent of var becomes a directory probe when the set
//     is resolvable at plan time and a matching directory exists.
//
// The session is consulted for directory availability and set sizes; the
// resulting plan remains valid as data changes (it re-resolves sources at
// run time), though its cost choices reflect planning-time statistics.
func Optimize(q *calculus.Query, s *core.Session) (*Plan, error) {
	return OptimizeWithBound(q, s, nil)
}

// OptimizeWithBound optimizes a query whose expressions may reference the
// given externally bound variables (OPAL locals captured by an embedded
// calculus expression). Their values are supplied at run time via ExecWith.
func OptimizeWithBound(q *calculus.Query, s *core.Session, prebound map[string]bool) (*Plan, error) {
	if len(q.Ranges) == 0 {
		return nil, fmt.Errorf("algebra: query has no ranges")
	}
	conjuncts := calculus.Conjuncts(q.Pred)
	usedPred := make([]bool, len(conjuncts))

	remaining := append([]calculus.Range(nil), q.Ranges...)
	bound := map[string]bool{}
	for v := range prebound {
		bound[v] = true
	}
	var cur Node

	card := 1.0 // estimated cardinality of the intermediate result
	for len(remaining) > 0 {
		// Candidates: ranges whose source variables are already bound. The
		// greedy objective is the System-R style estimated cardinality of
		// the intermediate result after adding the range and applying every
		// conjunct it newly binds (default selectivities: equality 0.1,
		// comparison 0.3, anything else 0.5) — so a selective predicate
		// pulls its range forward, ahead of cheap but unfiltered dependent
		// ranges.
		type candidate struct {
			idx   int
			cost  float64 // resulting estimated cardinality
			index *indexCandidate
		}
		var best *candidate
		for i, r := range remaining {
			fv := map[string]bool{}
			r.Source.FreeVars(fv)
			ok := true
			for v := range fv {
				if !bound[v] && !isGlobalRoot(s, v) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			size := estimateCost(s, r, bound)
			c := candidate{idx: i}
			if ix := findIndexCandidate(s, r, bound, conjuncts, usedPred); ix != nil {
				c.index = ix
				size = 1 // directory probe yields the matching members only
			}
			sel := 1.0
			for j, cj := range conjuncts {
				if usedPred[j] || (c.index != nil && j == c.index.predIdx) {
					continue
				}
				pfv := map[string]bool{}
				cj.FreeVars(pfv)
				applies := pfv[r.Var]
				for v := range pfv {
					if v != r.Var && !bound[v] && !isGlobalRoot(s, v) {
						applies = false
						break
					}
				}
				if applies {
					sel *= selectivity(cj)
				}
			}
			c.cost = card * size * sel
			if best == nil || c.cost < best.cost {
				cc := c
				best = &cc
			}
		}
		if best == nil {
			return nil, fmt.Errorf("algebra: ranges have unresolvable dependencies")
		}
		card = best.cost
		if card < 1 {
			card = 1
		}
		r := remaining[best.idx]
		remaining = append(remaining[:best.idx], remaining[best.idx+1:]...)
		if best.index != nil {
			usedPred[best.index.predIdx] = true
			cur = &indexScanNode{
				input: cur, v: r.Var,
				set: best.index.set, path: best.index.path,
				op: best.index.op, key: best.index.key,
			}
		} else {
			cur = &scanNode{input: cur, v: r.Var, source: r.Source}
		}
		bound[r.Var] = true
		// Push down every not-yet-used conjunct now fully bound.
		for i, c := range conjuncts {
			if usedPred[i] {
				continue
			}
			fv := map[string]bool{}
			c.FreeVars(fv)
			all := true
			for v := range fv {
				if !bound[v] && !isGlobalRoot(s, v) {
					all = false
					break
				}
			}
			if all {
				usedPred[i] = true
				cur = &selectNode{input: cur, pred: c}
			}
		}
	}
	// Any stragglers (shouldn't happen, but keep the plan correct).
	for i, c := range conjuncts {
		if !usedPred[i] {
			cur = &selectNode{input: cur, pred: c}
		}
	}
	root := &projectNode{input: cur, fields: q.Target}
	return newPlan(root, q.Target), nil
}

// OptimizePushdownOnly applies selection pushdown but keeps the ranges in
// the order the calculus was written and never uses directories. It is the
// middle rung of the ablation in DESIGN.md (naive / pushdown-only / full):
// it isolates how much of the optimizer's win comes from pushdown alone
// versus range reordering and index selection.
func OptimizePushdownOnly(q *calculus.Query, s *core.Session) (*Plan, error) {
	if len(q.Ranges) == 0 {
		return nil, fmt.Errorf("algebra: query has no ranges")
	}
	conjuncts := calculus.Conjuncts(q.Pred)
	usedPred := make([]bool, len(conjuncts))
	bound := map[string]bool{}
	var cur Node
	for _, r := range q.Ranges {
		cur = &scanNode{input: cur, v: r.Var, source: r.Source}
		bound[r.Var] = true
		for i, c := range conjuncts {
			if usedPred[i] {
				continue
			}
			fv := map[string]bool{}
			c.FreeVars(fv)
			all := true
			for v := range fv {
				if !bound[v] && !isGlobalRoot(s, v) {
					all = false
					break
				}
			}
			if all {
				usedPred[i] = true
				cur = &selectNode{input: cur, pred: c}
			}
		}
	}
	for i, c := range conjuncts {
		if !usedPred[i] {
			cur = &selectNode{input: cur, pred: c}
		}
	}
	root := &projectNode{input: cur, fields: q.Target}
	return newPlan(root, q.Target), nil
}

func isGlobalRoot(s *core.Session, name string) bool {
	_, ok := s.Global(name)
	return ok
}

// selectivity is the System-R style default fraction of tuples a predicate
// passes.
func selectivity(e calculus.Expr) float64 {
	b, ok := e.(*calculus.Binary)
	if !ok {
		return 0.5
	}
	switch b.Op {
	case calculus.OpEq:
		return 0.1
	case calculus.OpLt, calculus.OpLe, calculus.OpGt, calculus.OpGe:
		return 0.3
	case calculus.OpIn:
		return 0.2
	default:
		return 0.5
	}
}

// estimateCost guesses the cardinality of a range at plan time.
func estimateCost(s *core.Session, r calculus.Range, bound map[string]bool) float64 {
	fv := map[string]bool{}
	r.Source.FreeVars(fv)
	for v := range fv {
		if bound[v] {
			// Dependent range: the fan-out is unknowable at plan time, so
			// assume it is substantial — underestimating would pull an
			// unfiltered nested loop ahead of selective predicates.
			return 64
		}
	}
	// Independent: try to resolve and count. MemberCount reads only the
	// set object's element table — planning never scans member bodies.
	if p, ok := r.Source.(*calculus.Path); ok {
		if o, err := calculus.EvalPath(s, p, calculus.Binding{}); err == nil && o.IsHeap() {
			if n, err := s.MemberCount(o); err == nil {
				return float64(n) + 2
			}
		}
	}
	return 1000 // unknown
}

type indexCandidate struct {
	set     oop.OOP
	path    []string
	op      indexOp
	key     calculus.Expr
	predIdx int
}

// findIndexCandidate looks for a conjunct of the form
// rangeVar!p1!..!pk relop keyExpr (or mirrored) where keyExpr does not
// mention rangeVar, the range source resolves to a set at plan time, and a
// directory on (set, p1..pk) exists.
func findIndexCandidate(s *core.Session, r calculus.Range, bound map[string]bool, conjuncts []calculus.Expr, used []bool) *indexCandidate {
	// The source must resolve now (independent of unbound vars).
	fv := map[string]bool{}
	r.Source.FreeVars(fv)
	for v := range fv {
		if !isGlobalRoot(s, v) && !bound[v] {
			return nil
		}
	}
	srcPath, ok := r.Source.(*calculus.Path)
	if !ok {
		return nil
	}
	// Dependent sources can't be pre-resolved to one set.
	for v := range fv {
		if bound[v] {
			return nil
		}
	}
	setOOP, err := calculus.EvalPath(s, srcPath, calculus.Binding{})
	if err != nil || !setOOP.IsHeap() {
		return nil
	}
	for i, c := range conjuncts {
		if used[i] {
			continue
		}
		b, ok := c.(*calculus.Binary)
		if !ok {
			continue
		}
		var op indexOp
		switch b.Op {
		case calculus.OpEq:
			op = ixEq
		case calculus.OpLt:
			op = ixLt
		case calculus.OpLe:
			op = ixLe
		case calculus.OpGt:
			op = ixGt
		case calculus.OpGe:
			op = ixGe
		default:
			continue
		}
		try := func(lhs, rhs calculus.Expr, op indexOp) *indexCandidate {
			p, ok := lhs.(*calculus.Path)
			if !ok || p.Root != r.Var || len(p.Steps) == 0 {
				return nil
			}
			names := make([]string, len(p.Steps))
			for j, st := range p.Steps {
				if st.IsIndex || st.HasAt {
					return nil
				}
				names[j] = st.Name
			}
			// Key side must not mention the range variable and must be
			// evaluable once the outer vars are bound.
			kfv := map[string]bool{}
			rhs.FreeVars(kfv)
			if kfv[r.Var] {
				return nil
			}
			for v := range kfv {
				if !bound[v] && !isGlobalRoot(s, v) {
					return nil
				}
			}
			if _, found := s.FindIndex(setOOP, names); !found {
				return nil
			}
			return &indexCandidate{set: setOOP, path: names, op: op, key: rhs, predIdx: i}
		}
		if cand := try(b.L, b.R, op); cand != nil {
			return cand
		}
		// Mirrored: keyExpr relop var!path.
		mirror := map[indexOp]indexOp{ixEq: ixEq, ixLt: ixGt, ixLe: ixGe, ixGt: ixLt, ixGe: ixLe}
		if cand := try(b.R, b.L, mirror[op]); cand != nil {
			return cand
		}
	}
	return nil
}

// Run parses, optimizes and executes a calculus query in one call.
func Run(s *core.Session, src string) ([]Tuple, Stats, error) {
	q, err := calculus.Parse(src)
	if err != nil {
		return nil, Stats{}, err
	}
	p, err := Optimize(q, s)
	if err != nil {
		return nil, Stats{}, err
	}
	return p.Exec(s)
}

// RunNaive parses and executes with the unoptimized translation.
func RunNaive(s *core.Session, src string) ([]Tuple, Stats, error) {
	q, err := calculus.Parse(src)
	if err != nil {
		return nil, Stats{}, err
	}
	p, err := Translate(q)
	if err != nil {
		return nil, Stats{}, err
	}
	return p.Exec(s)
}

// SortTuples orders result rows deterministically (by the OOP words of
// their values) for stable comparison in tests and reports.
func SortTuples(ts []Tuple) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i].Values, ts[j].Values
		for k := range a {
			if k >= len(b) {
				return false
			}
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}
