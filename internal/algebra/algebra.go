// Package algebra implements the set algebra and the calculus→algebra
// translation algorithm (§3, §5.1: "We have developed a set algebra, and an
// algorithm to translate a set-calculus expression to a set-algebra
// expression"). The algebra is an iterator tree over variable bindings:
// dependent scans (nested loops over possibly variable-dependent sources),
// directory-backed index scans, selections and a final projection.
//
// Execution is streaming end to end: scans pull members through the storage
// cursors (core.Session.MembersFunc, IndexLookupFunc/IndexRangeFunc) and
// bind them into one reusable slot frame per execution, so no member slice
// and no per-row binding map is ever materialized. The optimizer performs
// the access planning the paper says a declarative syntax enables (§5.2):
// selection pushdown, directory (index) selection, and range reordering by
// estimated cardinality.
package algebra

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/calculus"
	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/oop"
)

// Tuple is one query result row.
type Tuple struct {
	Labels []string
	Values []oop.OOP
}

// Get returns the value under a label.
func (t Tuple) Get(label string) (oop.OOP, bool) {
	for i, l := range t.Labels {
		if l == label {
			return t.Values[i], true
		}
	}
	return oop.Invalid, false
}

// Stats counts work done during execution, for the experiment harness.
type Stats struct {
	MembersScanned int // bindings produced by sequential scans
	IndexProbes    int // directory lookups / range scans
	PredEvals      int // selection predicate evaluations
}

func (s *Stats) add(o Stats) {
	s.MembersScanned += o.MembersScanned
	s.IndexProbes += o.IndexProbes
	s.PredEvals += o.PredEvals
}

// frame is the executor's reusable slot-based binding environment. Each
// scan/index-scan node owns one slot, assigned when the plan is built; a
// node re-binds its slot in place for every row it emits, so extending a
// binding costs zero allocations. Values read out of the frame are only
// valid until the producing node's next emission — consumers that retain a
// row (the final projection) must copy what they keep, never alias the
// frame's backing array.
type frame struct {
	vars []string
	vals []oop.OOP
	set  []bool
	base calculus.Env // externally supplied initial binding, if any
}

// LookupVar implements calculus.Env. Inner (later) slots shadow outer ones
// and set slots shadow the base binding, mirroring how the old map clones
// layered each scan's variable over the initial binding.
func (f *frame) LookupVar(name string) (oop.OOP, bool) {
	for i := len(f.vars) - 1; i >= 0; i-- {
		if f.vars[i] == name && f.set[i] {
			return f.vals[i], true
		}
	}
	if f.base != nil {
		return f.base.LookupVar(name)
	}
	return oop.Invalid, false
}

// fanout tells one designated scan node to iterate a pre-materialized
// member chunk instead of opening its own cursor — the mechanism behind
// parallel execution, where the outermost scan's members are split into
// contiguous chunks across a worker pool.
type fanout struct {
	node    Node
	members []oop.OOP
}

type execCtx struct {
	s     *core.Session
	stats *Stats
	frame *frame
	fan   *fanout
}

// Node is a streaming algebra operator. compile builds the node's drive
// function once per execution: all closures are allocated up front, and the
// per-row work inside them touches only the shared frame.
type Node interface {
	compile(ctx *execCtx, emit func() error) func() error
	describe(indent int, b *strings.Builder)
}

// Explain renders the plan tree.
func Explain(n Node) string {
	var b strings.Builder
	n.describe(0, &b)
	return strings.TrimRight(b.String(), "\n")
}

func pad(indent int, b *strings.Builder) {
	for i := 0; i < indent; i++ {
		b.WriteString("  ")
	}
}

// --- Scan: sequential (possibly dependent) iteration over a set ---

type scanNode struct {
	input  Node // nil = start of pipeline
	v      string
	source calculus.Expr
	slot   int
}

func (n *scanNode) describe(indent int, b *strings.Builder) {
	pad(indent, b)
	fmt.Fprintf(b, "scan %s in %s\n", n.v, n.source)
	if n.input != nil {
		n.input.describe(indent+1, b)
	}
}

func (n *scanNode) compile(ctx *execCtx, emit func() error) func() error {
	cursor := func(m oop.OOP) error {
		ctx.stats.MembersScanned++
		ctx.frame.vals[n.slot] = m
		ctx.frame.set[n.slot] = true
		return emit()
	}
	body := func() error {
		if fan := ctx.fan; fan != nil && fan.node == Node(n) {
			for _, m := range fan.members {
				if err := cursor(m); err != nil {
					return err
				}
			}
			return nil
		}
		src, err := calculus.Eval(ctx.s, n.source, ctx.frame)
		if err != nil {
			return err
		}
		if src.Kind == calculus.VNil {
			return nil // empty range
		}
		if src.Kind != calculus.VObj && src.Kind != calculus.VStr {
			return fmt.Errorf("algebra: range source %s is not a set", n.source)
		}
		return ctx.s.MembersFunc(src.O, cursor)
	}
	if n.input == nil {
		return body
	}
	return n.input.compile(ctx, body)
}

// --- IndexScan: directory-backed associative access ---

type indexOp uint8

const (
	ixEq indexOp = iota
	ixLt
	ixLe
	ixGt
	ixGe
)

type indexScanNode struct {
	input Node
	v     string
	set   oop.OOP
	path  []string
	op    indexOp
	key   calculus.Expr // evaluated per input binding
	slot  int
}

func (n *indexScanNode) describe(indent int, b *strings.Builder) {
	pad(indent, b)
	ops := map[indexOp]string{ixEq: "=", ixLt: "<", ixLe: "<=", ixGt: ">", ixGe: ">="}
	fmt.Fprintf(b, "index-scan %s in %v by %s %s %s\n", n.v, n.set, strings.Join(n.path, "!"), ops[n.op], n.key)
	if n.input != nil {
		n.input.describe(indent+1, b)
	}
}

func (n *indexScanNode) compile(ctx *execCtx, emit func() error) func() error {
	cursor := func(m oop.OOP) error {
		ctx.frame.vals[n.slot] = m
		ctx.frame.set[n.slot] = true
		return emit()
	}
	// One key cell per execution, re-filled on every probe, so taking its
	// address for range bounds does not allocate per row.
	var key directory.Key
	body := func() error {
		kv, err := calculus.Eval(ctx.s, n.key, ctx.frame)
		if err != nil {
			return err
		}
		k, ok := valueToKey(kv)
		if !ok {
			return fmt.Errorf("algebra: %s does not evaluate to an indexable key", n.key)
		}
		key = k
		ctx.stats.IndexProbes++
		// A missing directory (dropped between planning and execution)
		// surfaces as core.ErrNoDirectory instead of zero silent rows.
		switch n.op {
		case ixEq:
			return ctx.s.IndexLookupFunc(n.set, n.path, key, cursor)
		case ixLt:
			return ctx.s.IndexRangeFunc(n.set, n.path, nil, &key, true, false, cursor)
		case ixLe:
			return ctx.s.IndexRangeFunc(n.set, n.path, nil, &key, true, true, cursor)
		case ixGt:
			return ctx.s.IndexRangeFunc(n.set, n.path, &key, nil, false, true, cursor)
		default: // ixGe
			return ctx.s.IndexRangeFunc(n.set, n.path, &key, nil, true, true, cursor)
		}
	}
	if n.input == nil {
		return body
	}
	return n.input.compile(ctx, body)
}

// valueToKey converts a calculus value into an index key. ok=false means
// the value has no key form (e.g. an empty char) — never a panic.
func valueToKey(v calculus.Value) (directory.Key, bool) {
	switch v.Kind {
	case calculus.VNil:
		return directory.NilKey(), true
	case calculus.VBool:
		return directory.BoolKey(v.B), true
	case calculus.VNum:
		return directory.NumberKey(v.N), true
	case calculus.VStr:
		return directory.StringKey(v.S), true
	case calculus.VChar:
		r := []rune(v.S)
		if len(r) == 0 {
			return directory.Key{}, false
		}
		return directory.CharKey(r[0]), true
	case calculus.VObj:
		return directory.OOPKey(v.O), true
	}
	return directory.Key{}, false
}

// --- Select ---

type selectNode struct {
	input Node
	pred  calculus.Expr
}

func (n *selectNode) describe(indent int, b *strings.Builder) {
	pad(indent, b)
	fmt.Fprintf(b, "select %s\n", n.pred)
	if n.input != nil {
		n.input.describe(indent+1, b)
	}
}

func (n *selectNode) compile(ctx *execCtx, emit func() error) func() error {
	body := func() error {
		ctx.stats.PredEvals++
		v, err := calculus.Eval(ctx.s, n.pred, ctx.frame)
		if err != nil {
			return err
		}
		if calculus.Truthy(v) {
			return emit()
		}
		return nil
	}
	if n.input == nil {
		return body
	}
	return n.input.compile(ctx, body)
}

// --- Project ---

type projectNode struct {
	input  Node
	fields []calculus.TargetField
}

func (n *projectNode) describe(indent int, b *strings.Builder) {
	pad(indent, b)
	parts := make([]string, len(n.fields))
	for i, f := range n.fields {
		parts[i] = f.Label + ": " + f.Var
	}
	fmt.Fprintf(b, "project {%s}\n", strings.Join(parts, ", "))
	if n.input != nil {
		n.input.describe(indent+1, b)
	}
}

func (n *projectNode) compile(ctx *execCtx, emit func() error) func() error {
	return n.input.compile(ctx, emit)
}

// Plan is an executable algebra expression.
type Plan struct {
	root   *projectNode
	fields []calculus.TargetField
	labels []string
	vars   []string // frame slot names, outer-to-inner pipeline order
	slots  []int    // fields[i] -> frame slot, -1 when externally bound

	// scratch pools flat result-value accumulators across executions, so a
	// run's only output allocations are the exact-size tuple slice and one
	// value slab. Pooled memory never escapes: the accumulator is copied
	// into the fresh slab before the pool gets it back.
	scratch sync.Pool // *runScratch
}

type runScratch struct {
	vals []oop.OOP // row-major: nf values per result row
}

// newPlan finalizes a node tree into a plan: every scan/index-scan node is
// assigned its frame slot and the projection's fields are resolved to slots.
func newPlan(root *projectNode, fields []calculus.TargetField) *Plan {
	p := &Plan{root: root, fields: fields}
	p.scratch.New = func() any { return &runScratch{} }
	p.assignSlots(root)
	p.labels = make([]string, len(fields))
	p.slots = make([]int, len(fields))
	for i, f := range fields {
		p.labels[i] = f.Label
		p.slots[i] = -1
		for j, v := range p.vars {
			if v == f.Var {
				p.slots[i] = j // later slots win, like inner bindings
			}
		}
	}
	return p
}

func (p *Plan) assignSlots(n Node) {
	switch t := n.(type) {
	case *scanNode:
		if t.input != nil {
			p.assignSlots(t.input)
		}
		t.slot = len(p.vars)
		p.vars = append(p.vars, t.v)
	case *indexScanNode:
		if t.input != nil {
			p.assignSlots(t.input)
		}
		t.slot = len(p.vars)
		p.vars = append(p.vars, t.v)
	case *selectNode:
		if t.input != nil {
			p.assignSlots(t.input)
		}
	case *projectNode:
		if t.input != nil {
			p.assignSlots(t.input)
		}
	}
}

func (p *Plan) newFrame(initial calculus.Binding) *frame {
	f := &frame{
		vars: p.vars,
		vals: make([]oop.OOP, len(p.vars)),
		set:  make([]bool, len(p.vars)),
	}
	if len(initial) > 0 {
		f.base = initial
	}
	return f
}

// Explain renders the plan.
func (p *Plan) Explain() string { return Explain(p.root) }

// ExplainParallel renders the plan annotated with the fan-out ExecParallel
// would apply at the given worker count.
func (p *Plan) ExplainParallel(workers int) string {
	if workers <= 0 {
		workers = DefaultParallelism
	}
	if _, ok := p.outerScan(); !ok {
		return p.Explain() + "\n(parallel: outer node not fannable; serial fallback)"
	}
	return fmt.Sprintf("parallel workers=%d over outer scan\n%s", workers, p.Explain())
}

// Exec runs the plan in a session, returning result tuples and statistics.
func (p *Plan) Exec(s *core.Session) ([]Tuple, Stats, error) {
	return p.ExecWith(s, calculus.Binding{})
}

// ExecWith runs the plan with an initial binding — the mechanism behind
// OPAL's embedded calculus expressions, whose "procedural parts" are the
// enclosing method's variables (§5.4).
func (p *Plan) ExecWith(s *core.Session, initial calculus.Binding) ([]Tuple, Stats, error) {
	ctx := &execCtx{s: s, stats: &Stats{}, frame: p.newFrame(initial)}
	out, err := p.run(ctx)
	return out, *ctx.stats, err
}

// run compiles the pipeline against ctx and drives it to completion. Result
// values accumulate row-major in a pooled flat scratch slab; on success they
// are copied once into an exact-size slab that backs every Tuple's Values.
// That copy is the aliasing boundary: returned tuples never share storage
// with the frame or with pooled scratch memory.
func (p *Plan) run(ctx *execCtx) ([]Tuple, error) {
	sc := p.scratch.Get().(*runScratch)
	sc.vals = sc.vals[:0]
	nf := len(p.fields)
	rows := 0
	drive := p.root.compile(ctx, func() error {
		rows++
		for i, sl := range p.slots {
			var v oop.OOP
			if sl >= 0 && ctx.frame.set[sl] {
				v = ctx.frame.vals[sl]
			} else if lv, ok := ctx.frame.LookupVar(p.fields[i].Var); ok {
				v = lv
			}
			sc.vals = append(sc.vals, v)
		}
		return nil
	})
	err := drive()
	if err != nil {
		p.scratch.Put(sc)
		return nil, err
	}
	var out []Tuple
	if rows > 0 {
		slab := make([]oop.OOP, len(sc.vals))
		copy(slab, sc.vals)
		out = make([]Tuple, rows)
		for i := range out {
			out[i] = Tuple{Labels: p.labels, Values: slab[i*nf : (i+1)*nf : (i+1)*nf]}
		}
	}
	p.scratch.Put(sc)
	return out, nil
}

// DefaultParallelism is the worker count ExecParallel uses when the caller
// passes workers <= 0.
const DefaultParallelism = 4

// outerScan returns the pipeline's bottom node when it is a plain scan —
// the outermost loop, the only node worth fanning out. Plans whose bottom
// is an index scan fall back to serial execution: a single directory probe
// has no member stream to split.
func (p *Plan) outerScan() (*scanNode, bool) {
	var n Node = p.root
	for {
		switch t := n.(type) {
		case *projectNode:
			if t.input == nil {
				return nil, false
			}
			n = t.input
		case *selectNode:
			if t.input == nil {
				return nil, false
			}
			n = t.input
		case *scanNode:
			if t.input == nil {
				return t, true
			}
			n = t.input
		case *indexScanNode:
			if t.input == nil {
				return nil, false
			}
			n = t.input
		default:
			return nil, false
		}
	}
}

// ExecParallel runs the plan with the outermost scan fanned across a
// bounded worker pool. Results and statistics are bit-identical to Exec:
// workers own contiguous chunks of the outer member stream and are merged
// in worker order, which reproduces the serial emission order exactly.
func (p *Plan) ExecParallel(s *core.Session, workers int) ([]Tuple, Stats, error) {
	return p.ExecParallelWith(s, calculus.Binding{}, workers)
}

// ExecParallelWith is ExecParallel with an initial binding. The parent
// session is read-only for the duration: each worker runs on a ForkReader
// whose recorded reads are absorbed back before returning, so optimistic
// validation still covers everything the workers touched.
func (p *Plan) ExecParallelWith(s *core.Session, initial calculus.Binding, workers int) ([]Tuple, Stats, error) {
	if workers <= 0 {
		workers = DefaultParallelism
	}
	outer, ok := p.outerScan()
	if !ok || workers == 1 {
		return p.ExecWith(s, initial)
	}
	// Resolve the outer source once and materialize only its member list —
	// the one set that must be split into chunks.
	src, err := calculus.Eval(s, outer.source, p.newFrame(initial))
	if err != nil {
		return nil, Stats{}, err
	}
	if src.Kind == calculus.VNil {
		return nil, Stats{}, nil
	}
	if src.Kind != calculus.VObj && src.Kind != calculus.VStr {
		return nil, Stats{}, fmt.Errorf("algebra: range source %s is not a set", outer.source)
	}
	var members []oop.OOP
	if err := s.MembersFunc(src.O, func(m oop.OOP) error {
		members = append(members, m)
		return nil
	}); err != nil {
		return nil, Stats{}, err
	}
	if workers > len(members) {
		workers = len(members)
	}
	if workers <= 1 {
		// Too little outer fan-in to be worth forking; still honour the
		// already-materialized members through the fan path so the outer
		// cursor is not opened twice.
		ctx := &execCtx{s: s, stats: &Stats{}, frame: p.newFrame(initial),
			fan: &fanout{node: outer, members: members}}
		out, err := p.run(ctx)
		return out, *ctx.stats, err
	}
	reg := s.DB().Obs()
	reg.Counter("query.parallel.runs").Inc()
	reg.Counter("query.parallel.workers").Add(uint64(workers))

	type shard struct {
		fork  *core.Session
		out   []Tuple
		stats Stats
		err   error
	}
	shards := make([]shard, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		sh := &shards[w]
		sh.fork = s.ForkReader()
		chunk := members[w*len(members)/workers : (w+1)*len(members)/workers]
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := &execCtx{
				s:     sh.fork,
				stats: &sh.stats,
				frame: p.newFrame(initial),
				fan:   &fanout{node: outer, members: chunk},
			}
			sh.out, sh.err = p.run(ctx)
		}()
	}
	wg.Wait()
	var stats Stats
	total := 0
	for w := range shards {
		sh := &shards[w]
		s.AbsorbReads(sh.fork)
		if sh.err != nil {
			return nil, stats, sh.err
		}
		total += len(sh.out)
	}
	out := make([]Tuple, 0, total)
	for w := range shards {
		stats.add(shards[w].stats)
		out = append(out, shards[w].out...)
	}
	if total == 0 {
		out = nil
	}
	return out, stats, nil
}
