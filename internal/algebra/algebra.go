// Package algebra implements the set algebra and the calculus→algebra
// translation algorithm (§3, §5.1: "We have developed a set algebra, and an
// algorithm to translate a set-calculus expression to a set-algebra
// expression"). The algebra is an iterator tree over variable bindings:
// dependent scans (nested loops over possibly variable-dependent sources),
// directory-backed index scans, selections and a final projection.
//
// The optimizer performs the access planning the paper says a declarative
// syntax enables (§5.2): selection pushdown, directory (index) selection,
// and range reordering by estimated cardinality.
package algebra

import (
	"fmt"
	"strings"

	"repro/internal/calculus"
	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/oop"
)

// Tuple is one query result row.
type Tuple struct {
	Labels []string
	Values []oop.OOP
}

// Get returns the value under a label.
func (t Tuple) Get(label string) (oop.OOP, bool) {
	for i, l := range t.Labels {
		if l == label {
			return t.Values[i], true
		}
	}
	return oop.Invalid, false
}

// Stats counts work done during execution, for the experiment harness.
type Stats struct {
	MembersScanned int // bindings produced by sequential scans
	IndexProbes    int // directory lookups / range scans
	PredEvals      int // selection predicate evaluations
}

type execCtx struct {
	s     *core.Session
	stats *Stats
}

// Node is a push-based algebra operator.
type Node interface {
	exec(ctx *execCtx, in calculus.Binding, emit func(calculus.Binding) error) error
	describe(indent int, b *strings.Builder)
}

// Explain renders the plan tree.
func Explain(n Node) string {
	var b strings.Builder
	n.describe(0, &b)
	return strings.TrimRight(b.String(), "\n")
}

func pad(indent int, b *strings.Builder) {
	for i := 0; i < indent; i++ {
		b.WriteString("  ")
	}
}

// --- Scan: sequential (possibly dependent) iteration over a set ---

type scanNode struct {
	input  Node // nil = start of pipeline
	v      string
	source calculus.Expr
}

func (n *scanNode) describe(indent int, b *strings.Builder) {
	pad(indent, b)
	fmt.Fprintf(b, "scan %s in %s\n", n.v, n.source)
	if n.input != nil {
		n.input.describe(indent+1, b)
	}
}

func (n *scanNode) exec(ctx *execCtx, in calculus.Binding, emit func(calculus.Binding) error) error {
	body := func(b calculus.Binding) error {
		src, err := calculus.Eval(ctx.s, n.source, b)
		if err != nil {
			return err
		}
		if src.Kind == calculus.VNil {
			return nil // empty range
		}
		if src.Kind != calculus.VObj && src.Kind != calculus.VStr {
			return fmt.Errorf("algebra: range source %s is not a set", n.source)
		}
		members, err := ctx.s.Members(src.O)
		if err != nil {
			return err
		}
		for _, m := range members {
			ctx.stats.MembersScanned++
			nb := b.Clone()
			nb[n.v] = m
			if err := emit(nb); err != nil {
				return err
			}
		}
		return nil
	}
	if n.input == nil {
		return body(in)
	}
	return n.input.exec(ctx, in, body)
}

// --- IndexScan: directory-backed associative access ---

type indexOp uint8

const (
	ixEq indexOp = iota
	ixLt
	ixLe
	ixGt
	ixGe
)

type indexScanNode struct {
	input Node
	v     string
	set   oop.OOP
	path  []string
	op    indexOp
	key   calculus.Expr // evaluated per input binding
}

func (n *indexScanNode) describe(indent int, b *strings.Builder) {
	pad(indent, b)
	ops := map[indexOp]string{ixEq: "=", ixLt: "<", ixLe: "<=", ixGt: ">", ixGe: ">="}
	fmt.Fprintf(b, "index-scan %s in %v by %s %s %s\n", n.v, n.set, strings.Join(n.path, "!"), ops[n.op], n.key)
	if n.input != nil {
		n.input.describe(indent+1, b)
	}
}

func (n *indexScanNode) exec(ctx *execCtx, in calculus.Binding, emit func(calculus.Binding) error) error {
	body := func(b calculus.Binding) error {
		kv, err := calculus.Eval(ctx.s, n.key, b)
		if err != nil {
			return err
		}
		key, ok := valueToKey(kv)
		if !ok {
			return fmt.Errorf("algebra: %s does not evaluate to an indexable key", n.key)
		}
		ctx.stats.IndexProbes++
		var members []oop.OOP
		switch n.op {
		case ixEq:
			members, _ = ctx.s.IndexLookup(n.set, n.path, key)
		case ixLt:
			members, _ = ctx.s.IndexRange(n.set, n.path, nil, &key, true, false)
		case ixLe:
			members, _ = ctx.s.IndexRange(n.set, n.path, nil, &key, true, true)
		case ixGt:
			members, _ = ctx.s.IndexRange(n.set, n.path, &key, nil, false, true)
		case ixGe:
			members, _ = ctx.s.IndexRange(n.set, n.path, &key, nil, true, true)
		}
		for _, m := range members {
			nb := b.Clone()
			nb[n.v] = m
			if err := emit(nb); err != nil {
				return err
			}
		}
		return nil
	}
	if n.input == nil {
		return body(in)
	}
	return n.input.exec(ctx, in, body)
}

func valueToKey(v calculus.Value) (directory.Key, bool) {
	switch v.Kind {
	case calculus.VNil:
		return directory.NilKey(), true
	case calculus.VBool:
		return directory.BoolKey(v.B), true
	case calculus.VNum:
		return directory.NumberKey(v.N), true
	case calculus.VStr:
		return directory.StringKey(v.S), true
	case calculus.VChar:
		return directory.CharKey([]rune(v.S)[0]), true
	case calculus.VObj:
		return directory.OOPKey(v.O), true
	}
	return directory.Key{}, false
}

// --- Select ---

type selectNode struct {
	input Node
	pred  calculus.Expr
}

func (n *selectNode) describe(indent int, b *strings.Builder) {
	pad(indent, b)
	fmt.Fprintf(b, "select %s\n", n.pred)
	if n.input != nil {
		n.input.describe(indent+1, b)
	}
}

func (n *selectNode) exec(ctx *execCtx, in calculus.Binding, emit func(calculus.Binding) error) error {
	body := func(b calculus.Binding) error {
		ctx.stats.PredEvals++
		v, err := calculus.Eval(ctx.s, n.pred, b)
		if err != nil {
			return err
		}
		if calculus.Truthy(v) {
			return emit(b)
		}
		return nil
	}
	if n.input == nil {
		return body(in)
	}
	return n.input.exec(ctx, in, body)
}

// --- Project ---

type projectNode struct {
	input  Node
	fields []calculus.TargetField
}

func (n *projectNode) describe(indent int, b *strings.Builder) {
	pad(indent, b)
	parts := make([]string, len(n.fields))
	for i, f := range n.fields {
		parts[i] = f.Label + ": " + f.Var
	}
	fmt.Fprintf(b, "project {%s}\n", strings.Join(parts, ", "))
	if n.input != nil {
		n.input.describe(indent+1, b)
	}
}

func (n *projectNode) exec(ctx *execCtx, in calculus.Binding, emit func(calculus.Binding) error) error {
	return n.input.exec(ctx, in, emit)
}

// Plan is an executable algebra expression.
type Plan struct {
	root   *projectNode
	fields []calculus.TargetField
}

// Explain renders the plan.
func (p *Plan) Explain() string { return Explain(p.root) }

// Exec runs the plan in a session, returning result tuples and statistics.
func (p *Plan) Exec(s *core.Session) ([]Tuple, Stats, error) {
	return p.ExecWith(s, calculus.Binding{})
}

// ExecWith runs the plan with an initial binding — the mechanism behind
// OPAL's embedded calculus expressions, whose "procedural parts" are the
// enclosing method's variables (§5.4).
func (p *Plan) ExecWith(s *core.Session, initial calculus.Binding) ([]Tuple, Stats, error) {
	ctx := &execCtx{s: s, stats: &Stats{}}
	var out []Tuple
	labels := make([]string, len(p.fields))
	for i, f := range p.fields {
		labels[i] = f.Label
	}
	err := p.root.exec(ctx, initial, func(b calculus.Binding) error {
		vals := make([]oop.OOP, len(p.fields))
		for i, f := range p.fields {
			vals[i] = b[f.Var]
		}
		out = append(out, Tuple{Labels: labels, Values: vals})
		return nil
	})
	if err != nil {
		return nil, *ctx.stats, err
	}
	return out, *ctx.stats, nil
}
