// Package directory implements the Directory Manager (paper §6): indexes
// over set elements that support associative access. Directories "use
// standard techniques modified to handle object histories": every index
// entry carries a [validFrom, validTo) transaction-time interval, so a
// lookup can be answered in any past state of the database — the same
// object may legitimately "appear along two branches of the directory" when
// its discriminating element changed over time.
//
// Because the data model replaces deletion with history, the B-tree needs
// no delete operation at all: entries are closed (their validTo set), never
// removed.
package directory

import (
	"strings"

	"repro/internal/oop"
)

// KeyKind ranks the kinds of values a directory can discriminate on.
// Heterogeneous sets are the norm in the model ("the value associated with
// a particular element name is not restricted to a single type", §5.2), so
// keys of different kinds order by kind rank first.
type KeyKind uint8

const (
	KindNil KeyKind = iota
	KindBool
	KindNumber // SmallIntegers and Floats share one numeric axis
	KindChar
	KindString // strings and symbols
	KindOOP    // any other object: ordered by identity
)

// Key is a decoded, self-contained index key. Immediate values and byte
// objects are decoded so comparisons need no object-manager access.
type Key struct {
	Kind KeyKind
	I    int64   // KindBool (0/1), KindChar, KindOOP (serial)
	F    float64 // KindNumber
	S    string  // KindString
}

// NumberKey builds a numeric key.
func NumberKey(f float64) Key { return Key{Kind: KindNumber, F: f} }

// StringKey builds a string key.
func StringKey(s string) Key { return Key{Kind: KindString, S: s} }

// BoolKey builds a boolean key.
func BoolKey(b bool) Key {
	k := Key{Kind: KindBool}
	if b {
		k.I = 1
	}
	return k
}

// CharKey builds a character key.
func CharKey(r rune) Key { return Key{Kind: KindChar, I: int64(r)} }

// OOPKey builds an identity key for a non-decodable object.
func OOPKey(o oop.OOP) Key { return Key{Kind: KindOOP, I: int64(o)} }

// NilKey is the key for nil-valued discriminators.
func NilKey() Key { return Key{Kind: KindNil} }

// Compare orders keys: kind rank first, then value. It returns -1, 0 or 1.
func Compare(a, b Key) int {
	if a.Kind != b.Kind {
		if a.Kind < b.Kind {
			return -1
		}
		return 1
	}
	switch a.Kind {
	case KindNil:
		return 0
	case KindNumber:
		switch {
		case a.F < b.F:
			return -1
		case a.F > b.F:
			return 1
		}
		return 0
	case KindString:
		return strings.Compare(a.S, b.S)
	default: // KindBool, KindChar, KindOOP
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		}
		return 0
	}
}
