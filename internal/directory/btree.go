package directory

import (
	"repro/internal/oop"
)

// Entry records that a set member was indexed under some key over a
// transaction-time interval [From, To). To == TimeNow means still current.
type Entry struct {
	Name   oop.OOP  // the element name binding the member into the set
	Member oop.OOP  // the member object (the element's value)
	From   oop.Time // first state in which this entry holds
	To     oop.Time // first state in which it no longer holds (TimeNow = open)
}

// aliveAt reports whether the entry holds in the state at t.
func (e Entry) aliveAt(t oop.Time) bool {
	return e.From <= t && (e.To.IsNow() || t < e.To)
}

// item is one distinct key with its entry postings.
type item struct {
	key     Key
	entries []Entry
}

const btreeOrder = 64 // max items per node

type node struct {
	items    []item
	children []*node // nil for leaves
}

func (n *node) leaf() bool { return n.children == nil }

// find returns the position of key in n.items and whether it was found.
func (n *node) find(k Key) (int, bool) {
	lo, hi := 0, len(n.items)
	for lo < hi {
		mid := (lo + hi) / 2
		switch Compare(n.items[mid].key, k) {
		case -1:
			lo = mid + 1
		case 1:
			hi = mid
		default:
			return mid, true
		}
	}
	return lo, false
}

// Index is an in-memory B-tree from keys to history-interval entries.
// It supports insertion and interval closing but, by design, no deletion.
type Index struct {
	root    *node
	nKeys   int
	lookups uint64 // probe counter for experiment reporting
}

// NewIndex creates an empty index.
func NewIndex() *Index { return &Index{root: &node{}} }

// Keys returns the number of distinct keys.
func (ix *Index) Keys() int { return ix.nKeys }

// Lookups returns the number of Lookup/Range calls served.
func (ix *Index) Lookups() uint64 { return ix.lookups }

// Insert adds an entry under k.
func (ix *Index) Insert(k Key, e Entry) {
	if len(ix.root.items) >= btreeOrder {
		old := ix.root
		ix.root = &node{children: []*node{old}}
		ix.splitChild(ix.root, 0)
	}
	ix.insertNonFull(ix.root, k, e)
}

func (ix *Index) splitChild(parent *node, i int) {
	child := parent.children[i]
	mid := len(child.items) / 2
	up := child.items[mid]
	right := &node{items: append([]item(nil), child.items[mid+1:]...)}
	if !child.leaf() {
		right.children = append([]*node(nil), child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.items = child.items[:mid]
	parent.items = append(parent.items, item{})
	copy(parent.items[i+1:], parent.items[i:])
	parent.items[i] = up
	parent.children = append(parent.children, nil)
	copy(parent.children[i+2:], parent.children[i+1:])
	parent.children[i+1] = right
}

func (ix *Index) insertNonFull(n *node, k Key, e Entry) {
	for {
		i, found := n.find(k)
		if found {
			n.items[i].entries = append(n.items[i].entries, e)
			return
		}
		if n.leaf() {
			n.items = append(n.items, item{})
			copy(n.items[i+1:], n.items[i:])
			n.items[i] = item{key: k, entries: []Entry{e}}
			ix.nKeys++
			return
		}
		if len(n.children[i].items) >= btreeOrder {
			ix.splitChild(n, i)
			switch Compare(n.items[i].key, k) {
			case -1:
				i++
			case 0:
				n.items[i].entries = append(n.items[i].entries, e)
				return
			}
		}
		n = n.children[i]
	}
}

// Close marks the open entry for (k, name, member) as superseded at time at.
// It returns false if no open entry exists under that key.
func (ix *Index) Close(k Key, name, member oop.OOP, at oop.Time) bool {
	n := ix.root
	for {
		i, found := n.find(k)
		if found {
			es := n.items[i].entries
			for j := range es {
				if es[j].Name == name && es[j].Member == member && es[j].To.IsNow() {
					es[j].To = at
					return true
				}
			}
			return false
		}
		if n.leaf() {
			return false
		}
		n = n.children[i]
	}
}

// Lookup returns the entries under k alive in the state at t.
func (ix *Index) Lookup(k Key, t oop.Time) []Entry {
	var out []Entry
	_ = ix.LookupFunc(k, t, func(e Entry) error {
		out = append(out, e)
		return nil
	})
	return out
}

// LookupFunc streams the entries under k alive in the state at t to fn
// without materializing a slice. Iteration stops at the first error, which
// is returned.
func (ix *Index) LookupFunc(k Key, t oop.Time, fn func(Entry) error) error {
	ix.lookups++
	n := ix.root
	for {
		i, found := n.find(k)
		if found {
			for _, e := range n.items[i].entries {
				if e.aliveAt(t) {
					if err := fn(e); err != nil {
						return err
					}
				}
			}
			return nil
		}
		if n.leaf() {
			return nil
		}
		n = n.children[i]
	}
}

// Range returns entries with lo <= key <= hi (bounds included per loInc /
// hiInc) alive at t, in ascending key order. A nil bound is unbounded.
func (ix *Index) Range(lo, hi *Key, loInc, hiInc bool, t oop.Time) []Entry {
	var out []Entry
	_ = ix.RangeFunc(lo, hi, loInc, hiInc, t, func(e Entry) error {
		out = append(out, e)
		return nil
	})
	return out
}

// RangeFunc streams entries with keys in the given bounds alive at t to fn
// in ascending key order, without materializing a slice. Iteration stops at
// the first error, which is returned.
func (ix *Index) RangeFunc(lo, hi *Key, loInc, hiInc bool, t oop.Time, fn func(Entry) error) error {
	ix.lookups++
	return ix.walk(ix.root, lo, hi, loInc, hiInc, t, fn)
}

func (ix *Index) walk(n *node, lo, hi *Key, loInc, hiInc bool, t oop.Time, fn func(Entry) error) error {
	for i := 0; i <= len(n.items); i++ {
		if !n.leaf() {
			// Child i holds keys strictly between items[i-1].key and
			// items[i].key; skip it only when that whole gap is outside the
			// bounds.
			skip := false
			if lo != nil && i < len(n.items) && Compare(n.items[i].key, *lo) <= 0 {
				skip = true // every key in the child is below lo
			}
			if hi != nil && i > 0 && Compare(n.items[i-1].key, *hi) >= 0 {
				skip = true // every key in the child is above hi
			}
			if !skip {
				if err := ix.walk(n.children[i], lo, hi, loInc, hiInc, t, fn); err != nil {
					return err
				}
			}
		}
		if i < len(n.items) {
			k := n.items[i].key
			if lo != nil {
				if c := Compare(k, *lo); c < 0 || (c == 0 && !loInc) {
					continue
				}
			}
			if hi != nil {
				if c := Compare(k, *hi); c > 0 || (c == 0 && !hiInc) {
					continue
				}
			}
			for _, e := range n.items[i].entries {
				if e.aliveAt(t) {
					if err := fn(e); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}
