package directory

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/oop"
)

func ent(member uint64, from, to oop.Time) Entry {
	return Entry{Name: oop.FromSerial(member), Member: oop.FromSerial(member), From: from, To: to}
}

func TestCompareTotalOrder(t *testing.T) {
	keys := []Key{
		NilKey(), BoolKey(false), BoolKey(true),
		NumberKey(-1.5), NumberKey(0), NumberKey(3),
		CharKey('a'), CharKey('b'),
		StringKey(""), StringKey("abc"), StringKey("abd"),
		OOPKey(oop.FromSerial(1)), OOPKey(oop.FromSerial(2)),
	}
	for i := range keys {
		for j := range keys {
			c := Compare(keys[i], keys[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if c != want {
				t.Errorf("Compare(%v,%v) = %d, want %d", keys[i], keys[j], c, want)
			}
		}
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b float64, s1, s2 string, pick uint8) bool {
		var ka, kb Key
		switch pick % 3 {
		case 0:
			ka, kb = NumberKey(a), NumberKey(b)
		case 1:
			ka, kb = StringKey(s1), StringKey(s2)
		default:
			ka, kb = NumberKey(a), StringKey(s2)
		}
		return Compare(ka, kb) == -Compare(kb, ka)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInsertLookup(t *testing.T) {
	ix := NewIndex()
	ix.Insert(NumberKey(5), ent(1, 1, oop.TimeNow))
	ix.Insert(NumberKey(5), ent(2, 3, oop.TimeNow))
	ix.Insert(NumberKey(7), ent(3, 1, oop.TimeNow))
	if got := ix.Lookup(NumberKey(5), oop.TimeNow); len(got) != 2 {
		t.Errorf("lookup(5) = %d entries", len(got))
	}
	if got := ix.Lookup(NumberKey(5), 2); len(got) != 1 || got[0].Member != oop.FromSerial(1) {
		t.Errorf("lookup(5)@2 = %v", got)
	}
	if got := ix.Lookup(NumberKey(6), oop.TimeNow); got != nil {
		t.Errorf("lookup(6) = %v, want nil", got)
	}
	if ix.Keys() != 2 {
		t.Errorf("Keys = %d", ix.Keys())
	}
}

func TestCloseEntry(t *testing.T) {
	ix := NewIndex()
	ix.Insert(StringKey("Sales"), ent(1, 2, oop.TimeNow))
	if !ix.Close(StringKey("Sales"), oop.FromSerial(1), oop.FromSerial(1), 8) {
		t.Fatal("Close failed")
	}
	if got := ix.Lookup(StringKey("Sales"), 5); len(got) != 1 {
		t.Errorf("entry should be alive at 5: %v", got)
	}
	if got := ix.Lookup(StringKey("Sales"), 8); len(got) != 0 {
		t.Errorf("entry should be closed at 8: %v", got)
	}
	if got := ix.Lookup(StringKey("Sales"), oop.TimeNow); len(got) != 0 {
		t.Errorf("entry should be closed now: %v", got)
	}
	if ix.Close(StringKey("Sales"), oop.FromSerial(1), oop.FromSerial(1), 9) {
		t.Error("closing twice should fail")
	}
	if ix.Close(StringKey("Ghost"), oop.FromSerial(1), oop.FromSerial(1), 9) {
		t.Error("closing a missing key should fail")
	}
}

func TestManyKeysSplits(t *testing.T) {
	ix := NewIndex()
	const n = 10000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, v := range perm {
		ix.Insert(NumberKey(float64(v)), ent(uint64(v+1), 1, oop.TimeNow))
	}
	if ix.Keys() != n {
		t.Fatalf("Keys = %d, want %d", ix.Keys(), n)
	}
	for _, v := range []int{0, 1, 4999, 9998, 9999} {
		got := ix.Lookup(NumberKey(float64(v)), oop.TimeNow)
		if len(got) != 1 || got[0].Member != oop.FromSerial(uint64(v+1)) {
			t.Errorf("lookup(%d) = %v", v, got)
		}
	}
}

func TestRange(t *testing.T) {
	ix := NewIndex()
	for v := 0; v < 100; v++ {
		ix.Insert(NumberKey(float64(v)), ent(uint64(v+1), 1, oop.TimeNow))
	}
	lo, hi := NumberKey(10), NumberKey(20)
	got := ix.Range(&lo, &hi, true, true, oop.TimeNow)
	if len(got) != 11 {
		t.Errorf("[10,20] returned %d entries", len(got))
	}
	got = ix.Range(&lo, &hi, false, false, oop.TimeNow)
	if len(got) != 9 {
		t.Errorf("(10,20) returned %d entries", len(got))
	}
	got = ix.Range(nil, &hi, true, true, oop.TimeNow)
	if len(got) != 21 {
		t.Errorf("(-inf,20] returned %d entries", len(got))
	}
	got = ix.Range(&lo, nil, true, true, oop.TimeNow)
	if len(got) != 90 {
		t.Errorf("[10,inf) returned %d entries", len(got))
	}
	// Ascending key order.
	for i := 1; i < len(got); i++ {
		if got[i-1].Member.Serial() > got[i].Member.Serial() {
			t.Fatal("range not in ascending key order")
		}
	}
}

func TestRangeAgainstBruteForceProperty(t *testing.T) {
	f := func(vals []int16, loRaw, hiRaw int16, loInc, hiInc bool) bool {
		ix := NewIndex()
		for i, v := range vals {
			ix.Insert(NumberKey(float64(v)), ent(uint64(i+1), 1, oop.TimeNow))
		}
		if loRaw > hiRaw {
			loRaw, hiRaw = hiRaw, loRaw
		}
		lo, hi := NumberKey(float64(loRaw)), NumberKey(float64(hiRaw))
		got := ix.Range(&lo, &hi, loInc, hiInc, oop.TimeNow)
		var want []uint64
		for i, v := range vals {
			f64 := float64(v)
			if (f64 > lo.F || (f64 == lo.F && loInc)) && (f64 < hi.F || (f64 == hi.F && hiInc)) {
				want = append(want, uint64(i+1))
			}
		}
		if len(got) != len(want) {
			return false
		}
		gotSet := map[uint64]bool{}
		for _, e := range got {
			gotSet[e.Member.Serial()] = true
		}
		for _, w := range want {
			if !gotSet[w] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTimeTravelTwoBranches(t *testing.T) {
	// The §6 headache: a member whose discriminator changed must be found
	// under its old key at old times and its new key at new times.
	d := New(oop.FromSerial(100), []oop.OOP{oop.FromSerial(200)})
	member, name := oop.FromSerial(1), oop.FromSerial(2)
	d.Enter(StringKey("Seattle"), name, member, 2)
	if err := d.Move(StringKey("Seattle"), StringKey("Portland"), name, member, 8); err != nil {
		t.Fatal(err)
	}
	if got := d.Lookup(StringKey("Seattle"), 5); len(got) != 1 {
		t.Errorf("Seattle@5: %v", got)
	}
	if got := d.Lookup(StringKey("Portland"), 5); len(got) != 0 {
		t.Errorf("Portland@5: %v", got)
	}
	if got := d.Lookup(StringKey("Seattle"), 9); len(got) != 0 {
		t.Errorf("Seattle@9: %v", got)
	}
	if got := d.Lookup(StringKey("Portland"), oop.TimeNow); len(got) != 1 {
		t.Errorf("Portland@now: %v", got)
	}
	if err := d.Leave(StringKey("Ghost"), name, member, 9); err == nil {
		t.Error("Leave on missing key should error")
	}
}

func TestHeterogeneousKeysInOneIndex(t *testing.T) {
	// §5.2: AssignedTo could be an employee, a department or a set — one
	// directory must hold keys of different kinds.
	ix := NewIndex()
	ix.Insert(NumberKey(42), ent(1, 1, oop.TimeNow))
	ix.Insert(StringKey("Sales"), ent(2, 1, oop.TimeNow))
	ix.Insert(OOPKey(oop.FromSerial(9)), ent(3, 1, oop.TimeNow))
	ix.Insert(NilKey(), ent(4, 1, oop.TimeNow))
	for _, k := range []Key{NumberKey(42), StringKey("Sales"), OOPKey(oop.FromSerial(9)), NilKey()} {
		if got := ix.Lookup(k, oop.TimeNow); len(got) != 1 {
			t.Errorf("lookup %v = %v", k, got)
		}
	}
	// A full unbounded range sees all four, ordered by kind rank.
	got := ix.Range(nil, nil, true, true, oop.TimeNow)
	if len(got) != 4 {
		t.Errorf("full range = %d entries", len(got))
	}
}

func TestHistoryPreservedNoDeletion(t *testing.T) {
	// Property: after any interleaving of enters and moves, every past
	// state is still answerable.
	d := New(oop.FromSerial(100), []oop.OOP{oop.FromSerial(200)})
	type obs struct {
		t oop.Time
		k Key
		n int
	}
	var checks []obs
	cur := map[uint64]float64{} // member -> current key
	tm := oop.Time(0)
	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 500; step++ {
		tm++
		m := uint64(rng.Intn(20) + 1)
		newKey := float64(rng.Intn(5))
		if old, ok := cur[m]; ok {
			if old == newKey {
				continue
			}
			if err := d.Move(NumberKey(old), NumberKey(newKey), oop.FromSerial(m), oop.FromSerial(m), tm); err != nil {
				t.Fatal(err)
			}
		} else {
			d.Enter(NumberKey(newKey), oop.FromSerial(m), oop.FromSerial(m), tm)
		}
		cur[m] = newKey
		// Record the expected population of a random key at this time.
		probe := float64(rng.Intn(5))
		n := 0
		for _, k := range cur {
			if k == probe {
				n++
			}
		}
		checks = append(checks, obs{tm, NumberKey(probe), n})
	}
	for _, c := range checks {
		if got := d.Lookup(c.k, c.t); len(got) != c.n {
			t.Fatalf("lookup %v@%v = %d entries, want %d", c.k, c.t, len(got), c.n)
		}
	}
}

func TestSortedBulkInsert(t *testing.T) {
	// Ascending insertion is the worst case for naive trees; verify the
	// B-tree still balances (depth sanity via lookup correctness).
	ix := NewIndex()
	for v := 0; v < 5000; v++ {
		ix.Insert(NumberKey(float64(v)), ent(uint64(v+1), 1, oop.TimeNow))
	}
	keys := make([]int, 0, 100)
	for v := 0; v < 5000; v += 50 {
		keys = append(keys, v)
	}
	sort.Ints(keys)
	for _, v := range keys {
		if got := ix.Lookup(NumberKey(float64(v)), oop.TimeNow); len(got) != 1 {
			t.Fatalf("lookup(%d) after sorted bulk insert: %v", v, got)
		}
	}
}

func BenchmarkLookupVsScan(b *testing.B) {
	for _, n := range []int{100, 1000, 10000, 100000} {
		ix := NewIndex()
		members := make([]Entry, n)
		for v := 0; v < n; v++ {
			e := ent(uint64(v+1), 1, oop.TimeNow)
			members[v] = e
			ix.Insert(NumberKey(float64(v)), e)
		}
		b.Run(fmt.Sprintf("index/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ix.Lookup(NumberKey(float64(i%n)), oop.TimeNow)
			}
		})
		b.Run(fmt.Sprintf("scan/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				want := oop.FromSerial(uint64(i%n) + 1)
				for _, e := range members {
					if e.Member == want {
						break
					}
				}
			}
		})
	}
}
