package directory

import (
	"fmt"

	"repro/internal/oop"
)

// Directory is one maintained index: it indexes the members of a set object
// by the value reached from each member along a key path ("hints given in
// OPAL for structuring directories", §6). Graph traversal — resolving the
// path through possibly-nested elements — is the Linker's job in the core
// package; Directory stores the structure and the valid-time intervals.
type Directory struct {
	Set  oop.OOP   // the indexed set
	Path []oop.OOP // element-name symbols from member to key, length >= 1

	ix *Index
}

// New creates an empty directory over set with the given key path.
func New(set oop.OOP, path []oop.OOP) *Directory {
	return &Directory{Set: set, Path: append([]oop.OOP(nil), path...), ix: NewIndex()}
}

// Index exposes the underlying B-tree.
func (d *Directory) Index() *Index { return d.ix }

// Enter opens an entry: member (bound into the set under element name) has
// key k from time t onward.
func (d *Directory) Enter(k Key, name, member oop.OOP, t oop.Time) {
	d.ix.Insert(k, Entry{Name: name, Member: member, From: t, To: oop.TimeNow})
}

// Leave closes the open entry for (k, name, member) at time t.
func (d *Directory) Leave(k Key, name, member oop.OOP, t oop.Time) error {
	if !d.ix.Close(k, name, member, t) {
		return fmt.Errorf("directory: no open entry for %v/%v under key", name, member)
	}
	return nil
}

// Move re-keys an entry: closes it under old and reopens under new at t.
// Both states remain queryable — the member "appears along two branches of
// the directory" across time, exactly the §6 behaviour.
func (d *Directory) Move(old, new Key, name, member oop.OOP, t oop.Time) error {
	if err := d.Leave(old, name, member, t); err != nil {
		return err
	}
	d.Enter(new, name, member, t)
	return nil
}

// Lookup returns entries with key k alive in the state at t.
func (d *Directory) Lookup(k Key, t oop.Time) []Entry { return d.ix.Lookup(k, t) }

// Range returns entries with keys in the given bounds alive at t.
func (d *Directory) Range(lo, hi *Key, loInc, hiInc bool, t oop.Time) []Entry {
	return d.ix.Range(lo, hi, loInc, hiInc, t)
}

// LookupFunc streams entries with key k alive at t to fn, stopping at the
// first error (which is returned).
func (d *Directory) LookupFunc(k Key, t oop.Time, fn func(Entry) error) error {
	return d.ix.LookupFunc(k, t, fn)
}

// RangeFunc streams entries with keys in the given bounds alive at t to fn
// in ascending key order, stopping at the first error (which is returned).
func (d *Directory) RangeFunc(lo, hi *Key, loInc, hiInc bool, t oop.Time, fn func(Entry) error) error {
	return d.ix.RangeFunc(lo, hi, loInc, hiInc, t, fn)
}

// String describes the directory for diagnostics.
func (d *Directory) String() string {
	return fmt.Sprintf("directory(%v by %v, %d keys)", d.Set, d.Path, d.ix.Keys())
}
