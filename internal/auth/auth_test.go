package auth

import (
	"errors"
	"testing"
)

func TestAuthenticate(t *testing.T) {
	a := New("swordfish")
	if err := a.Authenticate(SystemUser, "swordfish"); err != nil {
		t.Fatal(err)
	}
	if err := a.Authenticate(SystemUser, "wrong"); !errors.Is(err, ErrNoUser) {
		t.Errorf("bad password: %v", err)
	}
	if err := a.Authenticate("nobody", "x"); !errors.Is(err, ErrNoUser) {
		t.Errorf("unknown user: %v", err)
	}
}

func TestCreateUserAdminOnly(t *testing.T) {
	a := New("pw")
	if err := a.CreateUser(SystemUser, "alice", "a"); err != nil {
		t.Fatal(err)
	}
	if err := a.Authenticate("alice", "a"); err != nil {
		t.Fatal(err)
	}
	if err := a.CreateUser("alice", "bob", "b"); !errors.Is(err, ErrDenied) {
		t.Errorf("non-admin created user: %v", err)
	}
	if err := a.CreateUser(SystemUser, "alice", "again"); err == nil {
		t.Error("duplicate user accepted")
	}
}

func TestSegmentPrivileges(t *testing.T) {
	a := New("pw")
	if err := a.CreateUser(SystemUser, "alice", "a"); err != nil {
		t.Fatal(err)
	}
	if err := a.CreateUser(SystemUser, "bob", "b"); err != nil {
		t.Fatal(err)
	}
	aliceSeg, err := a.HomeSegment("alice")
	if err != nil {
		t.Fatal(err)
	}
	// Owner writes; stranger denied even read (world = None on home segs).
	if err := a.CheckWrite("alice", aliceSeg); err != nil {
		t.Errorf("owner write: %v", err)
	}
	if err := a.CheckRead("bob", aliceSeg); !errors.Is(err, ErrDenied) {
		t.Errorf("stranger read: %v", err)
	}
	// Grant read.
	if err := a.Grant("alice", aliceSeg, "bob", Read); err != nil {
		t.Fatal(err)
	}
	if err := a.CheckRead("bob", aliceSeg); err != nil {
		t.Errorf("granted read: %v", err)
	}
	if err := a.CheckWrite("bob", aliceSeg); !errors.Is(err, ErrDenied) {
		t.Errorf("read grant must not allow write: %v", err)
	}
	// Only owner/admin may grant.
	if err := a.Grant("bob", aliceSeg, "bob", Write); !errors.Is(err, ErrDenied) {
		t.Errorf("non-owner grant: %v", err)
	}
	if err := a.Grant(SystemUser, aliceSeg, "bob", Write); err != nil {
		t.Errorf("admin grant: %v", err)
	}
	if err := a.CheckWrite("bob", aliceSeg); err != nil {
		t.Errorf("write after grant: %v", err)
	}
}

func TestWorldPrivilege(t *testing.T) {
	a := New("pw")
	_ = a.CreateUser(SystemUser, "alice", "a")
	_ = a.CreateUser(SystemUser, "bob", "b")
	seg, err := a.CreateSegment("alice", Read)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CheckRead("bob", seg); err != nil {
		t.Errorf("world-read segment: %v", err)
	}
	if err := a.CheckWrite("bob", seg); !errors.Is(err, ErrDenied) {
		t.Error("world-read must not allow write")
	}
	if err := a.SetWorld("alice", seg, None); err != nil {
		t.Fatal(err)
	}
	if err := a.CheckRead("bob", seg); !errors.Is(err, ErrDenied) {
		t.Error("world revoked but read allowed")
	}
	if err := a.SetWorld("bob", seg, Write); !errors.Is(err, ErrDenied) {
		t.Error("non-owner changed world privilege")
	}
}

func TestSystemSegmentWorldReadable(t *testing.T) {
	a := New("pw")
	_ = a.CreateUser(SystemUser, "alice", "a")
	if err := a.CheckRead("alice", SystemSegment); err != nil {
		t.Errorf("kernel classes must be readable by all: %v", err)
	}
	if err := a.CheckWrite("alice", SystemSegment); !errors.Is(err, ErrDenied) {
		t.Error("ordinary users must not write the system segment")
	}
	if err := a.CheckWrite(SystemUser, SystemSegment); err != nil {
		t.Errorf("admin write to system segment: %v", err)
	}
}

func TestExplicitGrantOverridesWorld(t *testing.T) {
	a := New("pw")
	_ = a.CreateUser(SystemUser, "alice", "a")
	_ = a.CreateUser(SystemUser, "bob", "b")
	seg, _ := a.CreateSegment("alice", Read)
	// An explicit None grant revokes below world level.
	_ = a.Grant("alice", seg, "bob", None)
	if err := a.CheckRead("bob", seg); !errors.Is(err, ErrDenied) {
		t.Error("explicit None grant should override world read")
	}
}

func TestUnknownSegment(t *testing.T) {
	a := New("pw")
	if err := a.CheckRead(SystemUser, 999); err == nil {
		t.Error("unknown segment readable")
	}
	if err := a.Grant(SystemUser, 999, SystemUser, Read); err == nil {
		t.Error("grant on unknown segment accepted")
	}
}

func TestUsersListing(t *testing.T) {
	a := New("pw")
	_ = a.CreateUser(SystemUser, "alice", "a")
	us := a.Users()
	if len(us) != 2 {
		t.Errorf("Users() = %v", us)
	}
	if !a.IsAdmin(SystemUser) || a.IsAdmin("alice") {
		t.Error("IsAdmin wrong")
	}
}

func TestPrivilegeString(t *testing.T) {
	for p, want := range map[Privilege]string{None: "none", Read: "read", Write: "write", Privilege(9): "privilege(9)"} {
		if p.String() != want {
			t.Errorf("%d.String() = %q", p, p.String())
		}
	}
}
