// Package auth implements the Object Manager's authorization duties
// (paper §6): users, segments and per-segment privileges. Every object
// belongs to one segment; a session acts for one user; fetches require read
// privilege on the object's segment and stores require write privilege.
// Segment 0 is the world-readable system segment holding kernel classes.
package auth

import (
	"crypto/sha256"
	"crypto/subtle"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/object"
)

// Privilege is the access level a user holds on a segment.
type Privilege uint8

const (
	None Privilege = iota
	Read
	Write
)

func (p Privilege) String() string {
	switch p {
	case None:
		return "none"
	case Read:
		return "read"
	case Write:
		return "write"
	}
	return fmt.Sprintf("privilege(%d)", uint8(p))
}

// ErrDenied reports an authorization failure.
var ErrDenied = errors.New("auth: access denied")

// ErrNoUser reports an unknown user or bad password.
var ErrNoUser = errors.New("auth: unknown user or bad password")

// SystemSegment holds kernel classes and globals; world-readable.
const SystemSegment object.SegmentID = 0

// SystemUser is the bootstrap administrator.
const SystemUser = "SystemUser"

type segment struct {
	owner string
	world Privilege
	users map[string]Privilege
}

type user struct {
	passHash [32]byte
	admin    bool
	home     object.SegmentID // default segment for objects the user creates
}

// Authorizer is the in-memory authorization state. It is itself stored in
// the database by the core package (as objects in the system segment) and
// rebuilt on open; this type is the enforcement engine.
type Authorizer struct {
	mu       sync.RWMutex
	users    map[string]*user
	segments map[object.SegmentID]*segment
	nextSeg  object.SegmentID
}

// New creates an Authorizer with the system segment and the SystemUser
// administrator (with the given password).
func New(systemPassword string) *Authorizer {
	a := &Authorizer{
		users:    make(map[string]*user),
		segments: make(map[object.SegmentID]*segment),
		nextSeg:  1,
	}
	a.users[SystemUser] = &user{passHash: sha256.Sum256([]byte(systemPassword)), admin: true, home: SystemSegment}
	a.segments[SystemSegment] = &segment{owner: SystemUser, world: Read, users: map[string]Privilege{}}
	return a
}

// Authenticate verifies a name/password pair.
func (a *Authorizer) Authenticate(name, password string) error {
	a.mu.RLock()
	defer a.mu.RUnlock()
	u, ok := a.users[name]
	if !ok {
		return ErrNoUser
	}
	h := sha256.Sum256([]byte(password))
	if subtle.ConstantTimeCompare(h[:], u.passHash[:]) != 1 {
		return ErrNoUser
	}
	return nil
}

// CreateUser adds a user; only admins may call it (enforced by caller
// passing the acting user).
func (a *Authorizer) CreateUser(actor, name, password string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	actorU, ok := a.users[actor]
	if !ok || !actorU.admin {
		return fmt.Errorf("%w: %s cannot create users", ErrDenied, actor)
	}
	if _, dup := a.users[name]; dup {
		return fmt.Errorf("auth: user %s already exists", name)
	}
	seg := a.nextSeg
	a.nextSeg++
	a.users[name] = &user{passHash: sha256.Sum256([]byte(password)), home: seg}
	a.segments[seg] = &segment{owner: name, world: None, users: map[string]Privilege{}}
	return nil
}

// CreateSegment adds a segment owned by actor, returning its id.
func (a *Authorizer) CreateSegment(actor string, world Privilege) (object.SegmentID, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.users[actor]; !ok {
		return 0, fmt.Errorf("%w: unknown user %s", ErrDenied, actor)
	}
	seg := a.nextSeg
	a.nextSeg++
	a.segments[seg] = &segment{owner: actor, world: world, users: map[string]Privilege{}}
	return seg, nil
}

// Grant sets a user's privilege on a segment. Only the segment owner or an
// admin may grant.
func (a *Authorizer) Grant(actor string, seg object.SegmentID, name string, p Privilege) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	s, ok := a.segments[seg]
	if !ok {
		return fmt.Errorf("auth: no segment %d", seg)
	}
	actorU := a.users[actor]
	if s.owner != actor && (actorU == nil || !actorU.admin) {
		return fmt.Errorf("%w: %s does not own segment %d", ErrDenied, actor, seg)
	}
	if _, ok := a.users[name]; !ok {
		return fmt.Errorf("auth: no user %s", name)
	}
	s.users[name] = p
	return nil
}

// SetWorld sets a segment's world (default) privilege.
func (a *Authorizer) SetWorld(actor string, seg object.SegmentID, p Privilege) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	s, ok := a.segments[seg]
	if !ok {
		return fmt.Errorf("auth: no segment %d", seg)
	}
	actorU := a.users[actor]
	if s.owner != actor && (actorU == nil || !actorU.admin) {
		return fmt.Errorf("%w: %s does not own segment %d", ErrDenied, actor, seg)
	}
	s.world = p
	return nil
}

// privilege computes the effective privilege of name on seg.
func (a *Authorizer) privilege(name string, seg object.SegmentID) Privilege {
	s, ok := a.segments[seg]
	if !ok {
		return None
	}
	u := a.users[name]
	if u != nil && u.admin {
		return Write
	}
	if s.owner == name {
		return Write
	}
	if p, ok := s.users[name]; ok {
		return p
	}
	return s.world
}

// CheckRead returns nil if name may read objects in seg.
func (a *Authorizer) CheckRead(name string, seg object.SegmentID) error {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.privilege(name, seg) >= Read {
		return nil
	}
	return fmt.Errorf("%w: %s cannot read segment %d", ErrDenied, name, seg)
}

// CheckWrite returns nil if name may write objects in seg.
func (a *Authorizer) CheckWrite(name string, seg object.SegmentID) error {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.privilege(name, seg) >= Write {
		return nil
	}
	return fmt.Errorf("%w: %s cannot write segment %d", ErrDenied, name, seg)
}

// HomeSegment returns the default segment for objects created by name.
func (a *Authorizer) HomeSegment(name string) (object.SegmentID, error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	u, ok := a.users[name]
	if !ok {
		return 0, ErrNoUser
	}
	return u.home, nil
}

// IsAdmin reports whether name is an administrator.
func (a *Authorizer) IsAdmin(name string) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	u, ok := a.users[name]
	return ok && u.admin
}

// Users returns the known user names, sorted (for administrative listing).
func (a *Authorizer) Users() []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]string, 0, len(a.users))
	for n := range a.users {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// State is the exportable authorization state, used by the database to
// persist users and segments as a versioned object.
type State struct {
	Users    []UserState
	Segments []SegmentState
	NextSeg  object.SegmentID
}

// UserState is one user's exportable record.
type UserState struct {
	Name  string
	Hash  [32]byte
	Admin bool
	Home  object.SegmentID
}

// SegmentState is one segment's exportable record.
type SegmentState struct {
	ID    object.SegmentID
	Owner string
	World Privilege
	ACL   []ACLEntry // ascending by User
}

// ACLEntry is one user's privilege on a segment.
type ACLEntry struct {
	User string
	Priv Privilege
}

// Export snapshots the authorization state for persistence. Every list is
// sorted: the state is gob-encoded into a stored object, so its bytes must
// be identical for identical authorization state (maps — both Go's and
// gob's — iterate in random order and may not leak into the encoding).
func (a *Authorizer) Export() State {
	a.mu.RLock()
	defer a.mu.RUnlock()
	st := State{NextSeg: a.nextSeg}
	for n, u := range a.users {
		st.Users = append(st.Users, UserState{Name: n, Hash: u.passHash, Admin: u.admin, Home: u.home})
	}
	sort.Slice(st.Users, func(i, j int) bool { return st.Users[i].Name < st.Users[j].Name })
	for id, s := range a.segments {
		acl := make([]ACLEntry, 0, len(s.users))
		for n, p := range s.users {
			acl = append(acl, ACLEntry{User: n, Priv: p})
		}
		sort.Slice(acl, func(i, j int) bool { return acl[i].User < acl[j].User })
		st.Segments = append(st.Segments, SegmentState{ID: id, Owner: s.owner, World: s.world, ACL: acl})
	}
	sort.Slice(st.Segments, func(i, j int) bool { return st.Segments[i].ID < st.Segments[j].ID })
	return st
}

// Restore rebuilds an Authorizer from exported state.
func Restore(st State) *Authorizer {
	a := &Authorizer{
		users:    make(map[string]*user, len(st.Users)),
		segments: make(map[object.SegmentID]*segment, len(st.Segments)),
		nextSeg:  st.NextSeg,
	}
	for _, u := range st.Users {
		a.users[u.Name] = &user{passHash: u.Hash, admin: u.Admin, home: u.Home}
	}
	for _, s := range st.Segments {
		users := make(map[string]Privilege, len(s.ACL))
		for _, e := range s.ACL {
			users[e.User] = e.Priv
		}
		a.segments[s.ID] = &segment{owner: s.Owner, world: s.World, users: users}
	}
	return a
}
