package object

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/oop"
)

func sym(i uint64) oop.OOP  { return oop.FromSerial(1000 + i) } // stand-in symbol OOPs
func val(i int64) oop.OOP   { return oop.MustInt(i) }
func obj(i uint64) *Object  { return New(oop.FromSerial(i), oop.FromSerial(1), 0, FormatNamed) }
func bobj(i uint64) *Object { return New(oop.FromSerial(i), oop.FromSerial(2), 0, FormatBytes) }

func TestFetchMissing(t *testing.T) {
	ob := obj(10)
	if v, ok := ob.Fetch(sym(1)); ok || v != oop.Nil {
		t.Errorf("missing element: got (%v,%v), want (nil,false)", v, ok)
	}
}

func TestStoreFetchCurrent(t *testing.T) {
	ob := obj(10)
	if err := ob.Store(sym(1), 5, val(100)); err != nil {
		t.Fatal(err)
	}
	if v, ok := ob.Fetch(sym(1)); !ok || v != val(100) {
		t.Errorf("got (%v,%v)", v, ok)
	}
	if err := ob.Store(sym(1), 8, val(200)); err != nil {
		t.Fatal(err)
	}
	if v, _ := ob.Fetch(sym(1)); v != val(200) {
		t.Errorf("current = %v, want 200", v)
	}
}

// TestFigure1Semantics encodes the paper's §5.3.2 temporal reading rules:
// the binding begins at its transaction time and ends when a later one
// supersedes it.
func TestFigure1Semantics(t *testing.T) {
	pres := sym(1)
	acme := obj(20)
	ayn, milton := oop.FromSerial(501), oop.FromSerial(502)
	if err := acme.Store(pres, 5, ayn); err != nil {
		t.Fatal(err)
	}
	if err := acme.Store(pres, 8, milton); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		at   oop.Time
		want oop.OOP
		ok   bool
	}{
		{4, oop.Invalid, false}, // before any president
		{5, ayn, true},
		{7, ayn, true}, // paper: "@7 ... the previous president"
		{8, milton, true},
		{10, milton, true}, // paper: "@10 ... the new president"
	}
	for _, c := range cases {
		v, ok := acme.FetchAt(pres, c.at)
		if ok != c.ok || (ok && v != c.want) {
			t.Errorf("president@%v = (%v,%v), want (%v,%v)", c.at, v, ok, c.want, c.ok)
		}
	}
	if v, ok := acme.FetchAt(pres, oop.TimeNow); !ok || v != milton {
		t.Errorf("president@now = (%v,%v)", v, ok)
	}
}

func TestRemoveRecordsNil(t *testing.T) {
	emp := sym(3)
	roster := obj(30)
	ayn := oop.FromSerial(501)
	if err := roster.Store(emp, 2, ayn); err != nil {
		t.Fatal(err)
	}
	if err := roster.Remove(emp, 8); err != nil {
		t.Fatal(err)
	}
	if v, _ := roster.FetchAt(emp, 5); v != ayn {
		t.Error("history lost after removal")
	}
	if v, ok := roster.FetchAt(emp, 9); !ok || v != oop.Nil {
		t.Errorf("removed element should read nil, got (%v,%v)", v, ok)
	}
	names := roster.NamesAt(5)
	if len(names) != 1 || names[0] != emp {
		t.Errorf("NamesAt(5) = %v", names)
	}
	if names := roster.NamesAt(9); len(names) != 0 {
		t.Errorf("NamesAt(9) = %v, want empty (nil-valued elements hidden)", names)
	}
}

func TestRecordBackwardsTimeRejected(t *testing.T) {
	ob := obj(10)
	if err := ob.Store(sym(1), 10, val(1)); err != nil {
		t.Fatal(err)
	}
	if err := ob.Store(sym(1), 9, val(2)); err == nil {
		t.Error("expected error storing at earlier time")
	}
}

func TestSameTimeCollapses(t *testing.T) {
	ob := obj(10)
	_ = ob.Store(sym(1), 4, val(1))
	_ = ob.Store(sym(1), 4, val(2))
	e := ob.Element(sym(1))
	if len(e.Hist) != 1 || e.Hist[0].Value != val(2) {
		t.Errorf("hist = %v, want single collapsed assoc", e.Hist)
	}
}

func TestNoDuplicateNames(t *testing.T) {
	ob := obj(10)
	_ = ob.Store(sym(1), 1, val(1))
	_ = ob.Store(sym(1), 2, val(2))
	if ob.Len() != 1 {
		t.Errorf("Len = %d, want 1 (no two elements share a name)", ob.Len())
	}
}

func TestPendingAndRestamp(t *testing.T) {
	ob := obj(10)
	_ = ob.Store(sym(1), 3, val(1))
	_ = ob.Store(sym(1), PendingTime, val(2))
	// Session sees its own write as current.
	if v, _ := ob.Fetch(sym(1)); v != val(2) {
		t.Error("pending write not visible as current")
	}
	// But the committed state at time 3 still shows the old value.
	if v, _ := ob.FetchAt(sym(1), 3); v != val(1) {
		t.Error("pending write leaked into past state")
	}
	ob.RestampPending(7)
	e := ob.Element(sym(1))
	if e.Hist[1].T != 7 {
		t.Errorf("restamp failed: %v", e.Hist)
	}
	if v, _ := ob.FetchAt(sym(1), 7); v != val(2) {
		t.Error("restamped value not visible at commit time")
	}
}

func TestBytesVersions(t *testing.T) {
	ob := bobj(40)
	if err := ob.SetBytes(2, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := ob.SetBytes(5, []byte("world")); err != nil {
		t.Fatal(err)
	}
	if string(ob.Bytes()) != "world" {
		t.Error("current bytes wrong")
	}
	if b, ok := ob.BytesAt(3); !ok || string(b) != "hello" {
		t.Errorf("BytesAt(3) = (%q,%v)", b, ok)
	}
	if _, ok := ob.BytesAt(1); ok {
		t.Error("BytesAt before first version should be !ok")
	}
	if ob.ByteLen() != 5 {
		t.Errorf("ByteLen = %d", ob.ByteLen())
	}
	if err := ob.SetBytes(4, nil); err == nil {
		t.Error("backwards byte time should fail")
	}
	if err := ob.Store(sym(1), 6, val(1)); err == nil {
		t.Error("byte objects must reject named elements")
	}
}

func TestBytesOnNamedRejected(t *testing.T) {
	ob := obj(10)
	if err := ob.SetBytes(1, []byte("x")); err == nil {
		t.Error("named object must reject SetBytes")
	}
}

func TestClone(t *testing.T) {
	ob := obj(10)
	_ = ob.Store(sym(1), 1, val(1))
	_ = ob.Store(sym(2), 2, oop.FromSerial(99))
	c := ob.Clone()
	_ = c.Store(sym(1), 3, val(5))
	if v, _ := ob.Fetch(sym(1)); v != val(1) {
		t.Error("clone write leaked into original")
	}
	if v, _ := c.Fetch(sym(2)); v != oop.FromSerial(99) {
		t.Error("clone lost shared reference (identity must be preserved)")
	}
	b := bobj(41)
	_ = b.SetBytes(1, []byte("abc"))
	cb := b.Clone()
	cb.Bytes()[0] = 'X'
	if string(b.Bytes()) != "abc" {
		t.Error("byte clone aliased original payload")
	}
}

func TestEquivalentAtVsIdentity(t *testing.T) {
	// Paper §4.2: two gates with identical structure are equivalent but not
	// identical.
	a, b := obj(50), obj(51)
	for _, ob := range []*Object{a, b} {
		_ = ob.Store(sym(1), 1, val(7))
		_ = ob.Store(sym(2), 1, oop.FromChar('x'))
	}
	if !a.EquivalentAt(b, oop.TimeNow) {
		t.Error("structurally equal objects should be equivalent")
	}
	if a.OOP == b.OOP {
		t.Error("distinct objects must not be identical")
	}
	_ = b.Store(sym(1), 2, val(8))
	if a.EquivalentAt(b, oop.TimeNow) {
		t.Error("diverged objects should not be equivalent now")
	}
	if !a.EquivalentAt(b, oop.Time(1)) {
		t.Error("objects should still be equivalent in the state at t=1")
	}
}

func TestHistoryLen(t *testing.T) {
	ob := obj(10)
	for i := 1; i <= 5; i++ {
		_ = ob.Store(sym(1), oop.Time(i), val(int64(i)))
	}
	_ = ob.Store(sym(2), 6, val(0))
	if got := ob.HistoryLen(); got != 6 {
		t.Errorf("HistoryLen = %d, want 6", got)
	}
}

// Property: for any sequence of monotone writes, FetchAt(t) returns the
// value of the latest write at or before t.
func TestFetchAtProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		ob := obj(10)
		type w struct {
			t oop.Time
			v oop.OOP
		}
		var writes []w
		tm := oop.Time(0)
		for i, r := range raw {
			tm += oop.Time(r%5 + 1)
			v := val(int64(i))
			if ob.Store(sym(1), tm, v) != nil {
				return false
			}
			writes = append(writes, w{tm, v})
		}
		// Check a spread of query times.
		for q := oop.Time(0); q < tm+3; q++ {
			var want oop.OOP
			ok := false
			for _, wr := range writes {
				if wr.t <= q {
					want, ok = wr.v, true
				}
			}
			got, gok := ob.FetchAt(sym(1), q)
			if gok != ok || (ok && got != want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNamesAtOrderStable(t *testing.T) {
	ob := obj(10)
	for i := 0; i < 20; i++ {
		_ = ob.Store(sym(uint64(i)), 1, val(int64(i)))
	}
	names := ob.NamesAt(oop.TimeNow)
	for i, n := range names {
		if n != sym(uint64(i)) {
			t.Fatalf("insertion order not preserved at %d: %v", i, names)
		}
	}
}

func TestFormatString(t *testing.T) {
	for f, want := range map[Format]string{FormatNamed: "named", FormatIndexed: "indexed", FormatBytes: "bytes", Format(9): "format(9)"} {
		if f.String() != want {
			t.Errorf("Format(%d).String() = %q", f, f.String())
		}
	}
}

func BenchmarkFetchAtByHistoryLen(b *testing.B) {
	for _, n := range []int{1, 16, 256, 4096, 65536} {
		ob := obj(10)
		for i := 1; i <= n; i++ {
			_ = ob.Store(sym(1), oop.Time(i), val(int64(i)))
		}
		b.Run(fmt.Sprintf("hist=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ob.FetchAt(sym(1), oop.Time(n/2))
			}
		})
	}
}

// Ablation (DESIGN.md): the chosen binary-searched association table vs a
// linear scan over the same history.
func linearAt(e *Element, t oop.Time) (oop.OOP, bool) {
	var v oop.OOP
	ok := false
	for _, a := range e.Hist {
		if a.T <= t {
			v, ok = a.Value, true
		} else {
			break
		}
	}
	return v, ok
}

func TestLinearAtAgreesWithBinary(t *testing.T) {
	ob := obj(10)
	for i := 1; i <= 100; i += 3 {
		_ = ob.Store(sym(1), oop.Time(i), val(int64(i)))
	}
	e := ob.Element(sym(1))
	for q := oop.Time(0); q <= 105; q++ {
		bv, bok := e.At(q)
		lv, lok := linearAt(e, q)
		if bv != lv || bok != lok {
			t.Fatalf("disagreement at %v: binary (%v,%v) linear (%v,%v)", q, bv, bok, lv, lok)
		}
	}
}

func BenchmarkHistoryRepresentationAblation(b *testing.B) {
	for _, n := range []int{64, 4096} {
		ob := obj(10)
		for i := 1; i <= n; i++ {
			_ = ob.Store(sym(1), oop.Time(i), val(int64(i)))
		}
		e := ob.Element(sym(1))
		mid := oop.Time(n / 2)
		b.Run(fmt.Sprintf("binary/hist=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.At(mid)
			}
		})
		b.Run(fmt.Sprintf("linear/hist=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				linearAt(e, mid)
			}
		})
	}
}
