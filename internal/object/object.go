// Package object implements the GemStone Data Model object representation
// (paper §5.4, §6): an object is a labeled set of elements, and each element
// binds a name to a *history* — a table of (transaction time, value)
// associations rather than a single value. Byte objects (strings, symbols)
// carry versioned byte payloads instead of elements.
//
// This is the in-memory form manipulated by the Object Manager; the store
// package serializes it onto tracks.
package object

import (
	"fmt"
	"sort"

	"repro/internal/oop"
)

// Format describes the storage shape of instances of a class, paralleling
// the Smalltalk-80 class formats.
type Format uint8

const (
	// FormatNamed objects hold elements with symbol names (instance
	// variables, possibly optional or added after instantiation).
	FormatNamed Format = iota
	// FormatIndexed objects additionally hold elements with SmallInteger
	// names 1..n (arrays, ordered collections).
	FormatIndexed
	// FormatBytes objects hold an uninterpreted byte payload (strings,
	// symbols, large binary documents). Byte payloads are versioned as a
	// whole: each mutation appends a new ByteVersion.
	FormatBytes
)

func (f Format) String() string {
	switch f {
	case FormatNamed:
		return "named"
	case FormatIndexed:
		return "indexed"
	case FormatBytes:
		return "bytes"
	}
	return fmt.Sprintf("format(%d)", uint8(f))
}

// SegmentID names an authorization segment (paper §6: "authorization" is an
// Object Manager duty). Every object belongs to exactly one segment.
type SegmentID uint32

// Association binds a transaction time to the value an element acquired at
// that time (paper §6: "associations are pairs of transaction times and
// object pointers"). The binding lasts until a later association supersedes
// it.
type Association struct {
	T     oop.Time
	Value oop.OOP
}

// Element is a named history of values within an object. Hist is kept in
// strictly ascending time order.
type Element struct {
	Name oop.OOP // a Symbol OOP for named elements, a SmallInteger for indexed
	Hist []Association
}

// At returns the value the element had in the database state at time t: the
// value of the association with the greatest time <= t. The second result is
// false if the element had no value yet at t.
func (e *Element) At(t oop.Time) (oop.OOP, bool) {
	h := e.Hist
	// Binary search for the first association with T > t.
	i := sort.Search(len(h), func(i int) bool { return h[i].T > t })
	if i == 0 {
		return oop.Invalid, false
	}
	return h[i-1].Value, true
}

// Current returns the element's newest value. The second result is false for
// an element with empty history.
func (e *Element) Current() (oop.OOP, bool) {
	if len(e.Hist) == 0 {
		return oop.Invalid, false
	}
	return e.Hist[len(e.Hist)-1].Value, true
}

// Record appends a new association at time t. Appending at a time not later
// than the newest existing association replaces the newest value when the
// times are equal (several writes in one transaction collapse), and returns
// an error when t would go backwards.
func (e *Element) Record(t oop.Time, v oop.OOP) error {
	if n := len(e.Hist); n > 0 {
		last := e.Hist[n-1].T
		if t < last {
			return fmt.Errorf("object: time %v precedes element history head %v", t, last)
		}
		if t == last {
			e.Hist[n-1].Value = v
			return nil
		}
	}
	e.Hist = append(e.Hist, Association{T: t, Value: v})
	return nil
}

// ByteVersion is one historical value of a byte object's payload.
type ByteVersion struct {
	T     oop.Time
	Bytes []byte
}

// Object is the unit of identity in the database: a labeled set of element
// histories (or a versioned byte payload) plus a class reference and an
// authorization segment. Objects are mutated only through the methods here
// so the name index stays consistent.
type Object struct {
	OOP    oop.OOP
	Class  oop.OOP
	Seg    SegmentID
	Format Format

	elems []Element
	index map[oop.OOP]int // element name -> position in elems; built lazily

	byteHist []ByteVersion // only for FormatBytes
}

// New creates an empty object of the given identity, class and format.
func New(o oop.OOP, class oop.OOP, seg SegmentID, f Format) *Object {
	return &Object{OOP: o, Class: class, Seg: seg, Format: f}
}

// Len returns the number of elements (for byte objects, zero; use ByteLen).
func (ob *Object) Len() int { return len(ob.elems) }

// Elements exposes the element slice for iteration. Callers must not modify
// histories directly; treat the result as read-only.
func (ob *Object) Elements() []Element { return ob.elems }

// buildIndex (re)builds the name index.
func (ob *Object) buildIndex() {
	ob.index = make(map[oop.OOP]int, len(ob.elems))
	for i := range ob.elems {
		ob.index[ob.elems[i].Name] = i
	}
}

// Element returns the element with the given name, or nil if absent.
func (ob *Object) Element(name oop.OOP) *Element {
	if ob.index == nil {
		ob.buildIndex()
	}
	i, ok := ob.index[name]
	if !ok {
		return nil
	}
	return &ob.elems[i]
}

// EnsureElement returns the element with the given name, creating an empty
// one if absent. No two elements in an object may share a name (paper §5.1),
// which this upholds by construction.
func (ob *Object) EnsureElement(name oop.OOP) *Element {
	if e := ob.Element(name); e != nil {
		return e
	}
	ob.elems = append(ob.elems, Element{Name: name})
	if ob.index != nil {
		ob.index[name] = len(ob.elems) - 1
	}
	return &ob.elems[len(ob.elems)-1]
}

// Fetch returns the current value of the named element. Missing elements and
// elements with no value yet read as (Nil, false).
func (ob *Object) Fetch(name oop.OOP) (oop.OOP, bool) {
	e := ob.Element(name)
	if e == nil {
		return oop.Nil, false
	}
	v, ok := e.Current()
	if !ok {
		return oop.Nil, false
	}
	return v, true
}

// FetchAt returns the value of the named element in the state at time t.
func (ob *Object) FetchAt(name oop.OOP, t oop.Time) (oop.OOP, bool) {
	if t.IsNow() {
		return ob.Fetch(name)
	}
	e := ob.Element(name)
	if e == nil {
		return oop.Nil, false
	}
	v, ok := e.At(t)
	if !ok {
		return oop.Nil, false
	}
	return v, true
}

// Store records v as the value of the named element at time t, creating the
// element if needed.
func (ob *Object) Store(name oop.OOP, t oop.Time, v oop.OOP) error {
	if ob.Format == FormatBytes {
		return fmt.Errorf("object: byte object %v has no named elements", ob.OOP)
	}
	return ob.EnsureElement(name).Record(t, v)
}

// Remove records nil as the element's value — the paper's replacement for
// deletion ("the fact that Ayn left ... with time 8, whose value is the
// object nil"). History remains accessible.
func (ob *Object) Remove(name oop.OOP, t oop.Time) error {
	return ob.Store(name, t, oop.Nil)
}

// NamesAt returns the element names that have a non-nil value in the state
// at time t, in insertion order.
func (ob *Object) NamesAt(t oop.Time) []oop.OOP {
	var names []oop.OOP
	for i := range ob.elems {
		if v, ok := ob.elems[i].At(timeOrNow(t)); ok && v != oop.Nil {
			names = append(names, ob.elems[i].Name)
		}
	}
	return names
}

func timeOrNow(t oop.Time) oop.Time {
	if t.IsNow() {
		return oop.Time(^uint64(0) - 1) // any committed time compares below
	}
	return t
}

// --- Byte payloads ---

// SetBytes records a new whole-payload version at time t.
func (ob *Object) SetBytes(t oop.Time, b []byte) error {
	if ob.Format != FormatBytes {
		return fmt.Errorf("object: %v is not a byte object", ob.OOP)
	}
	if n := len(ob.byteHist); n > 0 {
		last := ob.byteHist[n-1].T
		if t < last {
			return fmt.Errorf("object: time %v precedes byte history head %v", t, last)
		}
		if t == last {
			ob.byteHist[n-1].Bytes = b
			return nil
		}
	}
	ob.byteHist = append(ob.byteHist, ByteVersion{T: t, Bytes: b})
	return nil
}

// Bytes returns the current byte payload (nil if none).
func (ob *Object) Bytes() []byte {
	if n := len(ob.byteHist); n > 0 {
		return ob.byteHist[n-1].Bytes
	}
	return nil
}

// BytesAt returns the payload in the state at time t.
func (ob *Object) BytesAt(t oop.Time) ([]byte, bool) {
	if t.IsNow() {
		b := ob.Bytes()
		return b, b != nil
	}
	h := ob.byteHist
	i := sort.Search(len(h), func(i int) bool { return h[i].T > t })
	if i == 0 {
		return nil, false
	}
	return h[i-1].Bytes, true
}

// ByteLen returns the current payload length.
func (ob *Object) ByteLen() int { return len(ob.Bytes()) }

// ByteVersions exposes the byte history (read-only).
func (ob *Object) ByteVersions() []ByteVersion { return ob.byteHist }

// --- Copying and equality ---

// Clone makes a deep copy of the object's structure (histories are copied;
// referenced objects are shared by OOP, which is exactly entity identity).
// Workspaces use Clone to give sessions a private copy-on-write view.
func (ob *Object) Clone() *Object {
	c := &Object{OOP: ob.OOP, Class: ob.Class, Seg: ob.Seg, Format: ob.Format}
	if len(ob.elems) > 0 {
		c.elems = make([]Element, len(ob.elems))
		for i := range ob.elems {
			c.elems[i] = Element{
				Name: ob.elems[i].Name,
				Hist: append([]Association(nil), ob.elems[i].Hist...),
			}
		}
	}
	if len(ob.byteHist) > 0 {
		c.byteHist = make([]ByteVersion, len(ob.byteHist))
		for i, v := range ob.byteHist {
			c.byteHist[i] = ByteVersion{T: v.T, Bytes: append([]byte(nil), v.Bytes...)}
		}
	}
	return c
}

// RestampPending rewrites every association carrying the pending-time
// sentinel to the committed transaction time. Workspaces record uncommitted
// writes at PendingTime; the Linker restamps them when the Transaction
// Manager assigns the real commit time.
func (ob *Object) RestampPending(commit oop.Time) {
	for i := range ob.elems {
		h := ob.elems[i].Hist
		for j := range h {
			if h[j].T == PendingTime {
				h[j].T = commit
			}
		}
	}
	for i := range ob.byteHist {
		if ob.byteHist[i].T == PendingTime {
			ob.byteHist[i].T = commit
		}
	}
}

// PendingTime is the provisional timestamp used for writes inside an
// uncommitted transaction. It compares above every committed time so the
// writing session sees its own updates as current, and it is rewritten to
// the assigned transaction time at commit.
const PendingTime = oop.Time(^uint64(0) - 1)

// EquivalentAt reports structural equivalence of two objects in the state at
// time t, resolving references one level deep by OOP equality. Full deep
// structural equivalence is a model-level operation provided by the core
// package (it needs the object graph); this shallow form is what the
// representation itself can decide.
func (ob *Object) EquivalentAt(other *Object, t oop.Time) bool {
	if ob.Format != other.Format || ob.Class != other.Class {
		return false
	}
	if ob.Format == FormatBytes {
		a, aok := ob.BytesAt(t)
		b, bok := other.BytesAt(t)
		if aok != bok {
			return false
		}
		return string(a) == string(b)
	}
	an, bn := ob.NamesAt(t), other.NamesAt(t)
	if len(an) != len(bn) {
		return false
	}
	for _, name := range an {
		av, _ := ob.FetchAt(name, t)
		bv, ok := other.FetchAt(name, t)
		if !ok || av != bv {
			return false
		}
	}
	return true
}

// HistoryLen returns the total number of associations stored in the object,
// a measure of how much the object has "grown with time" (paper §6).
func (ob *Object) HistoryLen() int {
	n := len(ob.byteHist)
	for i := range ob.elems {
		n += len(ob.elems[i].Hist)
	}
	return n
}
