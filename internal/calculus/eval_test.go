package calculus

import (
	"testing"

	"repro/internal/auth"
	"repro/internal/core"
	"repro/internal/oop"
)

func evalSession(t *testing.T) *core.Session {
	t.Helper()
	db, err := core.Open(t.TempDir(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	s, err := db.NewSession(auth.SystemUser, "swordfish")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustEval(t *testing.T, s *core.Session, e Expr, b Binding) Value {
	t.Helper()
	v, err := Eval(s, e, b)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return v
}

func TestEvalLiterals(t *testing.T) {
	s := evalSession(t)
	if v := mustEval(t, s, Num{V: 3.5}, nil); v.Kind != VNum || v.N != 3.5 {
		t.Errorf("num = %+v", v)
	}
	if v := mustEval(t, s, Str{V: "hi"}, nil); v.Kind != VStr || v.S != "hi" {
		t.Errorf("str = %+v", v)
	}
	if v := mustEval(t, s, Bool{V: true}, nil); !Truthy(v) {
		t.Errorf("bool = %+v", v)
	}
	if v := mustEval(t, s, Nil{}, nil); v.Kind != VNil {
		t.Errorf("nil = %+v", v)
	}
}

func TestEvalArithmetic(t *testing.T) {
	s := evalSession(t)
	cases := []struct {
		op   Op
		l, r float64
		want float64
	}{
		{OpAdd, 2, 3, 5},
		{OpSub, 2, 3, -1},
		{OpMul, 2, 3, 6},
		{OpDiv, 7, 2, 3.5},
	}
	for _, c := range cases {
		v := mustEval(t, s, &Binary{Op: c.op, L: Num{V: c.l}, R: Num{V: c.r}}, nil)
		if v.Kind != VNum || v.N != c.want {
			t.Errorf("%v %s %v = %+v", c.l, c.op, c.r, v)
		}
	}
	// Errors: division by zero, non-numeric operands.
	if _, err := Eval(s, &Binary{Op: OpDiv, L: Num{V: 1}, R: Num{V: 0}}, nil); err == nil {
		t.Error("division by zero accepted")
	}
	if _, err := Eval(s, &Binary{Op: OpAdd, L: Str{V: "x"}, R: Num{V: 1}}, nil); err == nil {
		t.Error("string arithmetic accepted")
	}
}

func TestEvalComparisons(t *testing.T) {
	s := evalSession(t)
	tests := []struct {
		op   Op
		want bool
	}{
		{OpLt, true}, {OpLe, true}, {OpGt, false}, {OpGe, false},
		{OpEq, false}, {OpNe, true},
	}
	for _, c := range tests {
		v := mustEval(t, s, &Binary{Op: c.op, L: Num{V: 1}, R: Num{V: 2}}, nil)
		if Truthy(v) != c.want {
			t.Errorf("1 %s 2 = %v", c.op, v)
		}
	}
	// String comparison.
	v := mustEval(t, s, &Binary{Op: OpLt, L: Str{V: "a"}, R: Str{V: "b"}}, nil)
	if !Truthy(v) {
		t.Error("'a' < 'b' false")
	}
	// Cross-kind comparison errors.
	if _, err := Eval(s, &Binary{Op: OpLt, L: Num{V: 1}, R: Str{V: "b"}}, nil); err == nil {
		t.Error("cross-kind < accepted")
	}
}

func TestEvalLogic(t *testing.T) {
	s := evalSession(t)
	and := func(l, r Expr) Expr { return &Binary{Op: OpAnd, L: l, R: r} }
	or := func(l, r Expr) Expr { return &Binary{Op: OpOr, L: l, R: r} }
	if Truthy(mustEval(t, s, and(Bool{true}, Bool{false}), nil)) {
		t.Error("true and false")
	}
	if !Truthy(mustEval(t, s, or(Bool{false}, Bool{true}), nil)) {
		t.Error("false or true")
	}
	if Truthy(mustEval(t, s, &Not{E: Bool{true}}, nil)) {
		t.Error("not true")
	}
	// Short-circuit: the right side would error but is never evaluated.
	bad := &Binary{Op: OpDiv, L: Num{V: 1}, R: Num{V: 0}}
	if Truthy(mustEval(t, s, and(Bool{false}, bad), nil)) {
		t.Error("short-circuit and")
	}
	if !Truthy(mustEval(t, s, or(Bool{true}, bad), nil)) {
		t.Error("short-circuit or")
	}
}

func TestEvalPathsAndBindings(t *testing.T) {
	s := evalSession(t)
	k := s.DB().Kernel()
	d, _ := s.NewObject(k.Dictionary)
	_ = s.Store(d, s.Symbol("Budget"), oop.MustInt(142000))
	world, _ := s.Global("World")
	_ = s.Store(world, s.Symbol("dept"), d)

	// Bound variable root.
	v := mustEval(t, s, &Path{Root: "d", Steps: []PathStep{{Name: "Budget"}}}, Binding{"d": d})
	if v.Kind != VNum || v.N != 142000 {
		t.Errorf("d!Budget = %+v", v)
	}
	// Global fallback root.
	v = mustEval(t, s, &Path{Root: "dept", Steps: []PathStep{{Name: "Budget"}}}, nil)
	if v.N != 142000 {
		t.Errorf("dept!Budget = %+v", v)
	}
	// Unbound root errors.
	if _, err := Eval(s, &Path{Root: "nowhere"}, nil); err == nil {
		t.Error("unbound root accepted")
	}
	// Traversal through a simple value errors.
	if _, err := Eval(s, &Path{Root: "d", Steps: []PathStep{{Name: "Budget"}, {Name: "x"}}}, Binding{"d": d}); err == nil {
		t.Error("traversal through number accepted")
	}
	// Temporal step.
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	_ = s.Store(d, s.Symbol("Budget"), oop.MustInt(9))
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	v = mustEval(t, s, &Path{Root: "d", Steps: []PathStep{{Name: "Budget", HasAt: true, At: 1}}}, Binding{"d": d})
	if v.N != 142000 {
		t.Errorf("d!Budget@1 = %+v", v)
	}
}

func TestEvalIn(t *testing.T) {
	s := evalSession(t)
	k := s.DB().Kernel()
	set, _ := s.NewObject(k.Set)
	str, _ := s.NewString("Sales")
	_, _ = s.AddToSet(set, str)
	_, _ = s.AddToSet(set, oop.MustInt(7))
	world, _ := s.Global("World")
	_ = s.Store(world, s.Symbol("depts"), set)

	in := func(l Expr) Value {
		return mustEval(t, s, &Binary{Op: OpIn, L: l, R: &Path{Root: "depts"}}, nil)
	}
	if !Truthy(in(Str{V: "Sales"})) {
		t.Error("'Sales' in depts — structural string equality")
	}
	if !Truthy(in(Num{V: 7})) {
		t.Error("7 in depts")
	}
	if Truthy(in(Str{V: "Planning"})) {
		t.Error("'Planning' in depts")
	}
	// Membership in a non-set errors.
	if _, err := Eval(s, &Binary{Op: OpIn, L: Num{V: 1}, R: Num{V: 2}}, nil); err == nil {
		t.Error("in over number accepted")
	}
}

func TestDecodeKinds(t *testing.T) {
	s := evalSession(t)
	k := s.DB().Kernel()
	f, _ := s.NewFloat(2.5)
	str, _ := s.NewString("hi")
	obj, _ := s.NewObject(k.Object)
	cases := []struct {
		v    oop.OOP
		kind ValueKind
	}{
		{oop.Nil, VNil},
		{oop.True, VBool},
		{oop.MustInt(3), VNum},
		{oop.FromChar('x'), VChar},
		{f, VNum},
		{str, VStr},
		{s.Symbol("sym"), VStr},
		{obj, VObj},
	}
	for _, c := range cases {
		if got := Decode(s, c.v); got.Kind != c.kind {
			t.Errorf("Decode(%v).Kind = %v, want %v", c.v, got.Kind, c.kind)
		}
	}
	// Identity semantics for objects.
	if !Equal(Decode(s, obj), Decode(s, obj)) {
		t.Error("object not equal to itself")
	}
	obj2, _ := s.NewObject(k.Object)
	if Equal(Decode(s, obj), Decode(s, obj2)) {
		t.Error("distinct objects equal")
	}
}

func TestBindingClone(t *testing.T) {
	b := Binding{"x": oop.MustInt(1)}
	c := b.Clone()
	c["y"] = oop.MustInt(2)
	if _, ok := b["y"]; ok {
		t.Error("clone aliased original")
	}
	if c["x"] != oop.MustInt(1) {
		t.Error("clone lost binding")
	}
}
