package calculus

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/oop"
)

// Env supplies variable values during evaluation. Binding is the map-backed
// implementation; the algebra executor supplies a reusable slot-frame
// implementation so streaming pipelines bind variables without allocating
// per row.
type Env interface {
	LookupVar(name string) (oop.OOP, bool)
}

// Binding maps calculus variables to values during evaluation.
type Binding map[string]oop.OOP

// LookupVar implements Env.
func (b Binding) LookupVar(name string) (oop.OOP, bool) {
	v, ok := b[name]
	return v, ok
}

// Clone copies a binding (iterators extend bindings without aliasing).
func (b Binding) Clone() Binding {
	c := make(Binding, len(b)+1)
	for k, v := range b {
		c[k] = v
	}
	return c
}

// Value is a decoded runtime value: comparisons in the calculus are
// structural for simple values (numbers by value, strings by contents) and
// identity-based for other objects, matching §5.2's d!Name in e!Depts over
// string sets.
type Value struct {
	Kind ValueKind
	N    float64
	S    string
	B    bool
	O    oop.OOP // original OOP (for identity and set iteration)
}

// ValueKind discriminates Value.
type ValueKind uint8

// Value kinds.
const (
	VNil ValueKind = iota
	VBool
	VNum
	VStr
	VChar
	VObj
)

// Decode converts an OOP into a Value using the session to resolve boxed
// floats and byte objects.
func Decode(s *core.Session, o oop.OOP) Value {
	switch {
	case o == oop.Nil || o == oop.Invalid:
		return Value{Kind: VNil, O: oop.Nil}
	case o == oop.True:
		return Value{Kind: VBool, B: true, O: o}
	case o == oop.False:
		return Value{Kind: VBool, B: false, O: o}
	case o.IsSmallInt():
		return Value{Kind: VNum, N: float64(o.Int()), O: o}
	case o.IsCharacter():
		return Value{Kind: VChar, S: string(o.Char()), O: o}
	}
	cls := s.ClassOf(o)
	k := s.DB().Kernel()
	switch cls {
	case k.Float:
		f, err := s.FloatValue(o)
		if err == nil {
			return Value{Kind: VNum, N: f, O: o}
		}
	case k.String, k.Symbol:
		b, err := s.BytesOf(o)
		if err == nil {
			return Value{Kind: VStr, S: string(b), O: o}
		}
	}
	return Value{Kind: VObj, O: o}
}

// Equal reports calculus equality of two values.
func Equal(a, b Value) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case VNil:
		return true
	case VBool:
		return a.B == b.B
	case VNum:
		return a.N == b.N
	case VStr, VChar:
		return a.S == b.S
	default:
		return a.O == b.O // entity identity
	}
}

// Less orders two values; comparable kinds only.
func Less(a, b Value) (bool, error) {
	if a.Kind == VNum && b.Kind == VNum {
		return a.N < b.N, nil
	}
	if (a.Kind == VStr || a.Kind == VChar) && (b.Kind == VStr || b.Kind == VChar) {
		return a.S < b.S, nil
	}
	return false, fmt.Errorf("calculus: values %v and %v are not comparable", a.Kind, b.Kind)
}

// Truthy interprets a value as a predicate result.
func Truthy(v Value) bool { return v.Kind == VBool && v.B }

// Eval evaluates an expression under a binding. The session's globals serve
// as fallback roots for unbound path variables (X!Employees with X a
// global).
func Eval(s *core.Session, e Expr, env Env) (Value, error) {
	switch n := e.(type) {
	case Num:
		return Value{Kind: VNum, N: n.V}, nil
	case Str:
		return Value{Kind: VStr, S: n.V}, nil
	case Bool:
		return Value{Kind: VBool, B: n.V}, nil
	case Nil:
		return Value{Kind: VNil, O: oop.Nil}, nil
	case *Path:
		o, err := EvalPath(s, n, env)
		if err != nil {
			return Value{}, err
		}
		return Decode(s, o), nil
	case *Not:
		v, err := Eval(s, n.E, env)
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: VBool, B: !Truthy(v)}, nil
	case *Binary:
		return evalBinary(s, n, env)
	}
	return Value{}, fmt.Errorf("calculus: unknown expression %T", e)
}

// EvalPath resolves a path expression to an OOP under a binding. A nil env
// behaves as an empty binding: only globals resolve.
func EvalPath(s *core.Session, p *Path, env Env) (oop.OOP, error) {
	var cur oop.OOP
	var ok bool
	if env != nil {
		cur, ok = env.LookupVar(p.Root)
	}
	if !ok {
		if g, found := s.Global(p.Root); found {
			cur = g
		} else {
			return oop.Invalid, fmt.Errorf("calculus: unbound variable %q", p.Root)
		}
	}
	for _, st := range p.Steps {
		if !cur.IsHeap() {
			return oop.Invalid, fmt.Errorf("calculus: cannot traverse %q from a simple value in %s", st.Name, p)
		}
		var name oop.OOP
		if st.IsIndex {
			name = oop.MustInt(st.Index)
		} else {
			name = s.Symbol(st.Name)
		}
		var v oop.OOP
		var err error
		if st.HasAt {
			v, _, err = s.FetchAt(cur, name, oop.Time(st.At))
		} else {
			v, _, err = s.Fetch(cur, name)
		}
		if err != nil {
			return oop.Invalid, err
		}
		cur = v
	}
	return cur, nil
}

func evalBinary(s *core.Session, n *Binary, env Env) (Value, error) {
	// Short-circuit logical operators.
	switch n.Op {
	case OpAnd:
		l, err := Eval(s, n.L, env)
		if err != nil {
			return Value{}, err
		}
		if !Truthy(l) {
			return Value{Kind: VBool, B: false}, nil
		}
		r, err := Eval(s, n.R, env)
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: VBool, B: Truthy(r)}, nil
	case OpOr:
		l, err := Eval(s, n.L, env)
		if err != nil {
			return Value{}, err
		}
		if Truthy(l) {
			return Value{Kind: VBool, B: true}, nil
		}
		r, err := Eval(s, n.R, env)
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: VBool, B: Truthy(r)}, nil
	}
	l, err := Eval(s, n.L, env)
	if err != nil {
		return Value{}, err
	}
	r, err := Eval(s, n.R, env)
	if err != nil {
		return Value{}, err
	}
	switch n.Op {
	case OpAdd, OpSub, OpMul, OpDiv:
		if l.Kind != VNum || r.Kind != VNum {
			return Value{}, fmt.Errorf("calculus: arithmetic on non-numbers in %s", n)
		}
		var f float64
		switch n.Op {
		case OpAdd:
			f = l.N + r.N
		case OpSub:
			f = l.N - r.N
		case OpMul:
			f = l.N * r.N
		case OpDiv:
			if r.N == 0 {
				return Value{}, fmt.Errorf("calculus: division by zero in %s", n)
			}
			f = l.N / r.N
		}
		return Value{Kind: VNum, N: f}, nil
	case OpEq:
		return Value{Kind: VBool, B: Equal(l, r)}, nil
	case OpNe:
		return Value{Kind: VBool, B: !Equal(l, r)}, nil
	case OpLt, OpLe, OpGt, OpGe:
		lt, err := Less(l, r)
		if err != nil {
			return Value{}, err
		}
		gt, err := Less(r, l)
		if err != nil {
			return Value{}, err
		}
		var res bool
		switch n.Op {
		case OpLt:
			res = lt
		case OpLe:
			res = !gt
		case OpGt:
			res = gt
		case OpGe:
			res = !lt
		}
		return Value{Kind: VBool, B: res}, nil
	case OpIn:
		return evalIn(s, l, r)
	}
	return Value{}, fmt.Errorf("calculus: unsupported operator %s", n.Op)
}

// errStopIteration is a private cursor early-exit sentinel; it never
// escapes this package.
var errStopIteration = errors.New("calculus: stop iteration")

// evalIn tests structural membership of l in the set r, streaming the
// members through a cursor and stopping at the first match.
func evalIn(s *core.Session, l, r Value) (Value, error) {
	if r.Kind != VObj && r.Kind != VStr {
		return Value{}, fmt.Errorf("calculus: right side of 'in' is not a set")
	}
	found := false
	k := s.DB().Kernel()
	err := s.MembersFunc(r.O, func(m oop.OOP) error {
		// Fast path for string sets (§5.2's d!Name in e!Depts): compare the
		// member's bytes against l directly — string(b) == l.S compiles to
		// an allocation-free comparison — instead of decoding a Value.
		if l.Kind == VStr && m.IsHeap() {
			if cls := s.ClassOf(m); cls == k.String || cls == k.Symbol {
				b, err := s.BytesOf(m)
				if err != nil {
					return err
				}
				if string(b) == l.S {
					found = true
					return errStopIteration
				}
				return nil
			}
		}
		if Equal(l, Decode(s, m)) {
			found = true
			return errStopIteration
		}
		return nil
	})
	if err != nil && !errors.Is(err, errStopIteration) {
		return Value{}, err
	}
	return Value{Kind: VBool, B: found}, nil
}
