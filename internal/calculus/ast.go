// Package calculus implements the set-calculus query language of §5.1: a
// declarative syntax over labeled sets, whose "distinguishing feature ...
// is that variables can be bound to functions of other variables" — range
// sources may be paths through previously bound variables, as in
// (m in d!Managers).
//
// The ASCII concrete syntax used here renders ∈ as "in":
//
//	{Emp: e, Mgr: m} where
//	  (e in X!Employees) and
//	  (d in X!Departments) [(m in d!Managers) and
//	    (d!Name in e!Depts) and (e!Salary > 0.10 * d!Budget)]
//
// The bracket form nests dependent ranges; parsing flattens the query into
// binding-ordered ranges plus a conjunction of predicates, the canonical
// input to the calculus→algebra translator (package algebra).
package calculus

import (
	"fmt"
	"strings"
)

// Query is a parsed calculus expression.
type Query struct {
	Target []TargetField // the result tuple constructor {Label: var, ...}
	Ranges []Range       // in dependency (binding) order
	Pred   Expr          // conjunction of all predicates; nil means true
}

// TargetField labels one variable in the result tuple.
type TargetField struct {
	Label string
	Var   string
}

// Range binds Var to each member of the set denoted by Source (which may
// reference previously bound variables).
type Range struct {
	Var    string
	Source Expr
}

// Op enumerates binary operators.
type Op uint8

// Binary operators, in no particular precedence order (precedence is a
// parser concern).
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpIn // membership: value is (structurally) equal to some member
	OpAnd
	OpOr
)

func (o Op) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpIn:
		return "in"
	case OpAnd:
		return "and"
	case OpOr:
		return "or"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Expr is a calculus expression node.
type Expr interface {
	// FreeVars appends the variables the expression references.
	FreeVars(into map[string]bool)
	String() string
}

// Path references a variable and navigates elements from it:
// d!Name, e!Salary, X!Employees. A bare variable is a Path with no steps.
type Path struct {
	Root  string
	Steps []PathStep
}

// PathStep is one navigation step (element name or index, optional @T).
type PathStep struct {
	Name    string
	IsIndex bool
	Index   int64
	HasAt   bool
	At      uint64
}

// FreeVars implements Expr.
func (p *Path) FreeVars(into map[string]bool) { into[p.Root] = true }

func (p *Path) String() string {
	var b strings.Builder
	b.WriteString(p.Root)
	for _, s := range p.Steps {
		b.WriteByte('!')
		if s.IsIndex {
			fmt.Fprintf(&b, "%d", s.Index)
		} else if isIdent(s.Name) {
			b.WriteString(s.Name)
		} else {
			fmt.Fprintf(&b, "'%s'", strings.ReplaceAll(s.Name, "'", "''"))
		}
		if s.HasAt {
			fmt.Fprintf(&b, "@%d", s.At)
		}
	}
	return b.String()
}

// Num is a numeric literal (held as float64; integral values print bare).
type Num struct{ V float64 }

// FreeVars implements Expr.
func (Num) FreeVars(map[string]bool) {}

func (n Num) String() string {
	if n.V == float64(int64(n.V)) {
		return fmt.Sprintf("%d", int64(n.V))
	}
	return fmt.Sprintf("%g", n.V)
}

// Str is a string literal.
type Str struct{ V string }

// FreeVars implements Expr.
func (Str) FreeVars(map[string]bool) {}

func (s Str) String() string { return "'" + strings.ReplaceAll(s.V, "'", "''") + "'" }

// Bool is true/false.
type Bool struct{ V bool }

// FreeVars implements Expr.
func (Bool) FreeVars(map[string]bool) {}

func (b Bool) String() string {
	if b.V {
		return "true"
	}
	return "false"
}

// Nil is the nil literal.
type Nil struct{}

// FreeVars implements Expr.
func (Nil) FreeVars(map[string]bool) {}

func (Nil) String() string { return "nil" }

// Binary applies Op to two subexpressions.
type Binary struct {
	Op   Op
	L, R Expr
}

// FreeVars implements Expr.
func (b *Binary) FreeVars(into map[string]bool) {
	b.L.FreeVars(into)
	b.R.FreeVars(into)
}

func (b *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// Not negates a predicate.
type Not struct{ E Expr }

// FreeVars implements Expr.
func (n *Not) FreeVars(into map[string]bool) { n.E.FreeVars(into) }

func (n *Not) String() string { return fmt.Sprintf("(not %s)", n.E) }

// String renders the query in concrete syntax.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, t := range q.Target {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s: %s", t.Label, t.Var)
	}
	b.WriteString("} where ")
	for i, r := range q.Ranges {
		if i > 0 {
			b.WriteString(" and ")
		}
		fmt.Fprintf(&b, "(%s in %s)", r.Var, r.Source)
	}
	if q.Pred != nil {
		if len(q.Ranges) > 0 {
			b.WriteString(" and ")
		}
		b.WriteString(q.Pred.String())
	}
	return b.String()
}

// Conjuncts splits the predicate into its top-level AND factors.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*Binary); ok && b.Op == OpAnd {
		return append(Conjuncts(b.L), Conjuncts(b.R)...)
	}
	return []Expr{e}
}

// And joins predicates into a conjunction (nil-tolerant).
func And(a, b Expr) Expr {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	}
	return &Binary{Op: OpAnd, L: a, R: b}
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || (i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}
