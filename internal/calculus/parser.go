package calculus

import (
	"fmt"
	"strconv"
	"strings"
)

type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tNum
	tStr
	tPunct // single/double char punctuation and operators
)

type token struct {
	kind tokKind
	text string
	num  float64
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c >= '0' && c <= '9' || (c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9'):
			start := l.pos
			seenDot := false
			for l.pos < len(l.src) {
				d := l.src[l.pos]
				if d >= '0' && d <= '9' {
					l.pos++
				} else if d == '.' && !seenDot && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
					seenDot = true
					l.pos++
				} else {
					break
				}
			}
			// Number literals may use comma as a thousands separator in the
			// paper (142,000); we accept plain digits only.
			f, err := strconv.ParseFloat(l.src[start:l.pos], 64)
			if err != nil {
				return nil, fmt.Errorf("calculus: bad number at %d: %v", start, err)
			}
			l.toks = append(l.toks, token{kind: tNum, num: f, pos: start})
		case c == '\'':
			start := l.pos
			l.pos++
			var b strings.Builder
			closed := false
			for l.pos < len(l.src) {
				if l.src[l.pos] == '\'' {
					if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
						b.WriteByte('\'')
						l.pos += 2
						continue
					}
					l.pos++
					closed = true
					break
				}
				b.WriteByte(l.src[l.pos])
				l.pos++
			}
			if !closed {
				return nil, fmt.Errorf("calculus: unterminated string at %d", start)
			}
			l.toks = append(l.toks, token{kind: tStr, text: b.String(), pos: start})
		case c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
			start := l.pos
			for l.pos < len(l.src) {
				d := l.src[l.pos]
				if d == '_' || d >= 'a' && d <= 'z' || d >= 'A' && d <= 'Z' || d >= '0' && d <= '9' {
					l.pos++
				} else {
					break
				}
			}
			l.toks = append(l.toks, token{kind: tIdent, text: l.src[start:l.pos], pos: start})
		default:
			two := ""
			if l.pos+1 < len(l.src) {
				two = l.src[l.pos : l.pos+2]
			}
			switch two {
			case "<=", ">=", "!=":
				l.toks = append(l.toks, token{kind: tPunct, text: two, pos: l.pos})
				l.pos += 2
				continue
			}
			switch c {
			case '{', '}', '(', ')', '[', ']', ',', ':', '!', '@', '<', '>', '=', '+', '-', '*', '/', '.':
				l.toks = append(l.toks, token{kind: tPunct, text: string(c), pos: l.pos})
				l.pos++
			default:
				return nil, fmt.Errorf("calculus: unexpected character %q at %d", c, l.pos)
			}
		}
	}
	l.toks = append(l.toks, token{kind: tEOF, pos: l.pos})
	return l.toks, nil
}

type parser struct {
	toks        []token
	i           int
	bound       map[string]bool // variables bound by ranges so far
	q           *Query
	insideGroup bool // inside parentheses, where 'and' binds expressions
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("calculus: %s near offset %d", fmt.Sprintf(format, args...), p.cur().pos)
}

func (p *parser) expectPunct(s string) error {
	if p.cur().kind == tPunct && p.cur().text == s {
		p.i++
		return nil
	}
	return p.errf("expected %q", s)
}

func (p *parser) isPunct(s string) bool {
	return p.cur().kind == tPunct && p.cur().text == s
}

func (p *parser) isKeyword(s string) bool {
	return p.cur().kind == tIdent && p.cur().text == s
}

// Parse parses a complete calculus query.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, bound: map[string]bool{}, q: &Query{}}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for {
		if p.cur().kind != tIdent {
			return nil, p.errf("expected target label")
		}
		label := p.next().text
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		if p.cur().kind != tIdent {
			return nil, p.errf("expected variable after label %q", label)
		}
		p.q.Target = append(p.q.Target, TargetField{Label: label, Var: p.next().text})
		if p.isPunct(",") {
			p.i++
			continue
		}
		break
	}
	if err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	if !p.isKeyword("where") {
		return nil, p.errf("expected 'where'")
	}
	p.i++
	pred, err := p.body()
	if err != nil {
		return nil, err
	}
	p.q.Pred = pred
	if p.cur().kind != tEOF {
		return nil, p.errf("trailing input")
	}
	// Every target variable must be bound by some range.
	for _, t := range p.q.Target {
		if !p.bound[t.Var] {
			return nil, fmt.Errorf("calculus: target variable %q is not bound by any range", t.Var)
		}
	}
	return p.q, nil
}

// body parses a conjunction of items (ranges, quantified blocks,
// predicates), flattening ranges into q.Ranges and returning the residual
// predicate (possibly nil).
func (p *parser) body() (Expr, error) {
	var pred Expr
	for {
		item, err := p.item()
		if err != nil {
			return nil, err
		}
		pred = And(pred, item)
		if p.isKeyword("and") {
			p.i++
			continue
		}
		return pred, nil
	}
}

// item parses one conjunct. A parenthesized `x in S` where x is a bare
// unbound identifier is a range; it may be followed by a bracketed
// dependent body.
func (p *parser) item() (Expr, error) {
	if p.isPunct("(") {
		// Lookahead for the range form: ( ident in ... ).
		if p.toks[p.i+1].kind == tIdent && !p.bound[p.toks[p.i+1].text] &&
			p.toks[p.i+2].kind == tIdent && p.toks[p.i+2].text == "in" {
			p.i++ // (
			v := p.next().text
			p.i++ // in
			src, err := p.orExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			p.q.Ranges = append(p.q.Ranges, Range{Var: v, Source: src})
			p.bound[v] = true
			if p.isPunct("[") {
				p.i++
				inner, err := p.body()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct("]"); err != nil {
					return nil, err
				}
				return inner, nil
			}
			return nil, nil
		}
	}
	return p.orExpr()
}

// Predicate grammar: or > and > not > comparison > additive > multiplicative.
func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("or") {
		p.i++
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	// 'and' at this level only applies inside parentheses; top-level 'and'
	// is consumed by body(). We still accept it here for nested groups.
	for p.isKeyword("and") && p.insideGroup {
		p.i++
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.isKeyword("not") {
		p.i++
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &Not{E: e}, nil
	}
	return p.comparison()
}

func (p *parser) comparison() (Expr, error) {
	l, err := p.additive()
	if err != nil {
		return nil, err
	}
	var op Op
	switch {
	case p.isPunct("="):
		op = OpEq
	case p.isPunct("!="):
		op = OpNe
	case p.isPunct("<"):
		op = OpLt
	case p.isPunct("<="):
		op = OpLe
	case p.isPunct(">"):
		op = OpGt
	case p.isPunct(">="):
		op = OpGe
	case p.isKeyword("in"):
		op = OpIn
	default:
		return l, nil
	}
	p.i++
	r, err := p.additive()
	if err != nil {
		return nil, err
	}
	return &Binary{Op: op, L: l, R: r}, nil
}

func (p *parser) additive() (Expr, error) {
	l, err := p.multiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op Op
		switch {
		case p.isPunct("+"):
			op = OpAdd
		case p.isPunct("-"):
			op = OpSub
		default:
			return l, nil
		}
		p.i++
		r, err := p.multiplicative()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) multiplicative() (Expr, error) {
	l, err := p.factor()
	if err != nil {
		return nil, err
	}
	for {
		var op Op
		switch {
		case p.isPunct("*"):
			op = OpMul
		case p.isPunct("/"):
			op = OpDiv
		default:
			return l, nil
		}
		p.i++
		r, err := p.factor()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) factor() (Expr, error) {
	switch t := p.cur(); {
	case t.kind == tNum:
		p.i++
		return Num{V: t.num}, nil
	case t.kind == tStr:
		p.i++
		// A quoted string followed by path steps is not a literal but the
		// first step of a path from a prior token; strings as roots are not
		// supported, so here it is always a literal.
		return Str{V: t.text}, nil
	case t.kind == tIdent && t.text == "true":
		p.i++
		return Bool{V: true}, nil
	case t.kind == tIdent && t.text == "false":
		p.i++
		return Bool{V: false}, nil
	case t.kind == tIdent && t.text == "nil":
		p.i++
		return Nil{}, nil
	case t.kind == tIdent:
		return p.path()
	case p.isPunct("("):
		p.i++
		save := p.insideGroup
		p.insideGroup = true
		e, err := p.orExpr()
		p.insideGroup = save
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	case p.isPunct("-"):
		p.i++
		e, err := p.factor()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: OpSub, L: Num{V: 0}, R: e}, nil
	}
	return nil, p.errf("unexpected token")
}

// path parses var ('!' step)*.
func (p *parser) path() (Expr, error) {
	root := p.next().text
	pe := &Path{Root: root}
	for p.isPunct("!") {
		p.i++
		var st PathStep
		switch t := p.cur(); {
		case t.kind == tIdent:
			st.Name = t.text
			p.i++
		case t.kind == tStr:
			st.Name = t.text
			p.i++
		case t.kind == tNum && t.num == float64(int64(t.num)):
			st.IsIndex, st.Index = true, int64(t.num)
			p.i++
		default:
			return nil, p.errf("expected element name after '!'")
		}
		if p.isPunct("@") {
			p.i++
			if p.cur().kind != tNum {
				return nil, p.errf("expected time after '@'")
			}
			st.HasAt, st.At = true, uint64(p.cur().num)
			p.i++
		}
		pe.Steps = append(pe.Steps, st)
	}
	return pe, nil
}
