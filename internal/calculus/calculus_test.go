package calculus

import (
	"strings"
	"testing"
	"testing/quick"
)

const paperQuery = `{Emp: e, Mgr: m} where
 (e in X!Employees) and
 (d in X!Departments) [(m in d!Managers) and
 (d!Name in e!Depts) and (e!Salary > 0.10 * d!Budget)]`

func TestParsePaperQuery(t *testing.T) {
	q, err := Parse(paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Target) != 2 || q.Target[0].Label != "Emp" || q.Target[0].Var != "e" || q.Target[1].Label != "Mgr" || q.Target[1].Var != "m" {
		t.Errorf("target = %+v", q.Target)
	}
	if len(q.Ranges) != 3 {
		t.Fatalf("ranges = %d, want 3", len(q.Ranges))
	}
	if q.Ranges[0].Var != "e" || q.Ranges[0].Source.String() != "X!Employees" {
		t.Errorf("range 0 = %v in %v", q.Ranges[0].Var, q.Ranges[0].Source)
	}
	if q.Ranges[1].Var != "d" || q.Ranges[2].Var != "m" {
		t.Errorf("ranges = %+v", q.Ranges)
	}
	// m ranges over a function of d — the paper's distinguishing feature.
	if q.Ranges[2].Source.String() != "d!Managers" {
		t.Errorf("dependent range source = %v", q.Ranges[2].Source)
	}
	conj := Conjuncts(q.Pred)
	if len(conj) != 2 {
		t.Fatalf("predicates = %d, want 2: %v", len(conj), q.Pred)
	}
	if conj[0].String() != "((d!Name) in (e!Depts))" && !strings.Contains(conj[0].String(), "in") {
		t.Errorf("pred 0 = %s", conj[0])
	}
	if !strings.Contains(conj[1].String(), "0.1") || !strings.Contains(conj[1].String(), "*") {
		t.Errorf("pred 1 = %s", conj[1])
	}
}

func TestParseSimpleForms(t *testing.T) {
	cases := []string{
		"{R: x} where (x in World!things)",
		"{R: x} where (x in World!things) and x!size > 3",
		"{R: x} where (x in World!things) and (x!a = 1 or x!b = 2)",
		"{R: x} where (x in World!things) and not x!flag = true",
		"{A: x, B: y} where (x in S!a) and (y in x!friends)",
		"{R: x} where (x in World!things) and x!name = 'it''s'",
		"{R: x} where (x in World!things) and x!when@5 = nil",
		"{R: x} where (x in World!things) and x!1 = 2",
	}
	for _, src := range cases {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"{R x} where (x in S)",
		"{R: x} (x in S)",                     // missing where
		"{R: x} where (y in S)",               // target var unbound
		"{R: x} where (x in S) and",           // dangling and
		"{R: x} where (x in S) extra",         // trailing
		"{R: x} where (x in 'lit)",            // unterminated string
		"{R: x} where (x in S) and x! = 3",    // missing element name
		"{R: x} where (x in S) and x!a @ = 3", // missing time
		"{R: x} where (x in S) and x!a ? 3",   // bad char
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestQueryStringReparses(t *testing.T) {
	q, err := Parse(paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("reparse of %q: %v", q.String(), err)
	}
	if q2.String() != q.String() {
		t.Errorf("not a fixpoint:\n%s\n%s", q.String(), q2.String())
	}
}

func TestConjunctsAndAnd(t *testing.T) {
	a, b, c := Bool{true}, Bool{false}, Num{1}
	e := And(And(a, b), c)
	if got := Conjuncts(e); len(got) != 3 {
		t.Errorf("Conjuncts = %d", len(got))
	}
	if And(nil, a) != Expr(a) || And(a, nil) != Expr(a) {
		t.Error("And nil handling")
	}
	if Conjuncts(nil) != nil {
		t.Error("Conjuncts(nil)")
	}
}

func TestValueEqual(t *testing.T) {
	if !Equal(Value{Kind: VNum, N: 3}, Value{Kind: VNum, N: 3}) {
		t.Error("num equality")
	}
	if Equal(Value{Kind: VNum, N: 3}, Value{Kind: VStr, S: "3"}) {
		t.Error("cross-kind equality")
	}
	if !Equal(Value{Kind: VStr, S: "a"}, Value{Kind: VStr, S: "a"}) {
		t.Error("string equality")
	}
	if !Equal(Value{Kind: VNil}, Value{Kind: VNil}) {
		t.Error("nil equality")
	}
}

func TestLess(t *testing.T) {
	if lt, err := Less(Value{Kind: VNum, N: 1}, Value{Kind: VNum, N: 2}); err != nil || !lt {
		t.Error("1 < 2")
	}
	if lt, err := Less(Value{Kind: VStr, S: "a"}, Value{Kind: VStr, S: "b"}); err != nil || !lt {
		t.Error("'a' < 'b'")
	}
	if _, err := Less(Value{Kind: VNum}, Value{Kind: VStr}); err == nil {
		t.Error("cross-kind comparison should error")
	}
}

func TestLexerNeverPanicsProperty(t *testing.T) {
	f := func(src string) bool {
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFloatLiterals(t *testing.T) {
	q, err := Parse("{R: x} where (x in S!a) and x!v > 0.10")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.Pred.String(), "0.1") {
		t.Errorf("pred = %s", q.Pred)
	}
}
