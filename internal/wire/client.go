package wire

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// Client is a host-side connection to a GemStone server. Calls may be
// issued from many goroutines at once: requests are written with
// client-chosen frame IDs, a reader goroutine demultiplexes responses by
// ID, and each call waits only for its own response — so calls pipeline
// over one connection instead of taking turns.
type Client struct {
	conn net.Conn
	wmu  sync.Mutex // serializes request writes: one frame on the wire at a time

	pmu     sync.Mutex // guards pending, dead
	pending map[uint64]chan Response
	dead    error // reader exited; fails all pending and future calls

	nextID      atomic.Uint64
	callTimeout atomic.Int64 // ns a call waits for its response; 0 = forever
	reqDeadline atomic.Int64 // ns execution budget stamped on requests; 0 = server default

	readerDone chan struct{} // closed when the reader goroutine exits
}

func newClient(conn net.Conn) *Client {
	c := &Client{
		conn:       conn,
		pending:    make(map[uint64]chan Response),
		readerDone: make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return newClient(conn), nil
}

// DialTimeout connects to a server, giving up after d.
func DialTimeout(addr string, d time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, err
	}
	return newClient(conn), nil
}

// DialRetry connects with bounded retry and jittered exponential backoff.
// See DialRetryCtx.
func DialRetry(addr string, timeout time.Duration, attempts int) (*Client, error) {
	return DialRetryCtx(context.Background(), addr, timeout, attempts)
}

// DialRetryCtx connects with bounded retry: attempts tries, each bounded
// by timeout, sleeping a jittered exponential backoff (uniform in
// [b/2, b] for b = 50ms, 100ms, 200ms, ... capped at 2s) between them.
// A slow-starting server — common right after its host boots — then
// delays clients instead of hard-failing them, and the jitter spreads a
// thundering herd of reconnecting clients instead of synchronizing it.
// Cancelling ctx abandons both the sleeps and the dials.
func DialRetryCtx(ctx context.Context, addr string, timeout time.Duration, attempts int) (*Client, error) {
	if attempts < 1 {
		attempts = 1
	}
	backoff := 50 * time.Millisecond
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			if err := sleepCtx(ctx, jitter(backoff)); err != nil {
				return nil, fmt.Errorf("wire: dial %s cancelled: %w (last error: %v)", addr, err, lastErr)
			}
			backoff *= 2
			if backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
		}
		d := net.Dialer{Timeout: timeout}
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return newClient(conn), nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, fmt.Errorf("wire: dial %s cancelled: %w (last error: %v)", addr, ctx.Err(), lastErr)
		}
	}
	return nil, fmt.Errorf("wire: dial %s failed after %d attempts: %w", addr, attempts, lastErr)
}

// jitter draws a uniform duration in [d/2, d] from crypto/rand (this
// package forbids math/rand, and crypto/rand needs no seed discipline).
func jitter(d time.Duration) time.Duration {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return d
	}
	r := binary.LittleEndian.Uint64(b[:])
	half := uint64(d) / 2
	return time.Duration(half + r%(half+1))
}

// sleepCtx sleeps d or until ctx is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// SetCallTimeout bounds how long every subsequent call waits for its
// response; past it the call fails with ErrCallTimeout. The request may
// still execute on the server — only the local wait is abandoned — so
// pair it with SetRequestDeadline to bound the server side too. Zero
// (the default) waits forever.
func (c *Client) SetCallTimeout(d time.Duration) { c.callTimeout.Store(int64(d)) }

// SetRequestDeadline sets the execution budget stamped on every
// subsequent request that does not carry its own: the server aborts the
// request (rolling its transaction back) once the budget expires. Zero
// (the default) defers to the server's configured default.
func (c *Client) SetRequestDeadline(d time.Duration) { c.reqDeadline.Store(int64(d)) }

// Close disconnects (server-side sessions opened here are discarded).
func (c *Client) Close() error {
	err := c.conn.Close()
	<-c.readerDone
	return err
}

// readLoop demultiplexes responses to the calls waiting on them. A
// response whose call already gave up (call timeout) is dropped.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	for {
		var resp Response
		if _, err := readFrame(c.conn, &resp); err != nil {
			c.failPending(fmt.Errorf("wire: connection lost: %w", err))
			return
		}
		c.pmu.Lock()
		ch, ok := c.pending[resp.ID]
		if ok {
			delete(c.pending, resp.ID)
		}
		c.pmu.Unlock()
		if ok {
			ch <- resp
		}
	}
}

// failPending marks the client dead and wakes every waiting call with
// the connection error.
func (c *Client) failPending(err error) {
	c.pmu.Lock()
	c.dead = err
	ids := make([]uint64, 0, len(c.pending))
	for id := range c.pending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		close(c.pending[id])
	}
	c.pending = make(map[uint64]chan Response)
	c.pmu.Unlock()
}

// call sends one request and waits for its response.
func (c *Client) call(req Request) (Response, error) {
	req.ID = c.nextID.Add(1)
	if req.DeadlineNS == 0 {
		if d := c.reqDeadline.Load(); d > 0 {
			req.DeadlineNS = uint64(d)
		}
	}
	ch := make(chan Response, 1)
	c.pmu.Lock()
	if c.dead != nil {
		err := c.dead
		c.pmu.Unlock()
		return Response{}, err
	}
	c.pending[req.ID] = ch
	c.pmu.Unlock()
	c.wmu.Lock()
	_, err := writeFrame(c.conn, req)
	c.wmu.Unlock()
	if err != nil {
		c.pmu.Lock()
		delete(c.pending, req.ID)
		c.pmu.Unlock()
		return Response{}, err
	}
	var timeout <-chan time.Time
	if d := time.Duration(c.callTimeout.Load()); d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			c.pmu.Lock()
			err := c.dead
			c.pmu.Unlock()
			return Response{}, err
		}
		return resp, nil
	case <-timeout:
		c.pmu.Lock()
		delete(c.pending, req.ID)
		c.pmu.Unlock()
		return Response{}, fmt.Errorf("%w (waited %v)", ErrCallTimeout, time.Duration(c.callTimeout.Load()))
	}
}

// RemoteSession is a session handle over the wire.
type RemoteSession struct {
	c  *Client
	id uint64
}

// Login opens a remote session.
func (c *Client) Login(user, password string) (*RemoteSession, error) {
	resp, err := c.call(Request{Op: OpLogin, User: user, Password: password})
	if err != nil {
		return nil, err
	}
	if err := respErr(resp); err != nil {
		return nil, err
	}
	return &RemoteSession{c: c, id: resp.Session}, nil
}

// Execute runs a block of OPAL source remotely.
func (r *RemoteSession) Execute(source string) (result, output string, err error) {
	return r.executeReq(Request{Op: OpExecute, Session: r.id, Source: source})
}

// ExecuteDeadline is Execute with an explicit execution budget: the
// server aborts the block (rolling the transaction back) once d expires,
// overriding both the client's SetRequestDeadline and the server default.
func (r *RemoteSession) ExecuteDeadline(source string, d time.Duration) (result, output string, err error) {
	return r.executeReq(Request{Op: OpExecute, Session: r.id, Source: source, DeadlineNS: uint64(d)})
}

func (r *RemoteSession) executeReq(req Request) (result, output string, err error) {
	resp, err := r.c.call(req)
	if err != nil {
		return "", "", err
	}
	if err := respErr(resp); err != nil {
		return "", resp.Output, err
	}
	return resp.Result, resp.Output, nil
}

// Commit commits the remote transaction, returning its transaction time.
func (r *RemoteSession) Commit() (uint64, error) {
	resp, err := r.c.call(Request{Op: OpCommit, Session: r.id})
	if err != nil {
		return 0, err
	}
	if err := respErr(resp); err != nil {
		return 0, err
	}
	return resp.Time, nil
}

// Abort discards the remote transaction's pending changes.
func (r *RemoteSession) Abort() error {
	resp, err := r.c.call(Request{Op: OpAbort, Session: r.id})
	if err != nil {
		return err
	}
	return respErr(resp)
}

// Stats fetches a snapshot of the server's engine metrics. Stats is
// session-scoped like every other op: the connection must own a live
// session to introspect the server.
func (r *RemoteSession) Stats() (*obs.Snapshot, error) {
	resp, err := r.c.call(Request{Op: OpStats, Session: r.id})
	if err != nil {
		return nil, err
	}
	if err := respErr(resp); err != nil {
		return nil, err
	}
	if resp.Stats == nil {
		return &obs.Snapshot{}, nil
	}
	return resp.Stats, nil
}

// Health fetches the replica-arm health report. Session-scoped like
// Stats: the connection must own a live session to introspect the server.
func (r *RemoteSession) Health() ([]store.ArmHealth, error) {
	resp, err := r.c.call(Request{Op: OpHealth, Session: r.id})
	if err != nil {
		return nil, err
	}
	if err := respErr(resp); err != nil {
		return nil, err
	}
	return resp.Health, nil
}

// Logout closes the remote session.
func (r *RemoteSession) Logout() error {
	resp, err := r.c.call(Request{Op: OpLogout, Session: r.id})
	if err != nil {
		return err
	}
	return respErr(resp)
}
