package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/gemstone"
	"repro/internal/executor"
)

// spinSource is an OPAL block that runs far longer than any deadline used
// in these tests; the interpreter's cancellation poll is what ends it. It
// declares no temporaries so it can be appended to other statements.
const spinSource = "1 to: 100000000 do: [:i | i]. 'spun'"

// TestClientCallTimeoutOnHungServer is the regression test for the
// blocked-forever client: a server that accepts connections but never
// replies must not hang a call past its call timeout.
func TestClientCallTimeoutOnHungServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var conns []net.Conn
	acceptDone := make(chan struct{})
	go func() {
		defer close(acceptDone)
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, conn) // hold it open; never read, never reply
			mu.Unlock()
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		<-acceptDone
		mu.Lock()
		for _, conn := range conns {
			conn.Close()
		}
		mu.Unlock()
	})

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetCallTimeout(100 * time.Millisecond)
	start := time.Now()
	_, err = c.Login(gemstone.SystemUser, "swordfish")
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("Login on hung server = %v, want ErrCallTimeout", err)
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("call timeout took %v, want ~100ms", waited)
	}
}

// TestDialRetryCtxCancel proves a cancelled context interrupts the retry
// backoff instead of sleeping it out.
func TestDialRetryCtxCancel(t *testing.T) {
	// A listener that is closed immediately: every dial fails fast, so the
	// retry loop spends its time in backoff sleeps.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = DialRetryCtx(ctx, addr, time.Second, 50)
	if err == nil {
		t.Fatal("DialRetryCtx to a closed address succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("DialRetryCtx error = %v, want context.DeadlineExceeded", err)
	}
	// 50 attempts at 50ms+ backoff would sleep seconds; cancellation must
	// cut that to roughly the context timeout.
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("cancelled DialRetryCtx took %v, want ~120ms", waited)
	}
}

// TestDeadlineExceededMidQueryAborts proves a deadline interrupts OPAL
// execution mid-block, rolls the transaction back, and releases the
// session for further use.
func TestDeadlineExceededMidQueryAborts(t *testing.T) {
	_, exec, addr := startServerConfig(t, Config{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rs, err := c.Login(gemstone.SystemUser, "swordfish")
	if err != nil {
		t.Fatal(err)
	}
	// The block writes a marker, then spins past its deadline: the write
	// must not survive the rollback.
	_, _, err = rs.ExecuteDeadline("World at: #deadmark put: 99. "+spinSource, 50*time.Millisecond)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("ExecuteDeadline = %v, want ErrDeadlineExceeded", err)
	}
	// Session is released and usable.
	if result, _, err := rs.Execute("40 + 2"); err != nil || result != "42" {
		t.Fatalf("session unusable after deadline abort: %q (%v)", result, err)
	}
	// The interrupted block's write was rolled back: committing now must
	// not publish the marker.
	if _, err := rs.Commit(); err != nil {
		t.Fatalf("commit after deadline abort: %v", err)
	}
	if result, _, err := rs.Execute("World!deadmark"); err == nil && result == "99" {
		t.Fatal("write from deadline-aborted block survived the rollback")
	}
	if n := exec.Obs().Snapshot().Counter("wire.deadline.exceeded"); n == 0 {
		t.Error("wire.deadline.exceeded not counted")
	}
}

// TestServerDefaultDeadline proves Config.DefaultDeadline bounds requests
// that carry no deadline of their own.
func TestServerDefaultDeadline(t *testing.T) {
	_, _, addr := startServerConfig(t, Config{DefaultDeadline: 50 * time.Millisecond})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rs, err := c.Login(gemstone.SystemUser, "swordfish")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := rs.Execute(spinSource); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("Execute under server default deadline = %v, want ErrDeadlineExceeded", err)
	}
	// A fast request still fits the default budget.
	if result, _, err := rs.Execute("1 + 1"); err != nil || result != "2" {
		t.Fatalf("fast request under default deadline: %q (%v)", result, err)
	}
}

// TestAdmissionShedsWhenSaturated saturates a MaxConcurrent=1 server with
// a long-running block and checks the overflow is shed fast with
// ErrOverloaded — and that goodput returns once the hog is gone.
func TestAdmissionShedsWhenSaturated(t *testing.T) {
	_, exec, addr := startServerConfig(t, Config{
		MaxConcurrent: 1,
		QueueDepth:    1,
		QueueWait:     30 * time.Millisecond,
	})
	hogC, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer hogC.Close()
	hog, err := hogC.Login(gemstone.SystemUser, "swordfish")
	if err != nil {
		t.Fatal(err)
	}
	// Occupy the single execution slot for ~400ms (the deadline, not the
	// loop, bounds it).
	hogDone := make(chan error, 1)
	go func() {
		_, _, err := hog.ExecuteDeadline(spinSource, 400*time.Millisecond)
		hogDone <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the hog take the slot

	// With the slot held and QueueDepth=1, a burst of cheap requests can
	// keep at most one waiter; the rest shed immediately.
	const burst = 6
	results := make(chan error, burst)
	for i := 0; i < burst; i++ {
		go func() {
			c, err := Dial(addr)
			if err != nil {
				results <- err
				return
			}
			defer c.Close()
			rs, err := c.Login(gemstone.SystemUser, "swordfish")
			if err != nil {
				results <- err
				return
			}
			_, _, err = rs.Execute("1 + 1")
			results <- err
		}()
	}
	shed, succeeded := 0, 0
	for i := 0; i < burst; i++ {
		err := <-results
		switch {
		case err == nil:
			succeeded++
		case errors.Is(err, ErrOverloaded):
			shed++
		default:
			t.Errorf("burst request failed with %v, want nil or ErrOverloaded", err)
		}
	}
	if shed == 0 {
		t.Errorf("no requests shed under saturation (succeeded=%d)", succeeded)
	}
	if err := <-hogDone; !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("hog = %v, want ErrDeadlineExceeded", err)
	}
	// Goodput is preserved: with the hog gone, a fresh request succeeds.
	if result, _, err := hog.Execute("2 + 2"); err != nil || result != "4" {
		t.Fatalf("no goodput after saturation cleared: %q (%v)", result, err)
	}
	if n := exec.Obs().Snapshot().Counter("wire.shed.overload"); uint64(shed) > n {
		t.Errorf("wire.shed.overload = %d, want >= %d", n, shed)
	}
}

// TestSlowLorisReaped proves a client that sends a partial frame and
// stalls is disconnected by the idle deadline and its session logged out,
// instead of pinning the connection's goroutines and session forever.
func TestSlowLorisReaped(t *testing.T) {
	_, exec, addr := startServerConfig(t, Config{IdleTimeout: 100 * time.Millisecond})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Login(gemstone.SystemUser, "swordfish"); err != nil {
		t.Fatal(err)
	}
	if exec.ActiveSessions() != 1 {
		t.Fatalf("sessions = %d, want 1", exec.ActiveSessions())
	}
	// A frame header promising 100 bytes, followed by 10 and silence.
	if _, err := c.conn.Write([]byte{0, 0, 0, 100, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for exec.ActiveSessions() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow-loris connection still pins its session after 5s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := exec.Obs().Snapshot().Counter("wire.conns.idle.drops"); n == 0 {
		t.Error("wire.conns.idle.drops not counted for the partial frame")
	}
}

// TestPipelinedNoHeadOfLineBlocking proves a slow block on one session
// does not block a cheap request on another session of the same
// connection: the per-session lanes run them concurrently.
func TestPipelinedNoHeadOfLineBlocking(t *testing.T) {
	_, _, addr := startServerConfig(t, Config{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	slow, err := c.Login(gemstone.SystemUser, "swordfish")
	if err != nil {
		t.Fatal(err)
	}
	quick, err := c.Login(gemstone.SystemUser, "swordfish")
	if err != nil {
		t.Fatal(err)
	}
	slowDone := make(chan error, 1)
	go func() {
		_, _, err := slow.ExecuteDeadline(spinSource, 500*time.Millisecond)
		slowDone <- err
	}()
	time.Sleep(50 * time.Millisecond) // slow block is on the server now
	if result, _, err := quick.Execute("1 + 1"); err != nil || result != "2" {
		t.Fatalf("quick request behind slow block: %q (%v)", result, err)
	}
	select {
	case err := <-slowDone:
		t.Fatalf("slow block finished before the quick one was served (%v): head-of-line blocking not exercised", err)
	default: // good: quick response arrived while slow still runs
	}
	if err := <-slowDone; !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("slow block = %v, want ErrDeadlineExceeded", err)
	}
}

// TestDrainCommitStormLosesNoAcks runs a commit storm, drains the server
// mid-storm, and proves on a reopened database that the durable value of
// every key is exactly the last acknowledged commit — nothing
// acknowledged was lost, nothing unacknowledged became durable.
func TestDrainCommitStormLosesNoAcks(t *testing.T) {
	dir := t.TempDir()
	db, err := gemstone.Open(dir, gemstone.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	exec := executor.New(db)
	srv := ServeConfig(ln, exec, Config{})
	addr := ln.Addr().String()

	const workers = 4
	acked := make([]int, workers) // last acknowledged seq per worker
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				return
			}
			defer c.Close()
			rs, err := c.Login(gemstone.SystemUser, "swordfish")
			if err != nil {
				return
			}
			for seq := 1; ; {
				if _, _, err := rs.Execute(fmt.Sprintf("World at: #storm%d put: %d", w, seq)); err != nil {
					return
				}
				if _, err := rs.Commit(); err != nil {
					// Every worker writes the World root, so commits
					// conflict constantly — exactly the storm we want.
					// A conflict resets the workspace; redo this seq.
					if strings.Contains(err.Error(), "conflict") {
						continue
					}
					return // drain shed or connection closed
				}
				acked[w] = seq
				seq++
			}
		}(w)
	}
	time.Sleep(150 * time.Millisecond) // let the storm build
	if err := srv.Shutdown(10 * time.Second); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait() // workers exit on the drain errors / closed connections
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := gemstone.Open(dir, gemstone.Options{})
	if err != nil {
		t.Fatalf("reopen after drain: %v", err)
	}
	defer db2.Close()
	s, err := db2.Login(gemstone.SystemUser, "swordfish")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	total := 0
	for w := 0; w < workers; w++ {
		total += acked[w]
		want := strconv.Itoa(acked[w])
		got, err := s.Run(fmt.Sprintf("World!storm%d", w))
		if acked[w] == 0 {
			// Never acknowledged: the key must not exist durably (a
			// missing World entry reads as nil) — a real value here would
			// be a committed-but-unacknowledged transaction.
			if err == nil && got != "nil" {
				t.Errorf("worker %d: no commit acked but World!storm%d = %q durably", w, w, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("worker %d: acked seq %d but durable read failed: %v", w, acked[w], err)
			continue
		}
		if got != want {
			t.Errorf("worker %d: durable value %q != last acked %q", w, got, want)
		}
	}
	if total == 0 {
		t.Fatal("storm made no progress before the drain; test proves nothing")
	}
}

// TestQueuedPastDeadlineShedsWithoutRunning proves the deadline budget is
// anchored at frame arrival, not at dispatch: a request that spends its
// whole budget queued behind its session's earlier request is shed before
// it ever touches the session — its side effect must not happen — and the
// wait it accrued lands in the wire.queue.wait histogram.
func TestQueuedPastDeadlineShedsWithoutRunning(t *testing.T) {
	_, exec, addr := startServerConfig(t, Config{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rs, err := c.Login(gemstone.SystemUser, "swordfish")
	if err != nil {
		t.Fatal(err)
	}
	// Occupy the session's lane for ~400ms (the deadline, not the loop,
	// bounds the spin).
	slowDone := make(chan error, 1)
	go func() {
		_, _, err := rs.ExecuteDeadline(spinSource, 400*time.Millisecond)
		slowDone <- err
	}()
	time.Sleep(100 * time.Millisecond) // the slow block holds the lane now
	// Queued behind it with a 50ms budget: the lane frees after ~300ms
	// more, so the budget expires entirely in the queue. Under
	// dispatch-anchored deadlines this write would run to completion.
	_, _, err = rs.ExecuteDeadline("World at: #shedmark put: 7. 'ran'", 50*time.Millisecond)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("queued ExecuteDeadline = %v, want ErrDeadlineExceeded", err)
	}
	if err := <-slowDone; !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("slow block = %v, want ErrDeadlineExceeded", err)
	}
	// The shed request never reached the session: its write is absent even
	// from the uncommitted workspace.
	if result, _, err := rs.Execute("World!shedmark"); err == nil && result == "7" {
		t.Fatal("write from queue-shed request reached the session")
	}
	snap := exec.Obs().Snapshot()
	if n := snap.Counter("wire.deadline.exceeded"); n < 2 {
		t.Errorf("wire.deadline.exceeded = %d, want >= 2", n)
	}
	if hv, ok := snap.Histogram("wire.queue.wait"); !ok || hv.Count == 0 {
		t.Errorf("wire.queue.wait histogram missing or empty (ok=%v)", ok)
	}
}
