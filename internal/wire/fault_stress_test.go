package wire

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/gemstone"
	"repro/internal/executor"
	"repro/internal/iofault"
	"repro/internal/store"
)

// TestFaultedWorkloadInvisibleToClients is the availability acceptance
// test: three replica arms, a seeded fault schedule that tears a write on
// one arm mid-workload (degrading it) and injects read EIO on the primary
// (forcing salvaged reads + read-repair), and a multi-session wire
// workload on top. The contract: zero client-visible errors, the wire
// Health op reports the arm degraded, and after a scrub plus rebuild all
// three replica files are bit-identical.
func TestFaultedWorkloadInvisibleToClients(t *testing.T) {
	dir := t.TempDir()
	// Bootstrap fault-free so the image install doesn't consume the fault
	// windows; the schedules below are keyed to ordinals after reopen.
	db, err := gemstone.Open(dir, gemstone.Options{Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db, err = gemstone.Open(dir, gemstone.Options{
		Replicas: 3,
		OpenReplica: func(path string, replica int) (store.ReplicaFile, error) {
			var sched iofault.Schedule
			switch replica {
			case 0:
				// Media trouble on the primary's read head, after the
				// recovery superblock probes (ordinals 1-2): reads are
				// salvaged from arm 1 and repaired back.
				sched = iofault.Schedule{Rules: []iofault.Rule{
					{Op: iofault.OpRead, Kind: iofault.EIO, From: 5, To: 7},
				}}
			case 2:
				// One torn write degrades the arm mid-workload. Degraded
				// arms get no further traffic, so the arm's write ordinals
				// freeze at 13: the EIO below fires on the *first rebuild
				// attempt* (whose writes are the next this device sees),
				// which must fail cleanly; the retry runs past the window.
				sched = iofault.Schedule{Rules: []iofault.Rule{
					{Op: iofault.OpWrite, Kind: iofault.Torn, From: 12, To: 12},
					{Op: iofault.OpWrite, Kind: iofault.EIO, From: 13, To: 13},
				}}
			default:
				return os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
			}
			f, err := iofault.Open(path, sched)
			if err != nil {
				return nil, err
			}
			return f, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, executor.New(db))
	defer srv.Close()
	addr := ln.Addr().String()

	setup, err := DialRetry(addr, 2*time.Second, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer setup.Close()
	admin, err := setup.Login(gemstone.SystemUser, "swordfish")
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	const commits = 6
	for w := 0; w < workers; w++ {
		src := fmt.Sprintf("World at: #fobj%d put: (Object new at: #v put: 0; yourself)", w)
		if _, _, err := admin.Execute(src); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := admin.Commit(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := DialRetry(addr, 2*time.Second, 5)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			rs, err := c.Login(gemstone.SystemUser, "swordfish")
			if err != nil {
				t.Error(err)
				return
			}
			defer rs.Logout()
			for i := 0; i < commits; i++ {
				src := fmt.Sprintf("| o | o := World!fobj%d. o at: #v put: %d", w, i)
				if _, _, err := rs.Execute(src); err != nil {
					t.Errorf("worker %d execute %d: %v", w, i, err)
					return
				}
				// Disjoint write sets over a degrading replica set: any
				// error here means a device fault leaked to a client.
				if _, err := rs.Commit(); err != nil {
					t.Errorf("worker %d commit %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// The torn arm must be degraded, visible over the wire.
	health, err := admin.Health()
	if err != nil {
		t.Fatal(err)
	}
	if len(health) != 3 {
		t.Fatalf("health reports %d arms, want 3", len(health))
	}
	if health[2].State != "degraded" {
		t.Fatalf("arm 2 state %q over the wire, want degraded (%+v)", health[2].State, health)
	}
	if health[1].State != "healthy" {
		t.Errorf("arm 1 state %q, want healthy", health[1].State)
	}

	// Scrub heals suspect arms; Rebuild reinstates the degraded one.
	res := db.Scrub()
	if res.Scanned == 0 {
		t.Error("scrub scanned nothing")
	}
	// The arm's EIO window (ordinals 13-14) is still open when the first
	// rebuild touches the device: the rebuild must fail cleanly and leave
	// the arm degraded, not half-reinstated.
	if err := db.Rebuild(2); err == nil {
		t.Fatal("rebuild on a still-failing device reported success")
	}
	if got := db.Health()[2].State; got != "degraded" {
		t.Fatalf("arm 2 %s after failed rebuild, want degraded", got)
	}
	if err := db.Rebuild(2); err != nil {
		t.Fatalf("rebuild retry: %v", err)
	}
	for _, h := range db.Health() {
		if h.State != "healthy" {
			t.Errorf("replica %d %s after scrub+rebuild (%s)", h.Replica, h.State, h.LastError)
		}
	}
	// All committed values survived the whole episode. Abort first: the
	// admin session's snapshot predates the worker commits.
	if err := admin.Abort(); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		got, _, err := admin.Execute(fmt.Sprintf("(World!fobj%d) at: #v", w))
		if err != nil {
			t.Errorf("read back fobj%d: %v", w, err)
			continue
		}
		if got != fmt.Sprint(commits-1) {
			t.Errorf("fobj%d = %s, want %d", w, got, commits-1)
		}
	}

	// And the replica set converged: all three files bit-identical.
	read := func(r int) []byte {
		raw, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("replica%d.gs", r)))
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	r0, r1, r2 := read(0), read(1), read(2)
	if !bytes.Equal(r0, r1) {
		t.Errorf("arms 0 and 1 differ: %d vs %d bytes", len(r0), len(r1))
	}
	if !bytes.Equal(r0, r2) {
		t.Errorf("rebuilt arm 2 differs from arm 0: %d vs %d bytes", len(r0), len(r2))
	}
}

// TestDialRetryWaitsForSlowServer: DialRetry must connect to a server
// that starts listening after the first attempts fail.
func TestDialRetryWaitsForSlowServer(t *testing.T) {
	// Reserve an address, then release it so the first dials fail.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	if _, err := DialTimeout(addr, 200*time.Millisecond); err == nil {
		t.Fatal("dial to closed port succeeded")
	}

	done := make(chan *Server, 1)
	go func() {
		time.Sleep(150 * time.Millisecond)
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			done <- nil
			return
		}
		db, err := gemstone.Open(t.TempDir(), gemstone.Options{})
		if err != nil {
			ln2.Close()
			done <- nil
			return
		}
		t.Cleanup(func() { db.Close() })
		done <- Serve(ln2, executor.New(db))
	}()

	c, err := DialRetry(addr, time.Second, 8)
	if err != nil {
		t.Fatalf("DialRetry against slow-starting server: %v", err)
	}
	defer c.Close()
	if srv := <-done; srv != nil {
		defer srv.Close()
	} else {
		t.Fatal("slow server failed to start")
	}
	rs, err := c.Login(gemstone.SystemUser, "swordfish")
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Logout()
	if _, err := rs.Health(); err != nil {
		t.Fatal(err)
	}
}
