// Package wire is the host ↔ GemStone network link (paper §6: the present
// implementation has "GemStone running on its own hardware and
// communicating to user interface programs on host machines through a
// network link", and "Communication with GemStone is done in blocks of OPAL
// source code"). The protocol is length-delimited gob frames over TCP.
//
// Requests carry a client-chosen frame ID and are pipelined: a connection
// may have up to Config.MaxInFlight frames outstanding, responses are
// matched to requests by ID and may arrive out of order across sessions
// (per-session order is preserved), and the server coalesces back-to-back
// responses into one write. Overload is a first-class outcome: requests
// past the admission queue's depth or wait budget are shed with
// StatusOverloaded, requests past their deadline abort with
// StatusDeadlineExceeded, and a draining server sheds queued work with
// StatusShuttingDown — all retryable, all distinguishable from real errors.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// Op is a request operation.
type Op uint8

// Request operations.
const (
	OpLogin Op = iota + 1
	OpExecute
	OpCommit
	OpAbort
	OpLogout
	OpStats
	OpHealth
)

// Status classifies a failed response so clients can tell retryable
// conditions (overload, drain, deadline) from real errors without parsing
// message text. It is meaningful only when OK is false; the zero value is
// a generic failure.
type Status uint8

// Response statuses.
const (
	StatusError            Status = iota // generic failure (compile error, conflict, auth, ...)
	StatusOverloaded                     // shed by admission control; retry after backoff
	StatusShuttingDown                   // server draining; retry against another server or later
	StatusDeadlineExceeded               // the request's deadline expired; transaction rolled back
)

// Request is one client → server frame.
type Request struct {
	ID         uint64 // client-chosen frame id; echoed in the Response
	Op         Op
	User       string
	Password   string
	Session    uint64
	Source     string
	DeadlineNS uint64 // execution budget in ns; 0 = server default

	// arrival is stamped by the server's read loop the moment the frame is
	// decoded. The deadline budget is anchored here, so time a request
	// spends queued behind its session's earlier requests counts against
	// it. Never serialized.
	arrival time.Time
}

// Response is one server → client frame.
type Response struct {
	ID      uint64 // the Request.ID this answers
	OK      bool
	Status  Status // failure class; meaningful only when !OK
	Error   string
	Session uint64
	Result  string
	Output  string
	Time    uint64
	Stats   *obs.Snapshot     // OpStats only
	Health  []store.ArmHealth // OpHealth only
}

// ErrNotAuthorized reports a request naming a session the requesting
// connection does not own. Session IDs are bearer credentials: every
// session-scoped op is checked against the connection that logged it in.
var ErrNotAuthorized = errors.New("wire: session not owned by this connection")

// ErrOverloaded reports a request shed by admission control: the global
// queue was at depth, or the wait budget expired before a slot freed.
// Retryable — back off and resend.
var ErrOverloaded = errors.New("wire: server overloaded")

// ErrShuttingDown reports a request shed because the server is draining.
// Retryable against another server, or this one after it restarts.
var ErrShuttingDown = errors.New("wire: server shutting down")

// ErrDeadlineExceeded reports a request whose deadline expired before or
// during execution. Any partial work was rolled back.
var ErrDeadlineExceeded = errors.New("wire: request deadline exceeded")

// ErrCallTimeout reports a client call that gave up waiting for the
// server's response (see Client.SetCallTimeout). The request may still
// execute on the server; only the wait was abandoned.
var ErrCallTimeout = errors.New("wire: call timed out awaiting response")

// statusError is a failed response as the client surfaces it: the server's
// message verbatim, classified so errors.Is(err, ErrOverloaded) and
// friends work without string matching.
type statusError struct {
	status Status
	msg    string
}

func (e *statusError) Error() string { return e.msg }

func (e *statusError) Is(target error) bool {
	switch target {
	case ErrOverloaded:
		return e.status == StatusOverloaded
	case ErrShuttingDown:
		return e.status == StatusShuttingDown
	case ErrDeadlineExceeded:
		return e.status == StatusDeadlineExceeded
	}
	return false
}

// respErr converts a response into the error a client call returns.
func respErr(resp Response) error {
	if resp.OK {
		return nil
	}
	if resp.Status != StatusError {
		return &statusError{status: resp.Status, msg: resp.Error}
	}
	return errors.New(resp.Error)
}

const maxFrame = 16 << 20 // 16 MiB of OPAL source is enough for anyone

// writeFrame encodes v as one length-prefixed gob frame and returns the
// bytes put on the wire.
func writeFrame(w io.Writer, v any) (int, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return 0, err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(buf.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	n, err := w.Write(buf.Bytes())
	return len(hdr) + n, err
}

// readFrame decodes one frame into v and returns the bytes consumed.
func readFrame(r io.Reader, v any) (int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return len(hdr), fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return len(hdr), err
	}
	return len(hdr) + int(n), gob.NewDecoder(bytes.NewReader(buf)).Decode(v)
}

// Config tunes a Server.
type Config struct {
	// IdleTimeout, when positive, is the longest a connection may sit
	// without sending a frame before the server drops it (logging its
	// sessions out). It also bounds each response-batch write, so a client
	// that stops reading cannot pin the connection's writer. Zero means no
	// deadline — a dead client then pins a goroutine and its sessions
	// until Close.
	IdleTimeout time.Duration

	// MaxInFlight bounds the frames one connection may have outstanding
	// (read but not yet response-flushed); the reader stops consuming
	// frames past it, pushing backpressure into the client's TCP window.
	// Zero means defaultMaxInFlight.
	MaxInFlight int

	// SessionQueue bounds each session's FIFO of waiting requests on a
	// connection; requests past it are shed immediately with
	// StatusOverloaded. Zero means MaxInFlight.
	SessionQueue int

	// MaxConcurrent bounds heavy operations (login, execute, commit)
	// running at once across all connections. Zero disables global
	// admission control unless QueueDepth is set, in which case it
	// defaults to twice GOMAXPROCS.
	MaxConcurrent int

	// QueueDepth bounds how many heavy operations may wait for an
	// execution slot before further arrivals are shed immediately with
	// StatusOverloaded. Zero disables global admission control unless
	// MaxConcurrent is set, in which case it defaults to 4×MaxConcurrent.
	QueueDepth int

	// QueueWait bounds how long an admitted-to-queue request waits for an
	// execution slot before it is shed with StatusOverloaded. Zero means
	// defaultQueueWait when admission control is on.
	QueueWait time.Duration

	// DefaultDeadline, when positive, bounds every request that does not
	// carry its own DeadlineNS. Zero means no server-side deadline.
	DefaultDeadline time.Duration
}

const (
	defaultMaxInFlight = 8
	defaultQueueWait   = 100 * time.Millisecond
)

// admissionOn reports whether global admission control is configured.
func (cfg Config) admissionOn() bool { return cfg.MaxConcurrent > 0 || cfg.QueueDepth > 0 }
