// Package wire is the host ↔ GemStone network link (paper §6: the present
// implementation has "GemStone running on its own hardware and
// communicating to user interface programs on host machines through a
// network link", and "Communication with GemStone is done in blocks of OPAL
// source code"). The protocol is length-delimited gob frames over TCP.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/executor"
	"repro/internal/obs"
	"repro/internal/store"
)

// Op is a request operation.
type Op uint8

// Request operations.
const (
	OpLogin Op = iota + 1
	OpExecute
	OpCommit
	OpAbort
	OpLogout
	OpStats
	OpHealth
)

// Request is one client → server frame.
type Request struct {
	Op       Op
	User     string
	Password string
	Session  uint64
	Source   string
}

// Response is one server → client frame.
type Response struct {
	OK      bool
	Error   string
	Session uint64
	Result  string
	Output  string
	Time    uint64
	Stats   *obs.Snapshot     // OpStats only
	Health  []store.ArmHealth // OpHealth only
}

// ErrNotAuthorized reports a request naming a session the requesting
// connection does not own. Session IDs are bearer credentials: every
// session-scoped op is checked against the connection that logged it in.
var ErrNotAuthorized = errors.New("wire: session not owned by this connection")

const maxFrame = 16 << 20 // 16 MiB of OPAL source is enough for anyone

// writeFrame encodes v as one length-prefixed gob frame and returns the
// bytes put on the wire.
func writeFrame(w io.Writer, v any) (int, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return 0, err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(buf.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	n, err := w.Write(buf.Bytes())
	return len(hdr) + n, err
}

// readFrame decodes one frame into v and returns the bytes consumed.
func readFrame(r io.Reader, v any) (int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return len(hdr), fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return len(hdr), err
	}
	return len(hdr) + int(n), gob.NewDecoder(bytes.NewReader(buf)).Decode(v)
}

// Config tunes a Server.
type Config struct {
	// IdleTimeout, when positive, is the longest a connection may sit
	// without sending a frame before the server drops it (logging its
	// sessions out). Zero means no deadline — a dead client then pins a
	// goroutine and its sessions until Close.
	IdleTimeout time.Duration
}

// Server accepts connections and dispatches requests to an Executor.
type Server struct {
	exec *executor.Executor
	ln   net.Listener
	cfg  Config
	met  wireMetrics

	mu     sync.Mutex // guards closed, conns
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// wireMetrics instruments the network link.
type wireMetrics struct {
	framesIn       *obs.Counter
	framesOut      *obs.Counter
	bytesIn        *obs.Counter
	bytesOut       *obs.Counter
	connsOpen      *obs.Gauge
	connsTotal     *obs.Counter
	authRejections *obs.Counter
	idleDrops      *obs.Counter
}

// Serve starts a server on the listener with default configuration. It
// returns immediately; Close stops it.
func Serve(ln net.Listener, exec *executor.Executor) *Server {
	return ServeConfig(ln, exec, Config{})
}

// ServeConfig starts a server with explicit configuration.
func ServeConfig(ln net.Listener, exec *executor.Executor, cfg Config) *Server {
	reg := exec.Obs()
	s := &Server{
		exec:  exec,
		ln:    ln,
		cfg:   cfg,
		conns: make(map[net.Conn]struct{}),
		met: wireMetrics{
			framesIn:       reg.Counter("wire.frames.in"),
			framesOut:      reg.Counter("wire.frames.out"),
			bytesIn:        reg.Counter("wire.bytes.in"),
			bytesOut:       reg.Counter("wire.bytes.out"),
			connsOpen:      reg.Gauge("wire.conns.open"),
			connsTotal:     reg.Counter("wire.conns.total"),
			authRejections: reg.Counter("wire.auth.rejections"),
			idleDrops:      reg.Counter("wire.conns.idle.drops"),
		},
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listening address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting and closes all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	err := s.ln.Close()
	//lint:ignore detmap closing live sockets; nothing here reaches a commit or stream
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	s.met.connsTotal.Inc()
	s.met.connsOpen.Add(1)
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
		s.met.connsOpen.Add(-1)
	}()
	// Sessions opened on this connection, cleaned up on disconnect.
	owned := map[executor.SessionID]struct{}{}
	defer func() {
		// Log sessions out in a fixed order so abandoned workspaces are
		// discarded deterministically.
		ids := make([]executor.SessionID, 0, len(owned))
		for id := range owned {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			_ = s.exec.Logout(id)
		}
	}()
	for {
		if d := s.cfg.IdleTimeout; d > 0 {
			//lint:ignore wallclock connection deadline only; never reaches committed state
			_ = conn.SetReadDeadline(time.Now().Add(d))
		}
		var req Request
		n, err := readFrame(conn, &req)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				s.met.idleDrops.Inc()
			}
			return
		}
		s.met.framesIn.Inc()
		s.met.bytesIn.Add(uint64(n))
		resp := s.dispatch(&req, owned)
		n, err = writeFrame(conn, resp)
		if err != nil {
			return
		}
		s.met.framesOut.Inc()
		s.met.bytesOut.Add(uint64(n))
	}
}

func (s *Server) dispatch(req *Request, owned map[executor.SessionID]struct{}) Response {
	fail := func(err error) Response { return Response{Error: err.Error()} }
	switch req.Op {
	case OpLogin:
		id, err := s.exec.Login(req.User, req.Password)
		if err != nil {
			return fail(err)
		}
		owned[id] = struct{}{}
		return Response{OK: true, Session: uint64(id)}
	}
	// Every other op names a session: it must be one this connection logged
	// in. Without this check any client holding a session ID — or guessing
	// one — could execute, commit or log out another user's session.
	if _, ok := owned[executor.SessionID(req.Session)]; !ok {
		s.met.authRejections.Inc()
		return fail(fmt.Errorf("%w: %d", ErrNotAuthorized, req.Session))
	}
	switch req.Op {
	case OpExecute:
		result, output, err := s.exec.Execute(executor.SessionID(req.Session), req.Source)
		if err != nil {
			return Response{Error: err.Error(), Output: output}
		}
		return Response{OK: true, Result: result, Output: output}
	case OpCommit:
		t, err := s.exec.Commit(executor.SessionID(req.Session))
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, Time: uint64(t)}
	case OpAbort:
		if err := s.exec.Abort(executor.SessionID(req.Session)); err != nil {
			return fail(err)
		}
		return Response{OK: true}
	case OpLogout:
		if err := s.exec.Logout(executor.SessionID(req.Session)); err != nil {
			return fail(err)
		}
		delete(owned, executor.SessionID(req.Session))
		return Response{OK: true}
	case OpStats:
		return Response{OK: true, Stats: s.exec.Obs().Snapshot()}
	case OpHealth:
		return Response{OK: true, Health: s.exec.Health()}
	}
	return fail(fmt.Errorf("wire: unknown op %d", req.Op))
}

// Client is a host-side connection to a GemStone server.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// DialTimeout connects to a server, giving up after d.
func DialTimeout(addr string, d time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// DialRetry connects with bounded retry and exponential backoff: attempts
// tries, each bounded by timeout, sleeping 50ms, 100ms, 200ms, ... (capped
// at 2s) between them. A slow-starting server — common right after its
// host boots — then delays clients instead of hard-failing them.
func DialRetry(addr string, timeout time.Duration, attempts int) (*Client, error) {
	if attempts < 1 {
		attempts = 1
	}
	backoff := 50 * time.Millisecond
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(backoff)
			backoff *= 2
			if backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
		}
		c, err := DialTimeout(addr, timeout)
		if err == nil {
			return c, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("wire: dial %s failed after %d attempts: %w", addr, attempts, lastErr)
}

// Close disconnects (server-side sessions opened here are discarded).
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := writeFrame(c.conn, req); err != nil {
		return Response{}, err
	}
	var resp Response
	if _, err := readFrame(c.conn, &resp); err != nil {
		return Response{}, err
	}
	return resp, nil
}

// RemoteSession is a session handle over the wire.
type RemoteSession struct {
	c  *Client
	id uint64
}

// Login opens a remote session.
func (c *Client) Login(user, password string) (*RemoteSession, error) {
	resp, err := c.roundTrip(Request{Op: OpLogin, User: user, Password: password})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, errors.New(resp.Error)
	}
	return &RemoteSession{c: c, id: resp.Session}, nil
}

// Execute runs a block of OPAL source remotely.
func (r *RemoteSession) Execute(source string) (result, output string, err error) {
	resp, err := r.c.roundTrip(Request{Op: OpExecute, Session: r.id, Source: source})
	if err != nil {
		return "", "", err
	}
	if !resp.OK {
		return "", resp.Output, errors.New(resp.Error)
	}
	return resp.Result, resp.Output, nil
}

// Commit commits the remote transaction, returning its transaction time.
func (r *RemoteSession) Commit() (uint64, error) {
	resp, err := r.c.roundTrip(Request{Op: OpCommit, Session: r.id})
	if err != nil {
		return 0, err
	}
	if !resp.OK {
		return 0, errors.New(resp.Error)
	}
	return resp.Time, nil
}

// Abort discards the remote transaction's pending changes.
func (r *RemoteSession) Abort() error {
	resp, err := r.c.roundTrip(Request{Op: OpAbort, Session: r.id})
	if err != nil {
		return err
	}
	if !resp.OK {
		return errors.New(resp.Error)
	}
	return nil
}

// Stats fetches a snapshot of the server's engine metrics. Stats is
// session-scoped like every other op: the connection must own a live
// session to introspect the server.
func (r *RemoteSession) Stats() (*obs.Snapshot, error) {
	resp, err := r.c.roundTrip(Request{Op: OpStats, Session: r.id})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, errors.New(resp.Error)
	}
	if resp.Stats == nil {
		return &obs.Snapshot{}, nil
	}
	return resp.Stats, nil
}

// Health fetches the replica-arm health report. Session-scoped like
// Stats: the connection must own a live session to introspect the server.
func (r *RemoteSession) Health() ([]store.ArmHealth, error) {
	resp, err := r.c.roundTrip(Request{Op: OpHealth, Session: r.id})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, errors.New(resp.Error)
	}
	return resp.Health, nil
}

// Logout closes the remote session.
func (r *RemoteSession) Logout() error {
	resp, err := r.c.roundTrip(Request{Op: OpLogout, Session: r.id})
	if err != nil {
		return err
	}
	if !resp.OK {
		return errors.New(resp.Error)
	}
	return nil
}
