package wire

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/gemstone"
	"repro/internal/executor"
)

func startServerConfig(t *testing.T, cfg Config) (*Server, *executor.Executor, string) {
	t.Helper()
	db, err := gemstone.Open(t.TempDir(), gemstone.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	exec := executor.New(db)
	srv := ServeConfig(ln, exec, cfg)
	t.Cleanup(func() { srv.Close() })
	return srv, exec, ln.Addr().String()
}

// TestSessionHijackRejected is the regression test for the wire
// authorization hole: connection B presenting connection A's session ID
// must get an authorization error for every session-scoped op, not access
// to A's workspace.
func TestSessionHijackRejected(t *testing.T) {
	_, _, addr := startServerConfig(t, Config{})
	ca, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	victim, err := ca.Login(gemstone.SystemUser, "swordfish")
	if err != nil {
		t.Fatal(err)
	}

	cb, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cb.Close()
	// B even logs in legitimately — owning *a* session must not grant
	// access to *other* sessions.
	if _, err := cb.Login(gemstone.SystemUser, "swordfish"); err != nil {
		t.Fatal(err)
	}
	forged := &RemoteSession{c: cb, id: victim.id}

	if _, _, err := forged.Execute("World at: #stolen put: 1"); err == nil {
		t.Fatal("hijacked Execute succeeded")
	} else if !strings.Contains(err.Error(), "not owned") {
		t.Errorf("hijacked Execute error = %v, want authorization error", err)
	}
	if _, err := forged.Commit(); err == nil || !strings.Contains(err.Error(), "not owned") {
		t.Errorf("hijacked Commit error = %v, want authorization error", err)
	}
	if err := forged.Abort(); err == nil || !strings.Contains(err.Error(), "not owned") {
		t.Errorf("hijacked Abort error = %v, want authorization error", err)
	}
	if err := forged.Logout(); err == nil || !strings.Contains(err.Error(), "not owned") {
		t.Errorf("hijacked Logout error = %v, want authorization error", err)
	}

	// The victim's session is intact and still owned by connection A.
	if result, _, err := victim.Execute("40 + 2"); err != nil || result != "42" {
		t.Errorf("victim session broken after hijack attempts: %q (%v)", result, err)
	}
	snap, err := victim.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if n := snap.Counter("wire.auth.rejections"); n != 4 {
		t.Errorf("wire.auth.rejections = %d, want 4", n)
	}
}

// TestStatsRoundTrip drives a scripted login/execute/commit sequence over
// TCP and checks OpStats returns nonzero engine counters.
func TestStatsRoundTrip(t *testing.T) {
	_, _, addr := startServerConfig(t, Config{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rs, err := c.Login(gemstone.SystemUser, "swordfish")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := rs.Execute("World at: #observed put: 7"); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Commit(); err != nil {
		t.Fatal(err)
	}
	snap, err := rs.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// txn.fastpath.commits: this connection's commit is the only writer,
	// so it must take the idle-pipeline fast path. store.slab.grows:
	// bootstrap alone allocates the commit scratch slabs. store.slab.reuses:
	// any commit after bootstrap reuses them.
	for _, name := range []string{"txn.commits", "txn.begun", "wire.frames.in", "wire.bytes.in", "store.applies", "executor.logins",
		"txn.fastpath.commits", "store.slab.reuses", "store.slab.grows"} {
		if snap.Counter(name) == 0 {
			t.Errorf("counter %s = 0 after login/execute/commit", name)
		}
	}
	if snap.Gauge("wire.conns.open") < 1 {
		t.Errorf("wire.conns.open = %d, want >= 1", snap.Gauge("wire.conns.open"))
	}
	if snap.Gauge("executor.sessions") != 1 {
		t.Errorf("executor.sessions = %d, want 1", snap.Gauge("executor.sessions"))
	}
	if _, ok := snap.Histogram("executor.execute.ns"); !ok {
		t.Error("executor.execute.ns histogram missing")
	}
	// The overload instruments are registered up front, so they appear in
	// every snapshot even while zero: an operator watching the admission
	// queue must see "0", not "absent".
	for _, name := range []string{"wire.shed.overload", "wire.shed.shutdown", "wire.deadline.exceeded", "wire.drain.flushed"} {
		found := false
		for _, cv := range snap.Counters {
			if cv.Name == name {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("overload counter %s not registered", name)
		}
	}
	found := false
	for _, gv := range snap.Gauges {
		if gv.Name == "wire.admission.depth" {
			found = true
			break
		}
	}
	if !found {
		t.Error("wire.admission.depth gauge not registered")
	}
	if hv, ok := snap.Histogram("wire.write.coalesced"); !ok || hv.Count == 0 {
		t.Errorf("wire.write.coalesced histogram missing or empty (ok=%v)", ok)
	}
	// Every dispatched request records its queue wait, so the histogram is
	// both registered and populated after the sequence above.
	if hv, ok := snap.Histogram("wire.queue.wait"); !ok || hv.Count == 0 {
		t.Errorf("wire.queue.wait histogram missing or empty (ok=%v)", ok)
	}
	// Stats is session-scoped: a connection without a live session is
	// refused.
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	forged := &RemoteSession{c: c2, id: rs.id}
	if _, err := forged.Stats(); err == nil || !strings.Contains(err.Error(), "not owned") {
		t.Errorf("unauthenticated Stats error = %v, want authorization error", err)
	}
}

// TestIdleTimeoutDropsConnection proves a silent client is disconnected
// and its sessions are logged out, instead of pinning a goroutine forever.
func TestIdleTimeoutDropsConnection(t *testing.T) {
	_, exec, addr := startServerConfig(t, Config{IdleTimeout: 100 * time.Millisecond})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rs, err := c.Login(gemstone.SystemUser, "swordfish")
	if err != nil {
		t.Fatal(err)
	}
	if exec.ActiveSessions() != 1 {
		t.Fatalf("sessions = %d, want 1", exec.ActiveSessions())
	}
	// Go quiet. The server must log the session out on its own.
	deadline := time.Now().Add(5 * time.Second)
	for exec.ActiveSessions() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle connection still holds its session after 5s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, _, err := rs.Execute("1"); err == nil {
		t.Error("execute on idle-dropped connection should fail")
	}
	if n := exec.Obs().Snapshot().Counter("wire.conns.idle.drops"); n == 0 {
		t.Error("wire.conns.idle.drops not counted")
	}
}

// TestActiveClientSurvivesIdleTimeout checks the deadline is per-frame: a
// client chatting slower than the timeout but steadily is never dropped.
func TestActiveClientSurvivesIdleTimeout(t *testing.T) {
	_, _, addr := startServerConfig(t, Config{IdleTimeout: 300 * time.Millisecond})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rs, err := c.Login(gemstone.SystemUser, "swordfish")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		time.Sleep(100 * time.Millisecond)
		if _, _, err := rs.Execute("1 + 1"); err != nil {
			t.Fatalf("round %d: active client dropped: %v", i, err)
		}
	}
}
