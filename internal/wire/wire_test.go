package wire

import (
	"net"
	"strings"
	"sync"
	"testing"

	"repro/gemstone"
	"repro/internal/executor"
)

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	db, err := gemstone.Open(t.TempDir(), gemstone.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, executor.New(db))
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

func TestLoginExecuteCommit(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rs, err := c.Login(gemstone.SystemUser, "swordfish")
	if err != nil {
		t.Fatal(err)
	}
	result, _, err := rs.Execute("3 + 4")
	if err != nil || result != "7" {
		t.Errorf("execute = %q (%v)", result, err)
	}
	// A full data round-trip over the network link.
	if _, _, err := rs.Execute("World at: #greeting put: 'hello from the host'"); err != nil {
		t.Fatal(err)
	}
	tm, err := rs.Commit()
	if err != nil || tm == 0 {
		t.Fatalf("commit = %d (%v)", tm, err)
	}
	result, _, err = rs.Execute("World!greeting")
	if err != nil || result != "'hello from the host'" {
		t.Errorf("fetch = %q (%v)", result, err)
	}
	if err := rs.Logout(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := rs.Execute("1"); err == nil {
		t.Error("execute after logout should fail")
	}
}

func TestBadLogin(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Login("nobody", "x"); err == nil {
		t.Error("bad login accepted")
	}
}

func TestTranscriptOutputOverWire(t *testing.T) {
	_, addr := startServer(t)
	c, _ := Dial(addr)
	defer c.Close()
	rs, err := c.Login(gemstone.SystemUser, "swordfish")
	if err != nil {
		t.Fatal(err)
	}
	result, output, err := rs.Execute("Transcript show: 'progress'. 42")
	if err != nil || result != "42" || output != "progress" {
		t.Errorf("= %q %q (%v)", result, output, err)
	}
	// Errors carry partial output back.
	_, output, err = rs.Execute("Transcript show: 'before'. nil boom")
	if err == nil || !strings.Contains(err.Error(), "doesNotUnderstand") {
		t.Errorf("err = %v", err)
	}
	if output != "before" {
		t.Errorf("output = %q", output)
	}
}

func TestAbortOverWire(t *testing.T) {
	_, addr := startServer(t)
	c, _ := Dial(addr)
	defer c.Close()
	rs, _ := c.Login(gemstone.SystemUser, "swordfish")
	_, _, _ = rs.Execute("World at: #x put: 1")
	if _, err := rs.Commit(); err != nil {
		t.Fatal(err)
	}
	_, _, _ = rs.Execute("World at: #x put: 2")
	if err := rs.Abort(); err != nil {
		t.Fatal(err)
	}
	result, _, _ := rs.Execute("World!x")
	if result != "1" {
		t.Errorf("x = %s after abort", result)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, addr := startServer(t)
	const n = 4
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			rs, err := c.Login(gemstone.SystemUser, "swordfish")
			if err != nil {
				errs <- err
				return
			}
			for j := 0; j < 5; j++ {
				if _, _, err := rs.Execute("100 factorialish"); err == nil {
					errs <- nil // expected DNU error actually
				}
				if res, _, err := rs.Execute("6 * 7"); err != nil || res != "42" {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
	_ = srv
}

func TestSessionsCleanedOnDisconnect(t *testing.T) {
	db, err := gemstone.Open(t.TempDir(), gemstone.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	exec := executor.New(db)
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	srv := Serve(ln, exec)
	defer srv.Close()
	c, _ := Dial(ln.Addr().String())
	if _, err := c.Login(gemstone.SystemUser, "swordfish"); err != nil {
		t.Fatal(err)
	}
	if exec.ActiveSessions() != 1 {
		t.Fatalf("sessions = %d", exec.ActiveSessions())
	}
	c.Close()
	// The handler notices the close and logs out the session.
	for i := 0; i < 100 && exec.ActiveSessions() != 0; i++ {
		// Tiny spin; the disconnect is processed by the handler goroutine.
	}
	deadline := make(chan struct{})
	go func() {
		for exec.ActiveSessions() != 0 {
		}
		close(deadline)
	}()
	<-deadline
}

func TestLargeSourceBlock(t *testing.T) {
	_, addr := startServer(t)
	c, _ := Dial(addr)
	defer c.Close()
	rs, err := c.Login(gemstone.SystemUser, "swordfish")
	if err != nil {
		t.Fatal(err)
	}
	// A ~1MB OPAL block: a giant string literal round-trips intact.
	big := strings.Repeat("x", 1<<20)
	result, _, err := rs.Execute("'" + big + "' size")
	if err != nil {
		t.Fatal(err)
	}
	if result != "1048576" {
		t.Errorf("size = %s", result)
	}
}
