package wire

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/executor"
	"repro/internal/obs"
)

// Server accepts connections and dispatches requests to an Executor.
//
// Each connection runs a small pipeline: a reader goroutine pulls frames
// (bounded by MaxInFlight), routes each to a per-session runner goroutine
// (so a slow commit on one session never head-of-line-blocks another
// session's reads on the same connection), and a writer goroutine coalesces
// back-to-back responses into one buffered write. Heavy operations pass
// through a global admitter that sheds load once its queue is full.
type Server struct {
	exec *executor.Executor
	ln   net.Listener
	cfg  Config
	met  wireMetrics
	adm  *admitter // nil = global admission control off

	maxInFlight  int
	sessionQueue int

	draining atomic.Bool
	drainCh  chan struct{} // closed when draining begins; wakes queued admits

	inflight inflightGate // accepted-but-unflushed frames; drain waits on it

	mu     sync.Mutex // guards closed, conns
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// wireMetrics instruments the network link.
type wireMetrics struct {
	framesIn         *obs.Counter
	framesOut        *obs.Counter
	bytesIn          *obs.Counter
	bytesOut         *obs.Counter
	connsOpen        *obs.Gauge
	connsTotal       *obs.Counter
	authRejections   *obs.Counter
	idleDrops        *obs.Counter
	admissionDepth   *obs.Gauge     // heavy ops waiting for an execution slot
	shedOverload     *obs.Counter   // requests shed with StatusOverloaded
	shedShutdown     *obs.Counter   // requests shed with StatusShuttingDown
	deadlineExceeded *obs.Counter   // requests failed with StatusDeadlineExceeded
	drainFlushed     *obs.Counter   // responses flushed while draining
	coalesced        *obs.Histogram // responses per coalesced write
	queueWait        *obs.Histogram // ns from frame arrival to lane dispatch
}

// Serve starts a server on the listener with default configuration. It
// returns immediately; Close stops it.
func Serve(ln net.Listener, exec *executor.Executor) *Server {
	return ServeConfig(ln, exec, Config{})
}

// ServeConfig starts a server with explicit configuration.
func ServeConfig(ln net.Listener, exec *executor.Executor, cfg Config) *Server {
	reg := exec.Obs()
	s := &Server{
		exec:    exec,
		ln:      ln,
		cfg:     cfg,
		conns:   make(map[net.Conn]struct{}),
		drainCh: make(chan struct{}),
		met: wireMetrics{
			framesIn:         reg.Counter("wire.frames.in"),
			framesOut:        reg.Counter("wire.frames.out"),
			bytesIn:          reg.Counter("wire.bytes.in"),
			bytesOut:         reg.Counter("wire.bytes.out"),
			connsOpen:        reg.Gauge("wire.conns.open"),
			connsTotal:       reg.Counter("wire.conns.total"),
			authRejections:   reg.Counter("wire.auth.rejections"),
			idleDrops:        reg.Counter("wire.conns.idle.drops"),
			admissionDepth:   reg.Gauge("wire.admission.depth"),
			shedOverload:     reg.Counter("wire.shed.overload"),
			shedShutdown:     reg.Counter("wire.shed.shutdown"),
			deadlineExceeded: reg.Counter("wire.deadline.exceeded"),
			drainFlushed:     reg.Counter("wire.drain.flushed"),
			coalesced:        reg.Histogram("wire.write.coalesced", obs.SizeBounds),
			queueWait:        reg.Histogram("wire.queue.wait", obs.LatencyBounds),
		},
	}
	s.maxInFlight = cfg.MaxInFlight
	if s.maxInFlight <= 0 {
		s.maxInFlight = defaultMaxInFlight
	}
	s.sessionQueue = cfg.SessionQueue
	if s.sessionQueue <= 0 {
		s.sessionQueue = s.maxInFlight
	}
	if cfg.admissionOn() {
		conc := cfg.MaxConcurrent
		if conc <= 0 {
			conc = 2 * runtime.GOMAXPROCS(0)
		}
		depth := cfg.QueueDepth
		if depth <= 0 {
			depth = 4 * conc
		}
		wait := cfg.QueueWait
		if wait <= 0 {
			wait = defaultQueueWait
		}
		s.adm = &admitter{
			slots: make(chan struct{}, conc),
			depth: int64(depth),
			wait:  wait,
			gauge: s.met.admissionDepth,
		}
	}
	// The gate's seed count belongs to the server itself; Shutdown drops
	// it, so the count can only reach zero once draining has begun.
	s.inflight.add(1)
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listening address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting and closes all connections immediately. In-flight
// requests are abandoned mid-write; use Shutdown for a graceful drain.
func (s *Server) Close() error {
	s.mu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	err := s.ln.Close()
	//lint:ignore detmap closing live sockets; nothing here reaches a commit or stream
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	if alreadyClosed {
		return nil
	}
	return err
}

// Shutdown drains the server gracefully: it stops accepting connections,
// sheds queued and newly arriving work with StatusShuttingDown, lets
// operations already dispatched (commits in particular) run to completion,
// and flushes their responses before closing connections — so every
// transaction the store made durable has its acknowledgment on the wire,
// and every request shed by the drain provably never executed. A
// non-positive timeout waits forever; on timeout the remaining
// connections are closed hard and an error is returned.
func (s *Server) Shutdown(timeout time.Duration) error {
	if !s.draining.CompareAndSwap(false, true) {
		return s.Close() // second Shutdown degenerates to Close
	}
	close(s.drainCh)
	_ = s.ln.Close() // stop accepting; acceptLoop exits
	s.inflight.add(-1)
	var err error
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		select {
		case <-s.inflight.wait():
		case <-t.C:
			err = fmt.Errorf("wire: drain timed out after %v", timeout)
		}
	} else {
		<-s.inflight.wait()
	}
	if cerr := s.Close(); err == nil && cerr != nil && !errors.Is(cerr, net.ErrClosed) {
		err = cerr
	}
	return err
}

// inflightGate counts accepted-but-unflushed frames, plus one seed count
// held by the server until Shutdown. It replaces a sync.WaitGroup because
// frames keep arriving while the drain waits, and WaitGroup forbids Add
// from zero concurrent with Wait.
type inflightGate struct {
	mu      sync.Mutex // guards n, waiters
	n       int64
	waiters []chan struct{}
}

func (g *inflightGate) add(d int64) {
	g.mu.Lock()
	g.n += d
	if g.n == 0 {
		for _, w := range g.waiters {
			close(w)
		}
		g.waiters = nil
	}
	g.mu.Unlock()
}

// wait returns a channel closed when the count reaches zero.
func (g *inflightGate) wait() <-chan struct{} {
	ch := make(chan struct{})
	g.mu.Lock()
	if g.n == 0 {
		close(ch)
	} else {
		g.waiters = append(g.waiters, ch)
	}
	g.mu.Unlock()
	return ch
}

// admitter is the global admission queue in front of the executor: a slot
// semaphore bounds concurrent heavy operations, a depth bound caps how
// many may wait, and a wait budget caps how long. Past either bound the
// request is shed immediately — queuing forever converts overload into
// timeouts everywhere; shedding converts it into fast, explicit retries.
type admitter struct {
	slots  chan struct{} // cap MaxConcurrent: a token = leave to run
	depth  int64
	wait   time.Duration
	queued atomic.Int64
	gauge  *obs.Gauge
}

// admit blocks until an execution slot is free, the wait budget expires
// (ErrOverloaded), the queue is already at depth (ErrOverloaded, without
// waiting), the server starts draining (ErrShuttingDown), or the request
// deadline expires (the ctx error). A nil admitter admits everything.
func (a *admitter) admit(ctx context.Context, drain <-chan struct{}) error {
	if a == nil {
		return nil
	}
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	if a.queued.Add(1) > a.depth {
		a.queued.Add(-1)
		return ErrOverloaded
	}
	a.gauge.Set(a.queued.Load())
	defer func() {
		a.queued.Add(-1)
		a.gauge.Set(a.queued.Load())
	}()
	t := time.NewTimer(a.wait)
	defer t.Stop()
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-t.C:
		return ErrOverloaded
	case <-drain:
		return ErrShuttingDown
	case <-done:
		return ctx.Err()
	}
}

func (a *admitter) release() {
	if a == nil {
		return
	}
	<-a.slots
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// maxRunners bounds the per-session runner goroutines one connection may
// spawn; sessions beyond it share the login lane (still correct, just
// serialized), so a hostile client cannot mint goroutines via logins.
const maxRunners = 256

// serverConn is one connection's pipeline state.
type serverConn struct {
	srv *Server
	nc  net.Conn

	mu      sync.Mutex // guards owned, runners, order
	owned   map[executor.SessionID]struct{}
	runners map[uint64]chan *Request // request lane per wire session id (0 = login lane)
	order   []uint64                 // lane creation order; deterministic teardown
	runWG   sync.WaitGroup

	tokens  chan struct{} // cap maxInFlight: one token per unflushed frame
	writeCh chan Response
	writeWG sync.WaitGroup
	dead    atomic.Bool // write side failed; drain responses for accounting only
}

func (s *Server) handle(nc net.Conn) {
	defer s.wg.Done()
	s.met.connsTotal.Inc()
	s.met.connsOpen.Add(1)
	c := &serverConn{
		srv:     s,
		nc:      nc,
		owned:   make(map[executor.SessionID]struct{}),
		runners: make(map[uint64]chan *Request),
		tokens:  make(chan struct{}, s.maxInFlight),
		writeCh: make(chan Response, s.maxInFlight),
	}
	c.writeWG.Add(1)
	go c.writeLoop()
	c.readLoop()
	// Teardown, in pipeline order: the reader is done, so no lane gains
	// frames; close every lane, wait the runners out, then the writer.
	c.mu.Lock()
	order := append([]uint64(nil), c.order...)
	c.mu.Unlock()
	for _, key := range order {
		close(c.runners[key])
	}
	c.runWG.Wait()
	close(c.writeCh)
	c.writeWG.Wait()
	s.mu.Lock()
	delete(s.conns, nc)
	s.mu.Unlock()
	nc.Close()
	s.met.connsOpen.Add(-1)
	// Log sessions out in a fixed order so abandoned workspaces are
	// discarded deterministically.
	ids := make([]executor.SessionID, 0, len(c.owned))
	for id := range c.owned {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		_ = s.exec.Logout(id)
	}
}

// readLoop pulls frames until the connection errors or idles out. Each
// frame takes an in-flight token (backpressure: past MaxInFlight the
// reader stops, pushing into the client's TCP window) and a gate count
// (drain accounting), both released when its response is flushed.
func (c *serverConn) readLoop() {
	s := c.srv
	for {
		if d := s.cfg.IdleTimeout; d > 0 {
			//lint:ignore wallclock connection deadline only; never reaches committed state
			_ = c.nc.SetReadDeadline(time.Now().Add(d))
		}
		req := new(Request)
		n, err := readFrame(c.nc, req)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				s.met.idleDrops.Inc()
			}
			return
		}
		s.met.framesIn.Inc()
		s.met.bytesIn.Add(uint64(n))
		//lint:ignore wallclock deadline anchor and queue-wait accounting only; never reaches committed state
		req.arrival = time.Now()
		c.tokens <- struct{}{}
		s.inflight.add(1)
		c.route(req)
	}
}

// route hands a frame to its session's lane, creating the lane (and its
// runner goroutine) on first use. A full lane sheds the request at once.
func (c *serverConn) route(req *Request) {
	key := req.Session // OpLogin carries session 0: the login lane
	c.mu.Lock()
	ch, ok := c.runners[key]
	if !ok && len(c.runners) >= maxRunners {
		key = 0
		ch, ok = c.runners[key]
	}
	spawn := !ok
	if spawn {
		ch = make(chan *Request, c.srv.sessionQueue)
		c.runners[key] = ch
		c.order = append(c.order, key)
		c.runWG.Add(1)
	}
	c.mu.Unlock()
	if spawn {
		go c.runLoop(ch)
	}
	select {
	case ch <- req:
	default:
		c.srv.met.shedOverload.Inc()
		c.finish(Response{ID: req.ID, Status: StatusOverloaded, Error: ErrOverloaded.Error()})
	}
}

// runLoop serves one session's lane, strictly in order.
func (c *serverConn) runLoop(ch <-chan *Request) {
	defer c.runWG.Done()
	for req := range ch {
		c.finish(c.run(req))
	}
}

// finish queues a response for the writer. The send cannot block
// indefinitely: writeCh holds MaxInFlight responses and the token bound
// means no more than MaxInFlight are ever outstanding.
func (c *serverConn) finish(resp Response) {
	c.writeCh <- resp
}

// run executes one request: drain check, deadline setup, dispatch. The
// deadline budget is anchored at frame arrival (stamped by the read loop),
// so time spent queued in the session lane counts against it; a request
// whose budget expired while it waited is shed here without touching the
// session.
func (c *serverConn) run(req *Request) Response {
	s := c.srv
	if s.draining.Load() {
		s.met.shedShutdown.Inc()
		return Response{ID: req.ID, Status: StatusShuttingDown, Error: ErrShuttingDown.Error()}
	}
	var wait time.Duration
	if !req.arrival.IsZero() {
		//lint:ignore wallclock queue-wait accounting and deadline anchoring only; never reaches committed state
		wait = time.Since(req.arrival)
		s.met.queueWait.Observe(uint64(wait))
	}
	var ctx context.Context
	budget := s.cfg.DefaultDeadline
	if req.DeadlineNS > 0 {
		budget = time.Duration(req.DeadlineNS)
	}
	if budget > 0 {
		if !req.arrival.IsZero() {
			if wait >= budget {
				s.met.deadlineExceeded.Inc()
				return Response{ID: req.ID, Status: StatusDeadlineExceeded, Error: ErrDeadlineExceeded.Error()}
			}
			var cancel context.CancelFunc
			ctx, cancel = context.WithDeadline(context.Background(), req.arrival.Add(budget))
			defer cancel()
		} else {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(context.Background(), budget)
			defer cancel()
		}
	}
	resp := c.dispatch(ctx, req)
	resp.ID = req.ID
	return resp
}

// fail classifies an error into a response, counting sheds and expiries.
func (s *Server) fail(err error) Response {
	switch {
	case errors.Is(err, ErrOverloaded):
		s.met.shedOverload.Inc()
		return Response{Status: StatusOverloaded, Error: err.Error()}
	case errors.Is(err, ErrShuttingDown):
		s.met.shedShutdown.Inc()
		return Response{Status: StatusShuttingDown, Error: err.Error()}
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.met.deadlineExceeded.Inc()
		return Response{Status: StatusDeadlineExceeded, Error: err.Error()}
	}
	return Response{Error: err.Error()}
}

// dispatch runs one request against the executor. Heavy operations
// (login, execute, commit) pass the global admitter first; bookkeeping
// operations (abort, logout, stats, health) always run — shedding an
// abort or logout would only keep dying clients' state alive longer.
// ctx, possibly nil, carries the request deadline.
func (c *serverConn) dispatch(ctx context.Context, req *Request) Response {
	s := c.srv
	switch req.Op {
	case OpLogin:
		if err := s.adm.admit(ctx, s.drainCh); err != nil {
			return s.fail(err)
		}
		id, err := s.exec.Login(req.User, req.Password)
		s.adm.release()
		if err != nil {
			return s.fail(err)
		}
		c.mu.Lock()
		c.owned[id] = struct{}{}
		c.mu.Unlock()
		return Response{OK: true, Session: uint64(id)}
	}
	// Every other op names a session: it must be one this connection logged
	// in. Without this check any client holding a session ID — or guessing
	// one — could execute, commit or log out another user's session.
	sid := executor.SessionID(req.Session)
	c.mu.Lock()
	_, ok := c.owned[sid]
	c.mu.Unlock()
	if !ok {
		s.met.authRejections.Inc()
		return s.fail(fmt.Errorf("%w: %d", ErrNotAuthorized, req.Session))
	}
	switch req.Op {
	case OpExecute:
		if err := s.adm.admit(ctx, s.drainCh); err != nil {
			return s.fail(err)
		}
		result, output, err := s.exec.ExecuteCtx(ctx, sid, req.Source)
		s.adm.release()
		if err != nil {
			resp := s.fail(err)
			resp.Output = output
			return resp
		}
		return Response{OK: true, Result: result, Output: output}
	case OpCommit:
		if err := s.adm.admit(ctx, s.drainCh); err != nil {
			return s.fail(err)
		}
		t, err := s.exec.CommitCtx(ctx, sid)
		s.adm.release()
		if err != nil {
			return s.fail(err)
		}
		return Response{OK: true, Time: uint64(t)}
	case OpAbort:
		if err := s.exec.Abort(sid); err != nil {
			return s.fail(err)
		}
		return Response{OK: true}
	case OpLogout:
		if err := s.exec.Logout(sid); err != nil {
			return s.fail(err)
		}
		c.mu.Lock()
		delete(c.owned, sid)
		c.mu.Unlock()
		return Response{OK: true}
	case OpStats:
		return Response{OK: true, Stats: s.exec.Obs().Snapshot()}
	case OpHealth:
		return Response{OK: true, Health: s.exec.Health()}
	}
	return s.fail(fmt.Errorf("wire: unknown op %d", req.Op))
}

// writeLoop coalesces responses: it writes every response already queued
// into one buffered batch and flushes once, so a burst of pipelined
// results costs one syscall, not MaxInFlight.
func (c *serverConn) writeLoop() {
	defer c.writeWG.Done()
	bw := bufio.NewWriter(c.nc)
	for {
		resp, open := <-c.writeCh
		if !open {
			return
		}
		batch := 0
		for {
			c.writeOne(bw, resp)
			batch++
			more := false
			select {
			case resp, open = <-c.writeCh:
				more = open
			default:
			}
			if !more {
				break
			}
		}
		c.flushBatch(bw, batch)
		if !open {
			return
		}
	}
}

// writeOne encodes a response into the batch buffer. On a dead
// connection it does nothing: responses still pass through for
// accounting, so drain and backpressure bookkeeping stay exact.
func (c *serverConn) writeOne(bw *bufio.Writer, resp Response) {
	if c.dead.Load() {
		return
	}
	n, err := writeFrame(bw, resp)
	if err != nil {
		c.dead.Store(true)
		c.nc.Close()
		return
	}
	c.srv.met.framesOut.Inc()
	c.srv.met.bytesOut.Add(uint64(n))
}

// flushBatch puts the coalesced batch on the wire, then releases the
// batch's in-flight tokens and gate counts — a frame counts as in flight
// until its response bytes have left the server.
func (c *serverConn) flushBatch(bw *bufio.Writer, batch int) {
	s := c.srv
	if !c.dead.Load() {
		if d := s.cfg.IdleTimeout; d > 0 {
			//lint:ignore wallclock connection write deadline only; a client that stops reading must not pin the writer
			_ = c.nc.SetWriteDeadline(time.Now().Add(d))
		}
		if err := bw.Flush(); err != nil {
			c.dead.Store(true)
			c.nc.Close()
		}
	}
	s.met.coalesced.Observe(uint64(batch))
	if s.draining.Load() {
		s.met.drainFlushed.Add(uint64(batch))
	}
	for i := 0; i < batch; i++ {
		<-c.tokens
	}
	s.inflight.add(int64(-batch))
}
