package wire

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/gemstone"
	"repro/internal/executor"
)

// TestConcurrentCommitStress drives many clients through the full network
// stack at once — wire frames, executor sessions, OPAL execution,
// optimistic validation and the shadow-paged commit — all incrementing one
// shared counter. First-committer-wins concurrency may force any number of
// retries, but every successful commit must be visible afterwards: the
// final counter value equals the number of commits that reported success.
// Under -race this doubles as a dynamic check of the locking discipline
// that gslint's locksafe analyzer enforces statically.
func TestConcurrentCommitStress(t *testing.T) {
	_, addr := startServer(t)

	setup, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer setup.Close()
	admin, err := setup.Login(gemstone.SystemUser, "swordfish")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := admin.Execute("World at: #hits put: 0"); err != nil {
		t.Fatal(err)
	}
	if _, err := admin.Commit(); err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const increments = 5
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			rs, err := c.Login(gemstone.SystemUser, "swordfish")
			if err != nil {
				t.Error(err)
				return
			}
			defer rs.Logout()
			done := 0
			for attempts := 0; done < increments; attempts++ {
				if attempts > 500*increments {
					t.Error("conflict retries never converged; livelock?")
					return
				}
				cur, _, err := rs.Execute("World!hits")
				if err != nil {
					t.Error(err)
					return
				}
				n, err := strconv.Atoi(cur)
				if err != nil {
					t.Errorf("counter read %q: %v", cur, err)
					return
				}
				if _, _, err := rs.Execute("World at: #hits put: " + strconv.Itoa(n+1)); err != nil {
					t.Error(err)
					return
				}
				if _, err := rs.Commit(); err != nil {
					// A failed commit aborts and refreshes the session's
					// view; anything but a validation conflict is a bug.
					if !strings.Contains(err.Error(), "conflict") {
						t.Error(err)
						return
					}
					continue
				}
				done++
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// The setup session still reads its old snapshot; refresh it.
	if err := admin.Abort(); err != nil {
		t.Fatal(err)
	}
	final, _, err := admin.Execute("World!hits")
	if err != nil {
		t.Fatal(err)
	}
	if want := strconv.Itoa(workers * increments); final != want {
		t.Fatalf("lost updates: counter = %s after %s successful commits", final, want)
	}
}

// TestGroupCommitTimesGapFree drives N sessions committing disjoint write
// sets through the group-commit pipeline. Whatever grouping the committer
// chooses, the observable contract is unchanged: every session sees its
// own transaction time, times are strictly increasing per session, and the
// full set is gap-free — batched durability must not skip, reuse or
// reorder transaction times.
func TestGroupCommitTimesGapFree(t *testing.T) {
	_, addr := startServer(t)

	setup, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer setup.Close()
	admin, err := setup.Login(gemstone.SystemUser, "swordfish")
	if err != nil {
		t.Fatal(err)
	}
	const workers = 6
	const commits = 8
	for w := 0; w < workers; w++ {
		src := fmt.Sprintf("World at: #gobj%d put: (Object new at: #v put: 0; yourself)", w)
		if _, _, err := admin.Execute(src); err != nil {
			t.Fatal(err)
		}
	}
	base, err := admin.Commit()
	if err != nil {
		t.Fatal(err)
	}

	times := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			rs, err := c.Login(gemstone.SystemUser, "swordfish")
			if err != nil {
				t.Error(err)
				return
			}
			defer rs.Logout()
			for i := 0; i < commits; i++ {
				src := fmt.Sprintf("| o | o := World!gobj%d. o at: #v put: %d", w, i)
				if _, _, err := rs.Execute(src); err != nil {
					t.Error(err)
					return
				}
				// Disjoint write sets: a conflict here is a pipeline bug.
				tm, err := rs.Commit()
				if err != nil {
					t.Error(err)
					return
				}
				times[w] = append(times[w], tm)
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	var all []uint64
	for w := 0; w < workers; w++ {
		for i := 1; i < len(times[w]); i++ {
			if times[w][i] <= times[w][i-1] {
				t.Fatalf("worker %d times not strictly increasing: %v", w, times[w])
			}
		}
		all = append(all, times[w]...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) != workers*commits {
		t.Fatalf("collected %d times, want %d", len(all), workers*commits)
	}
	for i, tm := range all {
		if want := base + uint64(i+1); tm != want {
			t.Fatalf("transaction times not gap-free: position %d holds %v, want %v (all %v)", i, tm, want, all)
		}
	}
}

// TestCrashMidGroupRecoversAllOrNothing injects a crash at every stage of
// a batched apply while concurrent sessions commit disjoint write sets.
// The torn group must roll back as a group: after recovery the database
// contains exactly the commits that reported success — all of a published
// group, none of a failed one — and the retried commits reuse the
// rolled-back transaction times, keeping the history gap-free.
func TestCrashMidGroupRecoversAllOrNothing(t *testing.T) {
	steps := []string{"before-data", "after-data", "after-table", "after-directory", "before-superblock"}
	for _, step := range steps {
		t.Run(step, func(t *testing.T) {
			dir := t.TempDir()
			var armed, fired atomic.Bool
			db, err := gemstone.Open(dir, gemstone.Options{FailPoint: func(s string) error {
				if s == step && armed.Load() && fired.CompareAndSwap(false, true) {
					return errors.New("injected crash at " + s)
				}
				return nil
			}})
			if err != nil {
				t.Fatal(err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			srv := Serve(ln, executor.New(db))
			addr := ln.Addr().String()

			setup, err := Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			admin, err := setup.Login(gemstone.SystemUser, "swordfish")
			if err != nil {
				t.Fatal(err)
			}
			const workers = 4
			const commits = 3
			for w := 0; w < workers; w++ {
				src := fmt.Sprintf("World at: #cobj%d put: (Object new at: #v put: 0; yourself)", w)
				if _, _, err := admin.Execute(src); err != nil {
					t.Fatal(err)
				}
			}
			base, err := admin.Commit()
			if err != nil {
				t.Fatal(err)
			}
			setup.Close()

			armed.Store(true)
			lastVal := make([]int, workers)
			var timesMu sync.Mutex
			var all []uint64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					c, err := Dial(addr)
					if err != nil {
						t.Error(err)
						return
					}
					defer c.Close()
					rs, err := c.Login(gemstone.SystemUser, "swordfish")
					if err != nil {
						t.Error(err)
						return
					}
					defer rs.Logout()
					for i := 0; i < commits; i++ {
						val := w*100 + i + 1
						committed := false
						for attempt := 0; attempt < 20 && !committed; attempt++ {
							src := fmt.Sprintf("| o | o := World!cobj%d. o at: #v put: %d", w, val)
							if _, _, err := rs.Execute(src); err != nil {
								t.Error(err)
								return
							}
							tm, err := rs.Commit()
							if err != nil {
								// This commit was in (or queued behind) the
								// torn group; its workspace is discarded.
								// Redo the write and try again.
								continue
							}
							committed = true
							lastVal[w] = val
							timesMu.Lock()
							all = append(all, tm)
							timesMu.Unlock()
						}
						if !committed {
							t.Errorf("worker %d never recovered from the crash", w)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			srv.Close()
			if t.Failed() {
				db.Close()
				return
			}
			if !fired.Load() {
				db.Close()
				t.Fatal("failpoint never fired; the crash was not exercised")
			}
			want := base + uint64(workers*commits)
			if got := uint64(db.Core().TxnManager().LastCommitted()); got != want {
				db.Close()
				t.Fatalf("LastCommitted = %v, want %v (rolled-back times must be reused)", got, want)
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			// Recover from disk: the visible state must be exactly the
			// reported-success state, with gap-free transaction times.
			re, err := gemstone.Open(dir, gemstone.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			rs, err := re.Login(gemstone.SystemUser, "swordfish")
			if err != nil {
				t.Fatal(err)
			}
			for w := 0; w < workers; w++ {
				res, err := rs.Run(fmt.Sprintf("World!cobj%d!v", w))
				if err != nil {
					t.Fatal(err)
				}
				if got, _ := strconv.Atoi(res); got != lastVal[w] {
					t.Errorf("after recovery cobj%d = %s, want %d", w, res, lastVal[w])
				}
			}
			sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
			for i, tm := range all {
				if want := base + uint64(i+1); tm != want {
					t.Fatalf("times not gap-free after crash: position %d holds %v, want %v (all %v)", i, tm, want, all)
				}
			}
		})
	}
}
