package wire

import (
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/gemstone"
)

// TestConcurrentCommitStress drives many clients through the full network
// stack at once — wire frames, executor sessions, OPAL execution,
// optimistic validation and the shadow-paged commit — all incrementing one
// shared counter. First-committer-wins concurrency may force any number of
// retries, but every successful commit must be visible afterwards: the
// final counter value equals the number of commits that reported success.
// Under -race this doubles as a dynamic check of the locking discipline
// that gslint's locksafe analyzer enforces statically.
func TestConcurrentCommitStress(t *testing.T) {
	_, addr := startServer(t)

	setup, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer setup.Close()
	admin, err := setup.Login(gemstone.SystemUser, "swordfish")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := admin.Execute("World at: #hits put: 0"); err != nil {
		t.Fatal(err)
	}
	if _, err := admin.Commit(); err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const increments = 5
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			rs, err := c.Login(gemstone.SystemUser, "swordfish")
			if err != nil {
				t.Error(err)
				return
			}
			defer rs.Logout()
			done := 0
			for attempts := 0; done < increments; attempts++ {
				if attempts > 500*increments {
					t.Error("conflict retries never converged; livelock?")
					return
				}
				cur, _, err := rs.Execute("World!hits")
				if err != nil {
					t.Error(err)
					return
				}
				n, err := strconv.Atoi(cur)
				if err != nil {
					t.Errorf("counter read %q: %v", cur, err)
					return
				}
				if _, _, err := rs.Execute("World at: #hits put: " + strconv.Itoa(n+1)); err != nil {
					t.Error(err)
					return
				}
				if _, err := rs.Commit(); err != nil {
					// A failed commit aborts and refreshes the session's
					// view; anything but a validation conflict is a bug.
					if !strings.Contains(err.Error(), "conflict") {
						t.Error(err)
						return
					}
					continue
				}
				done++
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// The setup session still reads its old snapshot; refresh it.
	if err := admin.Abort(); err != nil {
		t.Fatal(err)
	}
	final, _, err := admin.Execute("World!hits")
	if err != nil {
		t.Fatal(err)
	}
	if want := strconv.Itoa(workers * increments); final != want {
		t.Fatalf("lost updates: counter = %s after %s successful commits", final, want)
	}
}
