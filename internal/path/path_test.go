package path

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/auth"
	"repro/internal/core"
	"repro/internal/oop"
)

func openSession(t *testing.T) (*core.DB, *core.Session) {
	t.Helper()
	db, err := core.Open(t.TempDir(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	s, err := db.NewSession(auth.SystemUser, "swordfish")
	if err != nil {
		t.Fatal(err)
	}
	return db, s
}

func TestParseForms(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"X!Departments!A16!Managers", "X!Departments!A16!Managers"},
		{"X!Employees!E62!Name", "X!Employees!E62!Name"},
		{"World!'Acme Corp'!president", "World!'Acme Corp'!president"},
		{"World!'Acme Corp'!president@10", "World!'Acme Corp'!president@10"},
		{"World!'Acme Corp'!president@7!city", "World!'Acme Corp'!president@7!city"},
		{"A!1!2", "A!1!2"},
		{"x ! y @ 3", "x!y@3"},
		{"x!'it''s'", "x!'it''s'"},
	}
	for _, c := range cases {
		e, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		if got := e.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"", "!x", "x!", "x!!y", "x!'unterminated", "x!y@", "x!y@abc", "x!y junk", "7!x",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseRoundTripProperty(t *testing.T) {
	// Property: String() of a parsed expression reparses to the same form.
	f := func(rootIdx uint8, names []uint8, times []uint8) bool {
		roots := []string{"X", "World", "emp_1"}
		nameSet := []string{"a", "Departments", "Acme Corp", "it's", "E62"}
		src := roots[int(rootIdx)%len(roots)]
		e1, err := Parse(src)
		if err != nil {
			return false
		}
		_ = e1
		b := strings.Builder{}
		b.WriteString(src)
		for i, n := range names {
			name := nameSet[int(n)%len(nameSet)]
			b.WriteByte('!')
			if isIdent(name) {
				b.WriteString(name)
			} else {
				b.WriteString("'" + strings.ReplaceAll(name, "'", "''") + "'")
			}
			if i < len(times) && times[i]%3 == 0 {
				b.WriteString("@5")
			}
		}
		full := b.String()
		e, err := Parse(full)
		if err != nil {
			return false
		}
		e2, err := Parse(e.String())
		if err != nil {
			return false
		}
		return e.String() == e2.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// buildAcme reproduces the §5.3.2 example graph and returns the session.
func buildAcme(t *testing.T) (*core.Session, map[string]oop.OOP) {
	db, s := openSession(t)
	world, _ := s.Global("World")
	acme, _ := s.NewObject(db.Kernel().Dictionary)
	ayn, _ := s.NewObject(db.Kernel().Object)
	milton, _ := s.NewObject(db.Kernel().Object)
	clock, _ := s.NewObject(db.Kernel().Object)
	_ = s.Store(world, s.Symbol("Acme Corp"), acme)
	_ = s.Store(world, s.Symbol("__clock"), clock)
	if _, err := s.Commit(); err != nil { // t=1
		t.Fatal(err)
	}
	pad := func(until oop.Time) {
		for s.DB().TxnManager().LastCommitted() < until-1 {
			f, _ := s.DB().NewSession(auth.SystemUser, "swordfish")
			_ = f.Store(clock, f.Symbol("t"), oop.MustInt(int64(s.DB().TxnManager().LastCommitted())))
			if _, err := f.Commit(); err != nil {
				t.Fatal(err)
			}
		}
	}
	pad(5)
	_ = s.Store(acme, s.Symbol("president"), ayn)
	if ct, err := s.Commit(); err != nil || ct != 5 {
		t.Fatalf("t=5 commit: %v %v", ct, err)
	}
	pad(8)
	_ = s.Store(acme, s.Symbol("president"), milton)
	if ct, err := s.Commit(); err != nil || ct != 8 {
		t.Fatalf("t=8 commit: %v %v", ct, err)
	}
	pad(11)
	sd, _ := s.NewString("San Diego")
	_ = s.Store(ayn, s.Symbol("city"), sd)
	if ct, err := s.Commit(); err != nil || ct != 11 {
		t.Fatalf("t=11 commit: %v %v", ct, err)
	}
	return s, map[string]oop.OOP{"acme": acme, "ayn": ayn, "milton": milton, "sandiego": sd}
}

func TestEvalPaperQueries(t *testing.T) {
	s, objs := buildAcme(t)
	env := GlobalsEnv{Session: s}
	// World!'Acme Corp'!president -> Milton
	v, err := EvalString(s, "World!'Acme Corp'!president", env)
	if err != nil || v != objs["milton"] {
		t.Errorf("current president: %v %v", v, err)
	}
	// @10 -> Milton; @7 -> Ayn
	if v, _ := EvalString(s, "World!'Acme Corp'!president@10", env); v != objs["milton"] {
		t.Error("president@10")
	}
	if v, _ := EvalString(s, "World!'Acme Corp'!president@7", env); v != objs["ayn"] {
		t.Error("president@7")
	}
	// The paper's mixed query: previous president's *current* city.
	if v, _ := EvalString(s, "World!'Acme Corp'!president@7!city", env); v != objs["sandiego"] {
		t.Error("president@7!city should be San Diego")
	}
}

func TestEvalMissingAndErrors(t *testing.T) {
	s, _ := buildAcme(t)
	env := GlobalsEnv{Session: s}
	// Missing element evaluates to nil.
	v, err := EvalString(s, "World!'Acme Corp'!treasurer", env)
	if err != nil || v != oop.Nil {
		t.Errorf("missing element: %v %v", v, err)
	}
	// Traversing through nil errors.
	if _, err := EvalString(s, "World!'Acme Corp'!treasurer!name", env); err == nil {
		t.Error("traverse through nil should fail")
	}
	// Unbound root.
	if _, err := EvalString(s, "Nowhere!x", env); err == nil {
		t.Error("unbound root should fail")
	}
	// Traversing through a simple value errors.
	world, _ := s.Global("World")
	_ = s.Store(world, s.Symbol("n"), oop.MustInt(5))
	if _, err := EvalString(s, "World!n!x", env); err == nil {
		t.Error("traverse through SmallInteger should fail")
	}
}

func TestEvalIndexedSegments(t *testing.T) {
	db, s := openSession(t)
	world, _ := s.Global("World")
	arr, _ := s.NewObject(db.Kernel().Array)
	_ = s.Store(arr, oop.MustInt(1), oop.MustInt(10))
	_ = s.Store(arr, oop.MustInt(2), oop.MustInt(20))
	_ = s.Store(world, s.Symbol("A"), arr)
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	env := GlobalsEnv{Session: s}
	if v, err := EvalString(s, "World!A!2", env); err != nil || v != oop.MustInt(20) {
		t.Errorf("A!2 = %v %v", v, err)
	}
}

func TestAssign(t *testing.T) {
	s, objs := buildAcme(t)
	env := GlobalsEnv{Session: s}
	// Paper: assignment to a path circumvents class protocol.
	if err := AssignString(s, "World!'Acme Corp'!budget", env, oop.MustInt(142000)); err != nil {
		t.Fatal(err)
	}
	if v, _ := EvalString(s, "World!'Acme Corp'!budget", env); v != oop.MustInt(142000) {
		t.Error("assigned value not readable")
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	// Assignment through a multi-segment path.
	if err := AssignString(s, "World!'Acme Corp'!president!title", env, oop.MustInt(1)); err != nil {
		t.Fatal(err)
	}
	if v, _ := EvalString(s, "World!'Acme Corp'!president!title", env); v != oop.MustInt(1) {
		t.Error("nested assignment failed")
	}
	_ = objs
	// Errors: bare variable, temporal target.
	if err := AssignString(s, "World", env, oop.Nil); err == nil {
		t.Error("assign to bare variable should fail")
	}
	if err := AssignString(s, "World!'Acme Corp'!president@7", env, oop.Nil); err == nil {
		t.Error("assign into the past should fail")
	}
}

func TestLocalsOverlay(t *testing.T) {
	s, objs := buildAcme(t)
	env := GlobalsEnv{Session: s, Locals: map[string]oop.OOP{"e": objs["ayn"]}}
	if v, err := EvalString(s, "e!city", env); err != nil || v != objs["sandiego"] {
		t.Errorf("local root: %v %v", v, err)
	}
	// Locals shadow globals.
	env.Locals["World"] = objs["acme"]
	if v, _ := EvalString(s, "World!president", env); v != objs["milton"] {
		t.Error("local shadow failed")
	}
}

func TestMapEnv(t *testing.T) {
	m := MapEnv{"x": oop.MustInt(1)}
	if v, ok := m.Resolve("x"); !ok || v != oop.MustInt(1) {
		t.Error("MapEnv resolve")
	}
	if _, ok := m.Resolve("y"); ok {
		t.Error("MapEnv should miss y")
	}
}
