// Package path implements the paper's path syntax for navigating through
// objects (§4.3, §5.1): X!Departments!A16!Managers, with temporal
// subscripts E!Salary@T (§5.3.2) and assignment to path expressions
// ("allow assignments to path expressions ... sometimes it is the most
// natural way to define methods", §4.3).
package path

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/core"
	"repro/internal/oop"
)

// Segment is one step of a path: an element name (identifier or quoted
// string, interned as a symbol) or a numeric index, optionally followed by
// a temporal subscript @T.
type Segment struct {
	Name    string // element name; empty when IsIndex
	IsIndex bool
	Index   int64
	HasAt   bool
	At      oop.Time
}

// Expr is a parsed path expression: a root variable followed by segments.
type Expr struct {
	Root string
	Segs []Segment
}

// String renders the expression back to path syntax.
func (e *Expr) String() string {
	var b strings.Builder
	b.WriteString(e.Root)
	for _, s := range e.Segs {
		b.WriteByte('!')
		if s.IsIndex {
			fmt.Fprintf(&b, "%d", s.Index)
		} else if isIdent(s.Name) {
			b.WriteString(s.Name)
		} else {
			fmt.Fprintf(&b, "'%s'", strings.ReplaceAll(s.Name, "'", "''"))
		}
		if s.HasAt {
			fmt.Fprintf(&b, "@%d", uint64(s.At))
		}
	}
	return b.String()
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if i == 0 && !unicode.IsLetter(r) && r != '_' {
			return false
		}
		if i > 0 && !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
			return false
		}
	}
	return true
}

type parser struct {
	src string
	pos int
}

func (p *parser) error(format string, args ...any) error {
	return fmt.Errorf("path: %s at offset %d in %q", fmt.Sprintf(format, args...), p.pos, p.src)
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *parser) ident() string {
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || (p.pos > start && c >= '0' && c <= '9') {
			p.pos++
			continue
		}
		break
	}
	return p.src[start:p.pos]
}

func (p *parser) quoted() (string, error) {
	p.pos++ // opening quote
	var b strings.Builder
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '\'' {
			if p.pos+1 < len(p.src) && p.src[p.pos+1] == '\'' {
				b.WriteByte('\'')
				p.pos += 2
				continue
			}
			p.pos++
			return b.String(), nil
		}
		b.WriteByte(c)
		p.pos++
	}
	return "", p.error("unterminated string")
}

func (p *parser) number() (int64, error) {
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
	}
	return strconv.ParseInt(p.src[start:p.pos], 10, 64)
}

// Parse parses a path expression.
func Parse(src string) (*Expr, error) {
	p := &parser{src: src}
	p.skipSpace()
	root := p.ident()
	if root == "" {
		return nil, p.error("path must start with a variable name")
	}
	e := &Expr{Root: root}
	for {
		p.skipSpace()
		if p.peek() != '!' {
			break
		}
		p.pos++
		p.skipSpace()
		var seg Segment
		switch c := p.peek(); {
		case c == '\'':
			s, err := p.quoted()
			if err != nil {
				return nil, err
			}
			seg.Name = s
		case c >= '0' && c <= '9':
			n, err := p.number()
			if err != nil {
				return nil, p.error("bad index: %v", err)
			}
			seg.IsIndex, seg.Index = true, n
		default:
			id := p.ident()
			if id == "" {
				return nil, p.error("expected element name after '!'")
			}
			seg.Name = id
		}
		p.skipSpace()
		if p.peek() == '@' {
			p.pos++
			p.skipSpace()
			n, err := p.number()
			if err != nil {
				return nil, p.error("bad time after '@': %v", err)
			}
			seg.HasAt, seg.At = true, oop.Time(n)
		}
		e.Segs = append(e.Segs, seg)
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, p.error("trailing input")
	}
	return e, nil
}

// Env resolves the root variable of a path expression.
type Env interface {
	Resolve(name string) (oop.OOP, bool)
}

// MapEnv is an Env over a Go map.
type MapEnv map[string]oop.OOP

// Resolve implements Env.
func (m MapEnv) Resolve(name string) (oop.OOP, bool) {
	v, ok := m[name]
	return v, ok
}

// GlobalsEnv resolves roots against the session's globals (World, class
// names) with an optional overlay of local bindings.
type GlobalsEnv struct {
	Session *core.Session
	Locals  map[string]oop.OOP
}

// Resolve implements Env.
func (g GlobalsEnv) Resolve(name string) (oop.OOP, bool) {
	if v, ok := g.Locals[name]; ok {
		return v, true
	}
	return g.Session.Global(name)
}

func (s Segment) nameOOP(sess *core.Session) oop.OOP {
	if s.IsIndex {
		return oop.MustInt(s.Index)
	}
	return sess.Symbol(s.Name)
}

// Eval evaluates the path in the session's current view. Traversing a
// missing element yields nil (and stops with nil, matching the model where
// absent elements read as nil); traversing *through* nil is an error.
func Eval(sess *core.Session, e *Expr, env Env) (oop.OOP, error) {
	cur, ok := env.Resolve(e.Root)
	if !ok {
		return oop.Invalid, fmt.Errorf("path: unbound variable %q", e.Root)
	}
	for i, seg := range e.Segs {
		if cur == oop.Nil {
			return oop.Invalid, fmt.Errorf("path: %s is nil; cannot traverse %q", (&Expr{Root: e.Root, Segs: e.Segs[:i]}).String(), segLabel(seg))
		}
		if !cur.IsHeap() {
			return oop.Invalid, fmt.Errorf("path: %s is a simple value; cannot traverse %q", (&Expr{Root: e.Root, Segs: e.Segs[:i]}).String(), segLabel(seg))
		}
		var v oop.OOP
		var err error
		if seg.HasAt {
			v, _, err = sess.FetchAt(cur, seg.nameOOP(sess), seg.At)
		} else {
			v, _, err = sess.Fetch(cur, seg.nameOOP(sess))
		}
		if err != nil {
			return oop.Invalid, err
		}
		cur = v
	}
	return cur, nil
}

func segLabel(s Segment) string {
	if s.IsIndex {
		return strconv.FormatInt(s.Index, 10)
	}
	return s.Name
}

// EvalString parses and evaluates src in one call.
func EvalString(sess *core.Session, src string, env Env) (oop.OOP, error) {
	e, err := Parse(src)
	if err != nil {
		return oop.Invalid, err
	}
	return Eval(sess, e, env)
}

// Assign evaluates all but the last segment and stores value at the last
// ("allow assignments to path expressions", §4.3). The last segment may not
// carry a temporal subscript: history is written only by commits.
func Assign(sess *core.Session, e *Expr, env Env, value oop.OOP) error {
	if len(e.Segs) == 0 {
		return fmt.Errorf("path: cannot assign to bare variable %q", e.Root)
	}
	last := e.Segs[len(e.Segs)-1]
	if last.HasAt {
		return fmt.Errorf("path: cannot assign into a past state (@%d)", uint64(last.At))
	}
	prefix := &Expr{Root: e.Root, Segs: e.Segs[:len(e.Segs)-1]}
	target, err := Eval(sess, prefix, env)
	if err != nil {
		return err
	}
	if !target.IsHeap() {
		return fmt.Errorf("path: %s is not an object; cannot assign", prefix)
	}
	return sess.Store(target, last.nameOOP(sess), value)
}

// AssignString parses and assigns in one call.
func AssignString(sess *core.Session, src string, env Env, value oop.OOP) error {
	e, err := Parse(src)
	if err != nil {
		return err
	}
	return Assign(sess, e, env, value)
}
