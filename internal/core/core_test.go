package core

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/auth"
	"repro/internal/directory"
	"repro/internal/oop"
	"repro/internal/store"
	"repro/internal/txn"
)

func openDB(t testing.TB) *DB {
	t.Helper()
	db, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func sysSession(t testing.TB, db *DB) *Session {
	t.Helper()
	s, err := db.NewSession(auth.SystemUser, "swordfish")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBootstrapKernel(t *testing.T) {
	db := openDB(t)
	k := db.Kernel()
	if !k.Object.IsHeap() || !k.Class.IsHeap() || !k.SmallInteger.IsHeap() {
		t.Fatal("kernel classes missing")
	}
	s := sysSession(t, db)
	// Class objects describe themselves.
	name, ok, err := s.Fetch(k.SmallInteger, db.wk.name)
	if err != nil || !ok {
		t.Fatalf("class name fetch: %v %v", ok, err)
	}
	if str, _ := s.SymbolName(name); str != "SmallInteger" {
		t.Errorf("class name = %q", str)
	}
	super, _, _ := s.Fetch(k.SmallInteger, db.wk.superclass)
	if super != k.Number {
		t.Error("SmallInteger superclass should be Number")
	}
	// ClassOf immediates.
	if s.ClassOf(oop.MustInt(5)) != k.SmallInteger {
		t.Error("ClassOf(5)")
	}
	if s.ClassOf(oop.Nil) != k.UndefinedObject || s.ClassOf(oop.True) != k.TrueClass {
		t.Error("ClassOf specials")
	}
	if _, ok := s.Global("World"); !ok {
		t.Error("World global missing")
	}
}

func TestStoreFetchCommitCycle(t *testing.T) {
	db := openDB(t)
	s := sysSession(t, db)
	emp, err := s.NewObject(db.Kernel().Object)
	if err != nil {
		t.Fatal(err)
	}
	nameSym := s.Symbol("name")
	str, _ := s.NewString("Ellen")
	if err := s.Store(emp, nameSym, str); err != nil {
		t.Fatal(err)
	}
	// Visible to self before commit.
	if v, ok, _ := s.Fetch(emp, nameSym); !ok || v != str {
		t.Error("own pending write invisible")
	}
	world, _ := s.Global("World")
	if err := s.Store(world, s.Symbol("ellen"), emp); err != nil {
		t.Fatal(err)
	}
	ct, err := s.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if ct != 1 {
		t.Errorf("first commit time = %v", ct)
	}
	// Visible after commit in a fresh session.
	s2 := sysSession(t, db)
	got, ok, err := s2.Fetch(world, s2.Symbol("ellen"))
	if err != nil || !ok || got != emp {
		t.Fatalf("committed object not visible: %v %v %v", got, ok, err)
	}
	b, err := s2.BytesOf(str)
	if err != nil || string(b) != "Ellen" {
		t.Errorf("string payload: %q %v", b, err)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	db := openDB(t)
	s1 := sysSession(t, db)
	world, _ := s1.Global("World")
	sym := s1.Symbol("x")
	if err := s1.Store(world, sym, oop.MustInt(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Commit(); err != nil {
		t.Fatal(err)
	}

	reader := sysSession(t, db)
	if v, _, _ := reader.Fetch(world, sym); v != oop.MustInt(1) {
		t.Fatal("reader sees wrong initial value")
	}
	writer := sysSession(t, db)
	if err := writer.Store(world, sym, oop.MustInt(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Commit(); err != nil {
		t.Fatal(err)
	}
	// The reader's snapshot predates the write: it must still see 1.
	if v, _, _ := reader.Fetch(world, sym); v != oop.MustInt(1) {
		t.Error("snapshot isolation violated")
	}
	// And committing that stale read conflicts.
	if _, err := reader.Commit(); !errors.Is(err, txn.ErrConflict) {
		t.Errorf("stale reader commit: %v", err)
	}
	// A fresh transaction sees the new value.
	if v, _, _ := reader.Fetch(world, sym); v != oop.MustInt(2) {
		t.Error("post-refresh read wrong")
	}
	if _, err := reader.Commit(); err != nil {
		t.Errorf("clean read-only commit: %v", err)
	}
}

func TestWriteConflictAborts(t *testing.T) {
	db := openDB(t)
	s0 := sysSession(t, db)
	world, _ := s0.Global("World")
	sym := s0.Symbol("y")
	_ = s0.Store(world, sym, oop.MustInt(0))
	if _, err := s0.Commit(); err != nil {
		t.Fatal(err)
	}
	a := sysSession(t, db)
	b := sysSession(t, db)
	_ = a.Store(world, sym, oop.MustInt(10))
	_ = b.Store(world, sym, oop.MustInt(20))
	if _, err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Commit(); !errors.Is(err, txn.ErrConflict) {
		t.Fatalf("expected conflict, got %v", err)
	}
	// b's retry on a fresh snapshot succeeds.
	_ = b.Store(world, sym, oop.MustInt(20))
	if _, err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	s := sysSession(t, db)
	if v, _, _ := s.Fetch(world, sym); v != oop.MustInt(20) {
		t.Error("retry value lost")
	}
}

func TestAbortDiscardsWorkspace(t *testing.T) {
	db := openDB(t)
	s := sysSession(t, db)
	world, _ := s.Global("World")
	sym := s.Symbol("z")
	_ = s.Store(world, sym, oop.MustInt(7))
	s.Abort()
	if v, ok, _ := s.Fetch(world, sym); ok && v != oop.Nil {
		t.Errorf("aborted write visible: %v", v)
	}
}

// TestFigure1 reproduces the paper's Figure 1 database at the Object
// Manager level: president changes, employee history, the nil-removal.
func TestFigure1(t *testing.T) {
	db := openDB(t)
	s := sysSession(t, db)
	world, _ := s.Global("World")
	acme, _ := s.NewObject(db.Kernel().Dictionary)
	employees, _ := s.NewObject(db.Kernel().Dictionary)
	ayn, _ := s.NewObject(db.Kernel().Object)
	milton, _ := s.NewObject(db.Kernel().Object)

	acmeSym := s.Symbol("Acme Corp")
	presSym := s.Symbol("president")
	empsSym := s.Symbol("employees")
	citySym := s.Symbol("city")
	nameSym := s.Symbol("name")
	e1821 := s.Symbol("1821")

	_ = s.Store(world, acmeSym, acme)
	_ = s.Store(acme, empsSym, employees)
	aynName, _ := s.NewString("Ayn Rand")
	miltonName, _ := s.NewString("Milton Friedman")
	_ = s.Store(ayn, nameSym, aynName)
	_ = s.Store(milton, nameSym, miltonName)
	// A clock object, disjoint from the Acme graph, lets filler commits
	// drive the transaction counter to the paper's times without
	// conflicting with the main session.
	clock, _ := s.NewObject(db.Kernel().Object)
	_ = s.Store(world, s.Symbol("__clock"), clock)
	if ct, err := s.Commit(); err != nil || ct != 1 {
		t.Fatalf("setup commit: %v %v", ct, err)
	}
	pad := func(until oop.Time) {
		for db.TxnManager().LastCommitted() < until-1 {
			f := sysSession(t, db)
			_ = f.Store(clock, f.Symbol("tick"), oop.MustInt(int64(db.TxnManager().LastCommitted())))
			if _, err := f.Commit(); err != nil {
				t.Fatal(err)
			}
		}
	}

	// t=2: Ayn joins as employee 1821, in Seattle... (paper: employee from 2).
	pad(2)
	seattle, _ := s.NewString("Seattle")
	_ = s.Store(employees, e1821, ayn)
	_ = s.Store(ayn, citySym, seattle)
	_ = s.Store(milton, citySym, seattle) // Milton had worked in Seattle
	if ct, err := s.Commit(); err != nil || ct != 2 {
		t.Fatalf("commit t=2: %v %v", ct, err)
	}

	// t=5: Ayn becomes president.
	pad(5)
	_ = s.Store(acme, presSym, ayn)
	if ct, err := s.Commit(); err != nil || ct != 5 {
		t.Fatalf("commit t=5: %v %v", ct, err)
	}

	// t=8: Milton becomes president (moving to Portland); Ayn leaves.
	pad(8)
	portland, _ := s.NewString("Portland")
	_ = s.Store(acme, presSym, milton)
	_ = s.Store(milton, citySym, portland)
	_ = s.Remove(employees, e1821)
	if ct, err := s.Commit(); err != nil || ct != 8 {
		t.Fatalf("commit t=8: %v %v", ct, err)
	}

	// t=11: Ayn moves to San Diego.
	pad(11)
	sandiego, _ := s.NewString("San Diego")
	_ = s.Store(ayn, citySym, sandiego)
	if ct, err := s.Commit(); err != nil || ct != 11 {
		t.Fatalf("commit t=11: %v %v", ct, err)
	}

	// --- The paper's path expression queries (§5.3.2) ---
	q := sysSession(t, db)
	// World!'Acme Corp'!president -> Milton
	pres, _, _ := q.Fetch(acme, presSym)
	if pres != milton {
		t.Error("current president should be Milton")
	}
	// ...@10 -> Milton (the new president)
	if v, _, _ := q.FetchAt(acme, presSym, 10); v != milton {
		t.Error("president@10 should be Milton")
	}
	// ...@7 -> Ayn (the previous president)
	if v, _, _ := q.FetchAt(acme, presSym, 7); v != ayn {
		t.Error("president@7 should be Ayn")
	}
	// World!'Acme Corp'!president@7!city -> San Diego (Ayn's CURRENT city).
	prev, _, _ := q.FetchAt(acme, presSym, 7)
	city, _, _ := q.Fetch(prev, citySym)
	if city != sandiego {
		t.Error("previous president's current city should be San Diego")
	}
	// Employee 1821 present at 5, removed (nil) from 8.
	if v, ok, _ := q.FetchAt(employees, e1821, 5); !ok || v != ayn {
		t.Error("employee 1821 missing at t=5")
	}
	if v, ok, _ := q.FetchAt(employees, e1821, 9); !ok || v != oop.Nil {
		t.Error("employee 1821 should read nil after t=8")
	}

	// --- Time dial (§5.4) ---
	if err := q.SetTimeDial(7); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := q.Fetch(acme, presSym); v != ayn {
		t.Error("dialed fetch should see Ayn as president")
	}
	// Writes to persistent objects under a dialed session are forbidden;
	// session-private transients may still be created and used.
	if err := q.Store(acme, presSym, ayn); !errors.Is(err, ErrReadOnlyDial) {
		t.Errorf("dialed write: %v", err)
	}
	tmp, err := q.NewObject(db.Kernel().Object)
	if err != nil {
		t.Errorf("dialed transient create should be allowed: %v", err)
	}
	if err := q.Store(tmp, presSym, oop.MustInt(1)); err != nil {
		t.Errorf("dialed transient write should be allowed: %v", err)
	}
	// Dialing into the future is rejected.
	if err := q.SetTimeDial(99); err == nil {
		t.Error("future dial accepted")
	}
	_ = q.SetTimeDial(oop.TimeNow)
	if v, _, _ := q.Fetch(acme, presSym); v != milton {
		t.Error("dial back to now failed")
	}
}

func TestSafeTimeDial(t *testing.T) {
	db := openDB(t)
	s := sysSession(t, db)
	world, _ := s.Global("World")
	_ = s.Store(world, s.Symbol("k"), oop.MustInt(1))
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if st := s.SafeTime(); st != 1 {
		t.Errorf("SafeTime = %v", st)
	}
	if err := s.SetTimeDial(s.SafeTime()); err != nil {
		t.Fatal(err)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := db.NewSession(auth.SystemUser, "swordfish")
	if err != nil {
		t.Fatal(err)
	}
	world, _ := s.Global("World")
	deptSym := s.Symbol("Sales")
	dept, _ := s.NewObject(db.Kernel().Dictionary)
	budget := s.Symbol("budget")
	_ = s.Store(dept, budget, oop.MustInt(142000))
	_ = s.Store(world, deptSym, dept)
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	_ = s.Store(dept, budget, oop.MustInt(150000))
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	s2, err := db2.NewSession(auth.SystemUser, "swordfish")
	if err != nil {
		t.Fatal(err)
	}
	world2, ok := s2.Global("World")
	if !ok || world2 != world {
		t.Fatal("World identity changed across reopen")
	}
	// Symbols re-intern to the same OOPs.
	if s2.Symbol("Sales") != deptSym {
		t.Error("symbol identity lost across reopen")
	}
	d, ok, _ := s2.Fetch(world2, s2.Symbol("Sales"))
	if !ok || d != dept {
		t.Fatal("object identity lost across reopen")
	}
	if v, _, _ := s2.Fetch(d, s2.Symbol("budget")); v != oop.MustInt(150000) {
		t.Error("current budget wrong after reopen")
	}
	// History survives reopen.
	if v, _, _ := s2.FetchAt(d, s2.Symbol("budget"), 1); v != oop.MustInt(142000) {
		t.Error("budget history lost across reopen")
	}
}

func TestAuthorizationEnforced(t *testing.T) {
	db := openDB(t)
	s := sysSession(t, db)
	if err := s.CreateUser("alice", "apw"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateUser("bob", "bpw"); err != nil {
		t.Fatal(err)
	}
	as, err := db.NewSession("alice", "apw")
	if err != nil {
		t.Fatal(err)
	}
	secret, err := as.NewObject(db.Kernel().Object)
	if err != nil {
		t.Fatal(err)
	}
	_ = as.Store(secret, as.Symbol("v"), oop.MustInt(42))
	// Attach to the (world-writable) World so it persists; the object
	// itself stays in alice's segment, so authorization still applies.
	world, _ := as.Global("World")
	if err := as.Store(world, as.Symbol("secret"), secret); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Commit(); err != nil {
		t.Fatal(err)
	}
	bs, err := db.NewSession("bob", "bpw")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := bs.Fetch(secret, bs.Symbol("v")); !errors.Is(err, auth.ErrDenied) {
		t.Errorf("bob read alice's object: %v", err)
	}
	// Grant read: fetch works, store still denied.
	home, _ := db.Auth().HomeSegment("alice")
	if err := as.Grant(home, "bob", auth.Read); err != nil {
		t.Fatal(err)
	}
	if v, _, err := bs.Fetch(secret, bs.Symbol("v")); err != nil || v != oop.MustInt(42) {
		t.Errorf("bob read after grant: %v %v", v, err)
	}
	if err := bs.Store(secret, bs.Symbol("v"), oop.MustInt(1)); !errors.Is(err, auth.ErrDenied) {
		t.Errorf("bob wrote with read grant: %v", err)
	}
	// Bad login.
	if _, err := db.NewSession("alice", "wrong"); !errors.Is(err, auth.ErrNoUser) {
		t.Errorf("bad login: %v", err)
	}
}

func TestAuthSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := db.NewSession(auth.SystemUser, "swordfish")
	if err := s.CreateUser("alice", "apw"); err != nil {
		t.Fatal(err)
	}
	db.Close()
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := db2.NewSession("alice", "apw"); err != nil {
		t.Errorf("alice lost across reopen: %v", err)
	}
}

func TestSharedComponentIdentity(t *testing.T) {
	// Paper §4.2: "if two objects share a component, updates to that
	// component through one object are visible in the other object."
	db := openDB(t)
	s := sysSession(t, db)
	world, _ := s.Global("World")
	dept, _ := s.NewObject(db.Kernel().Dictionary)
	nameS, _ := s.NewString("Sales")
	_ = s.Store(dept, s.Symbol("name"), nameS)
	e1, _ := s.NewObject(db.Kernel().Object)
	e2, _ := s.NewObject(db.Kernel().Object)
	_ = s.Store(e1, s.Symbol("dept"), dept)
	_ = s.Store(e2, s.Symbol("dept"), dept)
	_ = s.Store(world, s.Symbol("e1"), e1)
	_ = s.Store(world, s.Symbol("e2"), e2)
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	// Update the department's budget through e1's reference.
	d1, _, _ := s.Fetch(e1, s.Symbol("dept"))
	_ = s.Store(d1, s.Symbol("budget"), oop.MustInt(99))
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	// Visible through e2 — same entity.
	d2, _, _ := s.Fetch(e2, s.Symbol("dept"))
	if d1 != d2 {
		t.Fatal("entity identity broken")
	}
	if v, _, _ := s.Fetch(d2, s.Symbol("budget")); v != oop.MustInt(99) {
		t.Error("shared update invisible through second parent")
	}
}

func TestAddToSetAliases(t *testing.T) {
	db := openDB(t)
	s := sysSession(t, db)
	world, _ := s.Global("World")
	set, _ := s.NewObject(db.Kernel().Set)
	_ = s.Store(world, s.Symbol("things"), set)
	var aliases []oop.OOP
	for i := 0; i < 5; i++ {
		a, err := s.AddToSet(set, oop.MustInt(int64(i*10)))
		if err != nil {
			t.Fatal(err)
		}
		aliases = append(aliases, a)
	}
	seen := map[oop.OOP]bool{}
	for _, a := range aliases {
		if seen[a] {
			t.Fatal("alias collision")
		}
		seen[a] = true
	}
	ms, err := s.Members(set)
	if err != nil || len(ms) != 5 {
		t.Fatalf("Members = %v (%v)", ms, err)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	// Remove one; history retains it.
	if err := s.RemoveFromSet(set, aliases[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	ms, _ = s.Members(set)
	if len(ms) != 4 {
		t.Errorf("after removal: %d members", len(ms))
	}
	_ = s.SetTimeDial(1)
	ms, _ = s.Members(set)
	if len(ms) != 5 {
		t.Errorf("at t=1: %d members, want 5", len(ms))
	}
}

func TestIndexMaintainedAcrossCommits(t *testing.T) {
	db := openDB(t)
	s := sysSession(t, db)
	world, _ := s.Global("World")
	emps, _ := s.NewObject(db.Kernel().Set)
	_ = s.Store(world, s.Symbol("emps"), emps)
	mkEmp := func(salary int64) oop.OOP {
		e, _ := s.NewObject(db.Kernel().Object)
		_ = s.Store(e, s.Symbol("salary"), oop.MustInt(salary))
		_, _ = s.AddToSet(emps, e)
		return e
	}
	e1 := mkEmp(100)
	e2 := mkEmp(200)
	_ = mkEmp(200)
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateIndex(emps, []string{"salary"}); err != nil {
		t.Fatal(err)
	}
	got, ok := s.IndexLookup(emps, []string{"salary"}, directory.NumberKey(200))
	if !ok || len(got) != 2 {
		t.Fatalf("lookup(200) = %v %v", got, ok)
	}
	// Update a salary: directory must follow (dependency on member object).
	_ = s.Store(e2, s.Symbol("salary"), oop.MustInt(300))
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.IndexLookup(emps, []string{"salary"}, directory.NumberKey(200)); len(got) != 1 {
		t.Errorf("lookup(200) after move = %v", got)
	}
	if got, _ := s.IndexLookup(emps, []string{"salary"}, directory.NumberKey(300)); len(got) != 1 || got[0] != e2 {
		t.Errorf("lookup(300) = %v", got)
	}
	// New member after index creation.
	e4, _ := s.NewObject(db.Kernel().Object)
	_ = s.Store(e4, s.Symbol("salary"), oop.MustInt(100))
	_, _ = s.AddToSet(emps, e4)
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.IndexLookup(emps, []string{"salary"}, directory.NumberKey(100)); len(got) != 2 {
		t.Errorf("lookup(100) after add = %v", got)
	}
	// Historical lookup: at the first commit, e2 had salary 200.
	_ = s.SetTimeDial(1)
	if got, _ := s.IndexLookup(emps, []string{"salary"}, directory.NumberKey(200)); len(got) != 2 {
		t.Errorf("dialed lookup(200) = %v", got)
	}
	_ = s.SetTimeDial(oop.TimeNow)
	// Range query.
	// Salaries now: e1=100, e2=300, e3=200, e4=100.
	lo := directory.NumberKey(150)
	members, ok := s.IndexRange(emps, []string{"salary"}, &lo, nil, true, true)
	if !ok || len(members) != 2 {
		t.Errorf("range [150,inf) = %v", members)
	}
	_ = e1
}

func TestIndexNestedPathDependency(t *testing.T) {
	// Index employees by dept!name where name is a String object: the §6
	// "nested element as discriminator" case, including re-keying when the
	// *nested* object changes.
	db := openDB(t)
	s := sysSession(t, db)
	world, _ := s.Global("World")
	emps, _ := s.NewObject(db.Kernel().Set)
	_ = s.Store(world, s.Symbol("emps"), emps)
	dept, _ := s.NewObject(db.Kernel().Dictionary)
	dname, _ := s.NewString("Sales")
	_ = s.Store(dept, s.Symbol("name"), dname)
	e, _ := s.NewObject(db.Kernel().Object)
	_ = s.Store(e, s.Symbol("dept"), dept)
	_, _ = s.AddToSet(emps, e)
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateIndex(emps, []string{"dept", "name"}); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.IndexLookup(emps, []string{"dept", "name"}, directory.StringKey("Sales")); len(got) != 1 {
		t.Fatal("initial nested lookup failed")
	}
	// Rename the department by mutating the shared String: the index key
	// must follow even though neither the set nor the member was written.
	if err := s.SetBytes(dname, []byte("Marketing")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.IndexLookup(emps, []string{"dept", "name"}, directory.StringKey("Sales")); len(got) != 0 {
		t.Error("stale key after nested byte change")
	}
	if got, _ := s.IndexLookup(emps, []string{"dept", "name"}, directory.StringKey("Marketing")); len(got) != 1 {
		t.Error("new key missing after nested byte change")
	}
	// Swap the dept object itself.
	dept2, _ := s.NewObject(db.Kernel().Dictionary)
	dname2, _ := s.NewString("Research")
	_ = s.Store(dept2, s.Symbol("name"), dname2)
	_ = s.Store(e, s.Symbol("dept"), dept2)
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.IndexLookup(emps, []string{"dept", "name"}, directory.StringKey("Research")); len(got) != 1 {
		t.Error("re-keying after intermediate swap failed")
	}
	// And the old history is still queryable.
	_ = s.SetTimeDial(1)
	if got, _ := s.IndexLookup(emps, []string{"dept", "name"}, directory.StringKey("Sales")); len(got) != 1 {
		t.Error("historical nested lookup failed")
	}
}

func TestIndexRebuildOnReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := db.NewSession(auth.SystemUser, "swordfish")
	world, _ := s.Global("World")
	emps, _ := s.NewObject(db.Kernel().Set)
	_ = s.Store(world, s.Symbol("emps"), emps)
	var e oop.OOP
	for i := int64(1); i <= 3; i++ {
		e, _ = s.NewObject(db.Kernel().Object)
		_ = s.Store(e, s.Symbol("salary"), oop.MustInt(i*100))
		_, _ = s.AddToSet(emps, e)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateIndex(emps, []string{"salary"}); err != nil {
		t.Fatal(err)
	}
	// A post-index change, so the rebuilt index must include history.
	_ = s.Store(e, s.Symbol("salary"), oop.MustInt(999))
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	s2, _ := db2.NewSession(auth.SystemUser, "swordfish")
	if got, ok := s2.IndexLookup(emps, []string{"salary"}, directory.NumberKey(999)); !ok || len(got) != 1 {
		t.Errorf("rebuilt index lookup(999) = %v %v", got, ok)
	}
	if got, _ := s2.IndexLookup(emps, []string{"salary"}, directory.NumberKey(300)); len(got) != 0 {
		t.Errorf("rebuilt index lookup(300) = %v", got)
	}
	_ = s2.SetTimeDial(1)
	if got, _ := s2.IndexLookup(emps, []string{"salary"}, directory.NumberKey(300)); len(got) != 1 {
		t.Errorf("rebuilt historical lookup(300) = %v", got)
	}
	// Maintenance continues after reopen.
	_ = s2.SetTimeDial(oop.TimeNow)
	e4, _ := s2.NewObject(db2.Kernel().Object)
	_ = s2.Store(e4, s2.Symbol("salary"), oop.MustInt(500))
	_, _ = s2.AddToSet(emps, e4)
	if _, err := s2.Commit(); err != nil {
		t.Fatal(err)
	}
	if got, _ := s2.IndexLookup(emps, []string{"salary"}, directory.NumberKey(500)); len(got) != 1 {
		t.Error("index not maintained after reopen")
	}
}

func TestFloatRoundTrip(t *testing.T) {
	db := openDB(t)
	s := sysSession(t, db)
	f, err := s.NewFloat(3.14159)
	if err != nil {
		t.Fatal(err)
	}
	world, _ := s.Global("World")
	_ = s.Store(world, s.Symbol("pi"), f)
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	v, err := s.FloatValue(f)
	if err != nil || v != 3.14159 {
		t.Errorf("FloatValue = %v %v", v, err)
	}
	if s.ClassOf(f) != db.Kernel().Float {
		t.Error("float class wrong")
	}
}

func TestOptionalInstanceVariables(t *testing.T) {
	// §4.3: "optional instance variables, without a storage penalty ... and
	// the ability to add new variables to existing instances".
	db := openDB(t)
	s := sysSession(t, db)
	world, _ := s.Global("World")
	a, _ := s.NewObject(db.Kernel().Object)
	b, _ := s.NewObject(db.Kernel().Object)
	_ = s.Store(a, s.Symbol("middleName"), oop.MustInt(1)) // only a has it
	_ = s.Store(world, s.Symbol("a"), a)
	_ = s.Store(world, s.Symbol("b"), b)
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	an, _ := s.ElementNames(a)
	bn, _ := s.ElementNames(b)
	if len(an) != 1 || len(bn) != 0 {
		t.Errorf("element counts: a=%d b=%d", len(an), len(bn))
	}
	// Adding a new variable to an existing instance later.
	_ = s.Store(b, s.Symbol("extra"), oop.True)
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := s.Fetch(b, s.Symbol("extra")); !ok || v != oop.True {
		t.Error("late-added variable missing")
	}
}

func TestHeterogeneousValues(t *testing.T) {
	// §5.2: AssignedTo may hold an employee, a department, or a set.
	db := openDB(t)
	s := sysSession(t, db)
	world, _ := s.Global("World")
	car, _ := s.NewObject(db.Kernel().Object)
	_ = s.Store(world, s.Symbol("car"), car)
	at := s.Symbol("assignedTo")
	emp, _ := s.NewObject(db.Kernel().Object)
	_ = s.Store(car, at, emp)
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	deptSet, _ := s.NewObject(db.Kernel().Set)
	_ = s.Store(car, at, deptSet)
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	_ = s.Store(car, at, oop.MustInt(7)) // even a simple value
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := s.FetchAt(car, at, 1); v != emp {
		t.Error("assignedTo@1")
	}
	if v, _, _ := s.FetchAt(car, at, 2); v != deptSet {
		t.Error("assignedTo@2")
	}
	if v, _, _ := s.Fetch(car, at); v != oop.MustInt(7) {
		t.Error("assignedTo now")
	}
}

func TestConcurrentSessionsThroughput(t *testing.T) {
	db := openDB(t)
	s := sysSession(t, db)
	world, _ := s.Global("World")
	// Disjoint counters: no conflicts expected.
	const workers = 4
	syms := make([]oop.OOP, workers)
	for i := range syms {
		syms[i] = s.Symbol(fmt.Sprintf("ctr%d", i))
		_ = s.Store(world, syms[i], oop.MustInt(0))
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			sess, err := db.NewSession(auth.SystemUser, "swordfish")
			if err != nil {
				done <- err
				return
			}
			for i := 0; i < 10; i++ {
				ctr, _ := sess.NewObject(db.Kernel().Object)
				_ = sess.Store(ctr, syms[w], oop.MustInt(int64(i)))
				if _, err := sess.Commit(); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestTransientWorkspaceSemantics(t *testing.T) {
	db := openDB(t)
	s := sysSession(t, db)
	// An unattached object is never committed ("an entire session
	// workspace can be discarded", §6).
	orphan, err := s.NewObject(db.Kernel().Object)
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Store(orphan, s.Symbol("v"), oop.MustInt(1))
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if db.Store().Exists(orphan) {
		t.Error("unattached transient was committed")
	}
	// But it remains usable within the session across commits.
	if v, _, err := s.Fetch(orphan, s.Symbol("v")); err != nil || v != oop.MustInt(1) {
		t.Errorf("transient unreadable after commit: %v %v", v, err)
	}
	// Attaching promotes it (and everything it references).
	child, _ := s.NewObject(db.Kernel().Object)
	_ = s.Store(child, s.Symbol("x"), oop.MustInt(2))
	_ = s.Store(orphan, s.Symbol("child"), child)
	world, _ := s.Global("World")
	_ = s.Store(world, s.Symbol("adopted"), orphan)
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if !db.Store().Exists(orphan) || !db.Store().Exists(child) {
		t.Error("promotion did not reach the transitive closure")
	}
	// A fresh session sees the whole graph.
	s2 := sysSession(t, db)
	a, _, _ := s2.Fetch(world, s2.Symbol("adopted"))
	c, _, _ := s2.Fetch(a, s2.Symbol("child"))
	if v, _, _ := s2.Fetch(c, s2.Symbol("x")); v != oop.MustInt(2) {
		t.Error("promoted graph unreadable")
	}
}

func TestPromotionSurvivesAbort(t *testing.T) {
	db := openDB(t)
	s := sysSession(t, db)
	obj, _ := s.NewObject(db.Kernel().Object)
	_ = s.Store(obj, s.Symbol("v"), oop.MustInt(7))
	world, _ := s.Global("World")
	_ = s.Store(world, s.Symbol("o"), obj) // promotes obj
	s.Abort()
	// The abort demoted obj back to the transient space: still readable,
	// not committed.
	if v, _, err := s.Fetch(obj, s.Symbol("v")); err != nil || v != oop.MustInt(7) {
		t.Errorf("demoted transient lost: %v %v", v, err)
	}
	if db.Store().Exists(obj) {
		t.Error("aborted promotion leaked to the store")
	}
	// Re-attach and commit for real.
	_ = s.Store(world, s.Symbol("o"), obj)
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if !db.Store().Exists(obj) {
		t.Error("re-promotion failed")
	}
}

func TestArchiveAdmin(t *testing.T) {
	db := openDB(t)
	s := sysSession(t, db)
	world, _ := s.Global("World")
	doc, _ := s.NewObject(db.Kernel().Object)
	_ = s.Store(doc, s.Symbol("v"), oop.MustInt(9))
	_ = s.Store(world, s.Symbol("doc"), doc)
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Archive([]oop.OOP{doc}); err != nil {
		t.Fatal(err)
	}
	// Attached archive: still readable.
	if _, _, err := s.Fetch(doc, s.Symbol("v")); err != nil {
		t.Errorf("archived object with medium attached: %v", err)
	}
	if err := s.DetachArchive(); err != nil {
		t.Fatal(err)
	}
	// The shared cache may still hold it; a reopen-level check is in the
	// store tests. Here verify non-admins cannot archive.
	if err := s.CreateUser("clerk", "pw"); err != nil {
		t.Fatal(err)
	}
	cs, err := db.NewSession("clerk", "pw")
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Archive([]oop.OOP{doc}); !errors.Is(err, auth.ErrDenied) {
		t.Errorf("clerk archived: %v", err)
	}
	if err := cs.DetachArchive(); !errors.Is(err, auth.ErrDenied) {
		t.Errorf("clerk detached: %v", err)
	}
}

// TestCommitCrashRecoveryAtCoreLevel drives the full session → Linker →
// store pipeline with an injected storage crash: the transaction must fail
// cleanly, consume no transaction time, leave maintained directories
// consistent with the committed state, and allow an immediate retry.
func TestCommitCrashRecoveryAtCoreLevel(t *testing.T) {
	crash := ""
	db, err := Open(t.TempDir(), Options{Store: store.Options{
		TrackSize: 1024,
		FailPoint: func(step string) error {
			if step == crash {
				return errors.New("injected")
			}
			return nil
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := sysSession(t, db)
	world, _ := s.Global("World")
	emps, _ := s.NewObject(db.Kernel().Set)
	_ = s.Store(world, s.Symbol("emps"), emps)
	e1, _ := s.NewObject(db.Kernel().Object)
	_ = s.Store(e1, s.Symbol("salary"), oop.MustInt(100))
	_, _ = s.AddToSet(emps, e1)
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateIndex(emps, []string{"salary"}); err != nil {
		t.Fatal(err)
	}
	before := db.TxnManager().LastCommitted()

	// Crash during the durable apply of the next commit.
	crash = "after-data"
	e2, _ := s.NewObject(db.Kernel().Object)
	_ = s.Store(e2, s.Symbol("salary"), oop.MustInt(200))
	_, _ = s.AddToSet(emps, e2)
	if _, err := s.Commit(); err == nil {
		t.Fatal("crashing commit reported success")
	}
	crash = ""
	if got := db.TxnManager().LastCommitted(); got != before {
		t.Errorf("failed commit consumed a transaction time: %v -> %v", before, got)
	}
	// The directory still reflects only the committed state.
	if got, _ := s.IndexLookup(emps, []string{"salary"}, directory.NumberKey(200)); len(got) != 0 {
		t.Errorf("directory leaked uncommitted entry: %v", got)
	}
	if got, _ := s.IndexLookup(emps, []string{"salary"}, directory.NumberKey(100)); len(got) != 1 {
		t.Errorf("directory lost committed entry: %v", got)
	}
	// The session retries successfully (e2 was demoted back to transient).
	_, _ = s.AddToSet(emps, e2)
	if _, err := s.Commit(); err != nil {
		t.Fatalf("retry after crash: %v", err)
	}
	if got, _ := s.IndexLookup(emps, []string{"salary"}, directory.NumberKey(200)); len(got) != 1 {
		t.Errorf("directory missing retried entry: %v", got)
	}
}
