package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/directory"
	"repro/internal/object"
	"repro/internal/oop"
	"repro/internal/store"
)

// maintained is one live directory plus the bookkeeping the Linker needs to
// keep it consistent: the current member states and the reverse dependency
// map from objects along key paths to the members whose keys they
// determine. The latter is the paper's "headache ... using a nested element
// as a discriminator" (§6) made explicit.
type maintained struct {
	dir     *directory.Directory
	members map[oop.OOP]memberInfo          // element name -> state
	depends map[uint64]map[oop.OOP]struct{} // chain-object serial -> element names
}

type memberInfo struct {
	member oop.OOP
	key    directory.Key
	chain  []oop.OOP // heap objects the key was computed through
}

func newMaintained(set oop.OOP, path []oop.OOP) *maintained {
	return &maintained{
		dir:     directory.New(set, path),
		members: make(map[oop.OOP]memberInfo),
		depends: make(map[uint64]map[oop.OOP]struct{}),
	}
}

// view reads the object graph in one database state. get must return
// committed (or freshly linked) objects; t selects the state.
type view struct {
	get func(oop.OOP) (*object.Object, error)
	t   oop.Time
}

func (v view) fetch(o, name oop.OOP) (oop.OOP, bool) {
	ob, err := v.get(o)
	if err != nil {
		return oop.Invalid, false
	}
	return ob.FetchAt(name, v.t)
}

// computeKey resolves the directory's key path from member and returns the
// decoded key plus the chain of heap objects the computation depended on.
func (db *DB) computeKey(member oop.OOP, path []oop.OOP, v view) (directory.Key, []oop.OOP) {
	var chain []oop.OOP
	val := member
	for _, p := range path {
		if !val.IsHeap() {
			val = oop.Nil
			break
		}
		chain = append(chain, val)
		next, ok := v.fetch(val, p)
		if !ok {
			next = oop.Nil
		}
		val = next
	}
	if val.IsHeap() {
		chain = append(chain, val)
	}
	return db.decodeKey(val, v), chain
}

// decodeKey turns a value into a self-contained index key.
func (db *DB) decodeKey(val oop.OOP, v view) directory.Key {
	switch {
	case val == oop.Nil || val == oop.Invalid:
		return directory.NilKey()
	case val == oop.True:
		return directory.BoolKey(true)
	case val == oop.False:
		return directory.BoolKey(false)
	case val.IsSmallInt():
		return directory.NumberKey(float64(val.Int()))
	case val.IsCharacter():
		return directory.CharKey(val.Char())
	}
	ob, err := v.get(val)
	if err != nil {
		return directory.OOPKey(val)
	}
	if ob.Format == object.FormatBytes {
		b, ok := ob.BytesAt(v.t)
		if !ok {
			return directory.NilKey()
		}
		if ob.Class == db.kernel.Float && len(b) == 8 {
			return directory.NumberKey(math.Float64frombits(binary.LittleEndian.Uint64(b)))
		}
		return directory.StringKey(string(b))
	}
	return directory.OOPKey(val)
}

// setMembersAt lists the set's element bindings (name -> member) at v.t,
// skipping the hidden alias counter and nil values.
func (db *DB) setMembersAt(set oop.OOP, v view) (map[oop.OOP]oop.OOP, error) {
	ob, err := v.get(set)
	if err != nil {
		return nil, err
	}
	out := make(map[oop.OOP]oop.OOP)
	for _, el := range ob.Elements() {
		if el.Name == db.wk.aliasCounter {
			continue
		}
		if val, ok := el.At(v.t); ok && val != oop.Nil {
			out[el.Name] = val
		}
	}
	return out, nil
}

// enter/leave/recompute keep members and depends consistent with the index.

func (m *maintained) addDeps(name oop.OOP, chain []oop.OOP) {
	for _, c := range chain {
		s := c.Serial()
		if m.depends[s] == nil {
			m.depends[s] = make(map[oop.OOP]struct{})
		}
		m.depends[s][name] = struct{}{}
	}
}

func (m *maintained) dropDeps(name oop.OOP, chain []oop.OOP) {
	for _, c := range chain {
		s := c.Serial()
		if set, ok := m.depends[s]; ok {
			delete(set, name)
			if len(set) == 0 {
				delete(m.depends, s)
			}
		}
	}
}

func (db *DB) dirEnter(m *maintained, name, member oop.OOP, v view, t oop.Time) {
	key, chain := db.computeKey(member, m.dir.Path, v)
	m.dir.Enter(key, name, member, t)
	m.members[name] = memberInfo{member: member, key: key, chain: chain}
	m.addDeps(name, chain)
}

func (db *DB) dirLeave(m *maintained, name oop.OOP, t oop.Time) error {
	mi, ok := m.members[name]
	if !ok {
		return nil
	}
	if err := m.dir.Leave(mi.key, name, mi.member, t); err != nil {
		return err
	}
	m.dropDeps(name, mi.chain)
	delete(m.members, name)
	return nil
}

func (db *DB) dirRecompute(m *maintained, name oop.OOP, v view, t oop.Time) error {
	mi, ok := m.members[name]
	if !ok {
		return nil
	}
	key, chain := db.computeKey(mi.member, m.dir.Path, v)
	if directory.Compare(key, mi.key) != 0 {
		if err := m.dir.Move(mi.key, key, name, mi.member, t); err != nil {
			return err
		}
	}
	m.dropDeps(name, mi.chain)
	mi.key, mi.chain = key, chain
	m.members[name] = mi
	m.addDeps(name, chain)
	return nil
}

// syncMembership diffs the directory's recorded members against the actual
// bindings in state v and applies enters/leaves/changes at time t.
func (db *DB) syncMembership(m *maintained, v view, t oop.Time) error {
	actual, err := db.setMembersAt(m.dir.Set, v)
	if err != nil {
		return err
	}
	// Leaves and enters run in sorted name order so the B-tree takes the
	// same shape — and equal-key members keep the same relative order in
	// lookups — no matter how the maps iterate.
	for _, name := range sortedNames(m.members) {
		val, still := actual[name]
		if !still || val != m.members[name].member {
			if err := db.dirLeave(m, name, t); err != nil {
				return err
			}
		}
	}
	entering := make([]oop.OOP, 0, len(actual))
	for name := range actual {
		entering = append(entering, name)
	}
	sort.Slice(entering, func(i, j int) bool { return entering[i] < entering[j] })
	for _, name := range entering {
		if _, have := m.members[name]; !have {
			db.dirEnter(m, name, actual[name], v, t)
		}
	}
	return nil
}

// sortedNames returns the member element names in ascending OOP order.
func sortedNames(members map[oop.OOP]memberInfo) []oop.OOP {
	names := make([]oop.OOP, 0, len(members))
	for name := range members {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	return names
}

// loadLocked loads a committed object while db.mu is held.
func (db *DB) loadLocked(o oop.OOP) (*object.Object, error) {
	if ob, ok := db.cache[o.Serial()]; ok {
		return ob, nil
	}
	ob, err := db.st.Load(o)
	if err != nil {
		return nil, err
	}
	db.cache[o.Serial()] = ob
	return ob, nil
}

// maintainDirectoriesLocked is the Linker's directory pass, run just after
// a commit's objects land in the cache (db.mu held, commit lock held).
func (db *DB) maintainDirectoriesLocked(ws map[uint64]*object.Object, commit oop.Time) error {
	if len(db.dirs) == 0 {
		return nil
	}
	v := view{get: db.loadLocked, t: commit}
	for _, m := range db.dirs {
		if _, touched := ws[m.dir.Set.Serial()]; touched {
			if err := db.syncMembership(m, v, commit); err != nil {
				return err
			}
		}
		// Members whose key path runs through a written object, in sorted
		// order for deterministic index maintenance.
		var affected []oop.OOP
		for serial := range ws {
			for name := range m.depends[serial] {
				affected = append(affected, name)
			}
		}
		sort.Slice(affected, func(i, j int) bool { return affected[i] < affected[j] })
		for _, name := range affected {
			if err := db.dirRecompute(m, name, v, commit); err != nil {
				return err
			}
		}
	}
	return nil
}

// collectTimes gathers every transaction time at which the key of any
// member of set (along path) could have changed, for history replay.
func (db *DB) collectTimes(set oop.OOP, path []oop.OOP, times map[oop.Time]struct{}) error {
	ob, err := db.loadLocked(set)
	if err != nil {
		return err
	}
	for _, el := range ob.Elements() {
		if el.Name == db.wk.aliasCounter {
			continue
		}
		for _, a := range el.Hist {
			times[a.T] = struct{}{}
			if a.Value.IsHeap() {
				if err := db.collectChainTimes(a.Value, path, times, map[uint64]bool{}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (db *DB) collectChainTimes(o oop.OOP, path []oop.OOP, times map[oop.Time]struct{}, seen map[uint64]bool) error {
	if seen[o.Serial()] {
		return nil
	}
	seen[o.Serial()] = true
	ob, err := db.loadLocked(o)
	if err != nil {
		// The object may be archived or unreachable; its key decodes as
		// identity, which never changes.
		return nil
	}
	if len(path) == 0 {
		// Terminal key object: byte-version changes re-key the member.
		for _, bv := range ob.ByteVersions() {
			times[bv.T] = struct{}{}
		}
		return nil
	}
	if e := ob.Element(path[0]); e != nil {
		for _, a := range e.Hist {
			times[a.T] = struct{}{}
			if a.Value.IsHeap() {
				if err := db.collectChainTimes(a.Value, path[1:], times, seen); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// rebuildDirectory reconstructs a directory — including every historical
// interval — by replaying the committed history of the indexed set and the
// objects along its key paths. Directories are rebuilt on database open and
// on index creation; the resulting index answers lookups at any time dial.
func (db *DB) rebuildDirectory(set oop.OOP, path []oop.OOP) (*maintained, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	m := newMaintained(set, path)
	times := map[oop.Time]struct{}{}
	if err := db.collectTimes(set, path, times); err != nil {
		if errors.Is(err, store.ErrNotFound) {
			return m, nil
		}
		return nil, err
	}
	ordered := make([]oop.Time, 0, len(times))
	for t := range times {
		ordered = append(ordered, t)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	for _, t := range ordered {
		v := view{get: db.loadLocked, t: t}
		if err := db.syncMembership(m, v, t); err != nil {
			return nil, err
		}
		// Keys of continuing members may have changed at t.
		for _, name := range sortedNames(m.members) {
			if err := db.dirRecompute(m, name, v, t); err != nil {
				return nil, err
			}
		}
	}
	return m, nil
}

// CreateIndex registers a directory on set keyed by the element-name path
// (the OPAL storage "hint", §6), builds it from committed history, and
// persists the definition.
func (s *Session) CreateIndex(set oop.OOP, path []string) error {
	if len(path) == 0 {
		return fmt.Errorf("core: index path must have at least one element name")
	}
	syms := make([]oop.OOP, len(path))
	for i, p := range path {
		syms[i] = s.db.SymbolFor(p)
	}
	s.db.mu.RLock()
	for _, m := range s.db.dirs {
		if m.dir.Set == set && pathEqual(m.dir.Path, syms) {
			s.db.mu.RUnlock()
			return fmt.Errorf("core: index on %v by %v already exists", set, path)
		}
	}
	s.db.mu.RUnlock()
	m, err := s.db.rebuildDirectory(set, syms)
	if err != nil {
		return err
	}
	s.db.mu.Lock()
	s.db.dirs = append(s.db.dirs, m)
	s.db.mu.Unlock()
	return s.db.persistDirectories()
}

func pathEqual(a, b []oop.OOP) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FindIndex returns the directory on set whose path matches, if one is
// maintained (used by the query optimizer).
func (s *Session) FindIndex(set oop.OOP, path []string) (*directory.Directory, bool) {
	syms := make([]oop.OOP, len(path))
	for i, p := range path {
		syms[i] = s.db.SymbolFor(p)
	}
	s.db.mu.RLock()
	defer s.db.mu.RUnlock()
	for _, m := range s.db.dirs {
		if m.dir.Set == set && pathEqual(m.dir.Path, syms) {
			return m.dir, true
		}
	}
	return nil, false
}

// ErrNoDirectory reports an index operation against a set/path pair with no
// maintained directory — for example one dropped between planning and
// execution. Callers must surface it rather than treat it as zero rows.
var ErrNoDirectory = errors.New("core: no maintained directory for set/path")

// IndexLookup returns the members of set bound under the given key in the
// session's current view, using a maintained directory.
func (s *Session) IndexLookup(set oop.OOP, path []string, key directory.Key) ([]oop.OOP, bool) {
	out := []oop.OOP{}
	if err := s.IndexLookupFunc(set, path, key, func(m oop.OOP) error {
		out = append(out, m)
		return nil
	}); err != nil {
		return nil, false
	}
	return out, true
}

// IndexLookupFunc streams the members of set bound under key to fn through
// a maintained directory, in directory entry order. It returns
// ErrNoDirectory (wrapped) when no directory covers the set/path pair, and
// otherwise the first error from fn.
func (s *Session) IndexLookupFunc(set oop.OOP, path []string, key directory.Key, fn func(oop.OOP) error) error {
	d, ok := s.FindIndex(set, path)
	if !ok {
		return fmt.Errorf("%w: %v by %v", ErrNoDirectory, set, path)
	}
	s.db.met.indexLookups.Inc()
	s.db.met.cursorOpens.Inc()
	s.recordRead(set)
	return d.LookupFunc(key, s.readTime(), func(e directory.Entry) error {
		s.db.met.cursorMembers.Inc()
		return fn(e.Member)
	})
}

// IndexRange returns members with keys in [lo,hi] bounds (nil = unbounded).
func (s *Session) IndexRange(set oop.OOP, path []string, lo, hi *directory.Key, loInc, hiInc bool) ([]oop.OOP, bool) {
	out := []oop.OOP{}
	if err := s.IndexRangeFunc(set, path, lo, hi, loInc, hiInc, func(m oop.OOP) error {
		out = append(out, m)
		return nil
	}); err != nil {
		return nil, false
	}
	return out, true
}

// IndexRangeFunc streams members with keys in [lo,hi] bounds (nil =
// unbounded) to fn in ascending key order. It returns ErrNoDirectory
// (wrapped) when no directory covers the set/path pair, and otherwise the
// first error from fn.
func (s *Session) IndexRangeFunc(set oop.OOP, path []string, lo, hi *directory.Key, loInc, hiInc bool, fn func(oop.OOP) error) error {
	d, ok := s.FindIndex(set, path)
	if !ok {
		return fmt.Errorf("%w: %v by %v", ErrNoDirectory, set, path)
	}
	s.db.met.indexLookups.Inc()
	s.db.met.cursorOpens.Inc()
	s.recordRead(set)
	return d.RangeFunc(lo, hi, loInc, hiInc, s.readTime(), func(e directory.Entry) error {
		s.db.met.cursorMembers.Inc()
		return fn(e.Member)
	})
}

// DropIndex removes the maintained directory on set keyed by path and
// persists the change. In-flight plans that chose the directory fail their
// next probe with ErrNoDirectory instead of silently reading zero rows.
func (s *Session) DropIndex(set oop.OOP, path []string) error {
	syms := make([]oop.OOP, len(path))
	for i, p := range path {
		syms[i] = s.db.SymbolFor(p)
	}
	s.db.mu.Lock()
	found := false
	kept := make([]*maintained, 0, len(s.db.dirs))
	for _, m := range s.db.dirs {
		if m.dir.Set == set && pathEqual(m.dir.Path, syms) {
			found = true
			continue
		}
		kept = append(kept, m)
	}
	s.db.dirs = kept
	s.db.mu.Unlock()
	if !found {
		return fmt.Errorf("%w: %v by %v", ErrNoDirectory, set, path)
	}
	return s.db.persistDirectories()
}

// --- Out-of-band system state persistence ---

// internalApply durably rewrites system bookkeeping objects (auth state,
// directory definitions) without consuming a transaction time.
func (db *DB) internalApply(objs []*object.Object) error {
	if err := db.st.Apply(store.Commit{
		Objects:    objs,
		NextSerial: db.serialHighWater(),
		Time:       db.txm.LastCommitted(),
	}); err != nil {
		return err
	}
	db.mu.Lock()
	for _, ob := range objs {
		db.cache[ob.OOP.Serial()] = ob
	}
	db.mu.Unlock()
	return nil
}

func (db *DB) systemByteObject(slot int64) (*object.Object, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	root, err := db.loadLocked(db.sysRoot)
	if err != nil {
		return nil, err
	}
	o, ok := root.Fetch(oop.MustInt(slot))
	if !ok {
		return nil, fmt.Errorf("core: system root slot %d missing", slot)
	}
	ob, err := db.loadLocked(o)
	if err != nil {
		return nil, err
	}
	return ob.Clone(), nil
}

// persistAuth rewrites the durable authorization state.
func (db *DB) persistAuth() error {
	ob, err := db.systemByteObject(rootSlotAuth)
	if err != nil {
		return err
	}
	t := db.txm.LastCommitted()
	if err := ob.SetBytes(t, gobEncode(db.auth.Export())); err != nil {
		return err
	}
	return db.internalApply([]*object.Object{ob})
}

// persistDirectories rewrites the durable directory definitions.
func (db *DB) persistDirectories() error {
	db.mu.RLock()
	defs := make([]dirDefGob, 0, len(db.dirs))
	for _, m := range db.dirs {
		d := dirDefGob{Set: m.dir.Set.Serial()}
		for _, p := range m.dir.Path {
			d.Path = append(d.Path, p.Serial())
		}
		defs = append(defs, d)
	}
	db.mu.RUnlock()
	ob, err := db.systemByteObject(rootSlotDirs)
	if err != nil {
		return err
	}
	t := db.txm.LastCommitted()
	if err := ob.SetBytes(t, gobEncode(defs)); err != nil {
		return err
	}
	return db.internalApply([]*object.Object{ob})
}
