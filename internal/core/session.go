package core

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/auth"
	"repro/internal/object"
	"repro/internal/oop"
	"repro/internal/store"
	"repro/internal/txn"
)

// ErrReadOnlyDial reports a write attempted while the time dial is set to a
// past state.
var ErrReadOnlyDial = errors.New("core: time dial set to a past state; writes forbidden")

// ErrNotAnObject reports an operation on an immediate value that needs a
// heap object.
var ErrNotAnObject = errors.New("core: not a heap object")

// Session is one user's connection to the database: a private object space
// over the shared committed store, with optimistic transaction semantics
// and a time dial for historical reads (paper §5.4, §6).
type Session struct {
	db      *DB
	user    string
	homeSeg object.SegmentID
	tx      txn.Txn
	dial    oop.Time // TimeNow means "current state"

	ws     map[uint64]*object.Object // persistent objects with pending writes
	reads  map[oop.OOP]struct{}
	writes map[oop.OOP]struct{}

	// transients are session-private objects not yet attached to any
	// persistent object. They are never validated, never committed, and
	// simply discarded with the session — "an entire session workspace can
	// be discarded at the end of a session" (paper §6), which is how OPAL
	// temporaries avoid both garbage collection and database growth. A
	// transient is promoted into the workspace (with everything it
	// references) the moment it is stored into a persistent object.
	transients map[uint64]*object.Object
	// promoted tracks transients promoted during the current transaction,
	// so an abort can demote them instead of losing them.
	promoted map[uint64]*object.Object

	// ctx, when non-nil, bounds the current request: long-running scans and
	// the interpreter poll it and abandon work once it is cancelled. It is
	// set per-request by the session's owner (see SetContext) and cleared
	// when the request returns; it never outlives a request.
	ctx context.Context
	// ctxPoll amortizes context polling: pollCancel consults ctx.Err() only
	// every pollInterval-th call, so per-member scan cost stays flat.
	ctxPoll uint32
}

// pollInterval is how many pollCancel calls pass between real ctx.Err()
// checks. Power of two so the modulus is a mask.
const pollInterval = 64

// NewSession authenticates a user and begins a transaction.
func (db *DB) NewSession(user, password string) (*Session, error) {
	if err := db.auth.Authenticate(user, password); err != nil {
		return nil, err
	}
	home, err := db.auth.HomeSegment(user)
	if err != nil {
		return nil, err
	}
	s := &Session{db: db, user: user, homeSeg: home, dial: oop.TimeNow,
		transients: make(map[uint64]*object.Object)}
	s.begin()
	return s, nil
}

func (s *Session) begin() {
	s.tx = s.db.txm.Begin()
	s.ws = make(map[uint64]*object.Object)
	s.reads = make(map[oop.OOP]struct{})
	s.writes = make(map[oop.OOP]struct{})
	s.promoted = make(map[uint64]*object.Object)
}

// SetContext bounds the session's next request by ctx: scans
// (MembersFunc, MemberCount), the OPAL interpreter loop and CommitCtx
// abandon work once ctx is cancelled. Pass nil to clear. The session is
// single-goroutine, so this is set by the owner between requests, never
// concurrently with one.
func (s *Session) SetContext(ctx context.Context) {
	s.ctx = ctx
	s.ctxPoll = 0
}

// Context returns the request context set by SetContext, or nil.
func (s *Session) Context() context.Context { return s.ctx }

// CancelErr reports whether the session's request context has been
// cancelled, wrapping the cause (context.DeadlineExceeded or
// context.Canceled) so callers can classify it with errors.Is.
func (s *Session) CancelErr() error {
	if s.ctx == nil {
		return nil
	}
	if err := s.ctx.Err(); err != nil {
		return fmt.Errorf("core: request interrupted: %w", err)
	}
	return nil
}

// pollCancel is the amortized form of CancelErr for per-element loops:
// it consults the context only every pollInterval-th call.
func (s *Session) pollCancel() error {
	if s.ctx == nil {
		return nil
	}
	s.ctxPoll++
	if s.ctxPoll&(pollInterval-1) != 0 {
		return nil
	}
	return s.CancelErr()
}

// User returns the session's user name.
func (s *Session) User() string { return s.user }

// DB returns the owning database.
func (s *Session) DB() *DB { return s.db }

// Snapshot returns the committed state this transaction reads.
func (s *Session) Snapshot() oop.Time { return s.tx.Snapshot }

// --- Time dial ---

// SetTimeDial points subsequent reads at the database state at t
// (paper §5.4: "Setting the time dial to time T is the same as appending
// @T to each component in a path expression"). Pass oop.TimeNow to return
// to the current state. Dialing past the last committed time is an error.
func (s *Session) SetTimeDial(t oop.Time) error {
	if !t.IsNow() && t > s.db.txm.LastCommitted() {
		return fmt.Errorf("core: time %v is in the future (last committed %v)", t, s.db.txm.LastCommitted())
	}
	s.dial = t
	return nil
}

// TimeDial returns the current dial setting.
func (s *Session) TimeDial() oop.Time { return s.dial }

// SafeTime returns the most recent state no running transaction can change.
func (s *Session) SafeTime() oop.Time { return s.db.txm.SafeTime() }

// readTime is the effective time for "current" reads.
func (s *Session) readTime() oop.Time {
	if s.dial.IsNow() {
		return s.tx.Snapshot
	}
	return s.dial
}

// --- Object access ---

// lookup returns the session's view of an object: its workspace copy if it
// has one, else the shared committed version (not to be mutated).
func (s *Session) lookup(o oop.OOP) (ob *object.Object, own bool, err error) {
	if !o.IsHeap() {
		return nil, false, fmt.Errorf("%w: %v", ErrNotAnObject, o)
	}
	if ob, ok := s.ws[o.Serial()]; ok {
		return ob, true, nil
	}
	if ob, ok := s.transients[o.Serial()]; ok {
		return ob, true, nil
	}
	ob, err = s.db.loadCommitted(o)
	if err != nil {
		return nil, false, err
	}
	if err := s.db.auth.CheckRead(s.user, ob.Seg); err != nil {
		return nil, false, err
	}
	return ob, false, nil
}

// Object returns the session's view of o for read-only inspection.
func (s *Session) Object(o oop.OOP) (*object.Object, error) {
	ob, _, err := s.lookup(o)
	return ob, err
}

// recordRead notes a current-state read for optimistic validation. Reads of
// explicitly dialed past states are immutable and need no validation.
func (s *Session) recordRead(o oop.OOP) {
	if s.dial.IsNow() {
		s.reads[o] = struct{}{}
	}
}

// fetchFrom reads the named element from a session view at time t,
// honouring pending (uncommitted) writes in workspace copies.
func fetchFrom(ob *object.Object, own bool, name oop.OOP, t oop.Time) (oop.OOP, bool) {
	if own {
		if e := ob.Element(name); e != nil {
			if n := len(e.Hist); n > 0 && e.Hist[n-1].T == object.PendingTime {
				return e.Hist[n-1].Value, true
			}
		}
	}
	return ob.FetchAt(name, t)
}

// Fetch reads the value of obj's element name in the session's current
// view (snapshot plus the session's own pending writes, or the dialed past
// state). A missing element reads as (nil, false, nil).
func (s *Session) Fetch(obj, name oop.OOP) (oop.OOP, bool, error) {
	ob, own, err := s.lookup(obj)
	if err != nil {
		return oop.Invalid, false, err
	}
	s.recordRead(obj)
	v, ok := fetchFrom(ob, own, name, s.readTime())
	return v, ok, nil
}

// FetchAt reads the element in the state at an explicit time t, ignoring
// the dial (the @T path operator).
func (s *Session) FetchAt(obj, name oop.OOP, t oop.Time) (oop.OOP, bool, error) {
	ob, own, err := s.lookup(obj)
	if err != nil {
		return oop.Invalid, false, err
	}
	if t.IsNow() {
		s.recordRead(obj)
		t = s.readTime()
	}
	v, ok := fetchFrom(ob, own, name, t)
	return v, ok, nil
}

// modifiable returns a workspace copy of obj, cloning the committed version
// on first write.
func (s *Session) modifiable(obj oop.OOP) (*object.Object, error) {
	// Session-private transients may be built and mutated even under a
	// dialed session (they are not part of any database state); only
	// persistent objects are frozen by the time dial.
	if ob, ok := s.transients[obj.Serial()]; ok {
		return ob, nil
	}
	if !s.dial.IsNow() {
		return nil, ErrReadOnlyDial
	}
	if ob, ok := s.ws[obj.Serial()]; ok {
		return ob, nil
	}
	ob, err := s.db.loadCommitted(obj)
	if err != nil {
		return nil, err
	}
	if err := s.db.auth.CheckWrite(s.user, ob.Seg); err != nil {
		return nil, err
	}
	clone := ob.Clone()
	s.ws[obj.Serial()] = clone
	s.reads[obj] = struct{}{}
	s.writes[obj] = struct{}{}
	return clone, nil
}

// promote attaches a transient object (and, transitively, every transient
// it references) to the persistent workspace so it will be committed.
func (s *Session) promote(v oop.OOP) {
	if !v.IsHeap() {
		return
	}
	ob, ok := s.transients[v.Serial()]
	if !ok {
		return
	}
	delete(s.transients, v.Serial())
	s.ws[v.Serial()] = ob
	s.writes[v] = struct{}{}
	s.promoted[v.Serial()] = ob
	for _, el := range ob.Elements() {
		for _, a := range el.Hist {
			s.promote(a.Value)
		}
	}
}

// isPersistent reports whether obj is already in the durable graph (or the
// dirty workspace), as opposed to a session transient.
func (s *Session) isPersistent(obj oop.OOP) bool {
	if _, transient := s.transients[obj.Serial()]; transient {
		return false
	}
	return true
}

// Store records value as the new value of obj's element name. Storing a
// transient into a persistent object promotes the transient.
func (s *Session) Store(obj, name, value oop.OOP) error {
	ob, err := s.modifiable(obj)
	if err != nil {
		return err
	}
	if err := ob.Store(name, object.PendingTime, value); err != nil {
		return err
	}
	if s.isPersistent(obj) {
		s.promote(value)
	}
	return nil
}

// Remove records nil for the element — the model's replacement for
// deletion; the history remains.
func (s *Session) Remove(obj, name oop.OOP) error {
	return s.Store(obj, name, oop.Nil)
}

// HistoryEntry is one committed association of an element's history.
type HistoryEntry struct {
	T     oop.Time
	Value oop.OOP
}

// History returns the committed history of obj's element name, oldest
// first: the paper's association table (§6) as data. Pending (uncommitted)
// writes are excluded; times above the session's dial are included (history
// inspection is explicitly temporal).
func (s *Session) History(obj, name oop.OOP) ([]HistoryEntry, error) {
	ob, _, err := s.lookup(obj)
	if err != nil {
		return nil, err
	}
	e := ob.Element(name)
	if e == nil {
		return nil, nil
	}
	out := make([]HistoryEntry, 0, len(e.Hist))
	for _, a := range e.Hist {
		if a.T >= object.PendingTime {
			continue
		}
		out = append(out, HistoryEntry{T: a.T, Value: a.Value})
	}
	return out, nil
}

// ElementNames lists the names bound to non-nil values in the session's
// current view of obj, in insertion order.
func (s *Session) ElementNames(obj oop.OOP) ([]oop.OOP, error) {
	ob, own, err := s.lookup(obj)
	if err != nil {
		return nil, err
	}
	s.recordRead(obj)
	t := s.readTime()
	var names []oop.OOP
	for _, el := range ob.Elements() {
		if v, ok := fetchFrom(ob, own, el.Name, t); ok && v != oop.Nil {
			names = append(names, el.Name)
		}
	}
	return names, nil
}

// ClassOf returns the class of any value, immediates included.
func (s *Session) ClassOf(o oop.OOP) oop.OOP {
	k := s.db.kernel
	switch {
	case o == oop.Nil:
		return k.UndefinedObject
	case o == oop.True:
		return k.TrueClass
	case o == oop.False:
		return k.FalseClass
	case o.IsSmallInt():
		return k.SmallInteger
	case o.IsCharacter():
		return k.Character
	}
	ob, _, err := s.lookup(o)
	if err != nil {
		return k.Object
	}
	return ob.Class
}

// --- Creation ---

// NewObject instantiates class, giving the instance a fresh permanent
// identity in the user's home segment.
func (s *Session) NewObject(class oop.OOP) (oop.OOP, error) {
	return s.NewObjectIn(class, s.homeSeg)
}

// NewObjectIn instantiates class in an explicit segment.
func (s *Session) NewObjectIn(class oop.OOP, seg object.SegmentID) (oop.OOP, error) {
	if err := s.db.auth.CheckWrite(s.user, seg); err != nil {
		return oop.Invalid, err
	}
	format := object.FormatNamed
	if f, ok, err := s.Fetch(class, s.db.wk.format); err == nil && ok && f.IsSmallInt() {
		format = object.Format(f.Int())
	}
	o := oop.FromSerial(s.db.allocSerial())
	ob := object.New(o, class, seg, format)
	s.transients[o.Serial()] = ob
	return o, nil
}

// NewSharedObject instantiates class in the published, world-writable
// segment — the home of World — so every user can read and update it.
func (s *Session) NewSharedObject(class oop.OOP) (oop.OOP, error) {
	return s.NewObjectIn(class, s.db.pubSeg)
}

// HomeSegment returns the session user's default segment.
func (s *Session) HomeSegment() object.SegmentID { return s.homeSeg }

// NewString creates a String object with the given contents.
func (s *Session) NewString(str string) (oop.OOP, error) {
	o, err := s.NewObjectIn(s.db.kernel.String, s.homeSeg)
	if err != nil {
		return oop.Invalid, err
	}
	if err := s.transients[o.Serial()].SetBytes(object.PendingTime, []byte(str)); err != nil {
		return oop.Invalid, err
	}
	return o, nil
}

// SetBytes replaces the byte payload of a byte object.
func (s *Session) SetBytes(obj oop.OOP, b []byte) error {
	ob, err := s.modifiable(obj)
	if err != nil {
		return err
	}
	return ob.SetBytes(object.PendingTime, append([]byte(nil), b...))
}

// BytesOf returns the byte payload in the session's current view.
func (s *Session) BytesOf(obj oop.OOP) ([]byte, error) {
	ob, own, err := s.lookup(obj)
	if err != nil {
		return nil, err
	}
	s.recordRead(obj)
	if own {
		if vs := ob.ByteVersions(); len(vs) > 0 && vs[len(vs)-1].T == object.PendingTime {
			return vs[len(vs)-1].Bytes, nil
		}
	}
	b, _ := ob.BytesAt(s.readTime())
	return b, nil
}

// BytesAt returns the payload in the state at an explicit time.
func (s *Session) BytesAt(obj oop.OOP, t oop.Time) ([]byte, bool, error) {
	ob, own, err := s.lookup(obj)
	if err != nil {
		return nil, false, err
	}
	if t.IsNow() {
		s.recordRead(obj)
		return mustBytes(ob, own, s.readTime())
	}
	b, ok := ob.BytesAt(t)
	return b, ok, nil
}

func mustBytes(ob *object.Object, own bool, t oop.Time) ([]byte, bool, error) {
	if own {
		if vs := ob.ByteVersions(); len(vs) > 0 && vs[len(vs)-1].T == object.PendingTime {
			return vs[len(vs)-1].Bytes, true, nil
		}
	}
	b, ok := ob.BytesAt(t)
	return b, ok, nil
}

// NewFloat creates a boxed Float.
func (s *Session) NewFloat(f float64) (oop.OOP, error) {
	o, err := s.NewObjectIn(s.db.kernel.Float, s.homeSeg)
	if err != nil {
		return oop.Invalid, err
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
	if err := s.transients[o.Serial()].SetBytes(object.PendingTime, b[:]); err != nil {
		return oop.Invalid, err
	}
	return o, nil
}

// FloatValue decodes a boxed Float.
func (s *Session) FloatValue(obj oop.OOP) (float64, error) {
	b, err := s.BytesOf(obj)
	if err != nil {
		return 0, err
	}
	if len(b) != 8 {
		return 0, fmt.Errorf("core: %v is not a Float", obj)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
}

// Symbol interns a symbol.
func (s *Session) Symbol(name string) oop.OOP { return s.db.SymbolFor(name) }

// SymbolName resolves a symbol OOP.
func (s *Session) SymbolName(o oop.OOP) (string, bool) { return s.db.SymbolName(o) }

// Globals returns the system dictionary of named globals.
func (s *Session) Globals() oop.OOP { return s.db.globals }

// Global resolves a global by name: first the system globals dictionary
// (class names, World, System), then elements of World itself — so data
// anchored at World (the paper's path examples all start there) can serve
// directly as path roots: after `World at: #X put: x`, the path
// X!Departments!A16 resolves.
func (s *Session) Global(name string) (oop.OOP, bool) {
	sym := s.db.SymbolFor(name)
	if v, ok, err := s.Fetch(s.db.globals, sym); err == nil && ok && v != oop.Nil {
		return v, true
	}
	world, ok, err := s.Fetch(s.db.globals, s.db.SymbolFor("World"))
	if err != nil || !ok || !world.IsHeap() {
		return oop.Invalid, false
	}
	if v, ok, err := s.Fetch(world, sym); err == nil && ok && v != oop.Nil {
		return v, true
	}
	return oop.Invalid, false
}

// SetGlobal binds a global name (administrators only; globals live in the
// system segment).
func (s *Session) SetGlobal(name string, value oop.OOP) error {
	return s.Store(s.db.globals, s.db.SymbolFor(name), value)
}

// --- Transactions ---

// Commit validates and atomically applies the session's pending writes,
// returning the assigned transaction time. The durable apply is performed
// by the group committer, which coalesces every concurrently validated
// session into one safe-write; Commit blocks until this session's group is
// durable. On conflict the workspace is discarded, a fresh transaction
// begins, and the error wraps txn.ErrConflict.
func (s *Session) Commit() (oop.Time, error) {
	return s.CommitCtx(nil)
}

// CommitCtx is Commit bounded by a request context: if ctx is already
// cancelled before the transaction reaches the commit pipeline's
// admission, the transaction is aborted (workspace discarded, fresh
// transaction begun, no transaction time consumed) and the cancellation
// error is returned. Once admitted, the commit runs to durability — a
// deadline never abandons a transaction whose time has been assigned.
// A nil ctx commits unconditionally.
func (s *Session) CommitCtx(ctx context.Context) (oop.Time, error) {
	t, err := s.db.txm.CommitCtx(ctx, s.tx, s.reads, s.writes, s.ws)
	if err != nil {
		s.demotePromoted()
		s.begin()
		return 0, err
	}
	s.begin()
	return t, nil
}

// CommitKernel applies the workspace at kernel time (time 0), so the
// written objects are visible in every past state of the database. It is
// reserved for bootstrap-style image installation (kernel classes and
// methods) before the database serves concurrent sessions: it bypasses
// optimistic validation and does not consume a transaction time.
func (s *Session) CommitKernel() error {
	batch := sortedWorkspace(s.ws)
	s.db.mu.Lock()
	symObjs := s.db.takePendingSymbolsLocked()
	s.db.mu.Unlock()
	for _, ob := range batch {
		ob.RestampPending(0)
	}
	batch = append(batch, symObjs...)
	if err := s.db.st.Apply(store.Commit{
		Objects:    batch,
		NextSerial: s.db.serialHighWater(),
		Time:       s.db.txm.LastCommitted(),
	}); err != nil {
		return err
	}
	s.db.mu.Lock()
	for _, ob := range batch {
		s.db.cache[ob.OOP.Serial()] = ob
	}
	s.db.mu.Unlock()
	s.db.txm.Abort(s.tx)
	s.begin()
	return nil
}

// Abort discards all pending changes and begins a fresh transaction.
// Transients promoted during the aborted transaction return to the
// transient space so references to them stay valid.
func (s *Session) Abort() {
	s.db.txm.Abort(s.tx)
	s.demotePromoted()
	s.begin()
}

// Close retires the session: its active transaction is aborted and no new
// one is begun, so a departed session stops pinning the transaction
// manager's validation log. The session must not be used after Close.
func (s *Session) Close() {
	s.db.txm.Abort(s.tx)
}

func (s *Session) demotePromoted() {
	for serial, ob := range s.promoted {
		s.transients[serial] = ob
	}
}

// sortedWorkspace flattens a workspace into a serial-ordered object batch.
// The slice has spare capacity for the commit's symbol objects.
func sortedWorkspace(ws map[uint64]*object.Object) []*object.Object {
	serials := make([]uint64, 0, len(ws))
	for serial := range ws {
		serials = append(serials, serial)
	}
	sort.Slice(serials, func(i, j int) bool { return serials[i] < serials[j] })
	batch := make([]*object.Object, 0, len(ws)+8)
	for _, serial := range serials {
		batch = append(batch, ws[serial])
	}
	return batch
}

// applyCommitGroup is the Linker (paper §6) running as the group
// committer: it "incorporates updates made by a transaction in the
// permanent database at commit time, calling for restructuring of
// directories as needed" — for every member of a durability group in one
// safe-write. However many sessions validated while the previous group was
// on its way to disk, the whole group costs one boxer pass, one
// object-table copy-on-write, one directory chain and one superblock flip.
// Exactly one call runs at a time (the transaction manager's flush token).
func (db *DB) applyCommitGroup(group []*txn.Pending) error {
	// Members arrive in ascending transaction-time order with disjoint
	// write sets (validation would have failed any overlap). Serial order
	// within each member keeps the packed track image byte-deterministic
	// for a given commit sequence (detmap invariant).
	batch := make([]*object.Object, 0, len(group)+8)
	for _, p := range group {
		member := sortedWorkspace(p.Payload.(map[uint64]*object.Object))
		for _, ob := range member {
			ob.RestampPending(p.Time)
		}
		batch = append(batch, member...)
	}
	// Directory maintenance after the durable write, so a failed store
	// apply cannot leave directories ahead of the database.
	db.mu.Lock()
	drained := db.newSyms
	symObjs := db.takePendingSymbolsLocked()
	db.mu.Unlock()

	batch = append(batch, symObjs...)

	if err := db.st.Apply(store.Commit{
		Objects:    batch,
		NextSerial: db.serialHighWater(),
		Time:       group[len(group)-1].Time,
	}); err != nil {
		// Nothing was published: re-queue the drained symbols so interned
		// names are not lost with the failed group.
		db.mu.Lock()
		db.newSyms = append(drained, db.newSyms...)
		db.mu.Unlock()
		return err
	}
	db.mu.Lock()
	for _, ob := range batch {
		db.cache[ob.OOP.Serial()] = ob
	}
	// Directories see each member's post-commit state via the refreshed
	// cache, maintained in commit order. A maintenance failure is reported
	// to that member alone; the group is already durable.
	for _, p := range group {
		if err := db.maintainDirectoriesLocked(p.Payload.(map[uint64]*object.Object), p.Time); err != nil {
			p.Fail(err)
		}
	}
	db.mu.Unlock()
	return nil
}

// --- Convenience for labeled sets ---

// AddToSet binds member into set under a fresh system-generated alias
// element name ("For sets without labels, arbitrary aliases are used as
// element names", §5.1) and returns the alias symbol.
func (s *Session) AddToSet(set, member oop.OOP) (oop.OOP, error) {
	ob, err := s.modifiable(set)
	if err != nil {
		return oop.Invalid, err
	}
	// Per-set alias counter kept in a hidden element.
	n := int64(0)
	if v, ok := fetchFrom(ob, true, s.db.wk.aliasCounter, s.readTime()); ok && v.IsSmallInt() {
		n = v.Int()
	}
	n++
	if err := ob.Store(s.db.wk.aliasCounter, object.PendingTime, oop.MustInt(n)); err != nil {
		return oop.Invalid, err
	}
	alias := s.db.SymbolFor(fmt.Sprintf("a%d.%d", set.Serial(), n))
	if err := ob.Store(alias, object.PendingTime, member); err != nil {
		return oop.Invalid, err
	}
	if s.isPersistent(set) {
		s.promote(member)
	}
	return alias, nil
}

// IsAlias reports whether an element name is a system-generated alias
// created by AddToSet (alias names have the form a<set>.<n>).
func (s *Session) IsAlias(name oop.OOP) bool {
	str, ok := s.db.SymbolName(name)
	if !ok || len(str) < 4 || str[0] != 'a' {
		return false
	}
	dot := false
	for _, r := range str[1:] {
		if r == '.' {
			if dot {
				return false
			}
			dot = true
			continue
		}
		if r < '0' || r > '9' {
			return false
		}
	}
	return dot
}

// RemoveFromSet unbinds the member bound under the given element name.
func (s *Session) RemoveFromSet(set, name oop.OOP) error {
	return s.Remove(set, name)
}

// Members returns the values of all elements of set in the current view,
// excluding the hidden alias counter.
func (s *Session) Members(set oop.OOP) ([]oop.OOP, error) {
	var out []oop.OOP
	if err := s.MembersFunc(set, func(m oop.OOP) error {
		out = append(out, m)
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// MembersFunc streams the members of set in the current view to fn, in
// element insertion order, excluding the hidden alias counter. It is the
// cursor form of Members: one pass over the set object's own elements, no
// member slice. Iteration stops at the first error from fn, which is
// returned. The callback must not write to the session.
func (s *Session) MembersFunc(set oop.OOP, fn func(oop.OOP) error) error {
	s.db.met.scans.Inc()
	s.db.met.cursorOpens.Inc()
	ob, own, err := s.lookup(set)
	if err != nil {
		return err
	}
	s.recordRead(set)
	t := s.readTime()
	for _, el := range ob.Elements() {
		if err := s.pollCancel(); err != nil {
			return err
		}
		if el.Name == s.db.wk.aliasCounter {
			continue
		}
		v, ok := fetchFrom(ob, own, el.Name, t)
		if !ok || v == oop.Nil {
			continue
		}
		s.db.met.cursorMembers.Inc()
		if err := fn(v); err != nil {
			return err
		}
	}
	return nil
}

// MemberCount returns the number of members of set in the current view
// without materializing a member slice and without counting as a membership
// scan: it reads only the set object's own element table, never a member
// body. The planner uses it so that cost estimation touches no data pages.
func (s *Session) MemberCount(set oop.OOP) (int, error) {
	s.db.met.memberCounts.Inc()
	ob, own, err := s.lookup(set)
	if err != nil {
		return 0, err
	}
	s.recordRead(set)
	t := s.readTime()
	n := 0
	for _, el := range ob.Elements() {
		if err := s.pollCancel(); err != nil {
			return 0, err
		}
		if el.Name == s.db.wk.aliasCounter {
			continue
		}
		if v, ok := fetchFrom(ob, own, el.Name, t); ok && v != oop.Nil {
			n++
		}
	}
	return n, nil
}

// ForkReader returns a read-only sibling of the session for use on another
// goroutine during parallel query execution. The fork shares the committed
// snapshot, time dial, workspace and transients (all accessed read-only)
// but records its reads in a private set, because the optimistic read set
// is a plain map the parent mutates on every tracked read. Neither the
// parent nor any fork may write while forks are live; fold each fork's
// reads back into the parent with AbsorbReads before committing.
func (s *Session) ForkReader() *Session {
	return &Session{
		db:      s.db,
		user:    s.user,
		homeSeg: s.homeSeg,
		tx:      s.tx,
		dial:    s.dial,

		ws:         s.ws,
		transients: s.transients,
		promoted:   s.promoted,
		reads:      make(map[oop.OOP]struct{}),
		writes:     make(map[oop.OOP]struct{}),

		// Forks inherit the request context so a deadline cancels the
		// parallel workers too; each fork polls independently.
		ctx: s.ctx,
	}
}

// AbsorbReads merges a ForkReader's recorded reads into this session's
// optimistic read set, so validation still covers everything the parallel
// workers looked at. Call it after the fork's goroutine has finished.
func (s *Session) AbsorbReads(fork *Session) {
	for o := range fork.reads {
		s.reads[o] = struct{}{}
	}
}

// Archive moves committed objects to the simulated offline medium
// ("A database administrator can explicitly move objects to other media",
// §6). Administrators only. While the archive is attached the objects stay
// readable; after DetachArchive they become "temporarily or permanently
// inaccessible".
func (s *Session) Archive(oops []oop.OOP) error {
	if !s.db.auth.IsAdmin(s.user) {
		return fmt.Errorf("%w: %s cannot archive", auth.ErrDenied, s.user)
	}
	return s.db.st.Archive(s.db.txm.LastCommitted(), oops)
}

// DetachArchive dismounts the offline medium (administrators only).
func (s *Session) DetachArchive() error {
	if !s.db.auth.IsAdmin(s.user) {
		return fmt.Errorf("%w: %s cannot detach the archive", auth.ErrDenied, s.user)
	}
	s.db.st.DetachArchive()
	return nil
}

// Authorize helpers: administrative operations that also persist the auth
// state as a versioned object.

// CreateUser adds a database user (admin only) and persists the change.
func (s *Session) CreateUser(name, password string) error {
	if err := s.db.auth.CreateUser(s.user, name, password); err != nil {
		return err
	}
	return s.db.persistAuth()
}

// CreateSegment adds a segment owned by the session user.
func (s *Session) CreateSegment(world auth.Privilege) (object.SegmentID, error) {
	seg, err := s.db.auth.CreateSegment(s.user, world)
	if err != nil {
		return 0, err
	}
	return seg, s.db.persistAuth()
}

// Grant sets a user's privilege on a segment.
func (s *Session) Grant(seg object.SegmentID, name string, p auth.Privilege) error {
	if err := s.db.auth.Grant(s.user, seg, name, p); err != nil {
		return err
	}
	return s.db.persistAuth()
}
