package core

import (
	"fmt"

	"repro/internal/auth"
	"repro/internal/object"
	"repro/internal/oop"
	"repro/internal/store"
)

// SystemRoot is a fixed-format indexed object so that reload can find the
// registries before any symbols are known. Slots:
const (
	rootSlotGlobals = 1
	rootSlotSymbols = 2
	rootSlotAuth    = 3
	rootSlotDirs    = 4
)

// kernelTime is the transaction time of the bootstrap: kernel classes exist
// "from the beginning" so every past state can resolve them.
const kernelTime = oop.Time(0)

type classSpec struct {
	name   string
	super  string // "" for Object
	ivars  []string
	format object.Format
	target *oop.OOP // where in Kernel to record the class OOP
}

func (db *DB) classSpecs() []classSpec {
	k := &db.kernel
	return []classSpec{
		{"Object", "", nil, object.FormatNamed, &k.Object},
		{"Class", "Object", []string{"name", "superclass", "instVarNames", "format", "methods", "comment"}, object.FormatNamed, &k.Class},
		{"UndefinedObject", "Object", nil, object.FormatNamed, &k.UndefinedObject},
		{"Boolean", "Object", nil, object.FormatNamed, &k.Boolean},
		{"True", "Boolean", nil, object.FormatNamed, &k.TrueClass},
		{"False", "Boolean", nil, object.FormatNamed, &k.FalseClass},
		{"Magnitude", "Object", nil, object.FormatNamed, &k.Magnitude},
		{"Character", "Magnitude", nil, object.FormatNamed, &k.Character},
		{"Number", "Magnitude", nil, object.FormatNamed, &k.Number},
		{"SmallInteger", "Number", nil, object.FormatNamed, &k.SmallInteger},
		{"Float", "Number", nil, object.FormatBytes, &k.Float},
		{"Collection", "Object", nil, object.FormatNamed, &k.Collection},
		{"String", "Collection", nil, object.FormatBytes, &k.String},
		{"Symbol", "String", nil, object.FormatBytes, &k.Symbol},
		{"Array", "Collection", nil, object.FormatIndexed, &k.Array},
		{"OrderedCollection", "Collection", nil, object.FormatIndexed, &k.OrderedCollection},
		{"Set", "Collection", nil, object.FormatNamed, &k.Set},
		{"Bag", "Collection", nil, object.FormatNamed, &k.Bag},
		{"Dictionary", "Collection", nil, object.FormatNamed, &k.Dictionary},
		{"Association", "Object", []string{"key", "value"}, object.FormatNamed, &k.Association},
		{"Block", "Object", nil, object.FormatNamed, &k.Block},
		{"CompiledMethod", "Object", nil, object.FormatNamed, &k.CompiledMethod},
		{"SystemDictionary", "Dictionary", nil, object.FormatNamed, &k.SystemDictionary},
		{"View", "Object", nil, object.FormatNamed, &k.View},
	}
}

func (db *DB) internWellKnown() {
	db.mu.Lock()
	defer db.mu.Unlock()
	wk := &db.wk
	wk.name = db.symbolLocked("name")
	wk.superclass = db.symbolLocked("superclass")
	wk.instVarNames = db.symbolLocked("instVarNames")
	wk.format = db.symbolLocked("format")
	wk.methods = db.symbolLocked("methods")
	wk.classComment = db.symbolLocked("comment")
	wk.key = db.symbolLocked("key")
	wk.value = db.symbolLocked("value")
	wk.aliasCounter = db.symbolLocked("__alias")
	wk.globals = db.symbolLocked("__globals")
	wk.symbols = db.symbolLocked("__symbols")
	wk.directories = db.symbolLocked("__directories")
	wk.authState = db.symbolLocked("__auth")
}

// bootstrap lays down a fresh database image: kernel classes, the globals
// dictionary, the World root, registries, and the SystemUser.
func (db *DB) bootstrap(systemPassword string) error {
	db.auth = auth.New(systemPassword)
	var batch []*object.Object
	addObj := func(o, class oop.OOP, seg object.SegmentID, f object.Format) *object.Object {
		ob := object.New(o, class, seg, f)
		batch = append(batch, ob)
		return ob
	}
	newObj := func(class oop.OOP, seg object.SegmentID, f object.Format) *object.Object {
		return addObj(oop.FromSerial(db.allocSerial()), class, seg, f)
	}

	// Identity before state: allocate every fixed OOP up front — the
	// system root, the symbol registry, then the kernel classes in spec
	// order — so each object can be created with its final class and
	// superclass references resolve. An object's Class is part of its
	// identity and is never reassigned (the ooppure invariant); the serial
	// order here is what reload and every past state depend on.
	sysRootOOP := oop.FromSerial(db.allocSerial())
	symRegOOP := oop.FromSerial(db.allocSerial())
	db.sysRoot, db.symReg = sysRootOOP, symRegOOP
	specs := db.classSpecs()
	classOOPs := make(map[string]oop.OOP, len(specs))
	for _, sp := range specs {
		o := oop.FromSerial(db.allocSerial())
		classOOPs[sp.name] = o
		*sp.target = o
	}

	sysRoot := addObj(sysRootOOP, db.kernel.Object, auth.SystemSegment, object.FormatIndexed)
	symReg := addObj(symRegOOP, db.kernel.Array, auth.SystemSegment, object.FormatIndexed)
	// Classes are instances of Class (a deliberate collapse of the ST80
	// metaclass tower; see DESIGN.md).
	classObjs := make(map[string]*object.Object, len(specs))
	for _, sp := range specs {
		classObjs[sp.name] = addObj(classOOPs[sp.name], db.kernel.Class, auth.SystemSegment, object.FormatNamed)
	}

	db.internWellKnown()

	for _, sp := range specs {
		ob := classObjs[sp.name]
		must(ob.Store(db.wk.name, kernelTime, db.SymbolFor(sp.name)))
		superOOP := oop.Nil
		if sp.super != "" {
			superOOP = classOOPs[sp.super]
		}
		must(ob.Store(db.wk.superclass, kernelTime, superOOP))
		ivarArr := newObj(db.kernel.Array, auth.SystemSegment, object.FormatIndexed)
		for i, iv := range sp.ivars {
			must(ivarArr.Store(oop.MustInt(int64(i+1)), kernelTime, db.SymbolFor(iv)))
		}
		must(ob.Store(db.wk.instVarNames, kernelTime, ivarArr.OOP))
		must(ob.Store(db.wk.format, kernelTime, oop.MustInt(int64(sp.format))))
		methods := newObj(db.kernel.Dictionary, auth.SystemSegment, object.FormatNamed)
		must(ob.Store(db.wk.methods, kernelTime, methods.OOP))
	}

	// Globals and World live in a world-writable published segment: any
	// user can anchor data at World (the paper's path examples start
	// there, §5.3.2) and bind new class definitions as globals.
	pubSeg, err := db.auth.CreateSegment(auth.SystemUser, auth.Write)
	if err != nil {
		return err
	}
	db.pubSeg = pubSeg
	globals := newObj(db.kernel.SystemDictionary, pubSeg, object.FormatNamed)
	db.globals = globals.OOP
	for _, sp := range specs {
		must(globals.Store(db.SymbolFor(sp.name), kernelTime, classOOPs[sp.name]))
	}
	world := newObj(db.kernel.Dictionary, pubSeg, object.FormatNamed)
	must(globals.Store(db.SymbolFor("World"), kernelTime, world.OOP))

	// Registries for auth state and directory definitions.
	authObj := newObj(db.kernel.String, auth.SystemSegment, object.FormatBytes)
	must(authObj.SetBytes(kernelTime, gobEncode(db.auth.Export())))
	dirObj := newObj(db.kernel.String, auth.SystemSegment, object.FormatBytes)
	must(dirObj.SetBytes(kernelTime, gobEncode([]dirDefGob{})))

	must(sysRoot.Store(oop.MustInt(rootSlotGlobals), kernelTime, globals.OOP))
	must(sysRoot.Store(oop.MustInt(rootSlotSymbols), kernelTime, symReg.OOP))
	must(sysRoot.Store(oop.MustInt(rootSlotAuth), kernelTime, authObj.OOP))
	must(sysRoot.Store(oop.MustInt(rootSlotDirs), kernelTime, dirObj.OOP))

	// Fold the interned symbols into the batch and write everything as the
	// bootstrap commit.
	db.mu.Lock()
	// takePendingSymbolsLocked needs the registry in cache to clone it;
	// seed the cache with the empty registry, then replace with the filled
	// clone it returns.
	db.cache[symReg.OOP.Serial()] = symReg
	symObjs := db.takePendingSymbolsLocked()
	db.mu.Unlock()
	// The returned slice ends with the updated registry clone; drop our
	// stale empty registry from the batch in favour of it.
	for i, ob := range batch {
		if ob.OOP == symReg.OOP {
			batch = append(batch[:i], batch[i+1:]...)
			break
		}
	}
	batch = append(batch, symObjs...)

	if err := db.st.Apply(store.Commit{
		Objects:    batch,
		Root:       sysRoot.OOP,
		NextSerial: db.serialHighWater(),
		Time:       kernelTime,
	}); err != nil {
		return err
	}
	db.mu.Lock()
	for _, ob := range batch {
		db.cache[ob.OOP.Serial()] = ob
	}
	db.mu.Unlock()
	return nil
}

// reload rebuilds the in-memory state from an existing database.
func (db *DB) reload() error {
	meta := db.st.Meta()
	db.sysRoot = meta.Root
	sysRoot, err := db.loadCommitted(db.sysRoot)
	if err != nil {
		return err
	}
	slot := func(i int64) (oop.OOP, error) {
		v, ok := sysRoot.Fetch(oop.MustInt(i))
		if !ok || !v.IsHeap() {
			return oop.Invalid, fmt.Errorf("core: system root slot %d missing", i)
		}
		return v, nil
	}
	if db.symReg, err = slot(rootSlotSymbols); err != nil {
		return err
	}
	if db.globals, err = slot(rootSlotGlobals); err != nil {
		return err
	}
	authOOP, err := slot(rootSlotAuth)
	if err != nil {
		return err
	}
	dirOOP, err := slot(rootSlotDirs)
	if err != nil {
		return err
	}

	// Symbols.
	reg, err := db.loadCommitted(db.symReg)
	if err != nil {
		return err
	}
	db.mu.Lock()
	for _, el := range reg.Elements() {
		symOOP, ok := el.Current()
		if !ok {
			continue
		}
		symObj, err := db.st.Load(symOOP)
		if err != nil {
			db.mu.Unlock()
			return fmt.Errorf("core: symbol %v unloadable: %w", symOOP, err)
		}
		name := string(symObj.Bytes())
		db.symByName[name] = symOOP
		db.symByOOP[symOOP] = name
		db.cache[symOOP.Serial()] = symObj
	}
	db.mu.Unlock()
	db.internWellKnown()

	// Kernel classes by name from globals. The globals object lives in the
	// published (world-writable) segment; remember it for shared creation.
	globals, err := db.loadCommitted(db.globals)
	if err != nil {
		return err
	}
	db.pubSeg = globals.Seg
	for _, sp := range db.classSpecs() {
		c, ok := globals.Fetch(db.SymbolFor(sp.name))
		if !ok {
			return fmt.Errorf("core: kernel class %s missing from globals", sp.name)
		}
		*sp.target = c
	}

	// Authorization.
	authObj, err := db.loadCommitted(authOOP)
	if err != nil {
		return err
	}
	var st auth.State
	if err := gobDecode(authObj.Bytes(), &st); err != nil {
		return fmt.Errorf("core: auth state corrupt: %w", err)
	}
	db.auth = auth.Restore(st)

	// Directories: definitions, then replay history to rebuild indexes.
	dirObj, err := db.loadCommitted(dirOOP)
	if err != nil {
		return err
	}
	var defs []dirDefGob
	if err := gobDecode(dirObj.Bytes(), &defs); err != nil {
		return fmt.Errorf("core: directory definitions corrupt: %w", err)
	}
	for _, def := range defs {
		path := make([]oop.OOP, len(def.Path))
		for i, s := range def.Path {
			path[i] = oop.FromSerial(s)
		}
		m, err := db.rebuildDirectory(oop.FromSerial(def.Set), path)
		if err != nil {
			return fmt.Errorf("core: rebuild directory on %v: %w", oop.FromSerial(def.Set), err)
		}
		db.dirs = append(db.dirs, m)
	}
	return nil
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
