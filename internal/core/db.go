// Package core is the paper's primary contribution assembled: the GemStone
// Object Manager. It ties the track store, the optimistic Transaction
// Manager, the Directory Manager and authorization together under a
// session-based interface with per-element object history, a time dial and
// entity identity.
//
// Each session has "its own Object Manager with a private object space"
// (paper §6): a copy-on-write workspace layered over the shared committed
// store. Reads are served from the workspace first and otherwise from the
// committed object's history *at the session's snapshot time* — the
// temporal model doubles as the concurrency snapshot, the synergy the paper
// credits to Reed ("storing transaction time is useful for synchronizing
// concurrent transactions", §5.3.1).
package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"

	"repro/internal/auth"
	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/oop"
	"repro/internal/store"
	"repro/internal/txn"
)

// Options configures a database.
type Options struct {
	Store          store.Options
	SystemPassword string // password for SystemUser; default "swordfish"
}

// Kernel holds the OOPs of the classes the Object Manager itself needs.
// They are created at bootstrap and re-resolved from the globals on open.
type Kernel struct {
	Object, Class, UndefinedObject                oop.OOP
	Boolean, TrueClass, FalseClass                oop.OOP
	Magnitude, Character, Number                  oop.OOP
	SmallInteger, Float                           oop.OOP
	Collection, String, Symbol                    oop.OOP
	Array, OrderedCollection, Set, Bag            oop.OOP
	Dictionary, Association                       oop.OOP
	Block, CompiledMethod, SystemDictionary, View oop.OOP
}

// Well-known element-name symbols used by the Object Manager itself.
type wellKnown struct {
	name, superclass, instVarNames, format, methods oop.OOP
	classComment                                    oop.OOP
	key, value                                      oop.OOP
	aliasCounter                                    oop.OOP
	globals, symbols, directories, authState        oop.OOP
}

// DB is an open GemStone database.
type DB struct {
	st   *store.Store
	txm  *txn.Manager
	auth *auth.Authorizer

	mu        sync.RWMutex // guards cache, symByName, symByOOP, newSyms, dirs
	cache     map[uint64]*object.Object
	symByName map[string]oop.OOP
	symByOOP  map[oop.OOP]string
	newSyms   []oop.OOP // interned but not yet in the durable registry

	serialMu   sync.Mutex // guards nextSerial
	nextSerial uint64

	sysRoot oop.OOP          // the SystemRoot object referenced by the superblock
	globals oop.OOP          // SystemDictionary of named globals (classes, World)
	pubSeg  object.SegmentID // the published (world-writable) segment
	symReg  oop.OOP          // durable symbol registry (indexed object)
	kernel  Kernel
	wk      wellKnown
	dirs    []*maintained // maintained directories

	obs *obs.Registry
	met coreMetrics
}

// coreMetrics counts the §4.3 access-path split: associative lookups that
// went through a maintained index versus full membership scans — plus the
// streaming-executor cursor traffic layered on top of those access paths.
type coreMetrics struct {
	indexLookups *obs.Counter
	scans        *obs.Counter

	cursorOpens   *obs.Counter // streaming cursors opened (set + index)
	cursorMembers *obs.Counter // members emitted through streaming cursors
	memberCounts  *obs.Counter // O(1)-per-element MemberCount planner probes
}

// Open opens or bootstraps the database under dir.
func Open(dir string, opts Options) (*DB, error) {
	if opts.SystemPassword == "" {
		opts.SystemPassword = "swordfish"
	}
	reg := obs.NewRegistry()
	opts.Store.Obs = reg
	st, err := store.Open(dir, opts.Store)
	if err != nil {
		return nil, err
	}
	meta := st.Meta()
	db := &DB{
		st:         st,
		cache:      make(map[uint64]*object.Object),
		symByName:  make(map[string]oop.OOP),
		symByOOP:   make(map[oop.OOP]string),
		nextSerial: meta.NextSerial,
		obs:        reg,
		met: coreMetrics{
			indexLookups:  reg.Counter("directory.index.lookups"),
			scans:         reg.Counter("directory.scans"),
			cursorOpens:   reg.Counter("query.cursor.opens"),
			cursorMembers: reg.Counter("query.cursor.members"),
			memberCounts:  reg.Counter("query.member.counts"),
		},
	}
	// The transaction manager hands validated commit groups back to the
	// DB's Linker (applyCommitGroup) for one shared safe-write per group.
	db.txm = txn.NewManager(meta.LastTime, db.applyCommitGroup)
	db.txm.Instrument(reg)
	if meta.Root == oop.Invalid {
		if err := db.bootstrap(opts.SystemPassword); err != nil {
			st.Close()
			return nil, fmt.Errorf("core: bootstrap: %w", err)
		}
		return db, nil
	}
	if err := db.reload(); err != nil {
		st.Close()
		return nil, fmt.Errorf("core: reload: %w", err)
	}
	return db, nil
}

// Close releases the database.
func (db *DB) Close() error { return db.st.Close() }

// Kernel returns the kernel class OOPs.
func (db *DB) Kernel() Kernel { return db.kernel }

// Store exposes the underlying track store (statistics, damage injection).
func (db *DB) Store() *store.Store { return db.st }

// TxnManager exposes the transaction manager (statistics).
func (db *DB) TxnManager() *txn.Manager { return db.txm }

// Auth exposes the authorization engine.
func (db *DB) Auth() *auth.Authorizer { return db.auth }

// Obs returns the database's metrics registry.
func (db *DB) Obs() *obs.Registry { return db.obs }

// allocSerial hands out a fresh object serial.
func (db *DB) allocSerial() uint64 {
	db.serialMu.Lock()
	defer db.serialMu.Unlock()
	s := db.nextSerial
	db.nextSerial++
	return s
}

func (db *DB) serialHighWater() uint64 {
	db.serialMu.Lock()
	defer db.serialMu.Unlock()
	return db.nextSerial
}

// loadCommitted returns the committed version of an object, via the shared
// cache. The returned object is shared: callers must not mutate it.
func (db *DB) loadCommitted(o oop.OOP) (*object.Object, error) {
	db.mu.RLock()
	ob, ok := db.cache[o.Serial()]
	db.mu.RUnlock()
	if ok {
		return ob, nil
	}
	ob, err := db.st.Load(o)
	if err != nil {
		// Interned-but-not-yet-flushed symbols are readable immediately;
		// synthesize the object the next commit will write.
		db.mu.Lock()
		if name, isSym := db.symByOOP[o]; isSym {
			sym := object.New(o, db.kernel.Symbol, auth.SystemSegment, object.FormatBytes)
			if serr := sym.SetBytes(0, []byte(name)); serr == nil {
				db.cache[o.Serial()] = sym
				db.mu.Unlock()
				return sym, nil
			}
		}
		db.mu.Unlock()
		return nil, err
	}
	db.mu.Lock()
	if cached, ok := db.cache[o.Serial()]; ok {
		ob = cached // another loader won
	} else {
		db.cache[o.Serial()] = ob
	}
	db.mu.Unlock()
	return ob, nil
}

// --- Symbols ---

// SymbolFor interns a symbol, creating its durable object on first use.
// Symbols are immutable and shared across sessions and transactions; new
// ones are appended to the durable registry by the next commit (or Flush).
func (db *DB) SymbolFor(name string) oop.OOP {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.symbolLocked(name)
}

func (db *DB) symbolLocked(name string) oop.OOP {
	if o, ok := db.symByName[name]; ok {
		return o
	}
	db.serialMu.Lock()
	serial := db.nextSerial
	db.nextSerial++
	db.serialMu.Unlock()
	o := oop.FromSerial(serial)
	db.symByName[name] = o
	db.symByOOP[o] = name
	db.newSyms = append(db.newSyms, o)
	return o
}

// SymbolName resolves a symbol OOP to its string.
func (db *DB) SymbolName(o oop.OOP) (string, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s, ok := db.symByOOP[o]
	return s, ok
}

// takePendingSymbols drains the not-yet-durable symbols as objects to add
// to the next commit batch, plus the updated registry object. Called with
// db.mu held by the committing session (via the Linker).
func (db *DB) takePendingSymbolsLocked() []*object.Object {
	if len(db.newSyms) == 0 {
		return nil
	}
	var out []*object.Object
	reg, ok := db.cache[db.symReg.Serial()]
	if !ok {
		loaded, err := db.st.Load(db.symReg)
		if err != nil {
			panic(fmt.Sprintf("core: symbol registry unloadable: %v", err))
		}
		reg = loaded
		db.cache[db.symReg.Serial()] = reg
	}
	reg = reg.Clone()
	n := reg.Len()
	for i, symOOP := range db.newSyms {
		name := db.symByOOP[symOOP]
		symObj := object.New(symOOP, db.kernel.Symbol, auth.SystemSegment, object.FormatBytes)
		// Symbols are timeless: their payload exists "from the beginning".
		if err := symObj.SetBytes(0, []byte(name)); err != nil {
			panic(err)
		}
		out = append(out, symObj)
		idx, _ := oop.FromInt(int64(n + i + 1))
		if err := reg.Store(idx, 0, symOOP); err != nil {
			panic(err)
		}
	}
	out = append(out, reg)
	db.newSyms = nil
	return out
}

// --- Persistence of auth and directory definitions ---

type dirDefGob struct {
	Set  uint64
	Path []uint64 // symbol serials
}

func gobEncode(v any) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		panic(fmt.Sprintf("core: gob encode: %v", err))
	}
	return buf.Bytes()
}

func gobDecode(b []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(b)).Decode(v)
}
