package analysis

import "testing"

// TestBufownLeakOnPath: a pooled value that misses its Put on an early
// return leaks, and the finding names the exit.
func TestBufownLeakOnPath(t *testing.T) {
	got := checkFixture(t, "fixt/bufown", `package fx

import "sync"

var pool = sync.Pool{New: func() any { return new([]byte) }}

func Leaky(fail bool) int {
	buf := pool.Get().(*[]byte)
	if fail {
		return 0 // leak: buf never put back
	}
	pool.Put(buf)
	return 1
}
`, Bufown())
	wantFindings(t, got, "not returned to its pool on every path")
}

// TestBufownCleanShapes: deferred puts, puts on every branch, and put
// wrappers (the consume summary) are all clean.
func TestBufownCleanShapes(t *testing.T) {
	got := checkFixture(t, "fixt/bufownclean", `package fx

import "sync"

var pool = sync.Pool{New: func() any { return new([]byte) }}

func release(b *[]byte) {
	pool.Put(b)
}

func Deferred() int {
	buf := pool.Get().(*[]byte)
	defer pool.Put(buf)
	return len(*buf)
}

func Branches(fail bool) int {
	buf := pool.Get().(*[]byte)
	if fail {
		pool.Put(buf)
		return 0
	}
	pool.Put(buf)
	return 1
}

func ViaWrapper() {
	buf := pool.Get().(*[]byte)
	release(buf)
}

func SelfDerived() {
	buf := pool.Get().(*[]byte)
	*buf = append(*buf, 1)
	pool.Put(buf)
}

func LoopRebirth(n int) {
	for i := 0; i < n; i++ {
		buf := pool.Get().(*[]byte)
		pool.Put(buf)
	}
}
`, Bufown())
	wantFindings(t, got)
}

// TestBufownUseAfterPut: reading a buffer after every path has returned it
// to the pool is a race with the next Get.
func TestBufownUseAfterPut(t *testing.T) {
	got := checkFixture(t, "fixt/bufownuse", `package fx

import "sync"

var pool = sync.Pool{New: func() any { return new([]byte) }}

func UseAfterPut() int {
	buf := pool.Get().(*[]byte)
	pool.Put(buf)
	return len(*buf) // use after put
}

func DoublePut() {
	buf := pool.Get().(*[]byte)
	pool.Put(buf)
	pool.Put(buf) // double put
}
`, Bufown())
	wantFindings(t, got,
		"after it was already returned to its pool",
		"double-returned")
}

// TestBufownEscape: returning a pooled value or storing it through the
// receiver is an escape; storing into a body-local structure is not.
func TestBufownEscape(t *testing.T) {
	got := checkFixture(t, "fixt/bufownesc", `package fx

import "sync"

type Cache struct {
	pool sync.Pool
	m    map[int]*[]byte
}

func (c *Cache) Escapes(k int) {
	buf := c.pool.Get().(*[]byte)
	c.m[k] = buf // pooled value escapes into the receiver's map
}

func (c *Cache) Returns() *[]byte {
	buf := c.pool.Get().(*[]byte)
	return buf // pooled value escapes to the caller
}

type wrap struct{ b *[]byte }

func (c *Cache) ReturnsWrapped() *wrap {
	buf := c.pool.Get().(*[]byte)
	return &wrap{b: buf} // smuggled out inside a composite: same escape
}

func (c *Cache) Local() {
	local := map[int]*[]byte{}
	buf := c.pool.Get().(*[]byte)
	local[0] = buf // body-local structure: silent
	c.pool.Put(buf)
}
`, Bufown())
	wantFindings(t, got,
		"escapes the function through the store to c.m[...]",
		"returned while still live",
		"returned while still live")
}

// TestBufownWaiver: an intentional ownership transfer is waiverable at the
// store site.
func TestBufownWaiver(t *testing.T) {
	got := checkFixture(t, "fixt/bufownwaiver", `package fx

import "sync"

type Cache struct {
	pool sync.Pool
	m    map[int]*[]byte
}

func (c *Cache) Insert(k int) {
	buf := c.pool.Get().(*[]byte)
	//lint:ignore bufown ownership transfers to the cache; recycled on eviction
	c.m[k] = buf
}
`, Bufown())
	wantFindings(t, got)
}

// TestBufownNamedPools: the repo's named pool accessors (takePage/putPage,
// popTrack/recycleLocked) participate by name, and their own bodies are
// exempt.
func TestBufownNamedPools(t *testing.T) {
	got := checkFixture(t, "fixt/bufownnamed", `package fx

var free [][]byte

func takePage() []byte {
	if n := len(free); n > 0 {
		p := free[n-1]
		free = free[:n-1]
		return p
	}
	return make([]byte, 4096)
}

func putPage(p []byte) {
	free = append(free, p)
}

func Leaks(fail bool) {
	p := takePage()
	if fail {
		return // leak
	}
	putPage(p)
}

func Clean() {
	p := takePage()
	defer putPage(p)
	_ = p
}
`, Bufown())
	wantFindings(t, got, "not returned to its pool on every path")
}
