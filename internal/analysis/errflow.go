package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Errflow checks that error results born on the durability path — track
// and replica writes, syncs, truncations, and everything that transitively
// returns one of their errors — actually flow somewhere: into a return, a
// condition, a log call, a health transition, anywhere the program can
// react. Two failure shapes are findings:
//
//   - a discarded result: the source call as a bare statement, behind
//     `defer`/`go`, or assigned to `_`;
//   - a dead assignment: the error is bound to a variable, but on every
//     path from the assignment the variable is overwritten or the
//     function exits without reading it (a CFG reaching-definitions
//     check, so `err` checked on one branch but dropped on another is
//     caught).
//
// A dropped sync error is a silent durability loss: the write is
// acknowledged, the superblock flips, and the data was never on disk —
// the exact failure class the fault-injection suite probes dynamically.
//
// Conservatism rules:
//
//   - Base sources are selector calls named Sync, WriteAt, Truncate or
//     WriteTrack whose last result is type error — by name, so external
//     implementations (os.File, iofault.File) count without needing
//     their bodies.
//   - Derived sources are program functions whose last result is error
//     and which transitively contain a base source call, found over
//     static single-target call edges only; dynamic and interface calls
//     do not propagate sourcehood. A helper that swallows its source
//     error internally is checked inside the helper, not at call sites.
//   - A variable captured by a function literal or having its address
//     taken is exempt from the dead-assignment check (the closure or
//     callee may read it); named result variables are exempt (a naked
//     return reads them implicitly).
//   - Uses are matched by may-reachability: if any path from the
//     assignment reads the variable, the assignment is live. This
//     under-approximates deadness — it never flags an error some path
//     does check.
func Errflow(paths ...string) *Analyzer {
	return &Analyzer{
		Name:  "errflow",
		Doc:   "errors from track/replica write, sync and superblock calls must reach a return, log, or health transition",
		Paths: paths,
		Run:   runErrflow,
	}
}

// errflowBaseNames are the method names whose error result starts the
// durability-error flow.
var errflowBaseNames = map[string]bool{
	"Sync":       true,
	"WriteAt":    true,
	"Truncate":   true,
	"WriteTrack": true,
}

type errflowFinding struct {
	pos token.Pos
	msg string
}

func runErrflow(pass *Pass) {
	findings := pass.Prog.Once("errflow", func() any {
		return computeErrflow(pass.Prog, pass.Analyzer.Paths)
	}).([]errflowFinding)
	for _, f := range findings {
		pass.Reportf(f.pos, "%s", f.msg)
	}
}

type errflowIndex struct {
	prog     *Program
	contains map[*Func]int8 // transitively contains a base source: 0 ?, 1 yes, 2 no
	calls    map[*Func]map[token.Pos]*Call
}

func computeErrflow(prog *Program, paths []string) []errflowFinding {
	idx := &errflowIndex{
		prog:     prog,
		contains: make(map[*Func]int8),
		calls:    make(map[*Func]map[token.Pos]*Call),
	}
	scope := &Analyzer{Paths: paths}
	var out []errflowFinding
	for _, f := range prog.Funcs {
		if !scope.applies(f.Pkg.Path) {
			continue
		}
		out = append(out, idx.checkFunc(f)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// lastResultIsError reports whether the call produces an error as its
// last (or only) result.
func lastResultIsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len() > 0 && isErrorType(t.At(t.Len()-1).Type())
	default:
		return isErrorType(t)
	}
}

// isBaseSource recognizes a direct durability call: x.Sync(), x.WriteAt(...),
// x.Truncate(...), x.WriteTrack(...) returning an error.
func isBaseSource(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !errflowBaseNames[sel.Sel.Name] {
		return false
	}
	return lastResultIsError(info, call)
}

// containsSource reports whether f transitively contains a base source
// call, via static single-target edges.
func (idx *errflowIndex) containsSource(f *Func) bool {
	switch idx.contains[f] {
	case 1:
		return true
	case 2:
		return false
	}
	idx.contains[f] = 2 // cycle cut
	found := false
	nodeWalk(f.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isBaseSource(f.Pkg.Info, call) {
			found = true
			return false
		}
		return true
	})
	if !found {
	search:
		for i := range f.Calls {
			c := &f.Calls[i]
			if c.Dynamic || len(c.Callees) != 1 {
				continue
			}
			if idx.containsSource(c.Callees[0]) {
				found = true
				break search
			}
		}
	}
	if found {
		idx.contains[f] = 1
	}
	return found
}

// callAt resolves a call site through f's resolved calls (single static
// target or nil).
func (idx *errflowIndex) callAt(f *Func, call *ast.CallExpr) *Func {
	m := idx.calls[f]
	if m == nil {
		m = make(map[token.Pos]*Call, len(f.Calls))
		for i := range f.Calls {
			c := &f.Calls[i]
			if _, ok := m[c.Pos]; !ok {
				m[c.Pos] = c
			}
		}
		idx.calls[f] = m
	}
	c := m[call.Pos()]
	if c == nil || c.Dynamic || len(c.Callees) != 1 {
		return nil
	}
	return c.Callees[0]
}

// isSourceCall reports whether this call site yields a durability error:
// a base source, or a call to a derived source function.
func (idx *errflowIndex) isSourceCall(f *Func, call *ast.CallExpr) bool {
	if isBaseSource(f.Pkg.Info, call) {
		return true
	}
	if !lastResultIsError(f.Pkg.Info, call) {
		return false
	}
	callee := idx.callAt(f, call)
	return callee != nil && idx.containsSource(callee)
}

// errDef is one binding of a source error to a variable.
type errDef struct {
	obj *types.Var
	pos token.Pos // the assignment
}

// errflowScan carries the per-function check state shared across the
// dataflow transfer: which defs exist, which were (may-)read, and the
// exempt variables.
type errflowScan struct {
	idx    *errflowIndex
	f      *Func
	info   *types.Info
	exempt map[*types.Var]bool
	used   map[errDef]bool
	defs   map[errDef]string // def -> rendered source-call name
	order  []errDef
	direct []errflowFinding   // discard/_ findings
	seen   map[token.Pos]bool // direct findings already recorded: the
	// dataflow transfer re-runs to fixpoint, but each site reports once
}

func (idx *errflowIndex) checkFunc(f *Func) []errflowFinding {
	s := &errflowScan{
		idx:    idx,
		f:      f,
		info:   f.Pkg.Info,
		exempt: exemptVars(f),
		used:   make(map[errDef]bool),
		defs:   make(map[errDef]string),
		seen:   make(map[token.Pos]bool),
	}

	// Pass 1 (flow-insensitive, once): discarded results.
	nodeWalk(f.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && idx.isSourceCall(f, call) {
				s.report(call.Pos(), "error from %s is discarded; a dropped durability error is a silent data loss — return it, log it, or degrade health", callName(call))
			}
		case *ast.DeferStmt:
			if idx.isSourceCall(f, n.Call) {
				s.report(n.Call.Pos(), "error from deferred %s is discarded — wrap the defer in a closure that checks it", callName(n.Call))
			}
		case *ast.GoStmt:
			if idx.isSourceCall(f, n.Call) {
				s.report(n.Call.Pos(), "error from %s is discarded by the go statement — the goroutine must handle it", callName(n.Call))
			}
		}
		return true
	})

	// Pass 2 (flow-sensitive): assignments whose error is never read.
	cfg := idx.prog.CFGOf(f)
	cfg.Forward(FlowSpec{
		Init: func() any { return reachSet{} },
		Transfer: func(b *Block, in any) any {
			st := in.(reachSet).clone()
			for _, n := range b.Nodes {
				s.node(n, st)
			}
			return st
		},
		Join: func(a, b any) any {
			x, y := a.(reachSet), b.(reachSet)
			j := x.clone()
			for d := range y {
				j[d] = true
			}
			return j
		},
		Equal: func(a, b any) bool {
			x, y := a.(reachSet), b.(reachSet)
			if len(x) != len(y) {
				return false
			}
			for d := range x {
				if !y[d] {
					return false
				}
			}
			return true
		},
	})

	out := s.direct
	for _, d := range s.order {
		if !s.used[d] {
			out = append(out, errflowFinding{
				pos: d.pos,
				msg: "error from " + s.defs[d] + " is assigned to " + d.obj.Name() + " but never read on any path — check it before the function exits",
			})
		}
	}
	return out
}

// reachSet is the dataflow state: the error defs that may reach this
// point unread.
type reachSet map[errDef]bool

func (r reachSet) clone() reachSet {
	c := make(reachSet, len(r))
	for d := range r {
		c[d] = true
	}
	return c
}

func (s *errflowScan) report(pos token.Pos, format string, args ...any) {
	if s.seen[pos] {
		return
	}
	s.seen[pos] = true
	s.direct = append(s.direct, errflowFinding{pos: pos, msg: fmt.Sprintf(format, args...)})
}

// node processes one CFG node in order: uses first (right-hand sides),
// then kills and new defs.
func (s *errflowScan) node(n ast.Node, st reachSet) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, rhs := range n.Rhs {
			s.uses(rhs, st)
		}
		for _, lhs := range n.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				s.kill(objOf(s.info, id), st)
			} else {
				s.uses(lhs, st) // x.f = v, m[k] = v: the base is read
			}
		}
		s.bindSources(n.Lhs, n.Rhs, n.Pos(), st)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) == 0 {
					continue
				}
				for _, v := range vs.Values {
					s.uses(v, st)
				}
				lhs := make([]ast.Expr, len(vs.Names))
				for i, name := range vs.Names {
					lhs[i] = name
				}
				s.bindSources(lhs, vs.Values, vs.Pos(), st)
			}
		}
	default:
		s.uses(n, st)
	}
}

// bindSources records a def for each source call bound to a trackable
// local, and reports sources bound straight to the blank identifier.
func (s *errflowScan) bindSources(lhs, rhs []ast.Expr, pos token.Pos, st reachSet) {
	bind := func(target ast.Expr, call *ast.CallExpr) {
		id, ok := ast.Unparen(target).(*ast.Ident)
		if !ok {
			return // stored into a field/element: visible elsewhere, assume read
		}
		if id.Name == "_" {
			s.report(call.Pos(), "error from %s is assigned to _ — check it", callName(call))
			return
		}
		obj := objOf(s.info, id)
		if obj == nil || s.exempt[obj] {
			return
		}
		d := errDef{obj: obj, pos: pos}
		if _, seen := s.defs[d]; !seen {
			s.defs[d] = callName(call)
			s.order = append(s.order, d)
		}
		st[d] = true
	}
	if len(rhs) == 1 && len(lhs) > 1 {
		// Tuple form: a, err := call() — the error is the last result.
		if call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr); ok && s.idx.isSourceCall(s.f, call) {
			bind(lhs[len(lhs)-1], call)
		}
		return
	}
	if len(lhs) != len(rhs) {
		return
	}
	for i, r := range rhs {
		if call, ok := ast.Unparen(r).(*ast.CallExpr); ok && s.idx.isSourceCall(s.f, call) {
			bind(lhs[i], call)
		}
	}
}

// uses marks every def of a variable read somewhere under n as live.
func (s *errflowScan) uses(n ast.Node, st reachSet) {
	nodeWalk(n, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok {
			if obj, ok := s.info.Uses[id].(*types.Var); ok {
				for d := range st {
					if d.obj == obj {
						s.used[d] = true
					}
				}
			}
		}
		return true
	})
}

func (s *errflowScan) kill(obj *types.Var, st reachSet) {
	if obj == nil {
		return
	}
	for d := range st {
		if d.obj == obj {
			delete(st, d)
		}
	}
}

func objOf(info *types.Info, id *ast.Ident) *types.Var {
	if obj, ok := info.Defs[id].(*types.Var); ok {
		return obj
	}
	if obj, ok := info.Uses[id].(*types.Var); ok {
		return obj
	}
	return nil
}

// exemptVars collects the variables the dead-assignment check must not
// track: captured by a function literal, address-taken, or named results
// (read implicitly by naked returns).
func exemptVars(f *Func) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	if f.Decl != nil && f.Decl.Type.Results != nil {
		for _, field := range f.Decl.Type.Results.List {
			for _, name := range field.Names {
				if obj, ok := f.Pkg.Info.Defs[name].(*types.Var); ok {
					out[obj] = true
				}
			}
		}
	}
	if f.Lit != nil && f.Lit.Type.Results != nil {
		for _, field := range f.Lit.Type.Results.List {
			for _, name := range field.Names {
				if obj, ok := f.Pkg.Info.Defs[name].(*types.Var); ok {
					out[obj] = true
				}
			}
		}
	}
	ast.Inspect(f.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			ast.Inspect(n.Body, func(c ast.Node) bool {
				if id, ok := c.(*ast.Ident); ok {
					if obj, ok := f.Pkg.Info.Uses[id].(*types.Var); ok {
						out[obj] = true
					}
				}
				return true
			})
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					if obj, ok := f.Pkg.Info.Uses[id].(*types.Var); ok {
						out[obj] = true
					}
				}
			}
		}
		return true
	})
	return out
}

// callName renders a call target for messages: the selector path of the
// call head, e.g. "tm.Sync" or "s.tm.WriteTrack".
func callName(call *ast.CallExpr) string {
	return exprPath(ast.Unparen(call.Fun)) + "()"
}

func exprPath(x ast.Expr) string {
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprPath(x.X) + "." + x.Sel.Name
	case *ast.CallExpr:
		return exprPath(x.Fun) + "()"
	case *ast.IndexExpr:
		return exprPath(x.X) + "[...]"
	default:
		return "call"
	}
}
