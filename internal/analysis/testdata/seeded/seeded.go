// Package seeded holds deliberately buggy code — one specimen per gated
// analyzer — for the linter's linter: TestSeededFixturesFire and the CI
// canary step load this package explicitly and assert that unlockpath,
// goroleak, errflow, globalstate, aliasret, bufown, sessionlife and
// ctxflow all fire. `./...` never matches a testdata directory, so these
// bugs are invisible to normal lint runs and builds.
package seeded

import (
	"context"
	"sync"
)

// globalstate specimen: a package-level counter mutated at runtime —
// shared by every shard the moment there are two.
var hits int

type cache struct {
	mu sync.Mutex
	m  map[string]int
}

// unlockpath specimen: the miss path returns before the deferred unlock
// is registered, leaving c.mu held forever.
func (c *cache) Get(k string) (int, bool) {
	c.mu.Lock()
	v, ok := c.m[k]
	if !ok {
		return 0, false
	}
	defer c.mu.Unlock()
	hits++
	return v, true
}

type dev struct{}

func (dev) Sync() error { return nil }

// errflow specimen: the durability error from Sync is discarded — the
// write is acknowledged but may never reach the platter.
func flush(d dev) {
	d.Sync()
}

type server struct {
	c cache
	d dev
}

func (s *server) churn() {
	for {
		s.c.Get("x")
		flush(s.d)
	}
}

// goroleak specimen: nothing can await or stop the goroutine — no
// WaitGroup, no done channel, no context.
func Start(s *server) {
	go s.churn()
}

// pool mimics the store's buffer slab: recycled track buffers waiting to
// be handed back out.
type pool struct {
	free [][]byte
}

// aliasret specimen: Grab pops a pooled buffer and returns it without
// copying, so the caller and the pool share one backing array — the next
// recycle/pop cycle scribbles over bytes the caller still holds.
func (p *pool) Grab() []byte {
	buf := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return buf
}

// slab mimics the commit path's reusable scratch buffers.
var slab = sync.Pool{New: func() any { return new([]byte) }}

// bufown specimen: the early return skips the Put, so the scratch buffer
// leaks out of the pool on every failure.
func render(fail bool) int {
	buf := slab.Get().(*[]byte)
	if fail {
		return 0
	}
	slab.Put(buf)
	return len(*buf)
}

// Session mimics internal/core's session shape for the sessionlife
// specimen.
type Session struct{ open bool }

func (s *Session) Close()                   { s.open = false }
func (s *Session) Execute(src string) error { return nil }

type registry struct{}

func (registry) NewSession(user, password string) (*Session, error) {
	return &Session{open: true}, nil
}

// sessionlife specimen: the Execute error path returns without closing the
// session it just created — the bootstrap-session-leak class.
func audit(r registry) error {
	s, err := r.NewSession("audit", "x")
	if err != nil {
		return err
	}
	if err := s.Execute("scan"); err != nil {
		return err
	}
	s.Close()
	return nil
}

func fetch(ctx context.Context, src string) error { return ctx.Err() }

// ctxflow specimen: a fresh root context below an entry point sheds the
// caller's deadline and cancellation.
func handle(ctx context.Context, src string) error {
	return fetch(context.Background(), src)
}
