// Package seeded holds deliberately buggy code — one specimen per gated
// analyzer — for the linter's linter: TestSeededFixturesFire and the CI
// canary step load this package explicitly and assert that unlockpath,
// goroleak, errflow, globalstate and aliasret all fire. `./...` never
// matches a testdata directory, so these bugs are invisible to normal
// lint runs and builds.
package seeded

import "sync"

// globalstate specimen: a package-level counter mutated at runtime —
// shared by every shard the moment there are two.
var hits int

type cache struct {
	mu sync.Mutex
	m  map[string]int
}

// unlockpath specimen: the miss path returns before the deferred unlock
// is registered, leaving c.mu held forever.
func (c *cache) Get(k string) (int, bool) {
	c.mu.Lock()
	v, ok := c.m[k]
	if !ok {
		return 0, false
	}
	defer c.mu.Unlock()
	hits++
	return v, true
}

type dev struct{}

func (dev) Sync() error { return nil }

// errflow specimen: the durability error from Sync is discarded — the
// write is acknowledged but may never reach the platter.
func flush(d dev) {
	d.Sync()
}

type server struct {
	c cache
	d dev
}

func (s *server) churn() {
	for {
		s.c.Get("x")
		flush(s.d)
	}
}

// goroleak specimen: nothing can await or stop the goroutine — no
// WaitGroup, no done channel, no context.
func Start(s *server) {
	go s.churn()
}

// pool mimics the store's buffer slab: recycled track buffers waiting to
// be handed back out.
type pool struct {
	free [][]byte
}

// aliasret specimen: Grab pops a pooled buffer and returns it without
// copying, so the caller and the pool share one backing array — the next
// recycle/pop cycle scribbles over bytes the caller still holds.
func (p *pool) Grab() []byte {
	buf := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return buf
}
