package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one parsed and type-checked target package.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// LoadPackages enumerates the packages matching the patterns with
// `go list -deps -export -json`, then parses and type-checks each
// non-dependency package from source. Dependencies (including the standard
// library) are imported from the compiler's export data, so the loader
// works offline with no tooling beyond the Go toolchain itself.
//
// Target packages are checked in the dependency order `go list -deps`
// emits, and each checked package is preferred over its export data when a
// later target imports it. Cross-package references between targets then
// resolve to the *same* types.Object the defining package's own check
// produced — the property the whole-program layer (BuildProgram) needs to
// link call graphs and field identities across packages.
func LoadPackages(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string) // import path -> export data file
	var targets []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			q := p
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	imp := &sourceFirstImporter{
		exports: exportImporter{fset: fset, exports: exports},
		source:  make(map[string]*types.Package),
	}
	var out []*Package
	for _, t := range targets {
		pkg, err := checkPackage(fset, t, imp)
		if err != nil {
			return nil, err
		}
		imp.source[pkg.Path] = pkg.Pkg
		out = append(out, pkg)
	}
	return out, nil
}

// sourceFirstImporter resolves imports from already source-checked target
// packages when possible, falling back to compiler export data. Sharing the
// source-checked types.Package across targets keeps types.Object identity
// consistent program-wide.
type sourceFirstImporter struct {
	exports exportImporter
	source  map[string]*types.Package
	fallbak types.Importer
}

func (s *sourceFirstImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := s.source[path]; ok {
		return pkg, nil
	}
	if s.fallbak == nil {
		s.fallbak = importer.ForCompiler(s.exports.fset, "gc", s.exports.lookup)
	}
	return s.fallbak.Import(path)
}

// exportImporter resolves imports from compiler export data, consulting
// `go list -export` for anything not already known.
type exportImporter struct {
	fset    *token.FileSet
	exports map[string]string
}

func (e exportImporter) lookup(path string) (io.ReadCloser, error) {
	if file, ok := e.exports[path]; ok {
		return os.Open(file)
	}
	out, err := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path).Output()
	if err != nil {
		return nil, fmt.Errorf("no export data for %s: %v", path, err)
	}
	file := strings.TrimSpace(string(out))
	if file == "" {
		return nil, fmt.Errorf("no export data for %s", path)
	}
	e.exports[path] = file
	return os.Open(file)
}

func checkPackage(fset *token.FileSet, lp *listedPackage, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{
		Importer: imp,
	}
	pkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %v", lp.ImportPath, err)
	}
	return &Package{Path: lp.ImportPath, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// NewInfo allocates the types.Info maps the analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}
