package analysis

import "testing"

const ooppureFixture = `package fx

import (
	"repro/internal/object"
	"repro/internal/oop"
)

func BadArith(a oop.OOP) oop.OOP { return a + 1 }

func BadInc(a oop.OOP) oop.OOP { a++; return a }

func BadShiftAssign(a oop.OOP) oop.OOP {
	a <<= 3
	return a
}

func BadReassign(ob *object.Object, c oop.OOP) { ob.Class = c }

func NewThing(c oop.OOP) *object.Object {
	ob := object.New(oop.Invalid, c, 0, object.FormatNamed)
	ob.Class = c // constructors may finish wiring identity
	return ob
}

type local struct{ id oop.OOP }

func SamePackageBookkeeping(l *local, o oop.OOP) { l.id = o }

func GoodCompare(a, b oop.OOP) bool { return a == b }
`

func TestOoppure(t *testing.T) {
	got := checkFixture(t, "repro/internal/core", ooppureFixture,
		Ooppure("repro/internal/oop"))
	wantFindings(t, got,
		"arithmetic (+) on oop.OOP",                   // BadArith
		"++ on oop.OOP",                               // BadInc
		"arithmetic assignment (<<=) on oop.OOP",      // BadShiftAssign
		"reassignment of OOP identity field ob.Class", // BadReassign
	)
}

func TestOoppureExemptsRepresentationPackage(t *testing.T) {
	// The package owning the tagged representation may do arithmetic.
	src := `package fx

import "repro/internal/oop"

func Shift(o oop.OOP) oop.OOP { return o + 1 }
`
	if got := checkFixture(t, "repro/internal/fx", src, Ooppure("repro/internal/fx")); len(got) != 0 {
		t.Fatalf("exempt package must not be flagged:\n%s", renderFindings(got))
	}
	got := checkFixture(t, "repro/internal/fx", src, Ooppure("repro/internal/oop"))
	wantFindings(t, got, "arithmetic (+) on oop.OOP")
}
