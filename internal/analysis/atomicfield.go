package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Atomicfield enforces all-or-nothing atomic access discipline: a struct
// field or package-level variable that is passed to a sync/atomic
// function (atomic.AddUint64(&s.n, 1), atomic.LoadInt64(&hits), …)
// anywhere in the program must be accessed through sync/atomic
// everywhere. A single plain load or store elsewhere is a data race the
// race detector only catches if a test happens to interleave it.
//
// Fields of the atomic.Uint64-style wrapper types are safe by
// construction (method-only access) and are not tracked. Composite-literal
// initialization (S{n: 0}) is exempt: construction precedes sharing.
func Atomicfield(paths ...string) *Analyzer {
	return &Analyzer{
		Name:  "atomicfield",
		Doc:   "fields accessed via sync/atomic anywhere must be accessed atomically everywhere",
		Paths: paths,
		Run:   runAtomicfield,
	}
}

func runAtomicfield(pass *Pass) {
	findings := pass.Prog.Once("atomicfield", func() any {
		return atomicfieldProgram(pass.Prog)
	}).([]aliasFinding)
	for _, f := range findings {
		pass.Reportf(f.pos, "%s", f.msg)
	}
}

func atomicfieldProgram(prog *Program) []aliasFinding {
	// Pass 1: every &x passed to a sync/atomic function marks x's
	// variable as atomically-accessed, with the first witness position.
	atomicVars := make(map[*types.Var]token.Pos)
	atomicArgs := make(map[ast.Expr]bool) // the &x expressions themselves
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicCall(pkg.Info, call) {
					return true
				}
				for _, arg := range call.Args {
					unary, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || unary.Op != token.AND {
						continue
					}
					if v := varOf(pkg.Info, unary.X); v != nil {
						atomicArgs[ast.Unparen(unary.X)] = true
						if _, seen := atomicVars[v]; !seen {
							atomicVars[v] = arg.Pos()
						}
					}
				}
				return true
			})
		}
	}
	if len(atomicVars) == 0 {
		return nil
	}

	// Pass 2: any other access to a marked variable is a finding, except
	// composite-literal initialization and the atomic call sites above.
	var out []aliasFinding
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			var visit func(n ast.Node) bool
			visit = func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CompositeLit:
					// Keys in S{field: v} construct before sharing; still
					// scan the element values.
					for _, elt := range n.Elts {
						if kv, ok := elt.(*ast.KeyValueExpr); ok {
							ast.Inspect(kv.Value, visit)
						} else {
							ast.Inspect(elt, visit)
						}
					}
					return false
				case *ast.SelectorExpr:
					if atomicArgs[n] {
						return false
					}
					if sel := pkg.Info.Selections[n]; sel != nil {
						if v, ok := sel.Obj().(*types.Var); ok {
							if witness, marked := atomicVars[v]; marked {
								out = append(out, atomicFinding(prog, n.Sel.Pos(), v, witness))
								return false
							}
						}
					}
					return true
				case *ast.Ident:
					if atomicArgs[n] {
						return false
					}
					if v, ok := pkg.Info.Uses[n].(*types.Var); ok && !v.IsField() {
						if witness, marked := atomicVars[v]; marked {
							out = append(out, atomicFinding(prog, n.Pos(), v, witness))
						}
					}
					return true
				}
				return true
			}
			ast.Inspect(file, visit)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

func atomicFinding(prog *Program, pos token.Pos, v *types.Var, witness token.Pos) aliasFinding {
	return aliasFinding{
		pos: pos,
		msg: "plain access to " + v.Name() + ", which is accessed via sync/atomic at " +
			shortPos(prog.Fset, witness) + "; use the atomic API everywhere or this read/write races",
	}
}

// isAtomicCall reports whether the call targets a sync/atomic function.
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic" && fn.Type().(*types.Signature).Recv() == nil
}

// varOf resolves an addressable expression to the field or package-level
// variable it denotes, or nil for locals (locals confined to one function
// are visible to the race detector and out of scope here).
func varOf(info *types.Info, x ast.Expr) *types.Var {
	switch x := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		if sel := info.Selections[x]; sel != nil {
			if v, ok := sel.Obj().(*types.Var); ok && v.IsField() {
				return v
			}
			return nil
		}
		if v, ok := info.Uses[x.Sel].(*types.Var); ok && !v.IsField() {
			return v // pkg.Var
		}
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok && !v.IsField() {
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v
			}
		}
	case *ast.IndexExpr:
		return varOf(info, x.X)
	}
	return nil
}
