package analysis

import (
	"strings"
	"testing"
)

// typestate_test.go exercises the engine's join, fixpoint, defer and alias
// behavior through the bufown protocol — the properties here are the
// engine's, not the analyzer's.

const tsPoolFixture = `package fx

import "sync"

var pool = sync.Pool{New: func() any { return new([]byte) }}
`

// TestTypestateJoinIsMay: a value consumed on only one of two inbound paths
// is may-consumed, so reading it afterwards is not reported; the missing put
// on the other path still is.
func TestTypestateJoinIsMay(t *testing.T) {
	got := checkFixture(t, "fixt/tsjoin", tsPoolFixture+`

func MaybeConsumed(cond bool) int {
	buf := pool.Get().(*[]byte)
	if cond {
		pool.Put(buf)
	}
	return len(*buf) // consumed on one path only: not a must-use-after
}
`, Bufown())
	wantFindings(t, got, "not returned to its pool on every path")
}

// TestTypestateJoinMustConsumed: consumed on every inbound path, the read
// after the join is a must-use-after.
func TestTypestateJoinMustConsumed(t *testing.T) {
	got := checkFixture(t, "fixt/tsmust", tsPoolFixture+`

func BothPaths(cond bool) int {
	buf := pool.Get().(*[]byte)
	if cond {
		pool.Put(buf)
	} else {
		pool.Put(buf)
	}
	return len(*buf) // consumed on every path: use-after
}
`, Bufown())
	wantFindings(t, got, "after it was already returned to its pool")
}

// TestTypestateLoopFixpoint: state reached around a back edge converges, a
// loop-carried consume is a may-fact (silent), and a use after a loop that
// consumes unconditionally on its first iteration stays silent too — the
// zero-iteration path keeps the value live into the join.
func TestTypestateLoopFixpoint(t *testing.T) {
	got := checkFixture(t, "fixt/tsloop", tsPoolFixture+`

func LoopConsume(n int) int {
	buf := pool.Get().(*[]byte)
	for i := 0; i < n; i++ {
		if i == 0 {
			pool.Put(buf)
		}
	}
	return len(*buf) // may-consumed around the back edge: silent
}
`, Bufown())
	wantFindings(t, got, "not returned to its pool on every path")
}

// TestTypestateDeferCoversLaterExits: a defer registered on a path covers
// every later exit on that path — and only that path.
func TestTypestateDeferCoversLaterExits(t *testing.T) {
	got := checkFixture(t, "fixt/tsdefer", tsPoolFixture+`

func PartialDefer(cond, fail bool) int {
	buf := pool.Get().(*[]byte)
	if cond {
		defer pool.Put(buf)
		if fail {
			return 0 // covered by the defer above
		}
		return 1 // covered
	}
	return 2 // leak: no defer on this path
}
`, Bufown())
	wantFindings(t, got, "not returned to its pool on every path")
	if len(got) == 1 {
		if !strings.Contains(got[0].Message, "fixture.go:17") {
			t.Errorf("leak should name the uncovered exit fixture.go:17; got %q", got[0].Message)
		}
		if strings.Contains(got[0].Message, "fixture.go:13") || strings.Contains(got[0].Message, "fixture.go:15") {
			t.Errorf("leak names a defer-covered exit: %q", got[0].Message)
		}
	}
}

// TestTypestateAliasTopIsSilent: address-taken and closure-captured values
// are ⊤ — the engine stays silent even on an obvious leak, failing toward
// silence rather than guessing through aliases it cannot follow.
func TestTypestateAliasTopIsSilent(t *testing.T) {
	got := checkFixture(t, "fixt/tstop", tsPoolFixture+`

func use(p **[]byte) {}

func AddrTaken(fail bool) {
	buf := pool.Get().(*[]byte)
	use(&buf) // address taken: ⊤ from here on
	if fail {
		return // a leak the engine deliberately does not see
	}
	pool.Put(buf)
}

func Captured(fail bool) {
	buf := pool.Get().(*[]byte)
	f := func() { pool.Put(buf) }
	if fail {
		return // consumed only through the closure: ⊤, silent
	}
	f()
}
`, Bufown())
	wantFindings(t, got)
}

// TestTypestateAliasConsume: a consume through one alias consumes the cell
// for every name bound to it.
func TestTypestateAliasConsume(t *testing.T) {
	got := checkFixture(t, "fixt/tsalias", tsPoolFixture+`

func ViaAlias() {
	buf := pool.Get().(*[]byte)
	other := buf
	pool.Put(other) // consumes the one cell both names share
}

func UseOtherName() int {
	buf := pool.Get().(*[]byte)
	other := buf
	pool.Put(buf)
	return len(*other) // same cell: use-after through the second name
}
`, Bufown())
	wantFindings(t, got, "after it was already returned to its pool")
}
