package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Goroleak checks that every `go` statement spawns a goroutine tied to a
// lifecycle: something in the spawned function (or anything it statically
// calls) must be able to end it or hand its completion to a watcher — a
// sync.WaitGroup Done/Wait, a channel operation (send, receive, close,
// select, range over a channel — the done-channel idiom), a
// context.Context method, or a process exit. A goroutine with none of
// these is a leak-by-construction: nothing can observe it finish and
// nothing can tell it to stop, which is exactly what open item 3's
// 10k-connection wire layer cannot afford.
//
// Deliberate daemons (spawned once, intended to live for the process)
// are waivered at the go statement:
//
//	//lint:ignore goroleak metrics flusher is a process-lifetime daemon
//	go flushForever()
//
// Conservatism rules:
//
//   - The lifecycle search is transitive over the static call graph but
//     skips dynamic (interface / function-value) edges, so a goroutine
//     that reaches its done-channel only through an interface method is
//     a false positive — waive it with the reason.
//   - Spawns of external or dynamically-resolved functions (`go
//     conn.serve()` through an interface, `go fn()` for a parameter) stay
//     quiet: the body is not visible, so the analyzer cannot prove a
//     leak. Under-approximation, documented here.
//   - Any channel operation counts, not just a designated done-channel:
//     a worker that sends its result unblocks a receiver that owns its
//     lifetime. This over-approximates (a channel op on an unrelated
//     channel silences the check) in exchange for zero FPs on the
//     result-channel idiom.
func Goroleak(paths ...string) *Analyzer {
	return &Analyzer{
		Name:  "goroleak",
		Doc:   "every go statement is tied to a lifecycle (WaitGroup, channel, context, or waivered daemon)",
		Paths: paths,
		Run:   runGoroleak,
	}
}

type goroFinding struct {
	pos token.Pos
	msg string
}

func runGoroleak(pass *Pass) {
	findings := pass.Prog.Once("goroleak", func() any {
		return computeGoroleak(pass.Prog)
	}).([]goroFinding)
	for _, f := range findings {
		pass.Reportf(f.pos, "%s", f.msg)
	}
}

type goroleakIndex struct {
	prog      *Program
	lifecycle map[*Func]int8 // 0 unknown, 1 yes, 2 no
}

func computeGoroleak(prog *Program) []goroFinding {
	idx := &goroleakIndex{prog: prog, lifecycle: make(map[*Func]int8)}
	var out []goroFinding
	for _, f := range prog.Funcs {
		nodeWalk(f.Body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			target := idx.spawnTarget(f, g.Call)
			if target == nil || idx.hasLifecycle(target) {
				return true
			}
			out = append(out, goroFinding{
				pos: g.Pos(),
				msg: "goroutine " + target.Name + " has no lifecycle: nothing in it (or its static callees) touches a WaitGroup, channel, or context, so it can neither be awaited nor stopped — tie it to one, or waive a deliberate daemon",
			})
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

// spawnTarget resolves what a `go` statement runs: a function literal, a
// program-defined function or method, or nil when the target is external
// or dynamic (in which case the analyzer stays quiet).
func (idx *goroleakIndex) spawnTarget(f *Func, call *ast.CallExpr) *Func {
	fun := ast.Unparen(call.Fun)
	if lit, ok := fun.(*ast.FuncLit); ok {
		return idx.prog.byLit[lit]
	}
	var obj types.Object
	switch fun := fun.(type) {
	case *ast.Ident:
		obj = f.Pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = f.Pkg.Info.Uses[fun.Sel]
	}
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
				return nil // interface dispatch: body not known
			}
		}
		return idx.prog.FuncOf(fn)
	}
	return nil
}

// hasLifecycle reports whether f (or anything it statically calls)
// contains a lifecycle signal.
func (idx *goroleakIndex) hasLifecycle(f *Func) bool {
	switch idx.lifecycle[f] {
	case 1:
		return true
	case 2:
		return false
	}
	idx.lifecycle[f] = 2 // cycle cut: revisiting adds nothing
	found := false
	nodeWalk(f.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if lifecycleNode(f.Pkg.Info, n) {
			found = true
			return false
		}
		return true
	})
	if !found {
	search:
		for i := range f.Calls {
			c := &f.Calls[i]
			if c.Dynamic {
				continue
			}
			for _, callee := range c.Callees {
				if idx.hasLifecycle(callee) {
					found = true
					break search
				}
			}
		}
	}
	if found {
		idx.lifecycle[f] = 1
	}
	return found
}

// lifecycleNode recognizes one lifecycle signal in the AST.
func lifecycleNode(info *types.Info, n ast.Node) bool {
	switch n := n.(type) {
	case *ast.SendStmt, *ast.SelectStmt:
		return true
	case *ast.UnaryExpr:
		return n.Op == token.ARROW // channel receive
	case *ast.RangeStmt:
		if tv, ok := info.Types[n.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				return true
			}
		}
	case *ast.CallExpr:
		switch fun := ast.Unparen(n.Fun).(type) {
		case *ast.Ident:
			if _, ok := info.Uses[fun].(*types.Builtin); ok && fun.Name == "close" {
				return true
			}
		case *ast.SelectorExpr:
			return lifecycleMethod(info, fun)
		}
	}
	return false
}

// lifecycleMethod recognizes x.M() calls that tie a goroutine to a
// lifecycle: sync.WaitGroup's Done/Wait, any context.Context method, and
// the process exits (os.Exit, runtime.Goexit, log.Fatal*).
func lifecycleMethod(info *types.Info, sel *ast.SelectorExpr) bool {
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	if pkg := fn.Pkg(); pkg != nil {
		switch {
		case pkg.Path() == "os" && fn.Name() == "Exit",
			pkg.Path() == "runtime" && fn.Name() == "Goexit",
			pkg.Path() == "log" && strings.HasPrefix(fn.Name(), "Fatal"):
			return true
		}
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() {
	case "sync":
		return named.Obj().Name() == "WaitGroup" && (fn.Name() == "Done" || fn.Name() == "Wait")
	case "context":
		return named.Obj().Name() == "Context"
	}
	return false
}
