package analysis

import (
	"testing"
)

// TestRepoIsClean runs the full production analyzer set — including the
// whole-program lockorder/aliasret/atomicfield passes — over the real
// repository and asserts zero findings, exactly like `make lint`. A
// failure here means a change introduced an invariant violation (or a
// waiver went stale).
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole repository")
	}
	pkgs, err := LoadPackages("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("load repository: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	prog := BuildProgram(pkgs)
	analyzers := All()
	for _, pkg := range pkgs {
		for _, f := range RunAnalyzers(analyzers, prog, pkg) {
			t.Errorf("%s", f)
		}
	}
}

// TestSeededFixturesFire is the linter's linter: it loads the
// deliberately buggy testdata/seeded package (invisible to `./...`) and
// asserts every gated analyzer trips on its specimen — proof the
// production analyzer set still detects the bug classes it gates,
// including the aliasret pool-escape class the commit-path slabs depend
// on. CI runs the same check against the built gslint binary.
func TestSeededFixturesFire(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the seeded fixture package")
	}
	pkgs, err := LoadPackages("../..", []string{"./internal/analysis/testdata/seeded"})
	if err != nil {
		t.Fatalf("load seeded fixtures: %v", err)
	}
	prog := BuildProgram(pkgs)
	var got []Finding
	for _, pkg := range pkgs {
		got = append(got, RunAnalyzers(All(), prog, pkg)...)
	}
	want := map[string]bool{
		"unlockpath": false, "goroleak": false, "errflow": false,
		"globalstate": false, "aliasret": false,
		"bufown": false, "sessionlife": false, "ctxflow": false,
	}
	for _, f := range got {
		if _, seeded := want[f.Analyzer]; !seeded {
			t.Errorf("unexpected analyzer fired on the seeded fixtures: %s", f)
			continue
		}
		want[f.Analyzer] = true
	}
	for name, fired := range want {
		if !fired {
			t.Errorf("seeded bug for %s did not fire; the analyzer has gone blind:\n%s",
				name, renderFindings(got))
		}
	}
}

// TestRepoWaiversHaveReasons audits every //lint:ignore in the tree: each
// must name an analyzer and carry a non-empty reason (the -waivers
// contract), and name an analyzer that actually exists.
func TestRepoWaiversHaveReasons(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole repository")
	}
	pkgs, err := LoadPackages("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("load repository: %v", err)
	}
	all := All()
	n := 0
	for _, pkg := range pkgs {
		for _, w := range Waivers(pkg) {
			n++
			if w.Analyzer == "" || w.Reason == "" {
				t.Errorf("%s:%d: malformed waiver (analyzer=%q reason=%q)",
					w.Pos.Filename, w.Pos.Line, w.Analyzer, w.Reason)
				continue
			}
			if analyzerNamed(all, w.Analyzer) == nil {
				t.Errorf("%s:%d: waiver names unknown analyzer %q",
					w.Pos.Filename, w.Pos.Line, w.Analyzer)
			}
		}
	}
	if n == 0 {
		t.Error("expected at least one waiver in the tree (e.g. store.loadPageLocked's aliasret)")
	}
}
