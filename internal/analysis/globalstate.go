package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Globalstate checks that no package-level variable is mutated outside
// initialization — the shard-readiness invariant. Once the OOP space is
// sharded (ROADMAP open item 1), every process global is state shared by
// all shards; anything mutated at runtime through a global is a bug
// waiting for the second shard. Deliberate registries are waivered at
// the declaration:
//
//	//lint:ignore globalstate analyzer registry, populated only at init
//	var registry = map[string]*Analyzer{}
//
// One finding is reported per mutated variable, at its declaration, so a
// single waiver covers the registry no matter how many sites touch it.
//
// Conservatism rules:
//
//   - Initialization is exempt: the declaration's own initializer and
//     any statement inside a top-level init() function.
//   - Mutation means: assignment with the variable as the root of the
//     left-hand side (including element and field writes through a
//     value-typed variable), ++/--, taking the variable's address, or
//     calling a pointer-receiver method on a value-typed variable.
//   - Pointer-, channel- and function-typed variables are flagged only
//     on reassignment: writes through the pointee mutate whatever the
//     pointer targets, which locksafe/aliasret govern, not this check.
//   - Synchronization primitives (sync.Mutex & friends, sync/atomic
//     types) are exempt: calling Lock on a global mutex is the sanctioned
//     idiom, not hidden state.
//   - The scan is per-package: a cross-package mutation of an exported
//     variable is missed. Exported mutable globals are a finding in the
//     defining package the moment any same-package code mutates them.
func Globalstate(paths ...string) *Analyzer {
	return &Analyzer{
		Name:  "globalstate",
		Doc:   "no package-level mutable state outside waivered registries",
		Paths: paths,
		Run:   runGlobalstate,
	}
}

func runGlobalstate(pass *Pass) {
	// Package-level vars, in declaration order.
	type declared struct {
		obj *types.Var
		pos token.Pos
	}
	var vars []declared
	byObj := make(map[*types.Var]int)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue
					}
					obj, ok := pass.Info.Defs[name].(*types.Var)
					if !ok || syncPrimitive(obj.Type()) {
						continue
					}
					byObj[obj] = len(vars)
					vars = append(vars, declared{obj: obj, pos: name.Pos()})
				}
			}
		}
	}
	if len(vars) == 0 {
		return
	}

	mutations := make(map[*types.Var][]string)
	record := func(obj *types.Var, pos token.Pos, what string) {
		if _, ok := byObj[obj]; ok {
			mutations[obj] = append(mutations[obj],
				fmt.Sprintf("%s at %s", what, shortPos(pass.Fset, pos)))
		}
	}
	// rootVar resolves the package-level variable an lvalue expression is
	// rooted at, or nil. direct reports a plain reassignment of the
	// variable itself (vs. a write through its elements/fields).
	rootVar := func(x ast.Expr) (obj *types.Var, direct bool) {
		direct = true
		for {
			switch e := ast.Unparen(x).(type) {
			case *ast.Ident:
				if v, ok := pass.Info.Uses[e].(*types.Var); ok {
					if _, ok := byObj[v]; ok {
						return v, direct
					}
				}
				return nil, false
			case *ast.SelectorExpr:
				x, direct = e.X, false
			case *ast.IndexExpr:
				x, direct = e.X, false
			case *ast.StarExpr:
				return nil, false // *p = v mutates the pointee, not p
			case *ast.SliceExpr:
				x, direct = e.X, false
			default:
				return nil, false
			}
		}
	}
	lvalue := func(x ast.Expr, pos token.Pos, what string) {
		if id, ok := ast.Unparen(x).(*ast.Ident); ok {
			if v, ok := pass.Info.Uses[id].(*types.Var); ok {
				record(v, pos, what)
			}
			return
		}
		obj, _ := rootVar(x)
		if obj == nil {
			return
		}
		// Writes through a pointer-like global mutate the target, not
		// the global; only value-typed globals carry the state.
		if !pointerLike(obj.Type()) {
			record(obj, pos, "element/field write")
		}
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Recv == nil && fd.Name.Name == "init" {
				continue // initialization is the registry idiom
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
							if v, ok := pass.Info.Uses[id].(*types.Var); ok {
								record(v, n.Pos(), "reassignment")
							}
							continue
						}
						lvalue(lhs, n.Pos(), "element/field write")
					}
				case *ast.IncDecStmt:
					lvalue(n.X, n.Pos(), "increment")
				case *ast.UnaryExpr:
					if n.Op == token.AND {
						if obj, direct := rootVar(n.X); obj != nil && direct && !pointerLike(obj.Type()) {
							record(obj, n.Pos(), "address taken")
						}
					}
				case *ast.CallExpr:
					if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
						if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
							if v, ok := pass.Info.Uses[id].(*types.Var); ok {
								if _, global := byObj[v]; global && !pointerLike(v.Type()) && pointerReceiver(pass.Info, sel) {
									record(v, n.Pos(), fmt.Sprintf("pointer-receiver call %s", sel.Sel.Name))
								}
							}
						}
					}
				}
				return true
			})
		}
	}

	type hit struct {
		obj   *types.Var
		pos   token.Pos
		sites []string
	}
	var hits []hit
	for _, d := range vars {
		if sites := mutations[d.obj]; len(sites) > 0 {
			sort.Strings(sites)
			hits = append(hits, hit{obj: d.obj, pos: d.pos, sites: sites})
		}
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].pos < hits[j].pos })
	for _, h := range hits {
		const max = 3
		sites := h.sites
		more := ""
		if len(sites) > max {
			more = fmt.Sprintf(" and %d more", len(sites)-max)
			sites = sites[:max]
		}
		pass.Reportf(h.pos,
			"package-level var %s is mutable state (%s%s): in a per-shard world every process global is shared by all shards — move it into the owning struct, or waive a deliberate registry",
			h.obj.Name(), strings.Join(sites, ", "), more)
	}
}

// pointerLike reports types whose value does not itself carry the shared
// state: writes through them mutate a target object, not the global.
func pointerLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}

// pointerReceiver reports whether the selected method has a pointer
// receiver (so calling it on a value-typed global mutates the global).
func pointerReceiver(info *types.Info, sel *ast.SelectorExpr) bool {
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, isPtr := sig.Recv().Type().(*types.Pointer)
	return isPtr
}

// syncPrimitive exempts the synchronization types whose methods are the
// sanctioned way to use a global.
func syncPrimitive(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "sync":
		switch obj.Name() {
		case "Mutex", "RWMutex", "WaitGroup", "Once", "Map", "Pool", "Cond":
			return true
		}
	case "sync/atomic":
		return true
	}
	return false
}
