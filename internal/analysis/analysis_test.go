package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// checkFixture type-checks src as a single-file package with the given
// import path and runs the analyzers over it, returning the surviving
// findings. Imports resolve through the same export-data importer gslint
// uses, so fixtures may import sync, sort or repro packages.
func checkFixture(t *testing.T, pkgPath, src string, analyzers ...*Analyzer) []Finding {
	t.Helper()
	return checkFixtures(t, []fixturePkg{{path: pkgPath, src: src}}, analyzers...)
}

// fixturePkg is one single-file package of a multi-package fixture.
type fixturePkg struct {
	path string
	src  string
}

// checkFixtures type-checks the fixture packages in order — dependencies
// first, so later fixtures can import earlier ones by path — builds the
// whole-program layer over them, and returns every package's surviving
// findings concatenated in package order.
func checkFixtures(t *testing.T, fixtures []fixturePkg, analyzers ...*Analyzer) []Finding {
	t.Helper()
	pkgs := fixturePackages(t, fixtures)
	prog := BuildProgram(pkgs)
	var out []Finding
	for _, pkg := range pkgs {
		out = append(out, RunAnalyzers(analyzers, prog, pkg)...)
	}
	return out
}

// fixturePackages parses and type-checks the fixture packages in order,
// wiring later packages' imports to earlier packages' source-checked
// types the same way LoadPackages does for the real tree.
func fixturePackages(t *testing.T, fixtures []fixturePkg) []*Package {
	t.Helper()
	fset := token.NewFileSet()
	imp := &sourceFirstImporter{
		exports: exportImporter{fset: fset, exports: map[string]string{}},
		source:  make(map[string]*types.Package),
	}
	var pkgs []*Package
	for i, fx := range fixtures {
		name := "fixture.go"
		if i > 0 {
			name = fmt.Sprintf("fixture%d.go", i)
		}
		f, err := parser.ParseFile(fset, name, fx.src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse fixture %s: %v", fx.path, err)
		}
		info := NewInfo()
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(fx.path, fset, []*ast.File{f}, info)
		if err != nil {
			t.Fatalf("type-check fixture %s: %v", fx.path, err)
		}
		imp.source[fx.path] = pkg
		pkgs = append(pkgs, &Package{Path: fx.path, Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info})
	}
	return pkgs
}

// wantFindings asserts that got has exactly one finding per want entry, in
// order, each whose message contains the corresponding substring.
func wantFindings(t *testing.T, got []Finding, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%s", len(got), len(want), renderFindings(got))
	}
	for i, w := range want {
		if !strings.Contains(got[i].Message, w) {
			t.Errorf("finding %d = %q, want substring %q", i, got[i].Message, w)
		}
	}
}

func renderFindings(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString("  " + f.String() + "\n")
	}
	if b.Len() == 0 {
		return "  (none)"
	}
	return b.String()
}

const suppressionFixture = `package fx

func Suppressed(m map[string]int) int {
	n := 0
	//lint:ignore detmap order does not matter for a count
	for range m {
		n++
	}
	return n
}

func Unused(x int) int {
	//lint:ignore detmap nothing on this line ever fires
	return x
}

func Malformed(m map[string]int) int {
	n := 0
	//lint:ignore detmap
	for range m {
		n++
	}
	return n
}

func Unknown(x int) int {
	//lint:ignore nosuchanalyzer because reasons
	return x
}
`

func TestSuppressions(t *testing.T) {
	got := checkFixture(t, "repro/internal/store", suppressionFixture,
		Detmap("repro/internal/store"))
	// Suppressed's loop is waived; Malformed's suppression lacks a reason so
	// its loop still fires and the comment itself is reported; the unused
	// and unknown-analyzer suppressions are reported.
	wantFindings(t, got,
		"unused suppression for detmap", // line 13
		"malformed suppression",         // line 19
		"iteration over map",            // Malformed's loop (line 20)
		"unknown analyzer",              // line 27
	)
}

func TestAnalyzerScoping(t *testing.T) {
	// The same offending source is clean when the package is outside the
	// analyzer's path set.
	src := `package fx

func Sum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
`
	if got := checkFixture(t, "repro/internal/experiments", src, Detmap("repro/internal/store")); len(got) != 0 {
		t.Fatalf("out-of-scope package produced findings:\n%s", renderFindings(got))
	}
	if got := checkFixture(t, "repro/internal/store/sub", src, Detmap("repro/internal/store")); len(got) != 1 {
		t.Fatalf("subdirectory of a scoped path must be covered:\n%s", renderFindings(got))
	}
}
