package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// Program is gslint's whole-program layer: every loaded package, a
// conservative call graph over them, and per-function summaries (lock
// acquisitions/releases, call sites) that the interprocedural analyzers
// (lockorder, aliasret, atomicfield) build on. It is constructed once per
// gslint run by BuildProgram and handed to every Pass.
//
// Conservatism rules (what the call graph over- and under-approximates):
//
//   - Direct calls and method calls on concrete types resolve to exactly
//     their target when the target is defined in a loaded package.
//     Calls into packages outside the program (stdlib, export-data deps)
//     have no body and are treated as acquiring no program locks and
//     retaining no arguments.
//   - Interface method calls resolve to EVERY method of that name on a
//     program-defined concrete type that implements the interface.
//   - Calls through function values (fields, variables, parameters)
//     resolve to every program function whose address is taken somewhere
//     in the program and whose signature matches the call — including
//     method values and function literals.
//   - A function literal is additionally assumed callable at its creation
//     site (an edge from the enclosing function), so locks acquired by a
//     closure are charged against locks held where the closure is made.
//     This over-approximates `defer`red and stored closures and treats
//     spawned goroutines as calls — deliberate: a goroutine spawned and
//     awaited under a lock orders locks exactly as a call does.
//   - Lock identity is the mutex *field* (or package-level variable): all
//     instances of a struct type share one lock node. Function-local
//     mutexes and mutexes embedded anonymously are out of scope.
type Program struct {
	Fset  *token.FileSet
	Pkgs  []*Package
	Funcs []*Func // deterministic order: package load order, then position

	byObj   map[*types.Func]*Func
	byLit   map[*ast.FuncLit]*Func
	byPath  map[string]*Package
	named   []*types.Named          // program-defined named types
	taken   map[string][]*Func      // sigKey -> address-taken functions
	ifaceMu map[ifaceMethod][]*Func // interface dispatch cache
	memoMu  sync.Mutex
	memo    map[string]*memoEntry // per-analyzer whole-program results
	cfgMu   sync.Mutex
	cfgs    map[*Func]*CFG // lazily built control-flow graphs
}

// memoEntry is one single-flight Once slot: the first caller computes while
// later callers for the same key block on done.
type memoEntry struct {
	done chan struct{}
	v    any
}

type ifaceMethod struct {
	iface *types.Interface
	name  string
}

// Func is one function or method body in the program, with the summaries
// the interprocedural analyzers need.
type Func struct {
	Name string      // display name: pkg.Fn, pkg.(*T).M, or pkg.Fn.func@line
	Obj  *types.Func // nil for function literals
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	Pkg  *Package
	Body *ast.BlockStmt

	Calls []Call      // resolved call sites, ascending position
	Locks []LockEvent // mutex operations, ascending position

	rawCalls []*ast.CallExpr
}

// Call is one call site and its resolved static targets. Dynamic reports
// whether resolution went through interface dispatch or signature matching
// (and may therefore include functions never actually called here).
type Call struct {
	Pos     token.Pos
	Callees []*Func
	Dynamic bool
}

// LockOp distinguishes acquisitions from releases.
type LockOp uint8

// Lock operations.
const (
	LockAcquire LockOp = iota
	LockRelease
)

// LockEvent is one mutex operation inside a function body.
type LockEvent struct {
	Pos      token.Pos
	Lock     LockID
	Op       LockOp
	Read     bool // RLock/RUnlock
	Deferred bool // directly deferred: runs at function exit
}

// LockID names one program lock: a sync.Mutex/RWMutex struct field or
// package-level variable. All instances of the owning struct share the ID.
type LockID struct {
	Var  *types.Var
	name string
}

func (l LockID) String() string { return l.name }

// Valid reports whether the ID names a lock.
func (l LockID) Valid() bool { return l.Var != nil }

// BuildProgram links the packages into a Program: it creates a Func node
// for every function, method and function literal body, records their lock
// events, and resolves every call site per the conservatism rules above.
func BuildProgram(pkgs []*Package) *Program {
	p := &Program{
		Pkgs:    pkgs,
		byObj:   make(map[*types.Func]*Func),
		byLit:   make(map[*ast.FuncLit]*Func),
		byPath:  make(map[string]*Package),
		taken:   make(map[string][]*Func),
		ifaceMu: make(map[ifaceMethod][]*Func),
		memo:    make(map[string]*memoEntry),
	}
	if len(pkgs) > 0 {
		p.Fset = pkgs[0].Fset
	}
	for _, pkg := range pkgs {
		p.byPath[pkg.Path] = pkg
		scope := pkg.Pkg.Scope()
		names := scope.Names() // already sorted
		for _, name := range names {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok {
				if named, ok := tn.Type().(*types.Named); ok {
					p.named = append(p.named, named)
				}
			}
		}
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			p.collectFile(pkg, file)
		}
	}
	p.resolveCalls()
	return p
}

// FuncOf returns the program node for a declared function or method, or
// nil when fn is external to the program (or nil).
func (p *Program) FuncOf(fn *types.Func) *Func {
	if fn == nil {
		return nil
	}
	return p.byObj[fn]
}

// Once computes a whole-program result at most once per run. Analyzers
// that work globally use it so each per-package pass replays one shared
// computation instead of re-deriving it. Safe for concurrent passes: the
// first caller for a key computes, later callers block until it finishes
// (single-flight), so the parallel driver never duplicates a global phase.
func (p *Program) Once(key string, compute func() any) any {
	p.memoMu.Lock()
	if e, ok := p.memo[key]; ok {
		p.memoMu.Unlock()
		<-e.done
		return e.v
	}
	e := &memoEntry{done: make(chan struct{})}
	p.memo[key] = e
	p.memoMu.Unlock()
	e.v = compute()
	close(e.done)
	return e.v
}

// collectFile creates Func nodes for a file's declarations, including
// function literals inside them.
func (p *Program) collectFile(pkg *Package, file *ast.File) {
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Body == nil {
				continue
			}
			obj, _ := pkg.Info.Defs[d.Name].(*types.Func)
			f := &Func{
				Name: declName(pkg, d, obj),
				Obj:  obj,
				Decl: d,
				Pkg:  pkg,
				Body: d.Body,
			}
			p.Funcs = append(p.Funcs, f)
			if obj != nil {
				p.byObj[obj] = f
			}
			p.walkBody(pkg, f, d.Body)
		case *ast.GenDecl:
			// Function literals in package-level initializers get their
			// own (parentless) nodes so stored closures stay reachable
			// through signature matching.
			ast.Inspect(d, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					p.litNode(pkg, nil, lit)
					return false
				}
				return true
			})
		}
	}
}

func declName(pkg *Package, d *ast.FuncDecl, obj *types.Func) string {
	if d.Recv != nil && len(d.Recv.List) == 1 {
		recv := "?"
		if obj != nil {
			if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
				recv = types.TypeString(sig.Recv().Type(), types.RelativeTo(pkg.Pkg))
			}
		}
		return fmt.Sprintf("%s.(%s).%s", pkg.Pkg.Name(), recv, d.Name.Name)
	}
	return pkg.Pkg.Name() + "." + d.Name.Name
}

// litNode creates (and registers) the node for a function literal and
// walks its body. parent, when non-nil, is assumed to call the literal at
// its creation position.
func (p *Program) litNode(pkg *Package, parent *Func, lit *ast.FuncLit) *Func {
	base := pkg.Pkg.Name()
	if parent != nil {
		base = parent.Name
	}
	f := &Func{
		Name: fmt.Sprintf("%s.func@%s", base, shortPos(pkg.Fset, lit.Pos())),
		Lit:  lit,
		Pkg:  pkg,
		Body: lit.Body,
	}
	p.Funcs = append(p.Funcs, f)
	p.byLit[lit] = f
	if parent != nil {
		parent.Calls = append(parent.Calls, Call{Pos: lit.Pos(), Callees: []*Func{f}})
	}
	p.walkBody(pkg, f, lit.Body)
	return f
}

// walkBody records f's lock events and raw call sites, creating child
// nodes for nested function literals (whose bodies it does not descend
// into — they are their own functions).
func (p *Program) walkBody(pkg *Package, f *Func, body *ast.BlockStmt) {
	var walk func(n ast.Node, deferred bool)
	walk = func(n ast.Node, deferred bool) {
		if n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.DeferStmt:
			// The call expression itself runs deferred; its arguments are
			// evaluated immediately, but for lock summaries only the
			// deferred Unlock matters.
			walk(n.Call, true)
			return
		case *ast.FuncLit:
			p.litNode(pkg, f, n)
			return
		case *ast.CallExpr:
			if ev, ok := lockEventOf(pkg.Info, n, deferred); ok {
				f.Locks = append(f.Locks, ev)
			} else {
				f.rawCalls = append(f.rawCalls, n)
			}
			walk(n.Fun, false)
			for _, a := range n.Args {
				walk(a, false)
			}
			return
		}
		deferredHere := false // defer applies to the outermost call only
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			walk(c, deferredHere)
			return false
		})
	}
	for _, stmt := range body.List {
		walk(stmt, false)
	}
	sort.Slice(f.Locks, func(i, j int) bool { return f.Locks[i].Pos < f.Locks[j].Pos })
}

// lockEventOf recognizes x.mu.Lock() / RLock / Unlock / RUnlock where the
// lock resolves to a struct field or package-level sync.Mutex/RWMutex.
func lockEventOf(info *types.Info, call *ast.CallExpr, deferred bool) (LockEvent, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return LockEvent{}, false
	}
	var op LockOp
	var read bool
	switch sel.Sel.Name {
	case "Lock":
		op = LockAcquire
	case "RLock":
		op, read = LockAcquire, true
	case "Unlock":
		op = LockRelease
	case "RUnlock":
		op, read = LockRelease, true
	default:
		return LockEvent{}, false
	}
	id, ok := lockIDOf(info, sel.X)
	if !ok {
		return LockEvent{}, false
	}
	return LockEvent{Pos: call.Pos(), Lock: id, Op: op, Read: read, Deferred: deferred}, true
}

// lockIDOf resolves the expression a Lock/Unlock method is called on to a
// lock identity. Struct fields (through any selector chain) and
// package-level variables qualify; function-local mutexes do not.
func lockIDOf(info *types.Info, x ast.Expr) (LockID, bool) {
	x = ast.Unparen(x)
	switch x := x.(type) {
	case *ast.SelectorExpr:
		if s := info.Selections[x]; s != nil {
			v, ok := s.Obj().(*types.Var)
			if !ok || !v.IsField() || !isMutexType(v.Type()) {
				return LockID{}, false
			}
			owner := ownerName(s.Recv())
			return LockID{Var: v, name: pkgName(v) + owner + "." + v.Name()}, true
		}
		// pkg.Mu: a package-qualified variable.
		if v, ok := info.Uses[x.Sel].(*types.Var); ok && !v.IsField() && isMutexType(v.Type()) {
			return LockID{Var: v, name: pkgName(v) + v.Name()}, true
		}
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok && !v.IsField() && isMutexType(v.Type()) {
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return LockID{Var: v, name: pkgName(v) + v.Name()}, true
			}
		}
	}
	return LockID{}, false
}

func pkgName(v *types.Var) string {
	if v.Pkg() == nil {
		return ""
	}
	return v.Pkg().Name() + "."
}

func ownerName(recv types.Type) string {
	for {
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
			continue
		}
		break
	}
	if named, ok := recv.(*types.Named); ok {
		return named.Obj().Name()
	}
	return types.TypeString(recv, nil)
}

func isMutexType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// resolveCalls runs after every node exists: it registers address-taken
// functions, then resolves each raw call site to its targets.
func (p *Program) resolveCalls() {
	// Which expressions are call heads (not value references)?
	callHeads := make(map[ast.Node]bool)
	for _, f := range p.Funcs {
		for _, call := range f.rawCalls {
			callHeads[ast.Unparen(call.Fun)] = true
		}
	}
	// Address-taken named functions and methods: any reference outside a
	// call head. Function literals: taken unless invoked where written.
	for _, f := range p.Funcs {
		if f.Lit != nil && !callHeads[f.Lit] {
			p.take(f)
		}
	}
	for _, pkg := range p.Pkgs {
		takeObj := func(obj types.Object) {
			if fn, ok := obj.(*types.Func); ok {
				if target := p.byObj[fn]; target != nil {
					p.take(target)
				}
			}
		}
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if !callHeads[n] {
					takeObj(pkg.Info.Uses[n])
				}
			case *ast.SelectorExpr:
				// x.M as a value is a method-value reference; x.M(...) is
				// not. Either way the Sel ident must not be revisited on
				// its own (it names the same *types.Func), so recurse
				// into the base only.
				if !callHeads[n] {
					takeObj(pkg.Info.Uses[n.Sel])
				}
				ast.Inspect(n.X, visit)
				return false
			}
			return true
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, visit)
		}
	}
	for _, funcs := range p.taken {
		sort.Slice(funcs, func(i, j int) bool { return funcs[i].Name < funcs[j].Name })
	}
	for _, f := range p.Funcs {
		for _, call := range f.rawCalls {
			if c, ok := p.resolveCall(f.Pkg, call); ok {
				f.Calls = append(f.Calls, c)
			}
		}
		f.rawCalls = nil
		sort.Slice(f.Calls, func(i, j int) bool { return f.Calls[i].Pos < f.Calls[j].Pos })
	}
}

func (p *Program) take(f *Func) {
	key := p.sigKeyOf(f)
	if key == "" {
		return
	}
	for _, existing := range p.taken[key] {
		if existing == f {
			return
		}
	}
	p.taken[key] = append(p.taken[key], f)
}

// sigKeyOf returns the receiver-less signature key of a function node.
func (p *Program) sigKeyOf(f *Func) string {
	var sig *types.Signature
	switch {
	case f.Obj != nil:
		sig, _ = f.Obj.Type().(*types.Signature)
	case f.Lit != nil:
		if tv, ok := f.Pkg.Info.Types[f.Lit]; ok {
			sig, _ = tv.Type.(*types.Signature)
		}
	}
	if sig == nil {
		return ""
	}
	return sigKey(sig)
}

// sigKey renders a signature without its receiver, with full package
// paths, so method values and plain functions compare equal.
func sigKey(sig *types.Signature) string {
	var b strings.Builder
	b.WriteString("func(")
	for i := 0; i < sig.Params().Len(); i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(types.TypeString(sig.Params().At(i).Type(), nil))
	}
	if sig.Variadic() {
		b.WriteString("...")
	}
	b.WriteString(")(")
	for i := 0; i < sig.Results().Len(); i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(types.TypeString(sig.Results().At(i).Type(), nil))
	}
	b.WriteString(")")
	return b.String()
}

// resolveCall resolves one call site. ok is false for type conversions
// and builtins (no call at all).
func (p *Program) resolveCall(pkg *Package, call *ast.CallExpr) (Call, bool) {
	fun := ast.Unparen(call.Fun)
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return Call{}, false // conversion
	}
	// Generic instantiation: unwrap the index expression.
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(ix.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}
	var obj types.Object
	switch fun := fun.(type) {
	case *ast.FuncLit:
		return Call{Pos: call.Pos(), Callees: []*Func{p.byLit[fun]}}, true
	case *ast.Ident:
		obj = pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[fun.Sel]
	}
	switch obj := obj.(type) {
	case *types.Builtin:
		return Call{}, false
	case *types.Func:
		sig, _ := obj.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			if iface, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
				return Call{Pos: call.Pos(), Callees: p.implementers(iface, obj), Dynamic: true}, true
			}
		}
		if target := p.byObj[obj]; target != nil {
			return Call{Pos: call.Pos(), Callees: []*Func{target}}, true
		}
		// Generic instantiations use a distinct *types.Func; fall back to
		// the origin declaration.
		if origin := obj.Origin(); origin != obj {
			if target := p.byObj[origin]; target != nil {
				return Call{Pos: call.Pos(), Callees: []*Func{target}}, true
			}
		}
		return Call{Pos: call.Pos()}, true // external function
	}
	// Dynamic: a call through a function value. Conservatively target
	// every address-taken program function with a matching signature.
	if tv, ok := pkg.Info.Types[call.Fun]; ok {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			return Call{Pos: call.Pos(), Callees: p.taken[sigKey(sig)], Dynamic: true}, true
		}
	}
	return Call{Pos: call.Pos(), Dynamic: true}, true
}

// implementers resolves an interface method call to every program-defined
// concrete method that can satisfy it.
func (p *Program) implementers(iface *types.Interface, m *types.Func) []*Func {
	key := ifaceMethod{iface: iface, name: m.Name()}
	if cached, ok := p.ifaceMu[key]; ok {
		//lint:ignore aliasret the dispatch cache is immutable once computed; callers only read
		return cached
	}
	var out []*Func
	seen := make(map[*Func]bool)
	for _, named := range p.named {
		if types.IsInterface(named) {
			continue
		}
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, m.Pkg(), m.Name())
		if fn, ok := obj.(*types.Func); ok {
			if target := p.byObj[fn]; target != nil && !seen[target] {
				seen[target] = true
				out = append(out, target)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	p.ifaceMu[key] = out
	return out
}

// shortPos renders a position as base-filename:line for messages.
func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	file := p.Filename
	if i := strings.LastIndexByte(file, '/'); i >= 0 {
		file = file[i+1:]
	}
	return fmt.Sprintf("%s:%d", file, p.Line)
}
