package analysis

import (
	"go/ast"
)

// Bufown checks the pooled-buffer ownership discipline from the commit
// hot-path memory diet (PR 7): a buffer taken from a pool — sync.Pool Get,
// the store's takePage COW-page pool, the track layer's popTrack read
// buffers, the algebra executor's runScratch — must be returned to its
// pool exactly once on every path out of the taking function, never used
// after it was returned, and never stored into caller-visible state (the
// static generalization of the aliasret pool-escape canary and the -race
// pool churn test: "pool ∩ pageCache = ∅", "callers always get private
// copies").
//
// Conservatism rules (on top of the typestate engine's, see typestate.go):
//
//   - Births are direct calls to (*sync.Pool).Get and to program functions
//     named takePage or popTrack; consumes are (*sync.Pool).Put and
//     program functions named putPage or recycleLocked (last argument —
//     the repo's put accessors take the pool first and the buffer last),
//     plus any program helper the consume summary proves puts its
//     parameter back on every return. The pool accessors' own bodies are
//     exempt — their internal Get/Put is the mechanism being wrapped.
//   - Returning a live pooled value, storing it through a parameter,
//     receiver or package-level variable, sending it on a channel or
//     handing it to a goroutine are escape findings: a pooled value's
//     lifetime must close inside the function that took it. Deliberate
//     ownership transfers (a cache that recycles on eviction) carry
//     //lint:ignore bufown waivers at the store site.
//   - A store into a structure declared inside the body is ⊤ (silent), as
//     is capture by a closure — the dynamic churn test covers what the
//     engine cannot see.
func Bufown(paths ...string) *Analyzer {
	return &Analyzer{
		Name:  "bufown",
		Doc:   "pooled buffers follow take → use → put exactly once on every exit path and never escape",
		Paths: paths,
		Run:   runBufown,
	}
}

// bufownTakes and bufownPuts name the repo's pool accessors. Matched by
// function name over program-defined functions, so fixtures and future
// pools participate without registration.
var (
	bufownTakes = map[string]bool{"takePage": true, "popTrack": true}
	bufownPuts  = map[string]bool{"putPage": true, "recycleLocked": true}
)

func runBufown(pass *Pass) {
	findings := pass.Prog.Once("bufown", func() any {
		return RunTypestate(pass.Prog, bufownProtocol(pass.Prog), pass.Analyzer.Paths)
	}).([]tsFinding)
	for _, f := range findings {
		pass.Reportf(f.pos, "%s", f.msg)
	}
}

func bufownProtocol(prog *Program) *TSProtocol {
	return &TSProtocol{
		Birth: func(f *Func, call *ast.CallExpr) (string, int, bool) {
			fn := calleeFuncOf(f.Pkg.Info, call)
			if fn == nil {
				return "", 0, false
			}
			if fn.FullName() == "(*sync.Pool).Get" {
				return "pooled value from " + callName(call), 0, true
			}
			if bufownTakes[fn.Name()] && prog.FuncOf(fn) != nil {
				return "pooled buffer from " + callName(call), 0, true
			}
			return "", 0, false
		},
		Consume: func(f *Func, call *ast.CallExpr) (ast.Expr, string, bool) {
			fn := calleeFuncOf(f.Pkg.Info, call)
			if fn == nil || len(call.Args) < 1 {
				return nil, "", false
			}
			if fn.FullName() == "(*sync.Pool).Put" || (bufownPuts[fn.Name()] && prog.FuncOf(fn) != nil) {
				return call.Args[len(call.Args)-1], "returned to its pool", true
			}
			return nil, "", false
		},
		SkipFunc: func(f *Func) bool {
			return f.Obj != nil && (bufownTakes[f.Obj.Name()] || bufownPuts[f.Obj.Name()])
		},
		EscapeIsFinding: true,
		ReturnIsFinding: true,
		Consumed:        "returned to its pool",
		FixHint:         "put it back before each exit or defer the put",
	}
}
