package analysis

import "testing"

const wallclockFixture = `package fx

import (
	"math/rand"
	"time"
)

func BadNow() int64 { return time.Now().UnixNano() }

func BadSince(t0 time.Time) time.Duration { return time.Since(t0) }

func UsesRand() int { return rand.Int() }

func GoodDuration() time.Duration { return 5 * time.Second }
`

func TestWallclock(t *testing.T) {
	got := checkFixture(t, "repro/internal/txn", wallclockFixture,
		Wallclock("repro/internal/txn"))
	wantFindings(t, got,
		"import of math/rand", // the import itself, not any particular call
		"time.Now observes",   // BadNow
		"time.Since observes", // BadSince
	)
}
