package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Lockorder builds the interprocedural lock-acquisition graph: an edge
// A→B means some call chain acquires mutex B while holding mutex A. A
// cycle in that graph is a potential deadlock — two executions can wait
// on each other's lock — and is reported with the witness call chain for
// every edge of the cycle. Acquiring a lock already held on the same
// chain (a self-edge) is reported as recursive acquisition, which
// self-deadlocks immediately with Go's non-reentrant mutexes.
//
// Lock identity is the mutex field (or package-level variable): all
// instances of a struct type share one graph node, so the analyzer can't
// tell `a.mu` from `b.mu` when a and b are distinct instances of one
// type. Intentional instance-ordered designs (e.g. always locking the
// lower-serial instance first) need a waiver. Held sets are tracked by
// position, like locksafe: an early-return Unlock inside a branch ends
// the held range at the Unlock, under-approximating but avoiding false
// positives on branch-released locks.
func Lockorder(paths ...string) *Analyzer {
	return &Analyzer{
		Name:  "lockorder",
		Doc:   "interprocedural lock-acquisition cycles (potential deadlocks)",
		Paths: paths,
		Run:   runLockorder,
	}
}

// lockPathStep is one hop of a witness chain: a call into callee, or —
// when callee is nil — the acquisition itself.
type lockPathStep struct {
	pos    token.Pos
	callee *Func
	next   *lockPathStep
}

// lockEdge is one ordered pair in the acquisition graph with the first
// witness found for it.
type lockEdge struct {
	from, to LockID
	// Witness: inside fn, `from` is acquired at heldPos; the chain then
	// reaches an acquisition of `to` (chain's final step).
	fn      *Func
	heldPos token.Pos
	chain   *lockPathStep
}

type lockGraph struct {
	edges map[[2]string]*lockEdge
	nodes map[string]LockID
}

func runLockorder(pass *Pass) {
	g := pass.Prog.Once("lockorder", func() any {
		return buildLockGraph(pass.Prog)
	}).(*lockGraph)

	// Self-edges: recursive acquisition.
	var selfs []*lockEdge
	for key, e := range g.edges {
		if key[0] == key[1] {
			selfs = append(selfs, e)
		}
	}
	sort.Slice(selfs, func(i, j int) bool { return selfs[i].from.name < selfs[j].from.name })
	for _, e := range selfs {
		pass.Reportf(e.heldPos, "lock %s is re-acquired while already held: %s (mutexes are not reentrant)",
			e.from, witnessString(pass.Prog.Fset, e))
	}

	// Ordering cycles: strongly connected components with ≥2 locks.
	for _, cycle := range lockCycles(g) {
		var names []string
		for _, id := range cycle {
			names = append(names, id.String())
		}
		var witnesses []string
		var pos token.Pos
		for i, from := range cycle {
			to := cycle[(i+1)%len(cycle)]
			e := g.edges[[2]string{from.name, to.name}]
			if e == nil {
				continue
			}
			if pos == token.NoPos {
				pos = e.heldPos
			}
			witnesses = append(witnesses, witnessString(pass.Prog.Fset, e))
		}
		pass.Reportf(pos, "lock-order cycle %s → %s: %s",
			strings.Join(names, " → "), names[0], strings.Join(witnesses, "; "))
	}
}

// buildLockGraph computes every function's transitive acquisitions, then
// walks each body in position order tracking the held set and adding an
// edge held→acquired for every acquisition (direct or via a call) under a
// held lock.
func buildLockGraph(prog *Program) *lockGraph {
	acq := &acquireIndex{
		prog: prog,
		memo: make(map[*Func]map[string]*acquireInfo),
		on:   make(map[*Func]bool),
	}
	g := &lockGraph{
		edges: make(map[[2]string]*lockEdge),
		nodes: make(map[string]LockID),
	}
	for _, f := range prog.Funcs {
		walkHeldSets(f, acq, g)
	}
	return g
}

// acquireInfo is one lock a function can transitively acquire, with the
// shortest-discovered witness chain to the acquisition site.
type acquireInfo struct {
	lock  LockID
	chain *lockPathStep
}

// acquireIndex memoizes transitive acquisitions per function. Recursion
// in the call graph is cut with an on-stack guard: a cycle back into a
// function currently being summarized contributes that function's
// already-known acquisitions only, which converges because lock sets only
// grow along the first complete traversal.
type acquireIndex struct {
	prog *Program
	memo map[*Func]map[string]*acquireInfo
	on   map[*Func]bool
}

func (a *acquireIndex) of(f *Func) map[string]*acquireInfo {
	if m, ok := a.memo[f]; ok {
		//lint:ignore aliasret memoized summaries are immutable once computed; callers only read
		return m
	}
	if a.on[f] {
		return nil // recursion: contribute nothing on the back edge
	}
	a.on[f] = true
	m := make(map[string]*acquireInfo)
	for i := range f.Locks {
		ev := &f.Locks[i]
		if ev.Op != LockAcquire || ev.Deferred {
			continue
		}
		if _, ok := m[ev.Lock.name]; !ok {
			m[ev.Lock.name] = &acquireInfo{lock: ev.Lock, chain: &lockPathStep{pos: ev.Pos}}
		}
	}
	for i := range f.Calls {
		call := &f.Calls[i]
		for _, callee := range call.Callees {
			for name, info := range a.of(callee) {
				if _, ok := m[name]; !ok {
					m[name] = &acquireInfo{
						lock:  info.lock,
						chain: &lockPathStep{pos: call.Pos, callee: callee, next: info.chain},
					}
				}
			}
		}
	}
	delete(a.on, f)
	a.memo[f] = m
	return m
}

// walkHeldSets replays f's lock events and calls in position order,
// adding edges from every held lock to every acquisition that happens
// under it.
func walkHeldSets(f *Func, acq *acquireIndex, g *lockGraph) {
	type heldLock struct {
		id  LockID
		pos token.Pos
	}
	var held []heldLock

	addEdges := func(to *acquireInfo) {
		for _, h := range held {
			key := [2]string{h.id.name, to.lock.name}
			if _, ok := g.edges[key]; !ok {
				g.edges[key] = &lockEdge{
					from: h.id, to: to.lock,
					fn: f, heldPos: h.pos, chain: to.chain,
				}
				g.nodes[h.id.name] = h.id
				g.nodes[to.lock.name] = to.lock
			}
		}
	}

	li, ci := 0, 0
	for li < len(f.Locks) || ci < len(f.Calls) {
		if ci >= len(f.Calls) || (li < len(f.Locks) && f.Locks[li].Pos <= f.Calls[ci].Pos) {
			ev := &f.Locks[li]
			li++
			switch {
			case ev.Op == LockAcquire && !ev.Deferred:
				addEdges(&acquireInfo{lock: ev.Lock, chain: &lockPathStep{pos: ev.Pos}})
				held = append(held, heldLock{id: ev.Lock, pos: ev.Pos})
			case ev.Op == LockRelease && !ev.Deferred:
				for i := len(held) - 1; i >= 0; i-- {
					if held[i].id.name == ev.Lock.name {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			}
			// A deferred Unlock keeps the lock held to function end; a
			// deferred Lock is ignored (it runs after the body).
			continue
		}
		call := &f.Calls[ci]
		ci++
		if len(held) == 0 {
			continue
		}
		for _, callee := range call.Callees {
			sub := acq.of(callee)
			names := make([]string, 0, len(sub))
			for name := range sub {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				info := sub[name]
				addEdges(&acquireInfo{
					lock:  info.lock,
					chain: &lockPathStep{pos: call.Pos, callee: callee, next: info.chain},
				})
			}
		}
	}
}

// witnessString renders one edge's witness call chain.
func witnessString(fset *token.FileSet, e *lockEdge) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s holds %s (%s)", e.fn.Name, e.from, shortPos(fset, e.heldPos))
	for step := e.chain; step != nil; step = step.next {
		if step.callee != nil {
			fmt.Fprintf(&b, " → calls %s (%s)", step.callee.Name, shortPos(fset, step.pos))
		} else {
			fmt.Fprintf(&b, " → acquires %s (%s)", e.to, shortPos(fset, step.pos))
		}
	}
	return b.String()
}

// lockCycles finds the multi-lock strongly connected components of the
// graph and returns, for each, its shortest cycle starting from the
// lexicographically smallest lock, so findings are deterministic.
func lockCycles(g *lockGraph) [][]LockID {
	succ := make(map[string][]string)
	for key := range g.edges {
		if key[0] != key[1] {
			succ[key[0]] = append(succ[key[0]], key[1])
		}
	}
	for _, s := range succ {
		sort.Strings(s)
	}
	names := make([]string, 0, len(g.nodes))
	for name := range g.nodes {
		names = append(names, name)
	}
	sort.Strings(names)

	// Tarjan's SCC.
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var counter int
	var sccs [][]string
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succ[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) > 1 {
				sccs = append(sccs, scc)
			}
		}
	}
	for _, v := range names {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}

	var out [][]LockID
	for _, scc := range sccs {
		member := make(map[string]bool, len(scc))
		for _, v := range scc {
			member[v] = true
		}
		sort.Strings(scc)
		start := scc[0]
		cycle := shortestCycle(start, succ, member)
		ids := make([]LockID, len(cycle))
		for i, name := range cycle {
			ids[i] = g.nodes[name]
		}
		out = append(out, ids)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0].name < out[j][0].name })
	return out
}

// shortestCycle finds a shortest cycle through start within the SCC via
// breadth-first search.
func shortestCycle(start string, succ map[string][]string, member map[string]bool) []string {
	parent := map[string]string{start: ""}
	queue := []string{start}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range succ[v] {
			if !member[w] {
				continue
			}
			if w == start {
				// Reconstruct start → … → v.
				var rev []string
				for u := v; u != ""; u = parent[u] {
					rev = append(rev, u)
				}
				cycle := make([]string, 0, len(rev))
				for i := len(rev) - 1; i >= 0; i-- {
					cycle = append(cycle, rev[i])
				}
				return cycle
			}
			if _, seen := parent[w]; !seen {
				parent[w] = v
				queue = append(queue, w)
			}
		}
	}
	return []string{start} // unreachable for a true SCC
}
