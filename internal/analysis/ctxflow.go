package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Ctxflow protects the deadline-propagation chain from PR 9 (request
// deadlines ride the frame and flow as contexts through executor → session
// → interpreter) and any future cross-shard coordination path: a function
// that receives a context.Context must thread *that* context to its
// context-taking callees. Three failure shapes are findings, all scoped to
// functions that have a named context parameter — entry points that mint
// their own root context (main, servers, tests) are untouched:
//
//   - a call to context.Background() or context.TODO() anywhere below an
//     entry point: a fresh root silently sheds the caller's deadline and
//     cancellation;
//   - a literal nil passed in a context-typed parameter position: same
//     shedding, one step removed;
//   - a dropped parameter: the function's context is never read while the
//     body calls at least one context-taking callee — the chain is broken
//     at this link.
//
// Conservatism rules:
//
//   - The checks are flow-insensitive over the body including nested
//     function literals (a closure inherits its enclosing context
//     lexically); literals that declare their *own* context parameter are
//     pruned and checked as their own functions.
//   - "Context-taking callee" is judged by the call's static signature, so
//     dynamic and interface calls count; a function whose context flows
//     only into storage (SetContext) still counts as read.
//   - Deliberate detachment — a background janitor spawned from a
//     request-scoped function — carries a //lint:ignore ctxflow waiver
//     naming why the lifetimes must differ.
func Ctxflow(paths ...string) *Analyzer {
	return &Analyzer{
		Name:  "ctxflow",
		Doc:   "a function receiving a context threads that context to its context-taking callees",
		Paths: paths,
		Run:   runCtxflow,
	}
}

func runCtxflow(pass *Pass) {
	findings := pass.Prog.Once("ctxflow", func() any {
		return computeCtxflow(pass.Prog, pass.Analyzer.Paths)
	}).([]ctxFinding)
	for _, f := range findings {
		pass.Reportf(f.pos, "%s", f.msg)
	}
}

type ctxFinding struct {
	pos token.Pos
	msg string
}

// isCtxType recognizes context.Context.
func isCtxType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// ctxParamOf returns the declared context parameter of a function's type,
// or nil.
func ctxParamOf(info *types.Info, ft *ast.FuncType) *types.Var {
	if ft == nil || ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if obj, ok := info.Defs[name].(*types.Var); ok && isCtxType(obj.Type()) {
				if name.Name != "_" {
					return obj
				}
			}
		}
	}
	return nil
}

// funcTypeOf returns the syntactic type of a program function.
func funcTypeOf(f *Func) *ast.FuncType {
	switch {
	case f.Decl != nil:
		return f.Decl.Type
	case f.Lit != nil:
		return f.Lit.Type
	}
	return nil
}

// callSig returns the signature a call invokes, from the checked type of
// its head — resolves for static, dynamic and interface calls alike.
func callSig(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// sigTakesCtx reports whether any parameter of sig is context-typed.
func sigTakesCtx(sig *types.Signature) bool {
	if sig == nil {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isCtxType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

func computeCtxflow(prog *Program, paths []string) []ctxFinding {
	scope := &Analyzer{Paths: paths}
	var out []ctxFinding
	for _, f := range prog.Funcs {
		if !scope.applies(f.Pkg.Path) {
			continue
		}
		out = append(out, checkCtxflow(f)...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].pos != out[j].pos {
			return out[i].pos < out[j].pos
		}
		return out[i].msg < out[j].msg
	})
	return out
}

func checkCtxflow(f *Func) []ctxFinding {
	info := f.Pkg.Info
	ctxObj := ctxParamOf(info, funcTypeOf(f))
	if ctxObj == nil {
		return nil
	}
	var out []ctxFinding
	used := false
	callsCtxTaker := false

	// Walk the body including nested literals (they inherit the context
	// lexically), pruning literals that declare their own context
	// parameter — those are their own links in the chain.
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if ctxParamOf(info, n.Type) != nil {
				return false
			}
		case *ast.Ident:
			if info.Uses[n] == ctxObj {
				used = true
			}
		case *ast.CallExpr:
			if fn := calleeFuncOf(info, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" {
				if name := fn.Name(); name == "Background" || name == "TODO" {
					out = append(out, ctxFinding{
						pos: n.Pos(),
						msg: "context." + name + "() called in " + f.Name + ", which already receives " + ctxObj.Name() +
							" — a fresh root context sheds the caller's deadline and cancellation; derive from " + ctxObj.Name() + " instead",
					})
				}
			}
			if sig := callSig(info, n); sig != nil {
				if sigTakesCtx(sig) {
					callsCtxTaker = true
				}
				for i, a := range n.Args {
					pi := i
					if sig.Variadic() && pi >= sig.Params().Len() {
						pi = sig.Params().Len() - 1
					}
					if pi >= sig.Params().Len() {
						continue
					}
					if !isCtxType(sig.Params().At(pi).Type()) {
						continue
					}
					if id, ok := ast.Unparen(a).(*ast.Ident); ok && id.Name == "nil" && info.Uses[id] == types.Universe.Lookup("nil") {
						out = append(out, ctxFinding{
							pos: a.Pos(),
							msg: "nil passed as the context to " + callName(n) + " in " + f.Name +
								" — pass " + ctxObj.Name() + " so deadlines and cancellation propagate",
						})
					}
				}
			}
		}
		return true
	}
	ast.Inspect(f.Body, visit)

	// The dropped-parameter finding is subsumed when a fresh-root or nil
	// finding already fired here: the fix for those (use ctx) fixes this.
	if !used && callsCtxTaker && len(out) == 0 {
		out = append(out, ctxFinding{
			pos: ctxObj.Pos(),
			msg: f.Name + " receives " + ctxObj.Name() + " but never reads it while calling context-taking callees — thread it through or drop the parameter",
		})
	}
	return out
}
