package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Unlockpath checks that every Lock/RLock is paired with a release on
// every path out of the acquiring function: each early return, the normal
// fall-off exit, and explicit panics. A `defer mu.Unlock()` registered on
// the path covers every later exit (including panic unwinding — the
// "panics-via-defer" case); a plain Unlock covers only the paths that
// execute it. The check is interprocedural through the lock summaries:
// a call to a helper whose net effect releases the mutex on every return
// counts as the release, and a call to an acquire-helper counts as the
// acquisition (charged to the caller, who must then release it).
//
// Conservatism rules:
//
//   - Held-ness is a may-analysis over the CFG with per-exit-edge
//     checking: a lock acquired under a condition and released under the
//     same (correlated) condition elsewhere is reported, because the
//     analyzer cannot prove the conditions coincide — restructure or
//     waive such designs.
//   - A function that deliberately returns holding a lock (a naked
//     acquire helper) is reported at its own exits; if the design is
//     intentional, waive it at the acquisition site.
//   - Helper effects apply only to statically resolved single-target
//     calls whose net effect is identical on every return path; dynamic
//     and interface calls, and helpers with path-dependent effects,
//     contribute nothing.
//   - Release matching is mode-aware: Lock pairs with Unlock, RLock with
//     RUnlock; a deferred RUnlock does not cover a write Lock.
//   - Explicit panic(...) statements are exits; calls that merely may
//     panic are not, so only a deliberate panic under a held lock without
//     a deferred release is reported.
func Unlockpath(paths ...string) *Analyzer {
	return &Analyzer{
		Name:  "unlockpath",
		Doc:   "every Lock/RLock is released on every path out of the function",
		Paths: paths,
		Run:   runUnlockpath,
	}
}

type unlockFinding struct {
	pos token.Pos
	msg string
}

func runUnlockpath(pass *Pass) {
	findings := pass.Prog.Once("unlockpath", func() any {
		return computeUnlockpath(pass.Prog)
	}).([]unlockFinding)
	for _, f := range findings {
		pass.Reportf(f.pos, "%s", f.msg)
	}
}

// modeKey names a lock together with its read/write mode, the unit of
// pairing: Lock/Unlock share one key, RLock/RUnlock another.
func modeKey(id LockID, read bool) string {
	if read {
		return id.name + "/R"
	}
	return id.name
}

// upToken is one outstanding acquisition on some path.
type upToken struct {
	id   LockID
	read bool
	pos  token.Pos
}

// upState is the dataflow state: the acquisitions that may be
// outstanding, and the mode keys for which a deferred release has been
// registered on this path.
type upState struct {
	held   map[upToken]bool
	defers map[string]bool
}

func (s *upState) clone() *upState {
	c := &upState{held: make(map[upToken]bool, len(s.held)), defers: make(map[string]bool, len(s.defers))}
	for t := range s.held {
		c.held[t] = true
	}
	for k := range s.defers {
		c.defers[k] = true
	}
	return c
}

func upJoin(a, b any) any {
	x, y := a.(*upState), b.(*upState)
	j := x.clone()
	for t := range y.held {
		j.held[t] = true
	}
	for k := range y.defers {
		j.defers[k] = true
	}
	return j
}

func upEqual(a, b any) bool {
	x, y := a.(*upState), b.(*upState)
	if len(x.held) != len(y.held) || len(x.defers) != len(y.defers) {
		return false
	}
	for t := range x.held {
		if !y.held[t] {
			return false
		}
	}
	for k := range x.defers {
		if !y.defers[k] {
			return false
		}
	}
	return true
}

// lockEffect is a function's net lock effect as seen by its callers:
// net[k] > 0 means the lock is held on return (an acquire helper),
// net[k] < 0 means the function releases a lock its caller holds. known
// is false when paths disagree or the body is unanalyzable.
type lockEffect struct {
	known bool
	net   map[string]int
	refs  map[string]lockRef
}

type lockRef struct {
	id   LockID
	read bool
}

var unknownEffect = &lockEffect{}

// unlockpathIndex carries the per-run caches: helper effects, the set of
// functions that transitively touch locks, and call resolution.
type unlockpathIndex struct {
	prog    *Program
	effects map[*Func]*lockEffect
	onEff   map[*Func]bool
	touches map[*Func]int8 // 0 unknown, 1 yes, 2 no
	calls   map[*Func]map[token.Pos]*Call
}

func computeUnlockpath(prog *Program) []unlockFinding {
	idx := &unlockpathIndex{
		prog:    prog,
		effects: make(map[*Func]*lockEffect),
		onEff:   make(map[*Func]bool),
		touches: make(map[*Func]int8),
		calls:   make(map[*Func]map[token.Pos]*Call),
	}
	var out []unlockFinding
	for _, f := range prog.Funcs {
		if !idx.touchesLocks(f) {
			continue
		}
		out = append(out, idx.checkFunc(f)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

// touchesLocks reports whether f or anything it statically calls has lock
// events — the cheap gate before building CFGs.
func (idx *unlockpathIndex) touchesLocks(f *Func) bool {
	switch idx.touches[f] {
	case 1:
		return true
	case 2:
		return false
	}
	idx.touches[f] = 2 // cut cycles: a back edge contributes nothing new
	result := len(f.Locks) > 0
	if !result {
	search:
		for i := range f.Calls {
			for _, callee := range f.Calls[i].Callees {
				if idx.touchesLocks(callee) {
					result = true
					break search
				}
			}
		}
	}
	if result {
		idx.touches[f] = 1
	}
	return result
}

// callAt resolves a call expression through the program's resolved call
// sites, returning the single static target or nil (external, dynamic,
// interface, or multi-target).
func (idx *unlockpathIndex) callAt(f *Func, call *ast.CallExpr) *Func {
	m := idx.calls[f]
	if m == nil {
		m = make(map[token.Pos]*Call, len(f.Calls))
		for i := range f.Calls {
			c := &f.Calls[i]
			if _, ok := m[c.Pos]; !ok {
				m[c.Pos] = c
			}
		}
		idx.calls[f] = m
	}
	c := m[call.Pos()]
	if c == nil || c.Dynamic || len(c.Callees) != 1 {
		return nil
	}
	return c.Callees[0]
}

// lockWalk walks one CFG node in source order, reporting lock events to
// the callbacks: direct mutex operations, helper-call effects, and their
// deferred forms. Function literal bodies are pruned (they are their own
// functions); a literal invoked where it is written is resolved like any
// call.
type lockWalk struct {
	idx  *unlockpathIndex
	f    *Func
	info *types.Info

	acquire      func(id LockID, read bool, pos token.Pos)
	release      func(id LockID, read bool)
	deferRelease func(id LockID, read bool)
}

func (w *lockWalk) node(n ast.Node, deferred bool) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.DeferStmt:
		for _, a := range n.Call.Args {
			w.node(a, false) // arguments are evaluated at registration
		}
		w.call(n.Call, true)
		return
	case *ast.GoStmt:
		for _, a := range n.Call.Args {
			w.node(a, false)
		}
		return // the goroutine's locks are its own
	case *ast.FuncLit:
		return
	case *ast.CallExpr:
		w.node(n.Fun, false)
		for _, a := range n.Args {
			w.node(a, false)
		}
		w.call(n, deferred)
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		if c == n {
			return true
		}
		w.node(c, false)
		return false
	})
}

func (w *lockWalk) call(call *ast.CallExpr, deferred bool) {
	if ev, ok := lockEventOf(w.info, call, deferred); ok {
		switch {
		case ev.Op == LockRelease && deferred:
			w.deferRelease(ev.Lock, ev.Read)
		case ev.Op == LockAcquire && !deferred:
			w.acquire(ev.Lock, ev.Read, ev.Pos)
		case ev.Op == LockRelease:
			w.release(ev.Lock, ev.Read)
		}
		// A deferred Lock runs after the body; nothing to track.
		return
	}
	callee := w.idx.callAt(w.f, call)
	if callee == nil || callee == w.f {
		return
	}
	eff := w.idx.effectOf(callee)
	if !eff.known {
		return
	}
	keys := make([]string, 0, len(eff.net))
	for k := range eff.net {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		n, ref := eff.net[k], eff.refs[k]
		switch {
		case n < 0 && deferred:
			w.deferRelease(ref.id, ref.read)
		case n < 0:
			w.release(ref.id, ref.read)
		case n > 0 && !deferred:
			w.acquire(ref.id, ref.read, call.Pos())
		}
	}
}

// checkFunc runs the may-held analysis over f and reports every
// acquisition that can reach an exit uncovered.
func (idx *unlockpathIndex) checkFunc(f *Func) []unlockFinding {
	cfg := idx.prog.CFGOf(f)
	w := &lockWalk{idx: idx, f: f, info: f.Pkg.Info}
	res := cfg.Forward(FlowSpec{
		Init: func() any { return &upState{held: map[upToken]bool{}, defers: map[string]bool{}} },
		Transfer: func(b *Block, in any) any {
			st := in.(*upState).clone()
			w.acquire = func(id LockID, read bool, pos token.Pos) {
				st.held[upToken{id: id, read: read, pos: pos}] = true
			}
			w.release = func(id LockID, read bool) {
				for t := range st.held {
					if t.id.name == id.name && t.read == read {
						delete(st.held, t)
					}
				}
			}
			w.deferRelease = func(id LockID, read bool) {
				st.defers[modeKey(id, read)] = true
			}
			for _, n := range b.Nodes {
				w.node(n, false)
			}
			return st
		},
		Join:  upJoin,
		Equal: upEqual,
	})

	// One finding per leaked acquisition, naming every exit it reaches.
	exits := make(map[upToken][]string)
	for _, b := range cfg.ExitPreds() {
		out, ok := res.Out[b].(*upState)
		if !ok {
			continue // unreachable exit
		}
		for t := range out.held {
			if out.defers[modeKey(t.id, t.read)] {
				continue
			}
			exits[t] = append(exits[t], exitDesc(idx.prog.Fset, b))
		}
	}
	tokens := make([]upToken, 0, len(exits))
	for t := range exits {
		tokens = append(tokens, t)
	}
	sort.Slice(tokens, func(i, j int) bool { return tokens[i].pos < tokens[j].pos })
	var out []unlockFinding
	for _, t := range tokens {
		descs := exits[t]
		sort.Strings(descs)
		op := "Lock"
		if t.read {
			op = "RLock"
		}
		out = append(out, unlockFinding{
			pos: t.pos,
			msg: fmt.Sprintf("%s.%s() in %s is not released on every path: still held at %s — unlock before each exit or defer the unlock",
				t.id, op, f.Name, strings.Join(descs, ", ")),
		})
	}
	return out
}

func exitDesc(fset *token.FileSet, b *Block) string {
	switch t := b.Term.(type) {
	case *ast.ReturnStmt:
		return fmt.Sprintf("the return at %s", shortPos(fset, t.Pos()))
	case *ast.CallExpr:
		return fmt.Sprintf("the panic at %s", shortPos(fset, t.Pos()))
	default:
		return "function end"
	}
}

// effState is the summary-analysis state: net lock counts on this path
// and the deferred releases registered so far. bad marks a path mixture
// the summary cannot describe.
type effState struct {
	bad    bool
	net    map[string]int
	defers map[string]bool
	refs   map[string]lockRef
}

func (s *effState) clone() *effState {
	c := &effState{bad: s.bad, net: make(map[string]int, len(s.net)),
		defers: make(map[string]bool, len(s.defers)), refs: make(map[string]lockRef, len(s.refs))}
	for k, v := range s.net {
		c.net[k] = v
	}
	for k := range s.defers {
		c.defers[k] = true
	}
	for k, v := range s.refs {
		c.refs[k] = v
	}
	return c
}

func effSetsEqual(a, b *effState) bool {
	if len(a.net) != len(b.net) || len(a.defers) != len(b.defers) {
		return false
	}
	for k, v := range a.net {
		if b.net[k] != v {
			return false
		}
	}
	for k := range a.defers {
		if !b.defers[k] {
			return false
		}
	}
	return true
}

// effectOf computes (and memoizes) f's net lock effect by running the
// same walker over f's CFG with must-agreement joins: any path divergence
// makes the effect unknown, so callers apply only unambiguous helpers.
func (idx *unlockpathIndex) effectOf(f *Func) *lockEffect {
	if e, ok := idx.effects[f]; ok {
		return e
	}
	if idx.onEff[f] {
		return unknownEffect // recursion: give up on the back edge
	}
	if !idx.touchesLocks(f) {
		e := &lockEffect{known: true, net: map[string]int{}, refs: map[string]lockRef{}}
		idx.effects[f] = e
		return e
	}
	idx.onEff[f] = true
	defer delete(idx.onEff, f)

	cfg := idx.prog.CFGOf(f)
	w := &lockWalk{idx: idx, f: f, info: f.Pkg.Info}
	res := cfg.Forward(FlowSpec{
		Init: func() any {
			return &effState{net: map[string]int{}, defers: map[string]bool{}, refs: map[string]lockRef{}}
		},
		Transfer: func(b *Block, in any) any {
			st := in.(*effState).clone()
			w.acquire = func(id LockID, read bool, pos token.Pos) {
				k := modeKey(id, read)
				st.net[k]++
				st.refs[k] = lockRef{id, read}
			}
			w.release = func(id LockID, read bool) {
				k := modeKey(id, read)
				st.net[k]--
				st.refs[k] = lockRef{id, read}
			}
			w.deferRelease = func(id LockID, read bool) {
				k := modeKey(id, read)
				st.defers[k] = true
				st.refs[k] = lockRef{id, read}
			}
			for _, n := range b.Nodes {
				w.node(n, false)
			}
			return st
		},
		Join: func(a, b any) any {
			x, y := a.(*effState), b.(*effState)
			j := x.clone()
			if y.bad || !effSetsEqual(x, y) {
				j.bad = true
			}
			for k, v := range y.refs {
				j.refs[k] = v
			}
			return j
		},
		Equal: func(a, b any) bool {
			x, y := a.(*effState), b.(*effState)
			return x.bad == y.bad && effSetsEqual(x, y)
		},
	})

	eff := &lockEffect{net: map[string]int{}, refs: map[string]lockRef{}}
	first := true
	for _, b := range cfg.ExitPreds() {
		if _, isPanic := b.Term.(*ast.CallExpr); isPanic {
			continue // panic paths do not return to the caller
		}
		st, ok := res.Out[b].(*effState)
		if !ok {
			continue
		}
		if st.bad {
			idx.effects[f] = unknownEffect
			return unknownEffect
		}
		// The effect at this return: net counts after deferred releases.
		ret := make(map[string]int, len(st.net))
		for k, v := range st.net {
			ret[k] = v
		}
		for k := range st.defers {
			ret[k]--
		}
		for k, v := range ret {
			if v == 0 {
				delete(ret, k)
			}
		}
		if first {
			eff.net = ret
			for k := range ret {
				eff.refs[k] = st.refs[k]
			}
			first = false
			continue
		}
		if len(ret) != len(eff.net) {
			idx.effects[f] = unknownEffect
			return unknownEffect
		}
		for k, v := range ret {
			if eff.net[k] != v {
				idx.effects[f] = unknownEffect
				return unknownEffect
			}
		}
	}
	eff.known = true
	idx.effects[f] = eff
	return eff
}
